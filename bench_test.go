package repro_test

// One benchmark per table and figure of the paper's evaluation. Each
// runs the corresponding experiment driver at the Quick scale and
// reports the figure's headline quantity as custom benchmark metrics,
// so `go test -bench=.` regenerates the whole evaluation in miniature.
// The cmd/ tools run the same drivers at full scale.

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/instrument"
	"repro/internal/ir"
	"repro/internal/stats"
)

func scale() experiments.Scale { return experiments.Quick }

// lastY returns the final point of a curve (the highest-load value).
func lastY(s stats.Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// maxUnderSLO returns the largest x whose y stays within slo.
func maxUnderSLO(s stats.Series, slo float64) float64 {
	best := 0.0
	for i := range s.X {
		if s.Y[i] > slo || s.Y[i] == 0 {
			break
		}
		best = s.X[i]
	}
	return best
}

// BenchmarkSweepSequential / BenchmarkSweepParallel compare wall-clock
// for the same figure driver with a one-worker pool vs GOMAXPROCS; the
// per-point seed derivation makes both produce identical series, so
// the ratio is pure parallel speedup (≈1x when GOMAXPROCS=1).
func BenchmarkSweepSequential(b *testing.B) {
	sc := scale()
	sc.Workers = 1
	for i := 0; i < b.N; i++ {
		experiments.Fig1(sc)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	sc := scale()
	sc.Workers = 0 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		experiments.Fig1(sc)
	}
}

func BenchmarkFig01SlowdownVsQuantum(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig1(scale())
	}
	b.ReportMetric(lastY(series[0]), "p999slowdown@q0.5us")
	b.ReportMetric(lastY(series[4]), "p999slowdown@q10us")
}

func BenchmarkFig02CapacityVsOverhead(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig2(scale())
	}
	b.ReportMetric(series[0].Y[0]/1e6, "Mrps@q0.5us,ov0")
	b.ReportMetric(series[2].Y[0]/1e6, "Mrps@q0.5us,ov1us")
}

func BenchmarkFig04TieBreaking(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig4(scale())
	}
	mid := len(series[0].Y) * 3 / 4
	b.ReportMetric(series[0].Y[mid], "ct-long-slowdown")
	b.ReportMetric(series[1].Y[mid], "msq-long-slowdown")
	b.ReportMetric(series[2].Y[mid], "randtie-long-slowdown")
}

func BenchmarkFig05TQQuantumSweepShort(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig5(scale())
	}
	for _, s := range series {
		b.ReportMetric(maxUnderSLO(s, 50)/1e6, "Mrps<=50us@"+s.Label)
	}
}

func BenchmarkFig06TQQuantumSweepLong(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig6(scale())
	}
	b.ReportMetric(maxUnderSLO(series[1], 1200)/1e6, "Mrps@q1us")
	b.ReportMetric(maxUnderSLO(series[4], 1200)/1e6, "Mrps@q10us")
}

func BenchmarkFig07Bimodals(b *testing.B) {
	var cmps []experiments.SystemComparison
	for i := 0; i < b.N; i++ {
		cmps = experiments.Fig7(scale())
	}
	for _, cmp := range cmps {
		curves := cmp.PerClass["Short"]
		prefix := cmp.Workload + "-short-"
		b.ReportMetric(maxUnderSLO(curves[0], 50)/1e6, prefix+"TQ-Mrps")
		b.ReportMetric(maxUnderSLO(curves[1], 50)/1e6, prefix+"Shinjuku-Mrps")
		b.ReportMetric(maxUnderSLO(curves[2], 50)/1e6, prefix+"Caladan-Mrps")
	}
}

func BenchmarkFig08TPCC(b *testing.B) {
	var cmp experiments.SystemComparison
	for i := 0; i < b.N; i++ {
		cmp = experiments.Fig8(scale())
	}
	curves := cmp.PerClass["Payment"]
	b.ReportMetric(maxUnderSLO(curves[0], 100)/1e6, "TQ-Mrps<=100us")
	b.ReportMetric(maxUnderSLO(curves[1], 100)/1e6, "Shinjuku-Mrps<=100us")
	b.ReportMetric(maxUnderSLO(curves[2], 100)/1e6, "Caladan-Mrps<=100us")
}

func BenchmarkFig09Exp1(b *testing.B) {
	var cmp experiments.SystemComparison
	for i := 0; i < b.N; i++ {
		cmp = experiments.Fig9(scale())
	}
	curves := cmp.PerClass["Exp"]
	b.ReportMetric(maxUnderSLO(curves[0], 50)/1e6, "TQ-Mrps<=50us")
	b.ReportMetric(maxUnderSLO(curves[1], 50)/1e6, "Shinjuku-Mrps<=50us")
	b.ReportMetric(maxUnderSLO(curves[2], 50)/1e6, "Caladan-Mrps<=50us")
}

func BenchmarkFig10RocksDB(b *testing.B) {
	var cmps []experiments.SystemComparison
	for i := 0; i < b.N; i++ {
		cmps = experiments.Fig10(scale())
	}
	for _, cmp := range cmps {
		curves := cmp.PerClass["GET"]
		prefix := cmp.Workload + "-GET-"
		b.ReportMetric(maxUnderSLO(curves[0], 50)/1e6, prefix+"TQ-Mrps")
		b.ReportMetric(maxUnderSLO(curves[1], 50)/1e6, prefix+"Shinjuku-Mrps")
		b.ReportMetric(maxUnderSLO(curves[2], 50)/1e6, prefix+"Caladan-Mrps")
	}
}

func BenchmarkFig11ForcedMultitaskingAblation(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig11(scale())
	}
	tq := maxUnderSLO(series[0], 50)
	for _, s := range series[1:] {
		if tq > 0 {
			b.ReportMetric(maxUnderSLO(s, 50)/tq, s.Label+"/TQ-throughput")
		}
	}
}

func BenchmarkFig12TwoLevelAblation(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig12(scale())
	}
	tq := maxUnderSLO(series[0], 50)
	for _, s := range series[1:] {
		if tq > 0 {
			b.ReportMetric(maxUnderSLO(s, 50)/tq, s.Label+"/TQ-throughput")
		}
	}
}

const benchChaseAccesses = 250_000

func BenchmarkFig13CacheQuanta(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig13(benchChaseAccesses)
	}
	// 16KB arrays (index 4) are the quantum-sensitive region.
	b.ReportMetric(series[1].Y[4], "ns@16KB,2us")
	b.ReportMetric(series[2].Y[4], "ns@16KB,16us")
}

func BenchmarkFig14TLSvsCT(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig14(benchChaseAccesses)
	}
	b.ReportMetric(series[0].Y[6], "TLS-ns@64KB")
	b.ReportMetric(series[1].Y[6], "CT-ns@64KB")
}

func BenchmarkFig15ReuseDistance(b *testing.B) {
	var res experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig15(20_000, 10_000, 150, 1)
	}
	b.ReportMetric(100*res.GETAbove8KB, "GET-%>8KB")
	b.ReportMetric(100*res.SCANAbove8KB, "SCAN-%>8KB")
}

func BenchmarkFig16DispatcherScalability(b *testing.B) {
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig16(scale())
	}
	sj, tq := series[0], series[1]
	b.ReportMetric(sj.Y[0], "shinjuku-cores@0.5us")
	b.ReportMetric(sj.Y[len(sj.Y)-1], "shinjuku-cores@5us")
	b.ReportMetric(tq.Y[0], "tq-cores@0.5us")
}

func BenchmarkTab03Instrumentation(b *testing.B) {
	var rows []instrument.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(scale())
	}
	means := instrument.Means(rows)
	b.ReportMetric(means[instrument.TechCI].OverheadPct, "CI-overhead-%")
	b.ReportMetric(means[instrument.TechCICycles].OverheadPct, "CICY-overhead-%")
	b.ReportMetric(means[instrument.TechTQ].OverheadPct, "TQ-overhead-%")
	b.ReportMetric(means[instrument.TechCI].MAEns, "CI-MAE-ns")
	b.ReportMetric(means[instrument.TechTQ].MAEns, "TQ-MAE-ns")
}

func BenchmarkDispatcherThroughput(b *testing.B) {
	var out map[string]float64
	for i := 0; i < b.N; i++ {
		out = experiments.DispatcherThroughput(scale(), 16e6)
	}
	b.ReportMetric(out["TQ"]/1e6, "TQ-Mrps")
	b.ReportMetric(out["Shinjuku"]/1e6, "Shinjuku-Mrps")
}

// Ablation benches beyond the paper's figures, for the design choices
// DESIGN.md calls out.

func BenchmarkProbeBoundAblation(b *testing.B) {
	// Sweep the TQ pass's path-length bound: smaller bounds buy timing
	// accuracy with more probing overhead (§3.1's core trade-off).
	f := instrument.Program("raytrace")
	model := ir.DefaultCosts()
	for i := 0; i < b.N; i++ {
		for _, bound := range []int64{25, 50, 100, 200, 400} {
			m := instrument.MeasureTQ(f, bound, instrument.DefaultQuantumNs, model, 1)
			if i == b.N-1 {
				b.ReportMetric(m.OverheadPct, fmt.Sprintf("overhead%%@B=%d", bound))
				b.ReportMetric(m.MAEns, fmt.Sprintf("MAEns@B=%d", bound))
			}
		}
	}
}

func BenchmarkExtensionComparison(b *testing.B) {
	// §6/§7 extensions: LAS workers, Concord-style cache-line
	// preemption, LibPreemptible-style user interrupts, vs TQ.
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = experiments.ExtensionComparison(scale())
	}
	for _, s := range series {
		b.ReportMetric(maxUnderSLO(s, 50)/1e6, s.Label+"-Mrps<=50us")
	}
}

func BenchmarkMultiDispatcherScaling(b *testing.B) {
	var out []float64
	for i := 0; i < b.N; i++ {
		out = experiments.MultiDispatcherScaling(scale(), 40e6)
	}
	for i, d := range []int{1, 2, 4} {
		b.ReportMetric(out[i]/1e6, fmt.Sprintf("Mrps@disp=%d", d))
	}
}

func BenchmarkCoroutineCountAblation(b *testing.B) {
	// The paper observes similar performance with >4 task coroutines
	// per worker and uses 8; sweep 1-16 (DESIGN.md ablation).
	counts := []int{1, 2, 4, 8, 16}
	var got []float64
	for i := 0; i < b.N; i++ {
		got = experiments.CoroutineCountAblation(scale(), counts)
	}
	for i, coros := range counts {
		b.ReportMetric(got[i]/1e6, fmt.Sprintf("Mrps@coros=%d", coros))
	}
}
