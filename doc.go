// Package repro is a Go reproduction of "Efficient Microsecond-scale
// Blind Scheduling with Tiny Quanta" (Luo et al., ASPLOS 2024).
//
// The library lives under internal/: the scheduling-policy primitives
// (internal/core), the discrete-event machine models of TQ and its
// baselines (internal/cluster), the probe-instrumentation compiler
// passes and their IR (internal/ir, internal/instrument), the cache
// study (internal/cachesim), the live goroutine runtime
// (internal/tqrt), and one driver per paper figure or table
// (internal/experiments).
//
// The benchmarks in this package (bench_test.go) regenerate every
// table and figure of the paper's evaluation at a reduced scale; the
// cmd/ tools run the same drivers at full scale. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro
