// Command gen regenerates the measured tables in the sibling
// FINDINGS.md files. Every number those files quote comes from this
// tool at the pinned seeds — rerun it after any scheduler change and
// diff the output against the committed findings.
//
// Usage: go run ./hypotheses/gen [-quick]
package main

import (
	"flag"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "reduced durations (CI-scale smoke, not the committed numbers)")
	flag.Parse()
	dur, warm := 200*sim.Millisecond, 20*sim.Millisecond
	if *quick {
		dur, warm = 20*sim.Millisecond, 2*sim.Millisecond
	}
	h1(dur, warm)
	h2(dur, warm)
	h3(dur, warm)
}

func run(name string, cfg cluster.RunConfig) *cluster.Result {
	return cluster.MustLookup(name).New().Run(cfg)
}

// h1: does TQ's advantage over Shinjuku grow with Pareto tail weight?
func h1(dur, warm sim.Time) {
	fmt.Println("## h1-heavy-tail-cv")
	fmt.Printf("| alpha | load | TQ p99.9 (µs) | Shinjuku p99.9 (µs) | ratio |\n")
	fmt.Printf("|-------|------|---------------|---------------------|-------|\n")
	for _, alpha := range []string{"2.5", "1.8", "1.4"} {
		w, err := workload.FromLaw("pareto:mean=10us,alpha=" + alpha)
		if err != nil {
			panic(err)
		}
		for _, load := range []float64{0.55, 0.8} {
			cfg := cluster.RunConfig{
				Workload: w, Rate: load * w.MaxLoad(16),
				Duration: dur, Warmup: warm, Seed: 101,
			}
			tq := run("tq", cfg).P999SojournUs("Req")
			sj := run("shinjuku", cfg).P999SojournUs("Req")
			fmt.Printf("| %s | %.0f%% | %.0f | %.0f | %.2f |\n", alpha, load*100, tq, sj, sj/tq)
		}
	}
	fmt.Println()
}

// h2: do MMPP bursts hurt uncoordinated d-FCFS more than machines with
// a centralized view?
func h2(dur, warm sim.Time) {
	fmt.Println("## h2-mmpp-dfcfs")
	hb := workload.HighBimodal()
	fmt.Printf("| machine | arrivals | p99.9 Short (µs) | vs poisson |\n")
	fmt.Printf("|---------|----------|------------------|------------|\n")
	for _, name := range []string{"d-fcfs", "shinjuku", "tq"} {
		base := 0.0
		for _, arr := range []string{"poisson", "mmpp:burst=10,duty=0.1,cycle=1ms", "mmpp:burst=30,duty=0.05,cycle=1ms"} {
			cfg := cluster.RunConfig{
				Workload: hb, Rate: 0.6 * hb.MaxLoad(16),
				Duration: dur, Warmup: warm, Seed: 103, Arrivals: arr,
			}
			p := run(name, cfg).P999SojournUs("Short")
			if base == 0 {
				base = p
			}
			fmt.Printf("| %s | %s | %.1f | %.1fx |\n", name, arr, p, p/base)
		}
	}
	fmt.Println()
}

// h3: do admission shares protect a small tenant from a noisy
// neighbour under overload?
func h3(dur, warm sim.Time) {
	fmt.Println("## h3-tenant-isolation")
	w := workload.Fixed("tiny", 100*sim.Nanosecond)
	fmt.Printf("| shares | tenant | offered | completed | drop rate |\n")
	fmt.Printf("|--------|--------|---------|-----------|-----------|\n")
	for _, shares := range []bool{false, true} {
		tenants := []workload.Tenant{{Name: "big", Ratio: 0.9}, {Name: "small", Ratio: 0.1}}
		if shares {
			tenants[0].Share = 0.5
			tenants[1].Share = 0.25
		}
		cfg := cluster.RunConfig{
			Workload: w, Rate: 30e6,
			Duration: dur / 10, Warmup: warm / 10, Seed: 107, Tenants: tenants,
		}
		res := run("shinjuku", cfg)
		for _, tm := range res.PerTenant {
			fmt.Printf("| %v | %s | %d | %d | %.3f |\n",
				shares, tm.Name, tm.Offered, tm.Completed, float64(tm.Dropped)/float64(tm.Offered))
		}
	}
	fmt.Println()
}
