// Package hypotheses pins the committed FINDINGS.md verdicts: each
// test re-runs its experiment at reduced scale with the pinned seed
// and asserts the *directional* claim of the verdict — not the exact
// full-scale numbers, which only `go run ./hypotheses/gen`
// regenerates. A scheduler change that flips a finding fails here
// instead of silently invalidating a committed document.
package hypotheses

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	reproDur  = 40 * sim.Millisecond
	reproWarm = 4 * sim.Millisecond
)

func run(t *testing.T, name string, cfg cluster.RunConfig) *cluster.Result {
	t.Helper()
	res := cluster.MustLookup(name).New().Run(cfg)
	if res.Completed == 0 {
		t.Fatalf("%s completed nothing", name)
	}
	return res
}

// TestH1HeavyTailCV repros the h1-heavy-tail-cv refutation: TQ beats
// Shinjuku at every Pareto tail weight, but the 80%-load p99.9 ratio
// does NOT grow as the tail gets heavier (α=1.4's ratio stays below
// α=2.5's).
func TestH1HeavyTailCV(t *testing.T) {
	ratio := func(alpha string) float64 {
		w, err := workload.FromLaw("pareto:mean=10us,alpha=" + alpha)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.RunConfig{
			Workload: w, Rate: 0.8 * w.MaxLoad(16),
			Duration: reproDur, Warmup: reproWarm, Seed: 101,
		}
		tq := run(t, "tq", cfg).P999SojournUs("Req")
		sj := run(t, "shinjuku", cfg).P999SojournUs("Req")
		return sj / tq
	}
	light, heavy := ratio("2.5"), ratio("1.4")
	if light <= 1 || heavy <= 1 {
		t.Errorf("TQ no longer dominates Shinjuku: ratios %.2f (α=2.5), %.2f (α=1.4)", light, heavy)
	}
	if heavy > light {
		t.Errorf("verdict flipped: heavier tail now widens the gap (α=1.4 ratio %.2f > α=2.5 ratio %.2f) — re-run hypotheses/gen and update h1's FINDINGS.md", heavy, light)
	}
}

// TestH2MMPPDFCFS repros the h2-mmpp-dfcfs refutation: under the
// strong MMPP, d-FCFS's *relative* p99.9 degradation is the smallest
// of the three machines, while its *absolute* tail stays the worst.
func TestH2MMPPDFCFS(t *testing.T) {
	hb := workload.HighBimodal()
	measure := func(name, arrivals string) float64 {
		return run(t, name, cluster.RunConfig{
			Workload: hb, Rate: 0.6 * hb.MaxLoad(16),
			Duration: reproDur, Warmup: reproWarm, Seed: 103, Arrivals: arrivals,
		}).P999SojournUs("Short")
	}
	const burst = "mmpp:burst=30,duty=0.05,cycle=1ms"
	factors := map[string]float64{}
	absolute := map[string]float64{}
	for _, name := range []string{"d-fcfs", "shinjuku", "tq"} {
		base := measure(name, "poisson")
		bursty := measure(name, burst)
		factors[name] = bursty / base
		absolute[name] = bursty
	}
	if factors["d-fcfs"] > factors["shinjuku"] || factors["d-fcfs"] > factors["tq"] {
		t.Errorf("verdict flipped: d-fcfs now degrades relatively most (factors %v) — re-run hypotheses/gen and update h2's FINDINGS.md", factors)
	}
	if absolute["d-fcfs"] < absolute["shinjuku"] {
		t.Errorf("h2's analysis claims d-fcfs stays worst absolutely, but d-fcfs %.0fµs < shinjuku %.0fµs under bursts", absolute["d-fcfs"], absolute["shinjuku"])
	}
}

// TestH3TenantIsolation repros the h3-tenant-isolation confirmation:
// the reserved share materially raises the small tenant's completions
// and pushes its drop rate below the noisy neighbour's.
func TestH3TenantIsolation(t *testing.T) {
	small := func(shares bool) (cluster.TenantMetrics, cluster.TenantMetrics) {
		tenants := []workload.Tenant{{Name: "big", Ratio: 0.9}, {Name: "small", Ratio: 0.1}}
		if shares {
			tenants[0].Share = 0.5
			tenants[1].Share = 0.25
		}
		res := run(t, "shinjuku", cluster.RunConfig{
			Workload: workload.Fixed("tiny", 100*sim.Nanosecond), Rate: 30e6,
			Duration: 4 * sim.Millisecond, Warmup: 400 * sim.Microsecond,
			Seed: 107, Tenants: tenants,
		})
		return res.PerTenant[1], res.PerTenant[0]
	}
	withS, big := small(true)
	without, _ := small(false)
	if withS.Completed < 2*without.Completed {
		t.Errorf("verdict flipped: shares no longer double small-tenant completions (%d with, %d without) — re-run hypotheses/gen and update h3's FINDINGS.md", withS.Completed, without.Completed)
	}
	drop := func(m cluster.TenantMetrics) float64 { return float64(m.Dropped) / float64(m.Offered) }
	if drop(withS) >= drop(big) {
		t.Errorf("protected tenant drops at %.3f, neighbour at %.3f; want protection", drop(withS), drop(big))
	}
}
