// Instrument: run TQ's probe-insertion compiler pass on a hand-built
// IR function and compare it against the instruction-counter baseline
// — probe counts, probing overhead, and yield-timing accuracy, the
// Table 3 metrics on a single program.
//
// Run with:
//
//	go run ./examples/instrument
package main

import (
	"fmt"

	"repro/internal/instrument"
	"repro/internal/ir"
)

func main() {
	// Build a small "request handler": parse loop, lookup loop with a
	// data-dependent branch, and a response-formatting tail.
	b := ir.NewFunc("handler", 24, 4096)
	b.CountedLoop(1, 2, 3, 3000, func() {
		// Parse: a few ALU ops per token.
		b.Load(4, 1, ir.Hot)
		b.And(5, 4, 4)
		// Lookup: branch on the token kind.
		hit := b.NewBlock()
		miss := b.NewBlock()
		join := b.NewBlock()
		b.Const(6, 7)
		b.And(7, 4, 6)
		b.BranchNZ(7, hit, miss)
		b.SetBlock(hit)
		b.Load(8, 4, ir.Warm)
		b.Mul(9, 8, 8)
		b.Jump(join)
		b.SetBlock(miss)
		b.Add(9, 9, 6)
		b.Jump(join)
		b.SetBlock(join)
		b.Store(1, 9)
	})
	b.Ret()
	f := b.Build()

	fmt.Printf("function %q: %d instructions in %d blocks\n\n",
		f.Name, f.NumInstrs(), len(f.Blocks))

	model := ir.DefaultCosts()
	const quantumNs = instrument.DefaultQuantumNs
	rows := []instrument.Measurement{
		instrument.MeasureCI(f, quantumNs, model, 1),
		instrument.MeasureCICycles(f, quantumNs, model, 1),
		instrument.MeasureTQ(f, instrument.DefaultBound, quantumNs, model, 1),
	}
	fmt.Printf("%-10s %10s %12s %8s %10s\n", "technique", "overhead", "MAE(ns)", "probes", "yields")
	for _, m := range rows {
		fmt.Printf("%-10s %9.2f%% %12.0f %8d %10d\n",
			m.Technique, m.OverheadPct, m.MAEns, m.StaticProbes, m.Yields)
	}

	tq := instrument.TQPass(f, instrument.DefaultBound)
	ci := instrument.CIPass(f)
	fmt.Printf("\nTQ placed %d probes where CI needed %d — the sparse physical-clock\n",
		tq.NumProbes(), ci.NumProbes())
	fmt.Println("placement of §3.1, with better timing accuracy at a 2µs quantum.")
}
