// Quickstart: schedule a bimodal mix of short and long jobs on the
// live Tiny Quanta runtime and watch preemptive processor sharing keep
// short-job latency low.
//
// The scenario is the paper's motivating head-of-line-blocking case:
// long jobs are already occupying the worker when short jobs arrive.
// Under FCFS the short jobs wait for entire long jobs; with tiny
// quanta they overtake within a few preemption rounds.
//
// Run with:
//
//	go run ./examples/quickstart
//
// Pass -trace to also record the TQ run's scheduling timeline as
// Chrome trace-event JSON — open it at https://ui.perfetto.dev, or
// inspect it with `go run ./cmd/tqtrace summarize trace.json`. See
// EXPERIMENTS.md "Reading a trace" for a guided tour.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/tqrt"
)

// work busy-spins for the given amount of active CPU time, calling
// Probe between slices — the probe points a compiler pass would insert
// automatically in the paper's system.
func work(y *tqrt.Yield, active time.Duration) {
	const slice = 5 * time.Microsecond
	var done time.Duration
	for done < active {
		begin := time.Now()
		// Simulates the straight-line compute between compiler-inserted
		// probes; the spin is bounded by the 5µs slice, far below any quantum.
		// tqvet:ignore bounded 5µs spin slice
		for time.Since(begin) < slice {
		}
		done += slice
		y.Probe()
	}
}

func run(quantum time.Duration, tracePath string) (p50, p99 time.Duration) {
	cfg := tqrt.Config{Workers: 1, Coroutines: 8, Quantum: quantum}
	if tracePath != "" {
		cfg.TraceCap = 1 << 16
	}
	rt := tqrt.New(cfg)
	rt.Start()

	// Four 5ms jobs grab the worker first.
	for i := 0; i < 4; i++ {
		rt.Submit(func(y *tqrt.Yield) { work(y, 5*time.Millisecond) })
	}
	time.Sleep(time.Millisecond) // let the long jobs get going

	// Sixteen 50µs jobs arrive behind them.
	var mu sync.Mutex
	var lats []time.Duration
	for i := 0; i < 16; i++ {
		arrive := time.Now()
		rt.Submit(func(y *tqrt.Yield) {
			work(y, 50*time.Microsecond)
			// tqvet:ignore contention-free ns-scale critical section at task end
			mu.Lock()
			lats = append(lats, time.Since(arrive))
			mu.Unlock()
		})
	}
	rt.Stop()

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		if err := rt.WriteTrace(f, "quickstart-TQ"); err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		f.Close()
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], lats[len(lats)-1]
}

func main() {
	tracePath := flag.String("trace", "", "write the TQ run's scheduling timeline (Chrome trace JSON) to this file")
	flag.Parse()

	psP50, psP99 := run(20*time.Microsecond, *tracePath) // TQ: 20µs quanta
	fcfsP50, fcfsP99 := run(0, "")                       // FCFS: no preemption

	fmt.Printf("%-24s short-job p50=%-12v worst=%v\n", "TQ (20µs quanta):", psP50, psP99)
	fmt.Printf("%-24s short-job p50=%-12v worst=%v\n", "FCFS (no preemption):", fcfsP50, fcfsP99)
	fmt.Println("\nWith tiny quanta, short jobs overtake the in-progress 5ms jobs;")
	fmt.Println("under FCFS they wait for whole long jobs to finish first.")
	if *tracePath != "" {
		fmt.Printf("\nwrote TQ timeline to %s (open in https://ui.perfetto.dev, or: go run ./cmd/tqtrace summarize %s)\n",
			*tracePath, *tracePath)
	}
}
