// Kvserver: a complete key-value server on the Tiny Quanta runtime —
// the paper's RocksDB scenario as a runnable program. A UDP client and
// server share the process: the open-loop client (internal/netsim)
// sends GET/SCAN requests, the server parses them, schedules each
// request as a TQ task over the in-memory store, and replies directly
// from the worker — the Figure 3 pipeline, minus the dedicated NIC.
//
// Run with:
//
//	go run ./examples/kvserver
package main

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tqrt"
)

const (
	kindGET  = 1
	kindSCAN = 2
	numKeys  = 100_000
	scanLen  = 2000
)

func keyOf(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

func main() {
	store := kvstore.New(kvstore.Config{Seed: 1})
	for i := 0; i < numKeys; i++ {
		store.Put(keyOf(i), []byte(fmt.Sprintf("value-%012d", i)))
	}
	store.Flush()

	serverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		panic(err)
	}
	serverAddr := serverConn.LocalAddr().(*net.UDPAddr)
	fmt.Printf("kv server on %v, %d keys (%+v)\n", serverAddr, numKeys, store.Stats())

	rt := tqrt.New(tqrt.Config{
		Workers:    4,
		Coroutines: 8,
		Quantum:    25 * time.Microsecond,
		QueueCap:   1 << 14,
	})
	rt.Start()

	// Server loop: poll packets, schedule each request as a task, let
	// the worker reply directly to the client (§3.2's "without going
	// through the dispatcher").
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	go func() {
		defer serverWG.Done()
		buf := make([]byte, 2048)
		for {
			n, client, err := serverConn.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			req, err := netsim.DecodeRequest(buf[:n])
			if err != nil || len(req.Payload) < 4 {
				continue
			}
			keyIdx := int(binary.LittleEndian.Uint32(req.Payload))
			resp := netsim.Response{ID: req.ID, SentNs: req.SentNs, Kind: req.Kind}
			start := time.Now()
			switch req.Kind {
			case kindGET:
				rt.Submit(func(y *tqrt.Yield) {
					store.Get(keyOf(keyIdx))
					y.Probe()
					resp.ServerNs = time.Since(start).Nanoseconds()
					serverConn.WriteToUDP(netsim.EncodeResponse(nil, &resp), client)
				})
			case kindSCAN:
				rt.Submit(func(y *tqrt.Yield) {
					n := 0
					store.Scan(keyOf(keyIdx), scanLen, func(_, _ []byte) bool {
						n++
						if n%64 == 0 {
							y.Probe() // probe points between entry batches
						}
						return true
					})
					resp.ServerNs = time.Since(start).Nanoseconds()
					serverConn.WriteToUDP(netsim.EncodeResponse(nil, &resp), client)
				})
			}
		}
	}()

	payload := make([]byte, 4)
	report, err := netsim.RunClient(netsim.ClientConfig{
		Addr:     serverAddr,
		Rate:     8000,
		Duration: 2 * time.Second,
		Drain:    300 * time.Millisecond,
		Seed:     3,
		Next: func(r *rng.Rand) (uint16, []byte) {
			binary.LittleEndian.PutUint32(payload, uint32(r.Intn(numKeys)))
			if r.Float64() < 0.005 {
				return kindSCAN, payload
			}
			return kindGET, payload
		},
	})
	if err != nil {
		panic(err)
	}

	rt.Wait()
	serverConn.Close()
	serverWG.Wait()
	rt.Stop()

	names := map[uint16]string{kindGET: "GET", kindSCAN: "SCAN"}
	for _, kind := range []uint16{kindGET, kindSCAN} {
		ks := report.Kind(kind)
		if ks.Received == 0 {
			continue
		}
		fmt.Printf("%-5s sent=%-7d recv=%-7d p50=%-12v p99=%-12v p99.9=%v\n",
			names[kind], ks.Sent, ks.Received,
			ks.Quantile(0.50), ks.Quantile(0.99), ks.Quantile(0.999))
	}
	fmt.Println("\nGETs keep µs-to-ms tails despite multi-ms SCANs sharing the workers:")
	fmt.Println("SCAN coroutines yield at their probe points every quantum.")
}
