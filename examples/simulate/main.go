// Simulate: reproduce the heart of the paper's Figure 7 in-process —
// TQ vs Shinjuku vs Caladan on the Extreme Bimodal workload — using
// the discrete-event machine models and the public experiment drivers.
//
// Run with:
//
//	go run ./examples/simulate
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	w := workload.ExtremeBimodal()
	fmt.Printf("workload: %s (mean service %.2fµs, dispersion %.0fx)\n\n",
		w.Name, w.MeanService().Micros(), w.DispersionRatio())

	// Machines come from the registry: stable names, paper-default
	// parameters (Shinjuku's catalogue default is its 5µs bimodal
	// sweet spot). cluster.Names() lists the full catalogue.
	var systems []cluster.Machine
	for _, name := range []string{"tq", "shinjuku", "caladan-iokernel"} {
		systems = append(systems, cluster.MustLookup(name).New())
	}

	fmt.Printf("%-22s %12s %16s %16s\n", "system", "rate(Mrps)", "Short p99.9(µs)", "Long p99.9(µs)")
	for _, frac := range []float64{0.3, 0.6, 0.8} {
		rate := frac * w.MaxLoad(16)
		for _, m := range systems {
			res := m.Run(cluster.RunConfig{
				Workload: w,
				Rate:     rate,
				Duration: 150 * sim.Millisecond,
				Warmup:   15 * sim.Millisecond,
				Seed:     1,
			})
			fmt.Printf("%-22s %12.2f %16.1f %16.1f\n",
				m.Name(), rate/1e6,
				res.P999EndToEndUs("Short"), res.P999EndToEndUs("Long"))
		}
		fmt.Println()
	}
	fmt.Println("TQ holds short-job tails near the long jobs' shadow at loads where")
	fmt.Println("Caladan's FCFS head-of-line blocking and Shinjuku's interrupt costs bite.")
}
