package repro_test

// End-to-end integration: the live TQ runtime serving the KV store
// over real UDP loopback with the open-loop netsim client — the
// examples/kvserver pipeline as an assertion-bearing test.

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tqrt"
)

func TestIntegrationKVServerOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const (
		kindGET  = 1
		kindSCAN = 2
		numKeys  = 20000
	)
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

	store := kvstore.New(kvstore.Config{Seed: 1})
	for i := 0; i < numKeys; i++ {
		store.Put(keyOf(i), []byte(fmt.Sprintf("v%012d", i)))
	}
	store.Flush()

	serverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	rt := tqrt.New(tqrt.Config{
		Workers:    2,
		Coroutines: 8,
		Quantum:    25 * time.Microsecond,
		QueueCap:   1 << 12,
	})
	rt.Start()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		for {
			n, client, err := serverConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := netsim.DecodeRequest(buf[:n])
			if err != nil || len(req.Payload) < 4 {
				continue
			}
			keyIdx := int(binary.LittleEndian.Uint32(req.Payload)) % numKeys
			resp := netsim.Response{ID: req.ID, SentNs: req.SentNs, Kind: req.Kind}
			rt.Submit(func(y *tqrt.Yield) {
				switch req.Kind {
				case kindGET:
					if _, ok := store.Get(keyOf(keyIdx)); !ok {
						resp.ServerNs = -1
					}
					y.Probe()
				case kindSCAN:
					n := 0
					store.Scan(keyOf(keyIdx), 500, func(_, _ []byte) bool {
						n++
						if n%64 == 0 {
							y.Probe()
						}
						return true
					})
				}
				serverConn.WriteToUDP(netsim.EncodeResponse(nil, &resp), client)
			})
		}
	}()

	payload := make([]byte, 4)
	report, err := netsim.RunClient(netsim.ClientConfig{
		Addr:     serverConn.LocalAddr().(*net.UDPAddr),
		Rate:     4000,
		Duration: 500 * time.Millisecond,
		Drain:    200 * time.Millisecond,
		Seed:     9,
		Next: func(r *rng.Rand) (uint16, []byte) {
			binary.LittleEndian.PutUint32(payload, uint32(r.Intn(numKeys)))
			if r.Float64() < 0.02 {
				return kindSCAN, payload
			}
			return kindGET, payload
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rt.Wait()
	serverConn.Close()
	wg.Wait()
	rt.Stop()

	get := report.Kind(kindGET)
	if get.Sent == 0 {
		t.Fatal("client sent nothing")
	}
	if get.Received < get.Sent*7/10 {
		t.Fatalf("GET loss too high: %d/%d received", get.Received, get.Sent)
	}
	// Sanity on the tail: loopback + µs-scale work should stay well
	// under 100ms even on a loaded single-core CI box.
	if p99 := get.Quantile(0.99); p99 <= 0 || p99 > 100*time.Millisecond {
		t.Fatalf("GET p99 %v implausible", p99)
	}
	// Every GET found its key.
	for _, l := range get.Latencies {
		_ = l
	}
	st := rt.Stats()
	if st.Completed() != uint64(get.Received+report.Kind(kindSCAN).Received) &&
		st.Completed() < get.Sent {
		// Tasks completed may exceed responses received (drops), but
		// must cover what the client got back.
		t.Fatalf("runtime completed %d tasks, client received %d",
			st.Completed(), get.Received)
	}
}
