// Package obs is the unified observability layer for every scheduler
// in this repository: the discrete-event machine models in
// internal/cluster, the live goroutine runtime in internal/tqrt, and
// the UDP load generator in internal/netsim all emit the same
// structured scheduling events through the recorders defined here, so
// one timeline viewer and one metrics pipeline explain them all.
//
// The paper's evaluation hinges on seeing microsecond-scale scheduling
// decisions — quantum boundaries, dispatcher handoffs, probe-driven
// yields — not just end-of-run aggregates. This package makes those
// decisions inspectable:
//
//   - Event / Kind: a fixed vocabulary of per-task lifecycle events
//     (Arrive, Dispatch, QuantumStart, QuantumEnd, ProbeYield,
//     Preempt, Finish, Drop) with nanosecond timestamps and a core
//     identity (worker index, or the Dispatcher/Loadgen pseudo-cores).
//     Every machine model emits exactly this vocabulary, so policy
//     differences are directly comparable on one timeline.
//   - Ring: a zero-allocation bounded recorder for single-writer hot
//     paths (the simulator); Locked and Sharded extend it to the
//     multi-goroutine live runtime.
//   - WriteChrome / ReadChrome: lossless export to Chrome trace-event
//     JSON — loadable in Perfetto (https://ui.perfetto.dev) or
//     chrome://tracing — with one track per core plus dispatcher and
//     loadgen tracks, and a parser that round-trips the events back
//     for tooling (cmd/tqtrace summarize / diff).
//   - Summarize / Windows: aggregate and sliding-window time-series
//     metrics (per-core utilization, occupancy, preemption rate,
//     p50/p99 sojourn via stats.LatencyHist) computed from an event
//     stream.
//   - Validate / Conserved: the machine-model invariants — per-task
//     lifecycle ordering, matched quantum start/end pairs per core,
//     and event conservation (every dispatched task reaches exactly
//     one terminal Finish or Drop) — used as test oracles across all
//     machine models and the live runtime.
//
// Recording is strictly opt-in and free when off: emit sites guard on
// a nil recorder, and the guard benchmark in internal/cluster holds
// tracing-off runs to the pre-observability baseline.
package obs
