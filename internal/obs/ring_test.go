package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// TestShardedMergeMatchesStableSort pins the k-way merge to the exact
// semantics of the implementation it replaced: a stable sort by T over
// the shards concatenated in index order. Cross-shard ties must come
// out lower-shard-first, and each shard's emission order must survive.
func TestShardedMergeMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		shards := 1 + rng.Intn(6)
		s := NewSharded(shards, 512)
		var task uint64
		for i := 0; i < shards; i++ {
			n := rng.Intn(40)
			var now int64
			for j := 0; j < n; j++ {
				// Small steps with many zero increments force plenty of
				// equal-T events, both within and across shards.
				now += int64(rng.Intn(3))
				task++
				s.Shard(i).Emit(Event{T: now, Task: task, Core: int32(i), Kind: Arrive})
			}
		}

		want := make([]Event, 0)
		for i := 0; i < shards; i++ {
			want = append(want, s.Shard(i).Events()...)
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].T < want[b].T })

		got := s.Events()
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d events, want %d", trial, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("trial %d: merge diverges from stable sort at %d: got %+v want %+v",
					trial, k, got[k], want[k])
			}
		}
	}
}

func TestShardedEventsEmptyShards(t *testing.T) {
	s := NewSharded(4, 8)
	if got := s.Events(); len(got) != 0 {
		t.Fatalf("empty sharded recorder merged %d events", len(got))
	}
	s.Shard(2).Emit(Event{T: 7, Task: 1})
	got := s.Events()
	if len(got) != 1 || got[0].Task != 1 {
		t.Fatalf("single-shard merge wrong: %+v", got)
	}
}

func TestRingEmitBatch(t *testing.T) {
	r := NewRing(4)
	batch := []Event{{T: 1, Task: 1}, {T: 2, Task: 2}, {T: 3, Task: 3}}
	r.EmitBatch(batch)
	if r.Len() != 3 || r.Truncated() {
		t.Fatalf("len=%d truncated=%v after in-cap batch", r.Len(), r.Truncated())
	}
	// Second batch overflows: one fits, two are discarded, and the kept
	// events are still the prefix of the combined stream.
	r.EmitBatch([]Event{{T: 4, Task: 4}, {T: 5, Task: 5}, {T: 6, Task: 6}})
	if r.Len() != 4 || r.Discarded() != 2 {
		t.Fatalf("len=%d discarded=%d, want 4/2", r.Len(), r.Discarded())
	}
	for i, e := range r.Events() {
		if e.Task != uint64(i+1) {
			t.Fatalf("event %d is task %d, want %d", i, e.Task, i+1)
		}
	}
}

func TestRingEmitBatchZeroValue(t *testing.T) {
	var r Ring
	r.EmitBatch([]Event{{T: 1}, {T: 2}})
	if r.Len() != 2 {
		t.Fatalf("zero-value ring batch recorded %d events, want 2", r.Len())
	}
}

// TestLockedParity drives a Locked and a bare Ring with the same
// operations and checks every read-side accessor agrees — Locked is a
// mutex around Ring and nothing more.
func TestLockedParity(t *testing.T) {
	l := NewLocked(4)
	r := NewRing(4)
	ops := func(emit func(Event), batch func([]Event)) {
		emit(Event{T: 1, Task: 1})
		batch([]Event{{T: 2, Task: 2}, {T: 3, Task: 3}})
		emit(Event{T: 4, Task: 4})
		emit(Event{T: 5, Task: 5}) // over cap: discarded
		batch([]Event{{T: 6, Task: 6}})
	}
	ops(l.Emit, l.EmitBatch)
	ops(r.Emit, r.EmitBatch)

	if l.Len() != r.Len() {
		t.Fatalf("Len: locked %d, ring %d", l.Len(), r.Len())
	}
	if l.Discarded() != r.Discarded() {
		t.Fatalf("Discarded: locked %d, ring %d", l.Discarded(), r.Discarded())
	}
	if l.Truncated() != r.Truncated() {
		t.Fatalf("Truncated: locked %v, ring %v", l.Truncated(), r.Truncated())
	}
	le, re := l.Events(), r.Events()
	if len(le) != len(re) {
		t.Fatalf("Events: locked %d, ring %d", len(le), len(re))
	}
	for i := range le {
		if le[i] != re[i] {
			t.Fatalf("Events diverge at %d: %+v vs %+v", i, le[i], re[i])
		}
	}

	l.Reset()
	r.Reset()
	if l.Len() != 0 || l.Discarded() != 0 || l.Truncated() {
		t.Fatal("locked Reset did not clear")
	}
	l.Emit(Event{T: 9})
	if l.Len() != 1 {
		t.Fatal("locked recorder unusable after Reset")
	}
}
