package obs_test

import (
	"fmt"

	"repro/internal/obs"
)

// Record a two-quantum task by hand, validate the timeline, and export
// it as Perfetto-loadable Chrome trace JSON. Machine models do exactly
// this through cluster.RunConfig.Obs.
func Example() {
	r := obs.NewRing(64)
	emit := func(t int64, k obs.Kind, core int32) {
		r.Emit(obs.Event{T: t, Task: 1, Core: core, Kind: k})
	}
	emit(0, obs.Arrive, obs.CoreLoadgen)
	emit(70, obs.Dispatch, 0)
	emit(110, obs.QuantumStart, 0)
	emit(2110, obs.QuantumEnd, 0)
	emit(2110, obs.ProbeYield, 0)
	emit(2140, obs.QuantumStart, 0)
	emit(3140, obs.QuantumEnd, 0)
	emit(3140, obs.Finish, 0)

	if err := obs.Validate(r.Events()); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	s := obs.Summarize("TQ", r.Events())
	fmt.Printf("tasks=%d finished=%d preemptions=%d busy=%dns\n",
		s.Tasks, s.Finished, s.Preemptions, s.CoreBusy[0])

	// obs.WriteChrome(w, obs.Process{Name: "TQ", Events: r.Events()})
	// would write the Perfetto-loadable JSON; elided here for brevity.

	// Output:
	// tasks=1 finished=1 preemptions=1 busy=3000ns
}
