package obs

import "sync"

// Ring is the zero-allocation bounded recorder: storage is one slice
// allocated at construction (or lazily, once, for the zero value) and
// Emit never allocates afterwards. When the capacity is exhausted
// further events are discarded and counted, so — exactly like
// trace.Recorder — a capped recording is a strict prefix of the run's
// timeline: every recorded event is real, no recorded transition is
// fabricated, and Truncated tells a complete timeline from a prefix.
//
// Ring is single-writer: the simulator's event loop, or one worker
// goroutine of the live runtime. Wrap it in Locked for concurrent
// writers, or use Sharded for one ring per writer.
type Ring struct {
	events    []Event
	discarded int
}

// DefaultCap is the capacity a zero-value Ring allocates on first
// Emit: 1<<20 events (≈24MB), enough for tens of simulated
// milliseconds of a 16-core machine.
const DefaultCap = 1 << 20

// NewRing returns a recorder holding at most capacity events
// (capacity <= 0 means DefaultCap). The one allocation happens here.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Ring{events: make([]Event, 0, capacity)}
}

// Emit records e, or counts it as discarded once the ring is full.
//
//simvet:hotpath
func (r *Ring) Emit(e Event) {
	if cap(r.events) == 0 {
		r.events = make([]Event, 0, DefaultCap)
	}
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
		return
	}
	r.discarded++
}

// EmitBatch records the events in order, counting whatever exceeds the
// cap as discarded — Emit amortized over one bulk append.
//
//simvet:hotpath
func (r *Ring) EmitBatch(evs []Event) {
	if cap(r.events) == 0 {
		r.events = make([]Event, 0, DefaultCap)
	}
	fit := cap(r.events) - len(r.events)
	if fit > len(evs) {
		fit = len(evs)
	}
	r.events = append(r.events, evs[:fit]...)
	r.discarded += len(evs) - fit
}

// Events returns the recorded events in emission order. The slice is
// owned by the ring and must not be modified.
func (r *Ring) Events() []Event { return r.events }

// Len reports the number of recorded events.
func (r *Ring) Len() int { return len(r.events) }

// Truncated reports whether the cap discarded any events — the
// recording is then a strict prefix of the timeline, not all of it.
func (r *Ring) Truncated() bool { return r.discarded > 0 }

// Discarded returns how many events the cap discarded.
func (r *Ring) Discarded() int { return r.discarded }

// Reset discards all recorded events but keeps the storage, so a ring
// can be reused across runs without reallocating.
func (r *Ring) Reset() {
	r.events = r.events[:0]
	r.discarded = 0
}

var _ BatchRecorder = (*Ring)(nil)

// Locked wraps a Ring with a mutex for multi-goroutine writers (the
// live load generator, TrySubmit drop paths). The zero value is ready
// to use with DefaultCap.
type Locked struct {
	mu   sync.Mutex
	ring Ring
}

// NewLocked returns a concurrent recorder with the given capacity
// (<= 0 means DefaultCap).
func NewLocked(capacity int) *Locked {
	return &Locked{ring: *NewRing(capacity)}
}

// Emit records e under the lock.
//
//simvet:hotpath
func (l *Locked) Emit(e Event) {
	l.mu.Lock()
	l.ring.Emit(e)
	l.mu.Unlock()
}

// EmitBatch records the batch under one lock acquisition instead of
// one per event.
//
//simvet:hotpath
func (l *Locked) EmitBatch(evs []Event) {
	l.mu.Lock()
	l.ring.EmitBatch(evs)
	l.mu.Unlock()
}

// Events returns a snapshot copy of the recorded events.
func (l *Locked) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.ring.events))
	copy(out, l.ring.events)
	return out
}

// Len reports the number of recorded events.
func (l *Locked) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ring.Len()
}

// Truncated reports whether any events were discarded.
func (l *Locked) Truncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ring.Truncated()
}

// Discarded returns how many events the cap discarded — like Ring, a
// capped concurrent recording must report its drops, or a truncated
// timeline would read as a complete one.
func (l *Locked) Discarded() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ring.Discarded()
}

// Reset discards all recorded events but keeps the storage, so the
// recorder can be reused across runs without reallocating.
func (l *Locked) Reset() {
	l.mu.Lock()
	l.ring.Reset()
	l.mu.Unlock()
}

var _ BatchRecorder = (*Locked)(nil)

// Sharded is a set of single-writer rings — one per emitting goroutine
// — merged into a single time-ordered stream at read time. The live
// runtime gives each worker its own shard so recording stays
// allocation- and contention-free on the scheduling path.
type Sharded struct {
	shards []*Ring
}

// NewSharded returns n shards of the given per-shard capacity
// (<= 0 means DefaultCap per shard).
func NewSharded(n, capacity int) *Sharded {
	if n <= 0 {
		panic("obs: Sharded needs at least one shard")
	}
	s := &Sharded{shards: make([]*Ring, n)}
	for i := range s.shards {
		s.shards[i] = NewRing(capacity)
	}
	return s
}

// Shard returns shard i's ring. Each shard must have at most one
// writing goroutine at a time.
func (s *Sharded) Shard(i int) *Ring { return s.shards[i] }

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Truncated reports whether any shard discarded events.
func (s *Sharded) Truncated() bool {
	for _, r := range s.shards {
		if r.Truncated() {
			return true
		}
	}
	return false
}

// Events merges all shards into one stream sorted by time (stable
// across shards: ties preserve each shard's emission order and order
// equal-time events from lower-indexed shards first). Call it only
// after the writers have stopped.
//
// Each shard is already in emission order — a single writer with
// non-decreasing timestamps — so this is a k-way merge, O(n log k),
// not a sort of the concatenation: the previous O(n log n)
// sort.SliceStable re-sorted n events that were already k sorted runs.
func (s *Sharded) Events() []Event {
	var n int
	for _, r := range s.shards {
		n += r.Len()
	}
	out := make([]Event, 0, n)
	m := mergeState{shards: s.shards, heads: make([]int, len(s.shards))}
	for i, r := range s.shards {
		if r.Len() > 0 {
			m.push(i)
		}
	}
	for len(m.heap) > 0 {
		i := m.heap[0]
		out = append(out, m.shards[i].events[m.heads[i]])
		m.heads[i]++
		if m.heads[i] == m.shards[i].Len() {
			m.popTop()
		} else {
			m.siftDown(0)
		}
	}
	return out
}

// mergeState is the k-way merge's cursor heap: shard indices ordered
// by (head event time, shard index), the tie-break that reproduces a
// stable sort over the shards concatenated in index order.
type mergeState struct {
	shards []*Ring
	heads  []int
	heap   []int
}

func (m *mergeState) less(a, b int) bool {
	ta := m.shards[a].events[m.heads[a]].T
	tb := m.shards[b].events[m.heads[b]].T
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (m *mergeState) push(shard int) {
	m.heap = append(m.heap, shard)
	for i := len(m.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[parent]) {
			break
		}
		m.heap[i], m.heap[parent] = m.heap[parent], m.heap[i]
		i = parent
	}
}

func (m *mergeState) popTop() {
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	if last > 0 {
		m.siftDown(0)
	}
}

func (m *mergeState) siftDown(i int) {
	for {
		left := 2*i + 1
		if left >= len(m.heap) {
			return
		}
		least := left
		if right := left + 1; right < len(m.heap) && m.less(m.heap[right], m.heap[left]) {
			least = right
		}
		if !m.less(m.heap[least], m.heap[i]) {
			return
		}
		m.heap[i], m.heap[least] = m.heap[least], m.heap[i]
		i = least
	}
}
