package obs

import "fmt"

// Kind labels one scheduling event. The vocabulary is shared by every
// machine model and the live runtime; a given scheduler emits the
// subset its mechanisms produce (Caladan, say, never preempts), but a
// kind always means the same thing wherever it appears.
type Kind uint8

// The event vocabulary, in per-task lifecycle order.
const (
	// Arrive: the request hit the NIC (or the client sent it). Emitted
	// on the Loadgen track.
	Arrive Kind = iota
	// Dispatch: a dispatcher bound the task to a worker core (Event.Core
	// is the chosen core). Centralized schedulers re-dispatch after a
	// preemption; TQ dispatches exactly once. Under work stealing the
	// task may start on a different core than it was dispatched to.
	Dispatch
	// QuantumStart: a core began executing one quantum of the task.
	QuantumStart
	// QuantumEnd: the quantum ended — by completion, a probe-driven
	// yield, or a preemption. Always paired with the QuantumStart on the
	// same core, and immediately followed by the ProbeYield, Preempt, or
	// Finish event that says why it ended (FCFS quanta end only in
	// Finish).
	QuantumEnd
	// ProbeYield: the task's probe observed an expired quantum and
	// yielded cooperatively — forced multitasking (TQ, the live
	// runtime). The task remains queued on its core.
	ProbeYield
	// Preempt: the scheduler forced the task off its core (Shinjuku's
	// interrupt, the idealized CT's oracle switch). The task re-enters
	// a queue.
	Preempt
	// Finish: the task completed and its response left the worker.
	Finish
	// Drop: the request was rejected at a saturated RX stage (or
	// abandoned by the client after its retry budget). Terminal.
	Drop

	// KindCount is the number of event kinds.
	KindCount = int(Drop) + 1
)

var kindNames = [KindCount]string{
	"arrive", "dispatch", "qstart", "qend", "probe-yield", "preempt", "finish", "drop",
}

// String returns the kind's wire name, as used in exported traces.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString maps a wire name back to its Kind; ok is false for
// unknown names.
func KindFromString(s string) (k Kind, ok bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Pseudo-core identities for Event.Core: events not tied to a worker
// core land on the dispatcher or load-generator track.
const (
	// CoreDispatcher is the dispatcher (or IOKernel / centralized
	// scheduler) track.
	CoreDispatcher int32 = -1
	// CoreLoadgen is the load-generator / client track.
	CoreLoadgen int32 = -2
)

// Event is one recorded scheduling occurrence. Timestamps are int64
// nanoseconds — virtual sim.Time in the simulator, monotonic wall time
// in the live runtime — so one struct serves both worlds.
type Event struct {
	// T is the event time in nanoseconds since the start of the run.
	T int64
	// Task identifies the request/task across its lifecycle.
	Task uint64
	// Core is the worker core index, or CoreDispatcher / CoreLoadgen.
	// For Dispatch it is the core the task was bound to.
	Core int32
	// Class is the workload request class (0 when classless).
	Class int16
	// Kind says what happened.
	Kind Kind
}

// Recorder consumes events. Emit must be cheap; hot paths call it
// guarded by a nil check, so implementations need not re-check
// enablement.
type Recorder interface {
	Emit(Event)
}

// BatchRecorder is the optional Recorder extension for emitters that
// buffer: EmitBatch(evs) is exactly Emit of each event in order, with
// the per-event call overhead (and, for locked recorders, the lock)
// amortized over the batch. The batch slice stays owned by the caller,
// which may reuse it as soon as the call returns. The machine kernel's
// metrics layer batches its emissions and uses this path when the
// run's recorder provides it.
type BatchRecorder interface {
	Recorder
	EmitBatch([]Event)
}
