package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenProcs is a small fixed comparison trace: two schedulers, two
// cores each, exercising every event kind.
func goldenProcs() []Process {
	tq := append(lifecycle(1, 0, 0), lifecycle(2, 1, 5)...)
	tq = append(tq,
		Event{T: 90, Task: 3, Core: CoreLoadgen, Kind: Arrive},
		Event{T: 91, Task: 3, Core: CoreDispatcher, Kind: Drop})
	SortByTime(tq)
	sj := []Event{
		{T: 0, Task: 1, Core: CoreLoadgen, Kind: Arrive},
		{T: 10, Task: 1, Core: 0, Kind: Dispatch},
		{T: 12, Task: 1, Core: 0, Kind: QuantumStart},
		{T: 30, Task: 1, Core: 0, Kind: QuantumEnd},
		{T: 30, Task: 1, Core: 0, Kind: Preempt},
		{T: 35, Task: 1, Core: 1, Kind: Dispatch},
		{T: 37, Task: 1, Core: 1, Kind: QuantumStart},
		{T: 45, Task: 1, Core: 1, Kind: QuantumEnd},
		{T: 45, Task: 1, Core: 1, Kind: Finish},
	}
	return []Process{{Name: "TQ", Events: tq}, {Name: "Shinjuku", Events: sj}}
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenProcs()...); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file (field order and layout are a contract; run with -update if intentional)\ngot:\n%s", buf.Bytes())
	}
}

// TestChromeExportWellFormed checks the structural contract the golden
// file freezes: valid JSON, monotonic timestamps per track, and
// matched B/E pairs per track.
func TestChromeExportWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenProcs()...); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	depth := map[track]int{}
	for i, e := range file.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		k := track{e.Pid, e.Tid}
		if e.Ts < lastTs[k] {
			t.Fatalf("event %d: timestamp %.3f before %.3f on pid=%d tid=%d", i, e.Ts, lastTs[k], e.Pid, e.Tid)
		}
		lastTs[k] = e.Ts
		switch e.Ph {
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("event %d: E without B on pid=%d tid=%d", i, e.Pid, e.Tid)
			}
		case "i":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Ph)
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Fatalf("unmatched B/E pairs on pid=%d tid=%d: depth %d", k.pid, k.tid, d)
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	procs := goldenProcs()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, procs...); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(procs) {
		t.Fatalf("round trip returned %d processes, want %d", len(got), len(procs))
	}
	for i := range procs {
		if got[i].Name != procs[i].Name {
			t.Fatalf("process %d name %q, want %q", i, got[i].Name, procs[i].Name)
		}
		if !reflect.DeepEqual(got[i].Events, procs[i].Events) {
			t.Fatalf("process %q events did not round-trip:\ngot  %+v\nwant %+v",
				procs[i].Name, got[i].Events, procs[i].Events)
		}
	}
}

func TestReadChromeRejectsGarbage(t *testing.T) {
	if _, err := ReadChrome(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
