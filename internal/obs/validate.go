package obs

import "fmt"

// taskState tracks one task's progress through the lifecycle.
type taskState struct {
	last  Kind
	lastT int64
	core  int32 // core of the open quantum, valid between QuantumStart and QuantumEnd
	done  bool
}

// Validate checks the machine-model timeline invariants over an event
// stream (any mix of tasks, one scheduler):
//
//   - every task's first event is Arrive, and its events never move
//     backwards in time;
//   - Dispatch follows Arrive, ProbeYield, or Preempt (centralized
//     schedulers re-dispatch preempted tasks);
//   - QuantumStart follows Dispatch, ProbeYield, or Preempt, and its
//     core has no other quantum open (quanta strictly nest per core);
//   - QuantumEnd closes the open quantum on the same core, and is
//     followed for that task by the ProbeYield, Preempt, or Finish
//     that explains it, at the same instant;
//   - Finish and Drop are terminal; Drop follows Arrive only. As a
//     special case, Finish directly after Arrive is legal on the
//     loadgen track — the client-side view records response receipt
//     without seeing the server's quanta;
//   - a quantum's task matches the task that started it.
//
// Errors name the offending task and event kind. A truncated
// recording (Ring.Truncated) is still validated soundly: the cap
// discards events strictly from the tail, so the stream is a prefix of
// the full timeline and tasks are simply checked as far as it goes —
// a pending QuantumEnd with its cause event past the cap is not an
// error.
func Validate(events []Event) error {
	tasks := map[uint64]*taskState{}
	open := map[int32]uint64{} // core -> task of the open quantum
	for i, e := range events {
		ts := tasks[e.Task]
		if ts == nil {
			if e.Kind != Arrive {
				return fmt.Errorf("event %d: task %d begins with %v, want arrive", i, e.Task, e.Kind)
			}
			tasks[e.Task] = &taskState{last: Arrive, lastT: e.T}
			continue
		}
		if ts.done {
			return fmt.Errorf("event %d: task %d got %v after its terminal event", i, e.Task, e.Kind)
		}
		if e.T < ts.lastT {
			return fmt.Errorf("event %d: task %d time went backwards at %v (%dns < %dns)",
				i, e.Task, e.Kind, e.T, ts.lastT)
		}
		if ts.last == QuantumEnd && (e.Kind != ProbeYield && e.Kind != Preempt && e.Kind != Finish) {
			return fmt.Errorf("event %d: task %d got %v after qend, want probe-yield, preempt, or finish",
				i, e.Task, e.Kind)
		}
		switch e.Kind {
		case Arrive:
			return fmt.Errorf("event %d: task %d arrived twice", i, e.Task)
		case Dispatch:
			if ts.last != Arrive && ts.last != ProbeYield && ts.last != Preempt {
				return fmt.Errorf("event %d: task %d dispatched after %v", i, e.Task, ts.last)
			}
		case QuantumStart:
			if ts.last != Dispatch && ts.last != ProbeYield && ts.last != Preempt {
				return fmt.Errorf("event %d: task %d quantum started after %v", i, e.Task, ts.last)
			}
			if other, busy := open[e.Core]; busy {
				return fmt.Errorf("event %d: task %d quantum started on core %d while task %d's quantum is open",
					i, e.Task, e.Core, other)
			}
			open[e.Core] = e.Task
			ts.core = e.Core
		case QuantumEnd:
			if ts.last != QuantumStart {
				return fmt.Errorf("event %d: task %d quantum ended after %v", i, e.Task, ts.last)
			}
			if e.Core != ts.core {
				return fmt.Errorf("event %d: task %d quantum ended on core %d but started on core %d",
					i, e.Task, e.Core, ts.core)
			}
			delete(open, e.Core)
		case ProbeYield, Preempt:
			if ts.last != QuantumEnd {
				return fmt.Errorf("event %d: task %d got %v after %v, want qend", i, e.Task, e.Kind, ts.last)
			}
			if e.T != ts.lastT {
				return fmt.Errorf("event %d: task %d %v at %dns but its quantum ended at %dns",
					i, e.Task, e.Kind, e.T, ts.lastT)
			}
		case Finish:
			clientView := ts.last == Arrive && e.Core == CoreLoadgen
			if ts.last != QuantumEnd && !clientView {
				return fmt.Errorf("event %d: task %d finished after %v", i, e.Task, ts.last)
			}
			if ts.last == QuantumEnd && e.T != ts.lastT {
				return fmt.Errorf("event %d: task %d finished at %dns but its last quantum ended at %dns",
					i, e.Task, e.T, ts.lastT)
			}
			ts.done = true
		case Drop:
			if ts.last != Arrive {
				return fmt.Errorf("event %d: task %d dropped after %v", i, e.Task, ts.last)
			}
			ts.done = true
		default:
			return fmt.Errorf("event %d: task %d has unknown kind %v", i, e.Task, e.Kind)
		}
		ts.last = e.Kind
		ts.lastT = e.T
	}
	return nil
}

// Conserved checks event conservation over a complete (untruncated)
// recording of a drained run: every arrived task reached exactly one
// terminal event — Finish or Drop — and every dispatched task reached
// Finish. It reports the first violation with the task's id and last
// recorded kind. Call Validate first; Conserved assumes per-task
// ordering holds.
func Conserved(events []Event) error {
	last := map[uint64]Kind{}
	for _, e := range events {
		last[e.Task] = e.Kind
	}
	// Scan the timeline, not the map: ranging over `last` would name a
	// different violating task on every run (map iteration order), so
	// "first violation" is defined as the task that appears earliest.
	checked := map[uint64]bool{}
	for _, e := range events {
		if checked[e.Task] {
			continue
		}
		checked[e.Task] = true
		if k := last[e.Task]; k != Finish && k != Drop {
			return fmt.Errorf("obs: task %d has no terminal event: last was %v", e.Task, k)
		}
	}
	return nil
}
