package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Summary aggregates one scheduler's event stream: what a run did,
// per core and overall, computed purely from the recorded timeline so
// it works identically on live traces, simulated traces, and traces
// read back from disk.
type Summary struct {
	// Name labels the scheduler (Process.Name when read from a file).
	Name string
	// Cores is the number of worker cores observed.
	Cores int
	// Start and End bound the observed timeline, in ns.
	Start, End int64
	// Counts tallies events by kind.
	Counts [KindCount]uint64
	// Tasks counts distinct arrived tasks; Finished and Dropped their
	// terminal outcomes.
	Tasks, Finished, Dropped uint64
	// CoreBusy is the executing time per core in ns (sum of quantum
	// durations); Util is CoreBusy over the observed span.
	CoreBusy []int64
	Util     []float64
	// Preemptions counts ProbeYield + Preempt events; PreemptRate is
	// per second of span.
	Preemptions uint64
	PreemptRate float64
	// MaxOccupancy is the high watermark of tasks in the system
	// (arrived, neither finished nor dropped).
	MaxOccupancy int
	// Sojourn is the exact-count histogram of arrive→finish latency.
	Sojourn stats.LatencyHist
}

// Summarize computes a Summary over one scheduler's events (emission
// order). Events of tasks whose Arrive fell outside the recording are
// still counted by kind but excluded from sojourn.
func Summarize(name string, events []Event) *Summary {
	s := &Summary{Name: name}
	if len(events) == 0 {
		return s
	}
	s.Start = events[0].T
	arrived := map[uint64]int64{}
	started := map[int32]int64{}
	occupancy := 0
	for _, e := range events {
		if e.T > s.End {
			s.End = e.T
		}
		if e.T < s.Start {
			s.Start = e.T
		}
		s.Counts[e.Kind]++
		if c := int(e.Core) + 1; e.Core >= 0 && c > s.Cores {
			s.Cores = c
		}
		switch e.Kind {
		case Arrive:
			arrived[e.Task] = e.T
			occupancy++
			if occupancy > s.MaxOccupancy {
				s.MaxOccupancy = occupancy
			}
		case QuantumStart:
			started[e.Core] = e.T
		case QuantumEnd:
			if at, ok := started[e.Core]; ok {
				for int(e.Core) >= len(s.CoreBusy) {
					s.CoreBusy = append(s.CoreBusy, 0)
				}
				s.CoreBusy[e.Core] += e.T - at
				delete(started, e.Core)
			}
		case ProbeYield, Preempt:
			s.Preemptions++
		case Finish:
			occupancy--
			if at, ok := arrived[e.Task]; ok {
				s.Sojourn.Add(e.T - at)
				delete(arrived, e.Task)
			}
		case Drop:
			occupancy--
			delete(arrived, e.Task)
		}
	}
	s.Tasks = s.Counts[Arrive]
	s.Finished = s.Counts[Finish]
	s.Dropped = s.Counts[Drop]
	span := s.End - s.Start
	for int(s.Cores) > len(s.CoreBusy) {
		s.CoreBusy = append(s.CoreBusy, 0)
	}
	s.Util = make([]float64, len(s.CoreBusy))
	if span > 0 {
		for i, busy := range s.CoreBusy {
			s.Util[i] = float64(busy) / float64(span)
		}
		s.PreemptRate = float64(s.Preemptions) / (float64(span) / 1e9)
	}
	return s
}

// MeanUtil is the mean per-core utilization over the span.
func (s *Summary) MeanUtil() float64 {
	if len(s.Util) == 0 {
		return 0
	}
	var sum float64
	for _, u := range s.Util {
		sum += u
	}
	return sum / float64(len(s.Util))
}

// Format writes a human-readable report.
func (s *Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "%s: %d cores, span %.3fms, %d tasks (%d finished, %d dropped)\n",
		s.Name, s.Cores, float64(s.End-s.Start)/1e6, s.Tasks, s.Finished, s.Dropped)
	fmt.Fprintf(w, "  events:")
	for k := 0; k < KindCount; k++ {
		if s.Counts[k] > 0 {
			fmt.Fprintf(w, " %v=%d", Kind(k), s.Counts[k])
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  util: mean %.1f%% per-core [", 100*s.MeanUtil())
	for i, u := range s.Util {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprintf(w, "%.0f%%", 100*u)
	}
	fmt.Fprintln(w, "]")
	fmt.Fprintf(w, "  preemptions: %d (%.3gM/s), max occupancy %d\n",
		s.Preemptions, s.PreemptRate/1e6, s.MaxOccupancy)
	if s.Sojourn.Count() > 0 {
		fmt.Fprintf(w, "  sojourn: p50 %.1fµs  p99 %.1fµs  p99.9 %.1fµs  max %.1fµs (n=%d)\n",
			float64(s.Sojourn.P50())/1000, float64(s.Sojourn.P99())/1000,
			float64(s.Sojourn.Quantile(0.999))/1000, float64(s.Sojourn.Max())/1000,
			s.Sojourn.Count())
	}
}

// Diff writes a side-by-side comparison of two summaries — the heart
// of `tqtrace diff`: where one policy spends its cores, preempts, and
// holds its tails against another on the same workload.
func Diff(w io.Writer, a, b *Summary) {
	row := func(label string, av, bv float64, unit string) {
		delta := bv - av
		sign := "+"
		if delta < 0 {
			sign = ""
		}
		fmt.Fprintf(w, "  %-18s %12.4g %12.4g   %s%.4g%s\n", label, av, bv, sign, delta, unit)
	}
	fmt.Fprintf(w, "%-20s %12s %12s   %s\n", "metric", trunc(a.Name, 12), trunc(b.Name, 12), "delta")
	row("tasks", float64(a.Tasks), float64(b.Tasks), "")
	row("finished", float64(a.Finished), float64(b.Finished), "")
	row("dropped", float64(a.Dropped), float64(b.Dropped), "")
	row("mean util %", 100*a.MeanUtil(), 100*b.MeanUtil(), "")
	row("preempt/s", a.PreemptRate, b.PreemptRate, "")
	row("max occupancy", float64(a.MaxOccupancy), float64(b.MaxOccupancy), "")
	row("p50 sojourn µs", float64(a.Sojourn.P50())/1000, float64(b.Sojourn.P50())/1000, "")
	row("p99 sojourn µs", float64(a.Sojourn.P99())/1000, float64(b.Sojourn.P99())/1000, "")
	row("p99.9 sojourn µs", float64(a.Sojourn.Quantile(0.999))/1000, float64(b.Sojourn.Quantile(0.999))/1000, "")
}

func trunc(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Window is one bucket of the windowed time series.
type Window struct {
	// Start is the window's inclusive lower bound, ns.
	Start int64
	// Busy is mean core utilization inside the window (quantum time
	// overlapping the window, over cores × width).
	Busy float64
	// Occupancy is the number of in-system tasks at the window's end.
	Occupancy int
	// Dispatches, Preemptions, Finishes, Drops count events inside the
	// window.
	Dispatches, Preemptions, Finishes, Drops int
	// P50 and P99 are sojourn quantiles (ns) over tasks finishing in
	// the window; 0 when nothing finished.
	P50, P99 int64
}

// Windows slices the event stream into fixed-width buckets (width ns)
// and computes the per-window time series: utilization, occupancy,
// dispatch/preemption/finish/drop rates, and sliding sojourn
// quantiles. Quantum time is apportioned exactly across the windows it
// overlaps. Events must be in emission order.
func Windows(events []Event, width int64) []Window {
	if len(events) == 0 || width <= 0 {
		return nil
	}
	start, end := events[0].T, events[0].T
	for _, e := range events {
		if e.T < start {
			start = e.T
		}
		if e.T > end {
			end = e.T
		}
	}
	n := int((end-start)/width) + 1
	wins := make([]Window, n)
	hists := make([]stats.LatencyHist, n)
	for i := range wins {
		wins[i].Start = start + int64(i)*width
	}
	idx := func(t int64) int {
		i := int((t - start) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	cores := 0
	arrived := map[uint64]int64{}
	started := map[int32]int64{}
	occupancy := 0
	// occAt records the latest occupancy seen per window; windows with
	// no events inherit their predecessor's value afterwards.
	occAt := make([]int, n)
	occSet := make([]bool, n)
	busy := make([]int64, n) // quantum ns overlapping each window
	for _, e := range events {
		if c := int(e.Core) + 1; e.Core >= 0 && c > cores {
			cores = c
		}
		w := idx(e.T)
		switch e.Kind {
		case Arrive:
			arrived[e.Task] = e.T
			occupancy++
		case Dispatch:
			wins[w].Dispatches++
		case QuantumStart:
			started[e.Core] = e.T
		case QuantumEnd:
			at, ok := started[e.Core]
			if !ok {
				break
			}
			delete(started, e.Core)
			// Apportion [at, e.T) across the windows it overlaps.
			for t := at; t < e.T; {
				i := idx(t)
				winEnd := wins[i].Start + width
				seg := e.T
				if winEnd < seg {
					seg = winEnd
				}
				busy[i] += seg - t
				t = seg
			}
		case ProbeYield, Preempt:
			wins[w].Preemptions++
		case Finish:
			wins[w].Finishes++
			occupancy--
			if at, ok := arrived[e.Task]; ok {
				hists[w].Add(e.T - at)
				delete(arrived, e.Task)
			}
		case Drop:
			wins[w].Drops++
			occupancy--
			delete(arrived, e.Task)
		}
		occAt[w] = occupancy
		occSet[w] = true
	}
	if cores == 0 {
		cores = 1
	}
	prevOcc := 0
	for i := range wins {
		if occSet[i] {
			prevOcc = occAt[i]
		}
		wins[i].Occupancy = prevOcc
		wins[i].Busy = float64(busy[i]) / (float64(width) * float64(cores))
		if hists[i].Count() > 0 {
			wins[i].P50 = hists[i].P50()
			wins[i].P99 = hists[i].P99()
		}
	}
	return wins
}

// WriteWindowsTSV renders the windowed series as tab-separated rows
// with a header — the `tqsim -metrics` output format.
func WriteWindowsTSV(w io.Writer, wins []Window) error {
	if _, err := fmt.Fprintln(w, "start_us\tutil\toccupancy\tdispatches\tpreemptions\tfinishes\tdrops\tp50_us\tp99_us"); err != nil {
		return err
	}
	for _, win := range wins {
		if _, err := fmt.Fprintf(w, "%.3f\t%.4f\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\n",
			float64(win.Start)/1000, win.Busy, win.Occupancy,
			win.Dispatches, win.Preemptions, win.Finishes, win.Drops,
			float64(win.P50)/1000, float64(win.P99)/1000); err != nil {
			return err
		}
	}
	return nil
}

// SortByTime stably sorts events by timestamp, preserving emission
// order at equal instants — useful before exporting streams merged
// from independent recorders.
func SortByTime(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
}
