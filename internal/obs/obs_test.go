package obs

import (
	"strings"
	"testing"
)

func TestRingCapAndTruncation(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: int64(i), Task: uint64(i), Kind: Arrive})
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	if !r.Truncated() || r.Discarded() != 6 {
		t.Fatalf("truncated=%v discarded=%d, want true/6", r.Truncated(), r.Discarded())
	}
	// Prefix semantics: the four kept events are the first four.
	for i, e := range r.Events() {
		if e.Task != uint64(i) {
			t.Fatalf("event %d is task %d, want %d (prefix, not suffix)", i, e.Task, i)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Truncated() {
		t.Fatal("reset did not clear")
	}
	r.Emit(Event{T: 99})
	if r.Len() != 1 {
		t.Fatal("ring unusable after reset")
	}
}

func TestRingZeroValueAndZeroAlloc(t *testing.T) {
	var r Ring
	r.Emit(Event{T: 1})
	if r.Len() != 1 {
		t.Fatal("zero-value ring did not record")
	}
	r2 := NewRing(1024)
	allocs := testing.AllocsPerRun(100, func() {
		r2.Reset()
		for i := 0; i < 100; i++ {
			r2.Emit(Event{T: int64(i), Task: uint64(i), Kind: QuantumStart})
		}
	})
	if allocs != 0 {
		t.Fatalf("Emit allocated %.1f times per run, want 0", allocs)
	}
}

func TestShardedMergesInTimeOrder(t *testing.T) {
	s := NewSharded(3, 16)
	s.Shard(0).Emit(Event{T: 5, Task: 1, Kind: Arrive})
	s.Shard(1).Emit(Event{T: 3, Task: 2, Kind: Arrive})
	s.Shard(2).Emit(Event{T: 5, Task: 3, Kind: Arrive})
	s.Shard(0).Emit(Event{T: 9, Task: 1, Kind: Drop})
	got := s.Events()
	if len(got) != 4 {
		t.Fatalf("merged %d events, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].T < got[i-1].T {
			t.Fatalf("merge out of order at %d: %d after %d", i, got[i].T, got[i-1].T)
		}
	}
	// Stable at equal instants: shard 0's t=5 event precedes shard 2's.
	if got[1].Task != 1 || got[2].Task != 3 {
		t.Fatalf("equal-instant order not stable: tasks %d,%d", got[1].Task, got[2].Task)
	}
	if s.Truncated() {
		t.Fatal("spurious truncation")
	}
}

// lifecycle returns a minimal valid two-quantum task timeline.
func lifecycle(task uint64, core int32, t0 int64) []Event {
	return []Event{
		{T: t0, Task: task, Core: CoreLoadgen, Kind: Arrive},
		{T: t0 + 10, Task: task, Core: core, Kind: Dispatch},
		{T: t0 + 20, Task: task, Core: core, Kind: QuantumStart},
		{T: t0 + 40, Task: task, Core: core, Kind: QuantumEnd},
		{T: t0 + 40, Task: task, Core: core, Kind: ProbeYield},
		{T: t0 + 50, Task: task, Core: core, Kind: QuantumStart},
		{T: t0 + 70, Task: task, Core: core, Kind: QuantumEnd},
		{T: t0 + 70, Task: task, Core: core, Kind: Finish},
	}
}

func TestValidateAcceptsLifecycle(t *testing.T) {
	events := append(lifecycle(1, 0, 0), lifecycle(2, 1, 5)...)
	SortByTime(events)
	if err := Validate(events); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	if err := Conserved(events); err != nil {
		t.Fatalf("conserved timeline rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string // substring of the error
	}{
		{"no arrive", []Event{{T: 0, Task: 7, Kind: Dispatch}}, "task 7 begins with dispatch"},
		{"double arrive", []Event{{T: 0, Task: 7, Kind: Arrive}, {T: 1, Task: 7, Kind: Arrive}}, "arrived twice"},
		{"backwards", []Event{{T: 5, Task: 7, Kind: Arrive}, {T: 1, Task: 7, Kind: Dispatch}}, "time went backwards"},
		{"qend without qstart", []Event{{T: 0, Task: 7, Kind: Arrive}, {T: 1, Task: 7, Kind: Dispatch}, {T: 2, Task: 7, Kind: QuantumEnd}}, "quantum ended after"},
		{"drop after dispatch", []Event{{T: 0, Task: 7, Kind: Arrive}, {T: 1, Task: 7, Kind: Dispatch}, {T: 2, Task: 7, Kind: Drop}}, "dropped after"},
		{"overlapping quanta on core", func() []Event {
			a := lifecycle(1, 0, 0)[:3] // task 1 has an open quantum on core 0
			b := []Event{
				{T: 21, Task: 2, Kind: Arrive},
				{T: 22, Task: 2, Core: 0, Kind: Dispatch},
				{T: 23, Task: 2, Core: 0, Kind: QuantumStart},
			}
			return append(a, b...)
		}(), "while task 1's quantum is open"},
		{"finish late", []Event{
			{T: 0, Task: 7, Kind: Arrive}, {T: 1, Task: 7, Kind: Dispatch},
			{T: 2, Task: 7, Kind: QuantumStart}, {T: 3, Task: 7, Kind: QuantumEnd},
			{T: 4, Task: 7, Kind: Finish},
		}, "finished at 4ns but its last quantum ended at 3ns"},
		{"event after terminal", []Event{
			{T: 0, Task: 7, Kind: Arrive}, {T: 1, Task: 7, Kind: Drop}, {T: 2, Task: 7, Kind: Dispatch},
		}, "after its terminal event"},
	}
	for _, tc := range cases {
		err := Validate(tc.events)
		if err == nil {
			t.Errorf("%s: invalid timeline accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAllowsClientViewFinish(t *testing.T) {
	events := []Event{
		{T: 0, Task: 1, Core: CoreLoadgen, Kind: Arrive},
		{T: 100, Task: 1, Core: CoreLoadgen, Kind: Finish},
	}
	if err := Validate(events); err != nil {
		t.Fatalf("client-view finish rejected: %v", err)
	}
}

func TestConservedCatchesLostTask(t *testing.T) {
	events := lifecycle(1, 0, 0)
	events = append(events, Event{T: 200, Task: 9, Core: CoreLoadgen, Kind: Arrive},
		Event{T: 210, Task: 9, Core: 0, Kind: Dispatch})
	if err := Conserved(events); err == nil {
		t.Fatal("lost task not reported")
	} else if !strings.Contains(err.Error(), "task 9") || !strings.Contains(err.Error(), "dispatch") {
		t.Fatalf("error %q should name task 9 and its last kind", err)
	}
}

// TestConservedFirstViolationDeterministic is the run-twice regression
// test for the map-order bug simvet's maporder analyzer flagged here:
// with several non-terminal tasks, Conserved used to range over its
// task map and name a different violating task on every run. The
// contract is now first-by-timeline-appearance.
func TestConservedFirstViolationDeterministic(t *testing.T) {
	var events []Event
	// Ten violating tasks; task 100 arrives first, so it must be the one
	// reported, every run.
	for i := 0; i < 10; i++ {
		events = append(events, Event{T: int64(i), Task: uint64(100 + i), Core: CoreLoadgen, Kind: Arrive})
	}
	first := Conserved(events)
	if first == nil {
		t.Fatal("non-terminal tasks not reported")
	}
	if !strings.Contains(first.Error(), "task 100") {
		t.Fatalf("error %q should name task 100, the earliest violator", first)
	}
	for i := 0; i < 20; i++ {
		again := Conserved(events)
		if again == nil || again.Error() != first.Error() {
			t.Fatalf("run %d: verdict changed: first %q, again %v", i, first, again)
		}
	}
}

func TestSummarize(t *testing.T) {
	events := append(lifecycle(1, 0, 0), lifecycle(2, 1, 5)...)
	events = append(events,
		Event{T: 80, Task: 3, Core: CoreLoadgen, Kind: Arrive},
		Event{T: 81, Task: 3, Core: CoreDispatcher, Kind: Drop})
	SortByTime(events)
	s := Summarize("test", events)
	if s.Cores != 2 {
		t.Fatalf("cores %d, want 2", s.Cores)
	}
	if s.Tasks != 3 || s.Finished != 2 || s.Dropped != 1 {
		t.Fatalf("tasks/finished/dropped %d/%d/%d, want 3/2/1", s.Tasks, s.Finished, s.Dropped)
	}
	if s.Preemptions != 2 {
		t.Fatalf("preemptions %d, want 2", s.Preemptions)
	}
	// Each task executes two 20ns quanta on its core.
	if s.CoreBusy[0] != 40 || s.CoreBusy[1] != 40 {
		t.Fatalf("core busy %v, want [40 40]", s.CoreBusy)
	}
	// Sojourn is 70ns for both finished tasks.
	if got := s.Sojourn.Quantile(0.5); got != 70 {
		t.Fatalf("p50 sojourn %d, want 70", got)
	}
	var sb strings.Builder
	s.Format(&sb)
	for _, want := range []string{"2 cores", "3 tasks", "finish=2", "drop=1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary %q missing %q", sb.String(), want)
		}
	}
}

func TestWindows(t *testing.T) {
	// One task runs a 30ns quantum spanning three 20ns windows:
	// [20,40) busy 20 in window 1, [40,50) busy 10 in window 2.
	events := []Event{
		{T: 0, Task: 1, Core: CoreLoadgen, Kind: Arrive},
		{T: 10, Task: 1, Core: 0, Kind: Dispatch},
		{T: 20, Task: 1, Core: 0, Kind: QuantumStart},
		{T: 50, Task: 1, Core: 0, Kind: QuantumEnd},
		{T: 50, Task: 1, Core: 0, Kind: Finish},
	}
	wins := Windows(events, 20)
	if len(wins) != 3 {
		t.Fatalf("%d windows, want 3", len(wins))
	}
	if wins[0].Busy != 0 || wins[1].Busy != 1.0 || wins[2].Busy != 0.5 {
		t.Fatalf("busy %v %v %v, want 0 1 0.5", wins[0].Busy, wins[1].Busy, wins[2].Busy)
	}
	if wins[0].Occupancy != 1 || wins[2].Occupancy != 0 {
		t.Fatalf("occupancy %d,%d, want 1,0", wins[0].Occupancy, wins[2].Occupancy)
	}
	if wins[2].Finishes != 1 || wins[2].P50 != 50 {
		t.Fatalf("window 2: finishes=%d p50=%d, want 1, 50", wins[2].Finishes, wins[2].P50)
	}
	var sb strings.Builder
	if err := WriteWindowsTSV(&sb, wins); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 4 {
		t.Fatalf("TSV has %d lines, want header + 3", lines)
	}
}

func TestDiffNamesBothSystems(t *testing.T) {
	a := Summarize("alpha", lifecycle(1, 0, 0))
	b := Summarize("beta", lifecycle(1, 0, 0))
	var sb strings.Builder
	Diff(&sb, a, b)
	if !strings.Contains(sb.String(), "alpha") || !strings.Contains(sb.String(), "beta") {
		t.Fatalf("diff output missing system names:\n%s", sb.String())
	}
}
