package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Process is one scheduler's timeline in an exported trace: a named
// group of events sharing a pid in the Chrome trace-event file. A
// comparison trace (tqsim -trace, tqtrace export) holds one Process
// per machine so Perfetto shows the schedulers stacked on a shared
// time axis.
type Process struct {
	// Name labels the process group (the machine's Name()).
	Name string
	// Events is the time-ordered event stream.
	Events []Event
}

// Track layout inside a process: tid 0 is the load generator, tid 1
// the dispatcher, and core c maps to tid c+2, so Perfetto's default
// tid ordering shows loadgen, dispatcher, then cores in index order.
const (
	tidLoadgen    = 0
	tidDispatcher = 1
	tidCoreBase   = 2
)

func coreTid(core int32) int {
	switch core {
	case CoreLoadgen:
		return tidLoadgen
	case CoreDispatcher:
		return tidDispatcher
	default:
		return int(core) + tidCoreBase
	}
}

func tidCore(tid int) int32 {
	switch tid {
	case tidLoadgen:
		return CoreLoadgen
	case tidDispatcher:
		return CoreDispatcher
	default:
		return int32(tid - tidCoreBase)
	}
}

// chromeEvent is one record of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order here is the on-disk field order — it is part of the
// golden-file contract, so do not reorder.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"` // µs, fractional for sub-µs precision
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args interface{} `json:"args,omitempty"`
}

// chromeArgs carries the event payload so the export is lossless:
// ReadChrome reconstructs Event exactly from cat + ts + args.
type chromeArgs struct {
	Task  uint64 `json:"task"`
	Class int16  `json:"class"`
	Core  int32  `json:"core"`
}

type chromeName struct {
	Name string `json:"name"`
}

type chromeSort struct {
	SortIndex int `json:"sort_index"`
}

// trackName labels a tid for the metadata events.
func trackName(tid int) string {
	switch tid {
	case tidLoadgen:
		return "loadgen"
	case tidDispatcher:
		return "dispatcher"
	default:
		return fmt.Sprintf("core %d", tid-tidCoreBase)
	}
}

// WriteChrome renders the processes as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. Each process becomes a pid
// with named loadgen/dispatcher/core tracks; QuantumStart/QuantumEnd
// become matched B/E duration slices on the executing core's track and
// every other kind becomes a thread-scoped instant. The mapping is
// one-to-one and in input order, so ReadChrome recovers the exact
// event streams. Events must be time-ordered per track (emission order
// from any recorder in this package satisfies this).
func WriteChrome(w io.Writer, procs ...Process) error {
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	first := true
	put := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	for pi := range procs {
		p := &procs[pi]
		pid := pi + 1
		if err := put(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: chromeName{p.Name}}); err != nil {
			return err
		}
		if err := put(chromeEvent{Name: "process_sort_index", Ph: "M", Pid: pid, Args: chromeSort{pi}}); err != nil {
			return err
		}
		for _, tid := range trackTids(p.Events) {
			if err := put(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: chromeName{trackName(tid)}}); err != nil {
				return err
			}
		}
		for _, e := range p.Events {
			ce := chromeEvent{
				Cat:  e.Kind.String(),
				Ts:   float64(e.T) / 1000,
				Pid:  pid,
				Tid:  coreTid(e.Core),
				Args: chromeArgs{Task: e.Task, Class: e.Class, Core: e.Core},
			}
			switch e.Kind {
			case QuantumStart:
				ce.Name = fmt.Sprintf("task %d (class %d)", e.Task, e.Class)
				ce.Ph = "B"
			case QuantumEnd:
				ce.Name = fmt.Sprintf("task %d (class %d)", e.Task, e.Class)
				ce.Ph = "E"
			default:
				ce.Name = fmt.Sprintf("%s task %d", e.Kind, e.Task)
				ce.Ph = "i"
				ce.S = "t"
				if e.Kind == Dispatch {
					// Dispatch renders on the dispatcher track; the
					// chosen core rides in args.core.
					ce.Tid = tidDispatcher
				}
			}
			if err := put(ce); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// trackTids returns the sorted set of tids the events touch, always
// including the loadgen and dispatcher tracks when any event exists.
func trackTids(events []Event) []int {
	if len(events) == 0 {
		return nil
	}
	seen := map[int]bool{tidLoadgen: true, tidDispatcher: true}
	for _, e := range events {
		seen[coreTid(e.Core)] = true
	}
	tids := make([]int, 0, len(seen))
	for t := range seen {
		tids = append(tids, t)
	}
	sort.Ints(tids)
	return tids
}

// ReadChrome parses a trace written by WriteChrome back into its
// processes, with events exactly as recorded (timestamps recover the
// original nanosecond values). It tolerates and ignores metadata and
// events from other producers whose cat is not an obs kind.
func ReadChrome(r io.Reader) ([]Process, error) {
	var file struct {
		TraceEvents []struct {
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Name string  `json:"name"`
			Args struct {
				Task  uint64 `json:"task"`
				Class int16  `json:"class"`
				Core  int32  `json:"core"`
				Name  string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("obs: not a trace-event file: %w", err)
	}
	byPid := map[int]*Process{}
	var pids []int
	proc := func(pid int) *Process {
		p := byPid[pid]
		if p == nil {
			p = &Process{}
			byPid[pid] = p
			pids = append(pids, pid)
		}
		return p
	}
	for _, ce := range file.TraceEvents {
		if ce.Ph == "M" {
			if ce.Name == "process_name" {
				proc(ce.Pid).Name = ce.Args.Name
			}
			continue
		}
		kind, ok := KindFromString(ce.Cat)
		if !ok {
			continue
		}
		proc(ce.Pid).Events = append(proc(ce.Pid).Events, Event{
			T:     int64(math.Round(ce.Ts * 1000)),
			Task:  ce.Args.Task,
			Core:  ce.Args.Core,
			Class: ce.Args.Class,
			Kind:  kind,
		})
	}
	sort.Ints(pids)
	out := make([]Process, 0, len(pids))
	for _, pid := range pids {
		out = append(out, *byPid[pid])
	}
	return out, nil
}
