package rack

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Variant identifies one fleet configuration in a rack sweep: a
// routing policy on N instances of a registry machine.
type Variant struct {
	// Policy is the routing policy name (RouterNames).
	Policy string
	// Machine is the per-node registry machine name.
	Machine string
	// N is the fleet size.
	N int
}

// Fleet returns the variant's Fleet value.
func (v Variant) Fleet() Fleet { return Fleet{N: v.N, Machine: v.Machine, Policy: v.Policy} }

// Variants builds the cross product policies × machines × sizes in
// that nesting order — the grid Sweep iterates.
func Variants(policies, machines []string, sizes []int) []Variant {
	var out []Variant
	for _, p := range policies {
		for _, m := range machines {
			for _, n := range sizes {
				out = append(out, Variant{Policy: p, Machine: m, N: n})
			}
		}
	}
	return out
}

// SweepResult pairs one variant with its rate-sweep results, in rate
// order.
type SweepResult struct {
	// Variant is the fleet configuration the results belong to.
	Variant Variant
	// Results holds one fleet-aggregate Result per rate-grid point.
	Results []*cluster.Result
}

// Sweep runs every variant over the rate grid through
// cluster.ParallelSweep: each (variant, rate) point is an independent
// fleet simulation under its own derived seed, so the returned series
// are identical for any worker count. Results come back in variant
// order, each series in rate order.
func Sweep(variants []Variant, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64, opt cluster.SweepOptions) []SweepResult {
	out := make([]SweepResult, 0, len(variants))
	for _, v := range variants {
		fleet := v.Fleet()
		mf := func() cluster.Machine { return fleet }
		out = append(out, SweepResult{
			Variant: v,
			Results: cluster.ParallelSweep(mf, w, rates, dur, warm, seed, opt),
		})
	}
	return out
}
