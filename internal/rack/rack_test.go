package rack

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The fleet suite mirrors the cluster conformance suite one level up:
// every routing policy gets the kernel invariants checked over a sample
// of registry machines — conservation fleet-wide, run-twice
// determinism, grammatical timelines — with no hand-written per-policy
// test.

// machineSample covers the three admission shapes: multi-dispatcher
// bounded lanes (tq), one serial bounded stage (shinjuku), and
// per-worker NIC lanes (d-fcfs).
var machineSample = []string{"tq", "shinjuku", "d-fcfs"}

const testFleetSize = 4

// fleetConfigs exercises both regimes at fleet scale: rates are per
// aggregate fleet capacity (testFleetSize machines × 16 workers).
func fleetConfigs() map[string]cluster.RunConfig {
	hb := workload.HighBimodal()
	return map[string]cluster.RunConfig{
		"midload": {
			Workload: hb,
			Rate:     0.7 * hb.MaxLoad(16*testFleetSize),
			Duration: 5 * sim.Millisecond,
			Warmup:   500 * sim.Microsecond,
			Seed:     7,
		},
		"overload": {
			Workload: hb,
			Rate:     1.3 * hb.MaxLoad(16*testFleetSize),
			Duration: 2 * sim.Millisecond,
			Warmup:   200 * sim.Microsecond,
			Seed:     7,
		},
	}
}

// classSummary and resultSummary reduce a Result to comparable values
// (samples become their tail quantiles) for determinism checks.
type classSummary struct {
	Name        string
	Count, Good uint64
	P99, P999   float64
}

type resultSummary struct {
	System                      string
	Completed, Offered, Dropped uint64
	Throughput, Goodput         float64
	Classes                     []classSummary
}

func summarize(r *cluster.Result) resultSummary {
	s := resultSummary{
		System:     r.System,
		Completed:  r.Completed,
		Offered:    r.Offered,
		Dropped:    r.Dropped,
		Throughput: r.Throughput,
		Goodput:    r.Goodput,
	}
	for i := range r.PerClass {
		c := &r.PerClass[i]
		cs := classSummary{Name: c.Name, Count: c.Count, Good: c.Good}
		if c.Count > 0 {
			cs.P99 = c.Sojourn.P99()
			cs.P999 = c.Sojourn.P999()
		}
		s.Classes = append(s.Classes, cs)
	}
	return s
}

// TestFleetConformance checks, for every routing policy × sampled
// machine × regime:
//
//   - fleet-wide conservation: Fleet.Offered == Fleet.Completed +
//     Fleet.Dropped, and the fleet counts equal the per-machine sums;
//   - per-machine conservation (each node keeps the kernel's law);
//   - run-twice determinism: a fresh Fleet on the same config
//     reproduces every number bit for bit.
func TestFleetConformance(t *testing.T) {
	for _, policy := range RouterNames() {
		for _, machine := range machineSample {
			for cfgName, cfg := range fleetConfigs() {
				f := Fleet{N: testFleetSize, Machine: machine, Policy: policy}
				t.Run(policy+"/"+machine+"/"+cfgName, func(t *testing.T) {
					t.Parallel()
					res := f.RunFleet(cfg)
					fl := res.Fleet
					if fl.Offered != fl.Completed+fl.Dropped {
						t.Errorf("fleet conservation violated: offered %d != completed %d + dropped %d",
							fl.Offered, fl.Completed, fl.Dropped)
					}
					var offered, completed, dropped, placed uint64
					for i, r := range res.PerMachine {
						if r.Offered != r.Completed+r.Dropped {
							t.Errorf("machine %d conservation violated: offered %d != completed %d + dropped %d",
								i, r.Offered, r.Completed, r.Dropped)
						}
						offered += r.Offered
						completed += r.Completed
						dropped += r.Dropped
						placed += res.Placed[i]
					}
					if fl.Offered != offered || fl.Completed != completed || fl.Dropped != dropped {
						t.Errorf("fleet counts %d/%d/%d differ from per-machine sums %d/%d/%d",
							fl.Offered, fl.Completed, fl.Dropped, offered, completed, dropped)
					}
					if placed == 0 {
						t.Error("router placed no requests")
					}
					if fl.Events == 0 {
						t.Error("fleet executed no events")
					}
					again := Fleet{N: testFleetSize, Machine: machine, Policy: policy}.RunFleet(cfg)
					if !reflect.DeepEqual(summarize(fl), summarize(again.Fleet)) {
						t.Errorf("run-twice mismatch:\nfirst:  %+v\nsecond: %+v",
							summarize(fl), summarize(again.Fleet))
					}
					if !reflect.DeepEqual(res.Placed, again.Placed) {
						t.Errorf("run-twice placement mismatch:\nfirst:  %v\nsecond: %v",
							res.Placed, again.Placed)
					}
				})
			}
		}
	}
}

// TestFleetSweepWorkerInvariance pins the acceptance property that a
// rack sweep reproduces identical results for any ParallelSweep worker
// count.
func TestFleetSweepWorkerInvariance(t *testing.T) {
	w := workload.HighBimodal()
	rates := cluster.RatesUpTo(1.2*w.MaxLoad(16*testFleetSize), 3)
	variants := Variants([]string{"random", "sew"}, []string{"tq"}, []int{testFleetSize})
	var base []SweepResult
	for _, workers := range []int{1, 4} {
		got := Sweep(variants, w, rates, 2*sim.Millisecond, 200*sim.Microsecond, 11,
			cluster.SweepOptions{Workers: workers})
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			for j := range got[i].Results {
				if !reflect.DeepEqual(summarize(base[i].Results[j]), summarize(got[i].Results[j])) {
					t.Fatalf("variant %v point %d differs between worker counts", got[i].Variant, j)
				}
			}
		}
	}
}

// TestFleetSharedTimeline checks the machine dimension of a shared
// recorder: the fleet's one timeline must satisfy the obs grammar and
// conservation, with each machine's worker cores in its own
// MachineCoreStride band.
func TestFleetSharedTimeline(t *testing.T) {
	cfg := fleetConfigs()["midload"]
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	rec := obs.NewRing(1 << 21)
	cfg.Obs = rec
	Fleet{N: testFleetSize, Machine: "tq", Policy: "rr"}.RunFleet(cfg)
	if rec.Truncated() {
		t.Fatalf("recorder truncated (%d discarded); raise the test cap", rec.Discarded())
	}
	if err := obs.Validate(rec.Events()); err != nil {
		t.Errorf("shared timeline grammar: %v", err)
	}
	if err := obs.Conserved(rec.Events()); err != nil {
		t.Errorf("shared timeline conservation: %v", err)
	}
	bands := map[int32]bool{}
	for _, e := range rec.Events() {
		if e.Core >= 0 {
			bands[e.Core/MachineCoreStride] = true
		}
	}
	if len(bands) != testFleetSize {
		t.Errorf("worker events span %d machine bands, want %d (round-robin touches every machine)",
			len(bands), testFleetSize)
	}
}

// TestFleetTrace checks the per-machine process form: one validated
// obs.Process per machine, each distinctly named.
func TestFleetTrace(t *testing.T) {
	cfg := fleetConfigs()["midload"]
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	procs, err := Fleet{N: testFleetSize, Machine: "tq", Policy: "p2c"}.Trace(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != testFleetSize {
		t.Fatalf("%d processes for %d machines", len(procs), testFleetSize)
	}
	seen := map[string]bool{}
	for i, p := range procs {
		if p.Name == "" || seen[p.Name] {
			t.Errorf("process %d: empty or duplicate name %q", i, p.Name)
		}
		seen[p.Name] = true
		if len(p.Events) == 0 {
			t.Errorf("process %d (%s): no events", i, p.Name)
		}
	}
}

// TestRoundRobinPlacementIsEven pins rr's defining property: placement
// counts differ by at most one across machines.
func TestRoundRobinPlacementIsEven(t *testing.T) {
	cfg := fleetConfigs()["midload"]
	res := Fleet{N: testFleetSize, Machine: "tq", Policy: "rr"}.RunFleet(cfg)
	min, max := res.Placed[0], res.Placed[0]
	for _, p := range res.Placed[1:] {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin placement spread %v", res.Placed)
	}
}

// TestRSSPlacementIsSticky pins rss's defining property: equal request
// IDs land on equal machines regardless of load.
func TestRSSPlacementIsSticky(t *testing.T) {
	rt, err := NewRouter("rss", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	v := staticView{n: 8, backlog: []int{9, 0, 3, 5, 1, 7, 2, 4}}
	for id := uint64(0); id < 64; id++ {
		req := workload.Request{ID: id}
		first := rt.Route(req, v)
		if again := rt.Route(req, v); again != first {
			t.Fatalf("request %d routed to %d then %d", id, first, again)
		}
	}
}

// TestRoutersStayInRange drives every policy over a skewed static view
// and checks indices stay in range and load-aware policies prefer the
// emptier machine.
func TestRoutersStayInRange(t *testing.T) {
	v := staticView{n: 4, backlog: []int{50, 0, 50, 50}}
	for _, name := range RouterNames() {
		rt, err := NewRouter(name, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if rt.Name() != name {
			t.Errorf("router %q reports name %q", name, rt.Name())
		}
		counts := make([]int, v.n)
		for id := uint64(0); id < 256; id++ {
			m := rt.Route(workload.Request{ID: id}, v)
			if m < 0 || m >= v.n {
				t.Fatalf("%s routed to %d of %d", name, m, v.n)
			}
			counts[m]++
		}
		switch name {
		case "least", "sew":
			if counts[1] != 256 {
				t.Errorf("%s sent %v to a statically skewed fleet; want everything on machine 1", name, counts)
			}
		case "p2c":
			if counts[1] < 64 {
				t.Errorf("p2c sent only %d/256 to the empty machine", counts[1])
			}
		}
	}
}

// TestNewRouterUnknown checks the error path names the catalogue.
func TestNewRouterUnknown(t *testing.T) {
	_, err := NewRouter("jsq", rng.New(1))
	if err == nil {
		t.Fatal("unknown policy did not error")
	}
	if !strings.Contains(err.Error(), "sew") {
		t.Errorf("error %q does not list known policies", err)
	}
}

// staticView is a fixed-backlog View for router unit tests.
type staticView struct {
	n       int
	backlog []int
}

func (v staticView) Machines() int     { return v.n }
func (v staticView) Backlog(m int) int { return v.backlog[m] }
func (v staticView) Workers(int) int   { return 16 }
