package rack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// View is the router's window onto fleet state at routing time. All of
// it is blind: queue depths and worker counts, never a request's actual
// service demand. Policies may additionally read the arriving request's
// class label and learn per-class service estimates from completions
// (as RackSched types requests) — but nothing reveals an individual
// request's demand before it runs.
type View interface {
	// Machines is the fleet size.
	Machines() int
	// Backlog reports machine m's in-flight request count (admitted,
	// not yet completed) — the queue-depth signal.
	Backlog(m int) int
	// Workers reports machine m's worker-core count, for normalizing
	// backlog into an expected wait.
	Workers(m int) int
}

// Router picks the destination machine for each arriving request. A
// router may keep state (round-robin cursors, EWMA estimates); a Fleet
// run constructs a fresh router, so runs stay independent and
// deterministic.
type Router interface {
	// Route returns the machine index in [0, v.Machines()) for req.
	Route(req workload.Request, v View) int
	// Name is the policy's stable key, as accepted by NewRouter.
	Name() string
}

// feedbackObserver is the optional Router extension for policies that
// learn from per-machine outcomes: done receives the class and base
// service demand of every completion, dropped the class of every
// admission drop — together they retire everything the router placed.
type feedbackObserver interface {
	done(machine int, class workload.Class, service sim.Time)
	dropped(machine int, class workload.Class)
}

// RouterNames lists the built-in routing policies in presentation
// order.
func RouterNames() []string {
	return []string{"random", "rr", "p2c", "least", "rss", "sew"}
}

// NewRouter constructs the named routing policy. Randomized policies
// draw from r; deterministic ones ignore it. Unknown names error with
// the known catalogue.
func NewRouter(name string, r *rng.Rand) (Router, error) {
	switch name {
	case "random":
		return &randomRouter{r: r}, nil
	case "rr":
		return &rrRouter{}, nil
	case "p2c":
		return &p2cRouter{r: r}, nil
	case "least":
		return &leastRouter{}, nil
	case "rss":
		return &rssRouter{}, nil
	case "sew":
		return newSEWRouter(), nil
	}
	known := ""
	for i, n := range RouterNames() {
		if i > 0 {
			known += ", "
		}
		known += n
	}
	return nil, fmt.Errorf("rack: unknown routing policy %q (known: %s)", name, known)
}

// randomRouter sprays requests uniformly at random — the baseline every
// load-aware policy must beat.
type randomRouter struct{ r *rng.Rand }

//simvet:hotpath
func (rt *randomRouter) Route(_ workload.Request, v View) int { return rt.r.Intn(v.Machines()) }
func (rt *randomRouter) Name() string                         { return "random" }

// rrRouter deals requests round-robin — oblivious to load, but perfectly
// even in counts.
type rrRouter struct{ next int }

//simvet:hotpath
func (rt *rrRouter) Route(_ workload.Request, v View) int {
	m := rt.next % v.Machines()
	rt.next = m + 1
	return m
}
func (rt *rrRouter) Name() string { return "rr" }

// p2cRouter samples two machines uniformly and routes to the one with
// the smaller backlog — the classic power-of-two-choices scheme, which
// gets most of least-loaded's benefit from two probes instead of a
// full scan.
type p2cRouter struct{ r *rng.Rand }

//simvet:hotpath
func (rt *p2cRouter) Route(_ workload.Request, v View) int {
	n := v.Machines()
	a := rt.r.Intn(n)
	b := rt.r.Intn(n)
	if v.Backlog(b) < v.Backlog(a) {
		return b
	}
	return a
}
func (rt *p2cRouter) Name() string { return "p2c" }

// leastRouter scans the whole fleet and routes to the machine with the
// smallest backlog, lowest index winning ties — the strongest pure
// queue-depth policy, at the cost of a full scan per request.
type leastRouter struct{}

//simvet:hotpath
func (leastRouter) Route(_ workload.Request, v View) int {
	best, bestDepth := 0, v.Backlog(0)
	for m := 1; m < v.Machines(); m++ {
		if d := v.Backlog(m); d < bestDepth {
			best, bestDepth = m, d
		}
	}
	return best
}
func (leastRouter) Name() string { return "least" }

// rssRouter hashes the request ID to a machine, like NIC RSS steering
// one level down: affinity without state, blind to load.
type rssRouter struct{ rss core.RSS }

//simvet:hotpath
func (rt *rssRouter) Route(req workload.Request, v View) int {
	return rt.rss.Steer(req.ID, v.Machines())
}
func (rt *rssRouter) Name() string { return "rss" }

// sewRouter is the RackSched-style shortest-expected-wait policy. Like
// RackSched it types requests by class (a label, never the request's
// actual service demand) and learns each class's mean service time from
// an EWMA over observed completions; per machine it tracks the class
// mix of what it has placed there and not yet seen retire. A request of
// class c goes to the machine minimizing
//
//	(backlog × mix-weighted EWMA(service) + EWMA_c) / workers
//
// — the expected time until the machine would get to it. Queue depth
// comes from the live View (ground truth, immune to tracking drift);
// the class mix converts that depth into expected *work*, which is what
// separates sew from least-loaded on bimodal workloads: one queued
// 500µs job outweighs dozens of queued 1µs jobs. Before any class has
// completed anywhere, estimates degrade to 1 and the score reduces to
// normalized queue depth, so a cold fleet behaves like least-loaded.
type sewRouter struct {
	est     []float64 // per-class EWMA of observed service, ns; 0 = unknown
	overall float64   // EWMA over all completions — fallback for unseen classes
	queued  [][]int   // [machine][class] placed-but-not-retired counts
}

func newSEWRouter() *sewRouter { return &sewRouter{} }

// sewAlpha is the EWMA weight of each new observation: 1/16 smooths
// over stochastic classes' service-time spread while still tracking
// drift within a few hundred completions.
const sewAlpha = 1.0 / 16

func (rt *sewRouter) done(machine int, class workload.Class, service sim.Time) {
	rt.bump(&rt.overall, float64(service))
	c := int(class)
	for c >= len(rt.est) {
		rt.est = append(rt.est, 0)
	}
	rt.bump(&rt.est[c], float64(service))
	rt.retire(machine, c)
}

func (rt *sewRouter) dropped(machine int, class workload.Class) {
	rt.retire(machine, int(class))
}

func (rt *sewRouter) bump(ewma *float64, v float64) {
	if *ewma == 0 {
		*ewma = v
		return
	}
	*ewma += sewAlpha * (v - *ewma)
}

func (rt *sewRouter) retire(machine, class int) {
	if machine < len(rt.queued) && class < len(rt.queued[machine]) && rt.queued[machine][class] > 0 {
		rt.queued[machine][class]--
	}
}

func (rt *sewRouter) place(machine, class int) {
	for machine >= len(rt.queued) {
		rt.queued = append(rt.queued, nil)
	}
	for class >= len(rt.queued[machine]) {
		rt.queued[machine] = append(rt.queued[machine], 0)
	}
	rt.queued[machine][class]++
}

//simvet:hotpath
func (rt *sewRouter) Route(req workload.Request, v View) int {
	c := int(req.Class)
	best, bestScore := 0, rt.score(0, c, v)
	for m := 1; m < v.Machines(); m++ {
		if s := rt.score(m, c, v); s < bestScore {
			best, bestScore = m, s
		}
	}
	rt.place(best, c)
	return best
}

func (rt *sewRouter) score(m, class int, v View) float64 {
	return (float64(v.Backlog(m))*rt.mixEst(m) + rt.classEst(class)) / float64(v.Workers(m))
}

// classEst is class c's learned mean service time, falling back to the
// all-class mean and then to a unit cost while cold.
func (rt *sewRouter) classEst(c int) float64 {
	if c < len(rt.est) && rt.est[c] > 0 {
		return rt.est[c]
	}
	if rt.overall > 0 {
		return rt.overall
	}
	return 1
}

// mixEst is the expected service time of one queued request on machine
// m, weighted by the class mix the router has placed there and not yet
// seen retire; with nothing tracked it falls back like classEst.
func (rt *sewRouter) mixEst(m int) float64 {
	if m < len(rt.queued) {
		var work float64
		var n int
		for c, k := range rt.queued[m] {
			if k > 0 {
				work += float64(k) * rt.classEst(c)
				n += k
			}
		}
		if n > 0 {
			return work / float64(n)
		}
	}
	if rt.overall > 0 {
		return rt.overall
	}
	return 1
}

func (rt *sewRouter) Name() string { return "sew" }
