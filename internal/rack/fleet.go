package rack

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MachineCoreStride is the width of each machine's worker-core band in
// a shared fleet timeline: machine i's worker core c appears as core
// i*MachineCoreStride + c. The stride leaves room for any plausible
// per-machine core count while keeping bands easy to read off a trace.
const MachineCoreStride = 1 << 10

// Fleet describes a rack: N instances of one registry machine behind a
// routing policy. The zero value is invalid; all three fields are
// required. A Fleet value is stateless — Run builds everything per
// call — so one value is safe to share across sweep points and
// goroutines, and ParallelSweep factories can return the same Fleet
// for every point.
type Fleet struct {
	// N is the fleet size (machines).
	N int
	// Machine is the registry name of the per-node machine ("tq",
	// "shinjuku", ...). The entry must have a node form
	// (cluster.Entry.CanNode); of the catalogue only "caladan-ws" does
	// not.
	Machine string
	// Policy is the routing policy name (see RouterNames).
	Policy string
}

// Name implements cluster.Machine.
func (f Fleet) Name() string {
	return fmt.Sprintf("rack-%dx-%s-%s", f.N, f.Machine, f.Policy)
}

// Run implements cluster.Machine: it simulates the whole rack and
// returns the fleet-aggregate Result, so sweep drivers treat a fleet
// exactly like a single machine. Use RunFleet for per-machine results
// and placement counts.
func (f Fleet) Run(cfg cluster.RunConfig) *cluster.Result {
	return f.RunFleet(cfg).Fleet
}

// FleetResult is the outcome of one fleet run.
type FleetResult struct {
	// Fleet aggregates the whole rack: counts and goodput summed over
	// machines, latency samples pooled, conservation preserved
	// (Fleet.Offered == Fleet.Completed + Fleet.Dropped).
	Fleet *cluster.Result
	// PerMachine holds each machine's own Result, in machine order.
	// Events is zero there — simulation steps belong to the shared
	// engine and are reported once, on Fleet.
	PerMachine []*cluster.Result
	// Placed counts the requests the router sent to each machine.
	Placed []uint64
}

// RunFleet simulates the rack: one engine, one open-loop arrival
// stream at cfg.Rate, N machine nodes each seeded independently
// (rng.PointSeed of cfg.Seed and the machine index), and the routing
// policy deciding per request where it lands. cfg.Obs, when non-nil,
// receives the fleet-wide timeline with each machine's worker cores
// shifted into its own MachineCoreStride band.
func (f Fleet) RunFleet(cfg cluster.RunConfig) *FleetResult {
	return f.run(cfg, func(i int) obs.Recorder {
		if cfg.Obs == nil {
			return nil
		}
		return shiftRecorder{inner: cfg.Obs, base: int32(i) * MachineCoreStride}
	})
}

func (f Fleet) validate() cluster.Entry {
	if f.N <= 0 {
		panic("rack: Fleet.N must be at least 1")
	}
	entry := cluster.MustLookup(f.Machine)
	if !entry.CanNode() {
		panic("rack: machine " + f.Machine + " has no node form")
	}
	return entry
}

// run is the fleet engine room; nodeObs supplies machine i's recorder
// (nil for untraced). RunFleet and Trace differ only in that choice.
func (f Fleet) run(cfg cluster.RunConfig, nodeObs func(i int) obs.Recorder) *FleetResult {
	entry := f.validate()
	router, err := NewRouter(f.Policy, rng.New(rng.PointSeed(cfg.Seed, routerSeedTag)))
	if err != nil {
		panic(err.Error())
	}

	eng := sim.New()
	nodes := make([]cluster.Node, f.N)
	for i := range nodes {
		ncfg := cfg
		// The per-node rate is informational (each node's arrivals come
		// from the fleet stream), but Result.Config records it and
		// validate requires it positive.
		ncfg.Rate = cfg.Rate / float64(f.N)
		ncfg.Seed = rng.PointSeed(cfg.Seed, uint64(i))
		ncfg.Obs = nodeObs(i)
		nodes[i] = entry.NewNode(eng, ncfg)
	}
	view := &fleetView{nodes: nodes}

	// One composed stream feeds the whole rack (cfg.Stream is the single
	// stream constructor everywhere); the router decides where each
	// request lands.
	placed := make([]uint64, f.N)
	stream := cfg.Stream(rng.New(cfg.Seed))
	pump := cluster.NewPump(eng, stream, cfg.Duration, func(req workload.Request) {
		m := router.Route(req, view)
		if m < 0 || m >= len(nodes) {
			panic(fmt.Sprintf("rack: router %s routed to machine %d of %d", router.Name(), m, len(nodes)))
		}
		placed[m]++
		nodes[m].Inject(req)
	})

	// Node retirement hooks serve two consumers: routers that track
	// placed work, and — for closed-loop arrival processes — the shared
	// pump, whose users wait for their request to retire anywhere in the
	// fleet before thinking and issuing again.
	ob, observing := router.(feedbackObserver)
	closed := stream.ClosedLoop()
	if observing || closed {
		for i := range nodes {
			m := i
			nodes[m].OnDone(func(c workload.Class, s sim.Time) {
				if observing {
					ob.done(m, c, s)
				}
				if closed {
					pump.Done(eng.Now())
				}
			})
			nodes[m].OnDrop(func(c workload.Class) {
				if observing {
					ob.dropped(m, c)
				}
				if closed {
					pump.Done(eng.Now())
				}
			})
		}
	}

	pump.Start()
	eng.Run()

	per := make([]*cluster.Result, f.N)
	for i, n := range nodes {
		per[i] = n.Collect()
	}
	fleet := mergeResults(f.Name(), cfg, per)
	fleet.Events = eng.Executed()
	return &FleetResult{Fleet: fleet, PerMachine: per, Placed: placed}
}

// routerSeedTag derives the router's RNG stream from the run seed, far
// outside the machine-index range so no node shares its stream.
const routerSeedTag = uint64(1) << 32

// fleetView adapts the node slice to the router's View.
type fleetView struct{ nodes []cluster.Node }

func (v *fleetView) Machines() int     { return len(v.nodes) }
func (v *fleetView) Backlog(m int) int { return v.nodes[m].Backlog() }
func (v *fleetView) Workers(m int) int { return v.nodes[m].Workers() }

// shiftRecorder relabels worker cores into the machine's band before
// forwarding to the shared recorder. Pseudo-cores (dispatcher, loadgen)
// stay shared: they carry no quanta, so the obs grammar's per-core
// open-quantum tracking never crosses machines through them.
type shiftRecorder struct {
	inner obs.Recorder
	base  int32
}

//simvet:hotpath
func (s shiftRecorder) Emit(e obs.Event) {
	if e.Core >= 0 {
		e.Core += s.base
	}
	s.inner.Emit(e)
}

// mergeResults folds per-machine Results into the fleet aggregate:
// counts and rates sum, latency samples pool, and the conservation law
// survives because it holds machine by machine. The per slice is
// ordered by machine index, so the merge is deterministic.
//
//simvet:accounting
func mergeResults(system string, cfg cluster.RunConfig, per []*cluster.Result) *cluster.Result {
	window := (cfg.Duration - cfg.Warmup).Seconds()
	out := &cluster.Result{System: system, Config: cfg, RTT: per[0].RTT}
	var good uint64
	for ci, c := range cfg.Workload.Classes {
		merged := cluster.ClassMetrics{
			Name:     c.Name,
			Sojourn:  stats.NewSample(1024),
			Slowdown: stats.NewSample(1024),
		}
		for _, r := range per {
			mc := &r.PerClass[ci]
			merged.Count += mc.Count
			merged.Good += mc.Good
			for _, v := range mc.Sojourn.Values() {
				merged.Sojourn.Add(v)
			}
			for _, v := range mc.Slowdown.Values() {
				merged.Slowdown.Add(v)
			}
		}
		good += merged.Good
		out.PerClass = append(out.PerClass, merged)
	}
	for ti, t := range cfg.Tenants {
		merged := cluster.TenantMetrics{Name: t.Name, Sojourn: stats.NewSample(1024)}
		for _, r := range per {
			mt := &r.PerTenant[ti]
			merged.Offered += mt.Offered
			merged.Completed += mt.Completed
			merged.Dropped += mt.Dropped
			merged.Good += mt.Good
			for _, v := range mt.Sojourn.Values() {
				merged.Sojourn.Add(v)
			}
		}
		out.PerTenant = append(out.PerTenant, merged)
	}
	for _, r := range per {
		out.Completed += r.Completed
		out.Offered += r.Offered
		out.Dropped += r.Dropped
	}
	out.Throughput = float64(out.Completed) / window
	out.Goodput = float64(good) / window
	if out.Offered > 0 {
		out.DropRate = float64(out.Dropped) / float64(out.Offered)
	}
	return out
}

// Trace runs the fleet once with a fresh recorder per machine and
// returns one obs.Process per machine — ready for obs.WriteChrome,
// which renders them as side-by-side Perfetto process tracks showing
// cross-machine placement. Every timeline is validated before return;
// cap bounds each machine's recording (0 means obs.DefaultCap).
func (f Fleet) Trace(cfg cluster.RunConfig, cap int) ([]obs.Process, error) {
	f.validate()
	recs := make([]*obs.Ring, f.N)
	res := f.run(cfg, func(i int) obs.Recorder {
		recs[i] = obs.NewRing(cap)
		return recs[i]
	})
	procs := make([]obs.Process, f.N)
	for i, rec := range recs {
		if rec.Truncated() {
			return nil, fmt.Errorf("%s machine %d: trace truncated at %d events (%d discarded); raise the cap or shorten the run",
				f.Name(), i, rec.Len(), rec.Discarded())
		}
		if err := obs.Validate(rec.Events()); err != nil {
			return nil, fmt.Errorf("%s machine %d: %w", f.Name(), i, err)
		}
		procs[i] = obs.Process{
			Name:   fmt.Sprintf("m%02d %s", i, res.PerMachine[i].System),
			Events: rec.Events(),
		}
	}
	return procs, nil
}
