// Package rack is the inter-server scheduling layer: a routing plane
// over a fleet of simulated machines sharing one arrival stream.
//
// TQ (the paper's system) schedules blindly *within* one server;
// RackSched-style systems add the layer above — a microsecond-scale
// scheduler that routes each request to one of N machines, each running
// an intra-server scheduler underneath. This package composes that
// layer out of parts the repository already has: every registry machine
// that can bind to a shared engine (cluster.Entry.NewNode) becomes one
// node of a Fleet, the cluster kernel's arrival pump drives the shared
// open-loop stream, and a Router picks the node for each request from
// per-machine load signals (queue depth, class labels, learned
// per-class service estimates — never a request's actual service
// demand).
//
// The layering mirrors the single-machine design one level up:
//
//	Fleet.Run        — cluster.Machine over the whole rack, so sweep
//	                   drivers treat a 10-machine fleet exactly like
//	                   one machine (rate grids, parallel sweeps,
//	                   per-point seeds all compose unchanged)
//	Router           — the per-policy seam: random, round-robin,
//	                   power-of-two-choices, least-loaded, RSS
//	                   affinity, shortest-expected-wait
//	cluster.Node     — per-machine admission, drop accounting, and
//	                   obs emission, inherited from the kernel
//
// Conservation holds fleet-wide by construction: every machine
// preserves Offered == Completed + Dropped, the fleet result sums the
// per-machine counts, and the identity survives the sum.
//
// Timelines carry a machine dimension. With a recorder attached, each
// node's worker cores are shifted into a disjoint band of
// MachineCoreStride cores (machine i owns [i*stride, (i+1)*stride)),
// so one shared timeline shows cross-machine placement and still
// satisfies the obs grammar; Fleet.Trace instead records one
// obs.Process per machine for side-by-side Perfetto rendering.
package rack
