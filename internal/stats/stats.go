// Package stats provides the latency accounting used throughout the
// Tiny Quanta evaluation: exact percentile computation over recorded
// samples, fixed-bucket histograms, and slowdown bookkeeping.
//
// The paper reports 99.9th-percentile latencies and slowdowns, so the
// estimators here are exact (sorted-sample) rather than approximate;
// simulated experiments record at most a few million samples, which fits
// comfortably in memory.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers percentile and
// moment queries. The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
	sum    float64
}

// NewSample returns a Sample with capacity pre-allocated for n
// observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// Len reports the number of recorded observations.
func (s *Sample) Len() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 if no observations were
// recorded.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Max returns the largest observation, or 0 if none were recorded.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Min returns the smallest observation, or 0 if none were recorded.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method, or 0 if no observations were recorded. Quantile(0.999) is the
// paper's p99.9.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.sort()
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.values[rank-1]
}

// P999 is shorthand for Quantile(0.999).
func (s *Sample) P999() float64 { return s.Quantile(0.999) }

// P99 is shorthand for Quantile(0.99).
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Median is shorthand for Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Values returns the recorded observations in unspecified order. The
// returned slice is owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 { return s.values }

// Reset discards all observations but keeps the allocated capacity.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sum = 0
	s.sorted = false
}

// Histogram counts observations in geometrically spaced buckets; it is
// used for the reuse-distance plots (Figure 15) where the x-axis spans
// several orders of magnitude.
type Histogram struct {
	// Base is the lower bound of the first finite bucket; values below
	// it land in bucket 0.
	Base float64
	// Growth is the ratio between consecutive bucket upper bounds; it
	// must be > 1.
	Growth float64
	counts []uint64
	total  uint64
}

// NewHistogram returns a histogram whose bucket b (b >= 1) covers
// [base*growth^(b-1), base*growth^b); bucket 0 covers [0, base).
func NewHistogram(base, growth float64, buckets int) *Histogram {
	if base <= 0 || growth <= 1 || buckets < 1 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Base: base, Growth: growth, counts: make([]uint64, buckets)}
}

// Add records one observation; values beyond the last bucket are
// clamped into it.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < h.Base {
		h.counts[0]++
		return
	}
	b := 1 + int(math.Floor(math.Log(v/h.Base)/math.Log(h.Growth)))
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
}

// Total reports the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Buckets returns a copy of the per-bucket counts.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// BucketUpper returns the exclusive upper bound of bucket b.
func (h *Histogram) BucketUpper(b int) float64 {
	if b == 0 {
		return h.Base
	}
	return h.Base * math.Pow(h.Growth, float64(b))
}

// FractionAbove reports the fraction of observations with value >=
// threshold, computed from bucket boundaries (so threshold should align
// with a bucket edge for exact answers).
func (h *Histogram) FractionAbove(threshold float64) float64 {
	if h.total == 0 {
		return 0
	}
	var above uint64
	for b, c := range h.counts {
		if h.BucketUpper(b) > threshold {
			above += c
		}
	}
	return float64(above) / float64(h.total)
}

// Counter is an overflow-tolerant monotonic counter pair used to model
// the worker-side statistics the TQ dispatcher reads (§4): the worker
// increments regardless of wraparound and the reader tracks totals by
// deltas. Width configures the simulated counter width in bits so tests
// can exercise wraparound cheaply.
type Counter struct {
	width uint
	value uint64
}

// NewCounter returns a counter that wraps at 2^width. Width must be in
// [1, 64].
func NewCounter(width uint) *Counter {
	if width < 1 || width > 64 {
		panic("stats: counter width out of range")
	}
	return &Counter{width: width}
}

// Inc adds n to the counter, wrapping at the configured width.
func (c *Counter) Inc(n uint64) {
	c.value += n
	if c.width < 64 {
		c.value &= (1 << c.width) - 1
	}
}

// Load returns the raw (possibly wrapped) counter value.
func (c *Counter) Load() uint64 { return c.value }

// DeltaReader tracks the true total of a wrapping Counter by reading it
// periodically and accumulating deltas, exactly as the TQ dispatcher
// recovers unbounded totals from fixed-width worker counters. Reads must
// happen before the counter advances by a full 2^width between them.
type DeltaReader struct {
	width uint
	last  uint64
	total uint64
}

// NewDeltaReader returns a reader for counters of the given width.
func NewDeltaReader(width uint) *DeltaReader {
	if width < 1 || width > 64 {
		panic("stats: reader width out of range")
	}
	return &DeltaReader{width: width}
}

// Observe incorporates a raw counter reading and returns the recovered
// monotonic total.
func (r *DeltaReader) Observe(raw uint64) uint64 {
	var delta uint64
	if r.width == 64 {
		delta = raw - r.last
	} else {
		mask := uint64(1)<<r.width - 1
		delta = (raw - r.last) & mask
	}
	r.total += delta
	r.last = raw
	return r.total
}

// Total returns the recovered monotonic total so far.
func (r *DeltaReader) Total() uint64 { return r.total }

// Series is a labelled (x, y) sequence, the common currency of the
// experiment drivers: one Series per curve in a paper figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as tab-separated rows, one per point.
func (s *Series) String() string {
	out := ""
	for i := range s.X {
		out += fmt.Sprintf("%s\t%g\t%g\n", s.Label, s.X[i], s.Y[i])
	}
	return out
}
