package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLatencyHistExactBelow64(t *testing.T) {
	var h LatencyHist
	for v := int64(0); v < 64; v++ {
		h.Add(v)
	}
	if h.Count() != 64 {
		t.Fatalf("count %d, want 64", h.Count())
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max %d/%d, want 0/63", h.Min(), h.Max())
	}
	// Every value below 64 has its own bucket, so quantiles are exact.
	if got := h.Quantile(0.5); got != 32 {
		t.Fatalf("median %d, want 32", got)
	}
	if got := h.Quantile(0.25); got != 16 {
		t.Fatalf("q25 %d, want 16", got)
	}
}

func TestLatencyHistQuantileError(t *testing.T) {
	// Against an exact sorted sample, every quantile must be within one
	// sub-bucket (≈3.2% relative) and never above the true value.
	r := rand.New(rand.NewSource(7))
	var h LatencyHist
	var vals []int64
	for i := 0; i < 20000; i++ {
		v := int64(r.ExpFloat64() * 50000) // ~exponential, mean 50µs
		vals = append(vals, v)
		h.Add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		if got > exact {
			t.Errorf("q%.3f: hist %d above exact %d", q, got, exact)
		}
		if exact > 64 && float64(got) < float64(exact)*(1-2.0/histSub) {
			t.Errorf("q%.3f: hist %d too far below exact %d", q, got, exact)
		}
	}
}

func TestLatencyHistEdgeCases(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative add: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset did not clear")
	}
	// A single large value: all quantiles collapse to it (clamped to max).
	h.Add(1 << 40)
	if h.Quantile(0.5) != 1<<40 || h.P99() != 1<<40 {
		t.Fatalf("single-value quantiles %d/%d, want %d", h.Quantile(0.5), h.P99(), int64(1)<<40)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b, all LatencyHist
	for i := int64(0); i < 1000; i++ {
		v := i * 37 % 100000
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: n=%d/%d min=%d/%d max=%d/%d",
			a.Count(), all.Count(), a.Min(), all.Min(), a.Max(), all.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.2f: merged %d != direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.Mean() != all.Mean() {
		t.Fatalf("merged mean %v != direct %v", a.Mean(), all.Mean())
	}
}
