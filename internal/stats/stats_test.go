package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Len() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleMoments(t *testing.T) {
	s := NewSample(4)
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := s.Max(); got != 4 {
		t.Fatalf("Max = %v, want 4", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	s := NewSample(10)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.91, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileClampsRange(t *testing.T) {
	s := NewSample(2)
	s.Add(5)
	s.Add(10)
	if got := s.Quantile(-1); got != 5 {
		t.Fatalf("Quantile(-1) = %v, want 5", got)
	}
	if got := s.Quantile(2); got != 10 {
		t.Fatalf("Quantile(2) = %v, want 10", got)
	}
}

func TestQuantileAfterInterleavedAdds(t *testing.T) {
	s := NewSample(0)
	s.Add(3)
	s.Add(1)
	if got := s.Median(); got != 1 {
		t.Fatalf("median of {1,3} = %v, want 1 (nearest rank)", got)
	}
	s.Add(2) // must re-sort transparently
	if got := s.Median(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v, want 2", got)
	}
}

func TestP999OnLargeSample(t *testing.T) {
	s := NewSample(100000)
	for i := 0; i < 100000; i++ {
		s.Add(float64(i))
	}
	// Nearest rank: ceil(0.999*100000) = 99900 -> value 99899.
	if got := s.P999(); got != 99899 {
		t.Fatalf("P999 = %v, want 99899", got)
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(2)
	s.Add(1)
	s.Reset()
	if s.Len() != 0 || s.Mean() != 0 {
		t.Fatal("Reset did not clear sample")
	}
	s.Add(7)
	if got := s.Mean(); got != 7 {
		t.Fatalf("Mean after reset+add = %v, want 7", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		s := NewSample(100)
		for i := 0; i < 100; i++ {
			s.Add(rr.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 6) // buckets: [0,1) [1,2) [2,4) [4,8) [8,16) [16,inf)
	for _, v := range []float64{0.5, 1, 3, 7, 9, 100} {
		h.Add(v)
	}
	want := []uint64{1, 1, 1, 1, 1, 1}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	h := NewHistogram(1024, 2, 16)
	for i := 0; i < 90; i++ {
		h.Add(100) // below base
	}
	for i := 0; i < 10; i++ {
		h.Add(10000) // well above 8192 boundary
	}
	got := h.FractionAbove(8192)
	if math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("FractionAbove(8192) = %v, want 0.10", got)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(0, 2, 4)
}

func TestCounterWraparound(t *testing.T) {
	c := NewCounter(8) // wraps at 256
	r := NewDeltaReader(8)
	var trueTotal uint64
	for i := 0; i < 100; i++ {
		inc := uint64(i%50 + 1)
		c.Inc(inc)
		trueTotal += inc
		if got := r.Observe(c.Load()); got != trueTotal {
			t.Fatalf("step %d: recovered total %d, want %d", i, got, trueTotal)
		}
	}
}

func TestCounterWraparoundProperty(t *testing.T) {
	// Property: for any sequence of increments each smaller than the
	// counter modulus, the delta reader recovers the exact total.
	f := func(seed uint64, width8 uint8) bool {
		width := uint(width8%12) + 4 // widths 4..15
		r := rng.New(seed)
		c := NewCounter(width)
		dr := NewDeltaReader(width)
		var trueTotal uint64
		for i := 0; i < 200; i++ {
			inc := r.Uint64n(uint64(1)<<width - 1)
			c.Inc(inc)
			trueTotal += inc
			if dr.Observe(c.Load()) != trueTotal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter64BitWidth(t *testing.T) {
	c := NewCounter(64)
	r := NewDeltaReader(64)
	c.Inc(math.MaxUint64 - 5)
	r.Observe(c.Load())
	c.Inc(10) // wraps the full 64-bit space
	// The recovered total itself wraps at 2^64; what matters is that the
	// delta is computed correctly modulo 2^64.
	var want uint64 = math.MaxUint64 - 5
	want += 10
	if got := r.Observe(c.Load()); got != want {
		t.Fatalf("64-bit wraparound recovery failed: got %d, want %d", got, want)
	}
}

func TestSeriesAppendAndString(t *testing.T) {
	var s Series
	s.Label = "tq"
	s.Append(1, 2)
	s.Append(3, 4)
	if len(s.X) != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("unexpected series contents: %+v", s)
	}
	if got := s.String(); got != "tq\t1\t2\ntq\t3\t4\n" {
		t.Fatalf("String = %q", got)
	}
}
