package stats

// P2Quantile is the Jain-Chlamtac P² streaming estimator of a single
// quantile: O(1) memory regardless of stream length. The simulator's
// default accounting keeps exact samples (Sample); P² is for very long
// live-runtime runs where storing every latency is unreasonable.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired positions
	inc     [5]float64 // desired-position increments
	initial []float64
}

// NewP2Quantile estimates the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	q := &P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Add incorporates one observation.
func (q *P2Quantile) Add(v float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, v)
		if q.n == 5 {
			// Sort the five seeds and initialize markers.
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && q.initial[j] < q.initial[j-1]; j-- {
					q.initial[j], q.initial[j-1] = q.initial[j-1], q.initial[j]
				}
			}
			copy(q.heights[:], q.initial)
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}

	// Find the cell k containing v and clamp extremes.
	var k int
	switch {
	case v < q.heights[0]:
		q.heights[0] = v
		k = 0
	case v >= q.heights[4]:
		q.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With five or fewer observations
// it returns the exact order statistic of the seed values: the marker
// machinery has not adjusted anything yet, and its middle marker is the
// sample median regardless of p — garbage for tail quantiles.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n <= 5 {
		s := append([]float64(nil), q.initial...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		idx := int(q.p * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return q.heights[2]
}

// Count reports the number of observations.
func (q *P2Quantile) Count() int { return q.n }
