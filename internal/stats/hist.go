package stats

import "math/bits"

// LatencyHist is a fixed-memory latency histogram with exact per-bucket
// counts, complementing the P² streaming quantiles (p2.go) and the
// sorted-sample exact quantiles (Sample): unlike P² it never drifts
// under adversarial orderings, and unlike Sample it costs O(1) memory
// regardless of how many observations it absorbs — the right trade for
// always-on observability.
//
// Buckets are HDR-style: each power-of-two major bucket is divided into
// 32 linear sub-buckets, so the quantile resolution is bounded by
// 1/32 ≈ 3.1% of the value everywhere on the range. Values are int64
// nanoseconds, matching sim.Time and the live runtime's monotonic
// clock. The zero value is ready to use.
type LatencyHist struct {
	counts [64 * histSub]uint64
	total  uint64
	sum    float64
	max    int64
	min    int64
}

// histSub is the number of linear sub-buckets per power-of-two range.
const histSub = 32

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		// The first two major buckets are exact: one bucket per value.
		return int(v)
	}
	// Major bucket = position of the highest set bit; sub-bucket = the
	// next 5 bits below it.
	high := 63 - bits.LeadingZeros64(uint64(v))
	sub := int(v>>(uint(high)-5)) & (histSub - 1)
	return (high-4)*histSub + sub
}

// histLower returns the inclusive lower bound of bucket i — the value
// reported for quantiles landing in it (a slight underestimate, never
// more than one sub-bucket width below the true quantile).
func histLower(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	major := i/histSub + 4
	sub := int64(i % histSub)
	return (1 << uint(major)) + sub<<(uint(major)-5)
}

// Add records one latency in nanoseconds. Negative values clamp to 0.
func (h *LatencyHist) Add(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if h.total == 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.counts[histIndex(ns)]++
	h.total++
	h.sum += float64(ns)
}

// Count reports the number of recorded observations.
func (h *LatencyHist) Count() uint64 { return h.total }

// Mean returns the exact arithmetic mean in nanoseconds, or 0 when
// empty.
func (h *LatencyHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the exact largest observation, or 0 when empty.
func (h *LatencyHist) Max() int64 { return h.max }

// Min returns the exact smallest observation, or 0 when empty.
func (h *LatencyHist) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the q-quantile (0 <= q <= 1) in nanoseconds by the
// nearest-rank rule over the bucket boundaries; the answer is exact for
// values below 64ns and within one sub-bucket (≈3.1% relative) above.
// It returns 0 when empty.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			lo := histLower(i)
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// P50 is shorthand for Quantile(0.50).
func (h *LatencyHist) P50() int64 { return h.Quantile(0.50) }

// P99 is shorthand for Quantile(0.99).
func (h *LatencyHist) P99() int64 { return h.Quantile(0.99) }

// Merge adds every observation recorded by o into h. Min/Max/Mean and
// all bucket counts merge exactly.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset discards all observations.
func (h *LatencyHist) Reset() { *h = LatencyHist{} }
