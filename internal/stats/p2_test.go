package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestP2MedianUniform(t *testing.T) {
	q := NewP2Quantile(0.5)
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		q.Add(r.Float64() * 100)
	}
	if got := q.Value(); math.Abs(got-50) > 2 {
		t.Fatalf("P2 median of U(0,100) = %v, want ≈50", got)
	}
}

func TestP2TailQuantileExponential(t *testing.T) {
	// p99 of Exp(mean=1) is -ln(0.01) ≈ 4.605.
	q := NewP2Quantile(0.99)
	r := rng.New(2)
	for i := 0; i < 200000; i++ {
		q.Add(r.Exp(1))
	}
	want := -math.Log(0.01)
	if got := q.Value(); math.Abs(got-want) > want*0.1 {
		t.Fatalf("P2 p99 of Exp(1) = %v, want ≈%v", got, want)
	}
}

func TestP2AgreesWithExactSample(t *testing.T) {
	p2 := NewP2Quantile(0.9)
	exact := NewSample(50000)
	r := rng.New(3)
	for i := 0; i < 50000; i++ {
		// A lumpy distribution: mixture of two uniforms.
		v := r.Float64() * 10
		if r.Float64() < 0.2 {
			v = 100 + r.Float64()*50
		}
		p2.Add(v)
		exact.Add(v)
	}
	want := exact.Quantile(0.9)
	got := p2.Value()
	if math.Abs(got-want) > want*0.15 {
		t.Fatalf("P2 p90 %v vs exact %v", got, want)
	}
}

func TestP2SmallStreams(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty estimator not zero")
	}
	q.Add(7)
	if q.Value() != 7 {
		t.Fatalf("single value = %v", q.Value())
	}
	q.Add(1)
	q.Add(9)
	// Exact median of {1,7,9} with idx = floor(0.5*3) = 1 -> 7.
	if q.Value() != 7 {
		t.Fatalf("3-value median = %v, want 7", q.Value())
	}
	if q.Count() != 3 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestP2TailQuantileSmallN(t *testing.T) {
	// For n <= 5 the estimator must return the sorted-sample quantile of
	// the seed values. Before the fix, n == 5 returned heights[2] — the
	// sample median — regardless of p, so a p99.9 estimator fed exactly
	// five values reported the median.
	q := NewP2Quantile(0.999)
	if q.Value() != 0 {
		t.Fatal("empty estimator not zero")
	}
	values := []float64{5, 1, 4, 2, 3}
	for i, v := range values {
		q.Add(v)
		// Running max of the first i+1 values: a p99.9 quantile over
		// <=5 samples is the largest observation.
		max := values[0]
		for _, u := range values[:i+1] {
			if u > max {
				max = u
			}
		}
		if got := q.Value(); got != max {
			t.Fatalf("p99.9 after %d values = %v, want max %v", i+1, got, max)
		}
	}
}

func TestP2MedianAtExactlyFive(t *testing.T) {
	q := NewP2Quantile(0.5)
	for _, v := range []float64{9, 3, 7, 1, 5} {
		q.Add(v)
	}
	// Sorted: {1,3,5,7,9}; idx = floor(0.5*5) = 2 -> 5.
	if got := q.Value(); got != 5 {
		t.Fatalf("median at n=5 = %v, want 5", got)
	}
	if q.Count() != 5 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestP2LowQuantileSmallN(t *testing.T) {
	q := NewP2Quantile(0.01)
	min := math.Inf(1)
	for _, v := range []float64{40, 10, 30, 50, 20} {
		q.Add(v)
		if v < min {
			min = v
		}
		// p1 over a handful of samples is the smallest observation.
		if got := q.Value(); got != min {
			t.Fatalf("p1 after %d values = %v, want min %v", q.Count(), got, min)
		}
	}
}

func TestP2MonotoneStream(t *testing.T) {
	q := NewP2Quantile(0.999)
	for i := 1; i <= 10000; i++ {
		q.Add(float64(i))
	}
	got := q.Value()
	if got < 9600 || got > 10000 {
		t.Fatalf("p99.9 of 1..10000 = %v, want ≈9990", got)
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func BenchmarkP2Add(b *testing.B) {
	q := NewP2Quantile(0.999)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Add(r.Exp(1))
	}
}
