package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("after re-seed, value %d = %d, want %d", i, v, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 10; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(9)
	const buckets = 7
	const n = buckets * 30000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 300000
	const mean = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.02 {
		t.Fatalf("Exp mean = %v, want about %v", got, mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := make([]int, 100)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(19)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: %v", s)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(23)
	child := r.Split()
	// The child stream must not equal the parent's subsequent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided with parent %d/100 times", same)
	}
}

func TestPointSeedDeterministic(t *testing.T) {
	for i := uint64(0); i < 100; i++ {
		if PointSeed(42, i) != PointSeed(42, i) {
			t.Fatalf("PointSeed(42, %d) not deterministic", i)
		}
	}
}

func TestPointSeedDistinctAcrossPoints(t *testing.T) {
	seen := map[uint64]uint64{}
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		for i := uint64(0); i < 1000; i++ {
			v := PointSeed(seed, i)
			if prev, dup := seen[v]; dup {
				t.Fatalf("PointSeed(%d, %d) collides with an earlier point (%d)", seed, i, prev)
			}
			seen[v] = i
		}
	}
}

func TestPointSeedStreamsDecorrelated(t *testing.T) {
	// Generators seeded from adjacent points must not produce
	// overlapping or correlated streams — the whole point of deriving
	// per-point seeds instead of reusing one seed across a sweep.
	a, b := New(PointSeed(1, 0)), New(PointSeed(1, 1))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent point streams collided %d/1000 times", same)
	}
}

func TestUint64nPropertyInRange(t *testing.T) {
	r := New(29)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
