// Package rng provides fast, deterministic pseudo-random number
// generation and the samplers used by the Tiny Quanta workloads and
// simulators.
//
// Every experiment in this repository is seeded explicitly so that runs
// are reproducible; the generators here are pure value types with no
// global state. The core generator is xoshiro256**, seeded through
// SplitMix64 as its authors recommend.
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next value.
// It is used only to expand a single seed word into the four xoshiro
// state words.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PointSeed derives the seed for point i of a multi-point experiment
// rooted at seed: the i-th output of the SplitMix64 stream seeded at
// seed. Points of the same sweep get decorrelated seeds (SplitMix64's
// finalizer avalanches every input bit), while the mapping stays a pure
// function of (seed, i) so a sweep produces identical per-point runs no
// matter which order — or on how many goroutines — its points execute.
func PointSeed(seed, i uint64) uint64 {
	s := seed + i*0x9e3779b97f4a7c15
	return splitMix64(&s)
}

// Rand is a xoshiro256** pseudo-random generator. The zero value is not
// valid; construct one with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two generators
// built from the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Guard against the (astronomically unlikely via SplitMix64, but
	// cheap to exclude) all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	threshold := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
// The mean must be positive.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with non-positive mean")
	}
	// Uniform in (0, 1]: avoids log(0).
	u := 1.0 - r.Float64()
	return -mean * math.Log(u)
}

// Normal returns a standard normally distributed value (mean 0,
// variance 1) via the Box-Muller transform. Each call consumes exactly
// two uniform draws — the sine partner is discarded — so the draw count
// per sample is fixed, which keeps composed samplers' stream layouts
// independent of sampling history.
func (r *Rand) Normal() float64 {
	// Uniform in (0, 1]: avoids log(0).
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm fills p with a uniform random permutation of [0, len(p)) using
// the inside-out Fisher-Yates shuffle.
func (r *Rand) Perm(p []int) {
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in the standard library.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new generator whose stream is independent of r's
// subsequent output. It is used to give each simulated component its
// own stream so that adding a component does not perturb the others.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}
