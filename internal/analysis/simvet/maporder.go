package simvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Maporder flags `range` over a map whose loop body does something
// order-sensitive with the iteration: appends to an outer slice (with
// no deterministic sort afterwards), writes ordered output, emits obs
// events, merges Result counters, or returns a value derived from the
// iteration variables (first-match-wins). Go randomizes map iteration
// order per run, so each of these makes output differ between two runs
// of the same seed — the bug class that broke tools from fleet-result
// merging to diagnostic printing.
//
// Map-ness is inferred syntactically: explicit map types on variables,
// fields, parameters and results; make(map...)/map-literal
// assignments; package-level map declarations; plus a small table of
// well-known stdlib map sources (parser.ParseDir results and
// ast.Package.Files, the idiom behind most Go tooling's map-order
// bugs). Ranging over a value the analyzer cannot type is not flagged.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work inside range-over-map loops",
	Run:  runMaporder,
}

// mergedFields are the Result counters whose map-order merging the
// analyzer treats as order-sensitive accounting.
var mergedFields = map[string]bool{
	"Completed": true, "Offered": true, "Dropped": true,
	"Throughput": true, "Goodput": true, "DropRate": true,
}

func runMaporder(pass *Pass) error {
	pkgMaps, mapFields := packageMapInfo(pass.Files)
	for _, file := range pass.Files {
		mc := &mapCtx{
			pass:      pass,
			pkgMaps:   pkgMaps,
			mapFields: mapFields,
			parser:    importName(file, "go/parser"),
			goAST:     importName(file, "go/ast") != "" || importName(file, "go/parser") != "",
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			mc.checkFunc(fn)
		}
	}
	return nil
}

// packageMapInfo gathers map-typed package-level variables and the
// names of map-typed struct fields declared anywhere in the package.
// A field name used with both map and non-map types in the same
// package (ir's Func.Blocks slice vs Loop.Blocks set) is ambiguous and
// dropped — the analyzer under-approximates rather than guess.
func packageMapInfo(files []*ast.File) (vars, fields map[string]bool) {
	vars, fields = map[string]bool{}, map[string]bool{}
	nonMap := map[string]bool{}
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					if s.Type != nil && isMapType(s.Type) {
						for _, n := range s.Names {
							vars[n.Name] = true
						}
					}
					for i, v := range s.Values {
						if i < len(s.Names) && isMapLiteral(v) {
							vars[s.Names[i].Name] = true
						}
					}
				case *ast.TypeSpec:
					st, ok := s.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						set := nonMap
						if isMapType(f.Type) {
							set = fields
						}
						for _, n := range f.Names {
							set[n.Name] = true
						}
					}
				}
			}
		}
	}
	for name := range nonMap {
		delete(fields, name)
	}
	return vars, fields
}

// isMapLiteral reports whether an expression constructs a map directly.
func isMapLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return isMapType(v.Type)
	case *ast.UnaryExpr:
		return v.Op == token.AND && isMapLiteral(v.X)
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return isMapType(v.Args[0])
		}
	}
	return false
}

// mapCtx carries the per-file map-inference state.
type mapCtx struct {
	pass      *Pass
	pkgMaps   map[string]bool
	mapFields map[string]bool
	parser    string // local name of go/parser, "" if not imported
	goAST     bool   // file works with go/ast or go/parser packages

	mapVars     map[string]bool // function-local map-typed identifiers
	outputFuncs map[string]bool // local closures whose body writes output
}

// checkFunc analyzes one function declaration (nested literals are
// treated as part of it; the variable inference over-approximates,
// which only widens what counts as a map).
func (mc *mapCtx) checkFunc(fn *ast.FuncDecl) {
	mc.mapVars = map[string]bool{}
	mc.outputFuncs = map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if isMapType(f.Type) {
				for _, n := range f.Names {
					mc.mapVars[n.Name] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ValueSpec:
			if s.Type != nil && isMapType(s.Type) {
				for _, name := range s.Names {
					mc.mapVars[name.Name] = true
				}
			}
			for i, v := range s.Values {
				if i < len(s.Names) && mc.isMapExpr(v) {
					mc.mapVars[s.Names[i].Name] = true
				}
			}
		case *ast.AssignStmt:
			// pkgs, err := parser.ParseDir(...): a known map-returning
			// call assigns its map to the first variable.
			if len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && mc.isKnownMapCall(call) {
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						mc.mapVars[id.Name] = true
					}
				}
			}
			if len(s.Rhs) == len(s.Lhs) {
				for i, rhs := range s.Rhs {
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						if mc.isMapExpr(rhs) {
							mc.mapVars[id.Name] = true
						}
						if isOutputClosure(rhs) {
							mc.outputFuncs[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})

	walkStmtLists(fn.Body, func(list []ast.Stmt) {
		for i, stmt := range list {
			if ls, ok := stmt.(*ast.LabeledStmt); ok {
				stmt = ls.Stmt
			}
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok || !mc.isMapExpr(rs.X) {
				continue
			}
			mc.checkMapRange(rs, list[i+1:])
		}
	})
}

// isMapExpr reports whether the analyzer can prove an expression is a
// map: literal construction, a known map variable, a map-typed struct
// field, or a well-known stdlib map source.
func (mc *mapCtx) isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return mc.mapVars[v.Name] || mc.pkgMaps[v.Name]
	case *ast.SelectorExpr:
		if mc.mapFields[v.Sel.Name] {
			return true
		}
		// ast.Package.Files / similar go tooling maps, the stdlib idiom
		// behind cmd/docgate's original map-order bug.
		return mc.goAST && v.Sel.Name == "Files"
	case *ast.CallExpr:
		return mc.isKnownMapCall(v)
	case *ast.ParenExpr:
		return mc.isMapExpr(v.X)
	}
	return isMapLiteral(e)
}

func (mc *mapCtx) isKnownMapCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return mc.parser != "" && base.Name == mc.parser && sel.Sel.Name == "ParseDir"
}

// checkMapRange analyzes one proven range-over-map; tail holds the
// statements following it in the same block, where a deterministic
// sort redeems an append.
func (mc *mapCtx) checkMapRange(rs *ast.RangeStmt, tail []ast.Stmt) {
	ranged := exprText(rs.X)
	// Taint: the loop variables and everything assigned from them.
	taint := map[string]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			taint[id.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || taint[id.Name] {
						continue
					}
					rhs := s.Rhs[0]
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					}
					if referencesAny(rhs, taint) {
						taint[id.Name] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if name.Name == "_" || taint[name.Name] || i >= len(s.Values) {
						continue
					}
					if referencesAny(s.Values[i], taint) {
						taint[name.Name] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	// Identifiers declared inside the body: appends to those cannot leak
	// iteration order out of the loop.
	local := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				local[name.Name] = true
			}
		case *ast.RangeStmt:
			for _, v := range []ast.Expr{s.Key, s.Value} {
				if id, ok := v.(*ast.Ident); ok {
					local[id.Name] = true
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, category, suggestion, format string, args ...any) {
		mc.pass.Report(Diagnostic{
			Pos:        pos,
			Analyzer:   "maporder",
			Category:   category,
			Message:    fmt.Sprintf(format, args...),
			Suggestion: suggestion,
		})
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if call, ok := appendCall(s); ok {
				target, ok := s.Lhs[0].(*ast.Ident)
				if ok && !local[target.Name] && taintedArgs(call.Args[1:], taint) && !sortedAfter(tail, target.Name) {
					report(s.Pos(), "map-order-append",
						fmt.Sprintf("sort %s after the loop (sort.Slice / slices.Sort) or collect the keys, sort them, and iterate the sorted keys", target.Name),
						"append to %s inside range over map %s leaks the randomized iteration order; no deterministic sort follows", target.Name, ranged)
				}
			}
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				for _, lhs := range s.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if ok && mergedFields[sel.Sel.Name] && referencesAny(s.Rhs[0], taint) {
						report(s.Pos(), "map-order-merge",
							"iterate the per-machine Results as an ordered slice, as rack.mergeResults does",
							"Result.%s merged in map iteration order over %s", sel.Sel.Name, ranged)
					}
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				break
			}
			switch {
			case mc.isOutputCall(call) && taintedArgs(call.Args, taint):
				report(s.Pos(), "map-order-output",
					"collect the lines (or keys) into a slice, sort it, then print",
					"ordered output written in map iteration order over %s", ranged)
			case isEmitCall(call) && taintedArgs(call.Args, taint):
				report(s.Pos(), "map-order-emit",
					"emit from a deterministically ordered collection; timelines are diffed byte-for-byte between runs",
					"obs events emitted in map iteration order over %s", ranged)
			case isMergeCall(call, local) && taintedArgs(call.Args, taint):
				report(s.Pos(), "map-order-merge",
					"merge from a deterministically ordered collection (sorted keys or an ordered slice)",
					"%s merges values in map iteration order over %s", exprText(call.Fun), ranged)
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if referencesAny(res, taint) {
					report(s.Pos(), "map-order-return",
						"iterate deterministically (sorted keys, or scan an ordered source) so the same element wins every run",
						"return value depends on which element of map %s is visited first", ranged)
					break
				}
			}
		}
		return true
	})
}

// appendCall matches x = append(x, ...) / x := append(x, ...).
func appendCall(s *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(s.Rhs) != 1 || len(s.Lhs) == 0 {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return nil, false
	}
	return call, true
}

func taintedArgs(args []ast.Expr, taint map[string]bool) bool {
	for _, a := range args {
		if referencesAny(a, taint) {
			return true
		}
	}
	return false
}

// isOutputCall matches direct ordered-output calls: the fmt printing
// family, the print builtins, io writer methods, and local closures
// that wrap them (the `report := func(...)` idiom).
func (mc *mapCtx) isOutputCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "print" || fun.Name == "println" || mc.outputFuncs[fun.Name]
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok && base.Name == "fmt" {
			n := fun.Sel.Name
			return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint")
		}
		switch fun.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// isOutputClosure reports whether an expression is a function literal
// whose body performs direct ordered output.
func isOutputClosure(e ast.Expr) bool {
	lit, ok := e.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "print" || fun.Name == "println" {
				found = true
			}
		case *ast.SelectorExpr:
			if base, ok := fun.X.(*ast.Ident); ok && base.Name == "fmt" {
				n := fun.Sel.Name
				if strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isEmitCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "Emit" || sel.Sel.Name == "EmitBatch"
}

// isMergeCall matches Add-style accumulation onto a receiver declared
// outside the loop body (pooling samples, merging histograms).
func isMergeCall(call *ast.CallExpr, local map[string]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	root := sel.X
	for {
		switch v := root.(type) {
		case *ast.SelectorExpr:
			root = v.X
		case *ast.IndexExpr:
			root = v.X
		case *ast.ParenExpr:
			root = v.X
		case *ast.Ident:
			return !local[v.Name]
		default:
			return false
		}
	}
}

// sortedAfter reports whether a statement after the loop sorts the
// named slice (sort.* or slices.* call referencing it).
func sortedAfter(tail []ast.Stmt, target string) bool {
	names := map[string]bool{target: true}
	for _, s := range tail {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if base, ok := sel.X.(*ast.Ident); ok && (base.Name == "sort" || base.Name == "slices") && referencesAny(call, names) {
			return true
		}
	}
	return false
}

// walkStmtLists visits every statement list in the body: blocks, case
// clauses, and select clauses.
func walkStmtLists(body *ast.BlockStmt, visit func(list []ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			visit(s.List)
		case *ast.CaseClause:
			visit(s.Body)
		case *ast.CommClause:
			visit(s.Body)
		}
		return true
	})
}
