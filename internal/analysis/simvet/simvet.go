package simvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos token.Pos
	// Analyzer names the analyzer that produced the finding ("nondeterm",
	// "maporder", "hotalloc", "conserve", or "simvet" for framework
	// findings such as stale ignores).
	Analyzer string
	// Category is the finding class within the analyzer, stable for
	// tooling ("wall-clock", "map-order-append", ...).
	Category string
	// Message explains the finding.
	Message string
	// Suggestion, when non-empty, is a cheap suggested edit: what the
	// code should look like instead. Drivers print it alongside the
	// finding (-json carries it verbatim).
	Suggestion string
}

// Pass holds the per-package inputs and the report sink, in the style
// of go/analysis but self-contained (no module dependencies).
type Pass struct {
	Fset *token.FileSet
	// Path is the package directory in slash form ("internal/sim");
	// scope-limited analyzers (nondeterm) consult it. Drivers set it to
	// the directory argument; an empty path disables scoped analyzers.
	Path  string
	Files []*ast.File
	// Report receives each finding. Analyze wraps it with suppression
	// handling; analyzers call the wrapped sink.
	Report func(Diagnostic)
}

// Analyzer describes one check, go/analysis-style.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Analyzers lists the full simvet suite in reporting order.
var Analyzers = []*Analyzer{Nondeterm, Maporder, Hotalloc, Conserve}

// Analyze runs the given analyzers (default: all of Analyzers) over one
// package with `//simvet:ignore <why>` suppression: a marker on the
// finding's line or the line above suppresses it. Ignore markers that
// suppress nothing are themselves reported (category "stale-ignore"),
// so suppressions cannot silently outlive the code they excused.
func Analyze(pass *Pass, analyzers ...*Analyzer) error {
	if len(analyzers) == 0 {
		analyzers = Analyzers
	}
	type ignoreMark struct {
		pos  token.Pos
		used bool
	}
	// file → line → marker, for the files of this package.
	ignores := map[string]map[int]*ignoreMark{}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isIgnoreMarker(c.Text) {
					if ignores[fname] == nil {
						ignores[fname] = map[int]*ignoreMark{}
					}
					ignores[fname][pass.Fset.Position(c.Pos()).Line] = &ignoreMark{pos: c.Pos()}
				}
			}
		}
	}
	outer := pass.Report
	filtered := *pass
	filtered.Report = func(d Diagnostic) {
		p := pass.Fset.Position(d.Pos)
		if marks := ignores[p.Filename]; marks != nil {
			if m := marks[p.Line]; m != nil {
				m.used = true
				return
			}
			if m := marks[p.Line-1]; m != nil {
				m.used = true
				return
			}
		}
		outer(d)
	}
	for _, a := range analyzers {
		if err := a.Run(&filtered); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, marks := range ignores {
		for _, m := range marks {
			if !m.used {
				outer(Diagnostic{
					Pos:      m.pos,
					Analyzer: "simvet",
					Category: "stale-ignore",
					Message:  "simvet:ignore suppresses no finding; delete it (stale suppressions hide future regressions)",
				})
			}
		}
	}
	return nil
}

// isIgnoreMarker reports whether a comment IS a suppression marker —
// its text starts with //simvet:ignore — as opposed to prose that
// merely mentions the marker (doc comments describing the convention
// must not become markers themselves).
func isIgnoreMarker(text string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	return strings.HasPrefix(strings.TrimSpace(text), "simvet:ignore")
}

// --- shared syntax helpers --------------------------------------------

// importName returns the local name under which file imports the given
// path, or "" when it does not (blank and dot imports count as absent:
// neither produces a selector the analyzers can flag).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			return ""
		}
		return name
	}
	return ""
}

// markedFuncs returns the function declarations carrying the given
// marker ("simvet:hotpath", "simvet:accounting") in their doc comment
// or on the line directly above the declaration.
func markedFuncs(fset *token.FileSet, file *ast.File, marker string) map[*ast.FuncDecl]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	out := map[*ast.FuncDecl]bool{}
	if len(lines) == 0 {
		return out
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		declLine := fset.Position(fn.Pos()).Line
		from := declLine - 1
		if fn.Doc != nil {
			from = fset.Position(fn.Doc.Pos()).Line
		}
		for l := from; l <= declLine; l++ {
			if lines[l] {
				out[fn] = true
				break
			}
		}
	}
	return out
}

// exprText renders a short expression for diagnostics (best effort).
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	case *ast.ParenExpr:
		return "(" + exprText(x.X) + ")"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.UnaryExpr:
		return x.Op.String() + exprText(x.X)
	}
	return "expr"
}

// isMapType reports whether a type expression is syntactically a map.
func isMapType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return isMapType(t.X)
	}
	return false
}

// identsIn collects every identifier referenced under n into out.
func identsIn(n ast.Node, out map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if sel, ok := m.(*ast.SelectorExpr); ok {
			// Only the base of a selector is a variable reference; the
			// Sel half is a field or method name.
			identsIn(sel.X, out)
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
}

// referencesAny reports whether n references any identifier in names.
func referencesAny(n ast.Node, names map[string]bool) bool {
	if len(names) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok {
			if referencesAny(sel.X, names) {
				found = true
			}
			return false
		}
		if id, ok := m.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}
