package simvet_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/simvet"
)

// TestDogfoodRepoClean runs the full simvet suite over every package
// of this module, mirroring the CI `go run ./cmd/simvet ./...` gate:
// the repo's own sources must produce zero unsuppressed findings, so
// cleanliness is enforced by `go test` too, not only by CI wiring.
func TestDogfoodRepoClean(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		pass := &simvet.Pass{
			Fset: fset,
			Path: filepath.ToSlash(rel),
			Report: func(d simvet.Diagnostic) {
				p := fset.Position(d.Pos)
				t.Errorf("%s:%d: %s: %s: %s", p.Filename, p.Line, d.Analyzer, d.Category, d.Message)
			},
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", filepath.Join(dir, e.Name()), err)
			}
			pass.Files = append(pass.Files, f)
		}
		if len(pass.Files) == 0 {
			continue
		}
		checked++
		if err := simvet.Analyze(pass); err != nil {
			t.Fatal(err)
		}
	}
	if checked < 10 {
		t.Fatalf("dogfood only reached %d packages; walk is broken", checked)
	}
}
