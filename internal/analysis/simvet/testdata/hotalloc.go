package fixtures

import "fmt"

type queue struct {
	buf []int
}

//simvet:hotpath
func (q *queue) push(v int, done func()) {
	q.buf = append(q.buf, v) // field append: the reused-buffer idiom, allowed
	cb := func() { done() }  // want "hotalloc: closure: function literal captures done"
	cb()
}

//simvet:hotpath
func record(v int) {
	fmt.Printf("v=%d", v) // want "hotalloc: boxing: fmt.Printf boxes every argument"
	x := any(v)           // want "hotalloc: boxing: any.v. boxes a concrete value"
	_ = x
}

//simvet:hotpath
func collectGrowing(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "hotalloc: append-grow: append to out"
	}
	return out
}

//simvet:hotpath
func collectPreallocated(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func coldPath(done func()) func() {
	// No hotpath marker: closures here are fine.
	return func() { done() }
}

//simvet:hotpath
func suppressedClosure(done func()) {
	//simvet:ignore constructed once per run, not per event
	cb := func() { done() }
	cb()
}
