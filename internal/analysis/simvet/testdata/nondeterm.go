// Package fixtures holds analysistest sources for the simvet
// analyzers; each file is parsed by exactly one test and never
// compiled.
package fixtures

import (
	"math/rand" // want "nondeterm: math-rand: math/rand in a simulator package"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "nondeterm: wall-clock: time.Now reads the wall clock"
	return time.Since(start) // want "nondeterm: wall-clock: time.Since reads the wall clock"
}

func globalDraw() int {
	return rand.Intn(10) // want "nondeterm: math-rand: rand.Intn draws from the package-global generator"
}

func localGenerator() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "nondeterm: math-rand: rand.New constructs" "nondeterm: math-rand: rand.NewSource constructs"
}

func hostTelemetry() time.Time {
	//simvet:ignore host-side telemetry, not sim state
	return time.Now()
}

func exactlyOneSuppressed() (time.Time, time.Time) {
	//simvet:ignore only this first read is host telemetry
	a := time.Now()
	b := time.Now() // want "nondeterm: wall-clock: time.Now reads the wall clock"
	return a, b
}
