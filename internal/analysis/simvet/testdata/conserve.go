package fixtures

// Result mirrors cluster.Result's conserved counters; conserve matches
// the type by name.
type Result struct {
	Completed uint64
	Dropped   uint64
	Offered   uint64
}

func rogueMutation(r *Result) {
	r.Completed++    // want "conserve: result-mutation: Result.Completed mutated on r"
	r.Dropped += 1   // want "conserve: result-mutation: Result.Dropped mutated on r"
	r.Offered = 1000 // want "conserve: result-mutation: Result.Offered mutated on r"
}

func rogueLocal() Result {
	out := Result{}
	out.Completed = 7 // want "conserve: result-mutation: Result.Completed mutated on out"
	return out
}

func rogueSliceElement(rs []*Result) {
	rs[0].Dropped++ // want "conserve: result-mutation: Result.Dropped mutated on rs"
}

// mergeAll legitimately folds counters and carries the accounting
// marker, so none of its mutations are flagged.
//
//simvet:accounting
func mergeAll(parts []*Result) *Result {
	out := &Result{}
	for _, r := range parts {
		out.Completed += r.Completed
		out.Dropped += r.Dropped
		out.Offered += r.Offered
	}
	return out
}

func suppressedReset(r *Result) {
	//simvet:ignore fixture reset between subtests
	r.Offered = 0
}
