package fixtures

//simvet:ignore nothing here needs suppressing // want "simvet: stale-ignore: simvet:ignore suppresses no finding"
func staleMarker() int {
	return 1
}
