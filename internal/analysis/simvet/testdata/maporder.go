package fixtures

import (
	"fmt"
	"go/parser"
	"go/token"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: map-order-append: append to keys"
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "maporder: map-order-output: ordered output"
	}
}

func emitAll(rec interface{ Emit(int) }, m map[int]int) {
	for k := range m {
		rec.Emit(k) // want "maporder: map-order-emit: obs events emitted"
	}
}

type result struct{ Completed, Dropped, Offered uint64 }

func mergeByMap(parts map[string]result) result {
	var out result
	for _, r := range parts {
		out.Completed += r.Completed // want "maporder: map-order-merge: Result.Completed merged"
	}
	return out
}

func firstMatch(m map[string]bool) string {
	for k := range m {
		return k // want "maporder: map-order-return: return value depends"
	}
	return ""
}

func docgateStyle(fset *token.FileSet) {
	report := func(msg string) {
		fmt.Println(msg)
	}
	pkgs, _ := parser.ParseDir(fset, ".", nil, 0)
	for name := range pkgs {
		report(name) // want "maporder: map-order-output: ordered output"
	}
}

func suppressedOutput(m map[string]int) {
	for k := range m {
		//simvet:ignore debug dump, order is irrelevant here
		fmt.Println(k)
	}
}

func orderFreeSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
