// Package simvet statically checks the simulator's own load-bearing
// invariants, the same way internal/verify and tqvet check task
// programs: determinism and hot-path discipline are enforced at
// analysis time instead of discovered by flaky reruns.
//
// The suite holds four analyzers, run together by Analyze and wired
// into CI through cmd/simvet:
//
//   - nondeterm: wall-clock reads (time.Now/Since) and math/rand in
//     the simulator packages (internal/sim, internal/cluster,
//     internal/rack, internal/workload), where all randomness must be
//     threaded through internal/rng so reruns are bit-identical.
//   - maporder: order-sensitive work inside range-over-map loops —
//     appends without a following sort, ordered output, obs emission,
//     Result merging, first-match returns — Go's randomized map order
//     makes each differ run to run.
//   - hotalloc: allocation sources (closure captures, interface
//     boxing, unpreallocated append growth) inside functions marked
//     //simvet:hotpath, extending the PR 6 zero-alloc guard test to a
//     checked annotation.
//   - conserve: mutation of the conserved Result counters (Offered,
//     Completed, Dropped) outside functions marked
//     //simvet:accounting, protecting Offered == Completed + Dropped.
//
// Findings are suppressed by `//simvet:ignore <why>` on the flagged
// line or the line above; ignores that suppress nothing are themselves
// reported as stale. Everything is built on go/ast and go/token only —
// no external analysis framework — following the tqvet idiom.
package simvet
