package simvet_test

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simvet"
)

// adapt runs the full simvet suite (suppression included) under the
// given package path and reports in the "analyzer: category: message"
// shape the fixtures match.
func adapt(path string) analysistest.RunFunc {
	return func(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, text string)) error {
		pass := &simvet.Pass{
			Fset:  fset,
			Path:  path,
			Files: files,
			Report: func(d simvet.Diagnostic) {
				report(d.Pos, analysistest.Format(d.Analyzer, d.Category, d.Message))
			},
		}
		return simvet.Analyze(pass)
	}
}

// runFixture checks one testdata file against its own want comments,
// under the full suite so fixtures also prove the analyzers don't
// cross-fire on each other's cases.
func runFixture(t *testing.T, path, file string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, map[string]string{file: string(src)}, adapt(path))
}

func TestNondetermFixture(t *testing.T) {
	// nondeterm is scoped: the fixture must run under a simulator path.
	runFixture(t, "internal/sim", "nondeterm.go")
}

func TestMaporderFixture(t *testing.T) {
	runFixture(t, "internal/analysis/simvet/testdata", "maporder.go")
}

func TestHotallocFixture(t *testing.T) {
	runFixture(t, "internal/analysis/simvet/testdata", "hotalloc.go")
}

func TestConserveFixture(t *testing.T) {
	runFixture(t, "internal/analysis/simvet/testdata", "conserve.go")
}

// TestStaleIgnoreFixture proves an ignore that suppresses nothing is
// itself reported.
func TestStaleIgnoreFixture(t *testing.T) {
	runFixture(t, "internal/analysis/simvet/testdata", "stale.go")
}

// TestNondetermOutOfScope runs the nondeterm-triggering constructs
// under a non-simulator path: no findings expected (the harness fails
// on any unexpected diagnostic, and the source carries no wants).
func TestNondetermOutOfScope(t *testing.T) {
	src := `package x

import "time"

func f() time.Time { return time.Now() }
`
	analysistest.Run(t, map[string]string{"x.go": src}, adapt("cmd/tqsim"))
}

// TestScopeMatching pins the path forms inSimScope accepts: exact,
// ./-prefixed, trailing-slash, and nested module prefixes — but not
// unrelated packages.
func TestScopeMatching(t *testing.T) {
	src := `package x

import "time"

func f() time.Time { return time.Now() } // want "nondeterm: wall-clock"
`
	for _, path := range []string{"internal/sim", "./internal/sim", "internal/cluster/", "repro/internal/rack", "internal/workload"} {
		analysistest.Run(t, map[string]string{"x.go": src}, adapt(path))
	}
	clean := `package x

import "time"

func f() time.Time { return time.Now() }
`
	for _, path := range []string{"", "internal/obs", "internal/simulator", "cmd"} {
		analysistest.Run(t, map[string]string{"x.go": clean}, adapt(path))
	}
}
