package simvet

import (
	"fmt"
	"go/ast"
	"strings"
)

// simScopePaths are the packages whose code must be a pure function of
// (config, seed): the simulator core, the machine models, the rack
// routing plane, and the workload generators. Wall-clock reads and
// untracked RNG there silently decorrelate reruns — the bug class that
// makes a hypothesis verdict unreproducible.
var simScopePaths = []string{
	"internal/sim",
	"internal/cluster",
	"internal/pifo",
	"internal/rack",
	"internal/workload",
}

// inSimScope reports whether a package directory path falls inside the
// determinism-scoped package set.
func inSimScope(path string) bool {
	p := strings.TrimPrefix(strings.TrimSuffix(path, "/"), "./")
	for _, s := range simScopePaths {
		if p == s || strings.HasSuffix(p, "/"+s) {
			return true
		}
	}
	return false
}

// Nondeterm flags nondeterminism sources inside the simulator packages:
// wall-clock reads (time.Now, time.Since) and math/rand in any form —
// the package-global generator and locally constructed ones alike. All
// simulator randomness must flow through internal/rng, seeded from the
// run configuration (rng.New, rng.PointSeed), so that two runs of the
// same config are bit-identical.
var Nondeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "flag wall-clock reads and non-rng randomness in simulator packages",
	Run:  runNondeterm,
}

func runNondeterm(pass *Pass) error {
	if !inSimScope(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		timeName := importName(file, "time")
		randName := importName(file, "math/rand")
		randV2 := importName(file, "math/rand/v2")
		if randName == "" {
			randName = randV2
		}
		if randName != "" {
			for _, imp := range file.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Report(Diagnostic{
						Pos:        imp.Pos(),
						Analyzer:   "nondeterm",
						Category:   "math-rand",
						Message:    "math/rand in a simulator package: its generators are not threaded through the run seed",
						Suggestion: "draw from internal/rng instead: r := rng.New(rng.PointSeed(cfg.Seed, i))",
					})
				}
			}
		}
		if timeName == "" && randName == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case timeName != "" && base.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since"):
				pass.Report(Diagnostic{
					Pos:        call.Pos(),
					Analyzer:   "nondeterm",
					Category:   "wall-clock",
					Message:    fmt.Sprintf("%s.%s reads the wall clock inside a simulator package; simulated time must come from the engine clock", timeName, sel.Sel.Name),
					Suggestion: "use the sim.Engine clock (Engine.Now) or take the timestamp as a parameter; suppress with //simvet:ignore <why> for host-side telemetry",
				})
			case randName != "" && base.Name == randName:
				what := "draws from the package-global generator, which is shared, unseeded state"
				if strings.HasPrefix(sel.Sel.Name, "New") {
					what = "constructs a generator outside internal/rng, so its stream is invisible to the seed plumbing"
				}
				pass.Report(Diagnostic{
					Pos:        call.Pos(),
					Analyzer:   "nondeterm",
					Category:   "math-rand",
					Message:    fmt.Sprintf("%s.%s %s", randName, sel.Sel.Name, what),
					Suggestion: "draw from internal/rng instead: r := rng.New(rng.PointSeed(cfg.Seed, i))",
				})
			}
			return true
		})
	}
	return nil
}
