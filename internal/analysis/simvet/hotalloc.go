package simvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Hotalloc enforces the zero-alloc discipline on functions marked
// `//simvet:hotpath` (the wheel push/pop, the arrival pump, admission
// lanes, obs recorders, the rack router Route methods). Inside a
// marked function it flags the three constructs that put allocations
// on a per-event path:
//
//   - function literals capturing enclosing locals — each evaluation
//     allocates a closure (hoist the closure to construction time and
//     reuse it, as cluster.NewPump does with its one pumpFn);
//   - interface boxing of concrete values — any(x)/interface{}(x)
//     conversions, interface-typed var declarations with a concrete
//     initializer, and fmt/log calls (their variadic ...any boxes
//     every argument);
//   - append to a function-local slice that was never made with
//     capacity — growth reallocates on the hot path (preallocate with
//     make(T, 0, n), or append into a reused struct-field buffer).
//
// Appends to struct fields, the reused-buffer idiom, are not flagged.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation sources in //simvet:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	pkgNames := packageDeclNames(pass.Files)
	for _, file := range pass.Files {
		marked := markedFuncs(pass.Fset, file, "simvet:hotpath")
		for fn := range marked {
			if fn.Body != nil {
				checkHotFunc(pass, fn, pkgNames)
			}
		}
	}
	return nil
}

// packageDeclNames collects every package-level identifier so closure
// references to them are not mistaken for captures.
func packageDeclNames(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				out[d.Name.Name] = true
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						for _, n := range s.Names {
							out[n.Name] = true
						}
					case *ast.TypeSpec:
						out[s.Name.Name] = true
					}
				}
			}
		}
	}
	return out
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl, pkgNames map[string]bool) {
	report := func(pos token.Pos, category, suggestion, format string, args ...any) {
		pass.Report(Diagnostic{
			Pos:        pos,
			Analyzer:   "hotalloc",
			Category:   category,
			Message:    fmt.Sprintf(format, args...) + " in //simvet:hotpath function " + fn.Name.Name,
			Suggestion: suggestion,
		})
	}

	// Enclosing-function bindings a literal could capture: receiver,
	// params, named results, and locals declared outside any literal.
	enclosing := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if n.Name != "_" {
					enclosing[n.Name] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)
	collectDeclared(fn.Body, true, enclosing)

	// Locals made with explicit capacity (or length): appends to them
	// stay in preallocated storage.
	preallocated := map[string]bool{}
	declaredLocals := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if s.Tok == token.DEFINE {
					declaredLocals[id.Name] = true
				}
				if i < len(s.Rhs) && isSizedMake(s.Rhs[i]) {
					preallocated[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				declaredLocals[name.Name] = true
				if i < len(s.Values) && isSizedMake(s.Values[i]) {
					preallocated[name.Name] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			captured := closureCaptures(s, enclosing, pkgNames)
			if len(captured) > 0 {
				report(s.Pos(), "closure",
					"hoist the closure to construction time and reuse it (see cluster.NewPump's single pumpFn), or pass the state as an argument",
					"function literal captures %s; each evaluation allocates a closure", strings.Join(captured, ", "))
			}
			return false // captures inside nested literals belong to the literal
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "any" && len(s.Args) == 1 {
				report(s.Pos(), "boxing",
					"keep the concrete type on the hot path; box once at construction or off-path",
					"any(%s) boxes a concrete value", exprText(s.Args[0]))
			}
			if isInterfaceConv(s.Fun) && len(s.Args) == 1 {
				report(s.Pos(), "boxing",
					"keep the concrete type on the hot path; box once at construction or off-path",
					"interface conversion boxes %s", exprText(s.Args[0]))
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if base, ok := sel.X.(*ast.Ident); ok && (base.Name == "fmt" || base.Name == "log") {
					report(s.Pos(), "boxing",
						"move formatting off the hot path; record raw values and format at flush time",
						"%s.%s boxes every argument through ...any and formats", base.Name, sel.Sel.Name)
				}
			}
		case *ast.ValueSpec:
			if isInterfaceType(s.Type) && len(s.Values) > 0 {
				report(s.Pos(), "boxing",
					"keep the concrete type on the hot path; box once at construction or off-path",
					"interface-typed declaration boxes its initializer")
			}
		case *ast.AssignStmt:
			call, ok := appendCall(s)
			if !ok {
				break
			}
			target, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				break // struct-field append: the reused-buffer idiom
			}
			_ = call
			if declaredLocals[target.Name] && !preallocated[target.Name] {
				report(s.Pos(), "append-grow",
					fmt.Sprintf("preallocate: %s := make([]T, 0, n), or append into a reused struct-field buffer", target.Name),
					"append to %s, a local slice with no preallocated capacity; growth reallocates", target.Name)
			}
		}
		return true
	})
}

// collectDeclared adds identifiers declared in the block to out; when
// skipLits is true it does not descend into function literals (their
// locals belong to the literal, not the enclosing function).
func collectDeclared(body *ast.BlockStmt, skipLits bool, out map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return !skipLits
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						out[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.Name != "_" {
					out[name.Name] = true
				}
			}
		case *ast.RangeStmt:
			for _, v := range []ast.Expr{s.Key, s.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					out[id.Name] = true
				}
			}
		}
		return true
	})
}

// closureCaptures returns the sorted names of enclosing-function
// bindings a function literal references, excluding its own bindings
// and package-level names.
func closureCaptures(lit *ast.FuncLit, enclosing, pkgNames map[string]bool) []string {
	own := map[string]bool{}
	for _, fl := range []*ast.FieldList{lit.Type.Params, lit.Type.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				own[n.Name] = true
			}
		}
	}
	collectDeclared(lit.Body, false, own)
	refs := map[string]bool{}
	identsIn(lit.Body, refs)
	var captured []string
	for name := range enclosing {
		if refs[name] && !own[name] && !pkgNames[name] {
			captured = append(captured, name)
		}
	}
	sort.Strings(captured)
	return captured
}

// isSizedMake matches make([]T, n) / make([]T, n, c): storage with
// explicit length or capacity.
func isSizedMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "make" && len(call.Args) >= 2
}

// isInterfaceConv matches the callee of interface{...}(x) conversions.
func isInterfaceConv(e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		e = p.X
	}
	_, ok := e.(*ast.InterfaceType)
	return ok
}

// isInterfaceType reports whether a type expression is syntactically an
// interface (interface{...} or the any alias).
func isInterfaceType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.InterfaceType:
		return true
	case *ast.Ident:
		return t.Name == "any"
	case *ast.ParenExpr:
		return isInterfaceType(t.X)
	}
	return false
}
