package simvet

import (
	"fmt"
	"go/ast"
	"go/token"
)

// conservedFields are the Result counters bound by the conservation
// law Offered == Completed + Dropped.
var conservedFields = map[string]bool{
	"Completed": true, "Dropped": true, "Offered": true,
}

// Conserve flags mutation of the conserved Result counters
// (Completed, Dropped, Offered) outside designated accounting helpers.
// The conservation law Offered == Completed + Dropped holds because
// exactly the kernel and admission paths account each request once;
// any other writer can break it silently. Functions that legitimately
// account — the kernel result assembly, admission bookkeeping, the
// rack fleet merge — carry a `//simvet:accounting` marker.
//
// Result-ness is inferred syntactically: variables declared or
// received as Result / *Result / cluster.Result, composites built from
// Result{...} literals, and elements of []Result / []*Result slices.
var Conserve = &Analyzer{
	Name: "conserve",
	Doc:  "flag Result counter mutation outside accounting helpers",
	Run:  runConserve,
}

func runConserve(pass *Pass) error {
	for _, file := range pass.Files {
		accounting := markedFuncs(pass.Fset, file, "simvet:accounting")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || accounting[fn] {
				continue
			}
			checkConserve(pass, fn)
		}
	}
	return nil
}

// isResultType matches Result, *Result, pkg.Result, *pkg.Result.
func isResultType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.StarExpr:
		return isResultType(t.X)
	case *ast.ParenExpr:
		return isResultType(t.X)
	case *ast.Ident:
		return t.Name == "Result"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Result"
	}
	return false
}

// isResultSliceType matches []Result and []*Result (qualified or not).
func isResultSliceType(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	return ok && isResultType(at.Elt)
}

// isResultComposite matches Result{...} and &Result{...} construction.
func isResultComposite(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.UnaryExpr:
		return v.Op == token.AND && isResultComposite(v.X)
	case *ast.CompositeLit:
		return v.Type != nil && isResultType(v.Type)
	}
	return false
}

func checkConserve(pass *Pass, fn *ast.FuncDecl) {
	resultVars := map[string]bool{}
	resultSlices := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				switch {
				case isResultType(f.Type):
					resultVars[n.Name] = true
				case isResultSliceType(f.Type):
					resultSlices[n.Name] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if s.Type != nil && isResultType(s.Type) {
					resultVars[name.Name] = true
				}
				if s.Type != nil && isResultSliceType(s.Type) {
					resultSlices[name.Name] = true
				}
				if i < len(s.Values) && isResultComposite(s.Values[i]) {
					resultVars[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				break
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isResultComposite(s.Rhs[i]) {
					resultVars[id.Name] = true
				}
				if cl, ok := s.Rhs[i].(*ast.CompositeLit); ok && cl.Type != nil && isResultSliceType(cl.Type) {
					resultSlices[id.Name] = true
				}
			}
		case *ast.RangeStmt:
			if x, ok := s.X.(*ast.Ident); ok && resultSlices[x.Name] {
				if v, ok := s.Value.(*ast.Ident); ok && v.Name != "_" {
					resultVars[v.Name] = true
				}
			}
		}
		return true
	})

	flag := func(pos token.Pos, field, base string) {
		pass.Report(Diagnostic{
			Pos:      pos,
			Analyzer: "conserve",
			Category: "result-mutation",
			Message: fmt.Sprintf("Result.%s mutated on %s outside an accounting helper; Offered == Completed + Dropped holds only if the kernel and admission paths account each request exactly once",
				field, base),
			Suggestion: "route the update through the kernel/admission accounting, or mark the enclosing function //simvet:accounting if it legitimately merges counters",
		})
	}
	check := func(pos token.Pos, lhs ast.Expr) {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !conservedFields[sel.Sel.Name] {
			return
		}
		base := sel.X
		fromSlice := false
		for done := false; !done; {
			switch v := base.(type) {
			case *ast.ParenExpr:
				base = v.X
			case *ast.StarExpr:
				base = v.X
			case *ast.IndexExpr:
				base = v.X
				fromSlice = true
			default:
				done = true
			}
		}
		id, ok := base.(*ast.Ident)
		if !ok {
			return
		}
		if resultVars[id.Name] || (fromSlice && resultSlices[id.Name]) {
			flag(pos, sel.Sel.Name, id.Name)
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				check(s.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			check(s.Pos(), s.X)
		}
		return true
	})
}
