package tqvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Pass holds the per-package inputs and the report sink.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Report func(Diagnostic)
}

// Analyzer describes a check, go/analysis-style.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Checker is the tqvet analyzer.
var Checker = &Analyzer{
	Name: "tqvet",
	Doc:  "report tqrt task bodies that can overrun their quantum or block the worker",
	Run:  run,
}

func run(pass *Pass) error {
	for _, file := range pass.Files {
		names := tqrtImports(file)
		marks := ignoreMarks(pass.Fset, file)
		if len(names) > 0 {
			report := func(pos token.Pos, category, format string, args ...any) {
				line := pass.Fset.Position(pos).Line
				if m := marks[line]; m != nil {
					m.used = true
					return
				}
				if m := marks[line-1]; m != nil {
					m.used = true
					return
				}
				pass.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
			}
			ast.Inspect(file, func(n ast.Node) bool {
				var typ *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					typ, body = fn.Type, fn.Body
				case *ast.FuncLit:
					typ, body = fn.Type, fn.Body
				default:
					return true
				}
				yields := yieldParams(typ, names)
				if len(yields) == 0 || body == nil {
					return true
				}
				checkTask(body, yields, report)
				return true
			})
		}
		// Markers that suppressed nothing are themselves findings — a
		// stale ignore hides the next regression on its line. Files that
		// never import tqrt can have no tqvet findings, so any marker
		// there is stale by definition.
		for _, m := range marks {
			if !m.used {
				pass.Report(Diagnostic{
					Pos:      m.pos,
					Category: "stale-ignore",
					Message:  "tqvet:ignore suppresses no finding; delete it (stale suppressions hide future regressions)",
				})
			}
		}
	}
	return nil
}

// tqrtImports returns the local names under which the file imports the
// tqrt runtime package.
func tqrtImports(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != "repro/internal/tqrt" && !strings.HasSuffix(path, "/internal/tqrt") {
			continue
		}
		name := "tqrt"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name != "_" && name != "." {
			names[name] = true
		}
	}
	return names
}

// yieldParams returns the names of parameters typed *pkg.Yield for any
// recognized tqrt import name — the marker that a function is a task
// body (or a helper called with the task's yield).
func yieldParams(typ *ast.FuncType, pkgs map[string]bool) map[string]bool {
	yields := map[string]bool{}
	if typ.Params == nil {
		return yields
	}
	for _, field := range typ.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Yield" {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || !pkgs[pkg.Name] {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				yields[name.Name] = true
			}
		}
	}
	return yields
}

// ignoreMark tracks one `//tqvet:ignore` marker and whether it
// suppressed a finding during the run.
type ignoreMark struct {
	pos  token.Pos
	used bool
}

// ignoreMarks collects the lines carrying a `//tqvet:ignore` marker. A
// comment counts only when it starts with the marker — prose that
// merely mentions the convention (doc comments, usage text) is not a
// suppression.
func ignoreMarks(fset *token.FileSet, file *ast.File) map[int]*ignoreMark {
	marks := map[int]*ignoreMark{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			if strings.HasPrefix(strings.TrimSpace(text), "tqvet:ignore") {
				marks[fset.Position(c.Pos()).Line] = &ignoreMark{pos: c.Pos()}
			}
		}
	}
	return marks
}

type reporter func(pos token.Pos, category, format string, args ...any)

// checkTask runs all three checks over one task body. Nested function
// literals that declare their own yield parameter are separate tasks
// (the file walk finds them independently) and are skipped here;
// literals that merely capture this task's yield are part of it.
func checkTask(body *ast.BlockStmt, yields map[string]bool, report reporter) {
	// Channel operations that are a select's comm clause are reported
	// through the select check, not individually.
	inComm := map[token.Pos]bool{}
	walkTask(body, yields, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch v := m.(type) {
					case *ast.SendStmt:
						inComm[v.Pos()] = true
					case *ast.UnaryExpr:
						if v.Op == token.ARROW {
							inComm[v.Pos()] = true
						}
					}
					return true
				})
			}
		}
	})
	walkTask(body, yields, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ForStmt:
			checkLoop(s.Pos(), s.Body, yields, report)
		case *ast.RangeStmt:
			checkLoop(s.Pos(), s.Body, yields, report)
		case *ast.SendStmt:
			if !inComm[s.Pos()] {
				report(s.Pos(), "blocking", "channel send inside a task blocks the whole worker; hand the value off outside the task or use a buffered, non-full channel via select+default")
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && !inComm[s.Pos()] {
				report(s.Pos(), "blocking", "channel receive inside a task blocks the whole worker")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				report(s.Pos(), "blocking", "select without default inside a task blocks the whole worker")
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == "time" && sel.Sel.Name == "Sleep" {
					report(s.Pos(), "blocking", "time.Sleep inside a task stalls the worker; yield instead and let the scheduler run other tasks")
				} else if name := sel.Sel.Name; name == "Lock" || name == "RLock" || name == "Wait" {
					report(s.Pos(), "blocking", "%s.%s() may block inside a task; a blocked task stalls its worker for every queued task", exprText(sel.X), name)
				}
			}
		case *ast.BlockStmt:
			checkDeadProbes(s.List, yields, report)
		case *ast.CaseClause:
			checkDeadProbes(s.Body, yields, report)
		case *ast.CommClause:
			checkDeadProbes(s.Body, yields, report)
		}
	})
}

// walkTask visits every node of a task body except nested function
// literals that declare their own yield parameter.
func walkTask(body *ast.BlockStmt, yields map[string]bool, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && declaresOwnYield(lit.Type) {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// declaresOwnYield reports whether a function literal takes a *X.Yield
// parameter of its own (any package name: the import set is not in
// scope here, and a false positive only skips a re-analysis).
func declaresOwnYield(typ *ast.FuncType) bool {
	if typ.Params == nil {
		return false
	}
	for _, field := range typ.Params.List {
		if star, ok := field.Type.(*ast.StarExpr); ok {
			if sel, ok := star.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Yield" {
				return true
			}
		}
	}
	return false
}

// --- must-probe path analysis -----------------------------------------

// verdict is the three-valued result of the backward path analysis over
// a loop body: does executing this statement (list) guarantee the
// iteration probes or leaves the loop?
type verdict int

const (
	// fallThrough: execution continues to the next statement with no
	// probe yet.
	fallThrough verdict = iota
	// probesOrExits: every path through the statement probes, returns,
	// or breaks out of the loop.
	probesOrExits
	// continuesUnprobed: some path reaches the next iteration (via
	// continue) without a probe.
	continuesUnprobed
)

// checkLoop reports a loop whose body can complete an iteration without
// reaching a probe.
func checkLoop(pos token.Pos, body *ast.BlockStmt, yields map[string]bool, report reporter) {
	if listVerdict(body.List, yields) != probesOrExits {
		report(pos, "loop-no-probe", "loop can complete an iteration without reaching a probe; the task can overrun its quantum — call the yield's Probe() on every path")
	}
}

func listVerdict(stmts []ast.Stmt, yields map[string]bool) verdict {
	for _, s := range stmts {
		switch stmtVerdict(s, yields) {
		case probesOrExits:
			return probesOrExits
		case continuesUnprobed:
			return continuesUnprobed
		}
	}
	return fallThrough
}

func stmtVerdict(s ast.Stmt, yields map[string]bool) verdict {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if callProbes(st.X, yields) {
			return probesOrExits
		}
	case *ast.ReturnStmt:
		return probesOrExits
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK, token.GOTO:
			// Leaves the analyzed loop (or, for goto, at least leaves
			// straight-line flow — assume the landing site is checked on
			// its own).
			return probesOrExits
		case token.CONTINUE:
			return continuesUnprobed
		}
	case *ast.BlockStmt:
		return listVerdict(st.List, yields)
	case *ast.LabeledStmt:
		return stmtVerdict(st.Stmt, yields)
	case *ast.IfStmt:
		thenV := listVerdict(st.Body.List, yields)
		elseV := fallThrough
		if st.Else != nil {
			elseV = stmtVerdict(st.Else, yields)
		}
		if thenV == continuesUnprobed || elseV == continuesUnprobed {
			return continuesUnprobed
		}
		if thenV == probesOrExits && st.Else != nil && elseV == probesOrExits {
			return probesOrExits
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return switchVerdict(s, yields)
	case *ast.SelectStmt:
		all := probesOrExits
		for _, c := range st.Body.List {
			cv := listVerdict(c.(*ast.CommClause).Body, yields)
			if cv == continuesUnprobed {
				return continuesUnprobed
			}
			if cv != probesOrExits {
				all = fallThrough
			}
		}
		return all
	case *ast.ForStmt, *ast.RangeStmt:
		// A nested loop may run zero iterations, so it guarantees
		// nothing for the enclosing loop; its own body is checked
		// separately. Its break/continue statements bind to it, which
		// is why the analysis does not descend here.
		return fallThrough
	}
	return fallThrough
}

func switchVerdict(s ast.Stmt, yields map[string]bool) verdict {
	var clauses []ast.Stmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		clauses = st.Body.List
	}
	hasDefault := false
	all := probesOrExits
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		// A `break` inside a switch leaves the switch, not the loop:
		// treat a bare-break clause as fallThrough, not probesOrExits.
		cv := listVerdict(stripSwitchBreaks(cc.Body), yields)
		if cv == continuesUnprobed {
			return continuesUnprobed
		}
		if cv != probesOrExits {
			all = fallThrough
		}
	}
	if hasDefault && all == probesOrExits {
		return probesOrExits
	}
	return fallThrough
}

// stripSwitchBreaks removes trailing unlabeled breaks, which bind to
// the switch rather than the enclosing loop.
func stripSwitchBreaks(stmts []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.BREAK && br.Label == nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

// callProbes reports whether an expression is a call that (possibly
// transitively) reaches a probe: y.Probe(), a call taking y as an
// argument, or a call taking a closure that captures y.
func callProbes(e ast.Expr, yields map[string]bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok && yields[x.Name] && sel.Sel.Name == "Probe" {
			return true
		}
	}
	for _, arg := range call.Args {
		switch a := arg.(type) {
		case *ast.Ident:
			if yields[a.Name] {
				return true
			}
		case *ast.FuncLit:
			if referencesYield(a, yields) {
				return true
			}
		}
	}
	return false
}

func referencesYield(n ast.Node, yields map[string]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && yields[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// --- dead probe check -------------------------------------------------

// checkDeadProbes flags probe statements that sit behind a terminating
// statement in the same list: the author expects the task to probe
// there, but control can never arrive.
func checkDeadProbes(stmts []ast.Stmt, yields map[string]bool, report reporter) {
	terminated := false
	for _, s := range stmts {
		es, isExpr := s.(*ast.ExprStmt)
		if terminated && isExpr && callProbes(es.X, yields) {
			report(s.Pos(), "dead-probe", "probe is unreachable: an earlier statement in this block always returns or branches away")
			continue
		}
		if terminates(s) {
			terminated = true
		}
	}
}

// terminates reports whether a statement unconditionally leaves the
// enclosing statement list.
func terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if len(st.List) == 0 {
			return false
		}
		return terminates(st.List[len(st.List)-1])
	}
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// exprText renders a short expression for diagnostics (best effort).
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	case *ast.ParenExpr:
		return "(" + exprText(x.X) + ")"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "expr"
}
