package tqvet

import (
	"go/ast"
	"go/token"
	"testing"

	"repro/internal/analysis/analysistest"
)

// runTqvet adapts the checker to the analysistest harness.
func runTqvet(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, text string)) error {
	pass := &Pass{
		Fset:  fset,
		Files: files,
		Report: func(d Diagnostic) {
			report(d.Pos, analysistest.Format("tqvet", d.Category, d.Message))
		},
	}
	return Checker.Run(pass)
}

// TestIgnoreSuppressesExactlyOne proves a //tqvet:ignore marker eats
// only the finding on its own line (or the line below it): an
// identical unsuppressed violation in the same task is still reported,
// and the used marker is not reported as stale.
func TestIgnoreSuppressesExactlyOne(t *testing.T) {
	src := header + `
func task(y *tqrt.Yield) {
	n := 0
	//tqvet:ignore bounded by construction, proven elsewhere
	for i := 0; i < 8; i++ {
		n += i
	}
	for i := 0; i < 8; i++ { // want "tqvet: loop-no-probe"
		n += i
	}
	_ = n
	y.Probe()
}
`
	analysistest.Run(t, map[string]string{"task.go": src}, runTqvet)
}

// TestStaleIgnoreReported proves a marker that suppresses nothing is
// itself a finding, and that prose mentioning the convention is not
// treated as a marker.
func TestStaleIgnoreReported(t *testing.T) {
	src := header + `
// This helper needs no //tqvet:ignore marker: mentioning one in prose
// must not create a suppression.
func task(y *tqrt.Yield) {
	//tqvet:ignore nothing on this line needs suppressing // want "tqvet: stale-ignore: tqvet:ignore suppresses no finding"
	y.Probe()
}
`
	analysistest.Run(t, map[string]string{"task.go": src}, runTqvet)
}
