// Package tqvet statically checks Go code that runs tasks on the live
// Tiny Quanta runtime (internal/tqrt). It is the source-level
// counterpart of the IR verifier in internal/verify: where that proves
// the probe-gap invariant over instrumented IR, tqvet flags the ways a
// hand-written task body can break blind scheduling —
//
//   - a loop in a task that can complete an iteration without reaching
//     a probe (the task would hog its worker past the quantum);
//   - blocking operations inside a task (channel sends/receives,
//     selects without a default, time.Sleep, mutex/WaitGroup waits):
//     a blocked task stalls the whole worker, defeating µs-scale
//     scheduling;
//   - probe calls that are unreachable behind early returns or breaks
//     (the author believes the task probes, but it cannot).
//
// The analysis is syntactic and deliberately conservative in what it
// assumes probes: a direct y.Probe() call, any call that receives the
// yield as an argument (the callee may probe), and any call passed a
// closure that captures the yield. Findings can be suppressed with a
// `//tqvet:ignore <why>` comment on the offending line or the line
// above.
//
// The Analyzer/Pass/Diagnostic types mirror the shape of
// golang.org/x/tools/go/analysis so the checker can be lifted onto
// that driver when vendoring it is an option; here the self-contained
// driver in cmd/tqvet runs it with only the standard library.
package tqvet
