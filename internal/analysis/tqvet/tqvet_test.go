package tqvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// analyze runs the checker over one source snippet and returns the
// findings as "category@line" strings.
func analyze(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "task.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var got []string
	pass := &Pass{
		Fset:  fset,
		Files: []*ast.File{file},
		Report: func(d Diagnostic) {
			got = append(got, d.Category+"@"+itoa(fset.Position(d.Pos).Line))
		},
	}
	if err := Checker.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

func itoa(n int) string {
	digits := "0123456789"
	if n < 10 {
		return digits[n : n+1]
	}
	return itoa(n/10) + digits[n%10:n%10+1]
}

func expect(t *testing.T, src string, want ...string) {
	t.Helper()
	got := analyze(t, src)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings = %v, want %v", got, want)
	}
}

const header = `package p

import (
	"sync"
	"time"

	"repro/internal/tqrt"
)

var (
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
	_  = time.Now
)
`

func TestLoopWithoutProbeFlagged(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	n := 0
	for i := 0; i < 1000; i++ {
		n += i
	}
	_ = n
	y.Probe()
}
`, "loop-no-probe@19")
}

func TestLoopWithProbeClean(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		y.Probe()
	}
}
`)
}

func TestLoopProbingThroughHelperClean(t *testing.T) {
	// Passing the yield to a callee counts as a (possible) probe.
	expect(t, header+`
func helper(y *tqrt.Yield) { y.Probe() }

func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		helper(y)
	}
}
`)
}

func TestLoopProbingThroughClosureArgClean(t *testing.T) {
	expect(t, header+`
func each(f func(int) bool) {}

func task(y *tqrt.Yield) {
	for i := 0; i < 10; i++ {
		each(func(n int) bool {
			y.Probe()
			return true
		})
	}
}
`)
}

func TestContinueSkippingProbeFlagged(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			continue
		}
		y.Probe()
	}
}
`, "loop-no-probe@18")
}

func TestBreakAndReturnPathsClean(t *testing.T) {
	// Paths that leave the loop need no probe: the iteration never
	// completes.
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		if i == 7 {
			break
		}
		if i == 9 {
			return
		}
		y.Probe()
	}
}
`)
}

func TestIfNeedsBothArms(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			y.Probe()
		}
	}
}
`, "loop-no-probe@18")
}

func TestIfWithBothArmsProbingClean(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			y.Probe()
		} else {
			y.Probe()
		}
	}
}
`)
}

func TestNestedLoopDoesNotSatisfyOuter(t *testing.T) {
	// The inner loop probes, but it may run zero iterations — the outer
	// loop still has a probe-free path.
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ {
		for j := 0; j < i; j++ {
			y.Probe()
		}
	}
}
`, "loop-no-probe@18")
}

func TestBlockingConstructsFlagged(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	ch <- 1
	<-ch
	time.Sleep(time.Millisecond)
	mu.Lock()
	wg.Wait()
	select {
	case v := <-ch:
		_ = v
	}
	y.Probe()
}
`, "blocking@18", "blocking@19", "blocking@20", "blocking@21", "blocking@22", "blocking@23")
}

func TestSelectWithDefaultClean(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	select {
	case v := <-ch:
		_ = v
	default:
	}
	y.Probe()
}
`)
}

func TestDeadProbeFlagged(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	if true {
		return
		y.Probe()
	}
}
`, "dead-probe@20")
}

func TestIgnoreSuppressesOnSameAndPreviousLine(t *testing.T) {
	expect(t, header+`
func task(y *tqrt.Yield) {
	for i := 0; i < 1000; i++ { //tqvet:ignore proven bounded
	}
	// tqvet:ignore lock held ns-scale
	mu.Lock()
	mu.Unlock()
	y.Probe()
}
`)
}

func TestNonTqrtFileIgnored(t *testing.T) {
	expect(t, `package p

func busy(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
}

func TestNestedTaskLiteralNotDoubleReported(t *testing.T) {
	// The inner FuncLit declares its own yield: it is a separate task
	// and must be reported exactly once.
	expect(t, header+`
func outer(y *tqrt.Yield, submit func(func(z *tqrt.Yield))) {
	submit(func(z *tqrt.Yield) {
		for i := 0; i < 10; i++ {
		}
	})
	y.Probe()
}
`, "loop-no-probe@19")
}

// TestDogfoodExamplesAndCmds runs the analyzer over the repository's
// real tqrt-using code: every finding must be fixed or carry a
// justified tqvet:ignore.
func TestDogfoodExamplesAndCmds(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"../../../examples", "../../../cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			pass := &Pass{
				Fset:  fset,
				Files: []*ast.File{file},
				Report: func(diag Diagnostic) {
					pos := fset.Position(diag.Pos)
					t.Errorf("%s:%d: %s: %s", pos.Filename, pos.Line, diag.Category, diag.Message)
				},
			}
			return Checker.Run(pass)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
