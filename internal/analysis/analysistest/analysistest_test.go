package analysistest

import (
	"go/ast"
	"go/token"
	"testing"
)

// TestWantMatching exercises the harness round trip: a run function
// that reports on exactly the lines carrying want comments passes, with
// multiple wants on one line each matched once.
func TestWantMatching(t *testing.T) {
	src := `package p

func a() {} // want "first finding"

func b() {} // want "second" "third"
`
	Run(t, map[string]string{"p.go": src}, func(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, text string)) error {
		for _, f := range files {
			for _, decl := range f.Decls {
				fn := decl.(*ast.FuncDecl)
				switch fn.Name.Name {
				case "a":
					report(fn.Pos(), "first finding here")
				case "b":
					report(fn.Pos(), "second one")
					report(fn.Pos(), "and a third one")
				}
			}
		}
		return nil
	})
}

// TestFormat pins the diagnostic text shape fixtures match against.
func TestFormat(t *testing.T) {
	if got := Format("simvet", "wall-clock", "time.Now reads"); got != "simvet: wall-clock: time.Now reads" {
		t.Fatalf("Format = %q", got)
	}
}
