// Package analysistest is a small fixture harness for the repo's
// analyzers (tqvet, simvet), in the style of
// golang.org/x/tools/go/analysis/analysistest but stdlib-only.
//
// Fixture sources carry expectations as `// want "re"` comments: each
// diagnostic reported on a line must match one of that line's want
// regexes, each want regex must be matched by exactly one diagnostic,
// and diagnostics on lines with no want comment fail the test. This
// makes suppression behaviour testable: a fixture with an ignore
// marker and no want comment proves the marker eats the finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// RunFunc adapts an analyzer entry point to the harness: parse state
// in, (pos, text) findings out. Text is what want regexes match.
type RunFunc func(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, text string)) error

// wantRe extracts the quoted regexes of a `// want "re1" "re2"` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

// Run parses the given sources (name → Go source), applies run, and
// checks every reported diagnostic against the want expectations.
func Run(t *testing.T, sources map[string]string, run RunFunc) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var wants []*want
	for _, name := range names {
		src := sources[name]
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(src, "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			spec := line[idx+len("// want "):]
			ms := wantRe.FindAllStringSubmatch(spec, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted regex): %s", name, i+1, line)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", name, i+1, m[1], err)
				}
				wants = append(wants, &want{file: name, line: i + 1, re: re})
			}
		}
	}

	type finding struct {
		file string
		line int
		text string
	}
	var got []finding
	err := run(fset, files, func(pos token.Pos, text string) {
		p := fset.Position(pos)
		got = append(got, finding{file: p.Filename, line: p.Line, text: text})
	})
	if err != nil {
		t.Fatalf("analyzer error: %v", err)
	}

	for _, g := range got {
		matched := false
		for _, w := range wants {
			if w.file == g.file && w.line == g.line && w.hits == 0 && w.re.MatchString(g.text) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", g.file, g.line, g.text)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// Format renders a diagnostic triple in the shape the fixtures match:
// "analyzer: category: message".
func Format(analyzer, category, message string) string {
	return fmt.Sprintf("%s: %s: %s", analyzer, category, message)
}
