// Package verify statically proves — or refutes with a concrete
// counterexample path — the bounded-probe-gap invariant that Tiny
// Quanta's forced multitasking rests on (§3.1): after instrumentation,
// every execution path runs a probe within a bounded number of weighted
// instructions. Concretely, for a function f and a bound G, Check
// establishes that
//
//   - every CFG cycle executes a probe (otherwise a loop could run
//     forever between probes), with one exception: a probe-free
//     self-loop whose block carries a pass-proven TripBound, which the
//     self-loop-cloning optimization guarantees exits within its gate
//     target; and
//   - every entry→first-probe, probe→probe, and probe→exit path weighs
//     at most G instructions (calls weigh ir.CallWeight, probes weigh
//     nothing — the same weighting the passes bound paths with).
//
// Unlike the dynamic gap check in internal/instrument's tests, which
// observes one interpreted run and can miss unexercised paths, this is
// a whole-CFG longest-path analysis: a PASS covers every path, and a
// refutation comes with the offending path pretty-printed via
// ir.FormatPath.
//
// The analysis is a forward dataflow over the CFG: gapIn[b] is the
// maximum weighted instruction count since the last probe (or entry) at
// b's entry. Probes reset the running gap, so along every cycle the gap
// is reset at least once (the structural check guarantees a probe on
// every cycle), which makes the fixpoint converge. Bounded probe-free
// self-loops contribute TripBound×weight once instead of iterating.
package verify
