package verify_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/verify"
)

// probedLoop builds a counted loop with a probe on the latch, the shape
// TQPass produces.
func probedLoop(probeLatch bool) *ir.Func {
	b := ir.NewFunc("loop", 8, 64)
	header := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)
	b.Const(2, 100)
	b.Jump(header)
	b.SetBlock(header)
	b.CmpLT(3, 1, 2)
	b.BranchNZ(3, body, exit)
	b.SetBlock(body)
	b.Add(4, 4, 1)
	b.Const(5, 1)
	b.Add(1, 1, 5)
	b.Jump(header)
	b.SetBlock(exit)
	b.Ret()
	f := b.Build()
	if probeLatch {
		f.Blocks[body].Code = append(f.Blocks[body].Code,
			ir.Instr{Op: ir.OpProbe, Probe: &ir.Probe{Kind: ir.ProbeTQGated, Every: 4}})
	}
	return f
}

func TestCheckProvesProbedLoop(t *testing.T) {
	f := probedLoop(true)
	res := verify.Check(f, 100)
	if !res.Proved() {
		t.Fatalf("probed loop refuted: %s", res)
	}
	// Worst gap: entry(2) + header(1) + body-before-probe(3) = 6, or the
	// loop-carried header(1)+body(3)=4, or header(1)+exit(0) at ret.
	if res.WorstGap != 6 {
		t.Fatalf("WorstGap = %d, want 6:\n%s", res.WorstGap, res)
	}
	if len(res.Path) == 0 {
		t.Fatal("proved result carries no witness path")
	}
}

func TestCheckRefutesUnprobedLoop(t *testing.T) {
	f := probedLoop(false)
	res := verify.Check(f, 100)
	if res.Proved() {
		t.Fatalf("unprobed loop proved: %s", res)
	}
	if res.Status != verify.StatusNoProbeOnCycle {
		t.Fatalf("status = %v, want NoProbeOnCycle", res.Status)
	}
	out := res.String()
	if !strings.Contains(out, "REFUTED") || !strings.Contains(out, "cycle") {
		t.Fatalf("refutation text uninformative:\n%s", out)
	}
	if len(res.Path) == 0 {
		t.Fatal("refutation carries no counterexample path")
	}
}

func TestCheckRefutesOverlongStraightLine(t *testing.T) {
	b := ir.NewFunc("straight", 4, 16)
	for i := 0; i < 30; i++ {
		b.Add(1, 1, 2)
	}
	b.Ret()
	f := b.Build()
	// One probe after the first 10 instructions: the probe→exit tail is
	// 20 weighted instructions.
	probe := ir.Instr{Op: ir.OpProbe, Probe: &ir.Probe{Kind: ir.ProbeTQ}}
	code := f.Blocks[0].Code
	f.Blocks[0].Code = append(append(append([]ir.Instr{}, code[:10]...), probe), code[10:]...)

	res := verify.Check(f, 15)
	if res.Proved() || res.Status != verify.StatusGapExceeded {
		t.Fatalf("want GapExceeded, got: %s", res)
	}
	if res.WorstGap != 20 {
		t.Fatalf("WorstGap = %d, want 20", res.WorstGap)
	}
	// The same function verifies against a laxer bound.
	if res := verify.Check(f, 20); !res.Proved() {
		t.Fatalf("bound 20 should prove: %s", res)
	}
}

func TestCheckBranchTakesLongestArm(t *testing.T) {
	// A diamond whose long arm weighs 12 and short arm 2: the verifier
	// must bound by the longest path, which a dynamic run down the short
	// arm would miss.
	b := ir.NewFunc("diamond", 8, 16)
	long := b.NewBlock()
	short := b.NewBlock()
	join := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 1)
	b.BranchNZ(1, long, short)
	b.SetBlock(long)
	for i := 0; i < 12; i++ {
		b.Add(2, 2, 1)
	}
	b.Jump(join)
	b.SetBlock(short)
	b.Add(2, 2, 1)
	b.Add(2, 2, 1)
	b.Jump(join)
	b.SetBlock(join)
	b.Ret()
	f := b.Build()
	res := verify.Check(f, 0)
	if res.WorstGap != 13 { // entry const + long arm
		t.Fatalf("WorstGap = %d, want 13 (longest arm):\n%s", res.WorstGap, res)
	}
}

func TestCheckCallWeighting(t *testing.T) {
	b := ir.NewFunc("cally", 4, 16)
	b.Call(2) // one call weighing 2*CallWeight
	b.Ret()
	f := b.Build()
	res := verify.Check(f, 0)
	if want := int64(2 * ir.CallWeight); res.WorstGap != want {
		t.Fatalf("WorstGap = %d, want %d", res.WorstGap, want)
	}
}

func TestCheckTripBoundedSelfLoop(t *testing.T) {
	// A probe-free self-loop is refuted without a TripBound and proved
	// with one, contributing TripBound x weight to the gap.
	build := func(tb int64) *ir.Func {
		b := ir.NewFunc("selfloop", 8, 16)
		loop := b.NewBlock()
		exit := b.NewBlock()
		b.SetBlock(0)
		b.Const(1, 0)
		b.Const(2, 5)
		b.Const(3, 1)
		b.Jump(loop)
		b.SetBlock(loop)
		b.Add(1, 1, 3)
		b.CmpLT(4, 1, 2)
		b.BranchNZ(4, loop, exit)
		b.SetBlock(exit)
		b.Ret()
		f := b.Build()
		f.Blocks[loop].TripBound = tb
		return f
	}
	if res := verify.Check(build(0), 0); res.Status != verify.StatusNoProbeOnCycle {
		t.Fatalf("unbounded self-loop not refuted: %s", res)
	}
	res := verify.Check(build(9), 0)
	if !res.Proved() {
		t.Fatalf("trip-bounded self-loop refuted: %s", res)
	}
	// entry 3 + 9 iterations x 2 weighted instructions... the loop block
	// weighs 2 (add, cmplt).
	if want := int64(3 + 9*2); res.WorstGap != want {
		t.Fatalf("WorstGap = %d, want %d:\n%s", res.WorstGap, want, res)
	}
	// The witness path must show the iteration multiplier.
	if !strings.Contains(res.F.FormatPath(res.Path), "x9") {
		t.Fatalf("witness path does not show bounded iterations:\n%s", res)
	}
}

func TestCheckEntryToFirstProbeCounts(t *testing.T) {
	// The entry→first-probe stretch is part of the invariant.
	b := ir.NewFunc("lead-in", 4, 16)
	for i := 0; i < 50; i++ {
		b.Add(1, 1, 2)
	}
	b.Ret()
	f := b.Build()
	f.Blocks[0].Code = append(f.Blocks[0].Code,
		ir.Instr{Op: ir.OpProbe, Probe: &ir.Probe{Kind: ir.ProbeTQ}})
	res := verify.Check(f, 40)
	if res.Proved() {
		t.Fatalf("50-instruction lead-in proved against bound 40: %s", res)
	}
}

func TestCheckUnreachableCycleIgnored(t *testing.T) {
	// An unreachable probe-free loop must not refute: execution can
	// never enter it.
	b := ir.NewFunc("dead-loop", 4, 16)
	dead := b.NewBlock()
	b.SetBlock(0)
	b.Add(1, 1, 2)
	b.Ret()
	b.SetBlock(dead)
	b.Add(1, 1, 2)
	b.Jump(dead)
	f := b.Build()
	if res := verify.Check(f, 10); !res.Proved() {
		t.Fatalf("unreachable cycle refuted the function: %s", res)
	}
}
