package verify

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Status classifies a verification outcome.
type Status int

// Verification outcomes.
const (
	// StatusProved: the invariant holds on every path.
	StatusProved Status = iota
	// StatusNoProbeOnCycle: some cycle executes no probe, so the gap is
	// unbounded.
	StatusNoProbeOnCycle
	// StatusGapExceeded: all cycles are probed but some inter-probe path
	// exceeds the bound.
	StatusGapExceeded
)

// String renders the verdict as it appears in reports: "PROVED", or a
// "REFUTED (...)" line naming the failure mode.
func (s Status) String() string {
	switch s {
	case StatusProved:
		return "PROVED"
	case StatusNoProbeOnCycle:
		return "REFUTED (cycle without probe)"
	case StatusGapExceeded:
		return "REFUTED (gap exceeds bound)"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Result is one verification verdict.
type Result struct {
	F      *ir.Func
	Status Status
	// Bound is the gap bound checked; 0 means only the structural
	// every-cycle-has-a-probe property was required.
	Bound int64
	// WorstGap is the maximum weighted instruction count between
	// consecutive probe points over all paths (entry and exit count as
	// probe points). Meaningful whenever Status != StatusNoProbeOnCycle.
	WorstGap int64
	// Path is the witness: the worst-gap path for proved/gap-exceeded
	// results, or one lap of the probe-free cycle for refutations.
	Path []ir.PathStep
	// Reason is a one-line human explanation.
	Reason string
}

// Proved reports whether the invariant was established.
func (r Result) Proved() bool { return r.Status == StatusProved }

// String renders the verdict with its witness path.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify %s: %s — %s\n", r.F.Name, r.Status, r.Reason)
	if len(r.Path) > 0 {
		if r.Status == StatusNoProbeOnCycle {
			b.WriteString("counterexample cycle (repeats without probing):\n")
		} else {
			b.WriteString("worst probe-gap path (weighted instructions):\n")
		}
		b.WriteString(r.F.FormatPath(r.Path))
	}
	return b.String()
}

// Check verifies the bounded-probe-gap invariant for f against bound.
// bound <= 0 requires only the structural property (every cycle probes)
// and reports the worst static gap without judging it. f must Validate.
func Check(f *ir.Func, bound int64) Result {
	if err := f.Validate(); err != nil {
		panic("verify: invalid function: " + err.Error())
	}
	cfg := ir.BuildCFG(f)
	n := len(f.Blocks)

	// Per-block facts. A block is "exempt" when its probe-free self-loop
	// carries a pass-proven trip bound: its self edge is excluded from
	// the cycle check and its contribution is TripBound×weight.
	total := make([]int64, n)
	hasProbe := make([]bool, n)
	exempt := make([]bool, n)
	for i, b := range f.Blocks {
		total[i] = b.Weight()
		hasProbe[i] = b.HasProbe()
		if b.TripBound > 0 && !hasProbe[i] && hasSelfEdge(b) {
			exempt[i] = true
		}
	}

	if cyc := probeFreeCycle(f, cfg, hasProbe, exempt); cyc != nil {
		steps := make([]ir.PathStep, 0, len(cyc))
		var names []string
		for i, b := range cyc {
			note := ""
			if i == 0 {
				note = "cycle head"
			}
			steps = append(steps, ir.PathStep{Block: b, Iters: 1, Weight: total[b], Note: note})
			names = append(names, fmt.Sprintf("b%d", b))
		}
		names = append(names, fmt.Sprintf("b%d", cyc[0]))
		return Result{
			F:      f,
			Status: StatusNoProbeOnCycle,
			Bound:  bound,
			Path:   steps,
			Reason: "cycle " + strings.Join(names, " -> ") + " executes no probe; the probe gap is unbounded",
		}
	}

	// Gap dataflow: gapIn[b] = max weighted instructions since the last
	// probe (or entry) at b's entry. Every non-exempt cycle contains a
	// probe, which resets the running gap, so the fixpoint converges in
	// at most n+2 reverse-postorder sweeps.
	gapIn := make([]int64, n)
	argPred := make([]int, n)
	for i := range argPred {
		argPred[i] = -1
	}
	walkOut := func(b int, in int64) int64 {
		if exempt[b] {
			return in + f.Blocks[b].TripBound*total[b]
		}
		gap := in
		code := f.Blocks[b].Code
		for i := range code {
			if code[i].Op == ir.OpProbe {
				gap = 0
			} else {
				gap += code[i].Weight()
			}
		}
		return gap
	}
	for iter := 0; ; iter++ {
		changed := false
		for _, b := range cfg.RPO {
			out := walkOut(b, gapIn[b])
			for _, s := range f.Blocks[b].Succs() {
				if exempt[b] && s == b {
					continue
				}
				if out > gapIn[s] {
					gapIn[s] = out
					argPred[s] = b
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter > n+2 {
			panic("verify: gap dataflow failed to converge on " + f.Name)
		}
	}

	// Candidate gaps materialize wherever the running gap is consumed:
	// at each probe (gap since the previous probe point) and at each
	// return (probe→exit gap).
	type candidate struct {
		gap   int64
		block int
		// probeIdx is the instruction index of the probe, or -1 for a
		// function exit.
		probeIdx int
	}
	worst := candidate{gap: -1}
	for _, b := range cfg.RPO {
		blk := f.Blocks[b]
		gap := gapIn[b]
		if exempt[b] {
			gap += blk.TripBound * total[b]
		} else {
			for i := range blk.Code {
				in := &blk.Code[i]
				if in.Op == ir.OpProbe {
					if gap > worst.gap {
						worst = candidate{gap, b, i}
					}
					gap = 0
					continue
				}
				gap += in.Weight()
			}
		}
		if blk.Term.Kind == ir.Ret && gap > worst.gap {
			worst = candidate{gap, b, -1}
		}
	}
	if worst.gap < 0 {
		worst = candidate{gap: 0, block: 0, probeIdx: -1}
	}

	res := Result{
		F:        f,
		Status:   StatusProved,
		Bound:    bound,
		WorstGap: worst.gap,
		Path:     worstPath(f, gapIn, argPred, hasProbe, exempt, total, worst.block, worst.probeIdx),
	}
	if bound > 0 && worst.gap > bound {
		res.Status = StatusGapExceeded
		res.Reason = fmt.Sprintf("worst static probe gap is %d weighted instructions, exceeding the bound %d", worst.gap, bound)
	} else if bound > 0 {
		res.Reason = fmt.Sprintf("worst static probe gap %d <= bound %d on every path", worst.gap, bound)
	} else {
		res.Reason = fmt.Sprintf("every cycle probes; worst static probe gap %d", worst.gap)
	}
	return res
}

func hasSelfEdge(b *ir.Block) bool {
	for _, s := range b.Succs() {
		if s == b.ID {
			return true
		}
	}
	return false
}

// probeFreeCycle finds a cycle through reachable probe-free blocks
// (skipping trip-bounded self edges) and returns one lap of it, or nil.
func probeFreeCycle(f *ir.Func, cfg *ir.CFG, hasProbe, exempt []bool) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(f.Blocks))
	inGraph := func(b int) bool { return cfg.Reachable(b) && !hasProbe[b] }
	var path []int // gray stack
	type frame struct{ b, next int }
	for _, start := range cfg.RPO {
		if !inGraph(start) || color[start] != white {
			continue
		}
		stack := []frame{{start, 0}}
		color[start] = gray
		path = append(path[:0], start)
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			succs := f.Blocks[fr.b].Succs()
			if fr.next < len(succs) {
				s := succs[fr.next]
				fr.next++
				if !inGraph(s) || (exempt[fr.b] && s == fr.b) {
					continue
				}
				switch color[s] {
				case gray:
					// Found a cycle: the gray stack from s onward.
					for i, b := range path {
						if b == s {
							return append([]int(nil), path[i:]...)
						}
					}
					return []int{s} // self edge
				case white:
					color[s] = gray
					path = append(path, s)
					stack = append(stack, frame{s, 0})
				}
				continue
			}
			color[fr.b] = black
			path = path[:len(path)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// worstPath reconstructs the maximal-gap path ending at the worst
// candidate (a probe in block `end`, or `end`'s exit when probeIdx<0),
// walking the dataflow's argmax predecessors back to the previous probe
// point or the function entry.
func worstPath(f *ir.Func, gapIn []int64, argPred []int, hasProbe, exempt []bool, total []int64, end, probeIdx int) []ir.PathStep {
	chain := []int{end}
	cur := end
	for gapIn[cur] > 0 {
		p := argPred[cur]
		if p < 0 || len(chain) > len(f.Blocks)+2 {
			break
		}
		chain = append([]int{p}, chain...)
		if hasProbe[p] {
			break // the gap restarted at p's last probe
		}
		cur = p
	}

	steps := make([]ir.PathStep, 0, len(chain))
	for i, b := range chain {
		blk := f.Blocks[b]
		step := ir.PathStep{Block: b, Iters: 1}
		last := i == len(chain)-1
		switch {
		case last && probeIdx >= 0:
			// Weight of the prefix up to the consuming probe.
			var w int64
			for j := 0; j < probeIdx; j++ {
				w += blk.Code[j].Weight()
			}
			step.Weight = w
			step.Note = "probe reached"
			if exempt[b] {
				// Unreachable in practice (exempt blocks are probe-free)
				// but keep the arithmetic coherent.
				step.Iters = blk.TripBound
				step.Weight = blk.TripBound * total[b]
			}
		case last:
			if exempt[b] {
				step.Iters = blk.TripBound
				step.Weight = blk.TripBound * total[b]
				step.Note = "bounded self-loop, then exit"
			} else {
				step.Weight = total[b]
				step.Note = "exit"
			}
		case i == 0 && hasProbe[b]:
			// The gap starts after this block's last probe.
			var w int64
			for j := len(blk.Code) - 1; j >= 0; j-- {
				if blk.Code[j].Op == ir.OpProbe {
					break
				}
				w += blk.Code[j].Weight()
			}
			step.Weight = w
			step.Note = "after probe"
		case exempt[b]:
			step.Iters = blk.TripBound
			step.Weight = blk.TripBound * total[b]
			step.Note = "bounded self-loop"
		default:
			step.Weight = total[b]
			if i == 0 && b == 0 {
				step.Note = "entry"
			}
		}
		steps = append(steps, step)
	}
	return steps
}
