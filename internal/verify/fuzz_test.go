package verify_test

// Property test tying the static verifier to the dynamic interpreter:
// over hundreds of randomly shaped IR programs and every
// instrumentation pass, the statically proven worst probe gap must
// dominate any dynamically observed gap, and a PASS verdict must never
// coexist with a dynamic bound violation. The generator emits
// structurally diverse but terminating-by-construction programs:
// straight-line runs, diamonds, counted loops (nested), rotated
// self-loops with zero and nonzero (including negative) induction
// starts, and occasional external calls for weight diversity.

import (
	"strconv"
	"testing"

	"repro/internal/instrument"
	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/verify"
)

// genScratch is the register range random ALU ops draw from; loop
// control registers are allocated below it so random ops can never
// clobber an induction variable, limit, or step.
const (
	genCtrlBase = 2  // loop control registers: 2..39
	genScratch  = 40 // scratch registers: 40..63
	genRegs     = 64
)

// progGen builds one random function.
type progGen struct {
	r    *rng.Rand
	b    *ir.Builder
	ctrl int // next control register
}

func (g *progGen) scratch() int { return genScratch + int(g.r.Uint64n(genRegs-genScratch)) }

// aluRun emits 1..n random ALU/memory ops on scratch registers.
func (g *progGen) aluRun(n int) {
	k := 1 + int(g.r.Uint64n(uint64(n)))
	for i := 0; i < k; i++ {
		d, a, b := g.scratch(), g.scratch(), g.scratch()
		switch g.r.Uint64n(8) {
		case 0:
			g.b.Const(d, int64(g.r.Uint64n(1000)))
		case 1:
			g.b.Add(d, a, b)
		case 2:
			g.b.Sub(d, a, b)
		case 3:
			g.b.Mul(d, a, b)
		case 4:
			g.b.And(d, a, b)
		case 5:
			g.b.Xor(d, a, b)
		case 6:
			g.b.Load(d, a, ir.Warm)
		case 7:
			g.b.Store(a, b)
		}
	}
	if g.r.Uint64n(6) == 0 {
		g.b.Call(1 + int64(g.r.Uint64n(3)))
	}
}

// diamond emits a branch over two short arms that rejoin.
func (g *progGen) diamond() {
	long := g.b.NewBlock()
	short := g.b.NewBlock()
	join := g.b.NewBlock()
	cond := g.scratch()
	g.b.And(cond, g.scratch(), g.scratch())
	g.b.BranchNZ(cond, long, short)
	g.b.SetBlock(long)
	g.aluRun(8)
	g.b.Jump(join)
	g.b.SetBlock(short)
	g.aluRun(3)
	g.b.Jump(join)
	g.b.SetBlock(join)
}

// selfLoop emits a rotated do-while self-loop: trips iterations from a
// random (possibly negative) induction start, body of random width.
// The step constant is defined in the entry block (dominating every
// loop), so the clone optimization's preconditions can hold.
func (g *progGen) selfLoop(stepReg int) {
	rI := g.ctrl
	rLim := g.ctrl + 1
	rC := g.ctrl + 2
	g.ctrl += 3
	trips := 1 + int64(g.r.Uint64n(60))
	start := int64(0)
	switch g.r.Uint64n(3) {
	case 1:
		start = int64(g.r.Uint64n(500)) // nonzero positive start
	case 2:
		start = -int64(g.r.Uint64n(500)) // negative start
	}
	loop := g.b.NewBlock()
	next := g.b.NewBlock()
	g.b.Const(rI, start)
	g.b.Const(rLim, start+trips)
	g.b.Jump(loop)
	g.b.SetBlock(loop)
	g.aluRun(5)
	g.b.Add(rI, rI, stepReg)
	g.b.CmpLT(rC, rI, rLim)
	g.b.BranchNZ(rC, loop, next)
	g.b.SetBlock(next)
}

// countedLoop emits a canonical header/body/exit loop, optionally with
// a nested inner loop or self-loop in the body.
func (g *progGen) countedLoop(stepReg int, depth int) {
	rI := g.ctrl
	rLim := g.ctrl + 1
	rC := g.ctrl + 2
	g.ctrl += 3
	trips := 1 + int64(g.r.Uint64n(40))
	g.b.CountedLoop(rI, rLim, rC, trips, func() {
		g.aluRun(4)
		if depth > 0 {
			switch g.r.Uint64n(3) {
			case 0:
				g.countedLoop(stepReg, depth-1)
			case 1:
				g.selfLoop(stepReg)
			}
		}
	})
}

// randomFunc generates one terminating random program.
func randomFunc(r *rng.Rand, idx int) *ir.Func {
	g := &progGen{r: r, ctrl: genCtrlBase}
	g.b = ir.NewFunc("fuzz", genRegs, 128)
	stepReg := g.ctrl
	g.ctrl++
	g.b.Const(stepReg, 1)
	g.aluRun(4)
	segments := 1 + int(r.Uint64n(5))
	for s := 0; s < segments; s++ {
		switch r.Uint64n(5) {
		case 0:
			g.aluRun(12)
		case 1:
			g.diamond()
		case 2:
			g.selfLoop(stepReg)
		case 3:
			g.countedLoop(stepReg, 1)
		default:
			g.countedLoop(stepReg, 0)
		}
	}
	g.aluRun(3)
	g.b.Ret()
	f := g.b.Build()
	f.Name = "fuzz-" + strconv.Itoa(idx)
	return f
}

// dynGapHook measures the largest raw-instruction gap between
// consecutive probe executions, including the entry→first-probe
// stretch; the caller adds the final probe→exit stretch.
type dynGapHook struct {
	last int64
	max  int64
}

func (h *dynGapHook) OnProbe(_ *ir.Probe, _, instrs int64) int64 {
	if g := instrs - h.last; g > h.max {
		h.max = g
	}
	h.last = instrs
	return 0
}

const fuzzSteps = 50_000_000

// checkStaticDominatesDynamic runs one instrumented program and asserts
// the verifier's relationship to the observed execution. The dynamic
// gap is in raw instructions, which never exceeds the weighted count
// (every non-probe instruction weighs at least 1), so static >= dynamic
// must hold whenever the verifier is sound.
func checkStaticDominatesDynamic(t *testing.T, g *ir.Func, gapBound int64, seed uint64) {
	t.Helper()
	res := verify.Check(g, gapBound)
	if !res.Proved() {
		t.Fatalf("%s: pass output refuted: %s", g.Name, res)
	}
	hook := &dynGapHook{}
	run, err := ir.Exec(g, ir.DefaultCosts(), rng.New(seed), hook, fuzzSteps)
	if err != nil {
		t.Fatalf("%s: %v", g.Name, err)
	}
	dyn := hook.max
	if tail := run.Instrs - hook.last; tail > dyn {
		dyn = tail
	}
	if dyn > res.WorstGap {
		t.Fatalf("%s: dynamic probe gap %d exceeds static worst gap %d — verifier unsound:\n%s\n%s",
			g.Name, dyn, res.WorstGap, res, g.Disassemble())
	}
	if gapBound > 0 && dyn > gapBound {
		t.Fatalf("%s: PASS at bound %d coexists with dynamic gap %d", g.Name, gapBound, dyn)
	}
}

func TestFuzzStaticGapDominatesDynamic(t *testing.T) {
	const programs = 220
	r := rng.New(0xf00d)
	cloned := 0 // programs where the trip-bounded clone path is live
	for i := 0; i < programs; i++ {
		f := randomFunc(r, i)
		seed := r.Uint64()

		bound := int64(20 + r.Uint64n(180))
		tq := instrument.TQPass(f, bound)
		for _, b := range tq.Blocks {
			if b.TripBound > 0 {
				cloned++
				break
			}
		}
		checkStaticDominatesDynamic(t, tq, instrument.TQGapGuarantee(f, bound), seed)

		ci := instrument.CIPass(f)
		checkStaticDominatesDynamic(t, ci, 0, seed)

		cic := instrument.CICyclesPass(f)
		checkStaticDominatesDynamic(t, cic, 0, seed)

		// Broken-placement property: stripping every probe must refute
		// any program with a reachable loop — the verifier cannot be
		// fooled by an empty placement.
		stripped := tq.Clone()
		for _, b := range stripped.Blocks {
			b.TripBound = 0
			code := b.Code[:0]
			for _, in := range b.Code {
				if in.Op != ir.OpProbe {
					code = append(code, in)
				}
			}
			b.Code = code
		}
		cfg := ir.BuildCFG(stripped)
		hasLoop := false
		for _, l := range cfg.Loops {
			if cfg.Reachable(l.Header) {
				hasLoop = true
				break
			}
		}
		sres := verify.Check(stripped, 0)
		if hasLoop && sres.Status != verify.StatusNoProbeOnCycle {
			t.Fatalf("%s: probe-free loops not refuted: %s", f.Name, sres)
		}
		if !hasLoop && !sres.Proved() {
			t.Fatalf("%s: loop-free probe-free program refuted structurally: %s", f.Name, sres)
		}
	}
	// The property is only meaningful if the trickiest pass feature —
	// the trip-bounded uninstrumented clone — actually gets exercised.
	if cloned < 10 {
		t.Fatalf("self-loop cloning fired in only %d/%d programs; generator too tame", cloned, programs)
	}
}
