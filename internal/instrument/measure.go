package instrument

import (
	"math"

	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/verify"
)

// yieldRecorder accumulates realized yield intervals so the harness can
// compute the timing error against the target quantum.
type yieldRecorder struct {
	quantum    int64 // cycles
	lastYield  int64 // cycle stamp of the previous yield
	intervals  []int64
	yieldCost  int64
	totalYield int64
}

// yield records a yield at cycle now and returns the cycles the switch
// itself consumes.
func (y *yieldRecorder) yield(now int64) int64 {
	y.intervals = append(y.intervals, now-y.lastYield)
	y.lastYield = now + y.yieldCost
	y.totalYield++
	return y.yieldCost
}

// maeNs is the mean absolute error of the yield intervals against the
// quantum, in nanoseconds.
func (y *yieldRecorder) maeNs(m ir.CostModel) float64 {
	if len(y.intervals) == 0 {
		return 0
	}
	var sum float64
	for _, iv := range y.intervals {
		sum += math.Abs(float64(iv - y.quantum))
	}
	return m.CyclesToNs(int64(sum / float64(len(y.intervals))))
}

// tqHook implements the runtime semantics of TQ probes: read the
// physical clock (full probes, or gated ones when their counter
// triggers) and yield if the quantum elapsed.
type tqHook struct {
	model ir.CostModel
	rec   yieldRecorder
	// gate counts executions per gated probe ID.
	gate map[int]int64
}

func newTQHook(model ir.CostModel, quantumCycles int64) *tqHook {
	return &tqHook{
		model: model,
		rec:   yieldRecorder{quantum: quantumCycles, yieldCost: model.Yield},
		gate:  map[int]int64{},
	}
}

// OnProbe implements ir.ProbeHook.
func (h *tqHook) OnProbe(p *ir.Probe, now, _ int64) int64 {
	var cost int64
	switch p.Kind {
	case ir.ProbeTQ:
		cost = h.model.Rdtsc
	case ir.ProbeTQGated:
		// Maintain an iteration counter: inc + compare.
		cost = h.model.ProbeGated
		h.gate[p.ID]++
		if h.gate[p.ID]%maxInt64(p.Every, 1) != 0 {
			return cost
		}
		cost += h.model.Rdtsc
	case ir.ProbeTQInduction:
		// Reuse the loop's induction variable: only a masked compare.
		cost = h.model.ProbeInduction
		h.gate[p.ID]++
		if h.gate[p.ID]%maxInt64(p.Every, 1) != 0 {
			return cost
		}
		cost += h.model.Rdtsc
	default:
		panic("instrument: IC probe reached TQ hook")
	}
	if now-h.rec.lastYield >= h.rec.quantum {
		cost += h.rec.yield(now)
	}
	return cost
}

// icHook implements the instruction-counter baseline: every probe
// increments the counter; when it crosses the translated threshold the
// task yields (CI) or first consults the physical clock (CI-Cycles).
type icHook struct {
	model   ir.CostModel
	rec     yieldRecorder
	counter int64
	// targetInstrs is the quantum translated into instruction counts
	// through the profiled cycles-per-instruction ratio — the lossy
	// translation that makes CI inaccurate (§3.1).
	targetInstrs int64
	cycles       bool // CI-Cycles behaviour
}

// ProfiledCPI is the cycles-per-instruction ratio the CI baseline uses
// to translate the cycle quantum into an instruction-count threshold.
// Real programs deviate from it in both directions — compute-dense code
// runs below it (CI yields early), pointer-chasing code far above it
// (CI yields late) — which is exactly the source of CI's timing error;
// the CI-Cycles hybrid can repair the early side but not the late one.
const ProfiledCPI = 2.6

func newICHook(model ir.CostModel, quantumCycles int64, cycles bool) *icHook {
	return &icHook{
		model:        model,
		rec:          yieldRecorder{quantum: quantumCycles, yieldCost: model.Yield},
		targetInstrs: int64(float64(quantumCycles) / ProfiledCPI),
		cycles:       cycles,
	}
}

// OnProbe implements ir.ProbeHook.
func (h *icHook) OnProbe(p *ir.Probe, now, _ int64) int64 {
	cost := h.model.ProbeALU // counter add + compare + branch
	h.counter += p.Inc
	if h.counter < h.targetInstrs {
		return cost
	}
	if h.cycles {
		cost += h.model.Rdtsc
		if now-h.rec.lastYield < h.rec.quantum {
			// The clock disagrees: retry soon by keeping the counter
			// near the threshold.
			h.counter = h.targetInstrs * 7 / 8
			return cost
		}
	}
	h.counter = 0
	cost += h.rec.yield(now)
	return cost
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Technique names.
const (
	TechTQ       = "TQ"
	TechCI       = "CI"
	TechCICycles = "CI-Cycles"
)

// Measurement is one row cell of Table 3 for one (program, technique)
// pair.
type Measurement struct {
	Program   string
	Technique string
	// OverheadPct is the probing overhead: instrumented cycles over
	// uninstrumented cycles, minus one, in percent.
	OverheadPct float64
	// MAEns is the mean absolute yield-timing error in nanoseconds.
	MAEns float64
	// StaticProbes is the number of probe instructions inserted.
	StaticProbes int
	// DynamicProbes is the number of probe executions.
	DynamicProbes int64
	// Yields is the number of yields taken.
	Yields int64
	// BaseCycles and InstrCycles are the raw run times.
	BaseCycles, InstrCycles int64
	// StaticGap is the verifier's worst-case weighted instruction count
	// between probe points over all paths (internal/verify), and
	// Verified records that the instrumented function proved the
	// bounded-probe-gap invariant. GapGuarantee is the weighted gap
	// bound the TQ pass promises (TQGapGuarantee); zero for the CI
	// techniques, whose guarantee is structural only.
	StaticGap    int64
	Verified     bool
	GapGuarantee int64
}

// maxSteps bounds benchmark executions; suite programs run far below
// this.
const maxSteps = 200_000_000

// MeasureTQ runs f uninstrumented and TQ-instrumented with the given
// path bound and quantum, returning the comparison.
func MeasureTQ(f *ir.Func, bound int64, quantumNs float64, model ir.CostModel, seed uint64) Measurement {
	g := TQPass(f, bound)
	hook := newTQHook(model, model.NsToCycles(quantumNs))
	m := measure(f, g, TechTQ, hook, &hook.rec, model, seed)
	m.GapGuarantee = TQGapGuarantee(f, bound)
	return m
}

// MeasureCI runs f uninstrumented and CI-instrumented.
func MeasureCI(f *ir.Func, quantumNs float64, model ir.CostModel, seed uint64) Measurement {
	g := CIPass(f)
	hook := newICHook(model, model.NsToCycles(quantumNs), false)
	return measure(f, g, TechCI, hook, &hook.rec, model, seed)
}

// MeasureCICycles runs f uninstrumented and CI-Cycles-instrumented.
func MeasureCICycles(f *ir.Func, quantumNs float64, model ir.CostModel, seed uint64) Measurement {
	g := CICyclesPass(f)
	hook := newICHook(model, model.NsToCycles(quantumNs), true)
	return measure(f, g, TechCICycles, hook, &hook.rec, model, seed)
}

func measure(base, instr *ir.Func, tech string, hook ir.ProbeHook, rec *yieldRecorder, model ir.CostModel, seed uint64) Measurement {
	baseRes, err := ir.Exec(base, model, rng.New(seed), nil, maxSteps)
	if err != nil {
		panic("instrument: base run failed: " + err.Error())
	}
	instRes, err := ir.Exec(instr, model, rng.New(seed), hook, maxSteps)
	if err != nil {
		panic("instrument: instrumented run failed: " + err.Error())
	}
	ver := verify.Check(instr, 0)
	m := Measurement{
		Program:       base.Name,
		Technique:     tech,
		StaticProbes:  instr.NumProbes(),
		DynamicProbes: instRes.Probes,
		Yields:        rec.totalYield,
		BaseCycles:    baseRes.Cycles,
		InstrCycles:   instRes.Cycles,
		MAEns:         rec.maeNs(model),
		StaticGap:     ver.WorstGap,
		Verified:      ver.Proved(),
	}
	// Overhead excludes yield costs: the paper's probing overhead is
	// the instrumentation tax, and yields are common to all
	// techniques... except the techniques yield different numbers of
	// times; subtracting each run's own yield time isolates probing.
	instrOnly := instRes.Cycles - rec.totalYield*rec.yieldCost
	m.OverheadPct = 100 * (float64(instrOnly)/float64(baseRes.Cycles) - 1)
	return m
}
