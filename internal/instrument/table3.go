package instrument

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// DefaultBound is the TQ pass's maximum uninstrumented path length in
// instruction weights. With ≈2-cycle average instructions at 2.1GHz,
// 100 instructions keep probe spacing well under a 1µs quantum while
// still placing ≈25-60x fewer probes than per-block instrumentation —
// the regime §3.1 reports (40 probes vs >1000 for a 2µs RocksDB GET).
const DefaultBound = 100

// DefaultQuantumNs is Table 3's target quantum (2µs).
const DefaultQuantumNs = 2000

// Table3Row compares the three techniques on one program.
type Table3Row struct {
	Program string
	// ByTech maps TechTQ/TechCI/TechCICycles to their measurements.
	ByTech map[string]Measurement
}

// Table3 runs the full comparison at the given suite scale, mirroring
// §5.6: every suite program, instrumented with CI, CI-Cycles and TQ,
// measured for probing overhead and yield-timing MAE at a 2µs quantum.
func Table3(scale float64, seed uint64) []Table3Row {
	model := ir.DefaultCosts()
	var rows []Table3Row
	for _, f := range Suite(scale) {
		row := Table3Row{Program: f.Name, ByTech: map[string]Measurement{}}
		row.ByTech[TechCI] = MeasureCI(f, DefaultQuantumNs, model, seed)
		row.ByTech[TechCICycles] = MeasureCICycles(f, DefaultQuantumNs, model, seed)
		row.ByTech[TechTQ] = MeasureTQ(f, DefaultBound, DefaultQuantumNs, model, seed)
		rows = append(rows, row)
	}
	return rows
}

// Means aggregates the per-technique averages over rows (the "mean"
// line of Table 3).
func Means(rows []Table3Row) map[string]Measurement {
	out := map[string]Measurement{}
	if len(rows) == 0 {
		return out
	}
	for _, tech := range []string{TechCI, TechCICycles, TechTQ} {
		var agg Measurement
		agg.Technique = tech
		agg.Program = "mean"
		for _, r := range rows {
			m := r.ByTech[tech]
			agg.OverheadPct += m.OverheadPct
			agg.MAEns += m.MAEns
			agg.StaticProbes += m.StaticProbes
		}
		n := float64(len(rows))
		agg.OverheadPct /= n
		agg.MAEns /= n
		agg.StaticProbes /= len(rows)
		out[tech] = agg
	}
	return out
}

// Format renders rows as an aligned text table in the paper's layout
// (overhead % then MAE ns, CI | CI-CY | TQ).
func Format(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %28s   %30s   %s\n", "", "probing overhead (%)", "MAE of yield timing (ns)", "probes")
	fmt.Fprintf(&b, "%-20s %8s %9s %9s   %9s %9s %9s   %6s %6s %6s\n",
		"workload", "CI", "CI-CY", "TQ", "CI", "CI-CY", "TQ", "CI", "CI-CY", "TQ")
	emit := func(name string, ci, cy, tq Measurement) {
		fmt.Fprintf(&b, "%-20s %8.2f %9.2f %9.2f   %9.0f %9.0f %9.0f   %6d %6d %6d\n",
			name, ci.OverheadPct, cy.OverheadPct, tq.OverheadPct,
			ci.MAEns, cy.MAEns, tq.MAEns,
			ci.StaticProbes, cy.StaticProbes, tq.StaticProbes)
	}
	for _, r := range rows {
		emit(r.Program, r.ByTech[TechCI], r.ByTech[TechCICycles], r.ByTech[TechTQ])
	}
	m := Means(rows)
	emit("mean", m[TechCI], m[TechCICycles], m[TechTQ])
	return b.String()
}

// FormatVerify renders the static verification verdicts beside the
// Table 3 rows: per program, whether the TQ-instrumented function
// proves the bounded-probe-gap invariant against the pass's gap
// guarantee, its worst statically possible probe gap (in weighted
// instructions), and the CI techniques' worst gaps (their guarantee is
// structural — a probe on every cycle — so only the gap is shown).
func FormatVerify(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-10s %8s %11s %8s %10s\n",
		"workload", "TQ verdict", "TQ gap", "guarantee", "CI gap", "CI-CY gap")
	for _, r := range rows {
		tq := r.ByTech[TechTQ]
		ci := r.ByTech[TechCI]
		cy := r.ByTech[TechCICycles]
		verdict := "REFUTED"
		if tq.Verified && tq.StaticGap <= tq.GapGuarantee {
			verdict = "PROVED"
		}
		fmt.Fprintf(&b, "%-20s %-10s %8d %11d %8d %10d\n",
			r.Program, verdict, tq.StaticGap, tq.GapGuarantee, ci.StaticGap, cy.StaticGap)
	}
	return b.String()
}
