// Package instrument implements the compiler instrumentation study of
// Tiny Quanta (§3.1, §5.6): three probe-insertion passes over the IR of
// internal/ir and the measurement harness that compares them the way
// Table 3 does.
//
//   - TQPass: the paper's pass. Sparse physical-clock probes placed so
//     that the longest uninstrumented execution path stays under a
//     bound; loops get iteration-counter-gated probes, with the
//     induction-variable reuse and self-loop cloning optimizations.
//   - CIPass: the instruction-counter baseline (Compiler Interrupt
//     [8]): a counter increment in (almost) every basic block, merged
//     along single-entry chains, with a threshold check.
//   - CICyclesPass: the hybrid — CI placement, but a triggered check
//     reads the physical clock before yielding.
package instrument

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/verify"
)

// CallWeight is the instruction-count surcharge for a call to an
// uninstrumented external function: the compiler cannot see inside it,
// so it budgets a fixed cost (§3.1). The weighting itself lives in
// ir.Instr.Weight so the static verifier shares it.
const CallWeight = ir.CallWeight

// TQGapGuarantee returns the static probe-gap bound that TQPass(f,
// bound) guarantees, in weighted instructions, for the verifier to
// check. Derivation: the acyclic pass keeps the running gap at or below
// max(bound, w) at every point, where w is the largest single
// instruction weight (a call heavier than the bound cannot be split);
// a trip-bounded self-loop clone adds strictly less than bound more
// probe-free work before its dispatch guard forces an exit; and the
// next probe lands within one instruction of the bound being crossed.
func TQGapGuarantee(f *ir.Func, bound int64) int64 {
	maxW := int64(1)
	for _, b := range f.Blocks {
		for i := range b.Code {
			if w := b.Code[i].Weight(); w > maxW {
				maxW = w
			}
		}
	}
	return 2*bound + 2*maxW
}

// mustVerify is the mandatory post-pass check: every pass output must
// prove the bounded-probe-gap invariant (gapBound <= 0 checks only the
// structural every-cycle-probes property). A failure is a pass bug, so
// it panics with the verifier's counterexample path.
func mustVerify(g *ir.Func, gapBound int64, pass string) {
	if res := verify.Check(g, gapBound); !res.Proved() {
		panic("instrument: " + pass + " output violates the probe-gap invariant:\n" + res.String())
	}
}

// TQPass inserts TQ's physical-clock probes into a copy of f so that no
// execution path runs more than bound instruction-weights without
// reaching a probe. Probe IDs are assigned densely from 0.
func TQPass(f *ir.Func, bound int64) *ir.Func {
	if bound < 2 {
		panic("instrument: TQPass bound must be >= 2")
	}
	g := f.Clone()
	if g.NonReentrant {
		// §6: yielding inside a non-reentrant function is unsafe — a
		// concurrent job on the same core could re-enter it mid-state.
		// Such functions stay probe-free.
		return g
	}
	nextID := 0
	newProbe := func(p ir.Probe) ir.Instr {
		p.ID = nextID
		nextID++
		cp := p
		return ir.Instr{Op: ir.OpProbe, Probe: &cp}
	}

	cfg := ir.BuildCFG(g)
	// Instrument loops innermost-first so self-loop cloning sees
	// original single-block bodies.
	loops := append([]*ir.Loop(nil), cfg.Loops...)
	sort.Slice(loops, func(i, j int) bool { return len(loops[i].Blocks) < len(loops[j].Blocks) })
	cloned := false
	for _, l := range loops {
		// Per-iteration uninstrumented work is bounded by the loop's
		// total block weight; gate the clock check so that Every
		// iterations of uninstrumented work stay within the bound
		// (§3.1: target iterations = bound / longest uninstrumented
		// path in the body).
		var bodyW int64
		for b := range l.Blocks {
			bodyW += g.Blocks[b].Weight()
		}
		if bodyW == 0 {
			bodyW = 1
		}
		every := bound / bodyW
		if every < 1 {
			every = 1
		}

		// Cloning only pays off (and only keeps the trip-bound argument
		// under the gap guarantee) when the gate target allows at least
		// one uninstrumented iteration beyond the mandatory one.
		if every >= 2 && len(l.Blocks) == 1 && trySelfLoopClone(g, cfg, l, every, &nextID) {
			cloned = true
			continue
		}
		// Every latch gets a probe: a loop merged from several back edges
		// (multiple latches on one header) would otherwise keep a
		// probe-free cycle through the unprobed latch.
		iv, ivOK := cfg.FindInductionVar(l)
		probed := map[int]bool{}
		for _, latch := range l.Latches {
			if probed[latch] {
				continue
			}
			probed[latch] = true
			blk := g.Blocks[latch]
			var probe ir.Instr
			if ivOK {
				// Reuse the induction variable instead of maintaining a
				// separate iteration counter (§3.1).
				probe = newProbe(ir.Probe{Kind: ir.ProbeTQInduction, Every: every, IndVar: iv.Reg})
			} else {
				probe = newProbe(ir.Probe{Kind: ir.ProbeTQGated, Every: every})
			}
			blk.Code = append(blk.Code, probe)
		}
	}
	if cloned {
		// Cloning rewrote the CFG; recompute for the acyclic pass.
		cfg = ir.BuildCFG(g)
	}

	// Acyclic pass: walk the forward DAG (back edges ignored — loops
	// are already internally bounded) in reverse postorder, tracking
	// the maximum instruction weight since the last probe, and insert
	// a full probe wherever the bound would be exceeded.
	rpoIndex := make(map[int]int, len(cfg.RPO))
	for i, b := range cfg.RPO {
		rpoIndex[b] = i
	}
	gapIn := make([]int64, len(g.Blocks))
	for _, b := range cfg.RPO {
		blk := g.Blocks[b]
		gap := gapIn[b]
		if blk.TripBound > 0 && !blk.HasProbe() {
			// Uninstrumented self-loop clone: inserting a probe inside
			// would defeat the optimization, and the residual gap leaving
			// the block must charge every bounded iteration.
			gap += blk.TripBound * blk.Weight()
		} else {
			for i := 0; i < len(blk.Code); i++ {
				in := &blk.Code[i]
				if in.Op == ir.OpProbe {
					gap = 0
					continue
				}
				gap += in.Weight()
				if gap > bound {
					// Insert a probe before this point.
					probe := newProbe(ir.Probe{Kind: ir.ProbeTQ})
					blk.Code = append(blk.Code, ir.Instr{})
					copy(blk.Code[i+1:], blk.Code[i:])
					blk.Code[i] = probe
					gap = in.Weight()
					i++ // skip over the shifted current instruction
				}
			}
		}
		for _, s := range blk.Succs() {
			si, ok := rpoIndex[s]
			if !ok || si <= rpoIndex[b] {
				continue // back edge or unreachable
			}
			if gap > gapIn[s] {
				gapIn[s] = gap
			}
		}
	}
	if err := g.Validate(); err != nil {
		panic("instrument: TQPass produced invalid IR: " + err.Error())
	}
	mustVerify(g, TQGapGuarantee(f, bound), "TQPass")
	return g
}

// trySelfLoopClone applies TQ's single-block self-loop optimization
// (§3.1): duplicate the loop into an uninstrumented and an instrumented
// version and pick at run time — if the trip count is below the gate
// target the loop cannot exceed the quantum, so the uninstrumented
// clone runs probe-free.
//
// It requires the canonical countable shape: the loop is one block B
// that self-loops on its true edge while CmpLT(i, limit) holds, with i
// an induction variable stepped by a positive constant and limit not
// written inside the loop. Returns false when the shape (or any
// precondition the trip-bound argument rests on) does not match.
//
// Soundness: the dispatch guard compares the REMAINING trip count
// (limit - i) against the gate target, not the total trip count — an
// induction variable that starts above zero would otherwise send a
// long-running loop down the uninstrumented clone. When the guard
// admits the uninstrumented clone, i rises by at least 1 per iteration
// and the loop runs at most `every` more times, which the pass records
// in the block's TripBound for the static verifier.
func trySelfLoopClone(g *ir.Func, cfg *ir.CFG, l *ir.Loop, every int64, nextID *int) bool {
	B := l.Header
	blk := g.Blocks[B]
	// Self edge on the true arm, exit on the false arm.
	if blk.Term.Kind != ir.Branch || blk.Term.Succ1 != B || blk.Term.Succ2 == B {
		return false
	}
	iv, ok := cfg.FindInductionVar(l)
	if !ok {
		return false
	}
	// The branch condition must be defined exactly once in the block, by
	// CmpLT(i, limit): the loop continues only while i < limit.
	limitReg, condDefs := -1, 0
	for i := range blk.Code {
		in := &blk.Code[i]
		if in.Op != ir.OpProbe && writesReg(in, blk.Term.Cond) {
			condDefs++
			if in.Op == ir.OpCmpLT && in.A == iv.Reg {
				limitReg = in.B
			}
		}
	}
	if limitReg < 0 || condDefs != 1 {
		return false
	}
	// i must be written only by its single positive-step Add, and limit
	// not at all, or the remaining-trips bound does not hold.
	stepReg, ivWrites := -1, 0
	for i := range blk.Code {
		in := &blk.Code[i]
		if in.Op == ir.OpProbe {
			continue
		}
		if writesReg(in, limitReg) {
			return false
		}
		if writesReg(in, iv.Reg) {
			ivWrites++
			if in.Op == ir.OpAdd && in.A == iv.Reg {
				stepReg = in.B
			}
		}
	}
	if stepReg < 0 || ivWrites != 1 {
		return false
	}
	// The step register must provably hold a value >= 1 whenever the
	// loop runs: every write to it anywhere in the function is a
	// positive constant, and at least one such write dominates the loop.
	stepOK := false
	for _, pb := range g.Blocks {
		for i := range pb.Code {
			in := &pb.Code[i]
			if in.Op == ir.OpProbe || !writesReg(in, stepReg) {
				continue
			}
			if in.Op != ir.OpConst || in.Imm < 1 {
				return false
			}
			if cfg.Dominates(pb.ID, B) && pb.ID != B {
				stepOK = true
			}
		}
	}
	if !stepOK {
		return false
	}

	// Build the instrumented clone.
	clone := &ir.Block{ID: len(g.Blocks), Code: append([]ir.Instr(nil), blk.Code...), Term: blk.Term}
	p := ir.Probe{Kind: ir.ProbeTQInduction, Every: every, IndVar: iv.Reg, ID: *nextID}
	*nextID++
	clone.Code = append(clone.Code, ir.Instr{Op: ir.OpProbe, Probe: &p})
	g.Blocks = append(g.Blocks, clone)

	// Dispatch block: if limit - i < every (fewer remaining iterations
	// than the gate target) the loop cannot outlive the quantum, so run
	// the uninstrumented original; otherwise run the instrumented clone.
	// Uses three fresh scratch registers.
	rRem := g.NumRegs
	rEvery := g.NumRegs + 1
	rCond := g.NumRegs + 2
	g.NumRegs += 3
	dispatch := &ir.Block{ID: len(g.Blocks)}
	dispatch.Code = append(dispatch.Code,
		ir.Instr{Op: ir.OpSub, Dst: rRem, A: limitReg, B: iv.Reg},
		ir.Instr{Op: ir.OpConst, Dst: rEvery, Imm: every},
		ir.Instr{Op: ir.OpCmpLT, Dst: rCond, A: rRem, B: rEvery},
	)
	dispatch.Term = ir.Term{Kind: ir.Branch, Cond: rCond, Succ1: B, Succ2: clone.ID}
	g.Blocks = append(g.Blocks, dispatch)

	// Redirect external entries into B through the dispatch block;
	// keep the self edges (each clone loops on itself).
	for _, pb := range g.Blocks {
		if pb.ID == B || pb.ID == clone.ID || pb.ID == dispatch.ID {
			continue
		}
		redirect(&pb.Term, B, dispatch.ID)
	}
	// Clone's self edge must target the clone, not B.
	redirect(&clone.Term, B, clone.ID)
	// Record the proven bound on consecutive uninstrumented iterations
	// for the static verifier (do-while: at least one trip even when
	// remaining <= 0, hence the floor of 1; `every` covers the compare-
	// before-step ordering's extra trip).
	blk.TripBound = every
	if blk.TripBound < 1 {
		blk.TripBound = 1
	}
	return true
}

func redirect(t *ir.Term, from, to int) {
	if t.Kind == ir.Ret {
		return
	}
	if t.Succ1 == from {
		t.Succ1 = to
	}
	if t.Kind == ir.Branch && t.Succ2 == from {
		t.Succ2 = to
	}
}

func writesReg(in *ir.Instr, r int) bool {
	switch in.Op {
	case ir.OpConst, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
		ir.OpAnd, ir.OpXor, ir.OpShr, ir.OpCmpLT, ir.OpLoad:
		return in.Dst == r
	}
	return false
}

// CIPass inserts instruction-counter probes into a copy of f: the
// counter must stay correct along every path, so every basic block gets
// an increment; the chain optimization merges a block's increment into
// its unique successor when that successor has it as its unique
// predecessor (the simplified SESE-region optimization of [8, 10]).
// The counter threshold check rides along with every increment.
func CIPass(f *ir.Func) *ir.Func {
	return ciPass(f, ir.ProbeIC)
}

// CICyclesPass is the CI-Cycles hybrid of §5.6: identical probe
// placement to CIPass, but a triggered threshold check reads the
// physical clock and only yields if the quantum truly elapsed.
func CICyclesPass(f *ir.Func) *ir.Func {
	return ciPass(f, ir.ProbeICCycles)
}

func ciPass(f *ir.Func, kind ir.ProbeKind) *ir.Func {
	g := f.Clone()
	if g.NonReentrant {
		return g
	}
	cfg := ir.BuildCFG(g)
	// chainInto[b] = successor that will carry b's increment, or -1.
	chainInto := make([]int, len(g.Blocks))
	carried := make([]int64, len(g.Blocks))
	for i := range chainInto {
		chainInto[i] = -1
	}
	rpoIndex := make(map[int]int, len(cfg.RPO))
	for i, b := range cfg.RPO {
		rpoIndex[b] = i
	}
	// A block may defer its increment to its single successor if that
	// successor has exactly one predecessor: both run or neither does.
	// Loop headers never absorb (their increment would double-count),
	// and deferring along a back edge is forbidden — a chain that wraps
	// around a cycle would leave the whole cycle increment-free.
	for _, b := range g.Blocks {
		succs := b.Succs()
		if len(succs) != 1 {
			continue
		}
		s := succs[0]
		if s == b.ID || len(cfg.Preds[s]) != 1 {
			continue
		}
		si, ok := rpoIndex[s]
		if !ok || si <= rpoIndex[b.ID] {
			continue
		}
		if lp := cfg.LoopOf(s); lp != nil && lp.Header == s {
			continue
		}
		chainInto[b.ID] = s
	}
	// Propagate carried weights along chains in reverse postorder.
	for _, bid := range cfg.RPO {
		b := g.Blocks[bid]
		w := b.Weight() + carried[bid]
		if t := chainInto[bid]; t >= 0 {
			carried[t] += w
			continue
		}
		if w == 0 {
			continue
		}
		p := &ir.Probe{Kind: kind, Inc: w}
		b.Code = append(b.Code, ir.Instr{Op: ir.OpProbe, Probe: p})
	}
	// Assign dense IDs in block order.
	next := 0
	for _, b := range g.Blocks {
		for i := range b.Code {
			if b.Code[i].Op == ir.OpProbe {
				b.Code[i].Probe.ID = next
				next++
			}
		}
	}
	if err := g.Validate(); err != nil {
		panic("instrument: CIPass produced invalid IR: " + err.Error())
	}
	// CI's guarantee is structural (a counter check on every cycle); the
	// increment-merging makes no fixed per-path weight promise.
	mustVerify(g, 0, kind.String()+" pass")
	return g
}
