package instrument

import (
	"fmt"

	"repro/internal/ir"
)

// The Table 3 suite: synthetic IR programs named after the SPLASH-2,
// Phoenix and PARSEC workloads the paper instruments. Each program
// reproduces the *control-flow character* that drives probe placement
// for its namesake — dense numeric nests, irregular branching,
// data-dependent trip counts, tiny self-loops, call-heavy bodies —
// because probe count, probing overhead and timing accuracy are all
// functions of that structure rather than of the exact computation.
//
// Register conventions inside builders: r0 is scratch zero, loop
// counters and scratch registers are assigned per program; all
// programs terminate by construction (counted outer loops bound every
// data-dependent inner loop).

// Suite returns all benchmark programs at the given scale; scale
// multiplies outer trip counts so tests can run a cheap version
// (scale < 1) and the Table 3 harness the full one (scale = 1, about a
// millisecond of simulated execution each).
func Suite(scale float64) []*ir.Func {
	if scale <= 0 {
		panic("instrument: suite scale must be positive")
	}
	t := func(n int64) int64 {
		v := int64(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []*ir.Func{
		waterNSquared(t), waterSpatial(t), oceanCP(t), oceanNCP(t),
		barnes(t), volrend(t), fmm(t), raytrace(t), radiosity(t),
		radix(t), fft(t), luC(t), luNC(t), cholesky(t),
		reverseIndex(t), histogram(t), kmeans(t), pca(t),
		matrixMultiply(t), stringMatch(t), linearRegression(t),
		wordCount(t), blackscholes(t), fluidanimate(t), swaptions(t),
		canneal(t), streamcluster(t),
	}
}

// Program returns the named suite program at full scale, or panics.
func Program(name string) *ir.Func {
	for _, f := range Suite(1) {
		if f.Name == name {
			return f
		}
	}
	panic(fmt.Sprintf("instrument: unknown suite program %q", name))
}

type trips func(int64) int64

// pairwise N-body force loop: two-level nest over particle pairs with
// a moderate arithmetic body and hot loads.
func waterNSquared(t trips) *ir.Func {
	b := ir.NewFunc("water-nsquared", 16, 4096)
	b.CountedLoop(1, 2, 3, t(300), func() {
		b.CountedLoop(4, 5, 6, 40, func() {
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Hot)
			b.Mul(9, 8, 8)
			b.Add(10, 10, 9)
			b.Xor(11, 10, 8)
			b.Store(7, 11)
		})
	})
	b.Ret()
	return b.Build()
}

// spatial-decomposition variant: nested loop whose body branches on
// cell occupancy.
func waterSpatial(t trips) *ir.Func {
	b := ir.NewFunc("water-spatial", 16, 4096)
	b.CountedLoop(1, 2, 3, t(250), func() {
		b.CountedLoop(4, 5, 6, 32, func() {
			occupied := b.NewBlock()
			empty := b.NewBlock()
			join := b.NewBlock()
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Hot)
			b.Const(9, 1)
			b.And(10, 8, 9)
			b.BranchNZ(10, occupied, empty)
			b.SetBlock(occupied)
			b.Mul(11, 8, 8)
			b.Add(12, 12, 11)
			b.Jump(join)
			b.SetBlock(empty)
			b.Add(12, 12, 9)
			b.Jump(join)
			b.SetBlock(join)
		})
	})
	b.Ret()
	return b.Build()
}

// contiguous-partition grid sweep: long inner loop with a large
// straight-line body — the friendliest case for CI.
func oceanCP(t trips) *ir.Func {
	b := ir.NewFunc("ocean-cp", 24, 8192)
	b.CountedLoop(1, 2, 3, t(60), func() {
		b.CountedLoop(4, 5, 6, 200, func() {
			b.Add(7, 1, 4)
			for k := 0; k < 5; k++ {
				b.Load(8+k, 7, ir.Hot)
			}
			b.Add(13, 8, 9)
			b.Add(14, 10, 11)
			b.Add(15, 13, 14)
			b.Mul(16, 15, 12)
			b.Shr(17, 16, 0)
			b.Add(18, 18, 17)
			b.Store(7, 18)
		})
	})
	b.Ret()
	return b.Build()
}

// non-contiguous variant: the same sweep but strided (warm loads).
func oceanNCP(t trips) *ir.Func {
	b := ir.NewFunc("ocean-ncp", 24, 8192)
	b.CountedLoop(1, 2, 3, t(60), func() {
		b.CountedLoop(4, 5, 6, 180, func() {
			b.Const(7, 64)
			b.Mul(8, 4, 7)
			b.Add(8, 8, 1)
			for k := 0; k < 4; k++ {
				b.Load(9+k, 8, ir.Warm)
			}
			b.Add(13, 9, 10)
			b.Add(14, 11, 12)
			b.Mul(15, 13, 14)
			b.Add(16, 16, 15)
			b.Store(8, 16)
		})
	})
	b.Ret()
	return b.Build()
}

// hierarchical N-body tree walk: a bounded data-dependent descent with
// cold loads and branches, repeated per body.
func barnes(t trips) *ir.Func {
	b := ir.NewFunc("barnes", 16, 4096)
	b.CountedLoop(1, 2, 3, t(900), func() {
		// Descend up to 12 levels, direction chosen by loaded data.
		b.CountedLoop(4, 5, 6, 12, func() {
			left := b.NewBlock()
			right := b.NewBlock()
			join := b.NewBlock()
			b.Load(7, 8, ir.Cold)
			b.Const(9, 1)
			b.And(10, 7, 9)
			b.BranchNZ(10, left, right)
			b.SetBlock(left)
			b.Add(8, 8, 7)
			b.Jump(join)
			b.SetBlock(right)
			b.Xor(8, 8, 7)
			b.Jump(join)
			b.SetBlock(join)
			b.Add(11, 11, 7)
		})
	})
	b.Ret()
	return b.Build()
}

// ray-casting volume renderer: a loop of many tiny branchy blocks —
// the structure that forces CI to instrument at block granularity.
func volrend(t trips) *ir.Func {
	b := ir.NewFunc("volrend", 20, 4096)
	b.CountedLoop(1, 2, 3, t(1500), func() {
		// Chain of four data-dependent diamonds with one-instruction
		// arms.
		for d := 0; d < 4; d++ {
			yes := b.NewBlock()
			no := b.NewBlock()
			join := b.NewBlock()
			b.Load(4, 5, ir.Hot)
			b.Const(6, int64(1<<d))
			b.And(7, 4, 6)
			b.BranchNZ(7, yes, no)
			b.SetBlock(yes)
			b.Add(5, 5, 6)
			b.Jump(join)
			b.SetBlock(no)
			b.Xor(5, 5, 4)
			b.Jump(join)
			b.SetBlock(join)
		}
	})
	b.Ret()
	return b.Build()
}

// fast multipole method: nested loops whose inner body calls
// uninstrumented kernels — exercising the call-cost accounting.
func fmm(t trips) *ir.Func {
	b := ir.NewFunc("fmm", 16, 4096)
	b.CountedLoop(1, 2, 3, t(120), func() {
		b.CountedLoop(4, 5, 6, 25, func() {
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Warm)
			b.Mul(9, 8, 8)
			b.Call(1) // external multipole kernel
			b.Add(10, 10, 9)
		})
	})
	b.Ret()
	return b.Build()
}

// recursive ray tracer: deeply branching control flow where arm
// lengths differ a lot, stressing longest-path bounding.
func raytrace(t trips) *ir.Func {
	b := ir.NewFunc("raytrace", 24, 4096)
	b.CountedLoop(1, 2, 3, t(700), func() {
		hit := b.NewBlock()
		miss := b.NewBlock()
		join := b.NewBlock()
		b.Load(4, 5, ir.Warm)
		b.Const(6, 3)
		b.And(7, 4, 6)
		b.BranchNZ(7, hit, miss)
		b.SetBlock(hit)
		// Long arm: shading computation.
		for k := 0; k < 12; k++ {
			b.Mul(8, 4, 4)
			b.Add(9, 9, 8)
		}
		b.Jump(join)
		b.SetBlock(miss)
		// Short arm: background.
		b.Add(9, 9, 6)
		b.Jump(join)
		b.SetBlock(join)
		b.Xor(5, 5, 9)
	})
	b.Ret()
	return b.Build()
}

// hierarchical radiosity: irregular nest — a data-dependent inner loop
// inside a branchy outer loop.
func radiosity(t trips) *ir.Func {
	b := ir.NewFunc("radiosity", 24, 4096)
	b.CountedLoop(1, 2, 3, t(350), func() {
		// Inner interaction loop with a data-dependent early exit,
		// bounded at 20 iterations.
		inner := b.NewBlock()
		done := b.NewBlock()
		b.Const(4, 0)
		b.Const(5, 20)
		b.Jump(inner)
		b.SetBlock(inner)
		b.Load(6, 7, ir.Warm)
		b.Add(7, 7, 6)
		b.Mul(8, 6, 6)
		b.Add(9, 9, 8)
		b.Const(10, 1)
		b.Add(4, 4, 10)
		b.Const(11, 7)
		b.And(12, 6, 11)
		b.CmpLT(13, 4, 5)
		b.Mul(14, 12, 13) // continue while (energy&7)!=0 && i<20
		b.BranchNZ(14, inner, done)
		b.SetBlock(done)
	})
	b.Ret()
	return b.Build()
}

// radix sort digit pass: a tight single-block (rotated, do-while
// style) self-loop — the shape TQ's self-loop cloning targets.
func radix(t trips) *ir.Func {
	b := ir.NewFunc("radix", 12, 8192)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)        // i
	b.Const(2, t(40000)) // bound
	b.Const(8, 1)        // step
	b.Jump(loop)
	b.SetBlock(loop)
	b.Load(4, 1, ir.Hot)
	b.Const(5, 8)
	b.Shr(6, 4, 5)
	b.Add(7, 7, 6)
	b.Store(6, 7)
	b.Add(1, 1, 8)
	b.CmpLT(3, 1, 2)
	b.BranchNZ(3, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	return b.Build()
}

// fast Fourier transform: log-depth outer loop, butterfly inner loop
// with multiply-heavy bodies.
func fft(t trips) *ir.Func {
	b := ir.NewFunc("fft", 24, 8192)
	b.CountedLoop(1, 2, 3, t(14), func() {
		b.CountedLoop(4, 5, 6, 1200, func() {
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Hot)
			b.Load(9, 4, ir.Hot)
			b.Mul(10, 8, 9)
			b.Mul(11, 8, 8)
			b.Sub(12, 10, 11)
			b.Add(13, 10, 11)
			b.Store(7, 12)
			b.Store(4, 13)
		})
	})
	b.Ret()
	return b.Build()
}

// blocked (contiguous) LU: triangular triple nest with a fat innermost
// body.
func luC(t trips) *ir.Func {
	b := ir.NewFunc("lu-c", 24, 8192)
	b.CountedLoop(1, 2, 3, t(30), func() {
		b.CountedLoop(4, 5, 6, 30, func() {
			b.CountedLoop(7, 8, 9, 16, func() {
				b.Add(10, 4, 7)
				b.Load(11, 10, ir.Hot)
				b.Load(12, 7, ir.Hot)
				b.Mul(13, 11, 12)
				b.Sub(14, 14, 13)
				b.Store(10, 14)
			})
		})
	})
	b.Ret()
	return b.Build()
}

// non-contiguous LU: the same nest with strided (warm) accesses.
func luNC(t trips) *ir.Func {
	b := ir.NewFunc("lu-nc", 24, 8192)
	b.CountedLoop(1, 2, 3, t(28), func() {
		b.CountedLoop(4, 5, 6, 28, func() {
			b.CountedLoop(7, 8, 9, 14, func() {
				b.Const(10, 128)
				b.Mul(11, 7, 10)
				b.Add(11, 11, 4)
				b.Load(12, 11, ir.Warm)
				b.Mul(13, 12, 12)
				b.Sub(14, 14, 13)
				b.Store(11, 14)
			})
		})
	})
	b.Ret()
	return b.Build()
}

// sparse Cholesky factorization: triple nest with *tiny* inner blocks —
// many probes under CI, few under TQ.
func cholesky(t trips) *ir.Func {
	b := ir.NewFunc("cholesky", 24, 8192)
	b.CountedLoop(1, 2, 3, t(220), func() {
		b.CountedLoop(4, 5, 6, 10, func() {
			b.CountedLoop(7, 8, 9, 6, func() {
				b.Load(10, 7, ir.Hot)
				b.Sub(11, 11, 10)
			})
		})
	})
	b.Ret()
	return b.Build()
}

// inverted-index builder: tokenizing loop with calls and branches.
func reverseIndex(t trips) *ir.Func {
	b := ir.NewFunc("reverse-index", 20, 4096)
	b.CountedLoop(1, 2, 3, t(420), func() {
		tok := b.NewBlock()
		sep := b.NewBlock()
		join := b.NewBlock()
		b.Load(4, 1, ir.Warm)
		b.Const(5, 15)
		b.And(6, 4, 5)
		b.BranchNZ(6, tok, sep)
		b.SetBlock(tok)
		b.Mul(7, 4, 4)
		b.Add(8, 8, 7)
		b.Jump(join)
		b.SetBlock(sep)
		b.Call(1) // hash-table insert via external allocator
		b.Jump(join)
		b.SetBlock(join)
	})
	b.Ret()
	return b.Build()
}

// histogram: single-block counting self-loop over pixels (rotated, so
// the whole loop is one block and cloning applies).
func histogram(t trips) *ir.Func {
	b := ir.NewFunc("histogram", 12, 8192)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)
	b.Const(2, t(50000))
	b.Const(7, 1)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Load(4, 1, ir.Hot)
	b.Const(5, 255)
	b.And(6, 4, 5)
	b.Store(6, 1)
	b.Add(1, 1, 7)
	b.CmpLT(3, 1, 2)
	b.BranchNZ(3, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	return b.Build()
}

// k-means: outer iteration loop, middle point loop, inner distance
// accumulation with small blocks.
func kmeans(t trips) *ir.Func {
	b := ir.NewFunc("kmeans", 24, 8192)
	b.CountedLoop(1, 2, 3, t(12), func() {
		b.CountedLoop(4, 5, 6, 180, func() {
			b.CountedLoop(7, 8, 9, 8, func() {
				b.Add(10, 4, 7)
				b.Load(11, 10, ir.Hot)
				b.Load(12, 7, ir.Hot)
				b.Sub(13, 11, 12)
				b.Mul(14, 13, 13)
				b.Add(15, 15, 14)
			})
		})
	})
	b.Ret()
	return b.Build()
}

// principal component analysis: covariance accumulation, a wide nest
// with multiply/divide-heavy bodies.
func pca(t trips) *ir.Func {
	b := ir.NewFunc("pca", 24, 8192)
	b.CountedLoop(1, 2, 3, t(45), func() {
		b.CountedLoop(4, 5, 6, 45, func() {
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Hot)
			b.Load(9, 1, ir.Hot)
			b.Mul(10, 8, 9)
			b.Const(11, 45)
			b.Div(12, 10, 11)
			b.Add(13, 13, 12)
			b.Store(7, 13)
		})
	})
	b.Ret()
	return b.Build()
}

// dense matrix multiply: the canonical triple nest with a tiny
// multiply-accumulate self-loop innermost.
func matrixMultiply(t trips) *ir.Func {
	b := ir.NewFunc("matrix-multiply", 24, 8192)
	b.CountedLoop(1, 2, 3, t(26), func() {
		b.CountedLoop(4, 5, 6, 26, func() {
			b.CountedLoop(7, 8, 9, 26, func() {
				b.Add(10, 1, 7)
				b.Load(11, 10, ir.Hot)
				b.Add(12, 7, 4)
				b.Load(13, 12, ir.Hot)
				b.Mul(14, 11, 13)
				b.Add(15, 15, 14)
			})
		})
	})
	b.Ret()
	return b.Build()
}

// string matching: byte-compare inner loop with data-dependent early
// exit and one-instruction blocks — CI's worst case in Table 3.
func stringMatch(t trips) *ir.Func {
	b := ir.NewFunc("string-match", 20, 4096)
	b.CountedLoop(1, 2, 3, t(2200), func() {
		scan := b.NewBlock()
		out := b.NewBlock()
		b.Const(4, 0)
		b.Const(5, 16) // compare at most 16 bytes
		b.Jump(scan)
		b.SetBlock(scan)
		b.Load(6, 7, ir.Hot)
		b.Const(8, 1)
		b.Add(7, 7, 6)
		b.Add(4, 4, 8)
		b.Const(9, 3)
		b.And(10, 6, 9)   // mismatch with p=3/4
		b.CmpLT(11, 4, 5) // and length guard
		b.Mul(12, 10, 11)
		b.BranchNZ(12, scan, out)
		b.SetBlock(out)
	})
	b.Ret()
	return b.Build()
}

// linear regression: one long streaming loop with a moderate body.
func linearRegression(t trips) *ir.Func {
	b := ir.NewFunc("linear-regression", 16, 8192)
	b.CountedLoop(1, 2, 3, t(25000), func() {
		b.Load(4, 1, ir.Hot)
		b.Mul(5, 4, 4)
		b.Add(6, 6, 4)
		b.Add(7, 7, 5)
		b.Add(8, 8, 1)
	})
	b.Ret()
	return b.Build()
}

// word count: tokenizer loop mixing branches and an occasional
// external call (emit).
func wordCount(t trips) *ir.Func {
	b := ir.NewFunc("word-count", 20, 4096)
	b.CountedLoop(1, 2, 3, t(900), func() {
		word := b.NewBlock()
		space := b.NewBlock()
		join := b.NewBlock()
		b.Load(4, 1, ir.Hot)
		b.Const(5, 7)
		b.And(6, 4, 5)
		b.BranchNZ(6, word, space)
		b.SetBlock(word)
		b.Add(7, 7, 4)
		b.Xor(8, 8, 7)
		b.Jump(join)
		b.SetBlock(space)
		b.Call(1)
		b.Jump(join)
		b.SetBlock(join)
	})
	b.Ret()
	return b.Build()
}

// Black-Scholes: a loop over options with one long straight-line
// numeric body — nearly free for every technique.
func blackscholes(t trips) *ir.Func {
	b := ir.NewFunc("blackscholes", 28, 4096)
	b.CountedLoop(1, 2, 3, t(600), func() {
		b.Load(4, 1, ir.Hot)
		for k := 0; k < 6; k++ {
			b.Mul(5+k, 4, 4)
			b.Add(11, 11, 5+k)
		}
		b.Const(17, 252)
		b.Div(18, 11, 17)
		b.Mul(19, 18, 18)
		b.Add(20, 20, 19)
		b.Store(1, 20)
	})
	b.Ret()
	return b.Build()
}

// fluid simulation: grid nest with neighbour loads spanning cache
// levels and a branch per cell.
func fluidanimate(t trips) *ir.Func {
	b := ir.NewFunc("fluidanimate", 24, 8192)
	b.CountedLoop(1, 2, 3, t(90), func() {
		b.CountedLoop(4, 5, 6, 60, func() {
			boundary := b.NewBlock()
			interior := b.NewBlock()
			join := b.NewBlock()
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Warm)
			b.Const(9, 31)
			b.And(10, 4, 9)
			b.BranchNZ(10, interior, boundary)
			b.SetBlock(interior)
			b.Load(11, 8, ir.Hot)
			b.Mul(12, 11, 8)
			b.Add(13, 13, 12)
			b.Jump(join)
			b.SetBlock(boundary)
			b.Add(13, 13, 8)
			b.Jump(join)
			b.SetBlock(join)
			b.Store(7, 13)
		})
	})
	b.Ret()
	return b.Build()
}

// swaption pricing: Monte-Carlo nest with divide-heavy path updates.
func swaptions(t trips) *ir.Func {
	b := ir.NewFunc("swaptions", 24, 4096)
	b.CountedLoop(1, 2, 3, t(140), func() {
		b.CountedLoop(4, 5, 6, 20, func() {
			b.Load(7, 4, ir.Hot)
			b.Const(8, 97)
			b.Div(9, 7, 8)
			b.Mul(10, 9, 9)
			b.Add(11, 11, 10)
		})
	})
	b.Ret()
	return b.Build()
}

// simulated annealing of netlists: pointer-chasing loop with cold
// loads and a swap/no-swap branch.
func canneal(t trips) *ir.Func {
	b := ir.NewFunc("canneal", 20, 8192)
	b.CountedLoop(1, 2, 3, t(500), func() {
		swap := b.NewBlock()
		keep := b.NewBlock()
		join := b.NewBlock()
		b.Load(4, 5, ir.Cold)
		b.Add(5, 5, 4) // chase to the next element
		b.Const(6, 1)
		b.And(7, 4, 6)
		b.BranchNZ(7, swap, keep)
		b.SetBlock(swap)
		b.Store(5, 4)
		b.Add(8, 8, 6)
		b.Jump(join)
		b.SetBlock(keep)
		b.Xor(8, 8, 4)
		b.Jump(join)
		b.SetBlock(join)
	})
	b.Ret()
	return b.Build()
}

// streaming clustering: distance loop nest with comparisons feeding a
// conditional assignment.
func streamcluster(t trips) *ir.Func {
	b := ir.NewFunc("streamcluster", 24, 8192)
	b.CountedLoop(1, 2, 3, t(260), func() {
		b.CountedLoop(4, 5, 6, 18, func() {
			closer := b.NewBlock()
			farther := b.NewBlock()
			join := b.NewBlock()
			b.Add(7, 1, 4)
			b.Load(8, 7, ir.Hot)
			b.Sub(9, 8, 10)
			b.Mul(11, 9, 9)
			b.CmpLT(12, 11, 13)
			b.BranchNZ(12, closer, farther)
			b.SetBlock(closer)
			b.Add(13, 11, 14) // update best distance
			b.Jump(join)
			b.SetBlock(farther)
			b.Add(15, 15, 11)
			b.Jump(join)
			b.SetBlock(join)
		})
	})
	b.Ret()
	return b.Build()
}
