package instrument

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/verify"
)

const testScale = 0.05

// gapHook records the largest non-probe instruction gap between
// consecutive probe executions.
type gapHook struct {
	lastInstrs int64
	maxGap     int64
}

func (h *gapHook) OnProbe(_ *ir.Probe, _, instrs int64) int64 {
	if g := instrs - h.lastInstrs; g > h.maxGap {
		h.maxGap = g
	}
	h.lastInstrs = instrs
	return 0
}

// incHook sums instruction-counter increments to check CI counter
// correctness.
type incHook struct{ total int64 }

func (h *incHook) OnProbe(p *ir.Probe, _, _ int64) int64 {
	h.total += p.Inc
	return 0
}

func TestSuiteProgramsTerminateAndValidate(t *testing.T) {
	for _, f := range Suite(testScale) {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
			continue
		}
		res, err := ir.Exec(f, ir.DefaultCosts(), rng.New(1), nil, maxSteps)
		if err != nil {
			t.Errorf("%s: %v", f.Name, err)
			continue
		}
		if res.Instrs < 100 {
			t.Errorf("%s executed only %d instructions", f.Name, res.Instrs)
		}
	}
}

func TestSuiteHas27Programs(t *testing.T) {
	if got := len(Suite(1)); got != 27 {
		t.Fatalf("suite has %d programs, want 27 (Table 3 rows)", got)
	}
}

func TestProgramLookup(t *testing.T) {
	f := Program("cholesky")
	if f.Name != "cholesky" {
		t.Fatalf("Program returned %q", f.Name)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown program did not panic")
		}
	}()
	Program("no-such-program")
}

func TestCIPassInstrumentsEveryPath(t *testing.T) {
	// The accumulated increments must exactly equal the weighted
	// instruction count along the executed path, for every program.
	for _, f := range Suite(testScale) {
		g := CIPass(f)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		base, err := ir.Exec(f, ir.DefaultCosts(), rng.New(3), nil, maxSteps)
		if err != nil {
			t.Fatal(err)
		}
		hook := &incHook{}
		_, err = ir.Exec(g, ir.DefaultCosts(), rng.New(3), hook, maxSteps)
		if err != nil {
			t.Fatal(err)
		}
		weighted := weightedInstrs(f, base)
		if hook.total != weighted {
			t.Errorf("%s: counter total %d != weighted instructions %d",
				f.Name, hook.total, weighted)
		}
	}
}

// weightedInstrs recomputes the weighted instruction count of a run by
// re-executing with a per-block accounting (calls weigh CallWeight).
func weightedInstrs(f *ir.Func, base ir.ExecResult) int64 {
	// All instructions weigh 1 except calls; count executed calls by
	// comparing a call-free weight estimate is fragile, so re-derive
	// exactly: run again with an instruction-weight tally.
	var total int64
	r := rng.New(3)
	tally := &tallyExec{}
	tally.run(f, r)
	total = tally.weighted
	_ = base
	return total
}

// tallyExec mirrors ir.Exec's control flow to tally weighted
// instruction counts (it must follow the same branch decisions, so it
// replays with the same seed and load semantics).
type tallyExec struct{ weighted int64 }

func (t *tallyExec) run(f *ir.Func, r *rng.Rand) {
	regs := make([]int64, f.NumRegs)
	memWords := f.MemWords
	mem := make([]int64, memWords)
	for i := range mem {
		mem[i] = int64(r.Uint64() >> 1)
	}
	bid := 0
	for steps := int64(0); steps < maxSteps; {
		b := f.Blocks[bid]
		for i := range b.Code {
			in := &b.Code[i]
			steps++
			switch in.Op {
			case ir.OpConst:
				regs[in.Dst] = in.Imm
			case ir.OpAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case ir.OpSub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case ir.OpMul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			case ir.OpDiv:
				if regs[in.B] == 0 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] / regs[in.B]
				}
			case ir.OpAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case ir.OpXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case ir.OpShr:
				regs[in.Dst] = int64(uint64(regs[in.A]) >> (uint64(regs[in.B]) & 63))
			case ir.OpCmpLT:
				if regs[in.A] < regs[in.B] {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
			case ir.OpLoad:
				regs[in.Dst] = mem[int(uint64(regs[in.A])%uint64(memWords))]
				// Consume the latency sample exactly like ir.Exec.
				switch in.Locality {
				case ir.Hot, ir.Warm:
					r.Uint64n(100)
				}
			case ir.OpStore:
				mem[int(uint64(regs[in.A])%uint64(memWords))] = regs[in.B]
			}
			t.weighted += weightOf(in)
		}
		switch b.Term.Kind {
		case ir.Jump:
			bid = b.Term.Succ1
		case ir.Branch:
			if regs[b.Term.Cond] != 0 {
				bid = b.Term.Succ1
			} else {
				bid = b.Term.Succ2
			}
		case ir.Ret:
			return
		}
	}
}

func weightOf(in *ir.Instr) int64 {
	if in.Op == ir.OpCall {
		s := in.Imm
		if s < 1 {
			s = 1
		}
		return CallWeight * s
	}
	if in.Op == ir.OpProbe {
		return 0
	}
	return 1
}

func TestTQPassBoundsProbeGaps(t *testing.T) {
	const bound = 100
	for _, f := range Suite(testScale) {
		g := TQPass(f, bound)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		hook := &gapHook{}
		if _, err := ir.Exec(g, ir.DefaultCosts(), rng.New(5), hook, maxSteps); err != nil {
			t.Fatal(err)
		}
		// Gated loop probes execute every iteration; the uninstrumented
		// self-loop clone may add up to bound/2 of probe-free work, so
		// the dynamic gap stays within 2x the bound.
		if hook.maxGap > 2*bound {
			t.Errorf("%s: max inter-probe gap %d instructions exceeds %d",
				f.Name, hook.maxGap, 2*bound)
		}
	}
}

func TestTQPlacesFarFewerProbesThanCI(t *testing.T) {
	// §3.1: 25-60x fewer probes on block-granular code. Across the
	// suite TQ must place at most half of CI's probes on average, and
	// dramatically fewer on the small-block programs.
	var tqTotal, ciTotal int
	for _, f := range Suite(testScale) {
		tq := TQPass(f, DefaultBound).NumProbes()
		ci := CIPass(f).NumProbes()
		tqTotal += tq
		ciTotal += ci
	}
	if tqTotal*2 > ciTotal {
		t.Fatalf("TQ placed %d probes vs CI %d: expected far fewer", tqTotal, ciTotal)
	}
}

func TestSelfLoopCloning(t *testing.T) {
	f := Program("histogram")
	base := len(f.Blocks)
	g := TQPass(f, DefaultBound)
	if len(g.Blocks) < base+2 {
		t.Fatalf("self-loop clone did not add blocks: %d -> %d", base, len(g.Blocks))
	}
	// Both versions must compute the same thing: executed instruction
	// count (of program instructions) must match the original.
	b, err := ir.Exec(f, ir.DefaultCosts(), rng.New(9), nil, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	hook := &gapHook{}
	gRes, err := ir.Exec(g, ir.DefaultCosts(), rng.New(9), hook, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	// The dispatch block adds three instructions (remaining-trips guard:
	// sub, const, cmplt); everything else equal.
	if gRes.Instrs != b.Instrs+3 {
		t.Fatalf("cloned program executed %d instrs, original %d (+3 expected)", gRes.Instrs, b.Instrs)
	}
}

func TestSelfLoopCloneSkipsProbesForShortLoops(t *testing.T) {
	// A tiny self-loop (trips below the gate target) must run the
	// uninstrumented clone: zero probe executions inside the loop.
	b := ir.NewFunc("tiny-selfloop", 12, 64)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)
	b.Const(2, 3) // 3 trips only
	b.Const(7, 1)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Add(4, 4, 1)
	b.Add(1, 1, 7)
	b.CmpLT(3, 1, 2)
	b.BranchNZ(3, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	f := b.Build()
	g := TQPass(f, DefaultBound)
	res, err := ir.Exec(g, ir.DefaultCosts(), rng.New(1), &gapHook{}, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != 0 {
		t.Fatalf("short self-loop executed %d probes, want 0 (uninstrumented clone)", res.Probes)
	}
}

func TestMeasureTQYieldsNearQuantum(t *testing.T) {
	model := ir.DefaultCosts()
	m := MeasureTQ(Program("linear-regression"), DefaultBound, DefaultQuantumNs, model, 1)
	if m.Yields < 3 {
		t.Fatalf("only %d yields; program too short for the quantum", m.Yields)
	}
	// TQ's MAE should be well under half the quantum.
	if m.MAEns > DefaultQuantumNs/2 {
		t.Fatalf("TQ MAE %.0fns is not accurate against a %dns quantum", m.MAEns, DefaultQuantumNs)
	}
	if m.OverheadPct < 0 || m.OverheadPct > 40 {
		t.Fatalf("TQ overhead %.1f%% out of plausible range", m.OverheadPct)
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3(testScale, 1)
	if len(rows) != 27 {
		t.Fatalf("Table3 produced %d rows", len(rows))
	}
	for _, r := range rows {
		for _, tech := range []string{TechCI, TechCICycles, TechTQ} {
			if _, ok := r.ByTech[tech]; !ok {
				t.Fatalf("row %s missing technique %s", r.Program, tech)
			}
		}
	}
	means := Means(rows)
	// The paper's headline: TQ beats CI on both overhead and accuracy
	// on average, and CI-Cycles costs more than CI.
	if means[TechTQ].OverheadPct >= means[TechCI].OverheadPct {
		t.Errorf("mean TQ overhead %.1f%% not below CI %.1f%%",
			means[TechTQ].OverheadPct, means[TechCI].OverheadPct)
	}
	if means[TechTQ].MAEns >= means[TechCI].MAEns {
		t.Errorf("mean TQ MAE %.0fns not below CI %.0fns",
			means[TechTQ].MAEns, means[TechCI].MAEns)
	}
	if means[TechCICycles].OverheadPct <= means[TechCI].OverheadPct {
		t.Errorf("CI-Cycles overhead %.1f%% not above CI %.1f%%",
			means[TechCICycles].OverheadPct, means[TechCI].OverheadPct)
	}
	out := Format(rows)
	if len(out) == 0 {
		t.Fatal("Format produced nothing")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	model := ir.DefaultCosts()
	f := Program("kmeans")
	a := MeasureTQ(f, DefaultBound, DefaultQuantumNs, model, 7)
	b := MeasureTQ(f, DefaultBound, DefaultQuantumNs, model, 7)
	if a != b {
		t.Fatalf("same-seed measurements differ: %+v vs %+v", a, b)
	}
}

func TestTQPassDoesNotMutateInput(t *testing.T) {
	f := Program("volrend")
	before := f.NumProbes()
	instrs := f.NumInstrs()
	TQPass(f, DefaultBound)
	CIPass(f)
	if f.NumProbes() != before || f.NumInstrs() != instrs {
		t.Fatal("pass mutated its input function")
	}
}

func TestTQPassStraightLineCode(t *testing.T) {
	// A loop-free function longer than the bound gets full probes at
	// bound intervals from the acyclic pass alone.
	b := ir.NewFunc("straight", 8, 64)
	for i := 0; i < 500; i++ {
		b.Add(1, 1, 2)
	}
	b.Ret()
	f := b.Build()
	const bound = 100
	g := TQPass(f, bound)
	want := 500 / bound
	if got := g.NumProbes(); got < want-1 || got > want+1 {
		t.Fatalf("straight-line 500 instrs with bound %d: %d probes, want ≈%d", bound, got, want)
	}
	hook := &gapHook{}
	if _, err := ir.Exec(g, ir.DefaultCosts(), rng.New(1), hook, maxSteps); err != nil {
		t.Fatal(err)
	}
	if hook.maxGap > bound+1 {
		t.Fatalf("max gap %d exceeds bound %d on straight-line code", hook.maxGap, bound)
	}
}

func TestTQPassCallWeighting(t *testing.T) {
	// Calls to uninstrumented externals count as CallWeight
	// instructions, so a call-dense stretch needs probes sooner.
	b := ir.NewFunc("cally", 4, 16)
	for i := 0; i < 20; i++ {
		b.Call(1) // 20 x CallWeight(20) = 400 weighted instructions
	}
	b.Ret()
	g := TQPass(b.Build(), 100)
	if got := g.NumProbes(); got < 3 {
		t.Fatalf("call-dense function got %d probes, want >=3 (weighted paths)", got)
	}
}

func TestNonReentrantFunctionsStayProbeFree(t *testing.T) {
	// §6: functions marked non-reentrant must receive no probes under
	// any pass.
	f := Program("cholesky")
	f.NonReentrant = true
	if got := TQPass(f, DefaultBound).NumProbes(); got != 0 {
		t.Fatalf("TQ pass inserted %d probes into a non-reentrant function", got)
	}
	if got := CIPass(f).NumProbes(); got != 0 {
		t.Fatalf("CI pass inserted %d probes into a non-reentrant function", got)
	}
	if got := CICyclesPass(f).NumProbes(); got != 0 {
		t.Fatalf("CI-Cycles pass inserted %d probes into a non-reentrant function", got)
	}
	// The flag survives cloning and the program still runs.
	g := TQPass(f, DefaultBound)
	if !g.NonReentrant {
		t.Fatal("NonReentrant flag lost in pass output")
	}
	if _, err := ir.Exec(g, ir.DefaultCosts(), rng.New(1), nil, maxSteps); err != nil {
		t.Fatal(err)
	}
}

func TestTQBoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bound 1 did not panic")
		}
	}()
	TQPass(Program("radix"), 1)
}

func BenchmarkTQPass(b *testing.B) {
	f := Program("raytrace")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TQPass(f, DefaultBound)
	}
}

func BenchmarkCIPass(b *testing.B) {
	f := Program("raytrace")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CIPass(f)
	}
}

// twoLatchLoop builds one natural loop with TWO back edges: the body
// branches into either of two latch blocks, both jumping back to the
// header. Regression shape for the bug where TQPass probed only the
// first latch, leaving a probe-free cycle through the second.
func twoLatchLoop() (*ir.Func, int, int) {
	b := ir.NewFunc("two-latch", 12, 64)
	header := b.NewBlock()
	body := b.NewBlock()
	l1 := b.NewBlock()
	l2 := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)  // i
	b.Const(2, 50) // limit
	b.Const(7, 1)  // step
	b.Jump(header)
	b.SetBlock(header)
	b.CmpLT(3, 1, 2)
	b.BranchNZ(3, body, exit)
	b.SetBlock(body)
	b.And(4, 1, 7) // parity selects the latch
	b.BranchNZ(4, l1, l2)
	b.SetBlock(l1)
	b.Add(5, 5, 7)
	b.Add(1, 1, 7)
	b.Jump(header)
	b.SetBlock(l2)
	b.Add(6, 6, 7)
	b.Add(1, 1, 7)
	b.Jump(header)
	b.SetBlock(exit)
	b.Ret()
	return b.Build(), l1, l2
}

func TestTQPassProbesEveryLatch(t *testing.T) {
	f, l1, l2 := twoLatchLoop()
	g := TQPass(f, DefaultBound)
	if !g.Blocks[l1].HasProbe() || !g.Blocks[l2].HasProbe() {
		t.Fatalf("latch probes: b%d=%v b%d=%v, want both probed\n%s",
			l1, g.Blocks[l1].HasProbe(), l2, g.Blocks[l2].HasProbe(), g.Disassemble())
	}
	if res := verify.Check(g, TQGapGuarantee(f, DefaultBound)); !res.Proved() {
		t.Fatalf("two-latch instrumentation refuted: %s", res)
	}
	// Reconstruct the old single-latch placement and confirm the
	// verifier catches exactly this bug class.
	bad := g.Clone()
	code := bad.Blocks[l2].Code[:0]
	for _, in := range bad.Blocks[l2].Code {
		if in.Op != ir.OpProbe {
			code = append(code, in)
		}
	}
	bad.Blocks[l2].Code = code
	res := verify.Check(bad, TQGapGuarantee(f, DefaultBound))
	if res.Status != verify.StatusNoProbeOnCycle {
		t.Fatalf("unprobed second latch not refuted as probe-free cycle: %s", res)
	}
}

func TestSelfLoopCloneNonzeroInductionStart(t *testing.T) {
	// Regression: the clone dispatch used to compare the loop LIMIT
	// against the gate target — a proxy for the trip count that is only
	// right when the induction variable starts at zero. With i starting
	// at -1000 and a limit of 10, the limit looks tiny, the old guard
	// picked the uninstrumented clone, and ~1010 iterations ran without
	// a single probe. The guard must compare REMAINING trips (limit-i).
	b := ir.NewFunc("neg-start-selfloop", 12, 64)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, -1000) // i
	b.Const(2, 10)    // limit
	b.Const(7, 1)     // step
	b.Jump(loop)
	b.SetBlock(loop)
	b.Add(4, 4, 7)
	b.Add(1, 1, 7)
	b.CmpLT(3, 1, 2)
	b.BranchNZ(3, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	f := b.Build()

	g := TQPass(f, DefaultBound)
	hook := &gapHook{}
	res, err := ir.Exec(g, ir.DefaultCosts(), rng.New(1), hook, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes == 0 {
		t.Fatalf("long-running self-loop took the uninstrumented clone:\n%s", g.Disassemble())
	}
	if guar := TQGapGuarantee(f, DefaultBound); hook.maxGap > guar {
		t.Fatalf("dynamic probe gap %d exceeds static guarantee %d", hook.maxGap, guar)
	}
	// Semantics preserved: only the three dispatch instructions ride on
	// top of the original execution.
	base, err := ir.Exec(f, ir.DefaultCosts(), rng.New(1), nil, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != base.Instrs+3 {
		t.Fatalf("instrumented run executed %d instrs, original %d (+3 expected)", res.Instrs, base.Instrs)
	}
}

func TestAllPassOutputsProveProbeGapInvariant(t *testing.T) {
	// The acceptance bar for the verifier: every suite program, under
	// every pass, proves the invariant — TQ against its stated weighted
	// gap guarantee, the CI variants structurally (their bound is a
	// counter threshold, not a per-path weight).
	for _, f := range Suite(testScale) {
		guar := TQGapGuarantee(f, DefaultBound)
		res := verify.Check(TQPass(f, DefaultBound), guar)
		if !res.Proved() {
			t.Errorf("%s/TQ: %s", f.Name, res)
		}
		if res.WorstGap > 2*DefaultBound {
			t.Errorf("%s/TQ: worst static gap %d exceeds 2x bound %d", f.Name, res.WorstGap, 2*DefaultBound)
		}
		for tech, g := range map[string]*ir.Func{
			TechCI:       CIPass(f),
			TechCICycles: CICyclesPass(f),
		} {
			if res := verify.Check(g, 0); !res.Proved() {
				t.Errorf("%s/%s: %s", f.Name, tech, res)
			}
		}
	}
}
