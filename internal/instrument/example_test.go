package instrument_test

import (
	"fmt"

	"repro/internal/instrument"
	"repro/internal/ir"
)

// Example instruments a counted loop with TQ's pass and the
// instruction-counter baseline and compares probe placement.
func Example() {
	b := ir.NewFunc("sum", 8, 256)
	b.CountedLoop(1, 2, 3, 100000, func() {
		b.Load(4, 1, ir.Hot)
		b.Add(5, 5, 4)
	})
	b.Ret()
	f := b.Build()

	tq := instrument.TQPass(f, instrument.DefaultBound)
	ci := instrument.CIPass(f)
	fmt.Printf("TQ probes: %d\n", tq.NumProbes())
	fmt.Printf("CI probes: %d\n", ci.NumProbes())
	// Output:
	// TQ probes: 1
	// CI probes: 3
}
