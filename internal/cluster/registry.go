package cluster

import (
	"repro/internal/sim"
)

// The registry is the front door to the machine catalogue: every
// machine model and variant registers a stable name plus constructors
// for its calibrated default parameters, so sweep drivers, comparison
// tools, and command-line flags can enumerate and select machines
// without hard-coding constructor lists. Custom parameterizations still
// go through the typed constructors (NewTQ, NewShinjuku, ...); the
// registry covers the common case of "run the paper's configuration of
// machine X by name".

// Entry is one registered machine.
type Entry struct {
	// Name is the stable registry key ("tq", "shinjuku", "caladan-ws",
	// ...). It identifies the machine in flags and fixtures and never
	// changes, even if the machine's display Name() does.
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// New constructs the machine with its calibrated default
	// parameters (the paper's configuration).
	New func() Machine
	// NewQ, when non-nil, constructs the machine with an explicit
	// preemption quantum — for machines whose paper configuration picks
	// the quantum per workload (Shinjuku runs at its per-workload sweet
	// spot; §5.1). Nil for machines without a quantum knob.
	NewQ func(q sim.Time) Machine
	// NewD, when non-nil, constructs the machine with an explicit queue
	// discipline (a pifo.Names name: rr, fcfs, srpt, edf, las,
	// prio-age) — the second registry dimension, for machines whose
	// queues were rewired onto internal/pifo. Nil for machines whose
	// queue order is their identity (Shinjuku's and Caladan's FCFS) or
	// fixed by construction (the oracle).
	NewD func(discipline string) Machine
}

// nodeMachine is implemented by machines that can bind to a shared
// engine as a Node (every kernel-ported machine; see node.go).
type nodeMachine interface {
	NewNode(eng *sim.Engine, cfg RunConfig) Node
}

// CanNode reports whether the entry's machine has a Node form — i.e.
// whether it can join a multi-machine composition on one shared engine.
// Every registry machine does except "caladan-ws", whose best-of-both
// judging needs two complete standalone runs per configuration.
func (e Entry) CanNode() bool {
	_, ok := e.New().(nodeMachine)
	return ok
}

// NewNode constructs the entry's machine with its calibrated default
// parameters, bound to the given shared engine as a Node. It panics if
// the machine has no Node form (CanNode reports false).
func (e Entry) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	nm, ok := e.New().(nodeMachine)
	if !ok {
		panic("cluster: machine " + e.Name + " cannot run as a node")
	}
	return nm.NewNode(eng, cfg)
}

var registry = struct {
	names   []string // registration order, for stable listings
	entries map[string]Entry
}{entries: map[string]Entry{}}

// Register adds a machine to the catalogue. It panics on a duplicate
// or incomplete entry — registration happens at init time, so a panic
// is a programming error surfacing immediately.
func Register(e Entry) {
	if e.Name == "" || e.New == nil {
		panic("cluster: Register needs a name and a default constructor")
	}
	if _, dup := registry.entries[e.Name]; dup {
		panic("cluster: duplicate machine registration: " + e.Name)
	}
	registry.entries[e.Name] = e
	registry.names = append(registry.names, e.Name)
}

// Lookup returns the entry registered under name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry.entries[name]
	return e, ok
}

// MustLookup is Lookup for names that must exist (tests, init-time
// wiring); it panics with the known names on a miss.
func MustLookup(name string) Entry {
	e, ok := registry.entries[name]
	if !ok {
		panic("cluster: unknown machine " + name + " (known: " + joinNames() + ")")
	}
	return e
}

// Names lists every registered machine in registration order.
func Names() []string {
	out := make([]string, len(registry.names))
	copy(out, registry.names)
	return out
}

func joinNames() string {
	s := ""
	for i, n := range registry.names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// tqQ parameterizes the default TQ configuration by quantum.
func tqQ(q sim.Time) TQParams {
	p := NewTQParams()
	p.Quantum = q
	return p
}

// tqD parameterizes the default TQ configuration by worker discipline.
func tqD(d string) TQParams {
	p := NewTQParams()
	p.Discipline = d
	return p
}

// dfD parameterizes the default d-FCFS configuration by queue
// discipline.
func dfD(d string) DFCFSParams {
	p := NewDFCFSParams()
	p.Discipline = d
	return p
}

// tlsD parameterizes the idealized TLS machine by worker discipline.
func tlsD(balancer BalancerKind, d string) Machine {
	m := NewIdealTLS(16, sim.Micros(1), balancer)
	m.P.Discipline = d
	return NewTQ(m.P).Named(disciplineName(m.Name(), d))
}

func init() {
	Register(Entry{
		Name:    "tq",
		Summary: "TQ: two-level scheduling + forced multitasking (paper default)",
		New:     func() Machine { return NewTQ(NewTQParams()) },
		NewQ:    func(q sim.Time) Machine { return NewTQ(tqQ(q)) },
		NewD:    func(d string) Machine { return NewTQ(tqD(d)) },
	})
	Register(Entry{
		Name:    "tq-las",
		Summary: "TQ with least-attained-service worker scheduling",
		New:     func() Machine { return NewTQLAS(NewTQParams()) },
		NewQ:    func(q sim.Time) Machine { return NewTQLAS(tqQ(q)) },
	})
	Register(Entry{
		Name:    "tq-ic",
		Summary: "TQ variant probed by instruction-counter instrumentation (≈60% overhead)",
		New:     func() Machine { return NewTQIC(NewTQParams()) },
		NewQ:    func(q sim.Time) Machine { return NewTQIC(tqQ(q)) },
	})
	Register(Entry{
		Name:    "tq-slow-yield",
		Summary: "TQ variant with 1µs added to every coroutine yield",
		New:     func() Machine { return NewTQSlowYield(NewTQParams()) },
		NewQ:    func(q sim.Time) Machine { return NewTQSlowYield(tqQ(q)) },
	})
	Register(Entry{
		Name:    "tq-timing",
		Summary: "TQ variant with inaccurate per-class preemption timing",
		New:     func() Machine { return NewTQTiming(NewTQParams()) },
	})
	Register(Entry{
		Name:    "tq-rand",
		Summary: "TQ variant with random dispatcher load balancing",
		New:     func() Machine { return NewTQRand(NewTQParams()) },
	})
	Register(Entry{
		Name:    "tq-power-two",
		Summary: "TQ variant with power-of-two-choices load balancing",
		New:     func() Machine { return NewTQPowerTwo(NewTQParams()) },
	})
	Register(Entry{
		Name:    "tq-fcfs",
		Summary: "TQ variant with run-to-completion workers (no preemption)",
		New:     func() Machine { return NewTQFCFS(NewTQParams()) },
	})
	Register(Entry{
		Name:    "shinjuku",
		Summary: "Shinjuku: centralized single queue + IPI preemption",
		New:     func() Machine { return NewShinjuku(NewShinjukuParams(sim.Micros(5))) },
		NewQ:    func(q sim.Time) Machine { return NewShinjuku(NewShinjukuParams(q)) },
	})
	Register(Entry{
		Name:    "concord",
		Summary: "Concord: centralized scheduling, cache-line-flag preemption",
		New:     func() Machine { return NewConcord(sim.Micros(5)) },
		NewQ:    func(q sim.Time) Machine { return NewConcord(q) },
	})
	Register(Entry{
		Name:    "libpreemptible",
		Summary: "LibPreemptible: per-worker UINTR preemption, ≥3µs quanta",
		New:     func() Machine { return NewLibPreemptible(NewTQParams()) },
		NewQ:    func(q sim.Time) Machine { return NewLibPreemptible(tqQ(q)) },
	})
	Register(Entry{
		Name:    "caladan-iokernel",
		Summary: "Caladan in IOKernel mode: FCFS run-to-completion, central packet core",
		New:     func() Machine { return NewCaladan(NewCaladanParams(IOKernel)) },
	})
	Register(Entry{
		Name:    "caladan-directpath",
		Summary: "Caladan in directpath mode: FCFS run-to-completion, NIC-direct workers",
		New:     func() Machine { return NewCaladan(NewCaladanParams(Directpath)) },
	})
	Register(Entry{
		Name:    "caladan-ws",
		Summary: "Caladan reporting the better of its two modes per configuration",
		New:     func() Machine { return NewBestCaladan("") },
	})
	Register(Entry{
		Name:    "ct-ps",
		Summary: "Idealized centralized processor sharing (free scheduler)",
		New:     func() Machine { return NewCentralizedPS(16, sim.Micros(2), 0) },
		NewQ:    func(q sim.Time) Machine { return NewCentralizedPS(16, q, 0) },
		NewD:    func(d string) Machine { return NewCentralizedPS(16, sim.Micros(2), 0).WithDiscipline(d) },
	})
	Register(Entry{
		Name:    "tls-jsq-msq",
		Summary: "Idealized two-level scheduling, JSQ with MSQ tie-breaking",
		New:     func() Machine { return NewIdealTLS(16, sim.Micros(1), BalanceJSQMSQ) },
		NewQ:    func(q sim.Time) Machine { return NewIdealTLS(16, q, BalanceJSQMSQ) },
		NewD:    func(d string) Machine { return tlsD(BalanceJSQMSQ, d) },
	})
	Register(Entry{
		Name:    "tls-jsq-rand",
		Summary: "Idealized two-level scheduling, JSQ with random tie-breaking",
		New:     func() Machine { return NewIdealTLS(16, sim.Micros(1), BalanceJSQRandom) },
		NewQ:    func(q sim.Time) Machine { return NewIdealTLS(16, q, BalanceJSQRandom) },
		NewD:    func(d string) Machine { return tlsD(BalanceJSQRandom, d) },
	})
	Register(Entry{
		Name:    "d-fcfs",
		Summary: "Decentralized FCFS: per-worker NIC queues, no preemption, no stealing",
		New:     func() Machine { return NewDFCFS(NewDFCFSParams()) },
		NewD:    func(d string) Machine { return NewDFCFS(dfD(d)) },
	})
	Register(Entry{
		Name:    "oracle-srpt",
		Summary: "Clairvoyant preemptive SRPT with zero overheads (UPS-style optimality baseline)",
		New:     func() Machine { return NewOracle(16) },
	})
}
