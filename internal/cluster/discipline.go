package cluster

import (
	"repro/internal/pifo"
	"repro/internal/sim"
)

// This file binds the pifo policy table to the machine kernel's job
// state: a ranker owns one Discipline for a run plus the per-class SLO
// targets EDF deadlines derive from, and computes every queue rank the
// rewired machines (TQ's worker queues, CT-PS's global queue, d-FCFS's
// per-worker NIC queues) push with. The machines keep their event
// logic; the discipline is data threaded through their params structs
// and the registry's Entry.NewD constructor.

// ranker computes pifo ranks for pooled jobs under one discipline.
type ranker struct {
	d pifo.Discipline
	// slo is the per-class sojourn target (0 = none), indexed by class;
	// EDF's deadline is arrival + slo, so with no target EDF degenerates
	// to FCFS.
	slo []sim.Time
}

// newRanker resolves the discipline's per-class deadline targets from
// the run configuration (the same resolution metrics applies for
// goodput accounting).
func newRanker(d pifo.Discipline, cfg RunConfig) ranker {
	return ranker{d: d, slo: sloTargets(cfg)}
}

// sloTargets resolves RunConfig.SLOs into a per-class target slice
// (key "*" is the wildcard; absent classes get 0 = no target), in
// workload class order. Tenant-scoped keys ("tenant:class") contain a
// colon and so never collide with class names here; they resolve
// through sloTenantTargets.
func sloTargets(cfg RunConfig) []sim.Time {
	out := make([]sim.Time, 0, len(cfg.Workload.Classes))
	for _, c := range cfg.Workload.Classes {
		target := cfg.SLOs[c.Name]
		if target == 0 {
			target = cfg.SLOs["*"]
		}
		out = append(out, target)
	}
	return out
}

// sloTenantTargets resolves RunConfig.SLOs into a tenant×class target
// table (indexed tenant*nClasses + class). Per cell the most specific
// key wins: "tenant:class", then "tenant:*", then "class", then "*".
func sloTenantTargets(cfg RunConfig) []sim.Time {
	nc := len(cfg.Workload.Classes)
	out := make([]sim.Time, 0, len(cfg.Tenants)*nc)
	for _, t := range cfg.Tenants {
		for _, c := range cfg.Workload.Classes {
			target := cfg.SLOs[t.Name+":"+c.Name]
			if target == 0 {
				target = cfg.SLOs[t.Name+":*"]
			}
			if target == 0 {
				target = cfg.SLOs[c.Name]
			}
			if target == 0 {
				target = cfg.SLOs["*"]
			}
			out = append(out, target)
		}
	}
	return out
}

// rank computes j's rank at the push instant now. The job's class
// index doubles as its PrioAge priority level (class 0 highest), and
// Remaining exposes true service only to disciplines that read it —
// using SRPT makes the machine clairvoyant, which is exactly what the
// oracle wants and what the blind defaults avoid.
//
//simvet:hotpath
func (rk *ranker) rank(j *job, now sim.Time) int64 {
	return rk.d.Rank(pifo.RankInputs{
		Now:       int64(now),
		Arrival:   int64(j.arrival),
		Remaining: int64(j.remain),
		Attained:  int64(j.service - j.remain),
		Deadline:  int64(j.arrival + rk.slo[j.class]),
		Priority:  int64(j.class),
	})
}

// parseDiscipline validates a params-level discipline name at
// construction time, so a typo panics where the machine is built, not
// mid-run. Empty means "use the machine's default".
func parseDiscipline(name string, def pifo.Discipline) pifo.Discipline {
	if name == "" {
		return def
	}
	d, err := pifo.Parse(name)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	return d
}

// disciplineName renders a machine display name with its non-default
// discipline suffix ("TQ+srpt"); the empty discipline keeps the base
// name, so default configurations report exactly as before.
func disciplineName(base, discipline string) string {
	if discipline == "" {
		return base
	}
	return base + "+" + discipline
}
