package cluster

import (
	"runtime"
	"time"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Sink is the null machine: every admitted job completes instantly and
// returns to the pool. It exercises exactly the kernel's shared arrival
// path — generator draw, pump chaining, RX gating, obs emission, pooled
// job construction — and none of any real machine's scheduling, so it
// is the instrument for measuring (and guarding) that path's cost.
// MeasureArrivalPump and cmd/tqbench run on it; it is deliberately not
// in the machine registry, since it models no system from the paper.
type Sink struct {
	// arrivals counts admitted requests across the machine's runs.
	arrivals uint64
	// haltAt, when positive, halts the engine once arrivals reaches it —
	// how MeasureArrivalPump runs an exact number of arrivals.
	haltAt uint64
}

type sinkRun struct {
	machineRun
	basePolicy
	s *Sink
}

// NewSink returns a fresh sink machine.
func NewSink() *Sink { return &Sink{} }

// Name implements Machine.
func (s *Sink) Name() string { return "sink" }

// Run implements Machine: it pumps the configured workload through the
// kernel arrival path and discards every job. The Result carries only
// arrival-side bookkeeping (Offered, Events); no completions are
// recorded because the sink does no work.
func (s *Sink) Run(cfg RunConfig) *Result {
	r := &sinkRun{s: s}
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), 0, 1)
	return r.run(s.Name(), 0)
}

// admit implements machinePolicy: count the arrival and recycle the job.
func (r *sinkRun) admit(lane int, j *job) {
	r.pool.put(j)
	r.s.arrivals++
	if r.s.haltAt > 0 && r.s.arrivals >= r.s.haltAt {
		r.eng.Halt()
	}
}

var _ Machine = (*Sink)(nil)

// PumpMeasurement reports the measured cost of the kernel arrival path.
type PumpMeasurement struct {
	// Arrivals is the number of measured arrivals.
	Arrivals int
	// NsPerOp is wall-clock nanoseconds per arrival.
	NsPerOp float64
	// AllocsPerOp is heap allocations per arrival, exact (the companion
	// truncated integer — the testing.B convention — must be 0 in steady
	// state; TestArrivalPumpSteadyStateAllocs enforces it).
	AllocsPerOp float64
}

// MeasureArrivalPump drives n arrivals through the kernel's shared
// arrival path on the sink machine and reports the steady-state cost
// per arrival. A warmup phase of n/4 arrivals first grows the job pool
// and the engine's wheel-slot storage to their high-water marks, so the
// measured window sees the path as a long run does: zero allocations.
//
// The config pins Warmup just under Duration so metrics.record never
// fires (its sample growth would be charged to the pump) and leaves
// Obs nil, matching the untraced configuration the allocation guarantee
// is stated for.
func MeasureArrivalPump(n int) PumpMeasurement {
	if n <= 0 {
		panic("cluster: MeasureArrivalPump needs n > 0")
	}
	cfg := RunConfig{
		Workload: workload.ExtremeBimodal(),
		Rate:     0.6 * workload.ExtremeBimodal().MaxLoad(16),
		// Far horizon: arrivals must keep coming until the halt counter
		// trips, never the Duration cutoff.
		Duration: 1 << 40,
		Warmup:   1<<40 - 1,
		Seed:     61,
	}
	s := NewSink()
	r := &sinkRun{s: s}
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), 0, 1)

	warm := n / 4
	if warm < 1024 {
		warm = 1024
	}
	s.haltAt = uint64(warm)
	r.pump.Start()
	r.eng.Run() // halts at the warmup count, arrivals stay queued

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //simvet:ignore host wall-clock measurement of pump cost, not sim state
	s.haltAt = uint64(warm + n)
	r.eng.Run()
	elapsed := time.Since(start) //simvet:ignore host wall-clock measurement of pump cost, not sim state
	runtime.ReadMemStats(&after)

	return PumpMeasurement{
		Arrivals:    n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}
