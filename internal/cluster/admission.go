package cluster

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// admission is the shared overload-accounting gate every machine's
// arrive path goes through. It models the bounded NIC RX stage — a
// ring that holds a fixed number of *requests*, regardless of how
// long each one takes to process — and keeps the drop half of the
// Offered/Dropped/Goodput bookkeeping so all machine models share one
// definition of what a drop is and when it counts.
//
// Lanes model independent bounded queues: TQ with multiple dispatcher
// cores has one RX ring per core; every other machine uses one lane.
// A request occupies its lane from tryAdmit until the machine calls
// release — for serial-server stages (TQ dispatcher, Shinjuku packet
// processing, Caladan IOKernel) that is when the stage picks the
// request up, so the occupancy is exactly the unprocessed backlog in
// requests.
//
// Tenant shares (workload.Tenant.Share) partition the gate's total
// capacity: a tenant with a positive share always has its reserved
// slots available, while the unreserved remainder is a common pool —
// so a noisy neighbor can exhaust the pool but never a reserved
// tenant's slice. With no shares configured the tenant path is a nil
// check and admission behaves exactly as before.
type admission struct {
	warmup  sim.Time
	limit   int // per-lane capacity in requests; <= 0 means unbounded
	pending []int
	dropped uint64 // post-warmup drops (see metrics.record for the window)

	// Tenant-share partitioning; resv is nil when no tenant reserves.
	resv     []int // per-tenant reserved slots (0 = unreserved)
	inring   []int // per-tenant occupancy, summed over lanes
	freeCap  int   // unreserved slots: capacity − Σresv
	freeUsed int   // occupancy charged to the unreserved pool
}

func newAdmission(warmup sim.Time, limit, lanes int) *admission {
	if lanes <= 0 {
		lanes = 1
	}
	return &admission{warmup: warmup, limit: limit, pending: make([]int, lanes)}
}

// shares installs per-tenant slot reservations over the gate's total
// capacity (limit × lanes). A positive share reserves
// round(share·capacity) slots, at least one; the rest form the common
// pool every tenant overflows into. No-op for unbounded gates or when
// no tenant reserves.
func (a *admission) shares(tenants []workload.Tenant) {
	if a.limit <= 0 {
		return
	}
	reserving := false
	for _, t := range tenants {
		if t.Share > 0 {
			reserving = true
			break
		}
	}
	if !reserving {
		return
	}
	capacity := a.limit * len(a.pending)
	a.resv = make([]int, len(tenants))
	a.inring = make([]int, len(tenants))
	total := 0
	for i, t := range tenants {
		if t.Share <= 0 {
			continue
		}
		n := int(t.Share*float64(capacity) + 0.5)
		if n < 1 {
			n = 1
		}
		a.resv[i] = n
		total += n
	}
	a.freeCap = capacity - total
	if a.freeCap < 0 {
		// Rounding on a tiny ring can over-reserve; the common pool
		// cannot go negative, it is just empty.
		a.freeCap = 0
	}
}

// tryAdmit reports whether the lane can accept a tenant's request
// arriving at the given time. A full lane — or, with shares installed,
// a tenant past its reservation finding the common pool exhausted —
// books a drop. Drops count only post-warmup, so the drop count shares
// the measurement window of metrics.record: a drop resolves at its
// arrival instant, and arrivals never occur after Duration, so gating
// on arrival alone applies the same [Warmup, Duration] window that
// completions get.
//
//simvet:hotpath
func (a *admission) tryAdmit(lane, tenant int, arrival sim.Time) bool {
	if a.limit <= 0 {
		return true
	}
	if a.pending[lane] >= a.limit {
		if arrival >= a.warmup {
			a.dropped++
		}
		return false
	}
	if a.resv != nil {
		switch {
		case a.inring[tenant] < a.resv[tenant]:
			// Within the tenant's reserved slice.
		case a.freeUsed < a.freeCap:
			a.freeUsed++
		default:
			if arrival >= a.warmup {
				a.dropped++
			}
			return false
		}
		a.inring[tenant]++
	}
	a.pending[lane]++
	return true
}

// release frees one slot of the lane for the given tenant: the bounded
// stage has picked the request up. Machines with unbounded admission
// never call it. A release without a matching tryAdmit is a
// machine-model bug — letting occupancy go negative would silently
// widen the RX bound for the rest of the run — so underflow panics,
// like a misregistered machine does.
//
//simvet:hotpath
func (a *admission) release(lane, tenant int) {
	if a.limit <= 0 {
		return
	}
	if a.pending[lane] <= 0 {
		panic("cluster: admission.release without matching tryAdmit (RX occupancy underflow)")
	}
	a.pending[lane]--
	if a.resv != nil {
		if a.inring[tenant] <= 0 {
			panic("cluster: admission.release tenant occupancy underflow")
		}
		if a.inring[tenant] > a.resv[tenant] {
			a.freeUsed--
		}
		a.inring[tenant]--
	}
}
