package cluster

import "repro/internal/sim"

// admission is the shared overload-accounting gate every machine's
// arrive path goes through. It models the bounded NIC RX stage — a
// ring that holds a fixed number of *requests*, regardless of how
// long each one takes to process — and keeps the drop half of the
// Offered/Dropped/Goodput bookkeeping so all machine models share one
// definition of what a drop is and when it counts.
//
// Lanes model independent bounded queues: TQ with multiple dispatcher
// cores has one RX ring per core; every other machine uses one lane.
// A request occupies its lane from tryAdmit until the machine calls
// release — for serial-server stages (TQ dispatcher, Shinjuku packet
// processing, Caladan IOKernel) that is when the stage picks the
// request up, so the occupancy is exactly the unprocessed backlog in
// requests.
type admission struct {
	warmup  sim.Time
	limit   int // per-lane capacity in requests; <= 0 means unbounded
	pending []int
	dropped uint64 // post-warmup drops (see metrics.record for the window)
}

func newAdmission(warmup sim.Time, limit, lanes int) *admission {
	if lanes <= 0 {
		lanes = 1
	}
	return &admission{warmup: warmup, limit: limit, pending: make([]int, lanes)}
}

// tryAdmit reports whether the lane can accept a request arriving at
// the given time. A full lane books a drop — only post-warmup, so the
// drop count shares the measurement window of metrics.record: a drop
// resolves at its arrival instant, and arrivals never occur after
// Duration, so gating on arrival alone applies the same
// [Warmup, Duration] window that completions get.
//
//simvet:hotpath
func (a *admission) tryAdmit(lane int, arrival sim.Time) bool {
	if a.limit <= 0 {
		return true
	}
	if a.pending[lane] >= a.limit {
		if arrival >= a.warmup {
			a.dropped++
		}
		return false
	}
	a.pending[lane]++
	return true
}

// release frees one slot of the lane: the bounded stage has picked the
// request up. Machines with unbounded admission never call it. A
// release without a matching tryAdmit is a machine-model bug — letting
// occupancy go negative would silently widen the RX bound for the rest
// of the run — so underflow panics, like a misregistered machine does.
//
//simvet:hotpath
func (a *admission) release(lane int) {
	if a.limit <= 0 {
		return
	}
	if a.pending[lane] <= 0 {
		panic("cluster: admission.release without matching tryAdmit (RX occupancy underflow)")
	}
	a.pending[lane]--
}
