package cluster

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchRunTQ is the standard sweep point used to guard the
// observability layer's tracing-off overhead: a mid-load Extreme
// Bimodal run on the default TQ machine. BenchmarkTQRunTraceOff must
// stay within noise of the pre-observability baseline recorded in
// EXPERIMENTS.md.
func benchRunTQ(b *testing.B, cfg RunConfig) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := NewTQ(NewTQParams()).Run(cfg)
		if res.Completed == 0 {
			b.Fatal("benchmark run completed nothing")
		}
	}
}

func benchConfig() RunConfig {
	w := workload.ExtremeBimodal()
	return RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 20 * sim.Millisecond,
		Warmup:   2 * sim.Millisecond,
		Seed:     1,
	}
}

// BenchmarkTQRunTraceOff is the guard benchmark: a full TQ run with no
// recorder attached. Its cost must not regress when observability is
// compiled in but disabled.
func BenchmarkTQRunTraceOff(b *testing.B) {
	benchRunTQ(b, benchConfig())
}

// BenchmarkTQRunObsOn measures the same run with an obs ring attached,
// quantifying the cost a user pays for a full timeline. The ring is
// reset between iterations so recording stays in the fast append path.
func BenchmarkTQRunObsOn(b *testing.B) {
	cfg := benchConfig()
	rec := obs.NewRing(1 << 22)
	cfg.Obs = rec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Reset()
		res := NewTQ(NewTQParams()).Run(cfg)
		if res.Completed == 0 {
			b.Fatal("benchmark run completed nothing")
		}
	}
	if rec.Truncated() {
		b.Fatal("benchmark ring truncated; grow it")
	}
}
