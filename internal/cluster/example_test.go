package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Example simulates TQ on the High Bimodal workload at 60% load and
// reports whether short jobs met a 50µs tail budget.
func Example() {
	w := workload.HighBimodal()
	tq := cluster.NewTQ(cluster.NewTQParams())
	res := tq.Run(cluster.RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 80 * sim.Millisecond,
		Warmup:   8 * sim.Millisecond,
		Seed:     1,
	})
	fmt.Printf("short jobs under 50µs p99.9: %v\n", res.P999EndToEndUs("Short") < 50)
	// Output:
	// short jobs under 50µs p99.9: true
}
