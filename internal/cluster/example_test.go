package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Example compares two registered machines on the High Bimodal
// workload at 60% load. The registry is the front door to the machine
// catalogue: cluster.Lookup resolves a stable name ("tq", "d-fcfs",
// ...) to its paper-default constructor, and cluster.Names lists every
// registered machine.
func Example() {
	w := workload.HighBimodal()
	cfg := cluster.RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 80 * sim.Millisecond,
		Warmup:   8 * sim.Millisecond,
		Seed:     1,
	}
	for _, name := range []string{"tq", "d-fcfs"} {
		entry, ok := cluster.Lookup(name)
		if !ok {
			panic("unknown machine " + name)
		}
		res := entry.New().Run(cfg)
		fmt.Printf("%s short jobs under 50µs p99.9: %v\n", res.System, res.P999EndToEndUs("Short") < 50)
	}
	// Output:
	// TQ short jobs under 50µs p99.9: true
	// d-FCFS short jobs under 50µs p99.9: false
}
