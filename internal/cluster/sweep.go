package cluster

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RatesUpTo returns n evenly spaced rates from max/n to max — the
// standard sweep grid used by the figure drivers. Degenerate inputs
// panic: n <= 0 would silently produce an empty grid (and max <= 0 a
// grid of invalid rates) that every downstream consumer — pointConfig,
// RunConfig.validate, series extraction — only rejects later, far from
// the actual mistake.
func RatesUpTo(max float64, n int) []float64 {
	if n <= 0 {
		panic("cluster: RatesUpTo needs n > 0 points")
	}
	if max <= 0 {
		panic("cluster: RatesUpTo needs a positive max rate")
	}
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = max * float64(i+1) / float64(n)
	}
	return rates
}

// pointConfig is the RunConfig for point i of a sweep rooted at seed.
// Every sweep path — sequential, parallel, speculative — builds its
// configurations here, so they all run exactly the same simulations:
// each point gets its own seed, derived from (seed, i), rather than
// sharing one seed across the curve (which would correlate the arrival
// streams of every point and make the curve's noise systematic instead
// of independent).
func pointConfig(w *workload.Workload, rates []float64, i int, dur, warm sim.Time, seed uint64) RunConfig {
	return RunConfig{
		Workload: w,
		Rate:     rates[i],
		Duration: dur,
		Warmup:   warm,
		Seed:     rng.PointSeed(seed, uint64(i)),
	}
}

// Sweep runs the machine at every rate and returns one Result per
// point, in rate order. Workload definitions are stateless, so the same
// value is shared across runs; each run constructs its own generator.
// Each point runs under its own derived seed (see pointConfig), so
// ParallelSweep with any worker count reproduces this series exactly.
func Sweep(m Machine, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64) []*Result {
	out := make([]*Result, 0, len(rates))
	for i := range rates {
		out = append(out, m.Run(pointConfig(w, rates, i, dur, warm, seed)))
	}
	return out
}

// MachineFactory builds a fresh Machine for one simulation. Sweeps that
// run points concurrently take a factory instead of a Machine value so
// that no machine state — however benign under sequential reuse — is
// shared between simulations running on different goroutines.
type MachineFactory func() Machine

// SweepPoint describes one completed sweep point, delivered to
// SweepOptions.OnPoint as the sweep progresses.
type SweepPoint struct {
	// Index is the point's position in the rate grid; Rate and Seed are
	// its offered load and derived per-point seed.
	Index int
	Rate  float64
	Seed  uint64
	// Result is the completed run's metrics.
	Result *Result
	// Wall is host wall-clock time the point's simulation took.
	Wall time.Duration
	// Done and Total count completed points (Done includes this one).
	Done, Total int
}

// EventsPerSec reports the point's simulation speed in executed
// sim-events per wall-clock second.
func (p SweepPoint) EventsPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Result.Events) / p.Wall.Seconds()
}

// SweepOptions tunes ParallelSweep.
type SweepOptions struct {
	// Workers bounds the worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// OnPoint, when non-nil, observes each completed point. Calls are
	// serialized but arrive in completion order, not rate order.
	OnPoint func(SweepPoint)
}

// ParallelSweep is Sweep over a bounded worker pool: every (rate) point
// is an independent discrete-event simulation, so the grid runs
// embarrassingly parallel. Each point gets a fresh Machine from the
// factory and its own derived seed, which makes the returned series —
// in rate order — identical to Sweep's for any worker count, including
// Workers=1.
func ParallelSweep(mf MachineFactory, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64, opt SweepOptions) []*Result {
	if len(rates) == 0 {
		// An empty grid has no points to run; return before building the
		// worker pool (workers would clamp to zero and the range over idx
		// would deadlock-free but pointlessly spin up machinery).
		return nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	out := make([]*Result, len(rates))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes OnPoint and the done counter
	done := 0
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cfg := pointConfig(w, rates, i, dur, warm, seed)
				start := time.Now() //simvet:ignore host wall-clock telemetry for sweep progress, not sim state
				res := mf().Run(cfg)
				out[i] = res
				if opt.OnPoint == nil {
					continue
				}
				mu.Lock()
				done++
				opt.OnPoint(SweepPoint{
					Index:  i,
					Rate:   cfg.Rate,
					Seed:   cfg.Seed,
					Result: res,
					//simvet:ignore host wall-clock telemetry for sweep progress, not sim state
					Wall:  time.Since(start),
					Done:  done,
					Total: len(rates),
				})
				mu.Unlock()
			}
		}()
	}
	for i := range rates {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// LatencySeries extracts a (rate, p99.9 end-to-end µs) curve for one
// class from sweep results, the y-axis of the cross-system figures.
func LatencySeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P999EndToEndUs(class))
	}
	return s
}

// SojournSeries extracts a (rate, p99.9 sojourn µs) curve for one
// class, used for intra-TQ comparisons (§5.1 uses sojourn time there).
func SojournSeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P999SojournUs(class))
	}
	return s
}

// P99SojournSeries extracts a (rate, p99 sojourn µs) curve for one
// class — the coarser-tail companion to SojournSeries, which rack
// routing comparisons plot side by side with the p99.9 curve.
func P99SojournSeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P99SojournUs(class))
	}
	return s
}

// SlowdownSeries extracts a (rate, p99.9 slowdown) curve for one class
// ("" pools all classes).
func SlowdownSeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P999Slowdown(class))
	}
	return s
}

// GoodputSeries extracts a (offered rate, goodput rps) curve from
// sweep results. Without SLO targets goodput equals throughput, so the
// curve shows where completions stop tracking offered load; with
// targets it shows where completions stop being useful.
func GoodputSeries(label string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.Goodput)
	}
	return s
}

// DropRateSeries extracts a (offered rate, drop fraction) curve from
// sweep results — the companion every past-the-knee latency curve
// needs, since survivor-only percentiles flatten exactly when the RX
// ring starts shedding load.
func DropRateSeries(label string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.DropRate)
	}
	return s
}

// MaxRateUnder scans rates in ascending order and returns the highest
// rate whose result satisfies ok, stopping at the first violation
// (latency-vs-load curves are monotone once they knee). Returns 0 if
// even the lowest rate violates. Points are seeded as in Sweep, so
// SpeculativeMaxRateUnder over the same grid finds the same knee.
func MaxRateUnder(m Machine, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64, ok func(*Result) bool) float64 {
	best := 0.0
	for i := range rates {
		r := m.Run(pointConfig(w, rates, i, dur, warm, seed))
		if !ok(r) {
			break
		}
		best = rates[i]
	}
	return best
}

// SpeculativeMaxRateUnder is the parallel variant of MaxRateUnder: it
// speculatively runs the whole grid concurrently, then scans ascending
// for the first violation. It wastes the points beyond the knee but
// turns the knee search's wall-clock from sum-of-points into
// max-of-points, which wins whenever cores outnumber the wasted tail.
// The returned rate equals MaxRateUnder's for the same grid and seed.
func SpeculativeMaxRateUnder(mf MachineFactory, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64, ok func(*Result) bool, opt SweepOptions) float64 {
	results := ParallelSweep(mf, w, rates, dur, warm, seed, opt)
	best := 0.0
	for i, r := range results {
		if !ok(r) {
			break
		}
		best = rates[i]
	}
	return best
}
