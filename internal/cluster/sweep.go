package cluster

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RatesUpTo returns n evenly spaced rates from max/n to max — the
// standard sweep grid used by the figure drivers.
func RatesUpTo(max float64, n int) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = max * float64(i+1) / float64(n)
	}
	return rates
}

// Sweep runs the machine at every rate and returns one Result per
// point, in rate order. Workload definitions are stateless, so the same
// value is shared across runs; each run constructs its own generator.
func Sweep(m Machine, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64) []*Result {
	out := make([]*Result, 0, len(rates))
	for _, rate := range rates {
		out = append(out, m.Run(RunConfig{
			Workload: w,
			Rate:     rate,
			Duration: dur,
			Warmup:   warm,
			Seed:     seed,
		}))
	}
	return out
}

// LatencySeries extracts a (rate, p99.9 end-to-end µs) curve for one
// class from sweep results, the y-axis of the cross-system figures.
func LatencySeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P999EndToEndUs(class))
	}
	return s
}

// SojournSeries extracts a (rate, p99.9 sojourn µs) curve for one
// class, used for intra-TQ comparisons (§5.1 uses sojourn time there).
func SojournSeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P999SojournUs(class))
	}
	return s
}

// SlowdownSeries extracts a (rate, p99.9 slowdown) curve for one class
// ("" pools all classes).
func SlowdownSeries(label, class string, results []*Result) stats.Series {
	s := stats.Series{Label: label}
	for _, r := range results {
		s.Append(r.Config.Rate, r.P999Slowdown(class))
	}
	return s
}

// MaxRateUnder scans rates in ascending order and returns the highest
// rate whose result satisfies ok, stopping at the first violation
// (latency-vs-load curves are monotone once they knee). Returns 0 if
// even the lowest rate violates.
func MaxRateUnder(m Machine, w *workload.Workload, rates []float64, dur, warm sim.Time, seed uint64, ok func(*Result) bool) float64 {
	best := 0.0
	for _, rate := range rates {
		r := m.Run(RunConfig{
			Workload: w,
			Rate:     rate,
			Duration: dur,
			Warmup:   warm,
			Seed:     seed,
		})
		if !ok(r) {
			break
		}
		best = rate
	}
	return best
}
