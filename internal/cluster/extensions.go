package cluster

import "repro/internal/sim"

// This file groups the variant constructors: the paper's
// discussion-section extensions and related-work baselines, beyond the
// evaluated systems, each expressed as a parameterization of one of the
// kernel-ported machines:
//
//   - least-attained-service (LAS) quantum scheduling on TQ workers —
//     the dynamic-quantum policy §3.1's probe design explicitly
//     supports;
//   - multiple dispatcher cores (§6's proposed fix for dispatcher
//     saturation);
//   - Concord [32], the concurrent centralized system that replaces
//     interrupts with a shared cache-line flag;
//   - LibPreemptible [38], preemptive user-level threading on hardware
//     user interrupts (UINTR, ≈2000-cycle delivery);
//   - the idealized overhead-free TLS machine behind the Figure 4
//     policy simulation.

// WorkerPolicy selects how a TQ worker orders its admitted jobs.
type WorkerPolicy int

// Worker quantum-scheduling policies.
const (
	// PolicyPS is processor sharing: round-robin quanta (TQ default).
	PolicyPS WorkerPolicy = iota
	// PolicyLAS runs the job with the least attained service first —
	// approximating SRPT without service-time knowledge. Forced
	// multitasking makes it practical at µs scale because the quantum
	// can stay tiny.
	PolicyLAS
)

// NewTQLAS returns a TQ machine whose workers schedule by least
// attained service instead of round-robin PS.
func NewTQLAS(p TQParams) *TQ {
	p.Policy = PolicyLAS
	return NewTQ(p).Named("TQ-LAS")
}

// NewLibPreemptible returns the LibPreemptible-style baseline of §7:
// per-worker preemption with hardware user interrupts. Workers need no
// external core (like TQ), but every preemption costs ≈2000 cycles
// (≈950ns at 2.1GHz) and quanta below 3µs are not supported, so the
// machine clamps the quantum.
func NewLibPreemptible(p TQParams) *TQ {
	p.YieldOverhead = 950 * sim.Nanosecond
	p.ProbeOverhead = 0 // no compiler instrumentation needed
	if p.Quantum < sim.Micros(3) {
		p.Quantum = sim.Micros(3)
	}
	return NewTQ(p).Named("LibPreemptible")
}

// NewConcord returns the Concord-style baseline of §7: centralized
// scheduling like Shinjuku, but preemption is signalled through a
// shared cache line the dispatcher writes and workers poll, so the
// per-preemption costs drop by an order of magnitude — while the
// dispatcher keeps its per-quantum scheduling load, which is what
// bounds its throughput (§7 reports saturation near 4Mrps).
func NewConcord(quantum sim.Time) *Shinjuku {
	p := NewShinjukuParams(quantum)
	p.IPICost = 20 * sim.Nanosecond            // cache-line write
	p.InterruptOverhead = 100 * sim.Nanosecond // flag check + coroutine swap
	p.NetCost = 150 * sim.Nanosecond
	p.SchedCost = 90 * sim.Nanosecond
	s := NewShinjuku(p)
	s.name = "Concord"
	return s
}

// NewIdealTLS returns a TQ machine stripped of every overhead, used by
// the Figure 4 policy simulation ("TLS"): JSQ dispatch with the given
// balancer, unbounded coroutines, free yields. It isolates the policy
// comparison (CT vs JSQ-PS with MSQ or random tie-breaking) from
// mechanism costs, exactly as §3.2 does.
func NewIdealTLS(workers int, quantum sim.Time, balancer BalancerKind) *TQ {
	p := TQParams{
		Workers:       workers,
		Quantum:       quantum,
		Coroutines:    1 << 20, // effectively unbounded: pure per-core PS
		YieldOverhead: 0,
		ProbeOverhead: 0,
		DispatchCost:  0,
		ParseCost:     0,
		StatsPeriod:   100 * sim.Nanosecond,
		RTT:           0,
		Balancer:      balancer,
	}
	name := "TLS-JSQ-PS"
	switch balancer {
	case BalanceJSQMSQ:
		name += "-MSQ"
	case BalanceJSQRandom:
		name += "-RAND-TIE"
	case BalanceRandom:
		name = "TLS-RAND-PS"
	case BalancePowerTwo:
		name = "TLS-P2C-PS"
	}
	return NewTQ(p).Named(name)
}
