package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/workload"
)

// allMachines builds one instance of every machine model at the given
// worker count.
func allMachines(workers int) []Machine {
	tp := NewTQParams()
	tp.Workers = workers
	sp := NewShinjukuParams(sim.Micros(5))
	sp.Workers = workers
	cpIOK := NewCaladanParams(IOKernel)
	cpIOK.Workers = workers
	cpDP := NewCaladanParams(Directpath)
	cpDP.Workers = workers
	lasP := NewTQParams()
	lasP.Workers = workers
	return []Machine{
		NewTQ(tp),
		NewTQLAS(lasP),
		NewShinjuku(sp),
		NewConcord(sim.Micros(5)),
		NewCaladan(cpIOK),
		NewCaladan(cpDP),
		NewCentralizedPS(workers, sim.Micros(2), 0),
	}
}

// TestSlowdownNeverBelowOne: no machine may report a completion faster
// than its uninstrumented service time.
func TestSlowdownNeverBelowOne(t *testing.T) {
	f := func(seed uint64) bool {
		w := workload.HighBimodal()
		cfg := RunConfig{
			Workload: w,
			Rate:     0.5 * w.MaxLoad(4),
			Duration: 15 * sim.Millisecond,
			Warmup:   sim.Millisecond,
			Seed:     seed,
		}
		for _, m := range allMachines(4) {
			res := m.Run(cfg)
			for i := range res.PerClass {
				c := &res.PerClass[i]
				if c.Count > 0 && c.Slowdown.Min() < 1 {
					t.Logf("%s class %s slowdown %v < 1", m.Name(), c.Name, c.Slowdown.Min())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestUnderloadedCompletesOffered: at 30% load every machine must
// complete essentially the offered rate within the window.
func TestUnderloadedCompletesOffered(t *testing.T) {
	w := workload.TPCC()
	rate := 0.3 * w.MaxLoad(8)
	cfg := RunConfig{
		Workload: w,
		Rate:     rate,
		Duration: 60 * sim.Millisecond,
		Warmup:   6 * sim.Millisecond,
		Seed:     2,
	}
	for _, m := range allMachines(8) {
		res := m.Run(cfg)
		if res.Throughput < 0.9*rate {
			t.Errorf("%s throughput %v below 90%% of offered %v", m.Name(), res.Throughput, rate)
		}
	}
}

// TestSingleWorkerDegeneracy: every machine works with one worker.
func TestSingleWorkerDegeneracy(t *testing.T) {
	w := workload.Exp1()
	cfg := RunConfig{
		Workload: w,
		Rate:     0.5 * w.MaxLoad(1),
		Duration: 20 * sim.Millisecond,
		Warmup:   2 * sim.Millisecond,
		Seed:     3,
	}
	for _, m := range allMachines(1) {
		res := m.Run(cfg)
		if res.Completed == 0 {
			t.Errorf("%s completed nothing with one worker", m.Name())
		}
	}
}

// TestQuantumLargerThanAnyJob: with a huge quantum, TQ degenerates to
// FCFS-per-coroutine and must still complete everything.
func TestQuantumLargerThanAnyJob(t *testing.T) {
	p := NewTQParams()
	p.Quantum = sim.Second
	w := workload.HighBimodal()
	res := NewTQ(p).Run(testCfg(w, 0.5*w.MaxLoad(16)))
	if res.Completed == 0 {
		t.Fatal("no completions with giant quantum")
	}
	// No job should ever be preempted: every job takes exactly one
	// quantum, so the achieved-interval sample stays empty.
	_, achieved := NewTQ(p).RunMeasured(testCfg(w, 0.5*w.MaxLoad(16)))
	if achieved.Len() != 0 {
		t.Fatalf("giant quantum still preempted %d times", achieved.Len())
	}
}

// TestDeterminismAcrossMachines: every machine is reproducible.
func TestDeterminismAcrossMachines(t *testing.T) {
	w := workload.RocksDB(0.005)
	cfg := testCfg(w, 0.5*w.MaxLoad(4))
	for _, mk := range []func() Machine{
		func() Machine { p := NewTQParams(); p.Workers = 4; return NewTQ(p) },
		func() Machine { p := NewShinjukuParams(sim.Micros(5)); p.Workers = 4; return NewShinjuku(p) },
		func() Machine { p := NewCaladanParams(IOKernel); p.Workers = 4; return NewCaladan(p) },
		func() Machine { return NewCentralizedPS(4, sim.Micros(2), 0) },
	} {
		a := mk().Run(cfg)
		b := mk().Run(cfg)
		if a.Completed != b.Completed {
			t.Errorf("%s not deterministic: %d vs %d completions", a.System, a.Completed, b.Completed)
		}
	}
}

// TestOverloadDoesNotWedge: machines at 3x capacity must still make
// progress and terminate.
func TestOverloadDoesNotWedge(t *testing.T) {
	w := workload.Exp1()
	cfg := RunConfig{
		Workload: w,
		Rate:     3 * w.MaxLoad(4),
		Duration: 10 * sim.Millisecond,
		Warmup:   sim.Millisecond,
		Seed:     4,
	}
	for _, m := range allMachines(4) {
		res := m.Run(cfg)
		if res.Completed == 0 {
			t.Errorf("%s made no progress under overload", m.Name())
		}
		// Sustained throughput cannot exceed capacity (with a little
		// slack for the measurement window).
		if res.Throughput > 1.15*w.MaxLoad(4) {
			t.Errorf("%s throughput %v exceeds capacity %v", m.Name(), res.Throughput, w.MaxLoad(4))
		}
	}
}

// TestTQWithOneCoroutinePerWorker: degenerates to per-worker FCFS of
// admitted jobs; still correct.
func TestTQWithOneCoroutinePerWorker(t *testing.T) {
	p := NewTQParams()
	p.Coroutines = 1
	w := workload.ExtremeBimodal()
	res := NewTQ(p).Run(testCfg(w, 0.4*w.MaxLoad(16)))
	if res.Completed == 0 {
		t.Fatal("no completions with 1 coroutine per worker")
	}
	for i := range res.PerClass {
		c := &res.PerClass[i]
		if c.Count > 0 && c.Slowdown.Min() < 1 {
			t.Fatalf("slowdown below 1 with single coroutine")
		}
	}
}

// TestZeroWarmupAllowed: Warmup == 0 is a valid configuration.
func TestZeroWarmupAllowed(t *testing.T) {
	w := workload.Exp1()
	res := NewTQ(NewTQParams()).Run(RunConfig{
		Workload: w,
		Rate:     0.3 * w.MaxLoad(16),
		Duration: 5 * sim.Millisecond,
		Warmup:   0,
		Seed:     1,
	})
	if res.Completed == 0 {
		t.Fatal("no completions with zero warmup")
	}
}
