package cluster

import (
	"fmt"

	"repro/internal/obs"
)

// TraceComparison runs the same configuration once per machine, each
// into a fresh recorder, and returns one obs.Process per machine —
// ready for obs.WriteChrome, which renders them as side-by-side
// Perfetto process tracks. Every timeline is validated before it is
// returned; cap bounds each recording (0 means obs.DefaultCap).
//
// The machines share RunConfig — same workload, rate, duration, and
// seed — so every run is reproducible and the arrival processes are
// statistically identical; differences between the tracks are
// scheduling policy, not configuration.
func TraceComparison(cfg RunConfig, cap int, machines ...Machine) ([]obs.Process, error) {
	var procs []obs.Process
	for _, m := range machines {
		rec := obs.NewRing(cap)
		c := cfg
		c.Obs = rec
		m.Run(c)
		if rec.Truncated() {
			return nil, fmt.Errorf("%s: trace truncated at %d events (%d discarded); raise the cap or shorten the run",
				m.Name(), rec.Len(), rec.Discarded())
		}
		if err := obs.Validate(rec.Events()); err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name(), err)
		}
		procs = append(procs, obs.Process{Name: m.Name(), Events: rec.Events()})
	}
	return procs, nil
}

// TraceComparisonNamed is TraceComparison over registry names: each
// name is resolved through Lookup and run with its default parameters.
// Unknown names error with the known catalogue.
func TraceComparisonNamed(cfg RunConfig, cap int, names ...string) ([]obs.Process, error) {
	var machines []Machine
	for _, n := range names {
		e, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("cluster: unknown machine %q (known: %s)", n, joinNames())
		}
		machines = append(machines, e.New())
	}
	return TraceComparison(cfg, cap, machines...)
}
