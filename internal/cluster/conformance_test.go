package cluster

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The conformance suite is registration-driven: every machine that
// enters the catalogue gets these checks for free, with no hand-written
// per-machine test. It asserts, for each registered entry, the
// invariants the kernel is supposed to guarantee by construction —
// conservation, determinism, and a grammatical obs timeline.

// conformanceConfigs exercises both regimes: a mid-load run where
// every scheduling path fires, and an overload run where the bounded
// RX rings shed load (the conservation law's interesting case).
func conformanceConfigs() map[string]RunConfig {
	hb := workload.HighBimodal()
	return map[string]RunConfig{
		"midload": {
			Workload: hb,
			Rate:     0.7 * hb.MaxLoad(16),
			Duration: 10 * sim.Millisecond,
			Warmup:   sim.Millisecond,
			Seed:     7,
		},
		"overload": {
			Workload: workload.Fixed("tiny", 100*sim.Nanosecond),
			Rate:     30e6,
			Duration: sim.Millisecond,
			Warmup:   100 * sim.Microsecond,
			Seed:     7,
		},
	}
}

// TestRegistryConformance checks the kernel invariants for every
// registered machine, in both regimes:
//
//   - the conservation law Offered == Completed + Dropped;
//   - run-twice determinism: a fresh machine on the same config
//     reproduces every number bit for bit;
//   - a Validate-clean, Conserved-clean obs timeline.
func TestRegistryConformance(t *testing.T) {
	for _, name := range Names() {
		e := MustLookup(name)
		for cfgName, cfg := range conformanceConfigs() {
			t.Run(name+"/"+cfgName, func(t *testing.T) {
				t.Parallel()
				m := e.New()
				if m.Name() == "" {
					t.Fatal("machine has empty display name")
				}
				res := m.Run(cfg)
				if res.Offered != res.Completed+res.Dropped {
					t.Errorf("conservation violated: offered %d != completed %d + dropped %d",
						res.Offered, res.Completed, res.Dropped)
				}
				again := summarize(e.New().Run(cfg))
				if !reflect.DeepEqual(summarize(res), again) {
					t.Errorf("run-twice mismatch: fresh machine produced different numbers\nfirst:  %+v\nsecond: %+v",
						summarize(res), again)
				}
			})
		}
	}
}

// TestRegistryTimelines records every registered machine's obs
// timeline on the mid-load config and checks it against the shared
// event grammar — new machines cannot ship a vocabulary the tooling
// can't parse.
func TestRegistryTimelines(t *testing.T) {
	cfg := conformanceConfigs()["midload"]
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	for _, name := range Names() {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rec := obs.NewRing(1 << 21)
			c := cfg
			c.Obs = rec
			e.New().Run(c)
			if rec.Truncated() {
				t.Fatalf("recorder truncated (%d discarded); raise the test cap", rec.Discarded())
			}
			if rec.Len() == 0 {
				t.Fatal("machine emitted no obs events")
			}
			if err := obs.Validate(rec.Events()); err != nil {
				t.Errorf("timeline grammar: %v", err)
			}
			if err := obs.Conserved(rec.Events()); err != nil {
				t.Errorf("timeline conservation: %v", err)
			}
		})
	}
}

// TestRegistryDropCores pins the drop-attribution vocabulary: a drop
// lands on the obs track of the core that owns the overflowed RX ring.
// Machines with a central bounded stage (TQ's dispatcher rings,
// Shinjuku's packet core, Caladan's IOKernel) book every drop on the
// dispatcher track; machines whose RX lanes are per-worker NIC queues
// (d-FCFS) book each drop on the owning worker's track — the kernel
// used to hard-code the dispatcher for all of them, mislabelling
// per-worker losses. Machines with unbounded gates never drop.
func TestRegistryDropCores(t *testing.T) {
	cfg := conformanceConfigs()["overload"]
	// Push hard enough that even 16 per-worker lanes each saturate
	// (d-FCFS serves ≈2.8Mrps per worker at 360ns/request).
	cfg.Rate = 80e6
	perWorkerLanes := map[string]bool{"d-fcfs": true}
	for _, name := range Names() {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rec := obs.NewRing(1 << 22)
			c := cfg
			c.Obs = rec
			res := e.New().Run(c)
			if rec.Truncated() {
				t.Fatalf("recorder truncated (%d discarded); raise the test cap", rec.Discarded())
			}
			cores := map[int32]uint64{}
			var drops uint64
			for _, ev := range rec.Events() {
				if ev.Kind == obs.Drop {
					cores[ev.Core]++
					drops++
				}
			}
			if res.Dropped == 0 {
				if drops != 0 {
					t.Fatalf("%d drop events but Result.Dropped == 0", drops)
				}
				return // unbounded gate: nothing to attribute
			}
			if drops == 0 {
				t.Fatalf("Result.Dropped == %d but no drop events recorded", res.Dropped)
			}
			if perWorkerLanes[name] {
				for core := range cores {
					if core < 0 {
						t.Errorf("per-worker-lane machine dropped on pseudo-core %d; want a worker track", core)
					}
				}
				if len(cores) < 2 {
					t.Errorf("per-worker-lane drops all landed on one core; want RSS to spread them")
				}
				return
			}
			for core, n := range cores {
				if core != obs.CoreDispatcher {
					t.Errorf("%d central-stage drops on core %d; want CoreDispatcher (%d)",
						n, core, obs.CoreDispatcher)
				}
			}
		})
	}
}

// TestRegistryNewD checks the discipline dimension: every
// discipline-parameterized constructor builds a runnable machine under
// every pifo discipline, the conservation law holds, and the display
// name carries the discipline suffix so sweeps stay distinguishable.
func TestRegistryNewD(t *testing.T) {
	cfg := conformanceConfigs()["midload"]
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	// Give EDF real deadlines to order by (without SLOs it degenerates
	// to FCFS, which the pifo package documents but this test need not
	// rely on).
	cfg.SLOs = map[string]sim.Time{"*": sim.Micros(100)}
	for _, name := range Names() {
		e := MustLookup(name)
		if e.NewD == nil {
			continue
		}
		for _, d := range pifo.Names() {
			t.Run(name+"/"+d, func(t *testing.T) {
				t.Parallel()
				m := e.NewD(d)
				if base := e.New().Name(); m.Name() == base {
					t.Errorf("disciplined machine reports the base name %q; want a +%s suffix", base, d)
				}
				res := m.Run(cfg)
				if res.Offered == 0 {
					t.Error("discipline-parameterized machine resolved no requests")
				}
				if res.Offered != res.Completed+res.Dropped {
					t.Errorf("conservation violated: offered %d != completed %d + dropped %d",
						res.Offered, res.Completed, res.Dropped)
				}
			})
		}
	}
}

// TestRegistryNewQ checks that every quantum-parameterized constructor
// builds a runnable machine.
func TestRegistryNewQ(t *testing.T) {
	cfg := conformanceConfigs()["midload"]
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	for _, name := range Names() {
		e := MustLookup(name)
		if e.NewQ == nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := e.NewQ(sim.Micros(4)).Run(cfg)
			if res.Offered == 0 {
				t.Error("quantum-parameterized machine resolved no requests")
			}
		})
	}
}
