package cluster

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testCfg returns a small, fast run configuration.
func testCfg(w *workload.Workload, rate float64) RunConfig {
	return RunConfig{
		Workload: w,
		Rate:     rate,
		Duration: 50 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
		Seed:     1,
	}
}

func TestCentralizedPSLowLoadSojournNearService(t *testing.T) {
	// At 1% load, jobs should almost never queue: p99.9 sojourn within
	// a few quanta of the service time.
	w := workload.Fixed("unit", sim.Micros(10))
	m := NewCentralizedPS(16, sim.Micros(2), 0)
	res := m.Run(testCfg(w, 0.01*w.MaxLoad(16)))
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	p999 := res.P999SojournUs("unit")
	if p999 < 10 || p999 > 12 {
		t.Fatalf("p99.9 sojourn %vµs, want close to 10µs", p999)
	}
}

func TestCentralizedPSThroughputMatchesOfferedLoad(t *testing.T) {
	w := workload.Fixed("unit", sim.Micros(5))
	m := NewCentralizedPS(16, sim.Micros(2), 0)
	rate := 0.5 * w.MaxLoad(16)
	res := m.Run(testCfg(w, rate))
	if math.Abs(res.Throughput-rate) > rate*0.05 {
		t.Fatalf("throughput %v, want about offered %v", res.Throughput, rate)
	}
}

func TestCentralizedPSPreemptionOverheadHurts(t *testing.T) {
	// With large preemption overhead and small quanta, capacity drops:
	// at 70% load the overloaded system must show far higher tail
	// slowdown.
	w := workload.Section2Bimodal()
	rate := 0.7 * w.MaxLoad(16)
	free := NewCentralizedPS(16, sim.Micros(1), 0).Run(testCfg(w, rate))
	costly := NewCentralizedPS(16, sim.Micros(1), sim.Micros(1)).Run(testCfg(w, rate))
	if costly.Throughput >= free.Throughput {
		t.Fatalf("1µs overhead did not reduce throughput: %v >= %v",
			costly.Throughput, free.Throughput)
	}
}

func TestCentralizedPSSmallQuantaHelpShortJobs(t *testing.T) {
	// Figure 1's core claim: with zero overhead, smaller quanta give
	// lower tail slowdown for the bimodal workload at high load.
	w := workload.Section2Bimodal()
	rate := 0.8 * w.MaxLoad(16)
	small := NewCentralizedPS(16, sim.Micros(1), 0).Run(testCfg(w, rate))
	large := NewCentralizedPS(16, sim.Micros(10), 0).Run(testCfg(w, rate))
	ss, ls := small.P999Slowdown("Short"), large.P999Slowdown("Short")
	if ss >= ls {
		t.Fatalf("small quanta did not improve short-job slowdown: 1µs=%v 10µs=%v", ss, ls)
	}
}

func TestTQCompletesAndConserves(t *testing.T) {
	w := workload.ExtremeBimodal()
	m := NewTQ(NewTQParams())
	res := m.Run(testCfg(w, 1e6))
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	for i := range res.PerClass {
		c := &res.PerClass[i]
		if c.Slowdown.Min() < 1 {
			t.Fatalf("class %s has slowdown < 1 (%v): sojourn below service time",
				c.Name, c.Slowdown.Min())
		}
	}
}

func TestTQDeterministicAcrossRuns(t *testing.T) {
	w := workload.HighBimodal()
	cfg := testCfg(w, 0.5*w.MaxLoad(16))
	a := NewTQ(NewTQParams()).Run(cfg)
	b := NewTQ(NewTQParams()).Run(cfg)
	if a.Completed != b.Completed {
		t.Fatalf("same seed, different completions: %d vs %d", a.Completed, b.Completed)
	}
	if a.P999SojournUs("Short") != b.P999SojournUs("Short") {
		t.Fatalf("same seed, different p99.9: %v vs %v",
			a.P999SojournUs("Short"), b.P999SojournUs("Short"))
	}
}

func TestTQSeedChangesRun(t *testing.T) {
	w := workload.HighBimodal()
	cfg := testCfg(w, 0.5*w.MaxLoad(16))
	a := NewTQ(NewTQParams()).Run(cfg)
	cfg.Seed = 2
	b := NewTQ(NewTQParams()).Run(cfg)
	if a.Completed == b.Completed && a.P999SojournUs("Short") == b.P999SojournUs("Short") {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestTQPSBeatsFCFSForShortJobs(t *testing.T) {
	// The heart of the paper: preemptive PS protects short jobs from
	// head-of-line blocking that FCFS suffers.
	w := workload.ExtremeBimodal()
	rate := 0.6 * w.MaxLoad(16)
	ps := NewTQ(NewTQParams()).Run(testCfg(w, rate))
	fcfs := NewTQFCFS(NewTQParams()).Run(testCfg(w, rate))
	p, f := ps.P999SojournUs("Short"), fcfs.P999SojournUs("Short")
	if p >= f {
		t.Fatalf("PS short-job p99.9 (%vµs) not better than FCFS (%vµs)", p, f)
	}
	if f < 100 {
		t.Fatalf("FCFS short-job p99.9 suspiciously low (%vµs): HOL blocking not modelled?", f)
	}
}

func TestTQJSQBeatsRandomBalancing(t *testing.T) {
	w := workload.RocksDB(0.005)
	rate := 0.6 * w.MaxLoad(16)
	jsq := NewTQ(NewTQParams()).Run(testCfg(w, rate))
	rnd := NewTQRand(NewTQParams()).Run(testCfg(w, rate))
	j, r := jsq.P999SojournUs("GET"), rnd.P999SojournUs("GET")
	if j >= r {
		t.Fatalf("JSQ GET p99.9 (%vµs) not better than random (%vµs)", j, r)
	}
}

func TestTQProbeOverheadReducesCapacity(t *testing.T) {
	// TQ-IC's 60% probing overhead must reduce sustainable throughput.
	w := workload.RocksDB(0.005)
	rate := 0.85 * w.MaxLoad(16)
	cfg := testCfg(w, rate)
	tq := NewTQ(NewTQParams()).Run(cfg)
	ic := NewTQIC(NewTQParams()).Run(cfg)
	// At 85% of base capacity, the IC variant (capacity scaled by
	// 1/1.6) is overloaded: completions fall behind offered load.
	if ic.Throughput >= tq.Throughput {
		t.Fatalf("IC throughput %v >= TQ %v", ic.Throughput, tq.Throughput)
	}
}

func TestTQSlowYieldHurtsAtSmallQuanta(t *testing.T) {
	w := workload.RocksDB(0.5) // preemption-heavy: 50% SCANs
	p := NewTQParams()
	p.Quantum = sim.Micros(1)
	rate := 0.75 * w.MaxLoad(16)
	base := NewTQ(p).Run(testCfg(w, rate))
	slow := NewTQSlowYield(p).Run(testCfg(w, rate))
	if slow.Throughput >= base.Throughput {
		t.Fatalf("slow yield throughput %v >= base %v", slow.Throughput, base.Throughput)
	}
}

func TestTQVariantNames(t *testing.T) {
	p := NewTQParams()
	cases := map[string]*TQ{
		"TQ":            NewTQ(p),
		"TQ-IC":         NewTQIC(p),
		"TQ-SLOW-YIELD": NewTQSlowYield(p),
		"TQ-TIMING":     NewTQTiming(p),
		"TQ-RAND":       NewTQRand(p),
		"TQ-POWER-TWO":  NewTQPowerTwo(p),
		"TQ-FCFS":       NewTQFCFS(p),
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Errorf("variant name %q, want %q", m.Name(), want)
		}
	}
}

func TestShinjukuInterruptOverheadCostsThroughput(t *testing.T) {
	// High Bimodal at high load: Shinjuku's 1µs interrupts on every
	// 5µs quantum of the 100µs jobs burn ~17% of worker capacity.
	w := workload.HighBimodal()
	rate := 0.9 * w.MaxLoad(16)
	cfg := testCfg(w, rate)
	sj := NewShinjuku(NewShinjukuParams(sim.Micros(5))).Run(cfg)
	tq := NewTQ(NewTQParams()).Run(cfg)
	if sj.Throughput >= tq.Throughput {
		t.Fatalf("Shinjuku throughput %v >= TQ %v at 90%% load", sj.Throughput, tq.Throughput)
	}
}

func TestShinjukuMeasuredQuantumInflatesUnderLoad(t *testing.T) {
	// With many workers and small quanta, the dispatcher falls behind
	// and realized preemption intervals exceed the target (Figure 16's
	// failure mode).
	w := workload.Fixed("long", sim.Millisecond)
	p := NewShinjukuParams(500 * sim.Nanosecond)
	p.Workers = 16
	m := NewShinjuku(p)
	cfg := RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 20 * sim.Millisecond,
		Warmup:   2 * sim.Millisecond,
		Seed:     1,
	}
	_, achieved := m.RunMeasured(cfg)
	if achieved.Len() == 0 {
		t.Fatal("no preemptions measured")
	}
	mean := achieved.Mean()
	if mean <= float64(p.Quantum)*1.1 {
		t.Fatalf("16 workers at 0.5µs quanta: mean achieved quantum %vns, expected >10%% over target %vns",
			mean, p.Quantum)
	}

	// A single worker must be schedulable accurately.
	p1 := NewShinjukuParams(sim.Micros(5))
	p1.Workers = 1
	cfg1 := cfg
	cfg1.Rate = 0.6 * w.MaxLoad(1)
	_, a1 := NewShinjuku(p1).RunMeasured(cfg1)
	if a1.Len() == 0 {
		t.Fatal("no preemptions measured for single worker")
	}
	if m := a1.Mean(); m > float64(p1.Quantum)*1.1 {
		t.Fatalf("single worker at 5µs quanta: mean achieved %vns exceeds 110%% of target", m)
	}
}

func TestCaladanFCFSHurtsShortJobs(t *testing.T) {
	w := workload.ExtremeBimodal()
	rate := 0.6 * w.MaxLoad(16)
	cal := NewCaladan(NewCaladanParams(IOKernel)).Run(testCfg(w, rate))
	tq := NewTQ(NewTQParams()).Run(testCfg(w, rate))
	c, q := cal.P999SojournUs("Short"), tq.P999SojournUs("Short")
	if c <= q {
		t.Fatalf("Caladan short-job p99.9 (%vµs) not worse than TQ (%vµs)", c, q)
	}
}

func TestCaladanLongJobsBenefitFromFCFS(t *testing.T) {
	// At medium load FCFS prioritizes long jobs: Caladan's long-job
	// latency beats TQ's (the paper notes this explicitly).
	w := workload.ExtremeBimodal()
	rate := 0.5 * w.MaxLoad(16)
	cal := NewCaladan(NewCaladanParams(IOKernel)).Run(testCfg(w, rate))
	tq := NewTQ(NewTQParams()).Run(testCfg(w, rate))
	c, q := cal.P999SojournUs("Long"), tq.P999SojournUs("Long")
	if c >= q {
		t.Fatalf("Caladan long-job p99.9 (%vµs) not better than TQ (%vµs) at medium load", c, q)
	}
}

func TestCaladanWorkStealingUsesIdleCores(t *testing.T) {
	// With stealing, a burst steered to one core spreads across idle
	// cores: short jobs shouldn't all wait behind the steered queue.
	// Compare against utilization: at 30% load with 16 cores, p50
	// should stay near the service time.
	w := workload.Fixed("unit", sim.Micros(10))
	m := NewCaladan(NewCaladanParams(IOKernel))
	res := m.Run(testCfg(w, 0.3*w.MaxLoad(16)))
	med := res.Class("unit").Sojourn.Median() / 1000
	if med > 12 {
		t.Fatalf("median sojourn %vµs with idle cores available, want near 10µs", med)
	}
}

func TestCaladanDirectpathAvoidsIOKernelCap(t *testing.T) {
	// Exp(1) at 16 cores has a ~14Mrps capacity, beyond the IOKernel's
	// per-packet ceiling; directpath must complete more.
	w := workload.Exp1()
	rate := 0.75 * w.MaxLoad(16)
	cfg := RunConfig{Workload: w, Rate: rate, Duration: 20 * sim.Millisecond, Warmup: 2 * sim.Millisecond, Seed: 3}
	iok := NewCaladan(NewCaladanParams(IOKernel)).Run(cfg)
	dp := NewCaladan(NewCaladanParams(Directpath)).Run(cfg)
	if dp.Throughput <= iok.Throughput {
		t.Fatalf("directpath throughput %v <= iokernel %v at 12Mrps offered", dp.Throughput, iok.Throughput)
	}
}

func TestBestCaladanPicksBetterMode(t *testing.T) {
	w := workload.Exp1()
	rate := 0.75 * w.MaxLoad(16)
	cfg := RunConfig{Workload: w, Rate: rate, Duration: 20 * sim.Millisecond, Warmup: 2 * sim.Millisecond, Seed: 3}
	best := BestCaladan(cfg, "Exp")
	if best.System != "Caladan-directpath" {
		t.Fatalf("BestCaladan picked %s for Exp(1) at high rate", best.System)
	}
}

func TestSweepShapes(t *testing.T) {
	w := workload.HighBimodal()
	rates := RatesUpTo(w.MaxLoad(16), 4)
	if len(rates) != 4 || rates[3] != w.MaxLoad(16) {
		t.Fatalf("RatesUpTo returned %v", rates)
	}
	m := NewTQ(NewTQParams())
	results := Sweep(m, w, rates[:2], 20*sim.Millisecond, 2*sim.Millisecond, 1)
	if len(results) != 2 {
		t.Fatalf("Sweep returned %d results", len(results))
	}
	s := LatencySeries("tq", "Short", results)
	if len(s.X) != 2 || s.X[0] != rates[0] {
		t.Fatalf("LatencySeries malformed: %+v", s)
	}
	if s.Y[0] <= 0 {
		t.Fatal("latency series has non-positive latency")
	}
}

func TestMaxRateUnderFindsKnee(t *testing.T) {
	// The SLO-satisfying max rate must be positive and below capacity.
	w := workload.ExtremeBimodal()
	rates := RatesUpTo(w.MaxLoad(16), 8)
	m := NewTQ(NewTQParams())
	best := MaxRateUnder(m, w, rates, 20*sim.Millisecond, 2*sim.Millisecond, 1, func(r *Result) bool {
		return r.P999EndToEndUs("Short") <= 50
	})
	if best <= 0 {
		t.Fatal("no rate satisfied the 50µs SLO")
	}
	if best >= w.MaxLoad(16) {
		t.Fatal("SLO satisfied even at full capacity (suspicious)")
	}
}

func TestRunConfigValidation(t *testing.T) {
	w := workload.Exp1()
	bad := []RunConfig{
		{Workload: nil, Rate: 1, Duration: 10, Warmup: 1},
		{Workload: w, Rate: 0, Duration: 10, Warmup: 1},
		{Workload: w, Rate: 1, Duration: 0, Warmup: 0},
		{Workload: w, Rate: 1, Duration: 10, Warmup: 10},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewTQ(NewTQParams()).Run(cfg)
		}()
	}
}

func TestTQRXQueueDropsUnderSaturation(t *testing.T) {
	// Offer ~7x the dispatcher's capacity: the RX ring must drop —
	// reported by the Result itself, not just as trace events — and
	// throughput must plateau at the dispatcher's service rate rather
	// than queueing unboundedly.
	w := workload.Fixed("tiny", 100*sim.Nanosecond)
	p := NewTQParams()
	p.Workers = 64
	p.Coroutines = 16
	rec := &trace.Recorder{}
	p.Trace = rec
	res := NewTQ(p).Run(RunConfig{
		Workload: w,
		Rate:     100e6, // dispatcher caps near 14Mrps
		Duration: 3 * sim.Millisecond,
		Warmup:   sim.Millisecond,
		Seed:     1,
	})
	if res.Dropped == 0 {
		t.Fatal("no drops reported at 7x overload")
	}
	if res.Offered != res.Completed+res.Dropped {
		t.Fatalf("conservation violated: offered %d != completed %d + dropped %d",
			res.Offered, res.Completed, res.Dropped)
	}
	if res.DropRate <= 0 || res.DropRate >= 1 {
		t.Fatalf("drop rate %v at 7x overload, want strictly inside (0,1)", res.DropRate)
	}
	cap := 1e9 / float64(p.DispatchCost)
	if res.Throughput > 1.1*cap {
		t.Fatalf("throughput %v exceeds dispatcher capacity %v", res.Throughput, cap)
	}
	if res.Throughput < 0.5*cap {
		t.Fatalf("throughput %v collapsed far below dispatcher capacity %v", res.Throughput, cap)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("trace invalid under overload: %v", err)
	}
}

func TestOverloadAccountingConservation(t *testing.T) {
	// Saturation sweep from underload to 3x capacity: every machine
	// must conserve requests at every offered load — each post-warmup
	// arrival resolved inside the window is either a completion or a
	// drop, so Offered == Completed + Dropped exactly. At least one
	// overloaded point must actually drop, so the law is exercised
	// past the knee and not vacuously on drop-free runs.
	w := workload.Exp1()
	sawDrops := false
	for _, load := range []float64{0.5, 1.5, 3.0} {
		cfg := RunConfig{
			Workload: w,
			Rate:     load * w.MaxLoad(4),
			Duration: 10 * sim.Millisecond,
			Warmup:   sim.Millisecond,
			Seed:     7,
		}
		for _, m := range allMachines(4) {
			res := m.Run(cfg)
			if res.Offered != res.Completed+res.Dropped {
				t.Errorf("%s at %gx: offered %d != completed %d + dropped %d",
					m.Name(), load, res.Offered, res.Completed, res.Dropped)
			}
			if res.DropRate < 0 || res.DropRate > 1 {
				t.Errorf("%s at %gx: drop rate %v outside [0,1]", m.Name(), load, res.DropRate)
			}
			// Without SLO targets every completion is good.
			if res.Goodput != res.Throughput {
				t.Errorf("%s at %gx: goodput %v != throughput %v with no SLOs",
					m.Name(), load, res.Goodput, res.Throughput)
			}
			if res.Dropped > 0 {
				sawDrops = true
			}
		}
	}
	if !sawDrops {
		t.Error("no machine dropped anything at 3x capacity: conservation never exercised past the knee")
	}
}

func TestSLOGoodputBelowThroughputUnderLoad(t *testing.T) {
	// A 20µs sojourn target on Extreme Bimodal: long jobs (~100µs of
	// service) can never meet it, so goodput must fall below
	// throughput, per-class Good must drop below Count, and the
	// WithSLOs wrapper must behave exactly like setting RunConfig.SLOs
	// directly.
	w := workload.ExtremeBimodal()
	slos := map[string]sim.Time{"*": sim.Micros(20)}
	cfg := testCfg(w, 0.6*w.MaxLoad(16))
	cfg.SLOs = slos
	res := NewTQ(NewTQParams()).Run(cfg)
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if res.Goodput >= res.Throughput {
		t.Fatalf("goodput %v not below throughput %v under a 20µs SLO", res.Goodput, res.Throughput)
	}
	long := res.Class("Long")
	if long.Good >= long.Count {
		t.Fatalf("long jobs met a 20µs SLO: good %d of %d", long.Good, long.Count)
	}
	short := res.Class("Short")
	if short.Good == 0 {
		t.Fatal("no short job met a 20µs SLO at moderate load")
	}
	wrapped := WithSLOs(NewTQ(NewTQParams()), slos).Run(testCfg(w, 0.6*w.MaxLoad(16)))
	if !reflect.DeepEqual(res, wrapped) {
		t.Fatal("WithSLOs differs from setting RunConfig.SLOs directly")
	}
}

func TestAdmissionBoundsRequestsNotTime(t *testing.T) {
	// The RX ring holds request descriptors: its bound must apply by
	// count, independent of any per-request processing cost.
	a := newAdmission(0, 2, 1)
	if !a.tryAdmit(0, 0, 0) || !a.tryAdmit(0, 0, 0) {
		t.Fatal("ring rejected requests below capacity")
	}
	if a.tryAdmit(0, 0, 0) {
		t.Fatal("ring admitted beyond capacity")
	}
	if a.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.dropped)
	}
	a.release(0, 0)
	if !a.tryAdmit(0, 0, 0) {
		t.Fatal("released slot not reusable")
	}

	// Pre-warmup drops shed load but stay out of the measurement
	// window, exactly like pre-warmup completions.
	b := newAdmission(10, 1, 1)
	b.tryAdmit(0, 0, 5)
	if b.tryAdmit(0, 0, 5) || b.dropped != 0 {
		t.Fatalf("pre-warmup drop counted: dropped = %d", b.dropped)
	}
	if b.tryAdmit(0, 0, 20) || b.dropped != 1 {
		t.Fatalf("post-warmup drop not counted: dropped = %d", b.dropped)
	}

	// limit <= 0 is an unbounded stage: admit everything, track nothing.
	c := newAdmission(0, 0, 1)
	for i := 0; i < 100; i++ {
		if !c.tryAdmit(0, 0, 0) {
			t.Fatal("unbounded gate rejected a request")
		}
	}
	if c.dropped != 0 || c.pending[0] != 0 {
		t.Fatalf("unbounded gate kept state: dropped=%d pending=%d", c.dropped, c.pending[0])
	}
}

func TestTQFreeDispatcherNeverBacklogs(t *testing.T) {
	// With DispatchCost == 0 the dispatcher forwards instantly, so the
	// RX ring — even a tiny one — never fills: the request-count bound
	// must not misfire on a stage with no backlog. (The old time-based
	// bound got this right only by accident, by disabling itself.)
	w := workload.Fixed("tiny", 100*sim.Nanosecond)
	p := NewTQParams()
	p.DispatchCost = 0
	p.RXQueue = 4
	p.Workers = 64
	p.Coroutines = 16
	res := NewTQ(p).Run(RunConfig{
		Workload: w,
		Rate:     50e6,
		Duration: 2 * sim.Millisecond,
		Warmup:   0,
		Seed:     1,
	})
	if res.Dropped != 0 {
		t.Fatalf("free dispatcher dropped %d requests", res.Dropped)
	}
	if res.Offered != res.Completed {
		t.Fatalf("offered %d != completed %d with no drops", res.Offered, res.Completed)
	}
}

func TestTQTraceIsValidTimeline(t *testing.T) {
	w := workload.HighBimodal()
	p := NewTQParams()
	rec := &trace.Recorder{}
	p.Trace = rec
	cfg := RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 5 * sim.Millisecond,
		Warmup:   0,
		Seed:     1,
	}
	res := NewTQ(p).Run(cfg)
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("machine produced an invalid timeline: %v", err)
	}
	// Every completion has a Finish event.
	finishes := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.Finish {
			finishes++
		}
	}
	// res.Completed counts only post-warmup in-window completions;
	// finishes covers all. With Warmup=0 they may still differ by
	// drain-phase jobs, so finish count must be at least Completed.
	if uint64(finishes) < res.Completed {
		t.Fatalf("%d finish events < %d completions", finishes, res.Completed)
	}
	// And the chrome dump is valid JSON.
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace is not valid JSON")
	}
}

func TestMachineRunTwiceMatchesFreshMachine(t *testing.T) {
	// Reusing one Machine value across Run calls must behave exactly like
	// constructing a fresh machine per run: no state may leak between
	// runs. Sweeps depended on this silently before the factory-based
	// parallel runner; this pins it down for all four machines.
	w := workload.HighBimodal()
	cfg := RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 10 * sim.Millisecond,
		Warmup:   sim.Millisecond,
		Seed:     5,
	}
	machines := []struct {
		name  string
		reuse Machine
		fresh func() Machine
	}{
		{"TQ", NewTQ(NewTQParams()), func() Machine { return NewTQ(NewTQParams()) }},
		{"Shinjuku", NewShinjuku(NewShinjukuParams(sim.Micros(5))),
			func() Machine { return NewShinjuku(NewShinjukuParams(sim.Micros(5))) }},
		{"Caladan", NewCaladan(NewCaladanParams(IOKernel)),
			func() Machine { return NewCaladan(NewCaladanParams(IOKernel)) }},
		{"CentralizedPS", NewCentralizedPS(16, sim.Micros(2), 0),
			func() Machine { return NewCentralizedPS(16, sim.Micros(2), 0) }},
	}
	for _, m := range machines {
		first := m.reuse.Run(cfg)
		second := m.reuse.Run(cfg)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: second Run on the same machine differs from the first", m.name)
		}
		if clean := m.fresh().Run(cfg); !reflect.DeepEqual(second, clean) {
			t.Errorf("%s: reused machine's Run differs from a fresh machine's", m.name)
		}
	}
}

func TestResultAccessorsOnEmptyClass(t *testing.T) {
	w := workload.ExtremeBimodal()
	// At a tiny rate over a short run, long jobs may never arrive.
	cfg := RunConfig{Workload: w, Rate: 1000, Duration: sim.Millisecond, Warmup: 0, Seed: 1}
	res := NewTQ(NewTQParams()).Run(cfg)
	if got := res.P999SojournUs("nonexistent"); got != 0 {
		t.Fatalf("unknown class latency = %v, want 0", got)
	}
	_ = res.String() // must not panic with empty classes
}
