package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The workload golden fixtures pin the default arrival path's exact
// per-seed numbers across the whole catalogue: every registry entry ×
// every Table 1 workload under open-loop Poisson arrivals. They were
// recorded immediately before the workload plane refactor (the split of
// workload.Generator into ArrivalProcess × ServiceSampler composed by
// workload.Spec), so any drift in the default path — one extra RNG
// draw, a reordered sample, a changed float — fails this test even
// though the programmable axes are new. Regenerate only for a
// deliberate semantic change:
//
//	go test ./internal/cluster -run TestGoldenWorkloadEquivalence -update
const goldenWorkloadsPath = "testdata/golden_workloads.json"

// goldenWorkloadConfig is the one fixture configuration per workload: a
// mid-load 16-core run, short enough that the full 19-entry × 6-workload
// cross stays test-suite fast.
func goldenWorkloadConfig(w *workload.Workload) RunConfig {
	return RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: 4 * sim.Millisecond,
		Warmup:   400 * sim.Microsecond,
		Seed:     0xBEEF,
	}
}

// TestGoldenWorkloadEquivalence asserts that every registry machine
// still produces bit-identical Results for default Poisson arrivals on
// every Table 1 workload — the proof that the workload plane refactor
// changed no default number anywhere in the catalogue.
func TestGoldenWorkloadEquivalence(t *testing.T) {
	got := map[string]map[string]goldenSummary{}
	for _, w := range workload.All() {
		cfg := goldenWorkloadConfig(w)
		got[w.Name] = map[string]goldenSummary{}
		for _, name := range Names() {
			got[w.Name][name] = summarize(MustLookup(name).New().Run(cfg))
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenWorkloadsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenWorkloadsPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenWorkloadsPath)
		return
	}

	buf, err := os.ReadFile(goldenWorkloadsPath)
	if err != nil {
		t.Fatalf("read fixtures (run with -update to record them): %v", err)
	}
	want := map[string]map[string]goldenSummary{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenWorkloadsPath, err)
	}

	for wName := range want {
		for key, w := range want[wName] {
			g, ok := got[wName][key]
			if !ok {
				t.Errorf("%s/%s: machine missing from registry", wName, key)
				continue
			}
			compareGolden(t, wName+"/"+key, w, g)
		}
		var missing []string
		for key := range got[wName] {
			if _, ok := want[wName][key]; !ok {
				missing = append(missing, key)
			}
		}
		sort.Strings(missing)
		for _, key := range missing {
			t.Errorf("%s/%s: no fixture recorded; rerun with -update", wName, key)
		}
	}
}
