package cluster

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// d-FCFS is the fully decentralized baseline of this literature: RSS
// spreads requests across per-worker NIC queues and each worker runs
// its own queue FCFS to completion — no central scheduler, no
// preemption, no work stealing. It is the classic foil to c-FCFS and
// PS: zero scheduling overhead, but head-of-line blocking behind long
// requests and load imbalance that nothing corrects.
//
// The machine is also this package's template for expressing a new
// system purely as kernel policies (see EXPERIMENTS.md "Adding a
// machine"): the three machinePolicy methods below are the entire
// arrival path, and the run loop is one worker callback.

// DFCFSParams configures the d-FCFS baseline.
type DFCFSParams struct {
	// Workers is the number of worker cores (paper setups: 16).
	Workers int
	// ProcCost is per-request packet processing on the worker (RX
	// descriptor handling, parse, TX) — the same work Caladan's
	// directpath mode charges workers, since d-FCFS workers likewise
	// read the NIC directly.
	ProcCost sim.Time
	// RXQueue bounds each worker's NIC queue, in requests; arrivals
	// beyond it drop at that queue even while other workers sit idle —
	// decentralization's failure mode under skew.
	RXQueue int
	// RTT is the simulated network round trip for end-to-end latency.
	RTT sim.Time
	// Discipline, when non-empty, reorders each worker's queue by a
	// pifo discipline name. The default fcfs ranks by arrival, which is
	// queue order, so the baseline stays bit-identical; srpt turns each
	// worker into non-preemptive SJF (workers still run to completion).
	Discipline string
}

// NewDFCFSParams returns defaults matching the other baselines'
// calibration.
func NewDFCFSParams() DFCFSParams {
	return DFCFSParams{
		Workers:  16,
		ProcCost: 260 * sim.Nanosecond,
		RXQueue:  256,
		RTT:      sim.Micros(8),
	}
}

// DFCFS is the decentralized-FCFS machine.
type DFCFS struct{ P DFCFSParams }

// NewDFCFS returns a d-FCFS machine.
func NewDFCFS(p DFCFSParams) *DFCFS {
	if p.Workers <= 0 {
		panic("cluster: invalid d-FCFS parameters")
	}
	if p.Discipline != "" {
		parseDiscipline(p.Discipline, pifo.FCFS) // panic on a bad name now
	}
	return &DFCFS{P: p}
}

// Name implements Machine.
func (d *DFCFS) Name() string { return disciplineName("d-FCFS", d.P.Discipline) }

type dfWorker struct {
	queue pifo.Queue[*job]
	busy  bool
}

type dfRun struct {
	machineRun
	m       *DFCFS
	rank    ranker
	workers []dfWorker
	rss     core.RSS
}

func (d *DFCFS) newRun(cfg RunConfig) *dfRun {
	return &dfRun{
		m:       d,
		rank:    newRanker(parseDiscipline(d.P.Discipline, pifo.FCFS), cfg),
		workers: make([]dfWorker, d.P.Workers),
	}
}

// Run implements Machine.
func (d *DFCFS) Run(cfg RunConfig) *Result {
	r := d.newRun(cfg)
	// One RX lane per worker: each NIC queue is its own bounded ring.
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), d.P.RXQueue, d.P.Workers)
	return r.run(d.Name(), d.P.RTT)
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode).
func (d *DFCFS) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r := d.newRun(cfg)
	r.attach(eng, cfg, r, d.P.RXQueue, d.P.Workers)
	r.bind(d.Name(), d.P.Workers, d.P.RTT)
	return r
}

// admitLane implements machinePolicy: RSS hashes the request to its
// worker's NIC queue. The lane is the worker — there is no later
// steering decision to revisit it.
func (r *dfRun) admitLane(req workload.Request) int {
	return r.rss.Steer(req.ID, len(r.workers))
}

// dropCore implements machinePolicy: the lane is a per-worker NIC
// queue, so an overflow there is that worker's loss — the timeline
// books it on the worker's track, not the (nonexistent) dispatcher's.
func (r *dfRun) dropCore(lane int) int32 { return int32(lane) }

// inflate implements machinePolicy: packet processing happens on the
// worker, as in Caladan's directpath mode.
func (r *dfRun) inflate(s sim.Time) sim.Time { return s + r.m.P.ProcCost }

// admit implements machinePolicy: the job runs immediately if its
// worker is idle, else waits in the worker's FCFS queue. A queued
// request keeps its RX-ring slot until the worker dequeues it, so
// RXQueue bounds the true per-worker backlog.
func (r *dfRun) admit(lane int, j *job) {
	r.met.emit(r.eng.Now(), obs.Dispatch, j.id, j.class, int32(lane))
	wk := &r.workers[lane]
	if wk.busy {
		wk.queue.Push(j, r.rank.rank(j, r.eng.Now()))
		return
	}
	wk.busy = true
	r.adm.release(lane, j.tenant)
	r.runJob(lane, j)
}

// runJob executes j to completion on worker w — FCFS, one quantum per
// job — then takes the queue head or goes idle.
func (r *dfRun) runJob(w int, j *job) {
	r.met.emit(r.eng.Now(), obs.QuantumStart, j.id, j.class, int32(w))
	r.eng.After(j.remain, func() {
		now := r.eng.Now()
		r.met.emit(now, obs.QuantumEnd, j.id, j.class, int32(w))
		r.met.emit(now, obs.Finish, j.id, j.class, int32(w))
		r.met.record(j, now)
		r.pool.put(j)
		wk := &r.workers[w]
		if next, _, ok := wk.queue.Pop(); ok {
			r.adm.release(w, next.tenant)
			r.runJob(w, next)
			return
		}
		wk.busy = false
	})
}

var _ Machine = (*DFCFS)(nil)
