package cluster

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	sweepDur  = 20 * sim.Millisecond
	sweepWarm = 2 * sim.Millisecond
)

func tqFactory() Machine { return NewTQ(NewTQParams()) }

func TestSweepUsesPerPointSeeds(t *testing.T) {
	w := workload.HighBimodal()
	rates := RatesUpTo(0.6*w.MaxLoad(16), 3)
	results := Sweep(NewTQ(NewTQParams()), w, rates, sweepDur, sweepWarm, 1)
	seen := map[uint64]bool{}
	for i, r := range results {
		if r.Config.Seed == 1 {
			t.Errorf("point %d runs under the raw sweep seed; want a derived seed", i)
		}
		if want := rng.PointSeed(1, uint64(i)); r.Config.Seed != want {
			t.Errorf("point %d seed %d, want PointSeed(1,%d)=%d", i, r.Config.Seed, i, want)
		}
		if seen[r.Config.Seed] {
			t.Errorf("point %d reuses another point's seed %d", i, r.Config.Seed)
		}
		seen[r.Config.Seed] = true
	}
}

func TestParallelSweepMatchesSequentialExactly(t *testing.T) {
	w := workload.HighBimodal()
	rates := RatesUpTo(0.7*w.MaxLoad(16), 4)
	seq := Sweep(NewTQ(NewTQParams()), w, rates, sweepDur, sweepWarm, 7)
	for _, workers := range []int{1, 2, 4, 0} {
		par := ParallelSweep(tqFactory, w, rates, sweepDur, sweepWarm, 7,
			SweepOptions{Workers: workers})
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Fatalf("workers=%d: point %d differs from sequential run\nseq: %v\npar: %v",
					workers, i, seq[i], par[i])
			}
		}
	}
}

func TestParallelSweepFreshMachinePerPoint(t *testing.T) {
	// The factory must be invoked once per point, so no machine state
	// can leak between points even if a Machine implementation carried
	// some.
	w := workload.HighBimodal()
	rates := RatesUpTo(0.5*w.MaxLoad(16), 3)
	built := 0
	ParallelSweep(func() Machine {
		built++
		return NewTQ(NewTQParams())
	}, w, rates, sweepDur, sweepWarm, 1, SweepOptions{Workers: 1})
	if built != len(rates) {
		t.Fatalf("factory invoked %d times for %d points", built, len(rates))
	}
}

func TestParallelSweepProgress(t *testing.T) {
	w := workload.HighBimodal()
	rates := RatesUpTo(0.5*w.MaxLoad(16), 4)
	var points []SweepPoint
	ParallelSweep(tqFactory, w, rates, sweepDur, sweepWarm, 1, SweepOptions{
		Workers: 2,
		OnPoint: func(p SweepPoint) { points = append(points, p) },
	})
	if len(points) != len(rates) {
		t.Fatalf("OnPoint fired %d times for %d points", len(points), len(rates))
	}
	seen := map[int]bool{}
	for i, p := range points {
		if p.Done != i+1 || p.Total != len(rates) {
			t.Errorf("point %d: Done/Total = %d/%d, want %d/%d", i, p.Done, p.Total, i+1, len(rates))
		}
		if p.Index < 0 || p.Index >= len(rates) || seen[p.Index] {
			t.Errorf("point %d: bad or duplicate index %d", i, p.Index)
		}
		seen[p.Index] = true
		if p.Result == nil || p.Result.Events == 0 {
			t.Errorf("point %d: missing result or zero event count", i)
		}
		if p.Wall <= 0 {
			t.Errorf("point %d: non-positive wall time %v", i, p.Wall)
		}
		if p.EventsPerSec() <= 0 {
			t.Errorf("point %d: non-positive events/sec", i)
		}
		if p.Seed != rng.PointSeed(1, uint64(p.Index)) {
			t.Errorf("point %d: seed %d not derived from index %d", i, p.Seed, p.Index)
		}
	}
}

func TestRatesUpToRejectsDegenerateInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		max  float64
		n    int
	}{
		{"zero points", 1e6, 0},
		{"negative points", 1e6, -3},
		{"zero max", 0, 4},
		{"negative max", -1e6, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("RatesUpTo(%v, %d) did not panic", tc.max, tc.n)
				}
			}()
			RatesUpTo(tc.max, tc.n)
		})
	}
}

func TestParallelSweepEmptyGrid(t *testing.T) {
	w := workload.HighBimodal()
	out := ParallelSweep(tqFactory, w, nil, sweepDur, sweepWarm, 1, SweepOptions{})
	if len(out) != 0 {
		t.Fatalf("empty grid returned %d results", len(out))
	}
}

func TestSpeculativeMaxRateUnderMatchesSequential(t *testing.T) {
	w := workload.ExtremeBimodal()
	rates := RatesUpTo(w.MaxLoad(16), 6)
	ok := func(r *Result) bool { return r.P999EndToEndUs("Short") <= 50 }
	seq := MaxRateUnder(NewTQ(NewTQParams()), w, rates, sweepDur, sweepWarm, 1, ok)
	spec := SpeculativeMaxRateUnder(tqFactory, w, rates, sweepDur, sweepWarm, 1, ok, SweepOptions{Workers: 3})
	if seq != spec {
		t.Fatalf("speculative knee %v != sequential knee %v", spec, seq)
	}
	if seq <= 0 {
		t.Fatal("no rate satisfied the SLO (grid too coarse for the test)")
	}
}

func TestBestCaladanMachineMatchesFunction(t *testing.T) {
	w := workload.Exp1()
	cfg := RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: sweepDur,
		Warmup:   sweepWarm,
		Seed:     3,
	}
	m := NewBestCaladan("Exp")
	if m.Name() != "Caladan" {
		t.Fatalf("NewBestCaladan name %q", m.Name())
	}
	if !reflect.DeepEqual(m.Run(cfg), BestCaladan(cfg, "Exp")) {
		t.Fatal("NewBestCaladan.Run differs from BestCaladan")
	}
}
