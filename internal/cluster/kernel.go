package cluster

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the machine kernel: the substrate every machine model
// runs on. A scheduling run — TQ, Shinjuku, Caladan, CentralizedPS,
// d-FCFS, or any future machine — is the same skeleton everywhere:
//
//	validate config → build engine/metrics/admission/generator →
//	pump open-loop arrivals → gate each at the RX ring →
//	hand admitted jobs to the system → drain → Result
//
// machineRun owns that skeleton once; machinePolicy is the small
// interface for the parts that actually differ per system (where an
// arriving request is steered, how its demand is inflated, and what
// the system does with an admitted job). A new machine is a run struct
// embedding machineRun plus policy methods — typically well under a
// hundred lines (see dfcfs.go for the template) — and inherits arrival
// pumping, drop bookkeeping, per-class metrics, obs emission, and the
// conservation law Offered == Completed + Dropped by construction.

// machinePolicy is the per-system half of a scheduling run. The kernel
// calls it from the arrival path; everything after admission — worker
// queues, preemption, balancing — lives in the implementing run struct
// and its own engine callbacks.
type machinePolicy interface {
	// admitLane steers an arriving request to one of the admission
	// gate's RX lanes (machines with a single bounded stage always
	// return 0; TQ returns the RSS-steered dispatcher core).
	admitLane(req workload.Request) int
	// inflate maps a request's service demand to the job's simulated
	// demand — probe-overhead inflation for TQ, per-request packet
	// processing for directpath machines, identity elsewhere.
	inflate(service sim.Time) sim.Time
	// admit takes ownership of an admitted job. The job's RX-ring slot
	// on lane stays occupied until the machine calls adm.release(lane)
	// — for serial-server stages that is when the stage picks the
	// request up; unbounded gates may release immediately or never.
	admit(lane int, j *job)
}

// basePolicy supplies the common policy defaults — single RX lane,
// uninflated demand — so most machines only implement admit.
type basePolicy struct{}

func (basePolicy) admitLane(workload.Request) int { return 0 }
func (basePolicy) inflate(s sim.Time) sim.Time    { return s }

// arrivalObserver is an optional extension of machinePolicy for
// machines that mirror the arrival path into a second recorder (TQ's
// legacy trace.Recorder). The kernel invokes the hooks just before the
// corresponding obs emission.
type arrivalObserver interface {
	observeArrive(req workload.Request)
	observeDrop(req workload.Request)
}

// machineRun is the shared state of one scheduling run. Machine run
// structs embed it and reach the engine, metrics, admission gate, and
// job pool through the embedded fields, exactly as they did when each
// machine carried its own copy of this skeleton.
type machineRun struct {
	eng  *sim.Engine
	cfg  RunConfig
	met  *metrics
	adm  *admission
	pool jobPool
	gen  *workload.Generator

	pol machinePolicy
	arr arrivalObserver // non-nil iff pol implements arrivalObserver

	// nextReq stages the one in-flight arrival for pumpFn. The pump is
	// a chain — each arrival schedules the next — so a single slot and
	// a single reused closure keep the arrival path allocation-free: a
	// fresh `func() { arrive(req) }` per request was the pump's one
	// steady-state allocation (see TestArrivalPumpSteadyStateAllocs).
	nextReq workload.Request
	pumpFn  func()
}

// init assembles the substrate. The caller constructs the workload
// generator itself (and any machine RNG) so the per-machine RNG draw
// order — which fixes the whole trajectory — is explicit in the
// machine's code, not hidden in the kernel. rxLimit <= 0 models an
// unbounded RX stage; lanes is the number of independent RX rings.
func (k *machineRun) init(cfg RunConfig, pol machinePolicy, gen *workload.Generator, rxLimit, lanes int) {
	cfg.validate()
	k.eng = sim.New()
	k.cfg = cfg
	k.met = newMetrics(cfg)
	k.adm = k.met.admission(rxLimit, lanes)
	k.gen = gen
	k.pol = pol
	k.arr, _ = pol.(arrivalObserver)
	k.pumpFn = func() { k.arrive(k.nextReq) }
}

// run drives the simulation: prime the arrival pump, execute to
// drain, and collect the Result.
func (k *machineRun) run(system string, rtt sim.Time) *Result {
	k.scheduleNextArrival()
	k.eng.Run()
	res := k.met.result(system, rtt)
	res.Events = k.eng.Executed()
	return res
}

// scheduleNextArrival pulls the next request from the open-loop
// generator and schedules its arrival; requests stop arriving at
// Duration but in-flight jobs drain to completion. This is the one
// arrival pump shared by every machine model. The request is staged in
// nextReq and delivered by the run's single pump closure, so pumping
// allocates nothing per arrival.
func (k *machineRun) scheduleNextArrival() {
	req := k.gen.Next()
	if req.Arrival > k.cfg.Duration {
		return
	}
	k.nextReq = req
	k.eng.At(req.Arrival, k.pumpFn)
}

// arrive models the request hitting the NIC RX stage: chain the pump,
// steer to an RX lane, gate at the bounded ring (a full ring drops the
// packet and books it), build the pooled job, and hand it to the
// machine's policy. req is a copy of the staged request: chaining the
// pump overwrites nextReq before the rest of the path reads req.
func (k *machineRun) arrive(req workload.Request) {
	k.scheduleNextArrival()
	lane := k.pol.admitLane(req)
	if k.arr != nil {
		k.arr.observeArrive(req)
	}
	k.met.emit(req.Arrival, obs.Arrive, req.ID, req.Class, obs.CoreLoadgen)
	// The RX ring bounds the stage's backlog in requests — a ring holds
	// descriptors, not time — so the bound applies even when the stage's
	// per-request cost is zero. The request occupies its slot until the
	// machine releases it.
	if !k.adm.tryAdmit(lane, req.Arrival) {
		if k.arr != nil {
			k.arr.observeDrop(req)
		}
		k.met.emit(req.Arrival, obs.Drop, req.ID, req.Class, obs.CoreDispatcher)
		return
	}
	j := k.pool.get()
	j.id = req.ID
	j.class = req.Class
	j.arrival = req.Arrival
	j.base = req.Service
	j.service = k.pol.inflate(req.Service)
	j.remain = j.service
	k.pol.admit(lane, j)
}
