package cluster

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the machine kernel: the substrate every machine model
// runs on. A scheduling run — TQ, Shinjuku, Caladan, CentralizedPS,
// d-FCFS, or any future machine — is the same skeleton everywhere:
//
//	validate config → build engine/metrics/admission/generator →
//	pump open-loop arrivals → gate each at the RX ring →
//	hand admitted jobs to the system → drain → Result
//
// machineRun owns that skeleton once; machinePolicy is the small
// interface for the parts that actually differ per system (where an
// arriving request is steered, how its demand is inflated, and what
// the system does with an admitted job). A new machine is a run struct
// embedding machineRun plus policy methods — typically well under a
// hundred lines (see dfcfs.go for the template) — and inherits arrival
// pumping, drop bookkeeping, per-class metrics, obs emission, and the
// conservation law Offered == Completed + Dropped by construction.
//
// The kernel has two front doors. init binds a standalone run: the
// machine owns its engine and generator, and run() drives the
// simulation to a Result — the Machine.Run path. attach instead binds
// the run to an engine owned by an embedding layer (the rack fleet in
// internal/rack), which pumps a shared arrival stream itself and
// delivers this machine's slice of it through Inject; see node.go.

// machinePolicy is the per-system half of a scheduling run. The kernel
// calls it from the arrival path; everything after admission — worker
// queues, preemption, balancing — lives in the implementing run struct
// and its own engine callbacks.
type machinePolicy interface {
	// admitLane steers an arriving request to one of the admission
	// gate's RX lanes (machines with a single bounded stage always
	// return 0; TQ returns the RSS-steered dispatcher core).
	admitLane(req workload.Request) int
	// dropCore names the obs track a drop at the given lane lands on.
	// Machines whose RX lanes are per-worker NIC queues (d-FCFS) return
	// the worker core; machines with a central bounded stage return
	// obs.CoreDispatcher. The kernel books every drop through this, so
	// a timeline attributes the loss to the ring that actually overflowed.
	dropCore(lane int) int32
	// inflate maps a request's service demand to the job's simulated
	// demand — probe-overhead inflation for TQ, per-request packet
	// processing for directpath machines, identity elsewhere.
	inflate(service sim.Time) sim.Time
	// admit takes ownership of an admitted job. The job's RX-ring slot
	// on lane stays occupied until the machine calls
	// adm.release(lane, j.tenant) — for serial-server stages that is
	// when the stage picks the request up; unbounded gates may release
	// immediately or never.
	admit(lane int, j *job)
}

// basePolicy supplies the common policy defaults — single RX lane,
// dispatcher-attributed drops, uninflated demand — so most machines
// only implement admit.
type basePolicy struct{}

func (basePolicy) admitLane(workload.Request) int { return 0 }
func (basePolicy) dropCore(int) int32             { return obs.CoreDispatcher }
func (basePolicy) inflate(s sim.Time) sim.Time    { return s }

// arrivalObserver is an optional extension of machinePolicy for
// machines that mirror the arrival path into a second recorder (TQ's
// legacy trace.Recorder). The kernel invokes the hooks just before the
// corresponding obs emission.
type arrivalObserver interface {
	observeArrive(req workload.Request)
	observeDrop(req workload.Request)
}

// Pump drives one arrival stream: it pulls requests from a composed
// workload.Stream and delivers each at its arrival instant, until the
// first arrival past the horizon. The pump is a chain — each delivery
// schedules the next — with a single staged request and one reused
// closure, so pumping allocates nothing per arrival (a fresh
// `func() { deliver(req) }` per request was the pump's one
// steady-state allocation; see TestArrivalPumpSteadyStateAllocs).
//
// Open-loop streams never block; a closed-loop stream can run out of
// pending arrivals (every user waiting on an in-flight request), in
// which case the pump idles until Done reports a retirement that
// unblocked the stream.
//
// Every standalone machine run pumps through this type, and so does
// the rack fleet (internal/rack), whose deliver routes each request to
// one machine node — the one arrival pump shared by every layer.
type Pump struct {
	eng     *sim.Engine
	stream  *workload.Stream
	horizon sim.Time
	deliver func(workload.Request)
	// next stages the one in-flight arrival for fn.
	next workload.Request
	fn   func()
	// idle marks a blocked closed-loop stream awaiting feedback.
	idle bool
}

// NewPump returns a pump feeding deliver from stream on eng. Requests
// stop arriving at the horizon, but events already in the engine (jobs
// in flight) still drain. Start schedules the first arrival.
func NewPump(eng *sim.Engine, stream *workload.Stream, horizon sim.Time, deliver func(workload.Request)) *Pump {
	p := &Pump{eng: eng, stream: stream, horizon: horizon, deliver: deliver}
	p.fn = func() {
		// Copy the staged request first: chaining the next arrival
		// overwrites the stage before deliver runs.
		req := p.next
		p.Start()
		p.deliver(req)
	}
	return p
}

// Start schedules the next arrival (the first, when called from
// outside the chain). Requests past the horizon end the stream; a
// blocked closed-loop stream parks the pump until Done.
//
//simvet:hotpath
func (p *Pump) Start() {
	req, ok := p.stream.Next()
	if !ok {
		p.idle = true
		return
	}
	if req.Arrival > p.horizon {
		return
	}
	p.next = req
	p.eng.At(req.Arrival, p.fn)
}

// Done informs the pump's stream that a request retired (completed or
// dropped) at instant t — the feedback edge closed-loop arrival
// processes need. If the stream was blocked and now has an arrival
// pending, the pump resumes the chain. Open-loop streams make this a
// single boolean check.
//
//simvet:hotpath
func (p *Pump) Done(t sim.Time) {
	if p.stream.Done(t) && p.idle {
		p.idle = false
		p.Start()
	}
}

// ClosedLoop reports whether the pump's stream needs retirement
// feedback to make progress.
func (p *Pump) ClosedLoop() bool { return p.stream.ClosedLoop() }

// machineRun is the shared state of one scheduling run. Machine run
// structs embed it and reach the engine, metrics, admission gate, and
// job pool through the embedded fields, exactly as they did when each
// machine carried its own copy of this skeleton.
type machineRun struct {
	eng  *sim.Engine
	cfg  RunConfig
	met  *metrics
	adm  *admission
	pool jobPool

	pol machinePolicy
	arr arrivalObserver // non-nil iff pol implements arrivalObserver

	// pump is the run's arrival source in standalone mode; nil for an
	// attached node, whose embedding layer pumps a shared stream.
	pump *Pump

	// onDrop, when non-nil, observes the class of every admission drop
	// (Node.OnDrop) — the retirement feed for routers tracking placed
	// work.
	onDrop func(workload.Class)

	// feedback marks a closed-loop standalone run: every retirement
	// (completion via the job pool, drop via inject) is reported to the
	// pump so blocked users can issue their next request.
	feedback bool

	// system, workers, and rtt describe the machine for Result
	// collection; set by init/bind.
	system  string
	workers int
	rtt     sim.Time
}

// attach assembles the substrate on an externally owned engine: the
// node form of a run, used by embedding layers (the rack fleet). The
// node has no generator and no pump — arrivals come from the embedder
// through inject — but gets the full admission, metrics, and obs
// bookkeeping of a standalone run. rxLimit <= 0 models an unbounded RX
// stage; lanes is the number of independent RX rings.
func (k *machineRun) attach(eng *sim.Engine, cfg RunConfig, pol machinePolicy, rxLimit, lanes int) {
	cfg.validate()
	k.eng = eng
	k.cfg = cfg
	k.met = newMetrics(cfg)
	k.adm = k.met.admission(rxLimit, lanes)
	k.pol = pol
	k.arr, _ = pol.(arrivalObserver)
}

// init assembles the substrate for a standalone run: attach on a fresh
// engine, plus the machine's own arrival pump. The caller materializes
// the stream itself — via cfg.Stream, handing it the RNG stream of its
// choice — so the per-machine RNG draw order, which fixes the whole
// trajectory, is explicit in the machine's code, not hidden in the
// kernel. For a closed-loop stream, init also wires the retirement
// feedback: completions report through the job pool's return hook,
// drops through inject.
func (k *machineRun) init(cfg RunConfig, pol machinePolicy, stream *workload.Stream, rxLimit, lanes int) {
	k.attach(sim.New(), cfg, pol, rxLimit, lanes)
	k.pump = NewPump(k.eng, stream, cfg.Duration, k.inject)
	if stream.ClosedLoop() {
		k.feedback = true
		prev := k.pool.onPut
		k.pool.onPut = func(j *job) {
			if prev != nil {
				prev(j)
			}
			k.pump.Done(k.eng.Now())
		}
	}
}

// bind records the machine identity a node reports through Collect —
// the display name, worker-core count, and modelled network RTT.
func (k *machineRun) bind(system string, workers int, rtt sim.Time) {
	k.system = system
	k.workers = workers
	k.rtt = rtt
}

// run drives a standalone simulation: prime the arrival pump, execute
// to drain, and collect the Result.
func (k *machineRun) run(system string, rtt sim.Time) *Result {
	k.bind(system, k.workers, rtt)
	k.pump.Start()
	k.eng.Run()
	res := k.met.result(system, rtt)
	res.Events = k.eng.Executed()
	return res
}

// inject models the request hitting the NIC RX stage: steer to an RX
// lane, gate at the bounded ring (a full ring drops the packet and
// books it, attributed to the lane's core), build the pooled job, and
// hand it to the machine's policy. Standalone runs reach it through
// the pump; attached nodes through Inject.
//
//simvet:hotpath
func (k *machineRun) inject(req workload.Request) {
	lane := k.pol.admitLane(req)
	if k.arr != nil {
		k.arr.observeArrive(req)
	}
	k.met.emit(req.Arrival, obs.Arrive, req.ID, req.Class, obs.CoreLoadgen)
	// The RX ring bounds the stage's backlog in requests — a ring holds
	// descriptors, not time — so the bound applies even when the stage's
	// per-request cost is zero. The request occupies its slot until the
	// machine releases it.
	if !k.adm.tryAdmit(lane, req.Tenant, req.Arrival) {
		if k.arr != nil {
			k.arr.observeDrop(req)
		}
		k.met.emit(req.Arrival, obs.Drop, req.ID, req.Class, k.pol.dropCore(lane))
		k.met.tenantDrop(req)
		if k.onDrop != nil {
			k.onDrop(req.Class)
		}
		if k.feedback {
			// A drop retires the request too: the closed-loop user saw a
			// rejection and moves on to its think time.
			k.pump.Done(req.Arrival)
		}
		return
	}
	j := k.pool.get()
	j.id = req.ID
	j.class = req.Class
	j.tenant = req.Tenant
	j.arrival = req.Arrival
	j.base = req.Service
	j.service = k.pol.inflate(req.Service)
	j.remain = j.service
	k.pol.admit(lane, j)
}
