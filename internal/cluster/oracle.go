package cluster

import (
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Oracle is the UPS-style clairvoyant baseline (registry name
// "oracle-srpt"): following Universal Packet Scheduling's methodology
// of comparing practical schedulers against an omniscient replay, it
// reads every job's true service time from the generator and runs
// preemptive shortest-remaining-processing-time with zero mechanism
// overheads — no dispatch cost, no probe inflation, no quantum
// granularity, no bounded RX ring, instant preemption. Nothing a blind
// scheduler can build beats it on mean sojourn, and in practice it
// lower-bounds the tails too, so every registry machine's distance
// from it is its optimality gap (experiments.OptimalityGapTable): TQ's
// headline claim is that blind tiny-quanta scheduling closes most of
// that gap.
//
// Deliberate rule break: the machines are otherwise forbidden from
// reading workload.Request.Service for scheduling; the oracle's entire
// point is to violate that and show what the knowledge is worth.
type Oracle struct {
	// Workers is the number of serving cores (paper setups: 16).
	Workers int
}

// NewOracle returns the clairvoyant SRPT machine.
func NewOracle(workers int) *Oracle {
	if workers <= 0 {
		panic("cluster: Oracle needs at least one worker")
	}
	return &Oracle{Workers: workers}
}

// Name implements Machine.
func (o *Oracle) Name() string { return "Oracle-SRPT" }

// oracleCore is one serving core's state. gen is a generation counter
// guarding the pending completion callback: the engine has no event
// cancellation, so a preemption bumps gen and the stale callback
// no-ops when it fires.
type oracleCore struct {
	j          *job
	sliceStart sim.Time // when j last mounted; remaining = j.remain - (now - sliceStart)
	gen        uint64
}

type oracleRun struct {
	machineRun
	basePolicy
	m     *Oracle
	rank  ranker
	queue pifo.Queue[*job] // preempted and not-yet-started jobs, SRPT order
	cores []oracleCore
}

func (o *Oracle) newRun(cfg RunConfig) *oracleRun {
	return &oracleRun{
		m:     o,
		rank:  newRanker(pifo.SRPT, cfg),
		cores: make([]oracleCore, o.Workers),
	}
}

// Run implements Machine.
func (o *Oracle) Run(cfg RunConfig) *Result {
	r := o.newRun(cfg)
	// The oracle has no bounded RX stage (limit 0): an optimality
	// baseline that shed load would bound nothing.
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), 0, 1)
	return r.run(o.Name(), 0)
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode).
func (o *Oracle) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r := o.newRun(cfg)
	r.attach(eng, cfg, r, 0, 1)
	r.bind(o.Name(), o.Workers, 0)
	return r
}

// admit implements machinePolicy: mount on an idle core if one exists;
// otherwise preempt the core holding the most remaining work if the
// newcomer has strictly less, else queue by remaining service. This is
// exactly global preemptive SRPT: at every instant the Workers jobs
// with the least remaining work are running.
func (r *oracleRun) admit(_ int, j *job) {
	now := r.eng.Now()
	worst, worstRem := -1, sim.Time(0)
	for i := range r.cores {
		c := &r.cores[i]
		if c.j == nil {
			r.start(j, i)
			return
		}
		if rem := c.j.remain - (now - c.sliceStart); rem > worstRem {
			worst, worstRem = i, rem
		}
	}
	if j.remain < worstRem {
		r.preempt(worst, now)
		r.start(j, worst)
		return
	}
	r.queue.Push(j, r.rank.rank(j, now))
}

// preempt forces the victim core's job off mid-slice: settle its
// remaining work, invalidate the pending completion callback, and
// requeue it at its new SRPT rank.
func (r *oracleRun) preempt(core int, now sim.Time) {
	c := &r.cores[core]
	v := c.j
	v.remain -= now - c.sliceStart
	c.gen++
	c.j = nil
	r.met.emit(now, obs.QuantumEnd, v.id, v.class, int32(core))
	r.met.emit(now, obs.Preempt, v.id, v.class, int32(core))
	r.queue.Push(v, r.rank.rank(v, now))
}

// start mounts j on an idle core and schedules its completion. The
// slice runs j to its full remaining demand; if a shorter job preempts
// first, the generation check discards the stale callback.
func (r *oracleRun) start(j *job, core int) {
	now := r.eng.Now()
	c := &r.cores[core]
	c.j = j
	c.sliceStart = now
	c.gen++
	gen := c.gen
	r.met.emit(now, obs.Dispatch, j.id, j.class, int32(core))
	r.met.emit(now, obs.QuantumStart, j.id, j.class, int32(core))
	r.eng.After(j.remain, func() {
		if r.cores[core].gen != gen {
			return // preempted mid-slice; the job was requeued
		}
		r.complete(core)
	})
}

// complete retires the core's finished job and mounts the next-shortest
// queued one.
func (r *oracleRun) complete(core int) {
	now := r.eng.Now()
	c := &r.cores[core]
	j := c.j
	j.remain = 0
	c.j = nil
	r.met.emit(now, obs.QuantumEnd, j.id, j.class, int32(core))
	r.met.emit(now, obs.Finish, j.id, j.class, int32(core))
	r.met.record(j, now)
	r.pool.put(j)
	if next, _, ok := r.queue.Pop(); ok {
		r.start(next, core)
	}
}

var _ Machine = (*Oracle)(nil)
