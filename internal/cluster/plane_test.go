package cluster

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// This file extends the conformance suite across the workload plane's
// new axes: every arrival process crossed with one machine from each
// model family, plus the multi-tenant accounting and admission-share
// invariants.

// familyMachines picks one registry entry per machine family, so the
// arrival-process cross stays affordable while still touching every
// kernel policy shape (TQ's RSS lanes, Shinjuku's serial stage,
// Caladan's packet core, free-scheduler PS, per-worker d-FCFS lanes,
// and the clairvoyant oracle).
var familyMachines = []string{
	"tq", "shinjuku", "caladan-iokernel", "ct-ps", "d-fcfs", "oracle-srpt",
}

var arrivalSpecs = []string{
	"poisson",
	"mmpp:burst=10,duty=0.1,cycle=1ms",
	"diurnal:amp=0.8,period=1ms",
	"closed:users=64,think=10us",
}

// TestArrivalProcessConformance crosses every arrival process with one
// machine per family and asserts the kernel invariants hold off the
// Poisson default path too: conservation, run-twice determinism, and —
// for the closed-loop process — actual progress (the feedback edge
// keeps the pump alive instead of deadlocking after the first window).
func TestArrivalProcessConformance(t *testing.T) {
	hb := workload.HighBimodal()
	for _, arrivals := range arrivalSpecs {
		for _, name := range familyMachines {
			e := MustLookup(name)
			t.Run(arrivals+"/"+name, func(t *testing.T) {
				t.Parallel()
				cfg := RunConfig{
					Workload: hb,
					Rate:     0.7 * hb.MaxLoad(16),
					Duration: 5 * sim.Millisecond,
					Warmup:   sim.Millisecond,
					Seed:     31,
					Arrivals: arrivals,
				}
				res := e.New().Run(cfg)
				if res.Offered == 0 {
					t.Fatal("no requests resolved")
				}
				if res.Offered != res.Completed+res.Dropped {
					t.Errorf("conservation violated: offered %d != completed %d + dropped %d",
						res.Offered, res.Completed, res.Dropped)
				}
				again := summarize(e.New().Run(cfg))
				if !reflect.DeepEqual(summarize(res), again) {
					t.Errorf("run-twice mismatch\nfirst:  %+v\nsecond: %+v", summarize(res), again)
				}
			})
		}
	}
}

// TestClosedLoopMakesProgress pins the closed-loop feedback edge
// quantitatively: with N users each cycling request → retire → think,
// a machine that never reported retirements back to the stream would
// resolve at most N requests. Demand far more.
func TestClosedLoopMakesProgress(t *testing.T) {
	const users = 32
	cfg := RunConfig{
		Workload: workload.TPCC(),
		Rate:     1e6, // informational for closed loops; think time governs
		Duration: 5 * sim.Millisecond,
		Warmup:   sim.Millisecond,
		Seed:     41,
		Arrivals: "closed:users=32,think=20us",
	}
	for _, name := range familyMachines {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := e.New().Run(cfg)
			if res.Offered <= users {
				t.Fatalf("closed loop stalled: %d requests resolved with %d users — retirement feedback is not reaching the stream",
					res.Offered, users)
			}
		})
	}
}

// tenantConfig is the shared two-tenant scenario: a big tenant
// generating 90%% of the load and a small one generating 10%%.
func tenantConfig(shares bool) RunConfig {
	tenants := []workload.Tenant{
		{Name: "big", Ratio: 0.9},
		{Name: "small", Ratio: 0.1},
	}
	if shares {
		tenants[0].Share = 0.5
		tenants[1].Share = 0.25
	}
	hb := workload.HighBimodal()
	return RunConfig{
		Workload: hb,
		Rate:     0.8 * hb.MaxLoad(16),
		Duration: 5 * sim.Millisecond,
		Warmup:   sim.Millisecond,
		Seed:     43,
		Tenants:  tenants,
	}
}

// TestTenantConservation checks the per-tenant ledger on every machine
// family: each tenant individually obeys Offered == Completed +
// Dropped, and the tenant ledgers sum to the run totals — no request
// is double-booked or lost between tenants.
func TestTenantConservation(t *testing.T) {
	cfg := tenantConfig(false)
	for _, name := range familyMachines {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := e.New().Run(cfg)
			if len(res.PerTenant) != 2 {
				t.Fatalf("PerTenant has %d entries, want 2", len(res.PerTenant))
			}
			var off, comp, drop uint64
			for _, tm := range res.PerTenant {
				if tm.Offered != tm.Completed+tm.Dropped {
					t.Errorf("tenant %s: offered %d != completed %d + dropped %d",
						tm.Name, tm.Offered, tm.Completed, tm.Dropped)
				}
				off += tm.Offered
				comp += tm.Completed
				drop += tm.Dropped
			}
			if off != res.Offered || comp != res.Completed || drop != res.Dropped {
				t.Errorf("tenant ledgers sum to (%d,%d,%d), run totals are (%d,%d,%d)",
					off, comp, drop, res.Offered, res.Completed, res.Dropped)
			}
			// The 90/10 split must show up in the ledger.
			frac := float64(res.PerTenant[1].Offered) / float64(res.Offered)
			if frac < 0.07 || frac > 0.13 {
				t.Errorf("small tenant offered fraction %.3f, want ≈0.10", frac)
			}
		})
	}
}

// TestTenantSharesProtectSmallTenant drives a machine with a bounded
// RX stage into overload and checks that admission shares do what they
// claim: with a reserved slice, the small tenant's drop rate stays far
// below the noisy neighbour's; without shares, the ring is first come
// first served and the small tenant drops at roughly the common rate.
func TestTenantSharesProtectSmallTenant(t *testing.T) {
	overloaded := func(shares bool) RunConfig {
		cfg := tenantConfig(shares)
		cfg.Workload = workload.Fixed("tiny", 100*sim.Nanosecond)
		cfg.Rate = 30e6
		cfg.Duration = sim.Millisecond
		cfg.Warmup = 100 * sim.Microsecond
		return cfg
	}
	run := func(shares bool) (small, big TenantMetrics) {
		res := MustLookup("shinjuku").New().Run(overloaded(shares))
		if res.Dropped == 0 {
			t.Fatal("overload config did not overflow the RX ring")
		}
		return res.PerTenant[1], res.PerTenant[0]
	}
	smallWith, bigWith := run(true)
	smallWithout, _ := run(false)
	// Under 10x overload every tenant still drops most of its offered
	// load — the ring drains at system capacity regardless — so the
	// protection shows up as admitted throughput, not a low drop rate:
	// the reserved slice must at least double what the small tenant gets
	// through versus fighting the noisy neighbour for every slot.
	if smallWith.Completed < 2*smallWithout.Completed {
		t.Errorf("reserved share did not protect the small tenant: %d completed with shares, %d without",
			smallWith.Completed, smallWithout.Completed)
	}
	dropRate := func(m TenantMetrics) float64 { return float64(m.Dropped) / float64(m.Offered) }
	if dropRate(bigWith) <= dropRate(smallWith) {
		t.Errorf("noisy neighbour dropped less (%.3f) than the protected tenant (%.3f)",
			dropRate(bigWith), dropRate(smallWith))
	}
}

// TestTenantSLOPrecedence pins the SLO resolution order for the
// tenant-aware table: "tenant:class" beats "tenant:*" beats "class"
// beats "*".
func TestTenantSLOPrecedence(t *testing.T) {
	cfg := tenantConfig(false)
	cfg.SLOs = map[string]sim.Time{
		"*":              sim.Micros(400),
		"Payment":        sim.Micros(300),
		"small:*":        sim.Micros(200),
		"small:NewOrder": sim.Micros(100),
	}
	cfg.Workload = workload.TPCC()
	cfg.validate()
	tbl := sloTenantTargets(cfg)
	nc := len(cfg.Workload.Classes)
	classIdx := func(name string) int {
		for i, c := range cfg.Workload.Classes {
			if c.Name == name {
				return i
			}
		}
		t.Fatalf("class %s not in workload", name)
		return -1
	}
	no, pay := classIdx("NewOrder"), classIdx("Payment")
	// Tenant 0 ("big") has no tenant-scoped keys: class then wildcard.
	if got := tbl[0*nc+pay]; got != sim.Micros(300) {
		t.Errorf("big/Payment SLO %v, want class key 300µs", got)
	}
	if got := tbl[0*nc+no]; got != sim.Micros(400) {
		t.Errorf("big/NewOrder SLO %v, want wildcard 400µs", got)
	}
	// Tenant 1 ("small"): exact tenant:class, then tenant:*.
	if got := tbl[1*nc+no]; got != sim.Micros(100) {
		t.Errorf("small/NewOrder SLO %v, want tenant:class key 100µs", got)
	}
	if got := tbl[1*nc+pay]; got != sim.Micros(200) {
		t.Errorf("small/Payment SLO %v, want tenant:* key 200µs (beats class key)", got)
	}
}

// TestWithArrivals checks the sweep wrapper: it overrides the arrival
// process and tenants without touching the wrapped machine's name, so
// sweep tables stay keyed by system.
func TestWithArrivals(t *testing.T) {
	base := MustLookup("tq").New()
	tenants := []workload.Tenant{{Name: "a", Ratio: 0.6}, {Name: "b", Ratio: 0.4}}
	m := WithArrivals(base, "mmpp:burst=5,duty=0.2,cycle=500us", tenants)
	if m.Name() != base.Name() {
		t.Fatalf("WithArrivals changed the display name to %q", m.Name())
	}
	cfg := tenantConfig(false)
	cfg.Tenants = nil
	res := m.Run(cfg)
	if len(res.PerTenant) != 2 {
		t.Fatalf("wrapper did not apply tenants: PerTenant has %d entries", len(res.PerTenant))
	}
	if res.Config.Arrivals != "mmpp:burst=5,duty=0.2,cycle=500us" {
		t.Fatalf("wrapper did not apply arrivals: %q", res.Config.Arrivals)
	}
	if res.Tenant("a") == nil || res.Tenant("nope") != nil {
		t.Fatal("Result.Tenant lookup broken")
	}
}
