package cluster

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CentralizedPS is the idealized centralized processor-sharing system
// of the §2 motivation simulations (Figures 1 and 2) and the "CT" side
// of Figure 4: one infinitely fast scheduler maintains a global queue
// and hands out quanta to workers; the only cost is a configurable
// per-preemption overhead.
type CentralizedPS struct {
	// Workers is the number of serving cores (paper: 16, with a 17th
	// core acting as the free centralized scheduler).
	Workers int
	// Quantum is the processor-sharing quantum.
	Quantum sim.Time
	// PreemptOverhead is charged each time a worker switches away from
	// an unfinished job (§2 evaluates 0, 0.1µs and 1µs).
	PreemptOverhead sim.Time
}

// NewCentralizedPS returns the ideal CT machine.
func NewCentralizedPS(workers int, quantum, overhead sim.Time) *CentralizedPS {
	if workers <= 0 || quantum <= 0 || overhead < 0 {
		panic("cluster: invalid CentralizedPS parameters")
	}
	return &CentralizedPS{Workers: workers, Quantum: quantum, PreemptOverhead: overhead}
}

// Name implements Machine.
func (c *CentralizedPS) Name() string { return "CT-PS" }

type ctRun struct {
	machineRun
	basePolicy
	m     *CentralizedPS
	queue core.FIFO[*job]
	// free lists idle core indices. Worker identity is immaterial to the
	// idealized model's results, but giving each core a stable index lets
	// the machine share the per-core timeline vocabulary with the others.
	free []int32
}

func (c *CentralizedPS) newRun() *ctRun {
	r := &ctRun{m: c}
	for i := c.Workers - 1; i >= 0; i-- {
		r.free = append(r.free, int32(i)) // pop from the end: core 0 first
	}
	return r
}

// Run implements Machine.
func (c *CentralizedPS) Run(cfg RunConfig) *Result {
	r := c.newRun()
	// The idealized scheduler has no bounded RX stage (limit 0): the
	// gate admits everything, but the arrive path still goes through it
	// so Offered/Dropped accounting is uniform across machine models.
	r.init(cfg, r, workload.NewGenerator(cfg.Workload, cfg.Rate, rng.New(cfg.Seed)), 0, 1)
	return r.run(c.Name(), 0)
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode).
func (c *CentralizedPS) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r := c.newRun()
	r.attach(eng, cfg, r, 0, 1)
	r.bind(c.Name(), c.Workers, 0)
	return r
}

// admit implements machinePolicy: the free scheduler mounts the job on
// an idle core immediately, or parks it in the global queue.
func (r *ctRun) admit(_ int, j *job) {
	if n := len(r.free); n > 0 {
		core := r.free[n-1]
		r.free = r.free[:n-1]
		r.mount(j, core)
	} else {
		r.queue.Push(j)
	}
}

// mount puts j on an idle core: in timeline terms the free scheduler
// dispatches the job (again, after a preemption) and its quantum opens.
// Back-to-back quanta of the same job on the same core stay merged into
// one open quantum — the core never actually switches.
func (r *ctRun) mount(j *job, core int32) {
	now := r.eng.Now()
	r.met.emit(now, obs.Dispatch, j.id, j.class, core)
	r.met.emit(now, obs.QuantumStart, j.id, j.class, core)
	r.runQuantum(j, core)
}

// runQuantum executes one quantum of j on the given core and decides
// what the core does next at the quantum boundary.
func (r *ctRun) runQuantum(j *job, core int32) {
	slice := j.remain
	if slice > r.m.Quantum {
		slice = r.m.Quantum
	}
	r.eng.After(slice, func() {
		j.remain -= slice
		now := r.eng.Now()
		if j.remain <= 0 {
			r.met.emit(now, obs.QuantumEnd, j.id, j.class, core)
			r.met.emit(now, obs.Finish, j.id, j.class, core)
			r.met.record(j, now)
			r.pool.put(j)
			if next, ok := r.queue.Pop(); ok {
				r.mount(next, core)
			} else {
				r.free = append(r.free, core)
			}
			return
		}
		next, ok := r.queue.Pop()
		if !ok {
			// Nothing else to run: keep executing the same job without
			// a preemption (real PS would not switch). The open quantum
			// extends rather than closing and reopening.
			r.runQuantum(j, core)
			return
		}
		// Preempt: pay the switch overhead, requeue, run the next job.
		r.met.emit(now, obs.QuantumEnd, j.id, j.class, core)
		r.met.emit(now, obs.Preempt, j.id, j.class, core)
		r.queue.Push(j)
		if r.m.PreemptOverhead > 0 {
			r.eng.After(r.m.PreemptOverhead, func() { r.mount(next, core) })
		} else {
			r.mount(next, core)
		}
	})
}

var _ Machine = (*CentralizedPS)(nil)
