package cluster

import (
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/rng"
	"repro/internal/sim"
)

// CentralizedPS is the idealized centralized processor-sharing system
// of the §2 motivation simulations (Figures 1 and 2) and the "CT" side
// of Figure 4: one infinitely fast scheduler maintains a global queue
// and hands out quanta to workers; the only cost is a configurable
// per-preemption overhead.
type CentralizedPS struct {
	// Workers is the number of serving cores (paper: 16, with a 17th
	// core acting as the free centralized scheduler).
	Workers int
	// Quantum is the processor-sharing quantum.
	Quantum sim.Time
	// PreemptOverhead is charged each time a worker switches away from
	// an unfinished job (§2 evaluates 0, 0.1µs and 1µs).
	PreemptOverhead sim.Time
	// Discipline, when non-empty, orders the global queue by a pifo
	// discipline name instead of the rr default (which reproduces the
	// original round-robin PS bit for bit). At a quantum boundary the
	// running job switches out only if the queue head ranks at or below
	// it — so fcfs becomes run-to-completion c-FCFS and srpt becomes
	// quantum-granularity preemptive SRPT.
	Discipline string
}

// NewCentralizedPS returns the ideal CT machine.
func NewCentralizedPS(workers int, quantum, overhead sim.Time) *CentralizedPS {
	if workers <= 0 || quantum <= 0 || overhead < 0 {
		panic("cluster: invalid CentralizedPS parameters")
	}
	return &CentralizedPS{Workers: workers, Quantum: quantum, PreemptOverhead: overhead}
}

// WithDiscipline sets the global-queue discipline by name (validated
// now, so a typo panics at construction) and returns the machine.
func (c *CentralizedPS) WithDiscipline(d string) *CentralizedPS {
	parseDiscipline(d, pifo.RR)
	c.Discipline = d
	return c
}

// Name implements Machine.
func (c *CentralizedPS) Name() string { return disciplineName("CT-PS", c.Discipline) }

type ctRun struct {
	machineRun
	basePolicy
	m     *CentralizedPS
	rank  ranker
	queue pifo.Queue[*job]
	// free lists idle core indices. Worker identity is immaterial to the
	// idealized model's results, but giving each core a stable index lets
	// the machine share the per-core timeline vocabulary with the others.
	free []int32
}

func (c *CentralizedPS) newRun(cfg RunConfig) *ctRun {
	r := &ctRun{m: c, rank: newRanker(parseDiscipline(c.Discipline, pifo.RR), cfg)}
	for i := c.Workers - 1; i >= 0; i-- {
		r.free = append(r.free, int32(i)) // pop from the end: core 0 first
	}
	return r
}

// Run implements Machine.
func (c *CentralizedPS) Run(cfg RunConfig) *Result {
	r := c.newRun(cfg)
	// The idealized scheduler has no bounded RX stage (limit 0): the
	// gate admits everything, but the arrive path still goes through it
	// so Offered/Dropped accounting is uniform across machine models.
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), 0, 1)
	return r.run(c.Name(), 0)
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode).
func (c *CentralizedPS) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r := c.newRun(cfg)
	r.attach(eng, cfg, r, 0, 1)
	r.bind(c.Name(), c.Workers, 0)
	return r
}

// admit implements machinePolicy: the free scheduler mounts the job on
// an idle core immediately, or parks it in the global queue.
func (r *ctRun) admit(_ int, j *job) {
	if n := len(r.free); n > 0 {
		core := r.free[n-1]
		r.free = r.free[:n-1]
		r.mount(j, core)
	} else {
		r.queue.Push(j, r.rank.rank(j, r.eng.Now()))
	}
}

// mount puts j on an idle core: in timeline terms the free scheduler
// dispatches the job (again, after a preemption) and its quantum opens.
// Back-to-back quanta of the same job on the same core stay merged into
// one open quantum — the core never actually switches.
func (r *ctRun) mount(j *job, core int32) {
	now := r.eng.Now()
	r.met.emit(now, obs.Dispatch, j.id, j.class, core)
	r.met.emit(now, obs.QuantumStart, j.id, j.class, core)
	r.runQuantum(j, core)
}

// runQuantum executes one quantum of j on the given core and decides
// what the core does next at the quantum boundary.
func (r *ctRun) runQuantum(j *job, core int32) {
	slice := j.remain
	if slice > r.m.Quantum {
		slice = r.m.Quantum
	}
	r.eng.After(slice, func() {
		j.remain -= slice
		now := r.eng.Now()
		if j.remain <= 0 {
			r.met.emit(now, obs.QuantumEnd, j.id, j.class, core)
			r.met.emit(now, obs.Finish, j.id, j.class, core)
			r.met.record(j, now)
			r.pool.put(j)
			if next, _, ok := r.queue.Pop(); ok {
				r.mount(next, core)
			} else {
				r.free = append(r.free, core)
			}
			return
		}
		// The switch rule: yield the core iff the queue head ranks at or
		// below the running job at this boundary. Under rr the head's
		// rank is its (earlier) queue time, so the rule is "switch
		// whenever anything waits" — exactly round-robin PS. Under fcfs
		// the head arrived later, ranks higher, and never wins — run to
		// completion. Under srpt/edf/las the comparison is the policy.
		_, headRank, ok := r.queue.Peek()
		if !ok {
			// Nothing else to run: keep executing the same job without
			// a preemption (real PS would not switch). The open quantum
			// extends rather than closing and reopening.
			r.runQuantum(j, core)
			return
		}
		myRank := r.rank.rank(j, now)
		if headRank > myRank {
			r.runQuantum(j, core)
			return
		}
		next, _, _ := r.queue.Pop()
		// Preempt: pay the switch overhead, requeue, run the next job.
		r.met.emit(now, obs.QuantumEnd, j.id, j.class, core)
		r.met.emit(now, obs.Preempt, j.id, j.class, core)
		r.queue.Push(j, myRank)
		if r.m.PreemptOverhead > 0 {
			r.eng.After(r.m.PreemptOverhead, func() { r.mount(next, core) })
		} else {
			r.mount(next, core)
		}
	})
}

var _ Machine = (*CentralizedPS)(nil)
