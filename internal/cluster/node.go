package cluster

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Node is a machine bound to an externally owned engine: the form a
// registry machine takes inside a multi-machine composition (the rack
// fleet in internal/rack). Where Machine.Run owns the whole lifecycle
// — engine, generator, pump, drain, Result — a Node receives arrivals
// one at a time from the embedding layer and exposes the load signals
// a blind inter-server router steers on. Entry.NewNode constructs one;
// machineRun implements the interface, so every kernel-based machine
// is a Node for free.
//
// A Node shares its engine with its siblings: Inject must only be
// called from events executing on that engine (or before Run), and
// Collect only after the engine has drained.
type Node interface {
	// Inject delivers one arriving request to the node's RX stage — the
	// same gate/drop/admit path a standalone run's pump feeds.
	Inject(req workload.Request)
	// Backlog reports the number of requests currently inside the
	// machine — admitted but neither completed nor dropped — the
	// queue-depth signal blind routing policies steer on. It is the
	// job-pool out-count, so it is model-generic: it counts the same
	// thing whether the model parks jobs in dispatcher queues, worker
	// queues, or a processor-sharing set.
	Backlog() int
	// Workers reports the machine's worker-core count, for normalizing
	// backlog into an expected wait.
	Workers() int
	// OnDone registers an observer called with the class and base
	// service demand of every request leaving the machine — the
	// completion feed a shortest-expected-wait router builds its
	// per-class service estimates from. At most one observer; later
	// calls replace earlier ones.
	OnDone(fn func(class workload.Class, service sim.Time))
	// OnDrop registers an observer called with the class of every
	// request the machine's admission stage sheds, so a router tracking
	// placed-but-not-retired work can retire drops as well as
	// completions. At most one observer; later calls replace earlier
	// ones.
	OnDrop(fn func(class workload.Class))
	// Collect finalizes the node's per-machine Result. Call once, after
	// the shared engine has drained; Result.Events stays zero because
	// event counts belong to the engine's owner.
	Collect() *Result
	// System names the machine model for reports.
	System() string
}

// The kernel's machineRun is the universal Node implementation;
// machine run structs get these methods by embedding.

// Inject implements Node.
func (k *machineRun) Inject(req workload.Request) { k.inject(req) }

// Backlog implements Node.
func (k *machineRun) Backlog() int { return k.pool.out }

// Workers implements Node.
func (k *machineRun) Workers() int { return k.workers }

// OnDone implements Node.
func (k *machineRun) OnDone(fn func(class workload.Class, service sim.Time)) {
	k.pool.onPut = func(j *job) { fn(j.class, j.base) }
}

// OnDrop implements Node.
func (k *machineRun) OnDrop(fn func(class workload.Class)) {
	k.onDrop = fn
}

// Collect implements Node.
func (k *machineRun) Collect() *Result { return k.met.result(k.system, k.rtt) }

// System implements Node.
func (k *machineRun) System() string { return k.system }
