package cluster

import "testing"

// A release without a matching tryAdmit used to drive the lane's
// occupancy negative, silently widening the RX bound for the rest of
// the run (the lane would admit limit+|underflow| requests before
// dropping again). It now panics at the buggy release.
func TestAdmissionReleaseUnderflowPanics(t *testing.T) {
	a := newAdmission(0, 4, 2)
	if !a.tryAdmit(1, 0, 0) {
		t.Fatal("empty lane refused a request")
	}
	a.release(1, 0) // matched: fine
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched release did not panic")
		}
	}()
	a.release(1, 0)
}

// Unbounded gates (limit <= 0) track no occupancy, so release stays a
// no-op there — machines with free admission may release or not.
func TestAdmissionUnboundedReleaseIsNoop(t *testing.T) {
	a := newAdmission(0, 0, 1)
	a.release(0, 0)
	if !a.tryAdmit(0, 0, 0) {
		t.Fatal("unbounded gate refused a request")
	}
}

// The bound must hold exactly at the limit: limit admissions fill the
// lane, the next arrival drops, and one release reopens one slot.
func TestAdmissionBoundIsExact(t *testing.T) {
	a := newAdmission(0, 2, 1)
	if !a.tryAdmit(0, 0, 0) || !a.tryAdmit(0, 0, 0) {
		t.Fatal("lane refused requests under its limit")
	}
	if a.tryAdmit(0, 0, 0) {
		t.Fatal("full lane admitted a request")
	}
	if a.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.dropped)
	}
	a.release(0, 0)
	if !a.tryAdmit(0, 0, 0) {
		t.Fatal("released slot not reusable")
	}
}
