package cluster

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestSinkRunCountsArrivals(t *testing.T) {
	s := NewSink()
	res := s.Run(RunConfig{
		Workload: workload.ExtremeBimodal(),
		Rate:     1e6,
		Duration: 10 * sim.Millisecond,
		Warmup:   sim.Millisecond,
		Seed:     7,
	})
	if res.System != "sink" {
		t.Fatalf("system %q, want sink", res.System)
	}
	if s.arrivals == 0 {
		t.Fatal("sink saw no arrivals")
	}
	if res.Completed != 0 {
		t.Fatalf("sink recorded %d completions, want 0", res.Completed)
	}
	// ~1e6 req/s for 10ms ≈ 10k arrivals; allow wide slack, catch gross
	// miscounting.
	if s.arrivals < 5000 || s.arrivals > 20000 {
		t.Fatalf("arrival count %d implausible for 1e6 req/s over 10ms", s.arrivals)
	}
}

// TestArrivalPumpSteadyStateAllocs is the PR 6 allocation guard: the
// kernel's shared arrival path — generator draw, pump chaining, RX
// gate, pooled job build, policy admit — must not allocate in steady
// state. The bound uses the testing.B convention (allocs/op truncated
// toward zero), so amortized one-time growth is tolerated but any
// per-arrival allocation fails.
func TestArrivalPumpSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc guarantee is for production builds")
	}
	m := MeasureArrivalPump(200_000)
	t.Logf("arrival pump: %.1f ns/op, %.6f allocs/op", m.NsPerOp, m.AllocsPerOp)
	if trunc := int64(m.AllocsPerOp); trunc != 0 {
		t.Fatalf("arrival pump allocates: %.4f allocs/op (truncated %d, want 0)", m.AllocsPerOp, trunc)
	}
}

func TestMeasureArrivalPumpRejectsBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeasureArrivalPump(0) did not panic")
		}
	}()
	MeasureArrivalPump(0)
}
