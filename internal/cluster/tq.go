package cluster

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BalancerKind selects the TQ dispatcher's load-balancing policy.
type BalancerKind int

// Dispatcher load-balancing policies (§3.2, §5.4).
const (
	BalanceJSQMSQ    BalancerKind = iota // JSQ with MSQ tie-breaking (TQ default)
	BalanceJSQRandom                     // JSQ with random tie-breaking
	BalanceRandom                        // TQ-RAND
	BalancePowerTwo                      // TQ-POWER-TWO
)

// TQParams configures the TQ machine model. NewTQParams supplies the
// defaults matching the paper's setup (§5.1) and its measured
// mechanism costs (§3.1, §4, §6).
type TQParams struct {
	// Workers is the number of worker cores (paper: 16).
	Workers int
	// Quantum is the processor-sharing quantum (paper default: 2µs).
	Quantum sim.Time
	// Coroutines is the number of task coroutines per worker (paper:
	// 8; jobs beyond this wait in the worker's dispatch queue).
	Coroutines int
	// YieldOverhead is the cost of one coroutine switch back to the
	// scheduler coroutine and out to the next task (Boost coroutines
	// yield in 20-40ns; TQ-SLOW-YIELD adds 1µs).
	YieldOverhead sim.Time
	// ProbeOverhead inflates every job's service time by this fraction
	// to model compiler-inserted probe cost (TQ's pass ≈3-5%; the
	// instruction-counter baseline ≈60% on RocksDB GET, §3.1).
	ProbeOverhead float64
	// DispatchCost is the dispatcher's per-request cost. §6 reports
	// the TQ dispatcher sustains ≈14Mrps, i.e. ≈70ns per request.
	DispatchCost sim.Time
	// ParseCost is the worker-side cost to parse a request and bind it
	// to a coroutine (§4: the scheduler coroutine parses requests).
	ParseCost sim.Time
	// StatsPeriod is how often the dispatcher refreshes its view of
	// worker counters; load information is stale by up to this much.
	StatsPeriod sim.Time
	// RXQueue bounds the dispatcher's unprocessed-request backlog, in
	// requests; arrivals beyond it drop as at a full NIC RX ring.
	RXQueue int
	// Trace, when non-nil, records the scheduling timeline (job
	// arrivals, dispatches, quanta, completions) for inspection.
	Trace *trace.Recorder
	// RTT is the network round-trip added when reporting end-to-end
	// latency.
	RTT sim.Time
	// Balancer picks the dispatcher policy.
	Balancer BalancerKind
	// Policy selects the worker's quantum-scheduling order: processor
	// sharing (default) or least attained service.
	Policy WorkerPolicy
	// Dispatchers is the number of dispatcher cores (§6 extension);
	// incoming requests are RSS-steered across them and each runs the
	// balancing policy over a shared view. Zero means one.
	Dispatchers int
	// FCFS, when set, disables preemption entirely: each coroutine
	// runs its job to completion (the TQ-FCFS variant).
	FCFS bool
	// QuantumForClass, when non-nil, overrides the quantum per request
	// class — the TQ-TIMING variant emulates inaccurate preemption
	// timing by giving classes wrong quanta (1µs for GET, 3µs for
	// SCAN against a 2µs target, §5.4).
	QuantumForClass func(workload.Class) sim.Time
	// Discipline, when non-empty, overrides the worker queue order with
	// a pifo discipline by name (pifo.Names); it supersedes Policy.
	// Empty keeps the Policy default: rr (round-robin PS) for PolicyPS,
	// las for PolicyLAS — both bit-identical to the pre-pifo queues.
	Discipline string
}

// NewTQParams returns the paper's default configuration.
func NewTQParams() TQParams {
	return TQParams{
		Workers:       16,
		Quantum:       sim.Micros(2),
		Coroutines:    8,
		YieldOverhead: 30 * sim.Nanosecond,
		ProbeOverhead: 0.04,
		DispatchCost:  70 * sim.Nanosecond,
		ParseCost:     40 * sim.Nanosecond,
		StatsPeriod:   sim.Micros(1),
		RTT:           sim.Micros(8),
		Balancer:      BalanceJSQMSQ,
		RXQueue:       2048,
	}
}

// TQ is the two-level-scheduling machine (§3.2): a dispatcher that only
// load-balances, and workers that interleave job quanta with forced
// multitasking.
type TQ struct {
	P    TQParams
	name string
}

// NewTQ returns a TQ machine with the given parameters.
func NewTQ(p TQParams) *TQ {
	if p.Workers <= 0 || p.Coroutines <= 0 {
		panic("cluster: TQ needs at least one worker and one coroutine")
	}
	if p.Quantum <= 0 && !p.FCFS {
		panic("cluster: TQ quantum must be positive")
	}
	if p.Discipline != "" {
		parseDiscipline(p.Discipline, pifo.RR) // panic on a bad name now
	}
	return &TQ{P: p, name: disciplineName("TQ", p.Discipline)}
}

// Named sets the report name (used for variants like "TQ-IC").
func (t *TQ) Named(name string) *TQ { t.name = name; return t }

// Name implements Machine.
func (t *TQ) Name() string { return t.name }

// tqWorker is one simulated worker core. Both queues are pifo heaps
// under the run's discipline: runnable replaces the old FIFO/LASQueue
// pair (rr reproduces FIFO's order exactly, las the LASQueue's), and
// waiting stays effectively FIFO under the defaults because dispatch
// pushes are monotonic in time.
type tqWorker struct {
	runnable pifo.Queue[*job] // busy coroutines, discipline order
	waiting  pifo.Queue[*job] // dispatch queue (no free coroutine yet)
	idle     int              // idle coroutine count
	running  bool
	// Worker-side statistics the dispatcher reads (§4). finished wraps
	// like a fixed-width counter would; the dispatcher recovers totals
	// by deltas.
	finished  uint64
	curQuanta int64 // quanta serviced for current (unfinished) jobs
}

// pushRunnable enqueues a busy coroutine in discipline order.
//
//simvet:hotpath
func (r *tqRun) pushRunnable(wk *tqWorker, j *job) {
	wk.runnable.Push(j, r.rank.rank(j, r.eng.Now()))
}

// popRunnable dequeues the next coroutine to resume.
//
//simvet:hotpath
func (r *tqRun) popRunnable(wk *tqWorker) (*job, bool) {
	j, _, ok := wk.runnable.Pop()
	return j, ok
}

type tqRun struct {
	machineRun
	m       *TQ
	rand    *rng.Rand
	rank    ranker
	workers []tqWorker
	tracker *core.LoadTracker
	bal     core.Balancer

	// Dispatcher serial-server state, one entry per dispatcher core:
	// busyUntil is when that dispatcher frees up; requests queue FIFO
	// implicitly via the timestamp.
	dispBusyUntil []sim.Time
	rss           core.RSS
	// lastRefresh is when the dispatcher last read the worker counters;
	// its load view is stale by up to StatsPeriod (§4's periodic reads).
	lastRefresh sim.Time

	// achieved records realized preemption intervals (full quanta plus
	// the yield switch), for the Figure 16 accuracy measurement.
	achieved *stats.Sample
}

// Run implements Machine.
func (t *TQ) Run(cfg RunConfig) *Result {
	res, _ := t.run(cfg)
	return res
}

// RunMeasured also returns the realized preemption intervals — the
// quantum sizes the workers actually schedule, compared against the
// target in the §5.6 scalability experiment.
func (t *TQ) RunMeasured(cfg RunConfig) (*Result, *stats.Sample) {
	return t.run(cfg)
}

// newRun builds the run struct and the workload generator. The RNG
// draw order here is part of the machine's identity: balancer splits
// first, then the workload generator's split — node construction keeps
// the generator draw (and discards it) so both forms see the same
// per-seed stream layout.
func (t *TQ) newRun(cfg RunConfig) (*tqRun, *workload.Stream) {
	def := pifo.RR
	if t.P.Policy == PolicyLAS {
		def = pifo.LAS
	}
	r := &tqRun{
		m:       t,
		rand:    rng.New(cfg.Seed),
		rank:    newRanker(parseDiscipline(t.P.Discipline, def), cfg),
		workers: make([]tqWorker, t.P.Workers),
		tracker: core.NewLoadTracker(t.P.Workers, 32),
	}
	for i := range r.workers {
		r.workers[i].idle = t.P.Coroutines
	}
	switch t.P.Balancer {
	case BalanceJSQMSQ:
		r.bal = core.NewJSQ(core.MSQ{})
	case BalanceJSQRandom:
		r.bal = core.NewJSQ(core.RandomTie{R: r.rand.Split()})
	case BalanceRandom:
		r.bal = core.Random{R: r.rand.Split()}
	case BalancePowerTwo:
		r.bal = core.PowerOfTwo{R: r.rand.Split()}
	default:
		panic("cluster: unknown balancer kind")
	}
	gen := cfg.Stream(r.rand.Split())
	r.lastRefresh = -t.P.StatsPeriod // force a refresh on first dispatch
	r.achieved = stats.NewSample(1024)
	nDisp := t.P.Dispatchers
	if nDisp <= 0 {
		nDisp = 1
	}
	r.dispBusyUntil = make([]sim.Time, nDisp)
	return r, gen
}

func (t *TQ) run(cfg RunConfig) (*Result, *stats.Sample) {
	r, gen := t.newRun(cfg)
	r.init(cfg, r, gen, t.P.RXQueue, len(r.dispBusyUntil))
	res := r.run(t.name, t.P.RTT)
	return res, r.achieved
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode). The node draws no arrivals of
// its own — the embedding layer injects them.
func (t *TQ) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r, _ := t.newRun(cfg)
	r.attach(eng, cfg, r, t.P.RXQueue, len(r.dispBusyUntil))
	r.bind(t.name, t.P.Workers, t.P.RTT)
	return r
}

// emit records a trace event when tracing is enabled.
func (r *tqRun) emit(e trace.Event) {
	if r.m.P.Trace != nil {
		r.m.P.Trace.Emit(e)
	}
}

// refreshView re-reads worker counters if the dispatcher's view is
// older than StatsPeriod, modelling §4's periodic counter reads with
// their inherent staleness.
func (r *tqRun) refreshView() {
	now := r.eng.Now()
	if now-r.lastRefresh < r.m.P.StatsPeriod {
		return
	}
	r.lastRefresh = now
	for w := range r.workers {
		r.tracker.ObserveFinished(w, r.workers[w].finished)
		r.tracker.ObserveQuanta(w, r.workers[w].curQuanta)
	}
}

// admitLane implements machinePolicy: RSS steers the packet to one of
// the dispatcher cores (one core in the paper's configuration; §6
// discusses scaling them out).
func (r *tqRun) admitLane(req workload.Request) int {
	if len(r.dispBusyUntil) > 1 {
		return r.rss.Steer(req.ID, len(r.dispBusyUntil))
	}
	return 0
}

// dropCore implements machinePolicy: TQ's RX lanes are dispatcher
// rings, which all share the timeline's one dispatcher track.
func (r *tqRun) dropCore(int) int32 { return obs.CoreDispatcher }

// inflate implements machinePolicy: compiler-inserted probes tax every
// job's service time by ProbeOverhead.
func (r *tqRun) inflate(s sim.Time) sim.Time {
	return s + sim.Time(float64(s)*r.m.P.ProbeOverhead)
}

// observeArrive/observeDrop mirror the kernel's arrival path into the
// legacy trace recorder when one is attached.
func (r *tqRun) observeArrive(req workload.Request) {
	r.emit(trace.Event{T: r.eng.Now(), Kind: trace.Arrive, Job: req.ID, Class: int(req.Class), Worker: -1})
}

func (r *tqRun) observeDrop(req workload.Request) {
	r.emit(trace.Event{T: r.eng.Now(), Kind: trace.Drop, Job: req.ID, Class: int(req.Class), Worker: -1})
}

// admit implements machinePolicy: the dispatcher, a serial server,
// spends DispatchCost on the request and then forwards it. The RX-ring
// slot is held until the dispatcher picks the request up.
func (r *tqRun) admit(d int, j *job) {
	now := r.eng.Now()
	if r.dispBusyUntil[d] < now {
		r.dispBusyUntil[d] = now
	}
	r.dispBusyUntil[d] += r.m.P.DispatchCost
	r.eng.At(r.dispBusyUntil[d], func() {
		r.adm.release(d, j.tenant)
		r.dispatch(j)
	})
}

// dispatch runs after the dispatcher's processing delay: pick a worker
// with the blind balancing policy and push onto its dispatch queue.
func (r *tqRun) dispatch(j *job) {
	r.refreshView()
	w := r.bal.Pick(r.tracker)
	r.tracker.Assign(w)
	j.worker = w
	r.emit(trace.Event{T: r.eng.Now(), Kind: trace.Dispatch, Job: j.id, Class: int(j.class), Worker: w})
	r.met.emit(r.eng.Now(), obs.Dispatch, j.id, j.class, int32(w))
	wk := &r.workers[w]
	wk.waiting.Push(j, r.rank.rank(j, r.eng.Now()))
	if !wk.running {
		r.kick(w)
	}
}

// kick starts the worker's scheduling loop if it has admittable work.
func (r *tqRun) kick(w int) {
	wk := &r.workers[w]
	if wk.running {
		return
	}
	wk.running = true
	r.step(w)
}

// step executes one scheduler-coroutine iteration on worker w: admit
// pending requests onto idle coroutines, then run one quantum of the
// head coroutine.
func (r *tqRun) step(w int) {
	wk := &r.workers[w]
	// Admission: the scheduler coroutine polls the dispatch queue when
	// it has idle coroutines (§4). Parsing costs CPU time, which delays
	// the next quantum.
	var admitCost sim.Time
	for wk.idle > 0 {
		j, _, ok := wk.waiting.Pop()
		if !ok {
			break
		}
		wk.idle--
		r.pushRunnable(wk, j)
		admitCost += r.m.P.ParseCost
	}
	j, ok := r.popRunnable(wk)
	if !ok {
		wk.running = false
		return
	}
	q := r.m.P.Quantum
	if r.m.P.QuantumForClass != nil {
		q = r.m.P.QuantumForClass(j.class)
	}
	slice := j.remain
	if !r.m.P.FCFS && slice > q {
		slice = q
	}
	// The quantum runs, then the task yields back to the scheduler
	// coroutine (one switch costs YieldOverhead). The job stops
	// executing — and, on its last quantum, its response leaves the
	// worker — at the quantum's end; the yield cost that follows is
	// scheduler overhead, charged to the worker but not to the job's
	// sojourn, so Finish and QuantumEnd share one timestamp.
	now := r.eng.Now()
	end := now + admitCost + slice
	r.emit(trace.Event{T: now + admitCost, Kind: trace.QuantumStart, Job: j.id, Class: int(j.class), Worker: w})
	r.met.emit(now+admitCost, obs.QuantumStart, j.id, j.class, int32(w))
	r.eng.After(admitCost+slice+r.m.P.YieldOverhead, func() {
		r.emit(trace.Event{T: end, Kind: trace.QuantumEnd, Job: j.id, Class: int(j.class), Worker: w})
		r.met.emit(end, obs.QuantumEnd, j.id, j.class, int32(w))
		if slice >= q && j.remain > q {
			// A true preemption: the realized interval includes the
			// switch cost — what Figure 16 compares to the target.
			r.achieved.Add(float64(slice + r.m.P.YieldOverhead))
		}
		j.remain -= slice
		j.quanta++
		wk.curQuanta++
		if j.remain <= 0 {
			// Completion: the worker replies directly to the client
			// (no dispatcher involvement) and updates its counters.
			wk.curQuanta -= j.quanta
			wk.finished++
			wk.idle++
			r.emit(trace.Event{T: end, Kind: trace.Finish, Job: j.id, Class: int(j.class), Worker: w})
			r.met.emit(end, obs.Finish, j.id, j.class, int32(w))
			r.met.record(j, end)
			r.pool.put(j)
		} else {
			// The probe fired and the coroutine yielded voluntarily —
			// TQ's forced multitasking shows up as probe-yield, never as
			// an interrupt-style preempt.
			r.met.emit(end, obs.ProbeYield, j.id, j.class, int32(w))
			r.pushRunnable(wk, j)
		}
		r.step(w)
	})
}

var _ Machine = (*TQ)(nil)

// Variant constructors for the §5.4 breakdown (Figures 11 and 12).

// NewTQIC returns the TQ-IC variant: forced multitasking driven by the
// state-of-the-art instruction-counter instrumentation, whose probing
// inflates service times by ≈60% (§3.1's RocksDB GET measurement).
func NewTQIC(p TQParams) *TQ {
	p.ProbeOverhead = 0.60
	return NewTQ(p).Named("TQ-IC")
}

// NewTQSlowYield returns the TQ-SLOW-YIELD variant: a 1µs delay added
// to every coroutine yield.
func NewTQSlowYield(p TQParams) *TQ {
	p.YieldOverhead += sim.Micros(1)
	return NewTQ(p).Named("TQ-SLOW-YIELD")
}

// NewTQTiming returns the TQ-TIMING variant for the RocksDB workload:
// inaccurate preemption timing emulated with 1µs quanta for GET (class
// 0) and 3µs for SCAN (class 1), against the 2µs target.
func NewTQTiming(p TQParams) *TQ {
	p.QuantumForClass = func(c workload.Class) sim.Time {
		if c == 0 {
			return sim.Micros(1)
		}
		return sim.Micros(3)
	}
	return NewTQ(p).Named("TQ-TIMING")
}

// NewTQRand returns the TQ-RAND variant (random load balancing).
func NewTQRand(p TQParams) *TQ {
	p.Balancer = BalanceRandom
	return NewTQ(p).Named("TQ-RAND")
}

// NewTQPowerTwo returns the TQ-POWER-TWO variant.
func NewTQPowerTwo(p TQParams) *TQ {
	p.Balancer = BalancePowerTwo
	return NewTQ(p).Named("TQ-POWER-TWO")
}

// NewTQFCFS returns the TQ-FCFS variant (run-to-completion workers).
func NewTQFCFS(p TQParams) *TQ {
	p.FCFS = true
	return NewTQ(p).Named("TQ-FCFS")
}
