package cluster

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ShinjukuParams configures the Shinjuku baseline model: centralized
// single-queue scheduling where a dispatcher core processes packets,
// assigns jobs, and preempts workers with Dune-based hardware
// interrupts (§5.1, [34]).
//
// The cost constants are calibrated to the paper's observations: a
// centralized dispatcher core sustains ≈5Mrps of plain request
// processing (§6), and the interrupt path costs ≈1µs on the preempted
// worker (§1). Each constant is an explicit knob so ablations can test
// sensitivity.
type ShinjukuParams struct {
	// Workers is the number of worker cores (paper: 16).
	Workers int
	// Quantum is the preemption interval. The paper runs Shinjuku at
	// its per-workload sweet spot: 5µs for the bimodals, 10µs for
	// TPC-C and Exp(1), 15µs for RocksDB.
	Quantum sim.Time
	// NetCost is dispatcher time per incoming request (RX, parse,
	// enqueue).
	NetCost sim.Time
	// RespCost is dispatcher/net-worker time per outgoing response.
	RespCost sim.Time
	// SchedCost is dispatcher time to pick and hand a job to a worker.
	SchedCost sim.Time
	// IPICost is dispatcher time to post one preemption interrupt (a
	// posted-interrupt write is much cheaper than packet processing).
	IPICost sim.Time
	// RXQueue bounds the backlog of unprocessed dispatcher work, in
	// requests; arrivals beyond it are dropped, as a saturated NIC RX
	// ring drops packets. Without this bound an overloaded centralized
	// dispatcher would starve its scheduling ops behind an unbounded
	// packet backlog, which no real system does.
	RXQueue int
	// InterruptOverhead is worker time lost per received interrupt
	// (ring transition, context save/restore — ≈1µs under Dune).
	InterruptOverhead sim.Time
	// RTT is the simulated network round trip for end-to-end latency.
	RTT sim.Time
}

// NewShinjukuParams returns the calibrated defaults with the given
// quantum.
func NewShinjukuParams(quantum sim.Time) ShinjukuParams {
	return ShinjukuParams{
		Workers:           16,
		Quantum:           quantum,
		NetCost:           190 * sim.Nanosecond,
		RespCost:          90 * sim.Nanosecond,
		SchedCost:         110 * sim.Nanosecond,
		IPICost:           25 * sim.Nanosecond,
		InterruptOverhead: sim.Micros(1),
		RTT:               sim.Micros(8),
		RXQueue:           2048,
	}
}

// Shinjuku is the centralized interrupt-driven baseline.
type Shinjuku struct {
	P    ShinjukuParams
	name string
}

// NewShinjuku returns a Shinjuku machine.
func NewShinjuku(p ShinjukuParams) *Shinjuku {
	if p.Workers <= 0 || p.Quantum <= 0 {
		panic("cluster: invalid Shinjuku parameters")
	}
	return &Shinjuku{P: p, name: "Shinjuku"}
}

// Name implements Machine.
func (s *Shinjuku) Name() string { return s.name }

type sjWorker struct {
	busy bool
	// gen invalidates stale completion/preemption events after the
	// worker switches jobs.
	gen     uint64
	current *job
	started sim.Time // when the current dispatch began running
}

type sjRun struct {
	machineRun
	basePolicy
	m       *Shinjuku
	queue   core.FIFO[*job]
	workers []sjWorker
	idle    []int // indices of idle workers

	// The dispatcher core is a serial server over two op classes:
	// scheduling work (assignments, IPIs) takes priority over packet
	// processing, as the real dispatcher's loop checks preemption
	// timers and worker states before polling more packets. Without
	// the priority, an overloaded dispatcher would starve scheduling
	// behind its RX backlog entirely.
	schedOps core.FIFO[dispOp]
	netOps   core.FIFO[dispOp]
	dispBusy bool

	// achieved records the realized preemption intervals, used by the
	// Figure 16 dispatcher-scalability experiment.
	achieved *stats.Sample
}

type dispOp struct {
	cost sim.Time
	fn   func()
}

// dispatcherOp enqueues work on the dispatcher core. Scheduling ops
// (sched=true) are served before packet ops.
func (r *sjRun) dispatcherOp(sched bool, cost sim.Time, fn func()) {
	op := dispOp{cost: cost, fn: fn}
	if sched {
		r.schedOps.Push(op)
	} else {
		r.netOps.Push(op)
	}
	r.serveDispatcher()
}

func (r *sjRun) serveDispatcher() {
	if r.dispBusy {
		return
	}
	op, ok := r.schedOps.Pop()
	if !ok {
		op, ok = r.netOps.Pop()
	}
	if !ok {
		return
	}
	r.dispBusy = true
	r.eng.After(op.cost, func() {
		op.fn()
		r.dispBusy = false
		r.serveDispatcher()
	})
}

// Run implements Machine.
func (s *Shinjuku) Run(cfg RunConfig) *Result {
	res, _ := s.run(cfg)
	return res
}

// RunMeasured also returns the realized preemption intervals (the
// "average quantum scheduled by the dispatcher" of §5.6).
func (s *Shinjuku) RunMeasured(cfg RunConfig) (*Result, *stats.Sample) {
	return s.run(cfg)
}

func (s *Shinjuku) newRun() *sjRun {
	r := &sjRun{
		m:        s,
		workers:  make([]sjWorker, s.P.Workers),
		achieved: stats.NewSample(1024),
	}
	for w := range r.workers {
		r.idle = append(r.idle, w)
	}
	return r
}

func (s *Shinjuku) run(cfg RunConfig) (*Result, *stats.Sample) {
	r := s.newRun()
	// A saturated dispatcher drops packets at the RX ring. The ring
	// holds incoming requests only — outgoing responses use their own
	// TX descriptors.
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), s.P.RXQueue, 1)
	res := r.run(s.Name(), s.P.RTT)
	return res, r.achieved
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode).
func (s *Shinjuku) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r := s.newRun()
	r.attach(eng, cfg, r, s.P.RXQueue, 1)
	r.bind(s.Name(), s.P.Workers, s.P.RTT)
	return r
}

// admit implements machinePolicy: the request occupies its RX slot
// until the dispatcher's packet-processing op finishes with it.
func (r *sjRun) admit(lane int, j *job) {
	r.dispatcherOp(false, r.m.P.NetCost, func() {
		r.adm.release(lane, j.tenant)
		r.enqueue(j)
	})
}

// enqueue adds a job to the central queue and, if a worker is idle,
// issues the dispatcher's assignment op.
func (r *sjRun) enqueue(j *job) {
	r.queue.Push(j)
	r.tryAssign()
}

func (r *sjRun) tryAssign() {
	if len(r.idle) == 0 || r.queue.Len() == 0 {
		return
	}
	w := r.idle[len(r.idle)-1]
	r.idle = r.idle[:len(r.idle)-1]
	j, _ := r.queue.Pop()
	r.dispatcherOp(true, r.m.P.SchedCost, func() { r.startOn(w, j) })
}

// startOn begins executing j on worker w. Two events race: natural
// completion, and a preemption interrupt that the dispatcher posts at
// quantum expiry (the interrupt lands late if the dispatcher is busy —
// the job keeps running meanwhile, which is exactly the quantum
// inflation Figure 16 measures).
func (r *sjRun) startOn(w int, j *job) {
	wk := &r.workers[w]
	wk.busy = true
	wk.gen++
	wk.current = j
	wk.started = r.eng.Now()
	gen := wk.gen
	// Every mount is a fresh dispatcher decision — a preempted job is
	// re-dispatched, unlike TQ where it stays resident on its worker.
	r.met.emit(wk.started, obs.Dispatch, j.id, j.class, int32(w))
	r.met.emit(wk.started, obs.QuantumStart, j.id, j.class, int32(w))

	r.eng.After(j.remain, func() {
		if wk.gen != gen {
			return // preempted before completing
		}
		r.complete(w, j)
	})
	if j.remain > r.m.P.Quantum {
		r.eng.After(r.m.P.Quantum, func() {
			if wk.gen != gen {
				return // completed first (cannot happen given remain>quantum, but stay safe)
			}
			// The dispatcher posts the IPI when it gets to this op;
			// until then the worker keeps executing the job.
			r.dispatcherOp(true, r.m.P.IPICost, func() {
				if wk.gen != gen {
					return // job finished while the IPI was in flight
				}
				r.preempt(w)
			})
		})
	}
}

func (r *sjRun) complete(w int, j *job) {
	wk := &r.workers[w]
	wk.gen++
	wk.busy = false
	wk.current = nil
	r.met.emit(r.eng.Now(), obs.QuantumEnd, j.id, j.class, int32(w))
	r.met.emit(r.eng.Now(), obs.Finish, j.id, j.class, int32(w))
	r.met.record(j, r.eng.Now())
	r.pool.put(j)
	// Response goes out through the networking half of the centralized
	// core.
	r.dispatcherOp(false, r.m.P.RespCost, func() {})
	r.idle = append(r.idle, w)
	r.tryAssign()
}

// preempt interrupts worker w: the job has run since wk.started, the
// worker pays the interrupt overhead, and the job rejoins the tail of
// the central queue.
func (r *sjRun) preempt(w int) {
	wk := &r.workers[w]
	j := wk.current
	ran := r.eng.Now() - wk.started
	if ran >= j.remain {
		// The job finished at exactly this instant; treat as complete.
		j.remain = 0
		r.complete(w, j)
		return
	}
	r.achieved.Add(float64(ran))
	j.remain -= ran
	wk.gen++
	wk.busy = false
	wk.current = nil
	r.met.emit(r.eng.Now(), obs.QuantumEnd, j.id, j.class, int32(w))
	r.met.emit(r.eng.Now(), obs.Preempt, j.id, j.class, int32(w))
	r.eng.After(r.m.P.InterruptOverhead, func() {
		r.queue.Push(j)
		r.idle = append(r.idle, w)
		r.tryAssign()
	})
}

var _ Machine = (*Shinjuku)(nil)
