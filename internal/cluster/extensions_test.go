package cluster

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestLASImprovesShortJobTails(t *testing.T) {
	// LAS strictly prioritizes jobs with less attained service: on the
	// extreme bimodal mix, short jobs should see tails at least as
	// good as PS at high load.
	w := workload.ExtremeBimodal()
	rate := 0.75 * w.MaxLoad(16)
	cfg := testCfg(w, rate)
	ps := NewTQ(NewTQParams()).Run(cfg)
	las := NewTQLAS(NewTQParams()).Run(cfg)
	p, l := ps.P999SojournUs("Short"), las.P999SojournUs("Short")
	if l > p*1.05 {
		t.Fatalf("LAS short-job p99.9 (%vµs) worse than PS (%vµs)", l, p)
	}
	if las.Completed == 0 {
		t.Fatal("LAS completed nothing")
	}
}

func TestLASCompletesLongJobs(t *testing.T) {
	// LAS must not starve long jobs when capacity exists.
	w := workload.HighBimodal()
	cfg := testCfg(w, 0.5*w.MaxLoad(16))
	res := NewTQLAS(NewTQParams()).Run(cfg)
	if c := res.Class("Long"); c == nil || c.Count == 0 {
		t.Fatal("LAS starved long jobs at 50% load")
	}
}

func TestMultiDispatcherScalesThroughput(t *testing.T) {
	// Offer far more than one dispatcher can handle (70ns/req ->
	// ~14Mrps each): two dispatchers should complete well over 1.5x
	// what one does.
	w := workload.Fixed("tiny", 100*sim.Nanosecond)
	mk := func(d int) *Result {
		p := NewTQParams()
		p.Workers = 64
		p.Coroutines = 16
		p.Dispatchers = d
		return NewTQ(p).Run(RunConfig{
			Workload: w,
			Rate:     40e6,
			Duration: 10 * sim.Millisecond,
			Warmup:   sim.Millisecond,
			Seed:     1,
		})
	}
	one := mk(1)
	two := mk(2)
	if two.Throughput < 1.5*one.Throughput {
		t.Fatalf("2 dispatchers -> %.3gMrps, 1 dispatcher -> %.3gMrps: no scaling",
			two.Throughput/1e6, one.Throughput/1e6)
	}
}

func TestConcordBeatsShinjukuButSaturatesBelowTQ(t *testing.T) {
	// Concord's cheap cache-line preemption removes the interrupt tax,
	// but its centralized dispatcher still carries per-quantum load:
	// on a dispatcher-bound workload TQ completes more.
	w := workload.ExtremeBimodal()
	rate := 0.85 * w.MaxLoad(16)
	cfg := testCfg(w, rate)
	sj := NewShinjuku(NewShinjukuParams(sim.Micros(5))).Run(cfg)
	con := NewConcord(sim.Micros(5)).Run(cfg)
	tq := NewTQ(NewTQParams()).Run(cfg)
	if con.Throughput <= sj.Throughput {
		t.Fatalf("Concord throughput %v not above Shinjuku %v", con.Throughput, sj.Throughput)
	}
	if tq.Throughput < con.Throughput*0.95 {
		t.Fatalf("TQ throughput %v fell below Concord %v", tq.Throughput, con.Throughput)
	}
	if con.System != "Concord" {
		t.Fatalf("Concord named %q", con.System)
	}
}

func TestLibPreemptibleClampsQuantumAndPaysInterrupts(t *testing.T) {
	p := NewTQParams()
	p.Quantum = sim.Micros(1) // below UINTR's practical floor
	lp := NewLibPreemptible(p)
	if lp.P.Quantum != sim.Micros(3) {
		t.Fatalf("quantum not clamped to 3µs: %v", lp.P.Quantum)
	}
	if lp.Name() != "LibPreemptible" {
		t.Fatalf("name %q", lp.Name())
	}
	// On a preemption-heavy mix, the ~1µs per-preemption cost loses
	// throughput against TQ at high load.
	w := workload.RocksDB(0.5)
	rate := 0.9 * w.MaxLoad(16)
	cfg := testCfg(w, rate)
	tq := NewTQ(NewTQParams()).Run(cfg)
	lpRes := lp.Run(cfg)
	if lpRes.Throughput >= tq.Throughput {
		t.Fatalf("LibPreemptible throughput %v not below TQ %v", lpRes.Throughput, tq.Throughput)
	}
}

func TestMultiDispatcherDefaultsToOne(t *testing.T) {
	// Dispatchers=0 must behave identically to Dispatchers=1.
	w := workload.HighBimodal()
	cfg := testCfg(w, 0.4*w.MaxLoad(16))
	p0 := NewTQParams()
	p1 := NewTQParams()
	p1.Dispatchers = 1
	a := NewTQ(p0).Run(cfg)
	b := NewTQ(p1).Run(cfg)
	if a.Completed != b.Completed {
		t.Fatalf("Dispatchers=0 (%d) differs from Dispatchers=1 (%d)", a.Completed, b.Completed)
	}
}
