package cluster

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// CaladanMode selects how packets reach worker cores.
type CaladanMode int

// Caladan's two operating modes (§5.1).
const (
	// IOKernel routes every packet through a central IOKernel core —
	// cheap for workers but a potential throughput bottleneck.
	IOKernel CaladanMode = iota
	// Directpath lets workers talk to the NIC directly — no central
	// bottleneck, but per-packet processing lands on the workers.
	Directpath
)

// String names the mode as it appears in system labels ("iokernel",
// "directpath").
func (m CaladanMode) String() string {
	if m == IOKernel {
		return "iokernel"
	}
	return "directpath"
}

// CaladanParams configures the Caladan baseline model: FCFS
// run-to-completion with RSS packet steering and work stealing.
type CaladanParams struct {
	// Workers is the number of worker cores (paper: 16).
	Workers int
	// Mode selects IOKernel or Directpath packet routing. The paper
	// evaluates both and reports the better one per workload; the
	// sweep driver in this package does the same.
	Mode CaladanMode
	// IOKCost is IOKernel time per packet direction.
	IOKCost sim.Time
	// DirectCost is extra worker time per request in directpath mode
	// (RX descriptor handling, parsing, TX).
	DirectCost sim.Time
	// StealCost is the latency for an idle worker to steal a queued
	// job from another core.
	StealCost sim.Time
	// RXQueue bounds the IOKernel's unprocessed-packet backlog, in
	// packets; arrivals beyond it drop as at a full NIC RX ring.
	RXQueue int
	// RTT is the simulated network round trip for end-to-end latency.
	RTT sim.Time
}

// NewCaladanParams returns calibrated defaults in the given mode.
func NewCaladanParams(mode CaladanMode) CaladanParams {
	return CaladanParams{
		Workers:    16,
		Mode:       mode,
		IOKCost:    70 * sim.Nanosecond,
		DirectCost: 260 * sim.Nanosecond,
		StealCost:  150 * sim.Nanosecond,
		RTT:        sim.Micros(8),
		RXQueue:    2048,
	}
}

// Caladan is the FCFS run-to-completion baseline with work stealing.
type Caladan struct{ P CaladanParams }

// NewCaladan returns a Caladan machine.
func NewCaladan(p CaladanParams) *Caladan {
	if p.Workers <= 0 {
		panic("cluster: invalid Caladan parameters")
	}
	return &Caladan{P: p}
}

// Name implements Machine.
func (c *Caladan) Name() string { return "Caladan-" + c.P.Mode.String() }

type calWorker struct {
	queue core.FIFO[*job]
	busy  bool
}

type calRun struct {
	machineRun
	basePolicy
	m       *Caladan
	workers []calWorker
	idle    []int // idle worker indices (spinning, ready to steal)
	rss     core.RSS
	rand    *rng.Rand

	iokBusyUntil sim.Time
}

// newRun builds the run struct and its RX bound: only the IOKernel is
// a bounded serial stage; directpath workers read the NIC directly, so
// their arrive path goes through an unbounded gate (limit 0) and never
// drops.
func (c *Caladan) newRun(cfg RunConfig) (*calRun, int) {
	r := &calRun{
		m:       c,
		workers: make([]calWorker, c.P.Workers),
		rand:    rng.New(cfg.Seed ^ 0xca1ada),
	}
	limit := 0
	if c.P.Mode == IOKernel {
		limit = c.P.RXQueue
	}
	for w := range r.workers {
		r.idle = append(r.idle, w)
	}
	return r, limit
}

// Run implements Machine.
func (c *Caladan) Run(cfg RunConfig) *Result {
	r, limit := c.newRun(cfg)
	r.init(cfg, r, cfg.Stream(rng.New(cfg.Seed)), limit, 1)
	return r.run(c.Name(), c.P.RTT)
}

// NewNode binds the machine to a shared engine as a cluster Node (the
// rack-fleet form; see Entry.NewNode). One mode per node: BestCaladan's
// run-both-and-pick cannot share an engine, so "caladan-ws" has no node
// form.
func (c *Caladan) NewNode(eng *sim.Engine, cfg RunConfig) Node {
	r, limit := c.newRun(cfg)
	r.attach(eng, cfg, r, limit, 1)
	r.bind(c.Name(), c.P.Workers, c.P.RTT)
	return r
}

// inflate implements machinePolicy: in directpath mode packet
// processing happens on the worker, so it rides on the job's demand.
func (r *calRun) inflate(s sim.Time) sim.Time {
	if r.m.P.Mode == Directpath {
		return s + r.m.P.DirectCost
	}
	return s
}

// admit implements machinePolicy: RSS steers the packet; in IOKernel
// mode the IOKernel is a serial server between NIC and workers, and
// the packet holds its ring slot until the IOKernel forwards it.
func (r *calRun) admit(lane int, j *job) {
	w := r.rss.Steer(j.id, len(r.workers))
	if r.m.P.Mode == IOKernel {
		now := r.eng.Now()
		if r.iokBusyUntil < now {
			r.iokBusyUntil = now
		}
		r.iokBusyUntil += r.m.P.IOKCost
		r.eng.At(r.iokBusyUntil, func() {
			r.adm.release(lane, j.tenant)
			r.deliver(w, j)
		})
	} else {
		r.deliver(w, j)
	}
}

// deliver places a job on its RSS-steered worker's queue. If that
// worker is busy but another is idle and spinning, the idle worker
// steals the job after the steal latency — Caladan's work stealing
// keeps cores busy whenever any work exists.
//
// Dispatch records where RSS (or the steal at delivery) bound the job;
// under later stealing the quantum may run on a different core than
// the one dispatched to, which the timeline shows faithfully.
func (r *calRun) deliver(w int, j *job) {
	wk := &r.workers[w]
	if !wk.busy {
		wk.busy = true
		r.removeIdle(w)
		r.met.emit(r.eng.Now(), obs.Dispatch, j.id, j.class, int32(w))
		r.runJob(w, j)
		return
	}
	if len(r.idle) > 0 {
		// A spinning idle worker steals it.
		i := r.rand.Intn(len(r.idle))
		thief := r.idle[i]
		r.idle[i] = r.idle[len(r.idle)-1]
		r.idle = r.idle[:len(r.idle)-1]
		twk := &r.workers[thief]
		twk.busy = true
		r.met.emit(r.eng.Now(), obs.Dispatch, j.id, j.class, int32(thief))
		r.eng.After(r.m.P.StealCost, func() { r.runJob(thief, j) })
		return
	}
	r.met.emit(r.eng.Now(), obs.Dispatch, j.id, j.class, int32(w))
	wk.queue.Push(j)
}

func (r *calRun) removeIdle(w int) {
	for i, v := range r.idle {
		if v == w {
			r.idle[i] = r.idle[len(r.idle)-1]
			r.idle = r.idle[:len(r.idle)-1]
			return
		}
	}
}

// runJob executes j to completion on worker w (FCFS, no preemption):
// exactly one quantum per task, ending in finish.
func (r *calRun) runJob(w int, j *job) {
	r.met.emit(r.eng.Now(), obs.QuantumStart, j.id, j.class, int32(w))
	r.eng.After(j.remain, func() {
		now := r.eng.Now()
		r.met.emit(now, obs.QuantumEnd, j.id, j.class, int32(w))
		r.met.emit(now, obs.Finish, j.id, j.class, int32(w))
		r.met.record(j, r.eng.Now())
		r.pool.put(j)
		if r.m.P.Mode == IOKernel {
			// Response transits the IOKernel; it does not block the
			// worker, but consumes IOKernel capacity.
			now := r.eng.Now()
			if r.iokBusyUntil < now {
				r.iokBusyUntil = now
			}
			r.iokBusyUntil += r.m.P.IOKCost
		}
		r.next(w)
	})
}

// next finds the worker's next job: its own queue first, then stealing
// from the most loaded victim, else it goes idle and spins.
func (r *calRun) next(w int) {
	wk := &r.workers[w]
	if j, ok := wk.queue.Pop(); ok {
		r.runJob(w, j)
		return
	}
	// Steal: scan for a victim with queued work (cost modelled in the
	// steal latency).
	victim := -1
	best := 0
	for v := range r.workers {
		if v != w && r.workers[v].queue.Len() > best {
			best = r.workers[v].queue.Len()
			victim = v
		}
	}
	if victim >= 0 {
		j, _ := r.workers[victim].queue.Pop()
		r.eng.After(r.m.P.StealCost, func() { r.runJob(w, j) })
		return
	}
	wk.busy = false
	r.idle = append(r.idle, w)
}

var _ Machine = (*Caladan)(nil)

// bestCaladan adapts BestCaladan to the Machine interface so sweep
// runners can treat "the better of Caladan's two modes" as one system.
type bestCaladan struct{ class string }

func (b bestCaladan) Run(cfg RunConfig) *Result { return BestCaladan(cfg, b.class) }
func (b bestCaladan) Name() string              { return "Caladan" }

// NewBestCaladan returns a Machine that runs every configuration under
// both Caladan modes and reports the better result, judged as in
// BestCaladan. It holds no state, so one value is safe to share — but
// sweep factories should still construct it per point, like any other
// machine.
func NewBestCaladan(class string) Machine { return bestCaladan{class: class} }

// BestCaladan runs the configuration under both modes and returns the
// better result, judged by the p99.9 sojourn of the given class (or
// overall throughput if class is empty) — mirroring §5.1's "we evaluate
// Caladan under both modes and report the better one". With an obs
// recorder attached, the two judging runs go untraced and the winning
// mode is deterministically re-run into the recorder, so the timeline
// holds exactly one machine's events.
func BestCaladan(cfg RunConfig, class string) *Result {
	if cfg.Obs != nil {
		rec := cfg.Obs
		cfg.Obs = nil
		winner := BestCaladan(cfg, class)
		mode := Directpath
		if winner.System == "Caladan-iokernel" {
			mode = IOKernel
		}
		cfg.Obs = rec
		return NewCaladan(NewCaladanParams(mode)).Run(cfg)
	}
	iok := NewCaladan(NewCaladanParams(IOKernel)).Run(cfg)
	dp := NewCaladan(NewCaladanParams(Directpath)).Run(cfg)
	if class == "" {
		if iok.Throughput >= dp.Throughput {
			return iok
		}
		return dp
	}
	ic, dc := iok.Class(class), dp.Class(class)
	switch {
	case ic == nil || ic.Count == 0:
		return dp
	case dc == nil || dc.Count == 0:
		return iok
	case ic.Sojourn.P999() <= dc.Sojourn.P999():
		return iok
	default:
		return dp
	}
}
