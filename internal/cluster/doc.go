// Package cluster contains discrete-event models of the scheduling
// systems the Tiny Quanta paper evaluates (§5.1):
//
//   - TQ: the paper's system — a load-balancing-only dispatcher plus
//     per-core processor-sharing over coroutines (two-level scheduling
//     with forced multitasking), including the §5.4 variants (TQ-IC,
//     TQ-SLOW-YIELD, TQ-TIMING, TQ-RAND, TQ-POWER-TWO, TQ-FCFS);
//   - Shinjuku: centralized single-queue scheduling with interrupt-based
//     preemption (Dune-style, ≈1µs interrupt latency);
//   - Caladan: FCFS run-to-completion with RSS steering and work
//     stealing, in IOKernel or directpath mode;
//   - CentralizedPS: the idealized zero-overhead centralized processor
//     sharing used by the §2 motivation simulations (Figures 1, 2, 4);
//   - DFCFS: the decentralized-FCFS baseline (per-worker NIC queues, no
//     preemption, no stealing) — the classic foil to c-FCFS and PS;
//   - Oracle: a clairvoyant preemptive-SRPT upper bound with zero
//     mechanism overheads, in the style of Universal Packet
//     Scheduling's omniscient baseline — it deliberately reads true
//     service times, which every other machine is forbidden to do, so
//     the distance between any blind scheduler and it is that
//     scheduler's optimality gap (experiments.OptimalityGapTable).
//
// All models share an event-level abstraction: jobs carry service
// demands, workers execute quanta serially, and every mechanism cost
// (coroutine yield, hardware interrupt, dispatcher op) is an explicit
// parameter. Absolute numbers therefore depend on the calibration
// constants in cluster.go, but the comparative shapes — who saturates
// first and where latency knees appear — depend only on the modelled
// mechanisms, which is what the reproduction targets.
//
// # Kernel and policies
//
// Every machine runs on the shared machine kernel (kernel.go): a
// machineRun substrate owning the engine, workload generator, arrival
// pump, RX-ring admission lanes, job pool, and metrics/obs emission,
// with the Run → Result lifecycle written once. A machine is a run
// struct embedding machineRun plus a small machinePolicy — where an
// arriving request is steered (admitLane), how its demand is inflated
// (inflate), and what the system does with an admitted job (admit) —
// and its own engine callbacks for everything after admission. The
// kernel makes the conservation law Offered == Completed + Dropped and
// the shared arrival semantics structural rather than per-machine
// conventions; dfcfs.go is the ~100-line template for adding a system.
//
// # Registry
//
// The named-machine registry (registry.go) is the catalogue's front
// door: Register/Lookup/MustLookup/Names map stable names ("tq",
// "shinjuku", "caladan-ws", "d-fcfs", ...) to paper-default
// constructors, so sweep drivers, comparison tools, and command-line
// flags (tqsim -machines, tqtrace export -machines) enumerate machines
// without hard-coded constructor lists. Registration also enrolls a
// machine in the conformance suite, which checks conservation,
// run-twice determinism, and timeline grammar for every entry.
//
// # Queue disciplines
//
// The registry has a second dimension besides the quantum: machines
// whose queues were rewired onto internal/pifo's rank-programmable
// priority queues (TQ, CentralizedPS, the idealized TLS pair, DFCFS)
// expose Entry.NewD, which rebuilds them under any pifo discipline —
// rr, fcfs, srpt, edf, las, prio-age (tqsim -discipline). Each
// machine's default discipline ranks exactly in its historical queue
// order (rr pushes by time for PS rotation, fcfs by arrival, las by
// attained service), so the golden seed-equivalence fixtures prove the
// rewiring changed no number; a non-default discipline swaps the
// policy while every mechanism cost stays in place. EDF takes its
// per-class deadlines from RunConfig.SLOs and degenerates to FCFS
// without them.
//
// Every model also speaks the unified observability vocabulary of
// internal/obs: set RunConfig.Obs to record a per-quantum scheduling
// timeline, and use TraceComparison to run several machines on the
// same configuration into side-by-side Perfetto tracks. The event
// vocabulary is identical across machines — only the mechanisms
// differ: TQ yields at probes (probe-yield), Shinjuku and
// CentralizedPS preempt by interrupt (preempt), Caladan runs every
// job to completion (neither).
package cluster
