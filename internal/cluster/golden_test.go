package cluster

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The golden seed-equivalence fixtures pin every machine model's exact
// per-seed numbers. They were recorded from the pre-kernel machines
// (each carrying its own arrival loop and Run skeleton) immediately
// before the port onto the shared machineRun substrate, so any drift —
// one extra RNG draw, one reordered engine event, one changed float —
// fails this test. Regenerate only for a deliberate semantic change:
//
//	go test ./internal/cluster -run TestGoldenSeedEquivalence -update
var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

const goldenPath = "testdata/golden_results.json"

// goldenClass is the per-class slice of a golden summary. Floats are
// compared exactly: encoding/json round-trips float64 losslessly.
type goldenClass struct {
	Count        uint64  `json:"count"`
	Good         uint64  `json:"good"`
	SojournMean  float64 `json:"sojournMean"`
	SojournP999  float64 `json:"sojournP999"`
	SlowdownMean float64 `json:"slowdownMean"`
	SlowdownP999 float64 `json:"slowdownP999"`
}

// goldenSummary captures everything a Result derives from the
// simulation trajectory, including Events — the engine's executed-event
// count, which changes if the port adds, drops, or reorders any
// scheduled callback.
type goldenSummary struct {
	System     string                 `json:"system"`
	Completed  uint64                 `json:"completed"`
	Offered    uint64                 `json:"offered"`
	Dropped    uint64                 `json:"dropped"`
	Events     uint64                 `json:"events"`
	Throughput float64                `json:"throughput"`
	Goodput    float64                `json:"goodput"`
	DropRate   float64                `json:"dropRate"`
	RTT        sim.Time               `json:"rtt"`
	PerClass   map[string]goldenClass `json:"perClass"`
}

func summarize(res *Result) goldenSummary {
	s := goldenSummary{
		System:     res.System,
		Completed:  res.Completed,
		Offered:    res.Offered,
		Dropped:    res.Dropped,
		Events:     res.Events,
		Throughput: res.Throughput,
		Goodput:    res.Goodput,
		DropRate:   res.DropRate,
		RTT:        res.RTT,
		PerClass:   map[string]goldenClass{},
	}
	for i := range res.PerClass {
		c := &res.PerClass[i]
		s.PerClass[c.Name] = goldenClass{
			Count:        c.Count,
			Good:         c.Good,
			SojournMean:  c.Sojourn.Mean(),
			SojournP999:  c.Sojourn.P999(),
			SlowdownMean: c.Slowdown.Mean(),
			SlowdownP999: c.Slowdown.P999(),
		}
	}
	return s
}

// goldenMachines enumerates every machine model and variant under fixed
// parameters (8 workers where the constructor allows it, so fixtures
// stay fast). Keys are fixture identifiers, stable across refactors
// even if display names change.
func goldenMachines() []struct {
	key string
	m   Machine
} {
	p8 := func() TQParams {
		p := NewTQParams()
		p.Workers = 8
		return p
	}
	sj8 := func(q sim.Time) ShinjukuParams {
		p := NewShinjukuParams(q)
		p.Workers = 8
		return p
	}
	cal8 := func(mode CaladanMode) CaladanParams {
		p := NewCaladanParams(mode)
		p.Workers = 8
		return p
	}
	df8 := func() DFCFSParams {
		p := NewDFCFSParams()
		p.Workers = 8
		return p
	}
	return []struct {
		key string
		m   Machine
	}{
		{"tq", NewTQ(p8())},
		{"tq-las", NewTQLAS(p8())},
		{"tq-ic", NewTQIC(p8())},
		{"tq-slow-yield", NewTQSlowYield(p8())},
		{"tq-timing", NewTQTiming(p8())},
		{"tq-rand", NewTQRand(p8())},
		{"tq-power-two", NewTQPowerTwo(p8())},
		{"tq-fcfs", NewTQFCFS(p8())},
		{"tq-slo", WithSLOs(NewTQ(p8()), map[string]sim.Time{"*": sim.Micros(20)})},
		{"shinjuku", NewShinjuku(sj8(sim.Micros(5)))},
		{"concord", NewConcord(sim.Micros(5))},
		{"libpreemptible", NewLibPreemptible(p8())},
		{"caladan-iokernel", NewCaladan(cal8(IOKernel))},
		{"caladan-directpath", NewCaladan(cal8(Directpath))},
		{"caladan-best", NewBestCaladan("Short")},
		{"ct-ps", NewCentralizedPS(8, sim.Micros(2), 0)},
		{"ct-srpt", NewCentralizedPS(8, sim.Micros(2), 0).WithDiscipline("srpt")},
		{"d-fcfs", NewDFCFS(df8())},
		{"oracle-srpt", NewOracle(8)},
		{"tq-srpt", func() Machine {
			p := p8()
			p.Discipline = "srpt"
			return NewTQ(p)
		}()},
		{"tls-jsq-msq", NewIdealTLS(8, sim.Micros(1), BalanceJSQMSQ)},
		{"tls-jsq-rand", NewIdealTLS(8, sim.Micros(1), BalanceJSQRandom)},
	}
}

// goldenConfigs returns the two fixture configurations: a mid-load
// bimodal run exercising every scheduling path, and a dispatcher-
// saturating overload run exercising RX-ring drop accounting.
func goldenConfigs() map[string]RunConfig {
	hb := workload.HighBimodal()
	return map[string]RunConfig{
		"midload": {
			Workload: hb,
			Rate:     0.7 * hb.MaxLoad(8),
			Duration: 30 * sim.Millisecond,
			Warmup:   3 * sim.Millisecond,
			Seed:     0xC0FFEE,
		},
		"overload": {
			Workload: workload.Fixed("tiny", 100*sim.Nanosecond),
			Rate:     30e6,
			Duration: 2 * sim.Millisecond,
			Warmup:   200 * sim.Microsecond,
			Seed:     0xC0FFEE,
		},
	}
}

// TestGoldenSeedEquivalence asserts that every machine still produces
// bit-identical Results for the fixture seeds — the proof that the
// kernel port changed no number anywhere.
func TestGoldenSeedEquivalence(t *testing.T) {
	got := map[string]map[string]goldenSummary{}
	for cfgName, cfg := range goldenConfigs() {
		got[cfgName] = map[string]goldenSummary{}
		for _, gm := range goldenMachines() {
			got[cfgName][gm.key] = summarize(gm.m.Run(cfg))
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixtures (run with -update to record them): %v", err)
	}
	want := map[string]map[string]goldenSummary{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	for cfgName := range want {
		for key, w := range want[cfgName] {
			g, ok := got[cfgName][key]
			if !ok {
				t.Errorf("%s/%s: machine missing from goldenMachines", cfgName, key)
				continue
			}
			compareGolden(t, cfgName+"/"+key, w, g)
		}
		// New machines must be goldenized, not silently skipped.
		var missing []string
		for key := range got[cfgName] {
			if _, ok := want[cfgName][key]; !ok {
				missing = append(missing, key)
			}
		}
		sort.Strings(missing)
		for _, key := range missing {
			t.Errorf("%s/%s: no fixture recorded; rerun with -update", cfgName, key)
		}
	}
}

func compareGolden(t *testing.T, id string, want, got goldenSummary) {
	t.Helper()
	if want.System != got.System {
		t.Errorf("%s: system %q, want %q", id, got.System, want.System)
	}
	if want.Completed != got.Completed || want.Offered != got.Offered || want.Dropped != got.Dropped {
		t.Errorf("%s: completed/offered/dropped %d/%d/%d, want %d/%d/%d",
			id, got.Completed, got.Offered, got.Dropped, want.Completed, want.Offered, want.Dropped)
	}
	if want.Events != got.Events {
		t.Errorf("%s: engine executed %d events, want %d (a scheduled callback was added, dropped, or reordered)",
			id, got.Events, want.Events)
	}
	if want.Throughput != got.Throughput || want.Goodput != got.Goodput || want.DropRate != got.DropRate {
		t.Errorf("%s: throughput/goodput/droprate %v/%v/%v, want %v/%v/%v",
			id, got.Throughput, got.Goodput, got.DropRate, want.Throughput, want.Goodput, want.DropRate)
	}
	if want.RTT != got.RTT {
		t.Errorf("%s: rtt %v, want %v", id, got.RTT, want.RTT)
	}
	for name, wc := range want.PerClass {
		gc, ok := got.PerClass[name]
		if !ok {
			t.Errorf("%s: class %s missing", id, name)
			continue
		}
		if wc != gc {
			t.Errorf("%s: class %s = %+v, want %+v", id, name, gc, wc)
		}
	}
	if len(got.PerClass) != len(want.PerClass) {
		t.Errorf("%s: %d classes, want %d", id, len(got.PerClass), len(want.PerClass))
	}
}
