package cluster

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// job is the simulator's in-flight request state. Jobs are pooled per
// run to keep the hot path allocation-free.
type job struct {
	id      uint64
	class   workload.Class
	tenant  int // index into the spec's tenant table (0 = anonymous)
	arrival sim.Time
	service sim.Time // demand after probe-overhead inflation
	base    sim.Time // original demand, for slowdown accounting
	remain  sim.Time
	quanta  int64 // quanta serviced so far (MSQ bookkeeping)
	worker  int   // owning worker, where applicable
}

// jobPool is a trivial freelist; the simulation is single-threaded.
// Besides recycling, it keeps the one machine-generic load signal:
// every admitted request takes a job from the pool and returns it when
// it leaves the machine, so out is the in-machine backlog regardless
// of which queues the model shuffles the job through in between.
type jobPool struct {
	free []*job
	// out counts jobs currently out of the pool — admitted but not yet
	// recycled — the queue-depth signal blind routing reads (Node.Backlog).
	out int
	// onPut, when non-nil, observes each job as it returns to the pool,
	// before its fields are recycled — the completion feed load-signal
	// consumers (rack shortest-expected-wait) estimate service time from.
	onPut func(*job)
}

//simvet:hotpath
func (p *jobPool) get() *job {
	p.out++
	if n := len(p.free); n > 0 {
		j := p.free[n-1]
		p.free = p.free[:n-1]
		*j = job{}
		return j
	}
	return &job{}
}

//simvet:hotpath
func (p *jobPool) put(j *job) {
	p.out--
	if p.onPut != nil {
		p.onPut(j)
	}
	p.free = append(p.free, j)
}

// RunConfig describes one simulated experiment: a workload arriving at
// a fixed open-loop rate for a fixed virtual duration. The optional
// Arrivals and Tenants fields open the other workload axes; their zero
// values reproduce the paper's client (open-loop Poisson, one
// anonymous tenant) exactly.
type RunConfig struct {
	Workload *workload.Workload
	// Rate is the offered load in requests per second.
	Rate float64
	// Arrivals names the arrival process ("" = "poisson"); see
	// workload.ParseArrivals for the catalogue ("mmpp:burst=10,duty=0.1",
	// "diurnal:amp=0.8,period=100ms", "closed:users=64,think=100us").
	Arrivals string
	// Tenants, when non-empty, splits traffic among named tenants with
	// per-tenant admission shares; completions and drops are then also
	// aggregated per tenant (Result.PerTenant), and SLOs accepts
	// tenant-scoped keys ("tenant:class", "tenant:*").
	Tenants []workload.Tenant
	// Duration is the simulated run length; requests stop arriving at
	// Duration but in-flight jobs may still complete afterwards.
	Duration sim.Time
	// Warmup discards samples from requests that arrived before it
	// (the paper discards the first 10% of each 10s run).
	Warmup sim.Time
	// Seed makes the run reproducible.
	Seed uint64
	// SLOs, when non-nil, maps class name to a sojourn-time target for
	// goodput accounting: a completion counts toward Result.Goodput
	// only if its sojourn is within its class's target. The key "*"
	// applies to every class without an explicit entry. Classes with no
	// target always count, so a nil map makes Goodput equal Throughput.
	// Targets are on sojourn (not end-to-end) time so goodput compares
	// across machines with different modelled RTTs.
	SLOs map[string]sim.Time
	// Obs, when non-nil, receives the run's scheduling timeline in the
	// unified event vocabulary (package obs): arrivals on the loadgen
	// track, drops and dispatches on the dispatcher track, quanta and
	// their probe-yield/preempt/finish outcomes on the worker tracks.
	// All machine models emit the same vocabulary, so two runs recorded
	// into two recorders compare directly (obs.WriteChrome, obs.Diff).
	// Recording is per run: give concurrent runs (parallel sweeps)
	// separate recorders.
	Obs obs.Recorder
}

func (c RunConfig) validate() {
	if c.Workload == nil {
		panic("cluster: RunConfig.Workload is nil")
	}
	if c.Rate <= 0 {
		panic("cluster: RunConfig.Rate must be positive")
	}
	if c.Duration <= 0 || c.Warmup < 0 || c.Warmup >= c.Duration {
		panic("cluster: invalid Duration/Warmup")
	}
	if err := c.spec().Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
}

// spec composes the config's workload axes into the workload.Spec the
// stream is built from.
func (c RunConfig) spec() workload.Spec {
	return workload.Spec{Workload: c.Workload, Rate: c.Rate, Arrivals: c.Arrivals, Tenants: c.Tenants}
}

// Stream materializes the config's composed request stream drawing
// from r. Every machine's standalone run, the rack fleet, and the
// benches construct their arrival stream through this one call (which
// defers to workload.Spec.Stream) — per-machine code chooses only
// which RNG stream feeds it, so the per-seed draw order stays explicit
// in the machine while stream construction cannot drift between
// layers.
func (c RunConfig) Stream(r *rng.Rand) *workload.Stream {
	return c.spec().Stream(r)
}

// TenantMetrics aggregates one tenant's traffic across all classes —
// the per-tenant view of the same measurement window ClassMetrics
// covers, including the tenant's own conservation law
// Offered == Completed + Dropped.
type TenantMetrics struct {
	Name string
	// Offered counts the tenant's resolved in-window requests.
	Offered uint64
	// Completed counts the tenant's post-warmup completions.
	Completed uint64
	// Dropped counts the tenant's post-warmup RX-ring drops.
	Dropped uint64
	// Good counts completions within the tenant's SLO target (SLOs keys
	// "tenant:class" and "tenant:*" override class-level targets).
	Good    uint64
	Sojourn *stats.Sample // ns, pooled across the tenant's classes
}

// ClassMetrics aggregates completions of one request class.
type ClassMetrics struct {
	Name  string
	Count uint64
	// Good counts completions within the class's SLO target; it equals
	// Count when the class has no target.
	Good     uint64
	Sojourn  *stats.Sample // ns, dispatcher-arrival to completion (§5.1)
	Slowdown *stats.Sample // sojourn / uninstrumented service time
}

// Result is the outcome of one Run.
type Result struct {
	System   string
	Config   RunConfig
	PerClass []ClassMetrics
	// PerTenant aggregates each tenant's traffic when the config defines
	// tenants; nil otherwise.
	PerTenant []TenantMetrics
	// Completed counts post-warmup completions; Throughput is
	// Completed divided by the post-warmup window, in requests/second.
	Completed  uint64
	Throughput float64
	// RTT is the simulated network round-trip added to sojourn time
	// when reporting end-to-end latency.
	RTT sim.Time
	// Offered counts the measurement window's resolved requests:
	// every post-warmup arrival whose fate — completion or RX-ring
	// drop — was decided by Duration. Requests still in flight when
	// the window closes appear in neither count (exactly as they are
	// absent from the latency percentiles), so the conservation law
	// Offered == Completed + Dropped holds for every run.
	Offered uint64
	// Dropped counts post-warmup arrivals rejected at a full RX ring.
	// Survivor-only percentiles are meaningful only alongside it: past
	// the knee a machine can report flat tails simply by shedding load.
	Dropped uint64
	// DropRate is Dropped/Offered (0 when nothing was offered).
	DropRate float64
	// Goodput is the rate of in-window completions that met their
	// class's SLO target (RunConfig.SLOs), in requests/second. With no
	// targets configured it equals Throughput.
	Goodput float64
	// Events counts the discrete-event simulation steps the run
	// executed — the work unit behind the sweep progress layer's
	// sim-events/second metric.
	Events uint64
}

// Class returns the metrics for the class with the given name, or nil.
func (r *Result) Class(name string) *ClassMetrics {
	for i := range r.PerClass {
		if r.PerClass[i].Name == name {
			return &r.PerClass[i]
		}
	}
	return nil
}

// Tenant returns the metrics for the tenant with the given name, or
// nil when the run had no such tenant.
func (r *Result) Tenant(name string) *TenantMetrics {
	for i := range r.PerTenant {
		if r.PerTenant[i].Name == name {
			return &r.PerTenant[i]
		}
	}
	return nil
}

// P999SojournUs returns the p99.9 sojourn time of a class in µs.
func (r *Result) P999SojournUs(class string) float64 {
	c := r.Class(class)
	if c == nil || c.Count == 0 {
		return 0
	}
	return c.Sojourn.P999() / 1000
}

// P99SojournUs returns the p99 sojourn time of a class in µs — the
// coarser tail the rack routing comparisons report alongside p99.9.
func (r *Result) P99SojournUs(class string) float64 {
	c := r.Class(class)
	if c == nil || c.Count == 0 {
		return 0
	}
	return c.Sojourn.P99() / 1000
}

// P999EndToEndUs returns the p99.9 end-to-end latency (sojourn + RTT)
// of a class in µs, the metric used for cross-system comparisons.
func (r *Result) P999EndToEndUs(class string) float64 {
	c := r.Class(class)
	if c == nil || c.Count == 0 {
		return 0
	}
	return (c.Sojourn.P999() + float64(r.RTT)) / 1000
}

// P999Slowdown returns the p99.9 slowdown of a class; with class ""
// it pools all classes (the paper's "overall slowdown" for TPC-C).
func (r *Result) P999Slowdown(class string) float64 {
	if class != "" {
		c := r.Class(class)
		if c == nil || c.Count == 0 {
			return 0
		}
		return c.Slowdown.P999()
	}
	pooled := stats.NewSample(0)
	for i := range r.PerClass {
		for _, v := range r.PerClass[i].Slowdown.Values() {
			pooled.Add(v)
		}
	}
	if pooled.Len() == 0 {
		return 0
	}
	return pooled.P999()
}

// metrics is the recording half shared by all machines.
type metrics struct {
	cfg      RunConfig
	perClass []ClassMetrics
	done     uint64
	good     uint64
	slo      []sim.Time // per-class sojourn target; 0 = none
	// perTenant and tslo exist only when the config defines tenants:
	// tslo is the tenant-scoped target table indexed tenant*nClasses +
	// class, which then replaces slo for goodput accounting.
	perTenant []TenantMetrics
	tslo      []sim.Time
	adm       *admission

	// obsBatch and obsBuf batch emissions toward recorders that accept
	// batches (obs.BatchRecorder): events accumulate in obsBuf and flush
	// at capacity and at result(), amortizing the interface call — and
	// for locked recorders, the lock — over obsBatchCap events. Plain
	// recorders keep the direct per-event path, so ordering and drop
	// accounting are identical either way.
	obsBatch obs.BatchRecorder
	obsBuf   []obs.Event
}

// obsBatchCap is the emission batch size: big enough to amortize the
// per-batch costs, small enough that the buffer stays cache-resident.
const obsBatchCap = 256

func newMetrics(cfg RunConfig) *metrics {
	m := &metrics{cfg: cfg}
	if b, ok := cfg.Obs.(obs.BatchRecorder); ok {
		m.obsBatch = b
		m.obsBuf = make([]obs.Event, 0, obsBatchCap)
	}
	for _, c := range cfg.Workload.Classes {
		m.perClass = append(m.perClass, ClassMetrics{
			Name:     c.Name,
			Sojourn:  stats.NewSample(1024),
			Slowdown: stats.NewSample(1024),
		})
	}
	m.slo = sloTargets(cfg)
	for _, t := range cfg.Tenants {
		m.perTenant = append(m.perTenant, TenantMetrics{
			Name:    t.Name,
			Sojourn: stats.NewSample(1024),
		})
	}
	if len(cfg.Tenants) > 0 {
		m.tslo = sloTenantTargets(cfg)
	}
	return m
}

// admission creates the run's RX-stage gate and ties its drop counter
// into this recorder, so result() can report drops next to
// completions. limit <= 0 models an unbounded stage (the gate then
// admits everything and tracks nothing).
func (m *metrics) admission(limit, lanes int) *admission {
	m.adm = newAdmission(m.cfg.Warmup, limit, lanes)
	m.adm.shares(m.cfg.Tenants)
	return m.adm
}

// emit records a scheduling event in the unified vocabulary when
// RunConfig.Obs is attached; with no recorder it is a nil check. All
// machine models funnel their timeline through this one helper so the
// event semantics cannot drift between models.
//
//simvet:hotpath
func (m *metrics) emit(t sim.Time, k obs.Kind, task uint64, class workload.Class, core int32) {
	if m.cfg.Obs == nil {
		return
	}
	e := obs.Event{T: int64(t), Task: task, Core: core, Class: int16(class), Kind: k}
	if m.obsBatch == nil {
		m.cfg.Obs.Emit(e)
		return
	}
	m.obsBuf = append(m.obsBuf, e)
	if len(m.obsBuf) == obsBatchCap {
		m.flushObs()
	}
}

// flushObs drains the emission buffer into the batch recorder. result()
// calls it, so a run's timeline is complete once Run returns; nothing
// else may read the recorder before then.
//
//simvet:hotpath
func (m *metrics) flushObs() {
	if len(m.obsBuf) > 0 {
		m.obsBatch.EmitBatch(m.obsBuf)
		m.obsBuf = m.obsBuf[:0]
	}
}

// tracing reports whether an obs recorder is attached; machines use it
// to skip event construction work that would otherwise be wasted.
func (m *metrics) tracing() bool { return m.cfg.Obs != nil }

// record notes a completion at time now for a job that arrived at
// j.arrival with base demand j.base. Only completions inside the
// measurement window count: jobs finishing during the post-arrival
// drain would otherwise credit an overloaded system with throughput it
// cannot sustain.
//
//simvet:hotpath
func (m *metrics) record(j *job, now sim.Time) {
	if j.arrival < m.cfg.Warmup || now > m.cfg.Duration {
		return
	}
	c := &m.perClass[j.class]
	c.Count++
	m.done++
	sojourn := now - j.arrival
	target := m.slo[j.class]
	if m.tslo != nil {
		target = m.tslo[j.tenant*len(m.perClass)+int(j.class)]
	}
	good := target == 0 || sojourn <= target
	if good {
		c.Good++
		m.good++
	}
	c.Sojourn.Add(float64(sojourn))
	c.Slowdown.Add(float64(sojourn) / float64(j.base))
	if len(m.perTenant) > 0 {
		tm := &m.perTenant[j.tenant]
		tm.Completed++
		if good {
			tm.Good++
		}
		tm.Sojourn.Add(float64(sojourn))
	}
}

// tenantDrop books an RX-ring drop on the request's tenant, under the
// same measurement window the admission gate's drop counter uses (a
// drop resolves at its arrival instant).
//
//simvet:hotpath
func (m *metrics) tenantDrop(req workload.Request) {
	if len(m.perTenant) == 0 || req.Arrival < m.cfg.Warmup {
		return
	}
	m.perTenant[req.Tenant].Dropped++
}

func (m *metrics) result(system string, rtt sim.Time) *Result {
	if m.obsBatch != nil {
		m.flushObs()
	}
	window := (m.cfg.Duration - m.cfg.Warmup).Seconds()
	var dropped uint64
	if m.adm != nil {
		dropped = m.adm.dropped
	}
	offered := m.done + dropped
	var dropRate float64
	if offered > 0 {
		dropRate = float64(dropped) / float64(offered)
	}
	for i := range m.perTenant {
		tm := &m.perTenant[i]
		tm.Offered = tm.Completed + tm.Dropped
	}
	return &Result{
		System:     system,
		Config:     m.cfg,
		PerClass:   m.perClass,
		PerTenant:  m.perTenant,
		Completed:  m.done,
		Throughput: float64(m.done) / window,
		RTT:        rtt,
		Offered:    offered,
		Dropped:    dropped,
		DropRate:   dropRate,
		Goodput:    float64(m.good) / window,
	}
}

// Machine is a simulated scheduling system.
type Machine interface {
	// Run simulates the configuration and returns its metrics.
	Run(cfg RunConfig) *Result
	// Name identifies the system in reports.
	Name() string
}

// sloMachine stamps per-class SLO targets onto every RunConfig, so
// SLO-less sweep drivers (whose signatures fix the config fields)
// still produce goodput curves.
type sloMachine struct {
	m    Machine
	slos map[string]sim.Time
}

func (s sloMachine) Run(cfg RunConfig) *Result {
	cfg.SLOs = s.slos
	return s.m.Run(cfg)
}

func (s sloMachine) Name() string { return s.m.Name() }

// WithSLOs wraps a machine so every Run carries the given per-class
// sojourn targets (see RunConfig.SLOs). A nil or empty map returns
// the machine unchanged.
func WithSLOs(m Machine, slos map[string]sim.Time) Machine {
	if len(slos) == 0 {
		return m
	}
	return sloMachine{m: m, slos: slos}
}

// arrivalsMachine stamps an arrival-process spec and tenant table onto
// every RunConfig, so sweep drivers whose signatures fix the config
// fields (Sweep, experiments) still explore the non-Poisson axes.
type arrivalsMachine struct {
	m        Machine
	arrivals string
	tenants  []workload.Tenant
}

func (a arrivalsMachine) Run(cfg RunConfig) *Result {
	cfg.Arrivals = a.arrivals
	cfg.Tenants = a.tenants
	return a.m.Run(cfg)
}

func (a arrivalsMachine) Name() string { return a.m.Name() }

// WithArrivals wraps a machine so every Run uses the given arrival
// process and tenant table (see RunConfig.Arrivals/Tenants). An empty
// spec and nil tenants return the machine unchanged.
func WithArrivals(m Machine, arrivals string, tenants []workload.Tenant) Machine {
	if arrivals == "" && len(tenants) == 0 {
		return m
	}
	return arrivalsMachine{m: m, arrivals: arrivals, tenants: tenants}
}

// String renders a one-line summary, useful in logs and examples.
func (r *Result) String() string {
	s := fmt.Sprintf("%s rate=%.2gMrps tput=%.2gMrps", r.System, r.Config.Rate/1e6, r.Throughput/1e6)
	if r.Dropped > 0 {
		s += fmt.Sprintf(" drops=%d(%.1f%%)", r.Dropped, 100*r.DropRate)
	}
	if r.Goodput < r.Throughput {
		s += fmt.Sprintf(" goodput=%.2gMrps", r.Goodput/1e6)
	}
	for i := range r.PerClass {
		c := &r.PerClass[i]
		if c.Count == 0 {
			continue
		}
		s += fmt.Sprintf(" %s[p999=%.1fµs n=%d]", c.Name, c.Sojourn.P999()/1000, c.Count)
	}
	return s
}
