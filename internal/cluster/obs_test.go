package cluster

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// obsConfig is a short mid-load run that drains fully: arrivals stop
// at Duration and the engine runs until every admitted job completes,
// so conservation (every arrival reaches finish or drop) must hold.
func obsConfig(seed uint64, load float64, workers int) RunConfig {
	w := workload.ExtremeBimodal()
	return RunConfig{
		Workload: w,
		Rate:     load * w.MaxLoad(workers),
		Duration: 2 * sim.Millisecond,
		Warmup:   200 * sim.Microsecond,
		Seed:     seed,
	}
}

// obsMachines builds one instance of every machine model at the given
// worker count — the vocabulary must be identical across all of them.
func obsMachines(workers int) []Machine {
	tq := NewTQParams()
	tq.Workers = workers
	sj := NewShinjukuParams(5 * sim.Microsecond)
	sj.Workers = workers
	iok := NewCaladanParams(IOKernel)
	iok.Workers = workers
	dp := NewCaladanParams(Directpath)
	dp.Workers = workers
	return []Machine{
		NewTQ(tq),
		NewShinjuku(sj),
		NewCaladan(iok),
		NewCaladan(dp),
		NewCentralizedPS(workers, 2*sim.Microsecond, 100*sim.Nanosecond),
	}
}

// TestObsTimelinesValidAcrossMachines runs every machine model over
// several seeds and checks that the recorded timeline obeys the event
// grammar and conserves tasks — the cross-model contract behind
// tqtrace's comparisons.
func TestObsTimelinesValidAcrossMachines(t *testing.T) {
	const workers = 4
	for _, seed := range []uint64{1, 7, 42} {
		for _, m := range obsMachines(workers) {
			cfg := obsConfig(seed, 0.5, workers)
			rec := obs.NewRing(1 << 21)
			cfg.Obs = rec
			res := m.Run(cfg)
			if res.Completed == 0 {
				t.Fatalf("%s seed %d: run completed nothing", m.Name(), seed)
			}
			if rec.Truncated() {
				t.Fatalf("%s seed %d: recording truncated; grow the test ring", m.Name(), seed)
			}
			events := rec.Events()
			if err := obs.Validate(events); err != nil {
				t.Errorf("%s seed %d: invalid timeline: %v", m.Name(), seed, err)
			}
			if err := obs.Conserved(events); err != nil {
				t.Errorf("%s seed %d: task lost: %v", m.Name(), seed, err)
			}
			s := obs.Summarize(m.Name(), events)
			for _, k := range []obs.Kind{obs.Arrive, obs.Dispatch, obs.QuantumStart, obs.QuantumEnd, obs.Finish} {
				if s.Counts[k] == 0 {
					t.Errorf("%s seed %d: no %v events", m.Name(), seed, k)
				}
			}
			if s.Cores > workers {
				t.Errorf("%s seed %d: events name %d cores, machine has %d", m.Name(), seed, s.Cores, workers)
			}
		}
	}
}

// TestObsPreemptionVocabulary pins each model to its preemption
// mechanism: TQ's forced multitasking yields at probes, Shinjuku and
// the ideal CT preempt, Caladan runs to completion and does neither.
func TestObsPreemptionVocabulary(t *testing.T) {
	const workers = 4
	run := func(m Machine) *obs.Summary {
		cfg := obsConfig(3, 0.6, workers)
		rec := obs.NewRing(1 << 21)
		cfg.Obs = rec
		m.Run(cfg)
		if rec.Truncated() {
			t.Fatalf("%s: recording truncated", m.Name())
		}
		return obs.Summarize(m.Name(), rec.Events())
	}
	ms := obsMachines(workers)
	tq, sj, cal, ct := run(ms[0]), run(ms[1]), run(ms[2]), run(ms[4])
	if tq.Counts[obs.ProbeYield] == 0 || tq.Counts[obs.Preempt] != 0 {
		t.Errorf("TQ: probe-yield=%d preempt=%d, want >0 and 0", tq.Counts[obs.ProbeYield], tq.Counts[obs.Preempt])
	}
	if sj.Counts[obs.Preempt] == 0 || sj.Counts[obs.ProbeYield] != 0 {
		t.Errorf("Shinjuku: preempt=%d probe-yield=%d, want >0 and 0", sj.Counts[obs.Preempt], sj.Counts[obs.ProbeYield])
	}
	if cal.Counts[obs.Preempt] != 0 || cal.Counts[obs.ProbeYield] != 0 {
		t.Errorf("Caladan: preempt=%d probe-yield=%d, want both 0", cal.Counts[obs.Preempt], cal.Counts[obs.ProbeYield])
	}
	if ct.Counts[obs.Preempt] == 0 || ct.Counts[obs.ProbeYield] != 0 {
		t.Errorf("CT-PS: preempt=%d probe-yield=%d, want >0 and 0", ct.Counts[obs.Preempt], ct.Counts[obs.ProbeYield])
	}
}

// TestObsDropsRecordedUnderOverload saturates TQ's RX ring and checks
// dropped requests terminate with drop events, keeping the timeline
// conserved even past the knee.
func TestObsDropsRecordedUnderOverload(t *testing.T) {
	// Drops happen at the dispatcher's RX ring, so saturate the
	// dispatcher (≈14Mrps capacity) with tiny jobs, not the workers.
	p := NewTQParams()
	p.Workers = 16
	p.Coroutines = 16
	rec := obs.NewRing(1 << 21)
	res := NewTQ(p).Run(RunConfig{
		Workload: workload.Fixed("tiny", 100*sim.Nanosecond),
		Rate:     60e6,
		Duration: sim.Millisecond,
		Warmup:   200 * sim.Microsecond,
		Seed:     5,
		Obs:      rec,
	})
	if res.Dropped == 0 {
		t.Fatal("overload run dropped nothing; test needs a harsher config")
	}
	if rec.Truncated() {
		t.Fatal("recording truncated; grow the test ring")
	}
	events := rec.Events()
	if err := obs.Validate(events); err != nil {
		t.Errorf("invalid timeline: %v", err)
	}
	if err := obs.Conserved(events); err != nil {
		t.Errorf("task lost: %v", err)
	}
	s := obs.Summarize("TQ", events)
	if s.Dropped == 0 {
		t.Error("summary shows no drops despite Result.Dropped > 0")
	}
}

// TestObsBestCaladanTracesOneMode checks that BestCaladan's judging
// runs stay out of the recorder: the timeline must hold exactly one
// machine's events and still validate.
func TestObsBestCaladanTracesOneMode(t *testing.T) {
	cfg := obsConfig(9, 0.5, 4)
	rec := obs.NewRing(1 << 21)
	cfg.Obs = rec
	res := BestCaladan(cfg, "")
	if rec.Truncated() {
		t.Fatal("recording truncated")
	}
	events := rec.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("invalid timeline: %v", err)
	}
	s := obs.Summarize(res.System, events)
	if s.Tasks == 0 {
		t.Fatal("winner re-run recorded nothing")
	}
	// Had both judging runs leaked in, every task id would appear twice
	// and arrivals would double Finished+Dropped.
	if s.Tasks != s.Finished+s.Dropped {
		t.Fatalf("tasks=%d finished=%d dropped=%d: timeline mixes runs", s.Tasks, s.Finished, s.Dropped)
	}
}
