// Package pifo implements the rank-programmable priority queue behind
// the machine models' scheduling disciplines — a software PIFO
// (Push-In-First-Out) in the sense of the programmable packet
// scheduling literature: elements are pushed with a computed rank,
// Pop returns the minimum-rank element, and equal ranks resolve in
// push order, so every discipline degenerates to FIFO on ties and
// runs stay deterministic.
//
// The package has two halves:
//
//   - Queue, the mechanism: an allocation-free (steady-state) binary
//     min-heap keyed by (rank, seq). It knows nothing about jobs or
//     time — the rank is computed by the caller at push time.
//   - Discipline, the policy: a small closed set of rank functions
//     expressed as data (a table of RankFn), mapping per-job state
//     (RankInputs) to a rank. RR reproduces round-robin processor
//     sharing, FCFS ranks by arrival, SRPT by true remaining service,
//     EDF by class deadline, LAS by attained service, and PrioAge by
//     age-boosted class priority.
//
// Separating the two turns queue discipline into a dimension: a
// machine model owns one Queue per scheduling point and one
// Discipline for the whole run, and swapping the discipline swaps the
// policy without touching the machine's event logic. The kernel-based
// machines in internal/cluster expose this as the registry's NewD
// constructor and the tqsim -discipline flag.
//
// Rank monotonicity is the caller's contract, not the queue's: a
// discipline whose ranks grow with push time (RR, FCFS under
// monotonic arrivals) reproduces plain FIFO order exactly, which is
// how the default configurations of the rewired machines stay
// bit-identical to their pre-PIFO fixtures.
package pifo
