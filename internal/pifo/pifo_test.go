package pifo

import (
	"sort"
	"testing"
)

// lcg is the test's deterministic rank source.
type lcg uint64

func (l *lcg) next() int64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int64(*l >> 33)
}

// TestQueuePopsInRankOrder checks the heap against a sorted reference:
// pushing random ranks and draining must yield a nondecreasing rank
// sequence containing exactly the pushed multiset.
func TestQueuePopsInRankOrder(t *testing.T) {
	var q Queue[int]
	var r lcg = 42
	const n = 4096
	want := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		rank := r.next() % 1000 // force plenty of ties
		q.Push(i, rank)
		want = append(want, rank)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		_, rank, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if rank != want[i] {
			t.Fatalf("pop %d: rank %d, want %d", i, rank, want[i])
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after draining")
	}
}

// TestQueueFIFOTieBreak pins the PIFO contract's deterministic half:
// equal ranks pop in push order, so a single-rank queue is plain FIFO.
func TestQueueFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(i, 7)
	}
	for i := 0; i < n; i++ {
		v, rank, ok := q.Pop()
		if !ok || v != i || rank != 7 {
			t.Fatalf("pop %d: got (%d, %d, %v), want FIFO order", i, v, rank, ok)
		}
	}
}

// TestQueueInterleavedTies checks tie-breaking across interleaved
// pushes and pops: elements re-pushed at the same rank go behind
// everything already queued at that rank.
func TestQueueInterleavedTies(t *testing.T) {
	var q Queue[string]
	q.Push("a", 1)
	q.Push("b", 1)
	if v, _, _ := q.Pop(); v != "a" {
		t.Fatalf("got %q, want a", v)
	}
	q.Push("a", 1) // re-queue at the same rank: now behind b
	q.Push("c", 0) // lower rank jumps the whole tie group
	for i, want := range []string{"c", "b", "a"} {
		if v, _, _ := q.Pop(); v != want {
			t.Fatalf("pop %d: got %q, want %q", i, v, want)
		}
	}
}

// TestQueuePeek checks Peek mirrors the next Pop without consuming it.
func TestQueuePeek(t *testing.T) {
	var q Queue[int]
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported an element")
	}
	q.Push(10, 5)
	q.Push(20, 3)
	pv, pr, ok := q.Peek()
	if !ok || pv != 20 || pr != 3 {
		t.Fatalf("Peek = (%d, %d, %v), want (20, 3, true)", pv, pr, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after Peek, want 2", q.Len())
	}
	v, r, _ := q.Pop()
	if v != pv || r != pr {
		t.Fatalf("Pop = (%d, %d) disagrees with Peek (%d, %d)", v, r, pv, pr)
	}
}

// TestDisciplineRanks pins each discipline's rank function on one set
// of inputs — the policy table as a truth table.
func TestDisciplineRanks(t *testing.T) {
	in := RankInputs{
		Now:       1000,
		Arrival:   400,
		Remaining: 250,
		Attained:  150,
		Deadline:  900,
		Priority:  2,
	}
	cases := []struct {
		d    Discipline
		want int64
	}{
		{RR, 1000},
		{FCFS, 400},
		{SRPT, 250},
		{EDF, 900},
		{LAS, 150},
		{PrioAge, 400 + 2*AgeBoost},
	}
	for _, c := range cases {
		if got := c.d.Rank(in); got != c.want {
			t.Errorf("%s.Rank = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestParseNamesRoundTrip checks Parse/String/Names agree, plus the
// sjf alias and the error path.
func TestParseNamesRoundTrip(t *testing.T) {
	for i, name := range Names() {
		d, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if int(d) != i {
			t.Errorf("Parse(%q) = %d, want %d", name, d, i)
		}
		if d.String() != name {
			t.Errorf("%d.String() = %q, want %q", i, d.String(), name)
		}
	}
	if d, err := Parse("sjf"); err != nil || d != SRPT {
		t.Errorf("Parse(sjf) = (%v, %v), want (SRPT, nil)", d, err)
	}
	if _, err := Parse("wfq"); err == nil {
		t.Error("Parse(wfq) succeeded, want error")
	}
	if got := Discipline(99).String(); got != "pifo.Discipline(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

// TestChurnDeterministic checks the benchmark body is a pure function
// of its arguments (it feeds the fixed bench matrix).
func TestChurnDeterministic(t *testing.T) {
	a := Churn(256, 10_000, 61)
	b := Churn(256, 10_000, 61)
	if a != b {
		t.Fatalf("Churn not deterministic: %d vs %d", a, b)
	}
	if c := Churn(256, 10_000, 62); c == a {
		t.Log("different seed produced the same checksum (possible but unlikely)")
	}
}

// TestPushPopSteadyStateAllocs is the hotpath guard behind the
// //simvet:hotpath annotations on Push and Pop: once the queue has
// reached its working depth, a pop/push cycle must not allocate. The
// bound uses the testing.B convention (allocs/op truncated toward
// zero), so amortized one-time heap growth is tolerated but any
// per-operation allocation fails.
func TestPushPopSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc guarantee is for production builds")
	}
	var q Queue[int]
	var r lcg = 7
	for i := 0; i < 1024; i++ {
		q.Push(i, r.next())
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		v, _, _ := q.Pop()
		q.Push(v, r.next())
	})
	if int64(allocs) != 0 {
		t.Fatalf("steady-state pop/push allocates: %.4f allocs/op, want 0", allocs)
	}
}

// BenchmarkPushPop is the in-package twin of the bench matrix's
// pifo/push-pop entry.
func BenchmarkPushPop(b *testing.B) {
	b.ReportAllocs()
	Churn(1024, b.N, 61)
}
