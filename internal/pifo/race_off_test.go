//go:build !race

package pifo

// raceEnabled reports whether the race detector instruments this build;
// allocation-guard tests skip under it (instrumentation allocates).
const raceEnabled = false
