package pifo

import "fmt"

// Queue is the PIFO mechanism: a binary min-heap keyed by (rank, seq).
// Push inserts an element with a caller-computed rank; Pop removes the
// element with the smallest rank, breaking ties in push order. The
// backing array is reused across operations, so a queue that has
// reached its working depth never allocates again (the steady-state
// regime the simulator's worker queues live in).
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	rank int64
	seq  uint64
	v    T
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push inserts v with the given rank.
//
//simvet:hotpath
func (q *Queue[T]) Push(v T, rank int64) {
	q.seq++
	q.items = append(q.items, item[T]{rank: rank, seq: q.seq, v: v})
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}

// Pop removes and returns the minimum-rank element and its rank. The
// last result is false if the queue is empty.
//
//simvet:hotpath
func (q *Queue[T]) Pop() (T, int64, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = item[T]{} // release for GC
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.items) && q.less(l, min) {
			min = l
		}
		if r < len(q.items) && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
	return top.v, top.rank, true
}

// Peek returns the minimum-rank element and its rank without removing
// it. The last result is false if the queue is empty.
func (q *Queue[T]) Peek() (T, int64, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, 0, false
	}
	return q.items[0].v, q.items[0].rank, true
}

// Discipline selects a rank function. The zero value is RR.
type Discipline int

// The scheduling disciplines, in registry order (Names lists them
// under these indices).
const (
	// RR ranks by push time: with monotonic pushes the queue is plain
	// FIFO over push order — round-robin processor sharing when the
	// pusher re-enqueues preempted work at its current time.
	RR Discipline = iota
	// FCFS ranks by arrival time: first-come-first-served regardless
	// of when the job reaches the queue.
	FCFS
	// SRPT ranks by remaining service — shortest remaining processing
	// time, the clairvoyant mean-optimal policy (SJF for
	// run-to-completion queues, where remaining equals total demand).
	SRPT
	// EDF ranks by deadline (arrival plus the class SLO target) —
	// earliest deadline first. With no SLO configured the deadline
	// degenerates to the arrival instant, i.e. FCFS.
	EDF
	// LAS ranks by attained service — least attained service first,
	// the blind approximation of SRPT.
	LAS
	// PrioAge ranks by arrival time boosted per priority level:
	// rank = arrival + priority*AgeBoost. Priority 0 is served ahead
	// of priority 1 until the latter has aged AgeBoost — strict
	// priority with starvation bounded by age.
	PrioAge
)

// AgeBoost is PrioAge's per-level rank penalty in nanoseconds: a job
// one priority level down is served as if it had arrived 100µs later,
// so lower classes lag by at most that age before winning ties.
const AgeBoost = 100_000

// RankInputs is the per-element state a rank function may read, all in
// the simulator's nanosecond integer domain. Callers fill the fields
// their discipline set needs; unused fields may stay zero.
type RankInputs struct {
	// Now is the push instant.
	Now int64
	// Arrival is the element's arrival instant.
	Arrival int64
	// Remaining is the true remaining service demand — reading it
	// makes a discipline clairvoyant (SRPT).
	Remaining int64
	// Attained is the service received so far.
	Attained int64
	// Deadline is the absolute SLO deadline (arrival + target).
	Deadline int64
	// Priority is the element's priority level, 0 highest.
	Priority int64
}

// RankFn maps per-element state to a rank — a scheduling policy as a
// value.
type RankFn func(RankInputs) int64

// rankFns is the policy table: one rank function per Discipline,
// indexed by it. The disciplines are data, not code paths — adding one
// is a table row plus a name.
var rankFns = [...]RankFn{
	RR:      func(in RankInputs) int64 { return in.Now },
	FCFS:    func(in RankInputs) int64 { return in.Arrival },
	SRPT:    func(in RankInputs) int64 { return in.Remaining },
	EDF:     func(in RankInputs) int64 { return in.Deadline },
	LAS:     func(in RankInputs) int64 { return in.Attained },
	PrioAge: func(in RankInputs) int64 { return in.Arrival + in.Priority*AgeBoost },
}

// names holds the stable flag-facing discipline names, indexed like
// rankFns.
var names = [...]string{
	RR:      "rr",
	FCFS:    "fcfs",
	SRPT:    "srpt",
	EDF:     "edf",
	LAS:     "las",
	PrioAge: "prio-age",
}

// Rank computes the discipline's rank for the given inputs.
//
//simvet:hotpath
func (d Discipline) Rank(in RankInputs) int64 { return rankFns[d](in) }

// String returns the discipline's stable name.
func (d Discipline) String() string {
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("pifo.Discipline(%d)", int(d))
	}
	return names[d]
}

// Names lists every discipline name in Discipline order.
func Names() []string {
	out := make([]string, len(names))
	copy(out, names[:])
	return out
}

// Parse resolves a discipline name ("rr", "fcfs", "srpt", "edf",
// "las", "prio-age"; "sjf" is accepted as an alias for srpt).
func Parse(name string) (Discipline, error) {
	if name == "sjf" {
		return SRPT, nil
	}
	for d, n := range names {
		if n == name {
			return Discipline(d), nil
		}
	}
	return 0, fmt.Errorf("pifo: unknown discipline %q (known: rr, fcfs, srpt, edf, las, prio-age)", name)
}

// Churn exercises a standing queue of the given depth with n pop/push
// pairs under pseudo-random ranks — the benchmark body behind the
// pifo/push-pop matrix entry. It returns a checksum so the work cannot
// be optimized away.
func Churn(depth, n int, seed uint64) int64 {
	if depth <= 0 || n <= 0 {
		panic("pifo: Churn needs positive depth and n")
	}
	var q Queue[int]
	s := seed
	for i := 0; i < depth; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		q.Push(i, int64(s>>33))
	}
	var sum int64
	for i := 0; i < n; i++ {
		v, _, _ := q.Pop()
		sum += int64(v)
		s = s*6364136223846793005 + 1442695040888963407
		q.Push(v, int64(s>>33))
	}
	return sum
}
