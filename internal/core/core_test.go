package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q FIFO[int]
	next := 0
	expect := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < round%7+1; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < round%5 && q.Len() > 0; i++ {
			v, _ := q.Pop()
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != expect {
			t.Fatalf("drain got %d, want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect, next)
	}
}

func TestFIFOPeek(t *testing.T) {
	var q FIFO[string]
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = (%q, %v), want (a, true)", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("Peek consumed an element")
	}
}

func TestFIFOWraparoundGrowth(t *testing.T) {
	// Force growth while head is in the middle of the ring.
	var q FIFO[int]
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	for i := 6; i < 30; i++ {
		q.Push(i)
	}
	for want := 4; want < 30; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, want)
		}
	}
}

func TestLASQueueOrdering(t *testing.T) {
	var q LASQueue[string]
	q.Push("c", 30)
	q.Push("a", 10)
	q.Push("b", 20)
	wantOrder := []string{"a", "b", "c"}
	wantAtt := []int64{10, 20, 30}
	for i := range wantOrder {
		v, att, ok := q.Pop()
		if !ok || v != wantOrder[i] || att != wantAtt[i] {
			t.Fatalf("pop %d = (%v,%d,%v)", i, v, att, ok)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty LAS queue returned ok")
	}
}

func TestLASQueueTiesFIFO(t *testing.T) {
	var q LASQueue[int]
	for i := 0; i < 10; i++ {
		q.Push(i, 5)
	}
	for i := 0; i < 10; i++ {
		v, _, _ := q.Pop()
		if v != i {
			t.Fatalf("ties not FIFO: got %d at position %d", v, i)
		}
	}
}

func TestLASQueueProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var q LASQueue[int]
		for i := 0; i < 100; i++ {
			q.Push(i, int64(r.Uint64n(50)))
		}
		prev := int64(-1)
		for q.Len() > 0 {
			_, att, _ := q.Pop()
			if att < prev {
				return false
			}
			prev = att
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// fakeView is a fixed-load View for balancer tests.
type fakeView struct {
	lens   []int
	quanta []int64
}

func (v fakeView) Workers() int       { return len(v.lens) }
func (v fakeView) QueueLen(w int) int { return v.lens[w] }
func (v fakeView) ServicedQuanta(w int) int64 {
	if v.quanta == nil {
		return 0
	}
	return v.quanta[w]
}

func TestJSQPicksShortest(t *testing.T) {
	b := NewJSQ(MSQ{})
	v := fakeView{lens: []int{3, 1, 2, 5}}
	if got := b.Pick(v); got != 1 {
		t.Fatalf("JSQ picked %d, want 1", got)
	}
}

func TestJSQMSQTieBreak(t *testing.T) {
	b := NewJSQ(MSQ{})
	// Workers 0, 2, 3 tie at queue length 1; worker 2 has the most
	// serviced quanta for its current jobs.
	v := fakeView{
		lens:   []int{1, 4, 1, 1},
		quanta: []int64{10, 99, 70, 30},
	}
	if got := b.Pick(v); got != 2 {
		t.Fatalf("JSQ+MSQ picked %d, want 2", got)
	}
}

func TestMSQDeterministicOnFullTie(t *testing.T) {
	v := fakeView{lens: []int{1, 1}, quanta: []int64{5, 5}}
	if got := (MSQ{}).Break(v, []int{0, 1}); got != 0 {
		t.Fatalf("MSQ full tie picked %d, want 0 (lowest index)", got)
	}
}

func TestRandomTieUniform(t *testing.T) {
	tie := RandomTie{R: rng.New(1)}
	v := fakeView{lens: []int{0, 0, 0}}
	counts := make([]int, 3)
	cands := []int{0, 1, 2}
	for i := 0; i < 30000; i++ {
		counts[tie.Break(v, cands)]++
	}
	for w, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("worker %d picked %d/30000 times, want ~10000", w, c)
		}
	}
}

func TestPowerOfTwoPrefersShorter(t *testing.T) {
	b := PowerOfTwo{R: rng.New(2)}
	v := fakeView{lens: []int{0, 10}}
	// With 2 workers, both are always sampled; must always pick 0.
	for i := 0; i < 100; i++ {
		if got := b.Pick(v); got != 0 {
			t.Fatalf("PowerOfTwo picked %d, want 0", got)
		}
	}
}

func TestPowerOfTwoSamplesDistinct(t *testing.T) {
	b := PowerOfTwo{R: rng.New(3)}
	// All equal loads: every worker should be reachable.
	v := fakeView{lens: make([]int, 8)}
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		seen[b.Pick(v)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("PowerOfTwo reached %d/8 workers", len(seen))
	}
}

func TestRandomBalancerRange(t *testing.T) {
	b := Random{R: rng.New(4)}
	v := fakeView{lens: make([]int, 5)}
	for i := 0; i < 1000; i++ {
		w := b.Pick(v)
		if w < 0 || w >= 5 {
			t.Fatalf("Random picked out-of-range worker %d", w)
		}
	}
}

func TestRSSSteerStableAndBounded(t *testing.T) {
	var rss RSS
	for key := uint64(0); key < 1000; key++ {
		w := rss.Steer(key, 16)
		if w < 0 || w >= 16 {
			t.Fatalf("RSS steered key %d to %d", key, w)
		}
		if w2 := rss.Steer(key, 16); w2 != w {
			t.Fatalf("RSS not deterministic for key %d", key)
		}
	}
}

func TestRSSBalancesRoughly(t *testing.T) {
	var rss RSS
	const n = 160000
	counts := make([]int, 16)
	for key := uint64(0); key < n; key++ {
		counts[rss.Steer(key, 16)]++
	}
	want := n / 16
	for w, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("RSS worker %d got %d keys, want about %d", w, c, want)
		}
	}
}

func TestLoadTrackerQueueLen(t *testing.T) {
	lt := NewLoadTracker(2, 8)
	lt.Assign(0)
	lt.Assign(0)
	lt.Assign(1)
	if got := lt.QueueLen(0); got != 2 {
		t.Fatalf("QueueLen(0) = %d, want 2", got)
	}
	lt.ObserveFinished(0, 1) // worker 0 finished one job
	if got := lt.QueueLen(0); got != 1 {
		t.Fatalf("QueueLen(0) after finish = %d, want 1", got)
	}
	if got := lt.QueueLen(1); got != 1 {
		t.Fatalf("QueueLen(1) = %d, want 1", got)
	}
}

func TestLoadTrackerCounterWrap(t *testing.T) {
	// 4-bit worker counter wraps at 16; the tracker must still recover
	// totals as long as it reads often enough.
	lt := NewLoadTracker(1, 4)
	var raw uint64
	for i := 0; i < 100; i++ {
		lt.Assign(0)
		raw = (raw + 1) & 0xf
		lt.ObserveFinished(0, raw)
		if got := lt.QueueLen(0); got != 0 {
			t.Fatalf("step %d: QueueLen = %d, want 0", i, got)
		}
	}
}

func TestLoadTrackerQuanta(t *testing.T) {
	lt := NewLoadTracker(3, 32)
	lt.ObserveQuanta(1, 42)
	if got := lt.ServicedQuanta(1); got != 42 {
		t.Fatalf("ServicedQuanta = %d, want 42", got)
	}
}

func TestJSQUsesLoadTrackerEndToEnd(t *testing.T) {
	lt := NewLoadTracker(3, 16)
	b := NewJSQ(MSQ{})
	// Assign round-robin-ish and verify JSQ follows the shortest queue.
	lt.Assign(0)
	lt.Assign(0)
	lt.Assign(1)
	if got := b.Pick(lt); got != 2 {
		t.Fatalf("pick = %d, want 2 (empty)", got)
	}
	lt.Assign(2)
	lt.Assign(2)
	// Queues now 2,1,2 -> worker 1.
	if got := b.Pick(lt); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func BenchmarkJSQPick16(b *testing.B) {
	lt := NewLoadTracker(16, 32)
	r := rng.New(1)
	for w := 0; w < 16; w++ {
		for i := 0; i < r.Intn(8); i++ {
			lt.Assign(w)
		}
	}
	bal := NewJSQ(MSQ{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bal.Pick(lt)
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	var q FIFO[uint64]
	for i := 0; i < 64; i++ {
		q.Push(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := q.Pop()
		q.Push(v)
	}
}
