// Package core implements the scheduling-policy building blocks of Tiny
// Quanta as plain data structures, shared by the discrete-event machine
// models (internal/cluster) and the live goroutine runtime
// (internal/tqrt):
//
//   - FIFO: the processor-sharing run queue used by TQ workers (§3.2)
//     and the FCFS queue used by the Caladan baseline;
//   - LASQueue: a least-attained-service queue, the dynamic-quantum
//     policy the probe mechanism is designed to support (§3.1);
//   - LoadTracker: the dispatcher's view of per-worker load, recovered
//     from wrapping worker-side counters by delta reads (§4);
//   - Balancer implementations: JSQ (with pluggable tie-breaking,
//     including the paper's MSQ heuristic), power-of-two, random, and
//     RSS-hash steering.
package core

import "repro/internal/rng"

// FIFO is an allocation-free ring-buffer queue. TQ's per-worker
// processor-sharing scheduler is exactly this structure: yielded
// coroutines enqueue at the tail and the head is resumed next (§4).
type FIFO[T any] struct {
	buf  []T
	head int
	size int
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return q.size }

// Push appends v at the tail.
func (q *FIFO[T]) Push(v T) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
}

// Pop removes and returns the head. The second result is false if the
// queue is empty.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release for GC
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v, true
}

// Peek returns the head without removing it.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

func (q *FIFO[T]) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]T, n)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// LASQueue orders jobs by least attained service, approximating SRPT
// without service-time knowledge. Push records a job with its attained
// service; Pop returns the job that has received the least so far.
// It is a binary min-heap keyed by (attained, seq) so that ties resolve
// in insertion order, keeping runs deterministic.
type LASQueue[T any] struct {
	items []lasItem[T]
	seq   uint64
}

type lasItem[T any] struct {
	attained int64
	seq      uint64
	v        T
}

// Len reports the number of queued jobs.
func (q *LASQueue[T]) Len() int { return len(q.items) }

// Push inserts v with the given attained service.
func (q *LASQueue[T]) Push(v T, attained int64) {
	q.seq++
	q.items = append(q.items, lasItem[T]{attained: attained, seq: q.seq, v: v})
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *LASQueue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.attained != b.attained {
		return a.attained < b.attained
	}
	return a.seq < b.seq
}

// Pop removes and returns the job with least attained service.
func (q *LASQueue[T]) Pop() (T, int64, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = lasItem[T]{} // release for GC
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.items) && q.less(l, min) {
			min = l
		}
		if r < len(q.items) && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
	return top.v, top.attained, true
}

// View is what a Balancer may observe about worker load — the
// dispatcher-visible statistics of §4 and nothing else (the policies
// are blind: no service times, no job types).
type View interface {
	// Workers returns the number of worker cores.
	Workers() int
	// QueueLen returns the number of unfinished jobs assigned to
	// worker w, as recovered by the dispatcher's counters.
	QueueLen(w int) int
	// ServicedQuanta returns the number of quanta worker w has
	// serviced for its *current* jobs, the statistic behind MSQ
	// tie-breaking.
	ServicedQuanta(w int) int64
}

// Balancer selects the worker that should receive an incoming job.
type Balancer interface {
	Pick(v View) int
	Name() string
}

// TieBreaker chooses among workers that are tied on queue length.
// candidates is reused between calls and must not be retained.
type TieBreaker interface {
	Break(v View, candidates []int) int
	Name() string
}

// MSQ is the paper's Maximum-Serviced-Quanta tie-breaker (§3.2): among
// tied workers, pick the one whose current jobs have received the most
// quanta, expecting that core to have the smallest remaining work.
// Remaining ties resolve to the lowest worker index (deterministic).
type MSQ struct{}

// Break implements TieBreaker.
func (MSQ) Break(v View, candidates []int) int {
	best := candidates[0]
	bestQ := v.ServicedQuanta(best)
	for _, w := range candidates[1:] {
		if q := v.ServicedQuanta(w); q > bestQ {
			best, bestQ = w, q
		}
	}
	return best
}

// Name implements TieBreaker.
func (MSQ) Name() string { return "msq" }

// RandomTie breaks ties uniformly at random — the "naive" policy the
// paper compares MSQ against.
type RandomTie struct{ R *rng.Rand }

// Break implements TieBreaker.
func (t RandomTie) Break(_ View, candidates []int) int {
	return candidates[t.R.Intn(len(candidates))]
}

// Name implements TieBreaker.
func (RandomTie) Name() string { return "random-tie" }

// JSQ is join-the-shortest-queue load balancing with a pluggable
// tie-breaker — TQ's dispatcher policy.
type JSQ struct {
	Tie TieBreaker
	// scratch avoids a per-pick allocation for the candidate list.
	scratch []int
}

// NewJSQ returns a JSQ balancer with the given tie-breaker.
func NewJSQ(tie TieBreaker) *JSQ { return &JSQ{Tie: tie} }

// Pick implements Balancer.
func (b *JSQ) Pick(v View) int {
	n := v.Workers()
	minLen := v.QueueLen(0)
	b.scratch = append(b.scratch[:0], 0)
	for w := 1; w < n; w++ {
		l := v.QueueLen(w)
		switch {
		case l < minLen:
			minLen = l
			b.scratch = append(b.scratch[:0], w)
		case l == minLen:
			b.scratch = append(b.scratch, w)
		}
	}
	if len(b.scratch) == 1 {
		return b.scratch[0]
	}
	return b.Tie.Break(v, b.scratch)
}

// Name implements Balancer.
func (b *JSQ) Name() string { return "jsq+" + b.Tie.Name() }

// PowerOfTwo samples two distinct workers uniformly and assigns to the
// shorter queue (the TQ-POWER-TWO variant of §5.4).
type PowerOfTwo struct{ R *rng.Rand }

// Pick implements Balancer.
func (b PowerOfTwo) Pick(v View) int {
	n := v.Workers()
	if n == 1 {
		return 0
	}
	a := b.R.Intn(n)
	c := b.R.Intn(n - 1)
	if c >= a {
		c++
	}
	if v.QueueLen(c) < v.QueueLen(a) {
		return c
	}
	return a
}

// Name implements Balancer.
func (PowerOfTwo) Name() string { return "power-of-two" }

// Random assigns uniformly at random (the TQ-RAND variant of §5.4).
type Random struct{ R *rng.Rand }

// Pick implements Balancer.
func (b Random) Pick(v View) int { return b.R.Intn(v.Workers()) }

// Name implements Balancer.
func (Random) Name() string { return "random" }

// RSS steers by hashing a flow key onto a worker, modelling Caladan's
// NIC receive-side scaling (§5.1). The paper's open-loop client sends
// each request on its own flow, so Steer is called with the request ID.
type RSS struct{}

// Steer maps a flow key to a worker index in [0, workers).
func (RSS) Steer(key uint64, workers int) int {
	// SplitMix64 finalizer: full-avalanche 64-bit mix.
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(workers))
}

// LoadTracker is the dispatcher-side bookkeeping behind JSQ (§4): it
// counts jobs assigned to each worker and recovers each worker's
// finished-job total from a wrapping counter via delta reads, so the
// difference is the worker's unfinished-job count. It also caches the
// last-read serviced-quanta statistic for MSQ.
type LoadTracker struct {
	assigned []uint64
	finished []uint64
	lastRaw  []uint64
	quanta   []int64
	width    uint
}

// NewLoadTracker returns a tracker for n workers whose finished-job
// counters wrap at 2^width.
func NewLoadTracker(n int, width uint) *LoadTracker {
	if width < 1 || width > 64 {
		panic("core: counter width out of range")
	}
	return &LoadTracker{
		assigned: make([]uint64, n),
		finished: make([]uint64, n),
		lastRaw:  make([]uint64, n),
		quanta:   make([]int64, n),
		width:    width,
	}
}

// Assign records that one job was forwarded to worker w.
func (lt *LoadTracker) Assign(w int) { lt.assigned[w]++ }

// ObserveFinished incorporates a raw read of worker w's wrapping
// finished-jobs counter.
func (lt *LoadTracker) ObserveFinished(w int, raw uint64) {
	var delta uint64
	if lt.width == 64 {
		delta = raw - lt.lastRaw[w]
	} else {
		mask := uint64(1)<<lt.width - 1
		delta = (raw - lt.lastRaw[w]) & mask
	}
	lt.finished[w] += delta
	lt.lastRaw[w] = raw
}

// ObserveQuanta records the latest serviced-quanta statistic read from
// worker w.
func (lt *LoadTracker) ObserveQuanta(w int, quanta int64) { lt.quanta[w] = quanta }

// Workers implements View.
func (lt *LoadTracker) Workers() int { return len(lt.assigned) }

// QueueLen implements View: assigned minus finished.
func (lt *LoadTracker) QueueLen(w int) int {
	return int(lt.assigned[w] - lt.finished[w])
}

// ServicedQuanta implements View.
func (lt *LoadTracker) ServicedQuanta(w int) int64 { return lt.quanta[w] }

var _ View = (*LoadTracker)(nil)
