package kvstore

import "bytes"

// source is one ordered input to the merge: the memtable or a run.
// Sources are ordered newest-first; on key ties the newest wins and the
// older versions are skipped, giving LSM overwrite semantics.
type source interface {
	// peek returns the current entry without advancing.
	peek() (key, val []byte, tomb, ok bool)
	// advance moves past the current entry.
	advance()
}

type memIter struct{ n *node }

func (it *memIter) peek() ([]byte, []byte, bool, bool) {
	if it.n == nil {
		return nil, nil, false, false
	}
	return it.n.key, it.n.val, it.n.tomb, true
}

func (it *memIter) advance() {
	if it.n != nil {
		it.n = it.n.next[0]
	}
}

type runIter struct {
	r *run
	i int
}

func (it *runIter) peek() ([]byte, []byte, bool, bool) {
	if it.i >= len(it.r.keys) {
		return nil, nil, false, false
	}
	it.r.touch(it.i)
	return it.r.keys[it.i], it.r.vals[it.i], it.r.tombs[it.i], true
}

func (it *runIter) advance() { it.i++ }

// mergeIter yields entries in ascending key order across all sources,
// collapsing duplicate keys to the newest version (including
// tombstones, which callers filter).
type mergeIter struct{ sources []source }

func (m *mergeIter) next() (key, val []byte, tomb, ok bool) {
	best := -1
	var bestKey []byte
	for i, s := range m.sources {
		k, _, _, sok := s.peek()
		if !sok {
			continue
		}
		if best == -1 || bytes.Compare(k, bestKey) < 0 {
			best, bestKey = i, k
		}
	}
	if best == -1 {
		return nil, nil, false, false
	}
	key, val, tomb, _ = m.sources[best].peek()
	// Advance the winner and every older source holding the same key.
	for i := best; i < len(m.sources); i++ {
		if k, _, _, sok := m.sources[i].peek(); sok && bytes.Equal(k, key) {
			m.sources[i].advance()
		}
	}
	return key, val, tomb, true
}

// newMergeIter positions a merge across memtable and all runs at the
// first key >= start.
func (s *Store) newMergeIter(start []byte) *mergeIter {
	m := &mergeIter{}
	mi := &memIter{n: s.mem.head.next[0]}
	if start != nil {
		mi.n = s.mem.seek(start, nil)
	}
	m.sources = append(m.sources, mi)
	for _, r := range s.runs {
		ri := &runIter{r: r}
		if start != nil {
			ri.i = r.find(start)
		}
		m.sources = append(m.sources, ri)
	}
	return m
}

// newRunsIter merges only the runs (used by compaction; the memtable is
// excluded so in-flight writes stay in place).
func (s *Store) newRunsIter(start []byte) *mergeIter {
	m := &mergeIter{}
	for _, r := range s.runs {
		ri := &runIter{r: r}
		if start != nil {
			ri.i = r.find(start)
		}
		m.sources = append(m.sources, ri)
	}
	return m
}
