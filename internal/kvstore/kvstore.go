// Package kvstore is an in-memory ordered key-value store standing in
// for the paper's RocksDB workload (§5.1): an LSM-flavoured design with
// a skiplist memtable and immutable sorted runs, supporting the GET and
// SCAN operations of Table 1.
//
// Two properties matter for the reproduction. First, GET is a µs-scale
// point lookup while SCAN walks a large key range, giving the
// 1.2µs/675µs bimodality the scheduling experiments need when run on
// the live runtime. Second, every memory touch can be reported to a
// Tracer at cache-line granularity, producing the address traces behind
// the reuse-distance histograms of Figure 15 (the paper uses a Pin
// tool; here the store itself is the instrumentation point).
package kvstore

import (
	"bytes"

	"repro/internal/rng"
)

// Tracer receives the store's memory accesses: addr is a synthetic byte
// address and size the touched extent. Addresses are stable and unique
// per structure, laid out the way the real data structures are (nodes
// scattered, run arrays contiguous), so reuse distances computed over
// the trace mirror the real access pattern.
type Tracer func(addr uint64, size int)

// Config configures a Store.
type Config struct {
	// MemtableBytes flushes the memtable into a sorted run once its
	// approximate footprint exceeds this. Zero means 4MiB.
	MemtableBytes int
	// MaxRuns triggers a full merge compaction when exceeded. Zero
	// means 8.
	MaxRuns int
	// Seed drives the skiplist level generator.
	Seed uint64
	// Trace, if non-nil, observes every memory access.
	Trace Tracer
}

const (
	maxLevel     = 12
	nodeHeader   = 64 // synthetic footprint of a skiplist node, bytes
	entryHeader  = 32 // synthetic footprint of a run entry descriptor
	defaultMemtB = 4 << 20
	defaultRuns  = 8
)

// node is a skiplist node. The synthetic address models that nodes are
// individually heap-allocated (poor locality), unlike run arrays.
type node struct {
	key, val []byte
	tomb     bool
	next     []*node
	addr     uint64
}

// memtable is a skiplist ordered by key.
type memtable struct {
	head  *node
	rand  *rng.Rand
	size  int // approximate bytes
	count int
	alloc *uint64
	trace Tracer
}

func newMemtable(r *rng.Rand, alloc *uint64, trace Tracer) *memtable {
	return &memtable{
		head:  &node{next: make([]*node, maxLevel)},
		rand:  r,
		alloc: alloc,
		trace: trace,
	}
}

func (m *memtable) touch(n *node, keyBytes int) {
	if m.trace != nil && n.addr != 0 {
		m.trace(n.addr, nodeHeader+keyBytes)
	}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && m.rand.Uint64n(4) == 0 {
		lvl++
	}
	return lvl
}

// seek returns the node with the largest key < key at every level,
// filling prev.
func (m *memtable) seek(key []byte, prev *[maxLevel]*node) *node {
	x := m.head
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil {
			m.touch(x.next[lvl], len(x.next[lvl].key))
			if bytes.Compare(x.next[lvl].key, key) >= 0 {
				break
			}
			x = x.next[lvl]
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.next[0]
}

func (m *memtable) put(key, val []byte, tomb bool) {
	var prev [maxLevel]*node
	found := m.seek(key, &prev)
	if found != nil && bytes.Equal(found.key, key) {
		m.size += len(val) - len(found.val)
		found.val = append(found.val[:0], val...)
		found.tomb = tomb
		return
	}
	lvl := m.randomLevel()
	n := &node{
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), val...),
		tomb: tomb,
		next: make([]*node, lvl),
	}
	*m.alloc += nodeHeader + uint64(len(key)+len(val))
	// Round the bump allocator to a fresh cache line per node.
	*m.alloc = (*m.alloc + 63) &^ 63
	n.addr = *m.alloc
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	m.size += nodeHeader + len(key) + len(val)
	m.count++
}

func (m *memtable) get(key []byte) (*node, bool) {
	n := m.seek(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n, true
	}
	return nil, false
}

// run is an immutable sorted array of entries, the product of a flush
// or compaction. Entries live in one contiguous synthetic address
// range, modelling an SSTable block in memory.
type run struct {
	keys, vals [][]byte
	tombs      []bool
	base       uint64 // synthetic address of entry 0
	trace      Tracer
	// filter lets GETs skip runs that definitely lack a key, as
	// RocksDB's per-SSTable Bloom filters do.
	filter *bloom
}

func (r *run) touch(i int) {
	if r.trace != nil {
		r.trace(r.base+uint64(i)*entryHeader, entryHeader+len(r.keys[i]))
	}
}

// find returns the index of the first key >= key.
func (r *run) find(key []byte) int {
	lo, hi := 0, len(r.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		r.touch(mid)
		if bytes.Compare(r.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Store is the ordered KV store.
type Store struct {
	cfg   Config
	mem   *memtable
	runs  []*run // newest first
	rand  *rng.Rand
	alloc uint64 // synthetic bump allocator for trace addresses
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = defaultMemtB
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = defaultRuns
	}
	s := &Store{cfg: cfg, rand: rng.New(cfg.Seed), alloc: 64}
	s.mem = newMemtable(s.rand.Split(), &s.alloc, cfg.Trace)
	return s
}

// Put inserts or overwrites a key.
func (s *Store) Put(key, val []byte) {
	s.mem.put(key, val, false)
	s.maybeFlush()
}

// Delete removes a key (tombstone semantics, as in an LSM tree).
func (s *Store) Delete(key []byte) {
	s.mem.put(key, nil, true)
	s.maybeFlush()
}

// Get returns the value for key. The returned slice is owned by the
// store and must not be modified.
func (s *Store) Get(key []byte) ([]byte, bool) {
	if n, ok := s.mem.get(key); ok {
		if n.tomb {
			return nil, false
		}
		return n.val, true
	}
	for _, r := range s.runs {
		if r.filter != nil && !r.filter.mayContain(key) {
			continue
		}
		i := r.find(key)
		if i < len(r.keys) && bytes.Equal(r.keys[i], key) {
			if r.tombs[i] {
				return nil, false
			}
			return r.vals[i], true
		}
	}
	return nil, false
}

// Scan visits up to n live entries with key >= start in ascending key
// order, calling fn for each; fn returning false stops early. It
// returns the number of entries visited. The slices passed to fn are
// owned by the store.
func (s *Store) Scan(start []byte, n int, fn func(key, val []byte) bool) int {
	it := s.newMergeIter(start)
	visited := 0
	for visited < n {
		key, val, tomb, ok := it.next()
		if !ok {
			break
		}
		if tomb {
			continue
		}
		visited++
		if !fn(key, val) {
			break
		}
	}
	return visited
}

// Len returns the number of live keys. It is O(n) and intended for
// tests and examples.
func (s *Store) Len() int {
	count := 0
	s.Scan(nil, 1<<62, func(_, _ []byte) bool { count++; return true })
	return count
}

// Flush forces the memtable into a sorted run.
func (s *Store) Flush() {
	if s.mem.count == 0 {
		return
	}
	r := &run{base: 0, trace: s.cfg.Trace}
	for n := s.mem.head.next[0]; n != nil; n = n.next[0] {
		r.keys = append(r.keys, n.key)
		r.vals = append(r.vals, n.val)
		r.tombs = append(r.tombs, n.tomb)
	}
	s.alloc = (s.alloc + 63) &^ 63
	r.base = s.alloc
	s.alloc += uint64(len(r.keys)) * entryHeader
	s.attachFilter(r)
	s.runs = append([]*run{r}, s.runs...)
	s.mem = newMemtable(s.rand.Split(), &s.alloc, s.cfg.Trace)
	if len(s.runs) > s.cfg.MaxRuns {
		s.compact()
	}
}

// attachFilter builds the run's Bloom filter and reserves trace
// address space for it.
func (s *Store) attachFilter(r *run) {
	s.alloc = (s.alloc + 63) &^ 63
	f := newBloom(len(r.keys), s.alloc, s.cfg.Trace)
	s.alloc += f.sizeBytes()
	for _, k := range r.keys {
		f.add(k)
	}
	r.filter = f
}

func (s *Store) maybeFlush() {
	if s.mem.size >= s.cfg.MemtableBytes {
		s.Flush()
	}
}

// compact merges all runs into one, dropping shadowed versions and
// tombstones (a full-merge compaction).
func (s *Store) compact() {
	it := s.newRunsIter(nil)
	merged := &run{trace: s.cfg.Trace}
	for {
		key, val, tomb, ok := it.next()
		if !ok {
			break
		}
		if tomb {
			continue // bottom level: tombstones can drop
		}
		merged.keys = append(merged.keys, key)
		merged.vals = append(merged.vals, val)
		merged.tombs = append(merged.tombs, false)
	}
	s.alloc = (s.alloc + 63) &^ 63
	merged.base = s.alloc
	s.alloc += uint64(len(merged.keys)) * entryHeader
	s.attachFilter(merged)
	s.runs = []*run{merged}
}

// Stats reports structural counters, useful in tests and examples.
type Stats struct {
	MemtableKeys  int
	MemtableBytes int
	Runs          int
	RunEntries    int
}

// Stats returns current structural statistics.
func (s *Store) Stats() Stats {
	st := Stats{MemtableKeys: s.mem.count, MemtableBytes: s.mem.size, Runs: len(s.runs)}
	for _, r := range s.runs {
		st.RunEntries += len(r.keys)
	}
	return st
}
