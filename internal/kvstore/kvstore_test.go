package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%08d", i)) }

func TestPutGet(t *testing.T) {
	s := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		s.Put(key(i), val(i))
	}
	for i := 0; i < 1000; i++ {
		v, ok := s.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) = (%q,%v)", key(i), v, ok)
		}
	}
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("Get on missing key returned ok")
	}
}

func TestOverwrite(t *testing.T) {
	s := New(Config{Seed: 1})
	s.Put(key(1), val(1))
	s.Put(key(1), []byte("new"))
	v, ok := s.Get(key(1))
	if !ok || string(v) != "new" {
		t.Fatalf("overwrite lost: (%q,%v)", v, ok)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", got)
	}
}

func TestDelete(t *testing.T) {
	s := New(Config{Seed: 1})
	s.Put(key(1), val(1))
	s.Delete(key(1))
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("deleted key still visible")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after delete, want 0", got)
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	s := New(Config{Seed: 1})
	s.Put(key(1), val(1))
	s.Flush()
	s.Delete(key(1))
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("tombstone did not shadow flushed value")
	}
	s.Flush()
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("tombstone did not survive flush")
	}
}

func TestGetAcrossFlushes(t *testing.T) {
	s := New(Config{Seed: 1})
	for i := 0; i < 300; i++ {
		s.Put(key(i), val(i))
		if i%100 == 99 {
			s.Flush()
		}
	}
	for i := 0; i < 300; i++ {
		v, ok := s.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) after flushes = (%q,%v)", key(i), v, ok)
		}
	}
	if st := s.Stats(); st.Runs == 0 {
		t.Fatal("no runs created despite explicit flushes")
	}
}

func TestNewestVersionWinsAcrossRuns(t *testing.T) {
	s := New(Config{Seed: 1})
	s.Put(key(5), []byte("v1"))
	s.Flush()
	s.Put(key(5), []byte("v2"))
	s.Flush()
	s.Put(key(5), []byte("v3")) // memtable
	v, ok := s.Get(key(5))
	if !ok || string(v) != "v3" {
		t.Fatalf("Get = (%q,%v), want v3", v, ok)
	}
	// And scan sees exactly one version.
	count := 0
	s.Scan(nil, 100, func(k, v []byte) bool {
		count++
		if string(v) != "v3" {
			t.Fatalf("scan saw stale version %q", v)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("scan saw %d versions, want 1", count)
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	s := New(Config{Seed: 1})
	for _, i := range []int{5, 3, 9, 1, 7, 2, 8, 0, 6, 4} {
		s.Put(key(i), val(i))
	}
	s.Flush()
	for _, i := range []int{15, 13, 11, 12, 14} {
		s.Put(key(i), val(i))
	}
	var got []string
	n := s.Scan(key(2), 8, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if n != 8 {
		t.Fatalf("Scan visited %d, want 8", n)
	}
	want := []string{"key-00000002", "key-00000003", "key-00000004", "key-00000005",
		"key-00000006", "key-00000007", "key-00000008", "key-00000009"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order: got %v", got)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New(Config{Seed: 1})
	for i := 0; i < 10; i++ {
		s.Put(key(i), val(i))
	}
	seen := 0
	s.Scan(nil, 100, func(_, _ []byte) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop saw %d, want 3", seen)
	}
}

func TestCompactionPreservesData(t *testing.T) {
	s := New(Config{Seed: 1, MaxRuns: 2, MemtableBytes: 1})
	// MemtableBytes=1 flushes on every put, forcing compactions.
	for i := 0; i < 50; i++ {
		s.Put(key(i), val(i))
	}
	st := s.Stats()
	if st.Runs > 3 {
		t.Fatalf("compaction did not bound runs: %d", st.Runs)
	}
	for i := 0; i < 50; i++ {
		v, ok := s.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("post-compaction Get(%s) = (%q,%v)", key(i), v, ok)
		}
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	s := New(Config{Seed: 1, MaxRuns: 1, MemtableBytes: 1})
	s.Put(key(1), val(1))
	s.Delete(key(1))
	s.Put(key(2), val(2)) // force flush+compact past MaxRuns
	s.Put(key(3), val(3))
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestTraceEmitsAccesses(t *testing.T) {
	var accesses int
	var lastAddr uint64
	s := New(Config{Seed: 1, Trace: func(addr uint64, size int) {
		if size <= 0 {
			t.Fatalf("trace access with size %d", size)
		}
		accesses++
		lastAddr = addr
	}})
	for i := 0; i < 100; i++ {
		s.Put(key(i), val(i))
	}
	s.Flush()
	accesses = 0
	s.Get(key(50))
	if accesses == 0 {
		t.Fatal("GET produced no trace accesses")
	}
	getAccesses := accesses
	accesses = 0
	s.Scan(key(0), 100, func(_, _ []byte) bool { return true })
	if accesses <= getAccesses {
		t.Fatalf("SCAN accesses (%d) not greater than GET accesses (%d)", accesses, getAccesses)
	}
	_ = lastAddr
}

func TestTraceAddressesDistinguishStructures(t *testing.T) {
	// Run entries must be contiguous; skiplist nodes cache-line spaced.
	addrs := map[uint64]bool{}
	s := New(Config{Seed: 1, Trace: func(addr uint64, _ int) { addrs[addr] = true }})
	for i := 0; i < 50; i++ {
		s.Put(key(i), val(i))
	}
	s.Flush()
	addrs = map[uint64]bool{}
	s.Scan(nil, 50, func(_, _ []byte) bool { return true })
	if len(addrs) < 25 {
		t.Fatalf("scan touched only %d distinct addresses", len(addrs))
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := New(Config{Seed: seed, MemtableBytes: 2048, MaxRuns: 3})
		oracle := map[string]string{}
		for op := 0; op < 500; op++ {
			k := fmt.Sprintf("k%03d", r.Intn(80))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", op)
				s.Put([]byte(k), []byte(v))
				oracle[k] = v
			case 2:
				s.Delete([]byte(k))
				delete(oracle, k)
			}
		}
		// Point queries.
		for k, want := range oracle {
			v, ok := s.Get([]byte(k))
			if !ok || string(v) != want {
				return false
			}
		}
		// Full scan matches the sorted oracle.
		var wantKeys []string
		for k := range oracle {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		var gotKeys []string
		s.Scan(nil, 1<<30, func(k, v []byte) bool {
			gotKeys = append(gotKeys, string(k))
			if oracle[string(k)] != string(v) {
				gotKeys = append(gotKeys, "MISMATCH")
			}
			return true
		})
		if len(gotKeys) != len(wantKeys) {
			return false
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsShape(t *testing.T) {
	s := New(Config{Seed: 1})
	for i := 0; i < 10; i++ {
		s.Put(key(i), val(i))
	}
	st := s.Stats()
	if st.MemtableKeys != 10 || st.MemtableBytes == 0 || st.Runs != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	s.Flush()
	st = s.Stats()
	if st.MemtableKeys != 0 || st.Runs != 1 || st.RunEntries != 10 {
		t.Fatalf("post-flush stats %+v", st)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New(Config{Seed: 1})
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put(key(i), val(i))
	}
	s.Flush()
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(key(r.Intn(n)))
	}
}

func BenchmarkScan100(b *testing.B) {
	s := New(Config{Seed: 1})
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put(key(i), val(i))
	}
	s.Flush()
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(key(r.Intn(n-100)), 100, func(_, _ []byte) bool { return true })
	}
}
