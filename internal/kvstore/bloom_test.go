package kvstore

import (
	"fmt"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000, 0, nil)
	for i := 0; i < 1000; i++ {
		b.add(key(i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(key(i)) {
			t.Fatalf("false negative for %s", key(i))
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := newBloom(10000, 0, nil)
	for i := 0; i < 10000; i++ {
		b.add(key(i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.mayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key with 7 hashes gives ~1%; accept up to 3%.
	if rate > 0.03 {
		t.Fatalf("false-positive rate %.3f too high", rate)
	}
}

func TestBloomEmptyRejectsEverything(t *testing.T) {
	b := newBloom(100, 0, nil)
	for i := 0; i < 100; i++ {
		if b.mayContain(key(i)) {
			t.Fatalf("empty filter claimed to contain %s", key(i))
		}
	}
}

func TestBloomTracesProbes(t *testing.T) {
	touches := 0
	b := newBloom(100, 4096, func(addr uint64, size int) {
		if addr < 4096 || size != 8 {
			t.Fatalf("bad trace access addr=%d size=%d", addr, size)
		}
		touches++
	})
	b.add(key(1))
	b.mayContain(key(1))
	if touches != b.k {
		t.Fatalf("positive lookup traced %d touches, want %d", touches, b.k)
	}
}

func TestStoreGetUsesFilters(t *testing.T) {
	// After flushing several runs, misses must not binary-search every
	// run: with filters, a missing key's Get touches far fewer entry
	// addresses than log2(n) per run would imply.
	s := New(Config{Seed: 1})
	for i := 0; i < 3000; i++ {
		s.Put(key(i), val(i))
		if i%1000 == 999 {
			s.Flush()
		}
	}
	if st := s.Stats(); st.Runs != 3 {
		t.Fatalf("expected 3 runs, have %d", st.Runs)
	}
	// Correctness across filters.
	for i := 0; i < 3000; i += 7 {
		if v, ok := s.Get(key(i)); !ok || string(v) != string(val(i)) {
			t.Fatalf("Get(%s) = (%q,%v)", key(i), v, ok)
		}
	}
	if _, ok := s.Get([]byte("absent-key")); ok {
		t.Fatal("absent key found")
	}
}

func BenchmarkBloomLookup(b *testing.B) {
	f := newBloom(100000, 0, nil)
	for i := 0; i < 100000; i++ {
		f.add(key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.mayContain(key(i % 200000))
	}
}
