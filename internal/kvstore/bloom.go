package kvstore

// bloom is a split Bloom filter guarding each immutable run, as in
// RocksDB: GETs consult it before binary-searching the run, so point
// lookups skip runs that definitely lack the key. Filters use double
// hashing (Kirsch-Mitzenmacher) over a 64-bit key hash.
type bloom struct {
	bits  []uint64
	k     int
	base  uint64 // synthetic trace address of word 0
	trace Tracer
}

// bloomBitsPerKey matches RocksDB's default of 10 bits per key
// (≈1% false-positive rate with 7 probes).
const bloomBitsPerKey = 10

func newBloom(n int, base uint64, trace Tracer) *bloom {
	if n < 1 {
		n = 1
	}
	words := (n*bloomBitsPerKey + 63) / 64
	return &bloom{
		bits:  make([]uint64, words),
		k:     7,
		base:  base,
		trace: trace,
	}
}

// sizeBytes reports the filter's footprint for trace-address layout.
func (b *bloom) sizeBytes() uint64 { return uint64(len(b.bits)) * 8 }

// hashKey mixes key bytes into a 64-bit value (FNV-1a core with a
// final avalanche).
func hashKey(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (b *bloom) probes(key []byte) (h1, h2 uint64) {
	h := hashKey(key)
	return h, h>>32 | h<<32
}

func (b *bloom) add(key []byte) {
	h1, h2 := b.probes(key)
	m := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether key was possibly added; false means
// definitely absent. Filter-word touches are traced so the cache study
// sees GET's real access mix.
func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := b.probes(key)
	m := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if b.trace != nil {
			b.trace(b.base+(bit/64)*8, 8)
		}
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
