package kvstore_test

import (
	"fmt"

	"repro/internal/kvstore"
)

func Example() {
	store := kvstore.New(kvstore.Config{Seed: 1})
	store.Put([]byte("user42"), []byte("alice"))
	store.Put([]byte("user43"), []byte("bob"))
	store.Flush() // memtable -> sorted run (with a Bloom filter)
	store.Put([]byte("user44"), []byte("carol"))

	if v, ok := store.Get([]byte("user42")); ok {
		fmt.Printf("GET user42 = %s\n", v)
	}
	store.Scan([]byte("user43"), 2, func(k, v []byte) bool {
		fmt.Printf("SCAN %s = %s\n", k, v)
		return true
	})
	// Output:
	// GET user42 = alice
	// SCAN user43 = bob
	// SCAN user44 = carol
}
