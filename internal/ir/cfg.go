package ir

// CFG holds derived control-flow facts for one function: predecessor
// lists, reverse postorder, an immediate-dominator tree, and the
// natural loops found from back edges. Instrumentation passes consume
// it the way an LLVM pass consumes LoopInfo and DominatorTree.
type CFG struct {
	F     *Func
	Preds [][]int
	// RPO is a reverse postorder over reachable blocks; unreachable
	// blocks are absent.
	RPO []int
	// rpoIndex[b] is b's position in RPO, or -1 if unreachable.
	rpoIndex []int
	// IDom[b] is the immediate dominator of b (-1 for entry and
	// unreachable blocks).
	IDom []int
	// Loops lists the natural loops, outermost first for nested loops
	// with distinct headers.
	Loops []*Loop
}

// Loop is a natural loop: the set of blocks that can reach the back
// edge's source without leaving through the header.
type Loop struct {
	Header int
	// Latches are the sources of back edges to Header.
	Latches []int
	// Blocks contains all loop blocks, including header and latches.
	Blocks map[int]bool
}

// BuildCFG computes the analyses. The function must Validate cleanly.
func BuildCFG(f *Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:        f,
		Preds:    make([][]int, n),
		rpoIndex: make([]int, n),
		IDom:     make([]int, n),
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			c.Preds[s] = append(c.Preds[s], b.ID)
		}
	}
	c.buildRPO()
	c.buildDominators()
	c.findLoops()
	return c
}

func (c *CFG) buildRPO() {
	n := len(c.F.Blocks)
	seen := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS with an explicit successor cursor keeps postorder
	// identical to the recursive formulation.
	type frame struct{ b, next int }
	stack := []frame{{0, 0}}
	seen[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := c.F.Blocks[fr.b].Succs()
		if fr.next < len(succs) {
			s := succs[fr.next]
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.rpoIndex {
		c.rpoIndex[i] = -1
	}
	for i, b := range c.RPO {
		c.rpoIndex[b] = i
	}
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.rpoIndex[b] >= 0 }

// buildDominators runs the Cooper-Harper-Kennedy iterative algorithm
// over the reverse postorder.
func (c *CFG) buildDominators() {
	for i := range c.IDom {
		c.IDom[i] = -1
	}
	if len(c.RPO) == 0 {
		return
	}
	entry := c.RPO[0]
	c.IDom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO[1:] {
			var newIDom = -1
			for _, p := range c.Preds[b] {
				if !c.Reachable(p) || c.IDom[p] == -1 {
					continue
				}
				if newIDom == -1 {
					newIDom = p
				} else {
					newIDom = c.intersect(p, newIDom)
				}
			}
			if newIDom != -1 && c.IDom[b] != newIDom {
				c.IDom[b] = newIDom
				changed = true
			}
		}
	}
	// Convention: entry has no immediate dominator.
	c.IDom[entry] = -1
}

func (c *CFG) intersect(a, b int) int {
	for a != b {
		for c.rpoIndex[a] > c.rpoIndex[b] {
			a = c.IDom[a]
		}
		for c.rpoIndex[b] > c.rpoIndex[a] {
			b = c.IDom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexively).
func (c *CFG) Dominates(a, b int) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := c.IDom[b]
		if next == -1 || next == b {
			return false
		}
		b = next
	}
}

// findLoops identifies back edges (edge t->h where h dominates t) and
// builds each natural loop's block set; loops sharing a header merge.
func (c *CFG) findLoops() {
	byHeader := map[int]*Loop{}
	for _, b := range c.RPO {
		for _, s := range c.F.Blocks[b].Succs() {
			if c.Dominates(s, b) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s: true}}
					byHeader[s] = l
					c.Loops = append(c.Loops, l)
				}
				l.Latches = append(l.Latches, b)
				c.collectLoop(l, b)
			}
		}
	}
}

// collectLoop adds to l every block that reaches latch without passing
// through the header (standard natural-loop construction).
func (c *CFG) collectLoop(l *Loop, latch int) {
	if l.Blocks[latch] {
		return
	}
	l.Blocks[latch] = true
	stack := []int{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range c.Preds[b] {
			if !l.Blocks[p] && c.Reachable(p) {
				l.Blocks[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// LoopOf returns the innermost loop containing block b, or nil.
// Innermost is approximated as the loop with the fewest blocks that
// contains b, which is exact for natural loops (nesting is containment).
func (c *CFG) LoopOf(b int) *Loop {
	var best *Loop
	for _, l := range c.Loops {
		if l.Blocks[b] && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}

// InductionVar describes a register that increases by a constant step
// each loop iteration and controls the latch branch — the pattern TQ's
// pass reuses to gate probes without a separate counter (§3.1).
type InductionVar struct {
	Reg  int
	Step int64
}

// FindInductionVar looks for a register r such that some loop block
// contains r = r + const (or r = r - const), and the latch's branch
// condition reads a comparison involving r. It returns ok=false when
// the loop has no such simple induction structure.
func (c *CFG) FindInductionVar(l *Loop) (InductionVar, bool) {
	// Gather candidate (reg, step) updates inside the loop.
	type cand struct{ step int64 }
	cands := map[int]cand{}
	for b := range l.Blocks {
		for _, in := range c.F.Blocks[b].Code {
			if in.Op == OpAdd && in.Dst == in.A {
				// r = r + rB: step is constant only if rB was set by a
				// Const in the same function; approximate by accepting
				// the pattern and using step 1 when unknown. A stricter
				// analysis is unnecessary for gating purposes.
				cands[in.Dst] = cand{step: 1}
			}
		}
	}
	if len(cands) == 0 {
		return InductionVar{}, false
	}
	// Some exiting branch of the loop must be controlled by a
	// comparison reading the candidate (the branch may live in the
	// header for canonical loops or in the latch for rotated ones).
	for b := range l.Blocks {
		blk := c.F.Blocks[b]
		if blk.Term.Kind != Branch {
			continue
		}
		exits := false
		for _, s := range blk.Succs() {
			if !l.Blocks[s] {
				exits = true
			}
		}
		if !exits {
			continue
		}
		cond := blk.Term.Cond
		for lb := range l.Blocks {
			for _, in := range c.F.Blocks[lb].Code {
				if in.Op == OpCmpLT && in.Dst == cond {
					if _, ok := cands[in.A]; ok {
						return InductionVar{Reg: in.A, Step: 1}, true
					}
					if _, ok := cands[in.B]; ok {
						return InductionVar{Reg: in.B, Step: 1}, true
					}
				}
			}
		}
	}
	return InductionVar{}, false
}
