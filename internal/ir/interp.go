package ir

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// CostModel assigns cycle costs to instructions. The defaults
// approximate the paper's 2.1GHz Xeon 8176: simple ALU ops retire in a
// cycle, divides stall, loads pay the hierarchy level their locality
// class predicts, and RDTSC costs 20-40 cycles of which a fraction
// overlaps with surrounding work under out-of-order execution (§3.1).
type CostModel struct {
	ALU      int64
	Mul      int64
	Div      int64
	LoadL1   int64
	LoadL2   int64
	LoadMem  int64
	Store    int64
	CallBase int64
	Branch   int64
	// Rdtsc is the effective (overlap-adjusted) cost of one physical
	// clock read within a probe.
	Rdtsc int64
	// ProbeALU is the cost of a probe's bookkeeping instructions
	// (counter add / compare / predicted-not-taken branch).
	ProbeALU int64
	// ProbeGated is the per-execution cost of a gated loop probe when
	// the clock check does not fire (iteration-counter increment and
	// compare, largely overlapped by the loop body).
	ProbeGated int64
	// ProbeInduction is the per-execution cost when the probe reuses
	// an existing induction variable (a single masked compare).
	ProbeInduction int64
	// Yield is the cost of one coroutine switch to the scheduler and
	// back (Boost yields in 20-40ns ≈ 40-80 cycles; split across the
	// two tasks gives ≈60 observed here).
	Yield int64
	// HzGHz converts cycles to nanoseconds when reporting.
	HzGHz float64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		ALU:            1,
		Mul:            3,
		Div:            20,
		LoadL1:         2,
		LoadL2:         14,
		LoadMem:        90,
		Store:          1,
		CallBase:       50,
		Branch:         1,
		Rdtsc:          12,
		ProbeALU:       3,
		ProbeGated:     2,
		ProbeInduction: 1,
		Yield:          60,
		HzGHz:          2.1,
	}
}

// CyclesToNs converts a cycle count to nanoseconds under the model's
// clock.
func (m CostModel) CyclesToNs(cycles int64) float64 { return float64(cycles) / m.HzGHz }

// NsToCycles converts nanoseconds to cycles under the model's clock.
func (m CostModel) NsToCycles(ns float64) int64 { return int64(ns * m.HzGHz) }

// ProbeHook receives probe executions during interpretation. now is the
// cycle count when the probe fires and instrs the number of non-probe
// instructions executed so far; the hook returns the cycles the probe
// consumes (bookkeeping, clock reads, and any yield it decides to
// take).
type ProbeHook interface {
	OnProbe(p *Probe, now, instrs int64) (cost int64)
}

// ExecResult summarizes one interpretation.
type ExecResult struct {
	// Cycles is total execution time in cycles, including probe and
	// yield costs.
	Cycles int64
	// Instrs counts executed non-probe instructions.
	Instrs int64
	// Probes counts executed probe instructions.
	Probes int64
	// BlocksExecuted counts basic-block entries.
	BlocksExecuted int64
}

// ErrStepLimit is returned when execution exceeds the step budget,
// which indicates a non-terminating benchmark program.
var ErrStepLimit = errors.New("ir: execution exceeded step limit")

// Exec interprets f from block 0 until Ret, charging costs from model.
// Loads sample their latency class through r (deterministic per seed).
// hook may be nil for uninstrumented runs. maxSteps bounds executed
// instructions.
func Exec(f *Func, model CostModel, r *rng.Rand, hook ProbeHook, maxSteps int64) (ExecResult, error) {
	var res ExecResult
	regs := make([]int64, f.NumRegs)
	memWords := f.MemWords
	if memWords <= 0 {
		memWords = 1
	}
	mem := make([]int64, memWords)
	for i := range mem {
		mem[i] = int64(r.Uint64() >> 1)
	}
	bid := 0
	for {
		if bid < 0 || bid >= len(f.Blocks) {
			return res, fmt.Errorf("ir: control reached invalid block %d", bid)
		}
		b := f.Blocks[bid]
		res.BlocksExecuted++
		for i := range b.Code {
			in := &b.Code[i]
			switch in.Op {
			case OpConst:
				regs[in.Dst] = in.Imm
				res.Cycles += model.ALU
			case OpAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]
				res.Cycles += model.ALU
			case OpSub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
				res.Cycles += model.ALU
			case OpMul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
				res.Cycles += model.Mul
			case OpDiv:
				if regs[in.B] == 0 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] / regs[in.B]
				}
				res.Cycles += model.Div
			case OpAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
				res.Cycles += model.ALU
			case OpXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
				res.Cycles += model.ALU
			case OpShr:
				regs[in.Dst] = int64(uint64(regs[in.A]) >> (uint64(regs[in.B]) & 63))
				res.Cycles += model.ALU
			case OpCmpLT:
				if regs[in.A] < regs[in.B] {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
				res.Cycles += model.ALU
			case OpLoad:
				idx := int(uint64(regs[in.A]) % uint64(memWords))
				regs[in.Dst] = mem[idx]
				res.Cycles += loadCost(model, in.Locality, r)
			case OpStore:
				idx := int(uint64(regs[in.A]) % uint64(memWords))
				mem[idx] = regs[in.B]
				res.Cycles += model.Store
			case OpCall:
				scale := in.Imm
				if scale < 1 {
					scale = 1
				}
				res.Cycles += model.CallBase * scale
			case OpProbe:
				res.Probes++
				if hook != nil {
					res.Cycles += hook.OnProbe(in.Probe, res.Cycles, res.Instrs)
				}
				continue // probes are not counted as program instructions
			default:
				return res, fmt.Errorf("ir: unknown opcode %v", in.Op)
			}
			res.Instrs++
		}
		if res.Instrs+res.Probes > maxSteps {
			return res, ErrStepLimit
		}
		switch b.Term.Kind {
		case Jump:
			res.Cycles += model.Branch
			bid = b.Term.Succ1
		case Branch:
			res.Cycles += model.Branch
			if regs[b.Term.Cond] != 0 {
				bid = b.Term.Succ1
			} else {
				bid = b.Term.Succ2
			}
		case Ret:
			return res, nil
		}
	}
}

// loadCost samples a load latency: locality classes mostly hit their
// home level but occasionally miss further out, which is what defeats
// any fixed instruction-to-cycle translation (§3.1).
func loadCost(m CostModel, loc Locality, r *rng.Rand) int64 {
	switch loc {
	case Hot:
		if r.Uint64n(100) < 4 {
			return m.LoadL2
		}
		return m.LoadL1
	case Warm:
		if r.Uint64n(100) < 15 {
			return m.LoadMem
		}
		return m.LoadL2
	default:
		return m.LoadMem
	}
}
