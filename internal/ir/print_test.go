package ir

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestDisassembleCoversConstructs(t *testing.T) {
	b := NewFunc("demo", 8, 64)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 5)
	b.Load(2, 1, Warm)
	b.Store(1, 2)
	b.Call(3)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Add(3, 3, 1)
	b.CmpLT(4, 3, 1)
	b.BranchNZ(4, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	f := b.Build()
	f.Blocks[1].Code = append(f.Blocks[1].Code,
		Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeTQ}},
		Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeTQGated, Every: 4}},
		Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeTQInduction, IndVar: 3, Every: 8}},
		Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeIC, Inc: 12}},
	)

	out := f.Disassemble()
	for _, want := range []string{
		"func demo (regs=8, mem=64 words)",
		"r1 = const 5",
		"r2 = load warm [r1]",
		"store [r1], r2",
		"call extern x3",
		"jmp b1",
		"r3 = add r3, r1",
		"r4 = cmplt r3, r1",
		"br r4 ? b1 : b2",
		"probe tq",
		"probe tq-gated every=4",
		"probe tq-ivar ivar=r3 every=8",
		"probe ic inc=12",
		"ret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestInstrStringProbeWithoutMetadata(t *testing.T) {
	in := Instr{Op: OpProbe}
	if got := in.String(); !strings.Contains(got, "missing") {
		t.Fatalf("String = %q", got)
	}
}

func TestLocalityStrings(t *testing.T) {
	if Hot.String() != "hot" || Warm.String() != "warm" || Cold.String() != "cold" {
		t.Fatal("locality strings wrong")
	}
}

// pathFunc builds a small three-block function for path-printing tests.
func pathFunc() *Func {
	b := NewFunc("path-demo", 8, 64)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)
	b.Const(2, 10)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Add(3, 3, 1)
	b.Const(4, 1)
	b.Add(1, 1, 4)
	b.CmpLT(5, 1, 2)
	b.BranchNZ(5, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	return b.Build()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestFormatPathGoldenLinear(t *testing.T) {
	f := pathFunc()
	got := f.FormatPath([]PathStep{
		{Block: 0, Iters: 1, Weight: 2, Note: "entry"},
		{Block: 1, Iters: 1, Weight: 4},
		{Block: 2, Iters: 1, Weight: 0, Note: "exit"},
	})
	checkGolden(t, "path_linear.golden", got)
}

func TestFormatPathGoldenLoop(t *testing.T) {
	f := pathFunc()
	got := f.FormatPath([]PathStep{
		{Block: 0, Iters: 1, Weight: 2, Note: "after probe"},
		{Block: 1, Iters: 9, Weight: 36, Note: "bounded self-loop"},
		{Block: 2, Iters: 1, Weight: 0, Note: "exit"},
	})
	checkGolden(t, "path_loop.golden", got)
}

func TestFormatPathEmpty(t *testing.T) {
	if got := pathFunc().FormatPath(nil); got != "" {
		t.Fatalf("empty path rendered %q", got)
	}
}
