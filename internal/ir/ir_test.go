package ir

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

// straightLine builds: r1=5; r2=7; r3=r1+r2; ret.
func straightLine() *Func {
	b := NewFunc("straight", 4, 8)
	b.Const(1, 5)
	b.Const(2, 7)
	b.Add(3, 1, 2)
	b.Ret()
	return b.Build()
}

// diamond builds an if/else: entry branches on mem[0]'s low bit.
func diamond() *Func {
	b := NewFunc("diamond", 6, 8)
	thenB := b.NewBlock()
	elseB := b.NewBlock()
	join := b.NewBlock()
	b.SetBlock(0)
	b.Const(1, 0)
	b.Load(2, 1, Hot)
	b.Const(3, 1)
	b.And(4, 2, 3)
	b.BranchNZ(4, thenB, elseB)
	b.SetBlock(thenB)
	b.Add(5, 2, 3)
	b.Jump(join)
	b.SetBlock(elseB)
	b.Sub(5, 2, 3)
	b.Jump(join)
	b.SetBlock(join)
	b.Ret()
	return b.Build()
}

// countedLoop builds a loop with the given trips and body size.
func countedLoop(trips int64, bodyOps int) *Func {
	b := NewFunc("loop", 8, 64)
	b.CountedLoop(1, 2, 3, trips, func() {
		for i := 0; i < bodyOps; i++ {
			b.Add(4, 4, 1)
		}
	})
	b.Ret()
	return b.Build()
}

func TestValidateCatchesBadFunctions(t *testing.T) {
	f := straightLine()
	f.Blocks[0].Term = Term{Kind: Jump, Succ1: 99}
	if err := f.Validate(); err == nil {
		t.Fatal("out-of-range jump not caught")
	}
	f2 := straightLine()
	f2.Blocks[0].Code[0].Dst = 99
	if err := f2.Validate(); err == nil {
		t.Fatal("out-of-range register not caught")
	}
	f3 := straightLine()
	f3.Blocks[0].Code = append(f3.Blocks[0].Code, Instr{Op: OpProbe})
	if err := f3.Validate(); err == nil {
		t.Fatal("probe without metadata not caught")
	}
}

func TestExecStraightLine(t *testing.T) {
	f := straightLine()
	res, err := Exec(f, DefaultCosts(), rng.New(1), nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != 3 {
		t.Fatalf("Instrs = %d, want 3", res.Instrs)
	}
	if res.Cycles != 3 { // three ALU ops, Ret costs nothing
		t.Fatalf("Cycles = %d, want 3", res.Cycles)
	}
	if res.BlocksExecuted != 1 {
		t.Fatalf("BlocksExecuted = %d, want 1", res.BlocksExecuted)
	}
}

func TestExecLoopTripCount(t *testing.T) {
	const trips = 100
	const body = 5
	f := countedLoop(trips, body)
	res, err := Exec(f, DefaultCosts(), rng.New(1), nil, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: cmplt + body + const + add = body+3 instrs, plus
	// final header check; plus 2 setup consts and the entry jump.
	want := int64(2 + (trips)*(body+3) + 1)
	if res.Instrs != want {
		t.Fatalf("Instrs = %d, want %d", res.Instrs, want)
	}
}

func TestExecStepLimit(t *testing.T) {
	// An infinite loop must hit the step limit.
	b := NewFunc("inf", 2, 2)
	loop := b.NewBlock()
	b.SetBlock(0)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Add(1, 1, 1)
	b.Jump(loop)
	f := b.Build()
	_, err := Exec(f, DefaultCosts(), rng.New(1), nil, 1000)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestExecDeterministic(t *testing.T) {
	f := diamond()
	a, err1 := Exec(f, DefaultCosts(), rng.New(7), nil, 1000)
	b, err2 := Exec(f, DefaultCosts(), rng.New(7), nil, 1000)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestExecDivByZeroYieldsZero(t *testing.T) {
	b := NewFunc("div0", 4, 2)
	b.Const(1, 10)
	b.Const(2, 0)
	b.Div(3, 1, 2)
	b.Ret()
	if _, err := Exec(b.Build(), DefaultCosts(), rng.New(1), nil, 100); err != nil {
		t.Fatal(err)
	}
}

func TestProbeHookInvoked(t *testing.T) {
	b := NewFunc("probed", 4, 2)
	b.Const(1, 1)
	b.cur.Code = append(b.cur.Code, Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeTQ, ID: 0}})
	b.Const(2, 2)
	b.Ret()
	f := b.Build()
	hook := &countingHook{}
	res, err := Exec(f, DefaultCosts(), rng.New(1), hook, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hook.calls != 1 {
		t.Fatalf("hook called %d times, want 1", hook.calls)
	}
	if res.Probes != 1 || res.Instrs != 2 {
		t.Fatalf("Probes=%d Instrs=%d, want 1 and 2", res.Probes, res.Instrs)
	}
	// Probe cost (7) charged between the two ALU ops.
	if res.Cycles != 1+7+1 {
		t.Fatalf("Cycles = %d, want 9", res.Cycles)
	}
}

type countingHook struct{ calls int }

func (h *countingHook) OnProbe(p *Probe, now, instrs int64) int64 {
	h.calls++
	return 7
}

func TestCFGPredsAndRPO(t *testing.T) {
	f := diamond()
	c := BuildCFG(f)
	// Entry has no preds; join (block 3) has two.
	if len(c.Preds[0]) != 0 {
		t.Fatalf("entry preds = %v", c.Preds[0])
	}
	if len(c.Preds[3]) != 2 {
		t.Fatalf("join preds = %v", c.Preds[3])
	}
	if c.RPO[0] != 0 {
		t.Fatalf("RPO does not start at entry: %v", c.RPO)
	}
	if len(c.RPO) != 4 {
		t.Fatalf("RPO covers %d blocks, want 4", len(c.RPO))
	}
}

func TestCFGDominators(t *testing.T) {
	f := diamond()
	c := BuildCFG(f)
	// Entry dominates everything; neither arm dominates the join.
	for b := 0; b < 4; b++ {
		if !c.Dominates(0, b) {
			t.Fatalf("entry does not dominate block %d", b)
		}
	}
	if c.Dominates(1, 3) || c.Dominates(2, 3) {
		t.Fatal("an arm dominates the join")
	}
	if c.IDom[3] != 0 {
		t.Fatalf("IDom(join) = %d, want 0", c.IDom[3])
	}
}

func TestCFGLoopDetection(t *testing.T) {
	f := countedLoop(10, 2)
	c := BuildCFG(f)
	if len(c.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(c.Loops))
	}
	l := c.Loops[0]
	if l.Header != 1 { // CountedLoop creates header as first new block
		t.Fatalf("loop header = %d, want 1", l.Header)
	}
	if !l.Blocks[l.Header] {
		t.Fatal("loop does not contain its header")
	}
	if len(l.Latches) != 1 || !l.Blocks[l.Latches[0]] {
		t.Fatalf("bad latches %v", l.Latches)
	}
	// The exit block is not in the loop.
	if l.Blocks[3] {
		t.Fatal("exit block included in loop")
	}
}

func TestNestedLoopDetection(t *testing.T) {
	b := NewFunc("nested", 10, 16)
	b.CountedLoop(1, 2, 3, 5, func() {
		b.CountedLoop(4, 5, 6, 7, func() {
			b.Add(7, 7, 4)
		})
	})
	b.Ret()
	f := b.Build()
	c := BuildCFG(f)
	if len(c.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(c.Loops))
	}
	// The outer loop contains the inner's blocks.
	outer, inner := c.Loops[0], c.Loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	for blk := range inner.Blocks {
		if !outer.Blocks[blk] {
			t.Fatalf("inner block %d not inside outer loop", blk)
		}
	}
	// LoopOf returns the innermost for an inner body block.
	var innerBody int
	for blk := range inner.Blocks {
		if blk != inner.Header {
			innerBody = blk
		}
	}
	if got := c.LoopOf(innerBody); got != inner {
		t.Fatal("LoopOf did not return the innermost loop")
	}
}

func TestFindInductionVar(t *testing.T) {
	f := countedLoop(10, 2)
	c := BuildCFG(f)
	iv, ok := c.FindInductionVar(c.Loops[0])
	if !ok {
		t.Fatal("no induction variable found in counted loop")
	}
	if iv.Reg != 1 {
		t.Fatalf("induction register = %d, want 1", iv.Reg)
	}
}

func TestFindInductionVarAbsent(t *testing.T) {
	// A loop controlled by a load (data-dependent) has no simple
	// induction variable.
	b := NewFunc("datadep", 8, 64)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(0)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Load(1, 2, Hot)
	b.Xor(2, 2, 1)
	b.Const(3, 3)
	b.And(4, 1, 3)
	b.BranchNZ(4, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	f := b.Build()
	c := BuildCFG(f)
	if len(c.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(c.Loops))
	}
	if _, ok := c.FindInductionVar(c.Loops[0]); ok {
		t.Fatal("found an induction variable in a data-dependent loop")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := straightLine()
	f.Blocks[0].Code = append(f.Blocks[0].Code, Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeTQ}})
	g := f.Clone()
	g.Blocks[0].Code[0].Imm = 999
	g.Blocks[0].Code[3].Probe.Kind = ProbeIC
	if f.Blocks[0].Code[0].Imm == 999 {
		t.Fatal("clone shares instruction storage")
	}
	if f.Blocks[0].Code[3].Probe.Kind == ProbeIC {
		t.Fatal("clone shares probe metadata")
	}
}

func TestNumInstrsAndProbes(t *testing.T) {
	f := straightLine()
	if f.NumInstrs() != 3 || f.NumProbes() != 0 {
		t.Fatalf("counts = %d/%d, want 3/0", f.NumInstrs(), f.NumProbes())
	}
	f.Blocks[0].Code = append(f.Blocks[0].Code, Instr{Op: OpProbe, Probe: &Probe{}})
	if f.NumInstrs() != 3 || f.NumProbes() != 1 {
		t.Fatalf("counts after probe = %d/%d, want 3/1", f.NumInstrs(), f.NumProbes())
	}
}

func TestCostModelConversions(t *testing.T) {
	m := DefaultCosts()
	if got := m.CyclesToNs(2100); got != 1000 {
		t.Fatalf("CyclesToNs(2100) = %v, want 1000", got)
	}
	if got := m.NsToCycles(1000); got != 2100 {
		t.Fatalf("NsToCycles(1000) = %v, want 2100", got)
	}
}

func TestUnreachableBlockHandled(t *testing.T) {
	b := NewFunc("unreachable", 4, 4)
	dead := b.NewBlock()
	b.SetBlock(dead)
	b.Add(1, 1, 1)
	b.Ret()
	b.SetBlock(0)
	b.Ret()
	f := b.Build()
	c := BuildCFG(f)
	if c.Reachable(dead) {
		t.Fatal("dead block reported reachable")
	}
	if _, err := Exec(f, DefaultCosts(), rng.New(1), nil, 100); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExecLoop(b *testing.B) {
	f := countedLoop(1000, 8)
	m := DefaultCosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(f, m, rng.New(1), nil, 1e9); err != nil {
			b.Fatal(err)
		}
	}
}
