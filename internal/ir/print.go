package ir

import (
	"fmt"
	"strings"
)

// Disassemble renders the function as readable text, one block per
// paragraph — the debugging view of what an instrumentation pass did
// to a function.
func (f *Func) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (regs=%d, mem=%d words)\n", f.Name, f.NumRegs, f.MemWords)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for i := range blk.Code {
			fmt.Fprintf(&b, "\t%s\n", blk.Code[i].String())
		}
		fmt.Fprintf(&b, "\t%s\n", blk.Term.String())
	}
	return b.String()
}

// String renders one instruction in a compact assembly-like syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpXor, OpShr, OpCmpLT:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	case OpLoad:
		return fmt.Sprintf("r%d = load %s [r%d]", in.Dst, in.Locality, in.A)
	case OpStore:
		return fmt.Sprintf("store [r%d], r%d", in.A, in.B)
	case OpCall:
		return fmt.Sprintf("call extern x%d", max64(in.Imm, 1))
	case OpProbe:
		p := in.Probe
		if p == nil {
			return "probe <missing metadata>"
		}
		switch p.Kind {
		case ProbeTQGated:
			return fmt.Sprintf("probe %s every=%d", p.Kind, p.Every)
		case ProbeTQInduction:
			return fmt.Sprintf("probe %s ivar=r%d every=%d", p.Kind, p.IndVar, p.Every)
		case ProbeIC, ProbeICCycles:
			return fmt.Sprintf("probe %s inc=%d", p.Kind, p.Inc)
		default:
			return fmt.Sprintf("probe %s", p.Kind)
		}
	}
	return fmt.Sprintf("op(%d)", in.Op)
}

// String renders a terminator.
func (t Term) String() string {
	switch t.Kind {
	case Jump:
		return fmt.Sprintf("jmp b%d", t.Succ1)
	case Branch:
		return fmt.Sprintf("br r%d ? b%d : b%d", t.Cond, t.Succ1, t.Succ2)
	default:
		return "ret"
	}
}

func (l Locality) String() string {
	switch l {
	case Hot:
		return "hot"
	case Warm:
		return "warm"
	default:
		return "cold"
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PathStep is one block visit on an execution path through a function,
// annotated with the weighted instruction cost the visit contributes.
// The static verifier in internal/verify emits paths of these to
// explain a probe-gap counterexample or the worst-case witness.
type PathStep struct {
	// Block is the visited block's ID.
	Block int
	// Iters is how many consecutive times the block's self-loop runs at
	// this step (1 for a plain visit; the self-loop-clone trip bound for
	// a bounded probe-free self-loop).
	Iters int64
	// Weight is the weighted instruction cost this step contributes
	// (already multiplied by Iters).
	Weight int64
	// Note optionally labels the step ("entry", "probe", "exit",
	// "cycle", ...).
	Note string
}

// FormatPath renders a path as readable text: one line per block visit
// with its label, per-step cost, and the cumulative weighted cost — the
// trace the verifier prints to justify a verdict.
func (f *Func) FormatPath(steps []PathStep) string {
	var b strings.Builder
	var cum int64
	for _, s := range steps {
		cum += s.Weight
		label := fmt.Sprintf("b%d", s.Block)
		if s.Iters > 1 {
			label = fmt.Sprintf("b%d x%d", s.Block, s.Iters)
		}
		fmt.Fprintf(&b, "  %-10s +%-6d (cum %d)", label, s.Weight, cum)
		if s.Note != "" {
			fmt.Fprintf(&b, "  %s", s.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
