// Package ir is a small compiler intermediate representation used to
// reproduce the Tiny Quanta probe-instrumentation study (§3.1, §5.6).
// It plays the role LLVM IR plays in the paper: programs are functions
// of basic blocks over a virtual register file, with data-driven
// control flow, per-instruction cycle costs, and a cycle-accurate
// interpreter.
//
// The instrumentation passes in internal/instrument analyze this IR
// (CFG, dominators, natural loops, induction variables, longest
// inter-probe paths) and insert probe pseudo-instructions; the
// interpreter then measures probing overhead and yield-timing accuracy
// exactly the way Table 3 does.
package ir

import "fmt"

// Opcode enumerates instruction kinds.
type Opcode uint8

// Instruction opcodes. Costs are defined by CostModel, not here.
const (
	// OpConst sets Dst to Imm.
	OpConst Opcode = iota
	// OpAdd sets Dst = A + B.
	OpAdd
	// OpSub sets Dst = A - B.
	OpSub
	// OpMul sets Dst = A * B.
	OpMul
	// OpDiv sets Dst = A / B (B==0 yields 0).
	OpDiv
	// OpAnd sets Dst = A & B.
	OpAnd
	// OpXor sets Dst = A ^ B.
	OpXor
	// OpShr sets Dst = A >> (B & 63).
	OpShr
	// OpCmpLT sets Dst = 1 if A < B else 0.
	OpCmpLT
	// OpLoad sets Dst = mem[A % len(mem)]; its latency depends on the
	// instruction's Locality class.
	OpLoad
	// OpStore sets mem[A % len(mem)] = B.
	OpStore
	// OpCall models a call to an uninstrumented external function
	// (system call, library) with a fixed cost; Imm scales it.
	OpCall
	// OpProbe is a pseudo-instruction inserted by instrumentation
	// passes; its semantics and cost come from the interpreter's probe
	// hook. Uninstrumented programs contain none.
	OpProbe
)

var opNames = [...]string{
	"const", "add", "sub", "mul", "div", "and", "xor", "shr",
	"cmplt", "load", "store", "call", "probe",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Locality classifies a load's expected cache behaviour, standing in
// for the data layout the paper's real workloads have.
type Locality uint8

// Load locality classes.
const (
	// Hot loads hit L1.
	Hot Locality = iota
	// Warm loads hit L2.
	Warm
	// Cold loads go to memory.
	Cold
)

// ProbeKind distinguishes the probe flavours the passes insert.
type ProbeKind uint8

// Probe flavours (§3.1 and the CI baseline of [8]).
const (
	// ProbeTQ reads the physical clock and yields if a quantum has
	// elapsed — TQ's sparse probe.
	ProbeTQ ProbeKind = iota
	// ProbeTQGated maintains an iteration counter and invokes the
	// clock check only every Every iterations — TQ's loop
	// instrumentation.
	ProbeTQGated
	// ProbeTQInduction gates the clock check on an existing induction
	// variable (A holds its register), avoiding the counter cost.
	ProbeTQInduction
	// ProbeIC increments the instruction counter by Inc and, if Check,
	// compares it against the translated target — the
	// instruction-counter baseline.
	ProbeIC
	// ProbeICCycles is the CI-Cycles hybrid: like ProbeIC, but a
	// triggered check reads the physical clock before yielding.
	ProbeICCycles
)

func (k ProbeKind) String() string {
	switch k {
	case ProbeTQ:
		return "tq"
	case ProbeTQGated:
		return "tq-gated"
	case ProbeTQInduction:
		return "tq-ivar"
	case ProbeIC:
		return "ic"
	case ProbeICCycles:
		return "ic-cycles"
	}
	return "probe(?)"
}

// Probe carries instrumentation metadata on an OpProbe instruction.
type Probe struct {
	Kind ProbeKind
	// Inc is the instruction-count increment for IC-style probes.
	Inc int64
	// Every gates ProbeTQGated: the clock is read once per Every
	// executions of this probe.
	Every int64
	// IndVar is the register of the induction variable for
	// ProbeTQInduction.
	IndVar int
	// ID indexes interpreter-side probe state.
	ID int
}

// Instr is one IR instruction. Fields are interpreted per-opcode; see
// the Opcode docs.
type Instr struct {
	Op       Opcode
	Dst      int
	A, B     int
	Imm      int64
	Locality Locality
	Probe    *Probe
}

// TermKind enumerates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	// Jump transfers to Succ1.
	Jump TermKind = iota
	// Branch transfers to Succ1 if register Cond is nonzero, else
	// Succ2.
	Branch
	// Ret ends execution of the function.
	Ret
)

// Term is a block terminator.
type Term struct {
	Kind         TermKind
	Cond         int
	Succ1, Succ2 int
}

// Block is a basic block: straight-line code plus one terminator.
type Block struct {
	ID   int
	Code []Instr
	Term Term
	// TripBound, when positive, records a pass-proven upper bound on the
	// number of consecutive iterations of this block's self-loop per
	// entry. The self-loop cloning optimization sets it on the
	// uninstrumented clone, whose dispatch guard guarantees the loop
	// exits within the gate target; the static verifier in
	// internal/verify uses it to bound the clone's probe-free cycle.
	// Zero means no such guarantee.
	TripBound int64
}

// Succs returns the successor block IDs.
func (b *Block) Succs() []int {
	switch b.Term.Kind {
	case Jump:
		return []int{b.Term.Succ1}
	case Branch:
		return []int{b.Term.Succ1, b.Term.Succ2}
	default:
		return nil
	}
}

// NonProbeLen counts the block's original (non-probe) instructions,
// the quantity instrumentation passes bound paths with.
func (b *Block) NonProbeLen() int64 {
	var n int64
	for i := range b.Code {
		if b.Code[i].Op != OpProbe {
			n++
		}
	}
	return n
}

// CallWeight is the instruction-count surcharge for a call to an
// uninstrumented external function: the compiler cannot see inside it,
// so it budgets a fixed cost (§3.1). Both the instrumentation passes
// and the static verifier bound paths in these weights.
const CallWeight = 20

// Weight is the instruction's contribution to path-length bounds:
// probes weigh nothing, calls weigh CallWeight per cost scale, and
// everything else weighs one.
func (in *Instr) Weight() int64 {
	switch in.Op {
	case OpProbe:
		return 0
	case OpCall:
		s := in.Imm
		if s < 1 {
			s = 1
		}
		return CallWeight * s
	default:
		return 1
	}
}

// Weight sums the block's instruction weights.
func (b *Block) Weight() int64 {
	var w int64
	for i := range b.Code {
		w += b.Code[i].Weight()
	}
	return w
}

// HasProbe reports whether the block contains a probe instruction.
func (b *Block) HasProbe() bool {
	for i := range b.Code {
		if b.Code[i].Op == OpProbe {
			return true
		}
	}
	return false
}

// Func is a function: blocks[0] is the entry.
type Func struct {
	Name string
	// NumRegs is the register-file size.
	NumRegs int
	// MemWords is the size of the function's data memory in words.
	MemWords int
	// NonReentrant marks functions that must not yield: a yielded-in
	// function re-entered by a concurrent job on the same core would
	// corrupt shared state (§6). Instrumentation passes leave such
	// functions probe-free.
	NonReentrant bool
	Blocks       []*Block
}

// Clone deep-copies the function, so passes can instrument without
// mutating the original.
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, NumRegs: f.NumRegs, MemWords: f.MemWords, NonReentrant: f.NonReentrant}
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Term: b.Term, TripBound: b.TripBound, Code: make([]Instr, len(b.Code))}
		copy(nb.Code, b.Code)
		for i := range nb.Code {
			if p := nb.Code[i].Probe; p != nil {
				cp := *p
				nb.Code[i].Probe = &cp
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// NumInstrs returns the total non-probe instruction count.
func (f *Func) NumInstrs() int64 {
	var n int64
	for _, b := range f.Blocks {
		n += b.NonProbeLen()
	}
	return n
}

// NumProbes returns the number of probe instructions.
func (f *Func) NumProbes() int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Code {
			if b.Code[i].Op == OpProbe {
				n++
			}
		}
	}
	return n
}

// Validate checks structural invariants: at least one block, register
// and successor indices in range. Passes call it after transforming.
func (f *Func) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s has no blocks", f.Name)
	}
	if f.NumRegs <= 0 {
		return fmt.Errorf("ir: %s has no registers", f.Name)
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("ir: %s block %d has ID %d", f.Name, i, b.ID)
		}
		if b.TripBound < 0 {
			return fmt.Errorf("ir: %s block %d has negative trip bound", f.Name, i)
		}
		for _, in := range b.Code {
			if err := f.checkRegs(in); err != nil {
				return fmt.Errorf("ir: %s block %d: %w", f.Name, i, err)
			}
		}
		switch b.Term.Kind {
		case Jump:
			if b.Term.Succ1 < 0 || b.Term.Succ1 >= len(f.Blocks) {
				return fmt.Errorf("ir: %s block %d jump target out of range", f.Name, i)
			}
		case Branch:
			if b.Term.Succ1 < 0 || b.Term.Succ1 >= len(f.Blocks) ||
				b.Term.Succ2 < 0 || b.Term.Succ2 >= len(f.Blocks) {
				return fmt.Errorf("ir: %s block %d branch target out of range", f.Name, i)
			}
			if b.Term.Cond < 0 || b.Term.Cond >= f.NumRegs {
				return fmt.Errorf("ir: %s block %d branch cond register out of range", f.Name, i)
			}
		case Ret:
		default:
			return fmt.Errorf("ir: %s block %d has invalid terminator", f.Name, i)
		}
	}
	return nil
}

func (f *Func) checkRegs(in Instr) error {
	check := func(r int) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("register %d out of range for %s", r, in.Op)
		}
		return nil
	}
	switch in.Op {
	case OpConst:
		return check(in.Dst)
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpXor, OpShr, OpCmpLT:
		if err := check(in.Dst); err != nil {
			return err
		}
		if err := check(in.A); err != nil {
			return err
		}
		return check(in.B)
	case OpLoad:
		if err := check(in.Dst); err != nil {
			return err
		}
		return check(in.A)
	case OpStore:
		if err := check(in.A); err != nil {
			return err
		}
		return check(in.B)
	case OpCall:
		return nil
	case OpProbe:
		if in.Probe == nil {
			return fmt.Errorf("probe instruction without metadata")
		}
		if in.Probe.Kind == ProbeTQInduction {
			return check(in.Probe.IndVar)
		}
		return nil
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}
