package ir

import "fmt"

// Builder constructs functions imperatively: create blocks, emit
// instructions into the current block, terminate, repeat. The
// benchmark-program suite in internal/instrument is written against it.
type Builder struct {
	f   *Func
	cur *Block
}

// NewFunc starts a function with the given register-file and data
// memory sizes. Block 0 is created and selected as the entry.
func NewFunc(name string, regs, memWords int) *Builder {
	b := &Builder{f: &Func{Name: name, NumRegs: regs, MemWords: memWords}}
	b.NewBlock()
	b.SetBlock(0)
	return b
}

// NewBlock appends an empty block and returns its ID (it does not
// change the current block).
func (b *Builder) NewBlock() int {
	blk := &Block{ID: len(b.f.Blocks), Term: Term{Kind: Ret}}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk.ID
}

// SetBlock selects the block that subsequent emissions target.
func (b *Builder) SetBlock(id int) { b.cur = b.f.Blocks[id] }

// Current returns the selected block's ID.
func (b *Builder) Current() int { return b.cur.ID }

func (b *Builder) emit(in Instr) {
	b.cur.Code = append(b.cur.Code, in)
}

// Const emits dst = imm.
func (b *Builder) Const(dst int, imm int64) { b.emit(Instr{Op: OpConst, Dst: dst, Imm: imm}) }

// Add emits dst = a + rb.
func (b *Builder) Add(dst, a, rb int) { b.emit(Instr{Op: OpAdd, Dst: dst, A: a, B: rb}) }

// Sub emits dst = a - rb.
func (b *Builder) Sub(dst, a, rb int) { b.emit(Instr{Op: OpSub, Dst: dst, A: a, B: rb}) }

// Mul emits dst = a * rb.
func (b *Builder) Mul(dst, a, rb int) { b.emit(Instr{Op: OpMul, Dst: dst, A: a, B: rb}) }

// Div emits dst = a / rb.
func (b *Builder) Div(dst, a, rb int) { b.emit(Instr{Op: OpDiv, Dst: dst, A: a, B: rb}) }

// And emits dst = a & rb.
func (b *Builder) And(dst, a, rb int) { b.emit(Instr{Op: OpAnd, Dst: dst, A: a, B: rb}) }

// Xor emits dst = a ^ rb.
func (b *Builder) Xor(dst, a, rb int) { b.emit(Instr{Op: OpXor, Dst: dst, A: a, B: rb}) }

// Shr emits dst = a >> (rb & 63).
func (b *Builder) Shr(dst, a, rb int) { b.emit(Instr{Op: OpShr, Dst: dst, A: a, B: rb}) }

// CmpLT emits dst = (a < rb) ? 1 : 0.
func (b *Builder) CmpLT(dst, a, rb int) { b.emit(Instr{Op: OpCmpLT, Dst: dst, A: a, B: rb}) }

// Load emits dst = mem[a] with the given locality class.
func (b *Builder) Load(dst, a int, loc Locality) {
	b.emit(Instr{Op: OpLoad, Dst: dst, A: a, Locality: loc})
}

// Store emits mem[a] = rb.
func (b *Builder) Store(a, rb int) { b.emit(Instr{Op: OpStore, A: a, B: rb}) }

// Call emits a call to an uninstrumented external function whose cost
// is scale times the model's base call cost.
func (b *Builder) Call(scale int64) { b.emit(Instr{Op: OpCall, Imm: scale}) }

// Jump terminates the current block with an unconditional jump.
func (b *Builder) Jump(target int) { b.cur.Term = Term{Kind: Jump, Succ1: target} }

// BranchNZ terminates the current block: if register cond is nonzero
// control goes to t1, else t2.
func (b *Builder) BranchNZ(cond, t1, t2 int) {
	b.cur.Term = Term{Kind: Branch, Cond: cond, Succ1: t1, Succ2: t2}
}

// Ret terminates the current block with a return.
func (b *Builder) Ret() { b.cur.Term = Term{Kind: Ret} }

// Build validates and returns the function.
func (b *Builder) Build() *Func {
	if err := b.f.Validate(); err != nil {
		panic(fmt.Sprintf("ir.Builder: %v", err))
	}
	return b.f
}

// CountedLoop emits a canonical counted loop using registers iReg
// (counter) and tmpReg (comparison scratch): body blocks are produced
// by bodyFn, which is given the builder positioned in a fresh body
// block and must not terminate it. The loop runs trips iterations.
// After the call the builder is positioned in the exit block, whose ID
// is returned.
func (b *Builder) CountedLoop(iReg, boundReg, tmpReg int, trips int64, bodyFn func()) int {
	header := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Const(iReg, 0)
	b.Const(boundReg, trips)
	b.Jump(header)
	b.SetBlock(header)
	b.CmpLT(tmpReg, iReg, boundReg)
	b.BranchNZ(tmpReg, body, exit)
	b.SetBlock(body)
	bodyFn()
	one := tmpReg // reuse scratch for the increment constant
	b.Const(one, 1)
	b.Add(iReg, iReg, one)
	b.Jump(header)
	b.SetBlock(exit)
	return exit
}
