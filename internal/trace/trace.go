// Package trace records scheduling timelines from the simulated
// machines: per-job lifecycle events (arrival, dispatch, quanta,
// completion) that can be dumped as chrome://tracing JSON to inspect
// how quanta interleave on workers — the visual counterpart of the
// paper's Figure 3 pipeline.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind labels one lifecycle event.
type Kind uint8

// Event kinds, in per-job lifecycle order.
const (
	// Arrive: the request hit the NIC.
	Arrive Kind = iota
	// Dispatch: the dispatcher forwarded it to a worker.
	Dispatch
	// QuantumStart: a worker began executing one quantum of the job.
	QuantumStart
	// QuantumEnd: the quantum ended (yield or completion).
	QuantumEnd
	// Finish: the job completed and its response left the worker.
	Finish
	// Drop: the request was dropped at a saturated RX queue.
	Drop
)

var kindNames = [...]string{"arrive", "dispatch", "qstart", "qend", "finish", "drop"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	T      sim.Time
	Kind   Kind
	Job    uint64
	Class  int
	Worker int // -1 when not yet placed
}

// Recorder accumulates events up to a cap (0 = 1<<20). The zero value
// is ready to use.
//
// The cap has prefix semantics: once full, the recorder keeps what it
// has and counts further events as discarded instead of overwriting
// old ones. A truncated recording is therefore a strict prefix of the
// run's timeline — every recorded transition really happened, in
// order — which is what keeps Validate sound on capped recordings.
// Check Truncated before treating a recording as the complete run;
// Discarded says how much of the tail is missing.
type Recorder struct {
	Max       int
	events    []Event
	discarded int
}

// Emit appends an event; once Max is reached further events are
// discarded (the recorder is a debugging aid, not a metric) and the
// discard is counted, so consumers can tell a complete timeline from
// a capped prefix via Truncated.
func (r *Recorder) Emit(e Event) {
	max := r.Max
	if max == 0 {
		max = 1 << 20
	}
	if len(r.events) < max {
		r.events = append(r.events, e)
		return
	}
	r.discarded++
}

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []Event { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Truncated reports whether the cap discarded any events: the
// recording is then a strict prefix of the run's timeline, not the
// whole of it.
func (r *Recorder) Truncated() bool { return r.discarded > 0 }

// Discarded returns how many events the cap discarded.
func (r *Recorder) Discarded() int { return r.discarded }

// chromeEvent is the Trace Event Format's "complete" (X) or "instant"
// (i) record.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // µs
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
}

// WriteChrome renders the timeline as chrome://tracing / Perfetto
// JSON: each worker becomes a thread whose quantum executions are
// duration events named by job; arrivals and completions are instant
// events.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var out []chromeEvent
	// Pair QuantumStart/QuantumEnd per worker (they strictly nest:
	// one quantum at a time per worker).
	open := map[int]Event{}
	for _, e := range r.events {
		switch e.Kind {
		case QuantumStart:
			open[e.Worker] = e
		case QuantumEnd:
			if s, ok := open[e.Worker]; ok && s.Job == e.Job {
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("job %d (class %d)", e.Job, e.Class),
					Cat:  "quantum",
					Ph:   "X",
					Ts:   s.T.Micros(),
					Dur:  e.T.Micros() - s.T.Micros(),
					Pid:  1,
					Tid:  e.Worker + 1,
				})
				delete(open, e.Worker)
			}
		case Arrive, Dispatch, Finish, Drop:
			tid := e.Worker + 1
			if e.Worker < 0 {
				tid = 0 // dispatcher lane
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s job %d", e.Kind, e.Job),
				Cat:  "lifecycle",
				Ph:   "i",
				Ts:   e.T.Micros(),
				Pid:  1,
				Tid:  tid,
				S:    "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// Validate checks per-job lifecycle ordering: arrive <= dispatch <=
// first quantum, quanta strictly ordered, finish last and at the same
// instant as the job's final quantum end (the response leaves the
// worker when the job stops executing; a later Finish would charge
// scheduler overhead to the job's lifetime). It returns the first
// violation found, or nil — used by tests as a machine-model
// invariant.
//
// A truncated recording (see Truncated) is still validated soundly:
// the cap discards events strictly from the tail, so the recording is
// a prefix of the full timeline, every recorded transition is a real
// one, and jobs whose later events fell past the cap are simply
// checked as far as the recording goes. No violation is ever reported
// merely because the recording was capped.
func (r *Recorder) Validate() error {
	type jobState struct {
		last  Kind
		lastT sim.Time
	}
	jobs := map[uint64]*jobState{}
	for i, e := range r.events {
		js := jobs[e.Job]
		if js == nil {
			if e.Kind != Arrive {
				return fmt.Errorf("event %d: job %d starts with %v, want arrive", i, e.Job, e.Kind)
			}
			jobs[e.Job] = &jobState{last: Arrive, lastT: e.T}
			continue
		}
		if e.T < js.lastT {
			return fmt.Errorf("event %d: job %d %v at %d is before its previous event at %d (time went backwards)",
				i, e.Job, e.Kind, e.T, js.lastT)
		}
		switch e.Kind {
		case Arrive:
			return fmt.Errorf("event %d: job %d arrived twice", i, e.Job)
		case Dispatch:
			if js.last != Arrive {
				return fmt.Errorf("event %d: job %d dispatched after %v", i, e.Job, js.last)
			}
		case QuantumStart:
			if js.last != Dispatch && js.last != QuantumEnd {
				return fmt.Errorf("event %d: job %d quantum started after %v", i, e.Job, js.last)
			}
		case QuantumEnd:
			if js.last != QuantumStart {
				return fmt.Errorf("event %d: job %d quantum ended after %v", i, e.Job, js.last)
			}
		case Finish:
			if js.last != QuantumEnd {
				return fmt.Errorf("event %d: job %d finished after %v", i, e.Job, js.last)
			}
			if e.T != js.lastT {
				return fmt.Errorf("event %d: job %d finished at %d but its last quantum ended at %d",
					i, e.Job, e.T, js.lastT)
			}
		case Drop:
			if js.last != Arrive {
				return fmt.Errorf("event %d: job %d dropped after %v", i, e.Job, js.last)
			}
		}
		js.last = e.Kind
		js.lastT = e.T
	}
	return nil
}
