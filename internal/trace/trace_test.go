package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func lifecycle(job uint64, worker int, times ...int64) []Event {
	kinds := []Kind{Arrive, Dispatch, QuantumStart, QuantumEnd, Finish}
	var out []Event
	for i, t := range times {
		w := worker
		if kinds[i] == Arrive {
			w = -1
		}
		out = append(out, Event{T: sim.Time(t), Kind: kinds[i], Job: job, Worker: w})
	}
	return out
}

func TestRecorderCapsEvents(t *testing.T) {
	r := Recorder{Max: 3}
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: sim.Time(i), Kind: Arrive, Job: uint64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capped)", r.Len())
	}
}

func TestRecorderTruncationIsCountedAndSound(t *testing.T) {
	// A recorder that never hits its cap reports a complete timeline.
	full := Recorder{Max: 10}
	for _, e := range lifecycle(1, 0, 0, 10, 20, 30, 30) {
		full.Emit(e)
	}
	if full.Truncated() || full.Discarded() != 0 {
		t.Fatalf("uncapped recording reports truncation: %v/%d", full.Truncated(), full.Discarded())
	}

	// Cap mid-lifecycle: the discard is counted, the recording is a
	// prefix, and Validate still accepts it — a job whose later events
	// fell past the cap is not a violation.
	capped := Recorder{Max: 3}
	for _, e := range lifecycle(1, 0, 0, 10, 20, 30, 30) {
		capped.Emit(e)
	}
	if !capped.Truncated() {
		t.Fatal("capped recording not flagged as truncated")
	}
	if capped.Discarded() != 2 {
		t.Fatalf("Discarded = %d, want 2", capped.Discarded())
	}
	if capped.Len() != 3 {
		t.Fatalf("Len = %d, want 3", capped.Len())
	}
	if err := capped.Validate(); err != nil {
		t.Fatalf("capped prefix rejected: %v", err)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	var r Recorder
	for _, e := range lifecycle(1, 0, 0, 10, 20, 30, 30) {
		r.Emit(e)
	}
	// Interleave a second job with two quanta.
	r.Emit(Event{T: sim.Time(5), Kind: Arrive, Job: 2, Worker: -1})
	r.Emit(Event{T: sim.Time(12), Kind: Dispatch, Job: 2, Worker: 1})
	r.Emit(Event{T: sim.Time(15), Kind: QuantumStart, Job: 2, Worker: 1})
	r.Emit(Event{T: sim.Time(17), Kind: QuantumEnd, Job: 2, Worker: 1})
	r.Emit(Event{T: sim.Time(22), Kind: QuantumStart, Job: 2, Worker: 1})
	r.Emit(Event{T: sim.Time(25), Kind: QuantumEnd, Job: 2, Worker: 1})
	r.Emit(Event{T: sim.Time(25), Kind: Finish, Job: 2, Worker: 1})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := map[string][]Event{
		"starts without arrive": {
			{T: sim.Time(0), Kind: Dispatch, Job: 1},
		},
		"double arrive": {
			{T: sim.Time(0), Kind: Arrive, Job: 1},
			{T: sim.Time(1), Kind: Arrive, Job: 1},
		},
		"quantum before dispatch": {
			{T: sim.Time(0), Kind: Arrive, Job: 1},
			{T: sim.Time(1), Kind: QuantumStart, Job: 1},
		},
		"finish before quantum end": {
			{T: sim.Time(0), Kind: Arrive, Job: 1},
			{T: sim.Time(1), Kind: Dispatch, Job: 1},
			{T: sim.Time(2), Kind: QuantumStart, Job: 1},
			{T: sim.Time(3), Kind: Finish, Job: 1},
		},
		"time backwards": {
			{T: sim.Time(5), Kind: Arrive, Job: 1},
			{T: sim.Time(3), Kind: Dispatch, Job: 1},
		},
		"drop after dispatch": {
			{T: sim.Time(0), Kind: Arrive, Job: 1},
			{T: sim.Time(1), Kind: Dispatch, Job: 1},
			{T: sim.Time(2), Kind: Drop, Job: 1},
		},
		"finish after quantum end instant": {
			{T: sim.Time(0), Kind: Arrive, Job: 1},
			{T: sim.Time(1), Kind: Dispatch, Job: 1},
			{T: sim.Time(2), Kind: QuantumStart, Job: 1},
			{T: sim.Time(5), Kind: QuantumEnd, Job: 1},
			{T: sim.Time(7), Kind: Finish, Job: 1},
		},
	}
	for name, evs := range cases {
		var r Recorder
		for _, e := range evs {
			r.Emit(e)
		}
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", name)
		}
	}
}

func TestWriteChromeProducesValidJSON(t *testing.T) {
	var r Recorder
	for _, e := range lifecycle(1, 0, 0, 1000, 2000, 4000, 4000) {
		r.Emit(e)
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// One duration event (the quantum) plus three instants.
	var durs, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			durs++
		case "i":
			instants++
		}
	}
	if durs != 1 || instants != 3 {
		t.Fatalf("got %d duration and %d instant events, want 1 and 3:\n%s", durs, instants, buf.String())
	}
	if !strings.Contains(buf.String(), "quantum") {
		t.Fatal("missing quantum category")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{Arrive: "arrive", Dispatch: "dispatch", QuantumStart: "qstart",
		QuantumEnd: "qend", Finish: "finish", Drop: "drop"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
