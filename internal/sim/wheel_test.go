package sim

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/rng"
)

// --- Differential testing: timing wheel vs retired 4-ary heap -------
//
// The wheel replaced the heap under a strict contract: identical
// (at, seq) pop order for every schedule. These tests drive both
// queues with the same random interleavings of scheduling, single
// pops, and RunUntil-style bounded drains, comparing every popped
// event and every peeked timestamp.

// differential mirrors one Engine-shaped trajectory onto both queues.
type differential struct {
	t     *testing.T
	e     *Engine
	h     eventHeap
	hseq  uint64
	fired []uint64 // seqs fired by engine callbacks, in order
}

func newDifferential(t *testing.T) *differential {
	return &differential{t: t, e: New()}
}

// schedule registers one event at the given delay from the engine
// clock in both queues; the engine-side callback records the event's
// seq so pop order is observable.
func (d *differential) schedule(delay Time) {
	at := d.e.Now() + delay
	d.hseq++
	seq := d.hseq
	d.e.At(at, func() { d.fired = append(d.fired, seq) })
	d.h.push(event{at: at, seq: seq, fn: nil})
	if d.e.seq != d.hseq {
		d.t.Fatalf("engine seq %d diverged from mirror %d", d.e.seq, d.hseq)
	}
}

// runUntil drains both queues through the deadline and compares the
// fired sequences event by event.
func (d *differential) runUntil(deadline Time) {
	d.fired = d.fired[:0]
	d.e.RunUntil(deadline)
	var want []uint64
	for d.h.len() > 0 && d.h.min() <= deadline {
		want = append(want, d.h.pop().seq)
	}
	d.compare(want)
}

// drain empties both queues and compares the full remaining order.
func (d *differential) drain() {
	d.fired = d.fired[:0]
	d.e.Run()
	var want []uint64
	for d.h.len() > 0 {
		want = append(want, d.h.pop().seq)
	}
	d.compare(want)
}

func (d *differential) compare(want []uint64) {
	d.t.Helper()
	if len(d.fired) != len(want) {
		d.t.Fatalf("wheel fired %d events, heap %d (wheel %v, heap %v)",
			len(d.fired), len(want), d.fired, want)
	}
	for i := range want {
		if d.fired[i] != want[i] {
			d.t.Fatalf("pop %d: wheel fired seq %d, heap seq %d", i, d.fired[i], want[i])
		}
	}
	if d.e.Pending() != d.h.len() {
		d.t.Fatalf("pending mismatch: wheel %d, heap %d", d.e.Pending(), d.h.len())
	}
}

// delayFor maps a byte to a delay spanning every wheel level: same
// instant, same level-0 slot, and each coarser window up to tens of
// seconds, with ties made frequent so the seq tie-break is exercised.
func delayFor(b byte, r *rng.Rand) Time {
	switch b % 8 {
	case 0:
		return 0 // same instant: pure seq ordering
	case 1:
		return Time(r.Uint64n(4)) // dense ties in one slot
	case 2:
		return Time(r.Uint64n(wheelSlots)) // level 0 span
	case 3:
		return Time(r.Uint64n(1 << 16)) // level 1 span
	case 4:
		return Time(r.Uint64n(1 << 24)) // level 2 span
	case 5:
		return Time(r.Uint64n(1 << 32)) // level 3 span
	case 6:
		return Time(r.Uint64n(1 << 40)) // level 4 span
	default:
		return Time(r.Uint64n(1000) + 1) // churn regime
	}
}

// applyOps interprets a byte string as a schedule/drain interleaving
// and checks wheel/heap equivalence after every step.
func applyOps(t *testing.T, ops []byte, seed uint64) {
	d := newDifferential(t)
	r := rng.New(seed)
	for _, op := range ops {
		switch {
		case op < 160: // schedule a burst
			n := int(op%7) + 1
			for i := 0; i < n; i++ {
				d.schedule(delayFor(op+byte(i), r))
			}
		case op < 200: // bounded drain (RunUntil), sometimes past a halt
			d.runUntil(d.e.Now() + delayFor(op, r))
		case op < 220: // zero-width drain: deadline == now
			d.runUntil(d.e.Now())
		default: // full drain
			d.drain()
		}
	}
	d.drain()
}

func TestWheelMatchesHeapRandom(t *testing.T) {
	r := rng.New(0xD1FF)
	for trial := 0; trial < 150; trial++ {
		ops := make([]byte, int(r.Uint64n(60))+4)
		for i := range ops {
			ops[i] = byte(r.Uint64())
		}
		applyOps(t, ops, r.Uint64())
	}
}

// FuzzWheelVsHeap is the same differential check under the fuzzer:
// `go test -fuzz FuzzWheelVsHeap ./internal/sim` explores op strings,
// and the seed corpus keeps the key shapes in every plain `go test`.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{10, 240, 10, 170, 240}, uint64(1))
	f.Add([]byte{0, 0, 0, 230, 159, 159, 201, 240}, uint64(7))
	f.Add([]byte{155, 165, 155, 175, 155, 185, 240}, uint64(42))
	f.Add([]byte{9, 210, 9, 210, 9, 240}, uint64(0xC0FFEE))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		applyOps(t, ops, seed)
	})
}

// --- Halt semantics -------------------------------------------------

func TestHaltBeforeRunIsHonored(t *testing.T) {
	e := New()
	ran := false
	e.At(5, func() { ran = true })
	e.Halt()
	if end := e.Run(); end != 0 {
		t.Fatalf("halted Run advanced the clock to %v", end)
	}
	if ran {
		t.Fatal("halted Run executed an event")
	}
	if e.Pending() != 1 {
		t.Fatalf("halted Run consumed the queue: Pending = %d", e.Pending())
	}
	// The halt is consumed: the next Run proceeds normally.
	if end := e.Run(); end != 5 || !ran {
		t.Fatalf("post-halt Run: end=%v ran=%v, want 5 true", end, ran)
	}
}

func TestHaltBeforeRunUntilIsHonored(t *testing.T) {
	e := New()
	ran := false
	e.At(5, func() { ran = true })
	e.Halt()
	if end := e.RunUntil(100); end != 0 {
		t.Fatalf("halted RunUntil advanced the clock to %v", end)
	}
	if ran || e.Pending() != 1 {
		t.Fatalf("halted RunUntil executed work: ran=%v pending=%d", ran, e.Pending())
	}
	if end := e.RunUntil(100); end != 100 || !ran {
		t.Fatalf("post-halt RunUntil: end=%v ran=%v, want 100 true", end, ran)
	}
}

func TestHaltInsideCallbackStillStops(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 || e.Pending() != 7 {
		t.Fatalf("in-callback halt: count=%d pending=%d, want 3/7", count, e.Pending())
	}
	// The halt was consumed by the halted Run: resuming drains the rest.
	e.Run()
	if count != 10 || e.Pending() != 0 {
		t.Fatalf("resume after halt: count=%d pending=%d, want 10/0", count, e.Pending())
	}
}

// --- Closure retention and the shrink policy ------------------------

// retainable is a finalizer-carrying allocation captured by event
// closures; its collection proves the queue dropped the closure.
type retainable struct{ payload [1 << 16]byte }

// scheduleRetainable schedules n events whose closures capture a fresh
// retainable, in its own function so the test frame holds no live
// reference afterwards.
func scheduleRetainable(e *Engine, n int, at Time, freed chan struct{}) {
	p := &retainable{}
	runtime.SetFinalizer(p, func(*retainable) { close(freed) })
	for i := 0; i < n; i++ {
		e.At(at+Time(i%3), func() { _ = p })
	}
}

func waitFreed(t *testing.T, freed chan struct{}, what string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-freed:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatalf("%s: drained engine still retains event closures", what)
}

// TestDrainedEngineReleasesClosures is the regression test for the
// event-closure retention bug: popped events' fn closures stayed
// reachable from the queue's backing storage until a later push
// happened to overwrite the slot, pinning everything the closures
// captured. A drained engine must hold no live closures.
func TestDrainedEngineReleasesClosures(t *testing.T) {
	e := New()
	freed := make(chan struct{})
	scheduleRetainable(e, 64, 1000, freed)
	e.Run()
	waitFreed(t, freed, "run-drained engine")
	runtime.KeepAlive(e)
}

// TestCascadeReleasesClosures covers the cascade path: events parked
// in a coarse bucket are re-filed downward when the clock reaches
// their window, and the vacated bucket must not retain them either.
// Draining through RunUntil (peek-then-pop) also exercises nextTime's
// cascades directly.
func TestCascadeReleasesClosures(t *testing.T) {
	e := New()
	freed := make(chan struct{})
	// Far enough out to sit two levels up, forcing multiple cascades.
	scheduleRetainable(e, 64, 1<<20, freed)
	e.RunUntil(1 << 21)
	waitFreed(t, freed, "cascade-drained engine")
	runtime.KeepAlive(e)
}

// TestWheelShrinkPolicy checks that a one-off burst does not pin its
// high-water storage: a slot whose backing array grew past
// slotShrinkCap releases it once drained, while ordinary slots keep
// their (small) storage for reuse.
func TestWheelShrinkPolicy(t *testing.T) {
	e := New()
	const burst = slotShrinkCap * 2
	for i := 0; i < burst; i++ {
		e.At(100, func() {})
	}
	e.At(7, func() {})
	e.Run()
	if s := &e.wheel.levels[0].slots[100]; s.events != nil {
		t.Fatalf("burst slot kept cap %d after drain; want released", cap(s.events))
	}
	if s := &e.wheel.levels[0].slots[7]; s.events == nil || cap(s.events) == 0 {
		t.Fatal("ordinary slot dropped its storage; want it kept for reuse")
	}
}

// TestWheelSlotReuseAfterShrink makes sure a shrunk slot keeps
// working: the next rotation simply reallocates it.
func TestWheelSlotReuseAfterShrink(t *testing.T) {
	e := New()
	for round := 0; round < 3; round++ {
		at := e.Now() + 100
		fired := 0
		for i := 0; i < slotShrinkCap*2; i++ {
			e.At(at, func() { fired++ })
		}
		e.Run()
		if fired != slotShrinkCap*2 {
			t.Fatalf("round %d fired %d events, want %d", round, fired, slotShrinkCap*2)
		}
	}
}
