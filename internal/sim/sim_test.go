package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRunsInTimestampOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{5, 10, 20, 25, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ran at %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var fired Time = -1
	e.At(50, func() {
		e.After(25, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 75 {
		t.Fatalf("After fired at %d, want 75", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestHaltStopsRun(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Halt, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d after halt, want 7", e.Pending())
	}
}

func TestRunUntilRespectsDeadline(t *testing.T) {
	e := New()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	end := e.RunUntil(25)
	if end != 25 {
		t.Fatalf("RunUntil returned %d, want 25", end)
	}
	if len(ran) != 2 || ran[0] != 10 || ran[1] != 20 {
		t.Fatalf("RunUntil ran %v, want [10 20]", ran)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	// Resuming processes the remainder.
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("resume ran %v", ran)
	}
}

func TestRunReturnsFinalTime(t *testing.T) {
	e := New()
	e.At(123, func() {})
	if end := e.Run(); end != 123 {
		t.Fatalf("Run returned %d, want 123", end)
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Property: any multiset of timestamps is drained in sorted order.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		e := New()
		n := 200
		want := make([]Time, n)
		var got []Time
		for i := 0; i < n; i++ {
			at := Time(r.Uint64n(1000))
			want[i] = at
			e.At(at, func() { got = append(got, e.Now()) })
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		e.Run()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := New()
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, 10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			tk.Stop()
		}
	})
	e.Run()
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period did not panic")
		}
	}()
	NewTicker(New(), 0, func() {})
}

func TestMicrosConversion(t *testing.T) {
	if got := Micros(2.5); got != 2500 {
		t.Fatalf("Micros(2.5) = %d, want 2500", got)
	}
	if got := Micros(0.0005); got != 1 {
		t.Fatalf("Micros(0.0005) = %d, want 1 (rounded)", got)
	}
	if got := (2500 * Nanosecond).Micros(); got != 2.5 {
		t.Fatalf("Time.Micros = %v, want 2.5", got)
	}
	if got := Second.Seconds(); got != 1 {
		t.Fatalf("Second.Seconds = %v, want 1", got)
	}
}

func TestMicrosRoundsHalfAwayFromZero(t *testing.T) {
	cases := []struct {
		us   float64
		want Time
	}{
		{0, 0},
		{0.0005, 1},   // exact half rounds up
		{0.0004, 0},   // below half truncates
		{1.2, 1200},   // plain positive
		{-1.2, -1200}, // plain negative: must not truncate toward zero
		{-0.0005, -1}, // exact negative half rounds away from zero
		{-0.0004, 0},  // below half rounds to zero
		{-2.5, -2500}, // negative with exact ns value
		{-0.0012, -1}, // -1.2ns rounds to -1, not 0 (truncation bug)
		{-0.0018, -2}, // -1.8ns rounds to -2
	}
	for _, c := range cases {
		if got := Micros(c.us); got != c.want {
			t.Errorf("Micros(%v) = %d, want %d", c.us, got, c.want)
		}
	}
	// Symmetry: negating the input negates the output.
	for _, us := range []float64{0.0005, 0.3, 1.7, 2.5, 99.9999} {
		if Micros(-us) != -Micros(us) {
			t.Errorf("Micros(%v)=%d but Micros(%v)=%d: not symmetric",
				us, Micros(us), -us, Micros(-us))
		}
	}
}

func TestEngineExecutedCountsEvents(t *testing.T) {
	e := New()
	if e.Executed() != 0 {
		t.Fatalf("fresh engine Executed() = %d", e.Executed())
	}
	for i := 1; i <= 5; i++ {
		e.After(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed() = %d after 5 events, want 5", e.Executed())
	}
	// RunUntil counts, too, and the counter accumulates across calls.
	e.After(1, func() { e.After(1, func() {}) })
	e.RunUntil(e.Now() + 10)
	if e.Executed() != 7 {
		t.Fatalf("Executed() = %d after 7 events, want 7", e.Executed())
	}
}

func BenchmarkEngineChurn(b *testing.B) {
	// Measures push/pop throughput with a live queue of 1024 events,
	// the regime the scheduling simulations operate in.
	e := New()
	r := rng.New(1)
	depth := 1024
	var fn func()
	fn = func() {
		e.After(Time(r.Uint64n(1000)+1), fn)
	}
	for i := 0; i < depth; i++ {
		e.After(Time(r.Uint64n(1000)+1), fn)
	}
	b.ResetTimer()
	count := 0
	target := b.N
	for count < target {
		ev := e.wheel.pop()
		e.now = ev.at
		ev.fn()
		count++
	}
}

// BenchmarkEngineChurnHeap is the same workload on the retired 4-ary
// heap, the before-number every BENCH_*.json compares the wheel to.
func BenchmarkEngineChurnHeap(b *testing.B) {
	var (
		h   eventHeap
		now Time
		seq uint64
	)
	r := rng.New(1)
	push := func(fn func()) {
		seq++
		h.push(event{at: now + Time(r.Uint64n(1000)+1), seq: seq, fn: fn})
	}
	var fn func()
	fn = func() { push(fn) }
	for i := 0; i < 1024; i++ {
		push(fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		now = ev.at
		ev.fn()
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{740, "740ns"},
		{-30, "-30ns"},
		{Microsecond, "1µs"},
		{2070, "2.07µs"},
		{1500 * Microsecond, "1.5ms"},
		{Second, "1s"},
		{2*Second + 500*Millisecond, "2.5s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
