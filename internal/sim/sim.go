// Package sim is a discrete-event simulation engine with an int64
// nanosecond virtual clock. It is the substrate under every scheduling
// experiment in this repository: the Tiny Quanta machine models, the
// Shinjuku and Caladan baselines, and the motivation simulations of §2.
//
// Events scheduled for the same instant fire in scheduling order
// (FIFO), which keeps runs deterministic: the same seed always yields
// the same trajectory.
package sim

import "fmt"

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, in ns.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Micros converts a duration in (possibly fractional) microseconds to a
// Time, rounding to the nearest nanosecond with ties away from zero.
// Negative durations are legal (time deltas can be negative); the
// conversion must not round them toward zero, which `Time(ns + 0.5)`
// alone would.
func Micros(us float64) Time {
	ns := us * 1000
	if ns < 0 {
		return Time(ns - 0.5)
	}
	return Time(ns + 0.5)
}

// Seconds converts t to fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders t with an adaptive unit — plain ns below 1µs, then
// fractional µs, ms, or s — so timestamps in reports and trace tours
// read naturally at every scale ("740ns", "2.07µs", "1.5ms").
func (t Time) String() string {
	abs := t
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case abs < Millisecond:
		return trimZeros(fmt.Sprintf("%.3f", t.Micros())) + "µs"
	case abs < Second:
		return trimZeros(fmt.Sprintf("%.3f", float64(t)/float64(Millisecond))) + "ms"
	default:
		return trimZeros(fmt.Sprintf("%.3f", t.Seconds())) + "s"
	}
}

// trimZeros drops a fixed-point literal's trailing fractional zeros.
func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// event is a scheduled callback. seq breaks ties so that events at the
// same instant run in the order they were scheduled.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Engine runs events in timestamp order. The zero value is ready to
// use. The queue behind it is a hierarchical timing wheel (wheel.go);
// the ordering contract — (at, seq), so same-instant events fire in
// scheduling order — is independent of the queue implementation and
// pinned by differential tests against the retired heap (heap.go).
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	halted   bool
	wheel    timingWheel
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug.
func (e *Engine) At(at Time, fn func()) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.wheel.push(event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, fn)
}

// Halt stops the run loop after the current event returns. Pending
// events remain queued. The halt is sticky until a run loop consumes
// it: calling Halt with no loop active makes the next Run or RunUntil
// return immediately, executing nothing and (for RunUntil) leaving the
// clock where it was. Each Run/RunUntil call consumes at most one
// halt, so the call after that proceeds normally. (Before PR 6 the run
// loops reset the flag on entry, silently discarding a pre-run Halt.)
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.wheel.count }

// Executed reports the number of events run so far — the natural unit
// of simulation work, used by the sweep progress layer to report
// sim-events/second.
func (e *Engine) Executed() uint64 { return e.executed }

// Run executes events until the queue is empty or Halt is called. It
// returns the final virtual time.
func (e *Engine) Run() Time {
	for e.wheel.count > 0 && !e.halted {
		ev := e.wheel.pop()
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	e.halted = false // consume the halt, see Halt
	return e.now
}

// RunUntil executes events with timestamps <= deadline (or until Halt),
// then advances the clock to the deadline. Events beyond the deadline
// stay queued; a halted RunUntil leaves the clock at the last executed
// event rather than advancing it to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.halted {
		t, ok := e.wheel.nextTime(deadline)
		if !ok || t > deadline {
			break
		}
		ev := e.wheel.pop()
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
	e.halted = false // consume the halt, see Halt
	return e.now
}

// Ticker invokes fn every period ns starting at the next period
// boundary, until Stop is called or the engine drains. It models the
// polling loops in the system (e.g. the dispatcher reading worker
// counters).
type Ticker struct {
	e       *Engine
	period  Time
	stopped bool
}

// NewTicker starts a ticker on e with the given period (> 0).
func NewTicker(e *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{e: e, period: period}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.stopped = true }
