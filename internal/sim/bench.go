package sim

import "time"

// This file is the engine's benchmark surface, consumed by
// cmd/tqbench: one standard churn workload, runnable against both the
// live timing wheel and the retired 4-ary heap, so every BENCH_*.json
// records the wheel's speedup against the exact baseline it replaced
// instead of a number copied from an old report.

// churnDelay derives the i-th reschedule delay of the standard churn
// workload: uniform in [1, 1000]ns from a splitmix64 stream, so both
// queue implementations see the identical schedule without the engine
// depending on the rng package.
func churnDelay(state *uint64) Time {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	z ^= z >> 31
	return Time(z%1000 + 1)
}

// EngineChurn runs the standard churn workload — depth self-renewing
// events with uniform 1..1000ns reschedule delays, the regime the
// scheduling simulations operate in — for n events on a fresh Engine
// and returns the wall-clock time of the measured run loop.
func EngineChurn(depth, n int, seed uint64) time.Duration {
	e := New()
	state := seed
	remaining := n
	var fn func()
	fn = func() {
		remaining--
		if remaining == 0 {
			e.Halt()
			return
		}
		e.After(churnDelay(&state), fn)
	}
	for i := 0; i < depth; i++ {
		e.After(churnDelay(&state), fn)
	}
	start := time.Now() //simvet:ignore host wall-clock benchmark timing, not sim state
	e.Run()
	return time.Since(start) //simvet:ignore host wall-clock benchmark timing, not sim state
}

// HeapChurn is EngineChurn against the retired 4-ary heap baseline:
// the same delay stream and live depth, driven through the equivalent
// pop → advance clock → run callback loop the old engine used.
func HeapChurn(depth, n int, seed uint64) time.Duration {
	var (
		h     eventHeap
		now   Time
		seq   uint64
		state = seed
	)
	push := func(fn func()) {
		seq++
		h.push(event{at: now + churnDelay(&state), seq: seq, fn: fn})
	}
	var fn func()
	fn = func() { push(fn) }
	for i := 0; i < depth; i++ {
		push(fn)
	}
	start := time.Now() //simvet:ignore host wall-clock benchmark timing, not sim state
	for i := 0; i < n; i++ {
		ev := h.pop()
		now = ev.at
		ev.fn()
	}
	return time.Since(start) //simvet:ignore host wall-clock benchmark timing, not sim state
}
