package sim

import "math/bits"

// The event queue is a hierarchical timing wheel (a calendar queue):
// eight levels of 256 slots, level L covering the virtual-time range
// [cur, cur + 256^(L+1)) at a granularity of 256^L nanoseconds. Push
// drops an event into the one slot whose window contains its
// timestamp — O(1), one append — and pop scans a 256-bit occupancy
// bitmap for the next non-empty slot, cascading coarse buckets down a
// level as the clock reaches their window. Every event is touched at
// most once per level (≤ 8 times total), so both operations are
// amortized O(1) versus the retired heap's O(log n) sift per
// operation; cmd/tqbench records the measured speedup every PR.
//
// Ordering is the engine's documented contract, exactly: events pop in
// (at, seq) order. Within a level-0 slot all events share one
// timestamp, and a slot's slice is always seq-sorted, because
//
//   - seq increases monotonically with every push,
//   - an event is pushed directly into a level-0 slot only while the
//     wheel's clock is inside that slot's 256ns window (otherwise the
//     differing high bits route it to a coarser level), and
//   - a coarse bucket cascades — in stored, i.e. seq, order — at the
//     instant the clock first enters its window, which is therefore
//     before any direct push into the slots it fans out to.
//
// The heap/wheel differential fuzz tests (wheel_test.go) check this
// equivalence on random schedule/pop interleavings, and the PR 5
// golden fixtures pin it for every machine model's full trajectory.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 8 // 8 levels × 8 bits spans every int64 timestamp

	// slotShrinkCap is the shrink policy's threshold: a drained slot
	// whose backing array grew beyond this many events releases it to
	// the garbage collector instead of keeping it for reuse, so one
	// pathological burst (say, a megabatch scheduled at one instant)
	// does not pin its high-water storage for the rest of the run.
	// Steady-state slots stay far below it and keep their storage, so
	// the hot path settles to zero allocations.
	slotShrinkCap = 1024
)

// wheelSlot is one bucket: a FIFO of events drained via head so that
// callbacks can append same-instant events while the slot is being
// popped. Popped entries are zeroed immediately — the slice would
// otherwise keep each fired closure (and everything it captured)
// reachable until the slot's next rotation.
type wheelSlot struct {
	head   int
	events []event
}

// take removes and returns the slot's next event, zeroing the vacated
// entry. done reports whether the slot is now empty (and was reset).
//
//simvet:hotpath
func (s *wheelSlot) take() (ev event, done bool) {
	ev = s.events[s.head]
	s.events[s.head] = event{}
	s.head++
	if s.head < len(s.events) {
		return ev, false
	}
	s.head = 0
	if cap(s.events) > slotShrinkCap {
		s.events = nil // shrink policy: release burst-sized storage
	} else {
		s.events = s.events[:0]
	}
	return ev, true
}

// wheelLevel is one ring of slots plus an occupancy bitmap so the next
// non-empty slot is found with four word tests instead of 256 loads.
type wheelLevel struct {
	occupied [wheelSlots / 64]uint64
	slots    [wheelSlots]wheelSlot
}

// scan returns the first occupied slot index at or after from.
func (l *wheelLevel) scan(from int) (int, bool) {
	w := from >> 6
	word := l.occupied[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return w<<6 | bits.TrailingZeros64(word), true
		}
		w++
		if w == len(l.occupied) {
			return 0, false
		}
		word = l.occupied[w]
	}
}

func (l *wheelLevel) mark(idx int)  { l.occupied[idx>>6] |= 1 << (uint(idx) & 63) }
func (l *wheelLevel) clear(idx int) { l.occupied[idx>>6] &^= 1 << (uint(idx) & 63) }

// timingWheel is the queue itself. The zero value is ready to use,
// which keeps Engine's documented zero-value contract.
type timingWheel struct {
	// cur is the timestamp of the last popped event: a lower bound on
	// every queued event, and the reference point for level selection.
	// It advances only through pop and cascade — never past a pending
	// event — so it may lag Engine.now after RunUntil fast-forwards
	// the clock across an empty stretch.
	cur    Time
	count  int
	levels [wheelLevels]wheelLevel
}

//simvet:hotpath
func (w *timingWheel) push(ev event) {
	w.place(ev)
	w.count++
}

// place files ev into the slot for its timestamp: the level is chosen
// from the highest bit where at differs from cur (same 256ns window →
// level 0, same 64µs window → level 1, ...), so exactly one slot's
// window contains at, and slot indices cannot collide across wheel
// rotations.
//
//simvet:hotpath
func (w *timingWheel) place(ev event) {
	lvl := 0
	if diff := uint64(ev.at ^ w.cur); diff != 0 {
		lvl = (bits.Len64(diff) - 1) >> 3
	}
	idx := int(ev.at>>(uint(lvl)*wheelBits)) & wheelMask
	l := &w.levels[lvl]
	l.slots[idx].events = append(l.slots[idx].events, ev)
	l.mark(idx)
}

// maxTime is the unbounded horizon for nextTime.
const maxTime = Time(1<<63 - 1)

// nextTime returns the earliest queued event's timestamp. It may
// cascade coarse buckets down as a side effect, which never changes
// the pop order. ok is false when the wheel is empty or the earliest
// event provably lies beyond limit.
//
// The limit matters for correctness, not just early exit: cascading
// advances the wheel clock, and a peek for a bounded drain (RunUntil)
// must not advance it past the deadline — the engine clock stops
// there, and a later push between the deadline and an over-advanced
// wheel clock would be filed into an already-passed slot and lost. A
// bucket is therefore only cascaded when its window start is within
// limit, which caps the clock at the deadline; pop uses maxTime.
//
//simvet:hotpath
func (w *timingWheel) nextTime(limit Time) (Time, bool) {
	if w.count == 0 {
		return 0, false
	}
	for {
		if s, ok := w.levels[0].scan(int(w.cur) & wheelMask); ok {
			// Found without advancing the clock: return the true
			// timestamp even if it exceeds limit — the caller compares.
			return (w.cur &^ wheelMask) | Time(s), true
		}
		// Level 0 is drained: the earliest event sits in the first
		// occupied bucket of the lowest occupied level — every level-L
		// event lies inside the clock's current level-(L+1) window, so
		// finer levels always precede coarser ones. Cascade that bucket
		// one step down and rescan.
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			idx := int(w.cur>>(uint(lvl)*wheelBits)) & wheelMask
			if b, ok := w.levels[lvl].scan(idx); ok {
				shift := uint(lvl) * wheelBits
				windowMask := Time(1)<<(shift+wheelBits) - 1
				start := (w.cur &^ windowMask) | Time(b)<<shift
				if start > limit {
					// Every queued event is >= start > limit; stop
					// before the cascade moves the clock past limit.
					return 0, false
				}
				w.cascade(lvl, b, start)
				cascaded = true
				break
			}
		}
		if !cascaded {
			panic("sim: timing wheel lost events (count/bitmap mismatch)")
		}
	}
}

// cascade advances the wheel clock to start — the beginning of bucket
// b's window; every earlier window is drained, so no pending event is
// skipped — and re-files the bucket's events, which now land at
// strictly lower levels. Stored order is preserved, keeping each
// destination slot seq-sorted.
//
//simvet:hotpath
func (w *timingWheel) cascade(lvl, b int, start Time) {
	if start > w.cur {
		w.cur = start
	}
	l := &w.levels[lvl]
	s := &l.slots[b]
	evs := s.events[s.head:]
	for i := range evs {
		w.place(evs[i]) // appends only to levels below lvl: evs is stable
	}
	clear(s.events) // drop the moved closure references
	s.head = 0
	if cap(s.events) > slotShrinkCap {
		s.events = nil // shrink policy, as in wheelSlot.take
	} else {
		s.events = s.events[:0]
	}
	l.clear(b)
}

// pop removes and returns the earliest queued event; the wheel must be
// non-empty.
//
//simvet:hotpath
func (w *timingWheel) pop() event {
	t, ok := w.nextTime(maxTime)
	if !ok {
		panic("sim: pop from an empty event queue")
	}
	w.cur = t
	idx := int(t) & wheelMask
	ev, done := w.levels[0].slots[idx].take()
	if done {
		w.levels[0].clear(idx)
	}
	w.count--
	return ev
}
