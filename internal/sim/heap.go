package sim

// eventHeap is the engine's retired event queue: the 4-ary min-heap
// that ordered events before the hierarchical timing wheel (wheel.go)
// replaced it in PR 6. It is kept — unexported, outside the hot path —
// for two jobs:
//
//   - differential testing: the wheel/heap fuzz tests drive both
//     queues with identical (at, seq) schedules and require identical
//     pop order, so any tie-break or ordering bug in the wheel is
//     caught against this reference;
//   - the benchmark trajectory: cmd/tqbench re-measures this baseline
//     every PR (sim.HeapChurn) so BENCH_*.json records the wheel's
//     speedup against the exact pre-PR-6 implementation rather than a
//     number copied from an old report.
//
// The ordering contract is the engine's: (at, seq) ascending, so
// events at the same instant pop in scheduling order. 4-ary because
// that measured faster than binary for deep queues: more comparisons
// per level, half the levels.
type eventHeap struct{ heap []event }

func (h *eventHeap) len() int { return len(h.heap) }

// min returns the earliest queued timestamp; the queue must be
// non-empty.
func (h *eventHeap) min() Time { return h.heap[0].at }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.heap[i], &h.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	h.heap = append(h.heap, ev)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	// Zero the vacated tail slot: before PR 6 it kept the moved
	// event's fn closure (and everything the closure captured)
	// reachable until a later push happened to overwrite it.
	h.heap[last] = event{}
	h.heap = h.heap[:last]
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h.heap) {
			break
		}
		min := first
		end := first + 4
		if end > len(h.heap) {
			end = len(h.heap)
		}
		for c := first + 1; c < end; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			break
		}
		h.heap[i], h.heap[min] = h.heap[min], h.heap[i]
		i = min
	}
	return top
}
