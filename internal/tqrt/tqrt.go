// Package tqrt is a live Go implementation of Tiny Quanta's runtime: a
// dispatcher goroutine that load-balances submitted tasks across worker
// goroutines with JSQ + MSQ tie-breaking (§3.2, §4), and per-worker
// cooperative scheduling of task coroutines in processor-sharing order
// with physical-clock probe points (§3.1).
//
// Tasks are ordinary closures that receive a *Yield handle and call
// Probe() at probe points — the role the paper's LLVM pass automates
// for C code. A Probe is a few nanoseconds when the quantum has not
// expired; when it has, the task parks and the worker's scheduler
// coroutine resumes the next task in its run queue.
//
// Timing expectations differ from the paper's C runtime: a goroutine
// park/resume handoff costs on the order of a few hundred nanoseconds
// (vs 20-40ns for Boost coroutines), so practical quanta in Go start
// around 5-20µs. The architecture — blind PS quanta on workers, a
// balancing-only dispatcher reading wrapping worker counters — is the
// paper's.
package tqrt

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Task is one unit of work. It must call y.Probe() at reasonable
// intervals (its "probe points") for preemption to work; a task that
// never probes simply runs to completion, like an FCFS job.
type Task func(y *Yield)

// BalancePolicy selects the dispatcher's load-balancing policy.
type BalancePolicy int

// Dispatcher policies.
const (
	// JSQMSQ is join-the-shortest-queue with maximum-serviced-quanta
	// tie-breaking — the TQ default.
	JSQMSQ BalancePolicy = iota
	// JSQRandom breaks JSQ ties uniformly.
	JSQRandom
	// RandomPolicy assigns uniformly at random.
	RandomPolicy
	// PowerOfTwoPolicy samples two workers and picks the shorter
	// queue.
	PowerOfTwoPolicy
)

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker scheduler goroutines (the
	// paper's worker cores). Defaults to 4.
	Workers int
	// Coroutines is the number of task coroutines per worker; admitted
	// tasks beyond this wait in the worker's dispatch queue (paper: 8).
	Coroutines int
	// Quantum is the processor-sharing quantum. Zero disables
	// preemption (FCFS run-to-completion).
	Quantum time.Duration
	// QueueCap bounds each worker's dispatch queue and the dispatcher
	// inbox. Defaults to 1024.
	QueueCap int
	// Policy selects the balancing policy. Defaults to JSQMSQ.
	Policy BalancePolicy
	// LAS, when set, orders each worker's run queue by least attained
	// service (in quanta) instead of round-robin processor sharing —
	// the dynamic policy §3.1's probes are designed to support.
	LAS bool
	// PinWorkers locks each worker's scheduler goroutine to an OS
	// thread, approximating the paper's dedicated worker cores when
	// GOMAXPROCS provides real parallelism.
	PinWorkers bool
	// Seed drives randomized policies.
	Seed uint64
	// TraceCap, when positive, records the runtime's scheduling timeline
	// in the unified obs vocabulary: each writer (submitters, the
	// dispatcher, every worker) gets its own ring of this capacity, so
	// recording adds no cross-core synchronization to the hot path.
	// Read the merged timeline with TraceEvents or WriteTrace after the
	// runtime quiesces. Zero disables tracing entirely.
	TraceCap int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Coroutines <= 0 {
		c.Coroutines = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
}

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("tqrt: runtime stopped")

// Yield is a task's handle for cooperative preemption.
type Yield struct {
	w        *worker
	slot     int
	quantum  int64 // ns; 0 disables
	start    int64 // quantum start, ns (monotonic)
	critical int
	resume   chan struct{}
}

// Probe is the task-side probe point: it yields to the worker's
// scheduler if the current quantum has expired. It is a no-op inside a
// critical section or when preemption is disabled.
func (y *Yield) Probe() {
	if y.critical > 0 || y.quantum == 0 {
		return
	}
	if nanotime()-y.start < y.quantum {
		return
	}
	y.w.events <- event{kind: evYield, slot: y.slot}
	<-y.resume
}

// BeginCritical suspends preemption until the matching EndCritical —
// the paper's critical-section support (§4). Calls nest.
func (y *Yield) BeginCritical() { y.critical++ }

// EndCritical re-enables preemption. It panics on unmatched calls.
func (y *Yield) EndCritical() {
	if y.critical == 0 {
		panic("tqrt: EndCritical without BeginCritical")
	}
	y.critical--
}

// nanotime returns a monotonic timestamp in ns.
func nanotime() int64 { return time.Since(baseTime).Nanoseconds() }

var baseTime = time.Now()

type evKind int

const (
	evYield evKind = iota
	evDone
)

type event struct {
	kind evKind
	slot int
}

// taskMsg carries a task plus its trace identity (0 when tracing is
// off) from submitters through the dispatcher to a worker.
type taskMsg struct {
	t  Task
	id uint64
}

// coro is one pre-spawned task coroutine on a worker.
type coro struct {
	y      *Yield
	tasks  chan Task
	quanta int64  // quanta serviced for the current task (MSQ bookkeeping)
	id     uint64 // trace identity of the current task
}

// worker is one scheduler goroutine plus its coroutine pool.
type worker struct {
	id     int
	rt     *Runtime
	inbox  chan taskMsg // dispatch queue, fed by the dispatcher
	events chan event
	rec    *obs.Ring // this worker's trace shard; nil when tracing is off
	coros  []*coro
	idle   []int // indices of idle coroutines
	run    core.FIFO[int]
	las    core.LASQueue[int]
	useLAS bool
	// Worker-side statistics read by the dispatcher (§4): finished
	// wraps naturally; quanta tracks quanta serviced for current
	// tasks.
	finished atomic.Uint64
	quanta   atomic.Int64
}

// Runtime is a live TQ scheduler.
type Runtime struct {
	cfg     Config
	workers []*worker
	inbox   chan taskMsg
	stopped atomic.Bool
	// inflight counts submitted-but-unfinished tasks for Stop.
	inflight sync.WaitGroup
	wg       sync.WaitGroup
	// assigned is written by the dispatcher, read by diagnostics.
	assigned []atomic.Uint64

	// Tracing state, nil/zero when Config.TraceCap is 0. taskSeq hands
	// out trace identities at submission; client records arrivals and
	// drops (submitters are concurrent, hence the locked recorder);
	// disp records the dispatcher's binding decisions.
	taskSeq atomic.Uint64
	client  *obs.Locked
	disp    *obs.Ring
}

// New returns an unstarted runtime.
func New(cfg Config) *Runtime {
	cfg.fill()
	rt := &Runtime{
		cfg:      cfg,
		inbox:    make(chan taskMsg, cfg.QueueCap),
		assigned: make([]atomic.Uint64, cfg.Workers),
	}
	if cfg.TraceCap > 0 {
		rt.client = obs.NewLocked(cfg.TraceCap)
		rt.disp = obs.NewRing(cfg.TraceCap)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:     i,
			rt:     rt,
			inbox:  make(chan taskMsg, cfg.QueueCap),
			events: make(chan event),
			useLAS: cfg.LAS,
		}
		if cfg.TraceCap > 0 {
			w.rec = obs.NewRing(cfg.TraceCap)
		}
		for s := 0; s < cfg.Coroutines; s++ {
			c := &coro{
				tasks: make(chan Task),
				y: &Yield{
					w:       w,
					slot:    s,
					quantum: cfg.Quantum.Nanoseconds(),
					resume:  make(chan struct{}),
				},
			}
			w.coros = append(w.coros, c)
			w.idle = append(w.idle, s)
		}
		rt.workers = append(rt.workers, w)
	}
	return rt
}

// Start launches the dispatcher, workers and coroutine pools.
func (rt *Runtime) Start() {
	for _, w := range rt.workers {
		for _, c := range w.coros {
			rt.wg.Add(1)
			go c.loop(&rt.wg, w)
		}
		rt.wg.Add(1)
		go w.loop(&rt.wg)
	}
	rt.wg.Add(1)
	go rt.dispatch()
}

// submitMsg stamps a task with its trace identity and records the
// arrival (the client-side instant, before any queueing).
func (rt *Runtime) submitMsg(t Task) taskMsg {
	m := taskMsg{t: t}
	if rt.client != nil {
		m.id = rt.taskSeq.Add(1)
		rt.client.Emit(obs.Event{T: nanotime(), Task: m.id, Core: obs.CoreLoadgen, Kind: obs.Arrive})
	}
	return m
}

// Submit hands a task to the dispatcher, blocking if its inbox is
// full. It returns ErrStopped after Stop.
func (rt *Runtime) Submit(t Task) error {
	if rt.stopped.Load() {
		return ErrStopped
	}
	rt.inflight.Add(1)
	rt.inbox <- rt.submitMsg(t)
	return nil
}

// TrySubmit is like Submit but fails fast when the dispatcher inbox is
// full. A rejected task appears in the trace as arrive followed by
// drop — the live analogue of the simulators' RX-ring overflow.
func (rt *Runtime) TrySubmit(t Task) error {
	if rt.stopped.Load() {
		return ErrStopped
	}
	rt.inflight.Add(1)
	m := rt.submitMsg(t)
	select {
	case rt.inbox <- m:
		return nil
	default:
		rt.inflight.Done()
		if rt.client != nil {
			rt.client.Emit(obs.Event{T: nanotime(), Task: m.id, Core: obs.CoreDispatcher, Kind: obs.Drop})
		}
		return fmt.Errorf("tqrt: dispatcher inbox full")
	}
}

// Wait blocks until every submitted task has completed.
func (rt *Runtime) Wait() { rt.inflight.Wait() }

// Stop waits for in-flight tasks, then shuts everything down. The
// runtime cannot be restarted.
func (rt *Runtime) Stop() {
	if rt.stopped.Swap(true) {
		return
	}
	rt.inflight.Wait()
	close(rt.inbox)
	rt.wg.Wait()
}

// TraceEvents merges the per-writer trace shards into one timeline,
// stably ordered by timestamp (ties keep submitter-before-dispatcher-
// before-worker order). It returns nil when tracing is off. Call it
// only after the runtime quiesces — after Stop, or after Wait with no
// concurrent submitters — since shards are read without locks.
func (rt *Runtime) TraceEvents() []obs.Event {
	if rt.client == nil {
		return nil
	}
	events := rt.client.Events()
	events = append(events, rt.disp.Events()...)
	for _, w := range rt.workers {
		events = append(events, w.rec.Events()...)
	}
	obs.SortByTime(events)
	return events
}

// TraceTruncated reports whether any trace shard ran out of capacity
// and discarded events. Each shard keeps a prefix of its own stream,
// so a truncated timeline still validates but undercounts late
// activity; raise Config.TraceCap to capture everything.
func (rt *Runtime) TraceTruncated() bool {
	if rt.client == nil {
		return false
	}
	if rt.client.Truncated() || rt.disp.Truncated() {
		return true
	}
	for _, w := range rt.workers {
		if w.rec.Truncated() {
			return true
		}
	}
	return false
}

// WriteTrace writes the merged timeline as Chrome trace-event JSON
// under the given track name — loadable in Perfetto alongside
// simulator traces, since both speak the same vocabulary. Like
// TraceEvents, call it only after the runtime quiesces.
func (rt *Runtime) WriteTrace(w io.Writer, name string) error {
	return obs.WriteChrome(w, obs.Process{Name: name, Events: rt.TraceEvents()})
}

// QueueLens returns the dispatcher's current view of per-worker
// unfinished-task counts (diagnostic).
func (rt *Runtime) QueueLens() []int {
	out := make([]int, len(rt.workers))
	for i, w := range rt.workers {
		out[i] = int(rt.assigned[i].Load() - w.finished.Load())
	}
	return out
}

// WorkerStats is one worker's counters, as the dispatcher sees them.
type WorkerStats struct {
	// Assigned counts tasks the dispatcher forwarded to this worker.
	Assigned uint64
	// Finished counts completed tasks.
	Finished uint64
	// ServicedQuanta is the MSQ statistic: quanta serviced for the
	// worker's current (unfinished) tasks.
	ServicedQuanta int64
}

// Stats is a point-in-time snapshot of runtime counters. Counters are
// read individually without a global lock, so a snapshot taken while
// tasks run is approximate (each individual counter is exact).
type Stats struct {
	Workers []WorkerStats
}

// Completed sums finished tasks across workers.
func (s Stats) Completed() uint64 {
	var n uint64
	for _, w := range s.Workers {
		n += w.Finished
	}
	return n
}

// Stats snapshots the runtime's counters.
func (rt *Runtime) Stats() Stats {
	s := Stats{Workers: make([]WorkerStats, len(rt.workers))}
	for i, w := range rt.workers {
		s.Workers[i] = WorkerStats{
			Assigned:       rt.assigned[i].Load(),
			Finished:       w.finished.Load(),
			ServicedQuanta: w.quanta.Load(),
		}
	}
	return s
}

// liveView adapts worker atomics to core.View for the balancers.
type liveView struct{ rt *Runtime }

func (v liveView) Workers() int { return len(v.rt.workers) }
func (v liveView) QueueLen(w int) int {
	return int(v.rt.assigned[w].Load() - v.rt.workers[w].finished.Load())
}
func (v liveView) ServicedQuanta(w int) int64 { return v.rt.workers[w].quanta.Load() }

// dispatch is the dispatcher goroutine: one balancing decision per
// task, then a forward into the chosen worker's dispatch queue.
func (rt *Runtime) dispatch() {
	defer rt.wg.Done()
	r := rng.New(rt.cfg.Seed ^ 0xd15b)
	var bal core.Balancer
	switch rt.cfg.Policy {
	case JSQMSQ:
		bal = core.NewJSQ(core.MSQ{})
	case JSQRandom:
		bal = core.NewJSQ(core.RandomTie{R: r})
	case RandomPolicy:
		bal = core.Random{R: r}
	case PowerOfTwoPolicy:
		bal = core.PowerOfTwo{R: r}
	default:
		panic("tqrt: unknown balance policy")
	}
	view := liveView{rt}
	for m := range rt.inbox {
		w := bal.Pick(view)
		rt.assigned[w].Add(1)
		if rt.disp != nil {
			rt.disp.Emit(obs.Event{T: nanotime(), Task: m.id, Core: int32(w), Kind: obs.Dispatch})
		}
		rt.workers[w].inbox <- m
	}
	for _, w := range rt.workers {
		close(w.inbox)
	}
}

// loop is the worker's scheduler coroutine: admit tasks onto idle
// coroutines, resume the head of the run queue, process its yield or
// completion, repeat — the §4 worker loop.
func (w *worker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	if w.rt.cfg.PinWorkers {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	open := true
	for {
		// Admit while there are idle coroutines (non-blocking).
		for open && len(w.idle) > 0 {
			select {
			case m, ok := <-w.inbox:
				if !ok {
					open = false
					break
				}
				w.admit(m)
			default:
				goto admitted
			}
		}
	admitted:
		if w.runnableLen() == 0 {
			if !open {
				for _, c := range w.coros {
					close(c.tasks)
				}
				return
			}
			// Nothing runnable: block for the next task.
			m, ok := <-w.inbox
			if !ok {
				open = false
				continue
			}
			w.admit(m)
			continue
		}
		slot, _ := w.popRunnable()
		c := w.coros[slot]
		c.y.start = nanotime()
		if w.rec != nil {
			w.rec.Emit(obs.Event{T: c.y.start, Task: c.id, Core: int32(w.id), Kind: obs.QuantumStart})
		}
		c.y.resume <- struct{}{}
		ev := <-w.events
		switch ev.kind {
		case evYield:
			c.quanta++
			w.quanta.Add(1)
			w.pushRunnable(ev.slot)
			if w.rec != nil {
				now := nanotime()
				w.rec.Emit(obs.Event{T: now, Task: c.id, Core: int32(w.id), Kind: obs.QuantumEnd})
				w.rec.Emit(obs.Event{T: now, Task: c.id, Core: int32(w.id), Kind: obs.ProbeYield})
			}
		case evDone:
			// The task is gone: remove its serviced quanta from the
			// worker's current-task statistic.
			w.quanta.Add(-c.quanta)
			c.quanta = 0
			w.finished.Add(1)
			w.idle = append(w.idle, ev.slot)
			if w.rec != nil {
				now := nanotime()
				w.rec.Emit(obs.Event{T: now, Task: c.id, Core: int32(w.id), Kind: obs.QuantumEnd})
				w.rec.Emit(obs.Event{T: now, Task: c.id, Core: int32(w.id), Kind: obs.Finish})
			}
			w.rt.inflight.Done()
		}
	}
}

func (w *worker) admit(m taskMsg) {
	slot := w.idle[len(w.idle)-1]
	w.idle = w.idle[:len(w.idle)-1]
	w.coros[slot].id = m.id
	w.coros[slot].tasks <- m.t
	w.pushRunnable(slot)
}

// pushRunnable and popRunnable order the run queue by the configured
// policy: round-robin PS, or least attained service (in quanta).
func (w *worker) pushRunnable(slot int) {
	if w.useLAS {
		w.las.Push(slot, w.coros[slot].quanta)
		return
	}
	w.run.Push(slot)
}

func (w *worker) popRunnable() (int, bool) {
	if w.useLAS {
		slot, _, ok := w.las.Pop()
		return slot, ok
	}
	return w.run.Pop()
}

func (w *worker) runnableLen() int {
	if w.useLAS {
		return w.las.Len()
	}
	return w.run.Len()
}

// loop is the coroutine body: wait for a task, run it (parking at
// probe points), report completion.
func (c *coro) loop(wg *sync.WaitGroup, w *worker) {
	defer wg.Done()
	for t := range c.tasks {
		// The first quantum starts when the scheduler resumes us.
		<-c.y.resume
		t(c.y)
		c.y.critical = 0
		w.events <- event{kind: evDone, slot: c.y.slot}
	}
}
