package tqrt

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTraceRecordsValidTimeline runs a traced workload and checks the
// live runtime speaks the same timeline grammar as the simulators:
// the merged shards validate, every task reaches a terminal event,
// and the preemption vocabulary is TQ's (probe-yield, never preempt).
func TestTraceRecordsValidTimeline(t *testing.T) {
	rt := New(Config{Workers: 2, Coroutines: 4, Quantum: 50 * time.Microsecond, TraceCap: 1 << 16})
	rt.Start()
	const n = 100
	for i := 0; i < n; i++ {
		if err := rt.Submit(func(y *Yield) { spin(y, 200*time.Microsecond, 20*time.Microsecond) }); err != nil {
			t.Fatal(err)
		}
	}
	rt.Stop()
	if rt.TraceTruncated() {
		t.Fatal("trace truncated; grow TraceCap")
	}
	events := rt.TraceEvents()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("invalid timeline: %v", err)
	}
	if err := obs.Conserved(events); err != nil {
		t.Fatalf("task lost: %v", err)
	}
	s := obs.Summarize("tqrt", events)
	if s.Tasks != n || s.Finished != n {
		t.Fatalf("tasks=%d finished=%d, want %d/%d", s.Tasks, s.Finished, n, n)
	}
	if s.Counts[obs.ProbeYield] == 0 {
		t.Error("200µs tasks under a 50µs quantum never probe-yielded")
	}
	if s.Counts[obs.Preempt] != 0 {
		t.Errorf("live TQ runtime recorded %d preempt events; its only mechanism is probe-yield", s.Counts[obs.Preempt])
	}
	if s.Cores != 2 {
		t.Errorf("summary saw %d cores, want 2", s.Cores)
	}
}

// TestTraceRoundTripsThroughChrome exports a live trace and reads it
// back, checking the file format is lossless for runtime events too.
func TestTraceRoundTripsThroughChrome(t *testing.T) {
	rt := New(Config{Workers: 1, Coroutines: 2, Quantum: time.Millisecond, TraceCap: 1 << 12})
	rt.Start()
	for i := 0; i < 10; i++ {
		if err := rt.Submit(func(y *Yield) {}); err != nil {
			t.Fatal(err)
		}
	}
	rt.Stop()
	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf, "tqrt-live"); err != nil {
		t.Fatal(err)
	}
	procs, err := obs.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || procs[0].Name != "tqrt-live" {
		t.Fatalf("round trip returned %+v, want one process named tqrt-live", procs)
	}
	want := rt.TraceEvents()
	if len(procs[0].Events) != len(want) {
		t.Fatalf("round trip kept %d events, want %d", len(procs[0].Events), len(want))
	}
	for i := range want {
		if procs[0].Events[i] != want[i] {
			t.Fatalf("event %d did not round-trip: got %+v want %+v", i, procs[0].Events[i], want[i])
		}
	}
}

// TestTracingOffRecordsNothing pins the off-switch: no recorder state,
// nil timeline, and submissions carry no trace identity.
func TestTracingOffRecordsNothing(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.Start()
	if err := rt.Submit(func(y *Yield) {}); err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	if ev := rt.TraceEvents(); ev != nil {
		t.Fatalf("tracing off but TraceEvents returned %d events", len(ev))
	}
	if rt.TraceTruncated() {
		t.Fatal("tracing off but TraceTruncated reports true")
	}
}
