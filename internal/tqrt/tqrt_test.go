package tqrt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// spin busy-works for roughly d of *active* time (time parked at a
// probe does not count), probing every probeEvery of work.
func spin(y *Yield, d, probeEvery time.Duration) {
	var done time.Duration
	for done < d {
		start := nanotime()
		for nanotime()-start < probeEvery.Nanoseconds() {
		}
		done += time.Duration(nanotime() - start)
		y.Probe()
	}
}

func TestRunsAllTasks(t *testing.T) {
	rt := New(Config{Workers: 2, Coroutines: 4, Quantum: 100 * time.Microsecond})
	rt.Start()
	var done atomic.Int64
	const n = 200
	for i := 0; i < n; i++ {
		if err := rt.Submit(func(y *Yield) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	rt.Stop()
	if done.Load() != n {
		t.Fatalf("completed %d/%d tasks", done.Load(), n)
	}
}

func TestSubmitAfterStopFails(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.Start()
	rt.Stop()
	if err := rt.Submit(func(y *Yield) {}); err != ErrStopped {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
	if err := rt.TrySubmit(func(y *Yield) {}); err != ErrStopped {
		t.Fatalf("TrySubmit after Stop = %v, want ErrStopped", err)
	}
}

func TestWaitBlocksUntilDone(t *testing.T) {
	rt := New(Config{Workers: 2, Coroutines: 2, Quantum: time.Millisecond})
	rt.Start()
	defer rt.Stop()
	var done atomic.Int64
	for i := 0; i < 50; i++ {
		rt.Submit(func(y *Yield) {
			time.Sleep(100 * time.Microsecond)
			done.Add(1)
		})
	}
	rt.Wait()
	if done.Load() != 50 {
		t.Fatalf("Wait returned with %d/50 done", done.Load())
	}
}

func TestPreemptionInterleavesTasks(t *testing.T) {
	// One worker, two long tasks: with probing, both must make
	// progress in an interleaved fashion rather than serially.
	rt := New(Config{Workers: 1, Coroutines: 4, Quantum: 200 * time.Microsecond})
	rt.Start()
	defer rt.Stop()

	var aDone, bDone atomic.Int64
	start := time.Now()
	rt.Submit(func(y *Yield) {
		spin(y, 20*time.Millisecond, 20*time.Microsecond)
		aDone.Store(time.Since(start).Nanoseconds())
	})
	rt.Submit(func(y *Yield) {
		spin(y, 20*time.Millisecond, 20*time.Microsecond)
		bDone.Store(time.Since(start).Nanoseconds())
	})
	rt.Wait()
	a, b := aDone.Load(), bDone.Load()
	// Interleaved execution finishes both near 2x the single-task
	// time; serial FCFS would finish the first at ~1x and the second
	// at ~2x. Require the earlier finisher to land clearly past 1.4x.
	early := a
	if b < early {
		early = b
	}
	if early < (28 * time.Millisecond).Nanoseconds() {
		t.Fatalf("earliest completion at %v, want >28ms (interleaving)", time.Duration(early))
	}
}

func TestNoProbeMeansRunToCompletion(t *testing.T) {
	// A task that never probes cannot be preempted: the second task
	// waits for the first (documented FCFS-like behaviour).
	rt := New(Config{Workers: 1, Coroutines: 4, Quantum: 100 * time.Microsecond})
	rt.Start()
	defer rt.Stop()
	var order []int
	var mu atomic.Int32
	start := time.Now()
	rt.Submit(func(y *Yield) {
		for time.Since(start) < 5*time.Millisecond {
		}
		if mu.CompareAndSwap(0, 1) {
			order = append(order, 1)
		}
	})
	rt.Submit(func(y *Yield) {
		if mu.CompareAndSwap(1, 2) {
			order = append(order, 2)
		}
	})
	rt.Wait()
	if mu.Load() != 2 {
		t.Fatalf("tasks completed out of order: %v", order)
	}
}

func TestCriticalSectionDefersYield(t *testing.T) {
	rt := New(Config{Workers: 1, Coroutines: 2, Quantum: 50 * time.Microsecond})
	rt.Start()
	defer rt.Stop()
	violated := atomic.Bool{}
	inCritical := atomic.Bool{}
	rt.Submit(func(y *Yield) {
		y.BeginCritical()
		inCritical.Store(true)
		deadline := nanotime() + (2 * time.Millisecond).Nanoseconds()
		for nanotime() < deadline {
			y.Probe() // must not yield
		}
		inCritical.Store(false)
		y.EndCritical()
		y.Probe()
	})
	rt.Submit(func(y *Yield) {
		// If this runs while task 1 is inside its critical section,
		// the critical section was violated (single worker).
		if inCritical.Load() {
			violated.Store(true)
		}
	})
	rt.Wait()
	if violated.Load() {
		t.Fatal("second task ran during the first task's critical section")
	}
}

func TestEndCriticalUnmatchedPanics(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.Start()
	defer rt.Stop()
	got := make(chan any, 1)
	rt.Submit(func(y *Yield) {
		defer func() { got <- recover() }()
		y.EndCritical()
	})
	if v := <-got; v == nil {
		t.Fatal("unmatched EndCritical did not panic")
	}
	rt.Wait()
}

func TestZeroQuantumDisablesPreemption(t *testing.T) {
	rt := New(Config{Workers: 1, Coroutines: 2, Quantum: 0})
	rt.Start()
	defer rt.Stop()
	probes := 0
	rt.Submit(func(y *Yield) {
		for i := 0; i < 1000; i++ {
			y.Probe() // all no-ops
			probes++
		}
	})
	rt.Wait()
	if probes != 1000 {
		t.Fatalf("task did not complete its probes: %d", probes)
	}
}

func TestLoadSpreadsAcrossWorkers(t *testing.T) {
	// With JSQ, concurrent long tasks should occupy distinct workers.
	const workers = 4
	rt := New(Config{Workers: workers, Coroutines: 2, Quantum: time.Millisecond})
	rt.Start()
	defer rt.Stop()
	for i := 0; i < workers; i++ {
		rt.Submit(func(y *Yield) {
			time.Sleep(10 * time.Millisecond)
		})
	}
	// Give the dispatcher a moment, then verify queues are balanced:
	// no worker should hold more than 2 of the 4 tasks.
	time.Sleep(2 * time.Millisecond)
	lens := rt.QueueLens()
	total, max := 0, 0
	for _, l := range lens {
		total += l
		if l > max {
			max = l
		}
	}
	if total > 0 && max > 2 {
		t.Fatalf("JSQ left queues unbalanced: %v", lens)
	}
	rt.Wait()
}

func TestPoliciesAllComplete(t *testing.T) {
	for _, p := range []BalancePolicy{JSQMSQ, JSQRandom, RandomPolicy, PowerOfTwoPolicy} {
		rt := New(Config{Workers: 3, Coroutines: 2, Quantum: 100 * time.Microsecond, Policy: p, Seed: 42})
		rt.Start()
		var done atomic.Int64
		for i := 0; i < 100; i++ {
			rt.Submit(func(y *Yield) { done.Add(1) })
		}
		rt.Stop()
		if done.Load() != 100 {
			t.Fatalf("policy %d completed %d/100", p, done.Load())
		}
	}
}

func TestManyTasksManyWorkersStress(t *testing.T) {
	rt := New(Config{Workers: 4, Coroutines: 8, Quantum: 50 * time.Microsecond})
	rt.Start()
	var done atomic.Int64
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		rt.Submit(func(y *Yield) {
			if i%10 == 0 {
				spin(y, 200*time.Microsecond, 10*time.Microsecond)
			}
			done.Add(1)
		})
	}
	rt.Stop()
	if done.Load() != n {
		t.Fatalf("completed %d/%d", done.Load(), n)
	}
}

func TestLASPrefersFreshTasks(t *testing.T) {
	// One worker; a long task accumulates quanta, then a fresh short
	// task arrives. With LAS the fresh task (0 attained quanta) runs
	// to completion as soon as the long task yields, without waiting
	// for round-robin fairness.
	rt := New(Config{Workers: 1, Coroutines: 4, Quantum: 100 * time.Microsecond, LAS: true})
	rt.Start()
	defer rt.Stop()
	var longDone, shortDone atomic.Int64
	start := time.Now()
	rt.Submit(func(y *Yield) {
		spin(y, 15*time.Millisecond, 20*time.Microsecond)
		longDone.Store(time.Since(start).Nanoseconds())
	})
	time.Sleep(2 * time.Millisecond)
	rt.Submit(func(y *Yield) {
		spin(y, 100*time.Microsecond, 20*time.Microsecond)
		shortDone.Store(time.Since(start).Nanoseconds())
	})
	rt.Wait()
	if shortDone.Load() >= longDone.Load() {
		t.Fatalf("LAS did not let the short task finish first: short=%v long=%v",
			time.Duration(shortDone.Load()), time.Duration(longDone.Load()))
	}
}

func TestLASCompletesEverything(t *testing.T) {
	rt := New(Config{Workers: 2, Coroutines: 4, Quantum: 50 * time.Microsecond, LAS: true})
	rt.Start()
	var done atomic.Int64
	for i := 0; i < 300; i++ {
		rt.Submit(func(y *Yield) {
			spin(y, 50*time.Microsecond, 10*time.Microsecond)
			done.Add(1)
		})
	}
	rt.Stop()
	if done.Load() != 300 {
		t.Fatalf("LAS completed %d/300", done.Load())
	}
}

func TestStatsSnapshot(t *testing.T) {
	rt := New(Config{Workers: 2, Coroutines: 4, Quantum: 50 * time.Microsecond})
	rt.Start()
	const n = 120
	for i := 0; i < n; i++ {
		rt.Submit(func(y *Yield) {
			spin(y, 100*time.Microsecond, 20*time.Microsecond)
		})
	}
	rt.Wait()
	st := rt.Stats()
	if got := st.Completed(); got != n {
		t.Fatalf("Stats.Completed = %d, want %d", got, n)
	}
	var assigned uint64
	for _, w := range st.Workers {
		assigned += w.Assigned
		if w.Assigned != w.Finished {
			t.Fatalf("worker counters unreconciled after Wait: %+v", w)
		}
		if w.ServicedQuanta != 0 {
			t.Fatalf("serviced-quanta statistic nonzero with no current tasks: %+v", w)
		}
	}
	if assigned != n {
		t.Fatalf("assigned %d, want %d", assigned, n)
	}
	rt.Stop()
}

func TestTrySubmitFailsWhenFull(t *testing.T) {
	// Tiny inbox, workers blocked on a long task: TrySubmit must
	// eventually report a full dispatcher rather than blocking.
	rt := New(Config{Workers: 1, Coroutines: 1, Quantum: 0, QueueCap: 2})
	rt.Start()
	defer rt.Stop()
	release := make(chan struct{})
	rt.Submit(func(y *Yield) { <-release })
	sawFull := false
	for i := 0; i < 100; i++ {
		if err := rt.TrySubmit(func(y *Yield) { <-release }); err != nil {
			sawFull = true
			break
		}
	}
	close(release)
	if !sawFull {
		t.Fatal("TrySubmit never reported a full inbox")
	}
	rt.Wait()
}

func TestPinnedWorkersComplete(t *testing.T) {
	rt := New(Config{Workers: 2, Coroutines: 4, Quantum: 100 * time.Microsecond, PinWorkers: true})
	rt.Start()
	var done atomic.Int64
	for i := 0; i < 100; i++ {
		rt.Submit(func(y *Yield) { done.Add(1) })
	}
	rt.Stop()
	if done.Load() != 100 {
		t.Fatalf("pinned workers completed %d/100", done.Load())
	}
}

func TestStopWithInFlightProbingTasks(t *testing.T) {
	// Stop while tasks are mid-execution and actively probing: the
	// shutdown sequence (reject new work, wait for in-flight tasks,
	// drain the dispatcher, join the workers) must not race or deadlock
	// against yields in progress. Run under -race across worker counts;
	// submissions race with Stop from a second goroutine so arrivals
	// land on both sides of the stopped flag.
	for _, workers := range []int{1, 2, 4, 8} {
		rt := New(Config{Workers: workers, Coroutines: 4, Quantum: 20 * time.Microsecond})
		rt.Start()
		var started, done atomic.Int64
		var submitted atomic.Int64
		stopReq := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				err := rt.Submit(func(y *Yield) {
					started.Add(1)
					spin(y, 300*time.Microsecond, 10*time.Microsecond)
					done.Add(1)
				})
				if err != nil {
					return // Stop won the race; ErrStopped is the contract.
				}
				submitted.Add(1)
				if i == 2*workers {
					close(stopReq) // enough in flight to make Stop contend
				}
			}
		}()
		<-stopReq
		rt.Stop()
		wg.Wait()
		if got, want := done.Load(), submitted.Load(); got != want {
			t.Fatalf("workers=%d: Stop lost tasks: %d done of %d accepted", workers, got, want)
		}
		if started.Load() == 0 {
			t.Fatalf("workers=%d: no task ever ran", workers)
		}
		if err := rt.Submit(func(y *Yield) {}); err != ErrStopped {
			t.Fatalf("workers=%d: Submit after Stop = %v, want ErrStopped", workers, err)
		}
	}
}

func TestDoubleStopIsSafe(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.Start()
	rt.Stop()
	rt.Stop() // must not panic or deadlock
}

func BenchmarkProbeNoYield(b *testing.B) {
	y := &Yield{quantum: int64(time.Hour)}
	y.start = nanotime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y.Probe()
	}
}

func BenchmarkSubmitToCompletion(b *testing.B) {
	rt := New(Config{Workers: 2, Coroutines: 8, Quantum: 100 * time.Microsecond})
	rt.Start()
	defer rt.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Submit(func(y *Yield) {})
	}
	rt.Wait()
}
