package workload

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/rng"
	"repro/internal/sim"
)

// This file is the arrival axis of the workload plane: an
// ArrivalProcess generates the instants at which requests hit the NIC,
// decoupled from what each request demands (the service axis) and who
// sent it (the tenant axis). The paper's open-loop Poisson client is
// one process among several; MMPP bursts, diurnal rate curves, and
// closed-loop think-time users model the non-stationary traffic
// production µs-scale services actually see. Processes are data:
// ParseArrivals resolves a textual spec ("mmpp:burst=10,duty=0.1")
// exactly as pifo.Parse resolves a queue discipline.

// ArrivalProcess generates successive arrival instants. Implementations
// draw only from the rng.Rand they are handed (never global state) and
// allocate nothing per call, so a composed Stream stays deterministic
// and zero-alloc in steady state.
type ArrivalProcess interface {
	// Name renders the process with its parameters, for reports.
	Name() string
	// Next returns the instant of the next arrival, drawing from r. The
	// first call yields the first arrival. ok=false means no arrival is
	// pending until a request retires (closed-loop); Done unblocks it.
	// Successive instants are non-decreasing; the Stream enforces strict
	// monotonicity.
	Next(r *rng.Rand) (t sim.Time, ok bool)
	// Done informs the process that a request retired — completed or
	// dropped — at instant t. Open-loop processes ignore it and return
	// false; a closed-loop process schedules the issuing user's next
	// request (think time drawn from r) and reports whether the process
	// went from blocked to having a pending arrival.
	Done(t sim.Time, r *rng.Rand) bool
}

// openLoop supplies the no-feedback Done shared by every open-loop
// process.
type openLoop struct{}

func (openLoop) Done(sim.Time, *rng.Rand) bool { return false }

// poisson is the paper's open-loop Poisson client (§5.1): i.i.d.
// exponential inter-arrival gaps at a fixed mean rate.
type poisson struct {
	openLoop
	meanGapNs float64
	next      sim.Time
	started   bool
}

func (p *poisson) Name() string { return "poisson" }

//simvet:hotpath
func (p *poisson) Next(r *rng.Rand) (sim.Time, bool) {
	if !p.started {
		// The first arrival lands one unclamped gap after time zero —
		// exactly the historical Generator's construction-time draw.
		p.started = true
		p.next = sim.Time(r.Exp(p.meanGapNs) + 0.5)
		return p.next, true
	}
	d := sim.Time(r.Exp(p.meanGapNs) + 0.5)
	if d < 1 {
		d = 1
	}
	p.next += d
	return p.next, true
}

// mmpp is a two-state Markov-modulated Poisson process: a low state and
// a burst state, each Poisson at its own rate, with exponentially
// distributed dwell times. Rates are scaled so the long-run mean equals
// the configured rate: burstiness redistributes load in time, it does
// not add load — curves against Poisson at the same rate compare like
// for like.
type mmpp struct {
	openLoop
	gap      [2]float64 // mean inter-arrival gap ns per state (0 = low)
	dwell    [2]float64 // mean dwell ns per state
	burst    float64    // rate ratio, for Name
	duty     float64
	state    int
	clock    sim.Time
	switchAt sim.Time
	started  bool
	// occupancy accumulates realized dwell time per state, for the
	// distribution-fit tests (one add per state switch, not per arrival).
	lastSwitch sim.Time
	occupancy  [2]sim.Time
}

func (m *mmpp) Name() string {
	return fmt.Sprintf("mmpp(burst=%g,duty=%g)", m.burst, m.duty)
}

//simvet:hotpath
func (m *mmpp) Next(r *rng.Rand) (sim.Time, bool) {
	if !m.started {
		m.started = true
		m.switchAt = m.drawDwell(r, 0)
	}
	t := m.clock
	for {
		gap := sim.Time(r.Exp(m.gap[m.state]) + 0.5)
		if gap < 1 {
			gap = 1
		}
		if t+gap < m.switchAt {
			t += gap
			break
		}
		// The candidate crosses the modulation boundary: advance to the
		// switch and redraw from the new state's rate — exact for
		// exponential gaps (memorylessness), no thinning needed.
		t = m.switchAt
		m.occupancy[m.state] += m.switchAt - m.lastSwitch
		m.lastSwitch = m.switchAt
		m.state = 1 - m.state
		m.switchAt = t + m.drawDwell(r, m.state)
	}
	m.clock = t
	return t, true
}

func (m *mmpp) drawDwell(r *rng.Rand, state int) sim.Time {
	d := sim.Time(r.Exp(m.dwell[state]) + 0.5)
	if d < 1 {
		d = 1
	}
	return d
}

// Occupancy returns the realized fraction of modulation time spent in
// the burst state — compared against the configured duty cycle by the
// fit tests.
func (m *mmpp) Occupancy() float64 {
	total := m.occupancy[0] + m.occupancy[1]
	if total == 0 {
		return 0
	}
	return float64(m.occupancy[1]) / float64(total)
}

// diurnal is a sinusoidal rate curve: instantaneous rate
// rate·(1 + amp·sin(2πt/period)), sampled exactly by thinning against
// the peak rate. Over whole periods the mean rate equals the configured
// rate.
type diurnal struct {
	openLoop
	gapPeakNs float64 // mean gap at the peak rate
	amp       float64
	periodNs  float64
	clock     sim.Time
}

func (d *diurnal) Name() string {
	return fmt.Sprintf("diurnal(amp=%g,period=%v)", d.amp, sim.Time(d.periodNs))
}

//simvet:hotpath
func (d *diurnal) Next(r *rng.Rand) (sim.Time, bool) {
	t := d.clock
	for {
		gap := sim.Time(r.Exp(d.gapPeakNs) + 0.5)
		if gap < 1 {
			gap = 1
		}
		t += gap
		// Accept with probability λ(t)/λmax = (1+amp·sin)/(1+amp).
		frac := (1 + d.amp*math.Sin(2*math.Pi*float64(t)/d.periodNs)) / (1 + d.amp)
		if r.Float64() < frac {
			break
		}
	}
	d.clock = t
	return t, true
}

// closedLoop models N users with exponential think time: each user
// issues a request, waits for it to retire (complete or drop), thinks,
// and issues the next. Offered load is emergent — users/(think+sojourn)
// — so the configured rate only labels the run. The pending set is a
// fixed-capacity binary min-heap of next-issue instants; Next pops the
// earliest, Done pushes the retiring user's next issue.
type closedLoop struct {
	thinkNs float64
	users   int
	pending []sim.Time // min-heap, preallocated to users
	started bool
}

func (c *closedLoop) Name() string {
	return fmt.Sprintf("closed(users=%d,think=%v)", c.users, sim.Time(c.thinkNs))
}

//simvet:hotpath
func (c *closedLoop) Next(r *rng.Rand) (sim.Time, bool) {
	if !c.started {
		c.started = true
		for i := 0; i < c.users; i++ {
			c.push(c.think(r, 0))
		}
	}
	if len(c.pending) == 0 {
		return 0, false
	}
	return c.pop(), true
}

// Done implements the feedback half of the loop: the user whose request
// retired at t thinks and issues again.
func (c *closedLoop) Done(t sim.Time, r *rng.Rand) bool {
	if !c.started {
		// A retirement cannot precede the first issue; tolerate anyway.
		c.started = true
	}
	c.push(c.think(r, t))
	return len(c.pending) == 1
}

func (c *closedLoop) think(r *rng.Rand, after sim.Time) sim.Time {
	d := sim.Time(r.Exp(c.thinkNs) + 0.5)
	if d < 1 {
		d = 1
	}
	return after + d
}

// push and pop maintain the min-heap in place; capacity never exceeds
// users, so neither allocates.
//
//simvet:hotpath
func (c *closedLoop) push(t sim.Time) {
	n := len(c.pending)
	if n == cap(c.pending) {
		panic("workload: closed-loop pending overflow (more retirements than users)")
	}
	c.pending = c.pending[:n+1]
	c.pending[n] = t
	for n > 0 {
		parent := (n - 1) / 2
		if c.pending[parent] <= c.pending[n] {
			break
		}
		c.pending[parent], c.pending[n] = c.pending[n], c.pending[parent]
		n = parent
	}
}

//simvet:hotpath
func (c *closedLoop) pop() sim.Time {
	top := c.pending[0]
	n := len(c.pending) - 1
	c.pending[0] = c.pending[n]
	c.pending = c.pending[:n]
	i := 0
	for {
		l, rgt := 2*i+1, 2*i+2
		least := i
		if l < n && c.pending[l] < c.pending[least] {
			least = l
		}
		if rgt < n && c.pending[rgt] < c.pending[least] {
			least = rgt
		}
		if least == i {
			break
		}
		c.pending[i], c.pending[least] = c.pending[least], c.pending[i]
		i = least
	}
	return top
}

// arrivalLaw describes one nameable arrival process for listings.
type arrivalLaw struct {
	name    string
	summary string
}

var arrivalLaws = []arrivalLaw{
	{"poisson", "open-loop Poisson at the configured rate (paper §5.1 client; the default)"},
	{"mmpp", "2-state Markov-modulated Poisson bursts, mean rate preserved (params: burst, duty, cycle)"},
	{"diurnal", "sinusoidal rate curve around the configured rate (params: amp, period)"},
	{"closed", "closed-loop users with exponential think time; rate is emergent (params: users, think)"},
}

// ArrivalNames lists the arrival processes with their parameter
// summaries, for -arrivals list catalogues.
func ArrivalNames() []string {
	out := make([]string, 0, len(arrivalLaws))
	for _, l := range arrivalLaws {
		out = append(out, fmt.Sprintf("%-10s %s", l.name, l.summary))
	}
	return out
}

// ParseArrivals resolves a textual arrival-process spec — "process" or
// "process:key=value,..." — for the given mean rate (requests/second).
// The empty spec is poisson. Durations accept Go syntax ("1ms");
// defaults: burst=10, duty=0.1, cycle=1ms; amp=0.8, period=100ms;
// users=64, think=100us.
//
//	poisson
//	mmpp:burst=10,duty=0.1,cycle=1ms
//	diurnal:amp=0.8,period=100ms
//	closed:users=64,think=100us
func ParseArrivals(spec string, rate float64) (ArrivalProcess, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %g", rate)
	}
	if strings.TrimSpace(spec) == "" {
		spec = "poisson"
	}
	name, params, err := parseSpecParams(spec)
	if err != nil {
		return nil, err
	}
	baseGapNs := float64(sim.Second) / rate
	switch name {
	case "poisson":
		return &poisson{meanGapNs: baseGapNs}, params.done()
	case "mmpp":
		burst, err := params.float("burst", 10)
		if err != nil {
			return nil, err
		}
		duty, err := params.float("duty", 0.1)
		if err != nil {
			return nil, err
		}
		cycle, err := params.duration("cycle", sim.Time(1_000_000))
		if err != nil {
			return nil, err
		}
		if burst <= 1 || duty <= 0 || duty >= 1 || cycle < 2 {
			return nil, fmt.Errorf("workload: mmpp needs burst>1, 0<duty<1, cycle>=2ns, got burst=%g duty=%g cycle=%v", burst, duty, cycle)
		}
		// Scale per-state rates so duty·burst·mLow + (1-duty)·mLow = 1.
		mLow := 1 / (1 - duty + duty*burst)
		m := &mmpp{burst: burst, duty: duty}
		m.gap[0] = baseGapNs / mLow
		m.gap[1] = baseGapNs / (burst * mLow)
		m.dwell[0] = (1 - duty) * float64(cycle)
		m.dwell[1] = duty * float64(cycle)
		return m, params.done()
	case "diurnal":
		amp, err := params.float("amp", 0.8)
		if err != nil {
			return nil, err
		}
		period, err := params.duration("period", 100_000_000)
		if err != nil {
			return nil, err
		}
		if amp <= 0 || amp >= 1 || period < 2 {
			return nil, fmt.Errorf("workload: diurnal needs 0<amp<1 and period>=2ns, got amp=%g period=%v", amp, period)
		}
		return &diurnal{gapPeakNs: baseGapNs / (1 + amp), amp: amp, periodNs: float64(period)}, params.done()
	case "closed":
		users, err := params.int("users", 64)
		if err != nil {
			return nil, err
		}
		think, err := params.duration("think", 100_000)
		if err != nil {
			return nil, err
		}
		if users <= 0 || think <= 0 {
			return nil, fmt.Errorf("workload: closed needs positive users and think, got users=%d think=%v", users, think)
		}
		return &closedLoop{thinkNs: float64(think), users: users, pending: make([]sim.Time, 0, users)}, params.done()
	default:
		known := make([]string, 0, len(arrivalLaws))
		for _, l := range arrivalLaws {
			known = append(known, l.name)
		}
		return nil, fmt.Errorf("workload: unknown arrival process %q (known: %s)", name, strings.Join(known, ", "))
	}
}
