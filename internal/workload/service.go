package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// This file is the service-law axis of the workload plane: a
// ServiceSampler is a named distribution over per-request CPU demand,
// attached per class (ClassInfo.Sampler). The Table 1 laws —
// deterministic per-class times, Exp(1), empirical traces — are the
// historical samplers; Pareto and lognormal add the heavy tails
// production µs-scale services actually show. Samplers are data:
// ParseService resolves a textual law ("pareto:mean=10us,alpha=1.4")
// exactly as pifo.Parse resolves a queue discipline.

// ServiceSampler draws per-request service demands for one class.
// Implementations draw only from the provided rng.Rand (never global
// state) with a fixed draw count per sample, so a workload's RNG stream
// layout is a pure function of the request sequence.
type ServiceSampler interface {
	// Name renders the law with its parameters, for reports.
	Name() string
	// Sample draws one service demand. Results below 1ns are clamped by
	// the caller (a job needs at least 1ns of work).
	Sample(r *rng.Rand) sim.Time
	// Mean returns the law's expected service time, the quantity
	// MaxLoad and knee-finding sweeps plan against.
	Mean() sim.Time
}

// expSampler is the exponential law: Exp with the given mean (Table
// 1's Exp(1) workload, CV = 1).
type expSampler struct{ mean sim.Time }

func (s expSampler) Name() string   { return fmt.Sprintf("exp(mean=%v)", s.mean) }
func (s expSampler) Mean() sim.Time { return s.mean }

//simvet:hotpath
func (s expSampler) Sample(r *rng.Rand) sim.Time {
	return sim.Time(r.Exp(float64(s.mean)) + 0.5)
}

// traceSampler replays an empirical distribution: service times drawn
// uniformly from a recorded trace.
type traceSampler struct {
	trace []sim.Time
	mean  sim.Time
}

func newTraceSampler(trace []sim.Time) traceSampler {
	if len(trace) == 0 {
		panic("workload: empty trace")
	}
	var sum float64
	for _, s := range trace {
		if s <= 0 {
			panic("workload: non-positive service time in trace")
		}
		sum += float64(s)
	}
	return traceSampler{
		trace: append([]sim.Time(nil), trace...),
		mean:  sim.Time(sum/float64(len(trace)) + 0.5),
	}
}

func (s traceSampler) Name() string { return fmt.Sprintf("trace(n=%d)", len(s.trace)) }

// Mean returns the empirical mean of the trace — the value capacity
// planning (MaxLoad, SpeculativeMaxRateUnder grids) must use for
// trace-backed workloads.
func (s traceSampler) Mean() sim.Time { return s.mean }

//simvet:hotpath
func (s traceSampler) Sample(r *rng.Rand) sim.Time {
	return s.trace[r.Intn(len(s.trace))]
}

// paretoSampler is the Pareto (power-law) heavy-tail law: scale xm,
// tail index alpha. P(S > s) = (xm/s)^alpha for s >= xm; alpha must
// exceed 1 so the mean alpha·xm/(alpha-1) exists. Small alpha = heavy
// tail: alpha 1.4 puts ~10% of the load in the top 0.1% of requests.
type paretoSampler struct {
	xm    float64 // scale (minimum), ns
	alpha float64
}

func (s paretoSampler) Name() string {
	return fmt.Sprintf("pareto(mean=%v,alpha=%g)", s.Mean(), s.alpha)
}

func (s paretoSampler) Mean() sim.Time {
	return sim.Time(s.alpha*s.xm/(s.alpha-1) + 0.5)
}

//simvet:hotpath
func (s paretoSampler) Sample(r *rng.Rand) sim.Time {
	// Inversion: xm · u^(-1/alpha), u uniform in (0, 1].
	u := 1.0 - r.Float64()
	return sim.Time(s.xm*math.Pow(u, -1/s.alpha) + 0.5)
}

// lognormalSampler is the lognormal law: exp(mu + sigma·N(0,1)).
// sigma controls dispersion: the service-time CV is
// sqrt(exp(sigma²)-1), so sigma 1.5 gives CV ≈ 9.
type lognormalSampler struct {
	mu    float64 // log-scale location
	sigma float64
}

func (s lognormalSampler) Name() string {
	return fmt.Sprintf("lognormal(mean=%v,sigma=%g)", s.Mean(), s.sigma)
}

func (s lognormalSampler) Mean() sim.Time {
	return sim.Time(math.Exp(s.mu+s.sigma*s.sigma/2) + 0.5)
}

//simvet:hotpath
func (s lognormalSampler) Sample(r *rng.Rand) sim.Time {
	return sim.Time(math.Exp(s.mu+s.sigma*r.Normal()) + 0.5)
}

// serviceLaw describes one nameable service law for listings.
type serviceLaw struct {
	name    string
	summary string
}

var serviceLaws = []serviceLaw{
	{"det", "deterministic service time (params: s)"},
	{"exp", "exponential, CV=1 (params: mean)"},
	{"pareto", "Pareto power-law heavy tail (params: mean, alpha>1)"},
	{"lognormal", "lognormal heavy tail (params: mean, sigma)"},
}

// ServiceNames lists the nameable service laws with their parameter
// summaries, for -svc list catalogues. Trace-backed laws are built from
// data (FromTrace), not by name.
func ServiceNames() []string {
	out := make([]string, 0, len(serviceLaws))
	for _, l := range serviceLaws {
		out = append(out, fmt.Sprintf("%-10s %s", l.name, l.summary))
	}
	return out
}

// ParseService resolves a textual service law — "law" or
// "law:key=value,key=value" — into a sampler, the pifo.Parse idiom for
// the service axis. Durations accept Go syntax ("10us", "1.2ms");
// defaults are a 10µs mean, alpha 1.4, sigma 1.5.
//
//	det:s=10us
//	exp:mean=1us
//	pareto:mean=10us,alpha=1.4
//	lognormal:mean=10us,sigma=1.5
func ParseService(spec string) (ServiceSampler, error) {
	name, params, err := parseSpecParams(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "det":
		s, err := params.duration("s", sim.Micros(10))
		if err != nil {
			return nil, err
		}
		if s <= 0 {
			return nil, fmt.Errorf("workload: det service time must be positive, got %v", s)
		}
		return deterministicSampler{s}, params.done()
	case "exp":
		mean, err := params.duration("mean", sim.Micros(10))
		if err != nil {
			return nil, err
		}
		if mean <= 0 {
			return nil, fmt.Errorf("workload: exp mean must be positive, got %v", mean)
		}
		return expSampler{mean}, params.done()
	case "pareto":
		mean, err := params.duration("mean", sim.Micros(10))
		if err != nil {
			return nil, err
		}
		alpha, err := params.float("alpha", 1.4)
		if err != nil {
			return nil, err
		}
		if alpha <= 1 {
			return nil, fmt.Errorf("workload: pareto alpha must exceed 1 (mean diverges), got %g", alpha)
		}
		if mean <= 0 {
			return nil, fmt.Errorf("workload: pareto mean must be positive, got %v", mean)
		}
		return paretoSampler{xm: float64(mean) * (alpha - 1) / alpha, alpha: alpha}, params.done()
	case "lognormal":
		mean, err := params.duration("mean", sim.Micros(10))
		if err != nil {
			return nil, err
		}
		sigma, err := params.float("sigma", 1.5)
		if err != nil {
			return nil, err
		}
		if mean <= 0 || sigma <= 0 {
			return nil, fmt.Errorf("workload: lognormal needs positive mean and sigma, got mean=%v sigma=%g", mean, sigma)
		}
		return lognormalSampler{mu: math.Log(float64(mean)) - sigma*sigma/2, sigma: sigma}, params.done()
	default:
		known := make([]string, 0, len(serviceLaws))
		for _, l := range serviceLaws {
			known = append(known, l.name)
		}
		return nil, fmt.Errorf("workload: unknown service law %q (known: %s)", name, strings.Join(known, ", "))
	}
}

// deterministicSampler is the det law as a sampler — only constructed
// by ParseService; workloads built from ClassInfo literals express
// deterministic service through the Service field with a nil Sampler,
// which draws nothing.
type deterministicSampler struct{ s sim.Time }

func (d deterministicSampler) Name() string              { return fmt.Sprintf("det(%v)", d.s) }
func (d deterministicSampler) Mean() sim.Time            { return d.s }
func (d deterministicSampler) Sample(*rng.Rand) sim.Time { return d.s }

// FromLaw builds a single-class workload whose service times follow the
// named law — the workload behind tqsim -svc. The class (and workload)
// is named after the law so reports are self-describing.
func FromLaw(spec string) (*Workload, error) {
	s, err := ParseService(spec)
	if err != nil {
		return nil, err
	}
	return New(s.Name(), []ClassInfo{{Name: "Req", Ratio: 1, Sampler: s}}), nil
}

// specParams is the parsed parameter set of a "name:k=v,k=v" spec,
// tracking consumption so unknown keys are reported.
type specParams struct {
	spec string
	kv   map[string]string
	used map[string]bool
}

// parseSpecParams splits "name" or "name:k=v,k=v,..." into the name and
// its parameter set.
func parseSpecParams(spec string) (string, *specParams, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(spec), ":")
	p := &specParams{spec: spec, kv: map[string]string{}, used: map[string]bool{}}
	if !hasParams {
		return name, p, nil
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("workload: bad parameter %q in %q (want key=value)", part, spec)
		}
		p.kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return name, p, nil
}

func (p *specParams) duration(key string, def sim.Time) (sim.Time, error) {
	v, ok := p.kv[key]
	if !ok {
		return def, nil
	}
	p.used[key] = true
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("workload: bad %s in %q: want a duration like 10us, got %q", key, p.spec, v)
	}
	return sim.Time(d.Nanoseconds()), nil
}

func (p *specParams) float(key string, def float64) (float64, error) {
	v, ok := p.kv[key]
	if !ok {
		return def, nil
	}
	p.used[key] = true
	var f float64
	if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
		return 0, fmt.Errorf("workload: bad %s in %q: want a number, got %q", key, p.spec, v)
	}
	return f, nil
}

func (p *specParams) int(key string, def int) (int, error) {
	f, err := p.float(key, float64(def))
	if err != nil {
		return 0, err
	}
	return int(f), nil
}

// done reports unconsumed parameters — a typoed key would otherwise
// silently fall back to its default.
func (p *specParams) done() error {
	var unknown []string
	for k := range p.kv {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("workload: unknown parameter(s) %s in %q", strings.Join(unknown, ", "), p.spec)
}
