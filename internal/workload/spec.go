package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Spec composes the three workload axes — what requests demand (the
// Workload's service laws), when they arrive (the ArrivalProcess), and
// who sends them (Tenants) — into one declarative description. The zero
// values of the optional axes reproduce the paper's client exactly:
// empty Arrivals is open-loop Poisson, nil Tenants is a single
// anonymous tenant. Spec.Stream is the single place in the tree where a
// request stream is constructed.
type Spec struct {
	// Workload supplies the request classes and their service laws.
	Workload *Workload
	// Rate is the mean offered load in requests/second. For closed-loop
	// arrival processes the realized rate is emergent (users and think
	// time determine it) and Rate only scales capacity planning.
	Rate float64
	// Arrivals names the arrival process ("" = "poisson"); see
	// ParseArrivals for the catalogue and parameter syntax.
	Arrivals string
	// Tenants, when non-empty, partitions requests among named tenants
	// by ratio. Ratios must sum to 1.
	Tenants []Tenant
}

// Tenant describes one traffic source sharing the cluster.
type Tenant struct {
	// Name labels the tenant in reports and SLO keys.
	Name string
	// Ratio is the fraction of all requests this tenant issues.
	Ratio float64
	// Share, if positive, reserves that fraction of the admission-queue
	// limit for this tenant (admission-lane isolation). Tenants with
	// Share zero compete for the unreserved remainder. Shares must sum
	// to at most 1.
	Share float64
}

// Validate reports whether the spec is well-formed without constructing
// a stream: positive rate, parseable arrival process, coherent tenant
// table. Stream panics on exactly the errors Validate returns, so
// config-level validation paths (cluster.RunConfig.validate) can reject
// bad specs gracefully while hot paths stay panic-on-bug.
func (s Spec) Validate() error {
	if s.Workload == nil {
		return fmt.Errorf("workload: spec has no workload")
	}
	if s.Rate <= 0 {
		return fmt.Errorf("workload: rate must be positive, got %g (a non-positive rate means an infinite mean inter-arrival gap)", s.Rate)
	}
	if _, err := ParseArrivals(s.Arrivals, s.Rate); err != nil {
		return err
	}
	return ValidateTenants(s.Tenants)
}

// ValidateTenants checks a tenant table: unique non-empty names,
// positive ratios summing to 1 (within 1e-9), shares in [0, 1] summing
// to at most 1. An empty table is valid (single anonymous tenant).
func ValidateTenants(tenants []Tenant) error {
	if len(tenants) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(tenants))
	ratios, shares := 0.0, 0.0
	for _, t := range tenants {
		if t.Name == "" {
			return fmt.Errorf("workload: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("workload: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Ratio <= 0 {
			return fmt.Errorf("workload: tenant %s has non-positive ratio %g", t.Name, t.Ratio)
		}
		if t.Share < 0 || t.Share > 1 {
			return fmt.Errorf("workload: tenant %s share %g outside [0, 1]", t.Name, t.Share)
		}
		ratios += t.Ratio
		shares += t.Share
	}
	if ratios < 1-1e-9 || ratios > 1+1e-9 {
		return fmt.Errorf("workload: tenant ratios sum to %v, want 1", ratios)
	}
	if shares > 1+1e-9 {
		return fmt.Errorf("workload: tenant shares sum to %v, want at most 1", shares)
	}
	return nil
}

// ParseTenants parses a tenant table spec: comma-separated
// "name=ratio[@share]" entries, e.g. "big=0.9@0.5,small=0.1@0.25".
// Ratio is the tenant's fraction of traffic; the optional @share
// reserves that fraction of the admission queue.
func ParseTenants(spec string) ([]Tenant, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Tenant
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("workload: bad tenant %q (want name=ratio[@share])", part)
		}
		t := Tenant{Name: strings.TrimSpace(name)}
		ratioStr, shareStr, hasShare := strings.Cut(val, "@")
		r, err := strconv.ParseFloat(strings.TrimSpace(ratioStr), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad ratio in tenant %q: %v", part, err)
		}
		t.Ratio = r
		if hasShare {
			s, err := strconv.ParseFloat(strings.TrimSpace(shareStr), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bad share in tenant %q: %v", part, err)
			}
			t.Share = s
		}
		out = append(out, t)
	}
	if err := ValidateTenants(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stream materializes the spec into a request stream drawing from r.
// It panics on an invalid spec (see Validate); validate at the config
// layer first for a graceful error. This is the only constructor of
// request streams in the tree — every machine, the rack fleet, and
// the benches go through it (mostly via cluster.RunConfig).
func (s Spec) Stream(r *rng.Rand) *Stream {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	proc, err := ParseArrivals(s.Arrivals, s.Rate)
	if err != nil {
		panic(err) // unreachable: Validate parsed the same spec
	}
	st := &Stream{w: s.Workload, proc: proc, rand: r}
	if _, ok := proc.(*closedLoop); ok {
		st.closed = true
	}
	if len(s.Tenants) > 0 {
		st.tenants = append([]Tenant(nil), s.Tenants...)
		st.tcum = make([]float64, len(s.Tenants))
		cum := 0.0
		for i, t := range s.Tenants {
			cum += t.Ratio
			st.tcum[i] = cum
		}
		st.tcum[len(st.tcum)-1] = 1 // absorb rounding
	}
	return st
}

// NewGenerator returns the default open-loop Poisson stream over w at
// rate requests/second — the historical constructor, now a thin alias
// for Spec{Workload: w, Rate: rate}.Stream(r). It panics if rate is not
// positive.
func NewGenerator(w *Workload, rate float64, r *rng.Rand) *Stream {
	return Spec{Workload: w, Rate: rate}.Stream(r)
}

// Stream produces requests in arrival order from a composed spec. It is
// single-goroutine, deterministic in its Rand, and allocation-free in
// steady state. Arrival times are strictly increasing.
type Stream struct {
	w       *Workload
	proc    ArrivalProcess
	rand    *rng.Rand
	tenants []Tenant
	tcum    []float64
	nextID  uint64
	staged  sim.Time // arrival instant of the next request, if primed
	primed  bool
	started bool
	last    sim.Time
	closed  bool
}

// Workload returns the spec's workload (for per-class accounting).
func (s *Stream) Workload() *Workload { return s.w }

// Tenants returns the spec's tenant table (nil for a single anonymous
// tenant).
func (s *Stream) Tenants() []Tenant { return s.tenants }

// ClosedLoop reports whether the stream's arrival process needs
// completion feedback (Done) to make progress.
func (s *Stream) ClosedLoop() bool { return s.closed }

// Next returns the next request in arrival order. ok=false means the
// stream is blocked until a request retires (closed-loop processes
// only); a later Done returning true signals it is ready again.
//
//simvet:hotpath
func (s *Stream) Next() (Request, bool) {
	if !s.primed {
		t, ok := s.proc.Next(s.rand)
		if !ok {
			return Request{}, false
		}
		s.staged = t
		s.primed = true
	}
	req := s.w.Sample(s.rand)
	if len(s.tcum) > 0 {
		// Tenant pick mirrors the class pick: one uniform draw, binary
		// search over the cumulative ratio table.
		u := s.rand.Float64()
		lo, hi := 0, len(s.tcum)-1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if u >= s.tcum[mid] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		req.Tenant = lo
	}
	req.ID = s.nextID
	s.nextID++
	t := s.staged
	if s.started && t <= s.last {
		// Processes may emit coincident instants (closed-loop heap ties);
		// the kernel indexes events by strictly increasing arrival time.
		t = s.last + 1
	}
	req.Arrival = t
	s.last = t
	s.started = true
	if nt, ok := s.proc.Next(s.rand); ok {
		s.staged = nt
	} else {
		s.primed = false
	}
	return req, true
}

// Done informs the stream that a request retired (completed or was
// dropped) at instant t. It returns true when the stream was blocked
// and now has an arrival pending — the caller should resume pulling.
func (s *Stream) Done(t sim.Time) bool {
	return s.proc.Done(t, s.rand) && !s.primed
}

// StreamChurn pulls n requests from the stream and folds them into a
// checksum — the measured body of the workload/arrival-stream bench
// point, and a handy way to exercise a stream in tests.
//
//simvet:hotpath
func StreamChurn(s *Stream, n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		req, ok := s.Next()
		if !ok {
			break
		}
		acc += req.ID ^ uint64(req.Arrival) ^ uint64(req.Service)
	}
	return acc
}
