// Package workload defines the µs-scale workloads evaluated in the
// Tiny Quanta paper (Table 1) and the programmable request plane that
// drives every experiment.
//
// The plane is composed from three independent axes:
//
//   - Service: a Workload is a distribution over request classes; each
//     class carries either a deterministic service time or a
//     ServiceSampler (exp, trace, pareto, lognormal — see service.go).
//   - Arrivals: an ArrivalProcess decides when requests land — the
//     paper's open-loop Poisson client (§5.1) by default, or MMPP
//     bursts, diurnal curves, closed-loop users (see arrival.go).
//   - Tenants: an optional tenant table splits traffic among named
//     sources with per-tenant admission shares (see spec.go).
//
// A Spec names one point in that space and Spec.Stream materializes it
// into the deterministic request stream the kernel pumps.
package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Class identifies a request type within a workload; it indexes
// per-class latency accounting.
type Class int

// Request is one unit of work presented to a scheduling system.
type Request struct {
	// ID is unique within a run, assigned in arrival order.
	ID uint64
	// Class indexes the workload's class table.
	Class Class
	// Tenant indexes the spec's tenant table (0 when the spec has no
	// tenants — a single anonymous tenant).
	Tenant int
	// Service is the job's total CPU demand. Blind schedulers must not
	// read this field to make decisions; it is consumed only by the
	// simulated execution of the job and by slowdown accounting.
	Service sim.Time
	// Arrival is the time the request hit the server's NIC.
	Arrival sim.Time
}

// ClassInfo describes one request class.
type ClassInfo struct {
	Name    string
	Service sim.Time // deterministic demand; display mean when Sampler is set
	Ratio   float64  // fraction of requests in this class
	// Sampler, if non-nil, draws this class's service times from a
	// distribution instead of the deterministic Service value.
	Sampler ServiceSampler
}

// Workload is a named distribution over request classes.
type Workload struct {
	Name    string
	Classes []ClassInfo
	// cumulative selection thresholds, parallel to Classes.
	cum []float64
}

// New builds a workload from class definitions. Ratios must be positive
// and sum to 1 (within 1e-9). A class with a Sampler and zero Service
// gets its display Service filled in from the sampler's mean.
func New(name string, classes []ClassInfo) *Workload {
	w := &Workload{Name: name, Classes: classes}
	total := 0.0
	for i, c := range classes {
		if c.Ratio <= 0 {
			panic(fmt.Sprintf("workload %s: class %s has non-positive ratio", name, c.Name))
		}
		if c.Sampler != nil && c.Service == 0 {
			w.Classes[i].Service = c.Sampler.Mean()
		}
		total += c.Ratio
		w.cum = append(w.cum, total)
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		panic(fmt.Sprintf("workload %s: ratios sum to %v, want 1", name, total))
	}
	w.cum[len(w.cum)-1] = 1 // absorb rounding
	return w
}

// MeanService returns the expected service time of one request. For
// sampler-backed classes (exponential, trace, heavy-tail laws) it uses
// the sampler's true mean — for traces, the empirical mean — so
// capacity planning (MaxLoad, SpeculativeMaxRateUnder, sweep knees) is
// exact for every law.
func (w *Workload) MeanService() sim.Time {
	mean := 0.0
	for _, c := range w.Classes {
		if c.Sampler != nil {
			mean += c.Ratio * float64(c.Sampler.Mean())
		} else {
			mean += c.Ratio * float64(c.Service)
		}
	}
	return sim.Time(mean + 0.5)
}

// MaxLoad returns the arrival rate (requests/second) that saturates n
// cores, i.e. n / E[S]. Experiments sweep load as a fraction of this.
func (w *Workload) MaxLoad(cores int) float64 {
	return float64(cores) / w.MeanService().Seconds()
}

// Sample draws one request (without ID or arrival time) from the
// workload using r. The class pick is a binary search over the
// cumulative ratio table — this sits on the arrival hot path, and the
// TPC-C mix has five classes.
//
//simvet:hotpath
func (w *Workload) Sample(r *rng.Rand) Request {
	u := r.Float64()
	// First index with u < cum[i], capped at the last class — the exact
	// semantics of the historical linear scan, so class picks (and the
	// golden fixtures) are bit-identical.
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u >= w.cum[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c := &w.Classes[lo]
	svc := c.Service
	if c.Sampler != nil {
		svc = c.Sampler.Sample(r)
		if svc < 1 {
			svc = 1 // a job needs at least 1ns of work
		}
	}
	return Request{Class: Class(lo), Service: svc}
}

// DispersionRatio returns the ratio between the longest and shortest
// class service times (the paper quotes 1000 for Extreme Bimodal). It
// is 1 for single-class and sampler-backed workloads, whose dispersion
// is a property of the law, not the class table.
func (w *Workload) DispersionRatio() float64 {
	if len(w.Classes) < 2 {
		return 1
	}
	for _, c := range w.Classes {
		if c.Sampler != nil {
			return 1
		}
	}
	min, max := w.Classes[0].Service, w.Classes[0].Service
	for _, c := range w.Classes[1:] {
		if c.Service < min {
			min = c.Service
		}
		if c.Service > max {
			max = c.Service
		}
	}
	return float64(max) / float64(min)
}

// The workloads of Table 1. The §2 motivation simulations use the
// round 0.5µs/500µs variant (Section2Bimodal); the system evaluation
// uses the measured 0.3µs/509µs variant.

// ExtremeBimodal is Table 1's Extreme Bimodal workload: 99.5% short
// (0.3µs) and 0.5% long (509µs) requests — dispersion ratio ≈1700.
func ExtremeBimodal() *Workload {
	return New("ExtremeBimodal", []ClassInfo{
		{Name: "Short", Service: sim.Micros(0.3), Ratio: 0.995},
		{Name: "Long", Service: sim.Micros(509), Ratio: 0.005},
	})
}

// Section2Bimodal is the idealized extreme bimodal mix used by the §2
// motivation simulations (Figures 1, 2, 4): 99.5% × 0.5µs, 0.5% × 500µs.
func Section2Bimodal() *Workload {
	return New("Section2Bimodal", []ClassInfo{
		{Name: "Short", Service: sim.Micros(0.5), Ratio: 0.995},
		{Name: "Long", Service: sim.Micros(500), Ratio: 0.005},
	})
}

// HighBimodal is Table 1's High Bimodal workload: 50% × 1µs, 50% ×
// 100µs.
func HighBimodal() *Workload {
	return New("HighBimodal", []ClassInfo{
		{Name: "Short", Service: sim.Micros(1), Ratio: 0.5},
		{Name: "Long", Service: sim.Micros(100), Ratio: 0.5},
	})
}

// TPCC is Table 1's TPC-C transaction mix.
func TPCC() *Workload {
	return New("TPCC", []ClassInfo{
		{Name: "Payment", Service: sim.Micros(5.7), Ratio: 0.44},
		{Name: "OrderStatus", Service: sim.Micros(6), Ratio: 0.04},
		{Name: "NewOrder", Service: sim.Micros(20), Ratio: 0.44},
		{Name: "Delivery", Service: sim.Micros(88), Ratio: 0.04},
		{Name: "StockLevel", Service: sim.Micros(100), Ratio: 0.04},
	})
}

// Exp1 is Table 1's exponential workload with a 1µs mean.
func Exp1() *Workload {
	return New("Exp1", []ClassInfo{{
		Name:    "Exp",
		Service: sim.Micros(1),
		Ratio:   1,
		Sampler: expSampler{sim.Micros(1)},
	}})
}

// RocksDB returns Table 1's RocksDB workload with the given SCAN
// fraction (the paper evaluates 0.005 and 0.5): GET 1.2µs, SCAN 675µs.
func RocksDB(scanRatio float64) *Workload {
	if scanRatio <= 0 || scanRatio >= 1 {
		panic("workload: scanRatio must be in (0, 1)")
	}
	return New(fmt.Sprintf("RocksDB(%g%%SCAN)", scanRatio*100), []ClassInfo{
		{Name: "GET", Service: sim.Micros(1.2), Ratio: 1 - scanRatio},
		{Name: "SCAN", Service: sim.Micros(675), Ratio: scanRatio},
	})
}

// Fixed returns a single-class workload where every request needs
// exactly service time s; Figure 16's dispatcher-scalability experiment
// uses Fixed(1ms).
func Fixed(name string, s sim.Time) *Workload {
	return New(name, []ClassInfo{{Name: name, Service: s, Ratio: 1}})
}

// Bimodal builds a two-class workload: shortRatio of requests take
// short, the rest take long — the generic form of the paper's bimodal
// mixes for custom experiments.
func Bimodal(name string, short, long sim.Time, shortRatio float64) *Workload {
	if shortRatio <= 0 || shortRatio >= 1 {
		panic("workload: shortRatio must be in (0, 1)")
	}
	return New(name, []ClassInfo{
		{Name: "Short", Service: short, Ratio: shortRatio},
		{Name: "Long", Service: long, Ratio: 1 - shortRatio},
	})
}

// FromTrace builds an empirical single-class workload that samples
// service times uniformly from the given trace of observed durations —
// for replaying measured service-time distributions through the
// simulators. The trace must be non-empty with positive durations; the
// class's display Service (and MeanService) is the empirical mean.
func FromTrace(name string, trace []sim.Time) *Workload {
	return New(name, []ClassInfo{{
		Name:    name,
		Ratio:   1,
		Sampler: newTraceSampler(trace),
	}})
}

// All returns the Table 1 workloads in presentation order.
func All() []*Workload {
	return []*Workload{
		ExtremeBimodal(), HighBimodal(), TPCC(), Exp1(),
		RocksDB(0.005), RocksDB(0.5),
	}
}
