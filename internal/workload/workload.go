// Package workload defines the µs-scale workloads evaluated in the
// Tiny Quanta paper (Table 1) and the open-loop Poisson request
// generator used by all experiments (§5.1).
//
// A workload is a distribution over request classes; each class has a
// deterministic service time and a name so experiments can report
// per-class tail latency (e.g. "Short" vs "Long" in the bimodal plots).
// The Exp(1) workload instead draws exponentially distributed service
// times and has a single class.
package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Class identifies a request type within a workload; it indexes
// per-class latency accounting.
type Class int

// Request is one unit of work presented to a scheduling system.
type Request struct {
	// ID is unique within a run, assigned in arrival order.
	ID uint64
	// Class indexes the workload's class table.
	Class Class
	// Service is the job's total CPU demand. Blind schedulers must not
	// read this field to make decisions; it is consumed only by the
	// simulated execution of the job and by slowdown accounting.
	Service sim.Time
	// Arrival is the time the request hit the server's NIC.
	Arrival sim.Time
}

// ClassInfo describes one request class.
type ClassInfo struct {
	Name    string
	Service sim.Time // 0 for stochastic classes (Exp)
	Ratio   float64  // fraction of requests in this class
}

// Workload is a named distribution over request classes.
type Workload struct {
	Name    string
	Classes []ClassInfo
	// cumulative selection thresholds, parallel to Classes.
	cum []float64
	// expMean, if nonzero, makes every class's service time
	// exponentially distributed with this mean (used by Exp(1)).
	expMean sim.Time
	// trace, if non-empty, makes Sample draw service times uniformly
	// from it (empirical distribution).
	trace []sim.Time
}

// New builds a workload from class definitions. Ratios must be positive
// and sum to 1 (within 1e-9).
func New(name string, classes []ClassInfo) *Workload {
	w := &Workload{Name: name, Classes: classes}
	total := 0.0
	for _, c := range classes {
		if c.Ratio <= 0 {
			panic(fmt.Sprintf("workload %s: class %s has non-positive ratio", name, c.Name))
		}
		total += c.Ratio
		w.cum = append(w.cum, total)
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		panic(fmt.Sprintf("workload %s: ratios sum to %v, want 1", name, total))
	}
	w.cum[len(w.cum)-1] = 1 // absorb rounding
	return w
}

// MeanService returns the expected service time of one request.
func (w *Workload) MeanService() sim.Time {
	if w.expMean != 0 {
		return w.expMean
	}
	mean := 0.0
	for _, c := range w.Classes {
		mean += c.Ratio * float64(c.Service)
	}
	return sim.Time(mean + 0.5)
}

// MaxLoad returns the arrival rate (requests/second) that saturates n
// cores, i.e. n / E[S]. Experiments sweep load as a fraction of this.
func (w *Workload) MaxLoad(cores int) float64 {
	return float64(cores) / w.MeanService().Seconds()
}

// Sample draws one request (without ID or arrival time) from the
// workload using r.
func (w *Workload) Sample(r *rng.Rand) Request {
	u := r.Float64()
	cls := 0
	for cls < len(w.cum)-1 && u >= w.cum[cls] {
		cls++
	}
	svc := w.Classes[cls].Service
	switch {
	case len(w.trace) > 0:
		svc = w.trace[r.Intn(len(w.trace))]
	case w.expMean != 0:
		svc = sim.Time(r.Exp(float64(w.expMean)) + 0.5)
		if svc < 1 {
			svc = 1 // a job needs at least 1ns of work
		}
	}
	return Request{Class: Class(cls), Service: svc}
}

// DispersionRatio returns the ratio between the longest and shortest
// class service times (the paper quotes 1000 for Extreme Bimodal).
func (w *Workload) DispersionRatio() float64 {
	if len(w.Classes) < 2 || w.expMean != 0 {
		return 1
	}
	min, max := w.Classes[0].Service, w.Classes[0].Service
	for _, c := range w.Classes[1:] {
		if c.Service < min {
			min = c.Service
		}
		if c.Service > max {
			max = c.Service
		}
	}
	return float64(max) / float64(min)
}

// The workloads of Table 1. The §2 motivation simulations use the
// round 0.5µs/500µs variant (Section2Bimodal); the system evaluation
// uses the measured 0.3µs/509µs variant.

// ExtremeBimodal is Table 1's Extreme Bimodal workload: 99.5% short
// (0.3µs) and 0.5% long (509µs) requests — dispersion ratio ≈1700.
func ExtremeBimodal() *Workload {
	return New("ExtremeBimodal", []ClassInfo{
		{Name: "Short", Service: sim.Micros(0.3), Ratio: 0.995},
		{Name: "Long", Service: sim.Micros(509), Ratio: 0.005},
	})
}

// Section2Bimodal is the idealized extreme bimodal mix used by the §2
// motivation simulations (Figures 1, 2, 4): 99.5% × 0.5µs, 0.5% × 500µs.
func Section2Bimodal() *Workload {
	return New("Section2Bimodal", []ClassInfo{
		{Name: "Short", Service: sim.Micros(0.5), Ratio: 0.995},
		{Name: "Long", Service: sim.Micros(500), Ratio: 0.005},
	})
}

// HighBimodal is Table 1's High Bimodal workload: 50% × 1µs, 50% ×
// 100µs.
func HighBimodal() *Workload {
	return New("HighBimodal", []ClassInfo{
		{Name: "Short", Service: sim.Micros(1), Ratio: 0.5},
		{Name: "Long", Service: sim.Micros(100), Ratio: 0.5},
	})
}

// TPCC is Table 1's TPC-C transaction mix.
func TPCC() *Workload {
	return New("TPCC", []ClassInfo{
		{Name: "Payment", Service: sim.Micros(5.7), Ratio: 0.44},
		{Name: "OrderStatus", Service: sim.Micros(6), Ratio: 0.04},
		{Name: "NewOrder", Service: sim.Micros(20), Ratio: 0.44},
		{Name: "Delivery", Service: sim.Micros(88), Ratio: 0.04},
		{Name: "StockLevel", Service: sim.Micros(100), Ratio: 0.04},
	})
}

// Exp1 is Table 1's exponential workload with a 1µs mean.
func Exp1() *Workload {
	w := New("Exp1", []ClassInfo{{Name: "Exp", Service: sim.Micros(1), Ratio: 1}})
	w.expMean = sim.Micros(1)
	return w
}

// RocksDB returns Table 1's RocksDB workload with the given SCAN
// fraction (the paper evaluates 0.005 and 0.5): GET 1.2µs, SCAN 675µs.
func RocksDB(scanRatio float64) *Workload {
	if scanRatio <= 0 || scanRatio >= 1 {
		panic("workload: scanRatio must be in (0, 1)")
	}
	return New(fmt.Sprintf("RocksDB(%g%%SCAN)", scanRatio*100), []ClassInfo{
		{Name: "GET", Service: sim.Micros(1.2), Ratio: 1 - scanRatio},
		{Name: "SCAN", Service: sim.Micros(675), Ratio: scanRatio},
	})
}

// Fixed returns a single-class workload where every request needs
// exactly service time s; Figure 16's dispatcher-scalability experiment
// uses Fixed(1ms).
func Fixed(name string, s sim.Time) *Workload {
	return New(name, []ClassInfo{{Name: name, Service: s, Ratio: 1}})
}

// Bimodal builds a two-class workload: shortRatio of requests take
// short, the rest take long — the generic form of the paper's bimodal
// mixes for custom experiments.
func Bimodal(name string, short, long sim.Time, shortRatio float64) *Workload {
	if shortRatio <= 0 || shortRatio >= 1 {
		panic("workload: shortRatio must be in (0, 1)")
	}
	return New(name, []ClassInfo{
		{Name: "Short", Service: short, Ratio: shortRatio},
		{Name: "Long", Service: long, Ratio: 1 - shortRatio},
	})
}

// FromTrace builds an empirical single-class workload that samples
// service times uniformly from the given trace of observed durations —
// for replaying measured service-time distributions through the
// simulators. The trace must be non-empty with positive durations.
func FromTrace(name string, trace []sim.Time) *Workload {
	if len(trace) == 0 {
		panic("workload: empty trace")
	}
	var sum float64
	for _, s := range trace {
		if s <= 0 {
			panic("workload: non-positive service time in trace")
		}
		sum += float64(s)
	}
	w := New(name, []ClassInfo{{
		Name:    name,
		Service: sim.Time(sum/float64(len(trace)) + 0.5),
		Ratio:   1,
	}})
	w.trace = append([]sim.Time(nil), trace...)
	return w
}

// All returns the Table 1 workloads in presentation order.
func All() []*Workload {
	return []*Workload{
		ExtremeBimodal(), HighBimodal(), TPCC(), Exp1(),
		RocksDB(0.005), RocksDB(0.5),
	}
}

// Generator produces an open-loop Poisson arrival stream of requests
// drawn from a workload, mirroring the paper's client (§5.1): requests
// arrive under a Poisson process regardless of completions.
type Generator struct {
	W    *Workload
	rand *rng.Rand
	// meanGapNs is the mean inter-arrival gap for the target rate.
	meanGapNs float64
	nextID    uint64
	next      sim.Time
}

// NewGenerator returns a generator for rate requests/second.
func NewGenerator(w *Workload, rate float64, r *rng.Rand) *Generator {
	if rate <= 0 {
		panic("workload: rate must be positive")
	}
	g := &Generator{W: w, rand: r, meanGapNs: float64(sim.Second) / rate}
	g.next = g.gap()
	return g
}

func (g *Generator) gap() sim.Time {
	return sim.Time(g.rand.Exp(g.meanGapNs) + 0.5)
}

// Next returns the next request in arrival order. Arrival times are
// strictly increasing.
func (g *Generator) Next() Request {
	req := g.W.Sample(g.rand)
	req.ID = g.nextID
	g.nextID++
	req.Arrival = g.next
	d := g.gap()
	if d < 1 {
		d = 1
	}
	g.next += d
	return req
}
