package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestTable1Definitions(t *testing.T) {
	cases := []struct {
		w        *Workload
		nClasses int
		mean     float64 // µs
	}{
		{ExtremeBimodal(), 2, 0.995*0.3 + 0.005*509},
		{HighBimodal(), 2, 0.5*1 + 0.5*100},
		{TPCC(), 5, 0.44*5.7 + 0.04*6 + 0.44*20 + 0.04*88 + 0.04*100},
		{Exp1(), 1, 1},
		{RocksDB(0.005), 2, 0.995*1.2 + 0.005*675},
		{RocksDB(0.5), 2, 0.5*1.2 + 0.5*675},
	}
	for _, c := range cases {
		if got := len(c.w.Classes); got != c.nClasses {
			t.Errorf("%s: %d classes, want %d", c.w.Name, got, c.nClasses)
		}
		got := c.w.MeanService().Micros()
		if math.Abs(got-c.mean) > 0.01 {
			t.Errorf("%s: mean service %.3fµs, want %.3fµs", c.w.Name, got, c.mean)
		}
	}
}

func TestAllReturnsSixWorkloads(t *testing.T) {
	if got := len(All()); got != 6 {
		t.Fatalf("All returned %d workloads, want 6", got)
	}
}

func TestDispersionRatio(t *testing.T) {
	if got := Section2Bimodal().DispersionRatio(); got != 1000 {
		t.Fatalf("Section2Bimodal dispersion = %v, want 1000", got)
	}
	if got := Exp1().DispersionRatio(); got != 1 {
		t.Fatalf("Exp1 dispersion = %v, want 1", got)
	}
}

func TestSampleClassRatios(t *testing.T) {
	w := ExtremeBimodal()
	r := rng.New(42)
	const n = 400000
	counts := make([]int, len(w.Classes))
	for i := 0; i < n; i++ {
		req := w.Sample(r)
		counts[req.Class]++
		if want := w.Classes[req.Class].Service; req.Service != want {
			t.Fatalf("class %d service %d, want %d", req.Class, req.Service, want)
		}
	}
	longFrac := float64(counts[1]) / n
	if math.Abs(longFrac-0.005) > 0.001 {
		t.Fatalf("long fraction %v, want about 0.005", longFrac)
	}
}

func TestTPCCMixRatios(t *testing.T) {
	w := TPCC()
	r := rng.New(7)
	const n = 500000
	counts := make([]int, len(w.Classes))
	for i := 0; i < n; i++ {
		counts[w.Sample(r).Class]++
	}
	for i, c := range w.Classes {
		got := float64(counts[i]) / n
		if math.Abs(got-c.Ratio) > 0.005 {
			t.Errorf("class %s: observed ratio %v, want %v", c.Name, got, c.Ratio)
		}
	}
}

func TestExp1ServiceDistribution(t *testing.T) {
	w := Exp1()
	r := rng.New(9)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		req := w.Sample(r)
		if req.Service < 1 {
			t.Fatalf("service %d below 1ns floor", req.Service)
		}
		sum += float64(req.Service)
	}
	mean := sum / n
	if math.Abs(mean-1000) > 20 {
		t.Fatalf("Exp1 mean service %vns, want about 1000ns", mean)
	}
}

func TestMaxLoad(t *testing.T) {
	w := Fixed("unit", sim.Micros(1))
	// 16 cores at 1µs per job: 16M jobs/s.
	if got := w.MaxLoad(16); math.Abs(got-16e6) > 1 {
		t.Fatalf("MaxLoad = %v, want 16e6", got)
	}
}

func TestGeneratorRate(t *testing.T) {
	w := Fixed("unit", sim.Micros(1))
	r := rng.New(5)
	const rate = 1e6 // 1 Mrps
	g := NewGenerator(w, rate, r)
	const n = 200000
	var last sim.Time
	for i := 0; i < n; i++ {
		req, ok := g.Next()
		if !ok {
			t.Fatalf("open-loop stream blocked at request %d", i)
		}
		if req.Arrival <= last {
			t.Fatalf("arrivals not strictly increasing at request %d", i)
		}
		if req.ID != uint64(i) {
			t.Fatalf("request ID %d, want %d", req.ID, i)
		}
		last = req.Arrival
	}
	observedRate := float64(n) / last.Seconds()
	if math.Abs(observedRate-rate) > rate*0.02 {
		t.Fatalf("observed rate %v, want about %v", observedRate, rate)
	}
}

func TestGeneratorPoissonCV(t *testing.T) {
	// Inter-arrival gaps of a Poisson process have coefficient of
	// variation 1.
	g := NewGenerator(Fixed("unit", sim.Micros(1)), 1e6, rng.New(3))
	const n = 200000
	gaps := make([]float64, n)
	prev := sim.Time(0)
	for i := 0; i < n; i++ {
		req, _ := g.Next()
		gaps[i] = float64(req.Arrival - prev)
		prev = req.Arrival
	}
	var sum, sq float64
	for _, gp := range gaps {
		sum += gp
	}
	mean := sum / n
	for _, gp := range gaps {
		sq += (gp - mean) * (gp - mean)
	}
	cv := math.Sqrt(sq/n) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("inter-arrival CV %v, want about 1", cv)
	}
}

func TestInvalidWorkloadPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ratios!=1":    func() { New("bad", []ClassInfo{{Name: "a", Service: 1, Ratio: 0.5}}) },
		"zero ratio":   func() { New("bad", []ClassInfo{{Name: "a", Service: 1, Ratio: 0}, {Name: "b", Service: 1, Ratio: 1}}) },
		"scan ratio 0": func() { RocksDB(0) },
		"rate 0":       func() { NewGenerator(Fixed("x", 1), 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSampleClassInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		for _, w := range All() {
			for i := 0; i < 100; i++ {
				req := w.Sample(r)
				if int(req.Class) < 0 || int(req.Class) >= len(w.Classes) {
					return false
				}
				if req.Service <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBimodalGeneric(t *testing.T) {
	w := Bimodal("custom", sim.Micros(2), sim.Micros(200), 0.9)
	r := rng.New(1)
	counts := [2]int{}
	for i := 0; i < 100000; i++ {
		counts[w.Sample(r).Class]++
	}
	frac := float64(counts[0]) / 100000
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("short fraction %v, want 0.9", frac)
	}
	if got := w.DispersionRatio(); got != 100 {
		t.Fatalf("dispersion %v, want 100", got)
	}
}

func TestBimodalInvalidRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shortRatio=1 did not panic")
		}
	}()
	Bimodal("bad", 1, 2, 1)
}

func TestFromTraceSamplesTraceValues(t *testing.T) {
	trace := []sim.Time{100, 200, 300, 400}
	w := FromTrace("empirical", trace)
	if got := w.MeanService(); got != 250 {
		t.Fatalf("mean %v, want 250", got)
	}
	allowed := map[sim.Time]bool{100: true, 200: true, 300: true, 400: true}
	seen := map[sim.Time]int{}
	r := rng.New(2)
	for i := 0; i < 40000; i++ {
		s := w.Sample(r).Service
		if !allowed[s] {
			t.Fatalf("sampled service %d not in trace", s)
		}
		seen[s]++
	}
	for v, c := range seen {
		if c < 8000 || c > 12000 {
			t.Fatalf("value %d sampled %d/40000 times, want ~10000", v, c)
		}
	}
}

func TestFromTraceValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { FromTrace("x", nil) },
		"non-positive": func() { FromTrace("x", []sim.Time{5, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromTraceIsolatedFromCaller(t *testing.T) {
	trace := []sim.Time{100, 200}
	w := FromTrace("x", trace)
	trace[0] = 999999
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if s := w.Sample(r).Service; s != 100 && s != 200 {
			t.Fatalf("workload shares caller's slice: sampled %d", s)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(ExtremeBimodal(), 4e6, rng.New(1))
	for i := 0; i < b.N; i++ {
		_, _ = g.Next()
	}
}
