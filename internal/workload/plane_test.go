package workload

import (
	"math"
	"sort"
	"strconv"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// --- service-law fit tests -------------------------------------------------

// Pareto with a comfortable tail index: the sample mean must converge
// to the analytic mean alpha·xm/(alpha−1).
func TestParetoMomentsFit(t *testing.T) {
	s, err := ParseService("pareto:mean=10us,alpha=2.5")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		if v < 1 {
			t.Fatalf("sample %d below 1ns", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	want := float64(sim.Micros(10))
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("Pareto(α=2.5) sample mean %.0fns, want %.0fns ±5%%", mean, want)
	}
	if got := s.Mean(); got != sim.Micros(10) {
		t.Fatalf("Mean() = %v, want 10µs", got)
	}
}

// The tail index must match the configured alpha: the Hill estimator
// over the top order statistics recovers α within tolerance at a fixed
// seed, for both a moderate and a heavy tail.
func TestParetoTailIndexFit(t *testing.T) {
	for _, alpha := range []float64{1.4, 1.8, 2.5} {
		s, err := ParseService("pareto:mean=10us,alpha=" + trimFloat(alpha))
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(13)
		const n = 200000
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(s.Sample(r))
		}
		sort.Float64s(vals)
		// Hill estimator over the top k order statistics.
		const k = 2000
		xk := vals[n-k-1]
		var acc float64
		for _, v := range vals[n-k:] {
			acc += math.Log(v / xk)
		}
		hill := float64(k) / acc
		if math.Abs(hill-alpha)/alpha > 0.1 {
			t.Errorf("α=%g: Hill estimate %.3f, want within 10%%", alpha, hill)
		}
	}
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Lognormal: the log of the samples must be Normal(mu, sigma), and the
// sample mean must match the analytic mean exp(mu + sigma²/2).
func TestLognormalMomentsFit(t *testing.T) {
	s, err := ParseService("lognormal:mean=10us,sigma=1")
	if err != nil {
		t.Fatal(err)
	}
	ln := s.(lognormalSampler)
	r := rng.New(17)
	const n = 300000
	var sum, logSum, logSq float64
	for i := 0; i < n; i++ {
		v := float64(s.Sample(r))
		sum += v
		lv := math.Log(v)
		logSum += lv
		logSq += lv * lv
	}
	mean := sum / n
	want := float64(sim.Micros(10))
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("lognormal sample mean %.0fns, want %.0fns ±5%%", mean, want)
	}
	logMean := logSum / n
	logSD := math.Sqrt(logSq/n - logMean*logMean)
	if math.Abs(logMean-ln.mu) > 0.02*math.Abs(ln.mu) {
		t.Fatalf("log-mean %.4f, want mu %.4f", logMean, ln.mu)
	}
	if math.Abs(logSD-ln.sigma) > 0.05*ln.sigma {
		t.Fatalf("log-sd %.4f, want sigma %.4f", logSD, ln.sigma)
	}
}

// MeanService must report the empirical mean for trace-backed
// workloads. The trace here is drawn from the RocksDB mix, whose
// long-scan skew would make any non-empirical shortcut obvious.
func TestMeanServiceEmpiricalForTrace(t *testing.T) {
	src := RocksDB(0.005)
	r := rng.New(23)
	trace := make([]sim.Time, 20000)
	var sum float64
	for i := range trace {
		trace[i] = src.Sample(r).Service
		sum += float64(trace[i])
	}
	w := FromTrace("rocksdb-trace", trace)
	want := sim.Time(sum/float64(len(trace)) + 0.5)
	if got := w.MeanService(); got != want {
		t.Fatalf("MeanService = %v, want empirical mean %v", got, want)
	}
	// And MaxLoad must plan against that same empirical mean.
	if got, want := w.MaxLoad(16), 16/want.Seconds(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("MaxLoad = %v, want %v", got, want)
	}
}

// The binary-search class pick must agree with the historical linear
// scan for every draw, including the cum boundaries.
func TestSampleBinarySearchMatchesLinearScan(t *testing.T) {
	for _, w := range All() {
		shadow := rng.New(77)
		r := rng.New(77)
		for i := 0; i < 20000; i++ {
			u := shadow.Float64()
			cls := 0
			for cls < len(w.cum)-1 && u >= w.cum[cls] {
				cls++
			}
			req := w.Sample(r)
			if int(req.Class) != cls {
				t.Fatalf("%s draw %d (u=%v): binary pick %d, linear pick %d", w.Name, i, u, req.Class, cls)
			}
			// Keep the shadow stream aligned through the service draw.
			if c := w.Classes[cls]; c.Sampler != nil {
				c.Sampler.Sample(shadow)
			}
		}
	}
}

// --- arrival-process fit tests ---------------------------------------------

// streamFor builds a stream for arrival-process tests.
func streamFor(t *testing.T, arrivals string, rate float64) *Stream {
	t.Helper()
	return Spec{Workload: Fixed("unit", sim.Micros(1)), Rate: rate, Arrivals: arrivals}.Stream(rng.New(19))
}

// MMPP must preserve the configured mean rate while spending the duty
// fraction of time in the burst state.
func TestMMPPOccupancyAndRateFit(t *testing.T) {
	const rate = 1e6
	s := streamFor(t, "mmpp:burst=10,duty=0.2,cycle=1ms", rate)
	// Burst clustering makes the count variance per cycle large, so the
	// rate integral needs a few thousand modulation cycles to converge.
	const n = 2_000_000 // ~2000 cycles at 1 Mrps
	var last sim.Time
	for i := 0; i < n; i++ {
		req, ok := s.Next()
		if !ok {
			t.Fatal("open-loop mmpp stream blocked")
		}
		if req.Arrival <= last && i > 0 {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
		last = req.Arrival
	}
	observed := float64(n) / last.Seconds()
	if math.Abs(observed-rate)/rate > 0.05 {
		t.Fatalf("mmpp mean rate %.0f, want %.0f ±5%%", observed, rate)
	}
	m := s.proc.(*mmpp)
	if occ := m.Occupancy(); math.Abs(occ-0.2) > 0.05 {
		t.Fatalf("burst-state occupancy %.3f, want 0.2 ±0.05", occ)
	}
}

// The diurnal curve integrates to the configured mean rate over whole
// periods, and its within-period rate actually swings: the peak-phase
// arrival count must exceed the trough-phase count by the amplitude.
func TestDiurnalRateIntegralFit(t *testing.T) {
	const rate = 1e6
	const period = sim.Time(1_000_000) // 1ms
	s := streamFor(t, "diurnal:amp=0.8,period=1ms", rate)
	const n = 400000 // ~400 periods
	peak, trough := 0, 0
	var last sim.Time
	for i := 0; i < n; i++ {
		req, ok := s.Next()
		if !ok {
			t.Fatal("open-loop diurnal stream blocked")
		}
		last = req.Arrival
		switch phase := float64(req.Arrival%period) / float64(period); {
		case phase >= 0.15 && phase < 0.35: // around sin peak at 0.25
			peak++
		case phase >= 0.65 && phase < 0.85: // around sin trough at 0.75
			trough++
		}
	}
	// Completed periods only: the tail fraction biases the integral.
	periods := float64(last / period)
	observed := float64(n) / (periods * period.Seconds())
	if math.Abs(observed-rate)/rate > 0.05 {
		t.Fatalf("diurnal mean rate %.0f, want %.0f ±5%%", observed, rate)
	}
	// Expected ratio: ∫(1+0.8 sin) over the peak window vs the trough
	// window ≈ (1+0.76)/(1−0.76) ≈ 7.4. Demand at least 4x.
	if ratio := float64(peak) / float64(trough); ratio < 4 {
		t.Fatalf("peak/trough arrival ratio %.2f, want > 4 (rate curve too flat)", ratio)
	}
}

// Closed-loop semantics: exactly `users` requests issue before the
// stream blocks; each Done releases exactly one more.
func TestClosedLoopBlocksAtUsers(t *testing.T) {
	const users = 8
	s := streamFor(t, "closed:users=8,think=10us", 1e6)
	if !s.ClosedLoop() {
		t.Fatal("closed stream not marked ClosedLoop")
	}
	var reqs []Request
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		reqs = append(reqs, req)
		if len(reqs) > users {
			t.Fatalf("stream issued %d requests with %d users and no feedback", len(reqs), users)
		}
	}
	if len(reqs) != users {
		t.Fatalf("stream issued %d requests before blocking, want %d", len(reqs), users)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			t.Fatal("closed-loop arrivals not strictly increasing")
		}
	}
	// One retirement unblocks exactly one follow-up request.
	retire := reqs[users-1].Arrival + sim.Micros(5)
	if !s.Done(retire) {
		t.Fatal("Done on a blocked stream did not report ready")
	}
	req, ok := s.Next()
	if !ok {
		t.Fatal("stream still blocked after Done")
	}
	if req.Arrival <= retire {
		t.Fatalf("follow-up at %v, want after retirement %v (think time)", req.Arrival, retire)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("one Done released more than one request")
	}
}

// Done on an open-loop stream must be a cheap no-op that never reports
// ready.
func TestOpenLoopDoneIsNoop(t *testing.T) {
	s := streamFor(t, "poisson", 1e6)
	if s.ClosedLoop() {
		t.Fatal("poisson marked ClosedLoop")
	}
	if s.Done(123) {
		t.Fatal("open-loop Done reported ready")
	}
}

// Every arrival process must be allocation-free in steady state — the
// property the workload/arrival-stream bench point guards end to end.
func TestStreamSteadyStateAllocs(t *testing.T) {
	for _, arrivals := range []string{"poisson", "mmpp", "diurnal"} {
		s := streamFor(t, arrivals, 1e6)
		StreamChurn(s, 1000) // warm
		if allocs := testing.AllocsPerRun(100, func() {
			if _, ok := s.Next(); !ok {
				t.Fatal("stream blocked")
			}
		}); allocs != 0 {
			t.Errorf("%s: %.1f allocs per Next, want 0", arrivals, allocs)
		}
	}
	// Closed loop with feedback: the Next/Done cycle must also be free.
	s := streamFor(t, "closed:users=4,think=1us", 1e6)
	var ts sim.Time
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		ts = req.Arrival
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ts += sim.Micros(1)
		s.Done(ts)
		if _, ok := s.Next(); !ok {
			t.Fatal("closed stream blocked after Done")
		}
	}); allocs != 0 {
		t.Errorf("closed: %.1f allocs per Done+Next cycle, want 0", allocs)
	}
}

// --- spec / tenants --------------------------------------------------------

func TestTenantSplitRatios(t *testing.T) {
	tenants, err := ParseTenants("big=0.9@0.5,small=0.1@0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 || tenants[0].Name != "big" || tenants[0].Share != 0.5 ||
		tenants[1].Ratio != 0.1 || tenants[1].Share != 0.25 {
		t.Fatalf("parsed %+v", tenants)
	}
	s := Spec{
		Workload: TPCC(), Rate: 1e6, Tenants: tenants,
	}.Stream(rng.New(29))
	const n = 200000
	counts := [2]int{}
	for i := 0; i < n; i++ {
		req, _ := s.Next()
		if req.Tenant < 0 || req.Tenant >= 2 {
			t.Fatalf("tenant index %d out of range", req.Tenant)
		}
		counts[req.Tenant]++
	}
	if frac := float64(counts[1]) / n; math.Abs(frac-0.1) > 0.005 {
		t.Fatalf("small-tenant fraction %.4f, want 0.1 ±0.005", frac)
	}
}

func TestSpecValidation(t *testing.T) {
	base := Spec{Workload: Fixed("unit", sim.Micros(1)), Rate: 1e6}
	for name, mutate := range map[string]func(*Spec){
		"nil workload":    func(s *Spec) { s.Workload = nil },
		"zero rate":       func(s *Spec) { s.Rate = 0 },
		"negative rate":   func(s *Spec) { s.Rate = -1 },
		"unknown process": func(s *Spec) { s.Arrivals = "fractal" },
		"unknown param":   func(s *Spec) { s.Arrivals = "mmpp:bursty=10" },
		"bad tenants":     func(s *Spec) { s.Tenants = []Tenant{{Name: "a", Ratio: 0.5}} },
		"dup tenants": func(s *Spec) {
			s.Tenants = []Tenant{{Name: "a", Ratio: 0.5}, {Name: "a", Ratio: 0.5}}
		},
		"over-shared": func(s *Spec) {
			s.Tenants = []Tenant{{Name: "a", Ratio: 0.5, Share: 0.7}, {Name: "b", Ratio: 0.5, Share: 0.7}}
		},
	} {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", name)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Stream did not panic", name)
				}
			}()
			s.Stream(rng.New(1))
		}()
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// ParseService and ParseArrivals must reject typoed parameter keys
// instead of silently using defaults.
func TestParseRejectsUnknownParams(t *testing.T) {
	if _, err := ParseService("pareto:mean=10us,aplha=1.4"); err == nil {
		t.Error("typoed pareto param accepted")
	}
	if _, err := ParseArrivals("closed:users=4,thnik=1us", 1e6); err == nil {
		t.Error("typoed closed param accepted")
	}
	if _, err := ParseArrivals("poisson", 0); err == nil {
		t.Error("ParseArrivals accepted rate 0")
	}
	if _, err := ParseService("pareto:alpha=0.9"); err == nil {
		t.Error("pareto alpha <= 1 accepted (mean diverges)")
	}
}

// FromLaw builds a runnable single-class workload for any named law.
func TestFromLawWorkloads(t *testing.T) {
	for _, spec := range []string{"det:s=5us", "exp:mean=2us", "pareto:mean=10us,alpha=1.4", "lognormal:mean=10us,sigma=1.5"} {
		w, err := FromLaw(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(w.Classes) != 1 {
			t.Fatalf("%s: %d classes", spec, len(w.Classes))
		}
		if w.MeanService() <= 0 {
			t.Fatalf("%s: non-positive mean", spec)
		}
		r := rng.New(3)
		for i := 0; i < 100; i++ {
			if req := w.Sample(r); req.Service <= 0 {
				t.Fatalf("%s: non-positive service", spec)
			}
		}
	}
	if _, err := FromLaw("nope"); err == nil {
		t.Error("unknown law accepted")
	}
}

// The listing helpers drive the tqsim `list` subcommands.
func TestCatalogueListings(t *testing.T) {
	if got := len(ArrivalNames()); got != 4 {
		t.Fatalf("ArrivalNames: %d entries, want 4", got)
	}
	if got := len(ServiceNames()); got != 4 {
		t.Fatalf("ServiceNames: %d entries, want 4", got)
	}
}
