// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns labelled series (or rows)
// that the cmd tools print, the root benchmark suite reports, and
// EXPERIMENTS.md records. Drivers take a Scale so tests can run cheap
// versions of the same code paths the full harness uses.
package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/cachesim"
	"repro/internal/cluster"
	"repro/internal/instrument"
	"repro/internal/kvstore"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale sets simulated run length and sweep resolution.
type Scale struct {
	// Duration and Warmup are per-point simulated times.
	Duration sim.Time
	Warmup   sim.Time
	// Points is the number of load points per curve.
	Points int
	// SuiteScale scales the instrumentation benchmark programs.
	SuiteScale float64
	// Seed makes every driver deterministic. Each sweep point derives
	// its own seed from (Seed, pointIndex), so results do not depend on
	// how many workers run the sweep.
	Seed uint64
	// Workers bounds sweep parallelism: 0 uses GOMAXPROCS, 1 forces the
	// sequential path, higher values size the worker pool explicitly.
	Workers int
	// Progress, when non-nil, observes every completed sweep point
	// (serialized, in completion order) — the cmd tools print these so
	// long Full runs are observable.
	Progress func(cluster.SweepPoint)
	// SLOs, when non-empty, sets per-class sojourn targets (key "*" is
	// the wildcard; "tenant:class" and "tenant:*" scope a target to one
	// tenant) on every machine the drivers sweep, so each Result
	// carries goodput alongside throughput. Empty leaves every figure
	// byte-identical to an SLO-less run: goodput then just equals
	// throughput.
	SLOs map[string]sim.Time
	// Arrivals, when non-empty, swaps the arrival process under every
	// figure (a workload.ParseArrivals spec: "poisson",
	// "mmpp:burst=10,duty=0.1,cycle=1ms", ...). Empty keeps the paper's
	// Poisson default and every figure byte-identical to the
	// pre-arrival-axis harness.
	Arrivals string
	// Tenants, when non-empty, splits every figure's load across tenant
	// classes (ratios, optional admission shares) and adds per-tenant
	// ledgers to each Result.
	Tenants []workload.Tenant
}

// opts translates the scale into sweep-runner options.
func (sc Scale) opts() cluster.SweepOptions {
	return cluster.SweepOptions{Workers: sc.Workers, OnPoint: sc.Progress}
}

// effectiveWorkers resolves Workers the way the sweep runner will.
func (sc Scale) effectiveWorkers() int {
	if sc.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return sc.Workers
}

// withOverrides applies the scale's workload-plane overrides — SLO
// targets, arrival process, tenant split — to every machine the
// factory builds; a no-op when none are set, so default figures stay
// byte-identical.
func (sc Scale) withOverrides(mf cluster.MachineFactory) cluster.MachineFactory {
	if len(sc.SLOs) > 0 {
		inner := mf
		mf = func() cluster.Machine { return cluster.WithSLOs(inner(), sc.SLOs) }
	}
	if sc.Arrivals != "" || len(sc.Tenants) > 0 {
		inner := mf
		mf = func() cluster.Machine { return cluster.WithArrivals(inner(), sc.Arrivals, sc.Tenants) }
	}
	return mf
}

// sweep runs one load sweep at the scale's parallelism, one fresh
// machine per point.
func (sc Scale) sweep(mf cluster.MachineFactory, w *workload.Workload, rates []float64) []*cluster.Result {
	return cluster.ParallelSweep(sc.withOverrides(mf), w, rates, sc.Duration, sc.Warmup, sc.Seed, sc.opts())
}

// maxRateUnder finds the highest rate satisfying ok. With one worker it
// uses the sequential scan (which stops at the knee and wastes no
// points); with more it speculatively runs the whole grid in parallel.
// Both return the same rate for the same grid and seed.
func (sc Scale) maxRateUnder(mf cluster.MachineFactory, w *workload.Workload, rates []float64, ok func(*cluster.Result) bool) float64 {
	mf = sc.withOverrides(mf)
	if sc.effectiveWorkers() == 1 {
		return cluster.MaxRateUnder(mf(), w, rates, sc.Duration, sc.Warmup, sc.Seed, ok)
	}
	return cluster.SpeculativeMaxRateUnder(mf, w, rates, sc.Duration, sc.Warmup, sc.Seed, ok, sc.opts())
}

// Quick is the scale used by tests and the root benchmarks: small but
// large enough that every qualitative shape survives.
var Quick = Scale{
	Duration:   60 * sim.Millisecond,
	Warmup:     6 * sim.Millisecond,
	Points:     8,
	SuiteScale: 0.1,
	Seed:       1,
}

// Full approximates the paper's methodology (the paper runs 10s per
// point and discards the first 10%).
var Full = Scale{
	Duration:   400 * sim.Millisecond,
	Warmup:     40 * sim.Millisecond,
	Points:     14,
	SuiteScale: 1,
	Seed:       1,
}

// Fig1 reproduces Figure 1: p99.9 slowdown vs load under idealized
// centralized PS with zero overhead, for quantum sizes 0.5-10µs, on
// the §2 extreme bimodal workload with 16 cores.
func Fig1(sc Scale) []stats.Series {
	w := workload.Section2Bimodal()
	rates := cluster.RatesUpTo(0.92*w.MaxLoad(16), sc.Points)
	var out []stats.Series
	for _, qUs := range []float64{0.5, 1, 2, 5, 10} {
		results := sc.sweep(func() cluster.Machine {
			return cluster.NewCentralizedPS(16, sim.Micros(qUs), 0)
		}, w, rates)
		out = append(out, cluster.SlowdownSeries(fmt.Sprintf("q=%gus", qUs), "", results))
	}
	return out
}

// Fig2 reproduces Figure 2: the maximum rate sustaining p99.9 slowdown
// <= 10, as a function of quantum size, for preemption overheads 0,
// 0.1µs and 1µs.
func Fig2(sc Scale) []stats.Series {
	w := workload.Section2Bimodal()
	rates := cluster.RatesUpTo(w.MaxLoad(16), 2*sc.Points)
	quanta := []float64{0.5, 1, 2, 3, 5, 10}
	var out []stats.Series
	for _, ovUs := range []float64{0, 0.1, 1} {
		s := stats.Series{Label: fmt.Sprintf("overhead=%gus", ovUs)}
		for _, qUs := range quanta {
			best := sc.maxRateUnder(func() cluster.Machine {
				return cluster.NewCentralizedPS(16, sim.Micros(qUs), sim.Micros(ovUs))
			}, w, rates, func(r *cluster.Result) bool { return r.P999Slowdown("") <= 10 })
			s.Append(qUs, best)
		}
		out = append(out, s)
	}
	return out
}

// Fig4 reproduces Figure 4: long-job p99.9 slowdown for centralized PS
// vs two-level scheduling with MSQ or random tie-breaking, all with
// zero mechanism overheads.
func Fig4(sc Scale) []stats.Series {
	w := workload.Section2Bimodal()
	q := sim.Micros(1)
	rates := cluster.RatesUpTo(0.9*w.MaxLoad(16), sc.Points)
	var out []stats.Series
	for _, name := range []string{"ct-ps", "tls-jsq-msq", "tls-jsq-rand"} {
		e := cluster.MustLookup(name)
		mf := func() cluster.Machine { return e.NewQ(q) }
		results := sc.sweep(mf, w, rates)
		out = append(out, cluster.SlowdownSeries(mf().Name(), "Long", results))
	}
	return out
}

// Fig5 reproduces Figure 5: TQ's short-job p99.9 sojourn time vs rate
// on Extreme Bimodal, for quanta 0.5-10µs. Fig6 is the long-job view.
func Fig5(sc Scale) []stats.Series { return tqQuantumSweep(sc, "Short") }

// Fig6 reproduces Figure 6 (see Fig5).
func Fig6(sc Scale) []stats.Series { return tqQuantumSweep(sc, "Long") }

func tqQuantumSweep(sc Scale, class string) []stats.Series {
	w := workload.ExtremeBimodal()
	rates := cluster.RatesUpTo(0.95*w.MaxLoad(16), sc.Points)
	var out []stats.Series
	for _, qUs := range []float64{0.5, 1, 2, 5, 10} {
		results := sc.sweep(func() cluster.Machine {
			p := cluster.NewTQParams()
			p.Quantum = sim.Micros(qUs)
			return cluster.NewTQ(p)
		}, w, rates)
		out = append(out, cluster.SojournSeries(fmt.Sprintf("q=%gus", qUs), class, results))
	}
	return out
}

// SystemComparison holds one cross-system figure: per class, one
// latency curve per system.
type SystemComparison struct {
	Workload string
	// PerClass maps class name to the systems' curves.
	PerClass map[string][]stats.Series
	// OverallSlowdown, when set, is the pooled p99.9 slowdown curve
	// per system (reported for TPC-C, Figure 8).
	OverallSlowdown []stats.Series
	// Goodput and DropRate are the overload companions to the latency
	// curves, one series per system: survivor-only percentiles flatten
	// exactly where the RX rings start shedding load, and these curves
	// show it. Without Scale.SLOs, goodput equals throughput.
	Goodput  []stats.Series
	DropRate []stats.Series
	// OptimalityGap, when set (CompareMachines fills it; the figure
	// drivers leave it nil), maps class name to one curve per system of
	// (rate, p99 sojourn ÷ oracle-srpt's p99 sojourn at the same rate) —
	// the UPS-style distance from the clairvoyant baseline. 1.0 means
	// the blind scheduler matched the oracle; a point is 0 when the
	// oracle recorded no completions for the class at that rate.
	OptimalityGap map[string][]stats.Series
	// PerTenant, when Scale.Tenants splits the load, maps tenant name to
	// one p99.9-sojourn curve per system, pooled over classes — the
	// per-tenant view of the same sweeps.
	PerTenant map[string][]stats.Series
}

// system is one column of a cross-system comparison: a display label
// plus a per-point machine factory.
type system struct {
	label string
	mf    cluster.MachineFactory
}

// registrySystem resolves a registry name into a comparison column,
// labelled with the given name. A positive quantum parameterizes the
// machine through its Entry.NewQ constructor (machines without a
// quantum knob keep their defaults).
func registrySystem(label, name string, q sim.Time) system {
	e := cluster.MustLookup(name)
	mf := e.New
	if q > 0 && e.NewQ != nil {
		mf = func() cluster.Machine { return e.NewQ(q) }
	}
	return system{label: label, mf: mf}
}

// compareSystems sweeps TQ, Shinjuku (at its per-workload quantum) and
// Caladan (better of its two modes per §5.1, judged on the figure's
// first class) over the workload. TQ and Shinjuku come from the
// registry; Caladan keeps its class-judged factory because the
// registry default judges by throughput.
func compareSystems(sc Scale, w *workload.Workload, shinjukuQ sim.Time, classes []string, slowdown bool) SystemComparison {
	systems := []system{
		registrySystem("TQ", "tq", 0),
		registrySystem("Shinjuku", "shinjuku", shinjukuQ),
		{label: "Caladan", mf: func() cluster.Machine { return cluster.NewBestCaladan(classes[0]) }},
	}
	return compareMachines(sc, w, classes, slowdown, false, systems)
}

// CompareMachines sweeps registry machines (default parameters, display
// names as labels) side by side over the workload — the registry-driven
// generalization behind tqsim -machines. Classes defaulting to all of
// the workload's. The comparison carries OptimalityGap curves against
// the clairvoyant oracle-srpt baseline.
func CompareMachines(sc Scale, w *workload.Workload, classes []string, names ...string) SystemComparison {
	return CompareMachinesD(sc, w, classes, "", names...)
}

// CompareMachinesD is CompareMachines with the registry's second
// dimension: a non-empty discipline (a pifo name: rr, fcfs, srpt, edf,
// las, prio-age) builds every named machine through its Entry.NewD
// constructor. It panics if a named entry has no discipline knob —
// callers exposing this to users (tqsim -discipline) pre-check NewD and
// report the offending name instead.
func CompareMachinesD(sc Scale, w *workload.Workload, classes []string, discipline string, names ...string) SystemComparison {
	if len(classes) == 0 {
		for _, c := range w.Classes {
			classes = append(classes, c.Name)
		}
	}
	var systems []system
	for _, n := range names {
		e := cluster.MustLookup(n)
		mf := e.New
		if discipline != "" {
			if e.NewD == nil {
				panic("experiments: machine " + n + " has no discipline knob (Entry.NewD is nil)")
			}
			d := discipline
			mf = func() cluster.Machine { return e.NewD(d) }
		}
		systems = append(systems, system{label: mf().Name(), mf: mf})
	}
	return compareMachines(sc, w, classes, false, true, systems)
}

// compareMachines runs one sweep per system and assembles the figure's
// latency, slowdown, goodput, and drop-rate curves. With withGap it
// additionally sweeps the clairvoyant oracle-srpt baseline over the
// same rates and fills OptimalityGap; the paper-figure drivers pass
// false so Figures 7-10 stay byte-identical to the pre-oracle harness.
func compareMachines(sc Scale, w *workload.Workload, classes []string, slowdown, withGap bool, systems []system) SystemComparison {
	rates := cluster.RatesUpTo(0.98*w.MaxLoad(16), sc.Points)
	cmp := SystemComparison{Workload: w.Name, PerClass: map[string][]stats.Series{}}

	results := make([][]*cluster.Result, len(systems))
	for i, s := range systems {
		results[i] = sc.sweep(s.mf, w, rates)
	}
	for _, class := range classes {
		for i, s := range systems {
			cmp.PerClass[class] = append(cmp.PerClass[class], cluster.LatencySeries(s.label, class, results[i]))
		}
	}
	for i, s := range systems {
		if slowdown {
			cmp.OverallSlowdown = append(cmp.OverallSlowdown, cluster.SlowdownSeries(s.label, "", results[i]))
		}
		cmp.Goodput = append(cmp.Goodput, cluster.GoodputSeries(s.label, results[i]))
		cmp.DropRate = append(cmp.DropRate, cluster.DropRateSeries(s.label, results[i]))
	}
	if withGap {
		oracle := sc.sweep(cluster.MustLookup("oracle-srpt").New, w, rates)
		cmp.OptimalityGap = map[string][]stats.Series{}
		for _, class := range classes {
			for i, s := range systems {
				cmp.OptimalityGap[class] = append(cmp.OptimalityGap[class],
					gapSeries(s.label, class, results[i], oracle))
			}
		}
	}
	if len(sc.Tenants) > 0 {
		cmp.PerTenant = map[string][]stats.Series{}
		for ti, tn := range sc.Tenants {
			for i, s := range systems {
				ser := stats.Series{Label: s.label}
				for _, r := range results[i] {
					y := 0.0
					if ti < len(r.PerTenant) {
						y = r.PerTenant[ti].Sojourn.P999() / 1e3 // ns → µs
					}
					ser.Append(r.Config.Rate, y)
				}
				cmp.PerTenant[tn.Name] = append(cmp.PerTenant[tn.Name], ser)
			}
		}
	}
	return cmp
}

// gapSeries divides a system's p99 sojourn curve by the oracle's,
// point by point. p99 rather than p99.9: the gap table reads at two
// rates, and the coarser tail is stable at test scales too.
func gapSeries(label, class string, sys, oracle []*cluster.Result) stats.Series {
	s := stats.Series{Label: label}
	for i, r := range sys {
		base := oracle[i].P99SojournUs(class)
		g := 0.0
		if base > 0 {
			g = r.P99SojournUs(class) / base
		}
		s.Append(r.Config.Rate, g)
	}
	return s
}

// GapRow is one machine's optimality gap at the two headline operating
// points: mid-load (55% of the 16-core saturation rate) and the
// overload knee (90% — where the baselines' tails have blown up but no
// RX ring drops yet, so survivor-only percentiles are still honest;
// past saturation a machine that sheds load reports flattened tails
// over its survivors and the ratio stops meaning anything).
type GapRow struct {
	// Name is the registry key; Display the machine's Name().
	Name, Display string
	// Mid and Over are p99-sojourn ratios vs oracle-srpt for the table's
	// class (0 when the oracle saw no completions for the class).
	Mid, Over float64
}

// OptimalityGapTable runs every named registry machine and the
// clairvoyant oracle at mid-load and the overload knee on the workload
// and returns one gap row per machine for the given class — the
// UPS-style "price of blindness" table EXPERIMENTS.md records. The
// oracle's own row is the sanity check: identical sweeps divide to
// exactly 1.
func OptimalityGapTable(sc Scale, w *workload.Workload, class string, names ...string) []GapRow {
	rates := []float64{0.55 * w.MaxLoad(16), 0.9 * w.MaxLoad(16)}
	oracle := sc.sweep(cluster.MustLookup("oracle-srpt").New, w, rates)
	rows := make([]GapRow, 0, len(names))
	for _, n := range names {
		e := cluster.MustLookup(n)
		res := sc.sweep(e.New, w, rates)
		g := gapSeries(n, class, res, oracle)
		rows = append(rows, GapRow{Name: n, Display: e.New().Name(), Mid: g.Y[0], Over: g.Y[1]})
	}
	return rows
}

// Fig7 reproduces Figure 7: TQ vs Shinjuku vs Caladan on Extreme and
// High Bimodal (Shinjuku at its 5µs sweet spot), short and long
// classes.
func Fig7(sc Scale) []SystemComparison {
	return []SystemComparison{
		compareSystems(sc, workload.ExtremeBimodal(), sim.Micros(5), []string{"Short", "Long"}, false),
		compareSystems(sc, workload.HighBimodal(), sim.Micros(5), []string{"Short", "Long"}, false),
	}
}

// Fig8 reproduces Figure 8: TPC-C with Shinjuku at 10µs, per-class
// tails for the shortest and longest transactions plus the overall
// slowdown.
func Fig8(sc Scale) SystemComparison {
	return compareSystems(sc, workload.TPCC(), sim.Micros(10), []string{"Payment", "StockLevel"}, true)
}

// Fig9 reproduces Figure 9: Exp(1) with Shinjuku at 10µs.
func Fig9(sc Scale) SystemComparison {
	return compareSystems(sc, workload.Exp1(), sim.Micros(10), []string{"Exp"}, false)
}

// Fig10 reproduces Figure 10: RocksDB at 0.5% and 50% SCAN with
// Shinjuku at 15µs.
func Fig10(sc Scale) []SystemComparison {
	return []SystemComparison{
		compareSystems(sc, workload.RocksDB(0.005), sim.Micros(15), []string{"GET", "SCAN"}, false),
		compareSystems(sc, workload.RocksDB(0.5), sim.Micros(15), []string{"GET", "SCAN"}, false),
	}
}

// Fig11 reproduces Figure 11: TQ vs its forced-multitasking ablations
// (TQ-IC, TQ-SLOW-YIELD, TQ-TIMING) on RocksDB 0.5% SCAN; GET curves.
func Fig11(sc Scale) []stats.Series {
	return tqVariantSweep(sc, []func() *cluster.TQ{
		func() *cluster.TQ { return cluster.NewTQ(cluster.NewTQParams()) },
		func() *cluster.TQ { return cluster.NewTQIC(cluster.NewTQParams()) },
		func() *cluster.TQ { return cluster.NewTQSlowYield(cluster.NewTQParams()) },
		func() *cluster.TQ { return cluster.NewTQTiming(cluster.NewTQParams()) },
	})
}

// Fig12 reproduces Figure 12: TQ vs its two-level-scheduling ablations
// (TQ-RAND, TQ-POWER-TWO, TQ-FCFS) on RocksDB 0.5% SCAN; GET curves.
func Fig12(sc Scale) []stats.Series {
	return tqVariantSweep(sc, []func() *cluster.TQ{
		func() *cluster.TQ { return cluster.NewTQ(cluster.NewTQParams()) },
		func() *cluster.TQ { return cluster.NewTQRand(cluster.NewTQParams()) },
		func() *cluster.TQ { return cluster.NewTQPowerTwo(cluster.NewTQParams()) },
		func() *cluster.TQ { return cluster.NewTQFCFS(cluster.NewTQParams()) },
	})
}

func tqVariantSweep(sc Scale, systems []func() *cluster.TQ) []stats.Series {
	w := workload.RocksDB(0.005)
	rates := cluster.RatesUpTo(0.95*w.MaxLoad(16), sc.Points)
	var out []stats.Series
	for _, mk := range systems {
		results := sc.sweep(func() cluster.Machine { return mk() }, w, rates)
		out = append(out, cluster.SojournSeries(mk().Name(), "GET", results))
	}
	return out
}

// Fig13 reproduces Figure 13: TLS pointer-chase access latency vs
// array size for quanta 0.5, 2 and 16µs.
func Fig13(accesses int) []stats.Series {
	var out []stats.Series
	for _, qNs := range []float64{500, 2000, 16000} {
		s := stats.Series{Label: fmt.Sprintf("TLS-%gus", qNs/1000)}
		for _, size := range cachesim.ArraySizes() {
			cfg := cachesim.DefaultChaseConfig(cachesim.TLS, qNs, size)
			if accesses > 0 {
				cfg.WarmupAccesses = accesses / 3
				cfg.MeasuredAccesses = accesses
			}
			res := cachesim.RunChase(cfg)
			s.Append(float64(size), res.AvgLatencyNs)
		}
		out = append(out, s)
	}
	return out
}

// Fig14 reproduces Figure 14: TLS vs CT access latency at 2µs quanta.
func Fig14(accesses int) []stats.Series {
	var out []stats.Series
	for _, fw := range []cachesim.Framework{cachesim.TLS, cachesim.CT} {
		s := stats.Series{Label: fw.String() + "-2us"}
		for _, size := range cachesim.ArraySizes() {
			cfg := cachesim.DefaultChaseConfig(fw, 2000, size)
			if accesses > 0 {
				cfg.WarmupAccesses = accesses / 3
				cfg.MeasuredAccesses = accesses
			}
			res := cachesim.RunChase(cfg)
			s.Append(float64(size), res.AvgLatencyNs)
		}
		out = append(out, s)
	}
	return out
}

// Fig15Result holds the reuse-distance histograms of the KV store's
// GET and SCAN operations (distances in bytes: distinct lines × 64).
type Fig15Result struct {
	GET, SCAN *stats.Histogram
	// FracAbove8KB per operation — the statistic §5.5.2 quotes (3.7%
	// and 4.5% in the paper).
	GETAbove8KB, SCANAbove8KB float64
}

// Fig15 reproduces Figure 15 by tracing the in-memory KV store
// substitute for RocksDB: load keys, then measure reuse distances of
// GET and SCAN address streams.
func Fig15(keys, gets, scans int, seed uint64) Fig15Result {
	makeHist := func() *stats.Histogram { return stats.NewHistogram(64, 2, 22) }
	res := Fig15Result{GET: makeHist(), SCAN: makeHist()}

	var tracker *cachesim.ReuseTracker
	var hist *stats.Histogram
	store := kvstore.New(kvstore.Config{
		Seed: seed,
		Trace: func(addr uint64, size int) {
			if tracker == nil {
				return
			}
			for off := 0; off < size; off += 64 {
				d := tracker.Access(addr + uint64(off))
				if d >= 0 {
					hist.Add(float64(d) * 64)
				}
			}
		},
	})
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%09d", i)) }
	for i := 0; i < keys; i++ {
		store.Put(key(i), []byte(fmt.Sprintf("value-%09d-xxxxxxxxxxxxxxxx", i)))
	}
	store.Flush()

	r := rng.New(seed)
	// Each operation also touches its job-local working set — request
	// parse, stack frames, response formatting — which the paper's Pin
	// tool traces but the store's structural trace hook cannot see.
	// These accesses hit the same few KB every operation (tiny reuse
	// distances), exactly the hot fraction that makes real GET/SCAN
	// jobs insensitive to quantum changes.
	const scratchBase = uint64(1) << 40
	const scratchLines = 48 // ≈3KB of per-job hot data
	touchScratch := func() {
		if tracker == nil {
			return
		}
		for l := 0; l < scratchLines; l++ {
			d := tracker.Access(scratchBase + uint64(l)*64)
			if d >= 0 {
				hist.Add(float64(d) * 64)
			}
		}
	}
	// GET phase: each operation is one job; intra-job locality is what
	// the figure studies, so the tracker persists across the phase
	// (inter-job reuse is part of the address stream, as with MICA).
	// Scratch is touched twice per operation — request parsing before
	// the lookup, response formatting after — as the real handler
	// does.
	tracker, hist = cachesim.NewReuseTracker(), res.GET
	for i := 0; i < gets; i++ {
		touchScratch()
		store.Get(key(r.Intn(keys)))
		touchScratch()
	}
	tracker, hist = cachesim.NewReuseTracker(), res.SCAN
	for i := 0; i < scans; i++ {
		touchScratch()
		store.Scan(key(r.Intn(keys)), 400, func(_, _ []byte) bool {
			touchScratch()
			return true
		})
		touchScratch()
	}
	tracker = nil

	res.GETAbove8KB = res.GET.FractionAbove(8192)
	res.SCANAbove8KB = res.SCAN.FractionAbove(8192)
	return res
}

// Fig16 reproduces Figure 16: the maximum number of worker cores whose
// quanta the system can schedule within 10% of the target, for target
// quanta 0.5-5µs, comparing Shinjuku's centralized preemption against
// TQ's self-scheduling workers.
func Fig16(sc Scale) []stats.Series {
	w := workload.Fixed("long", sim.Millisecond)
	quanta := []float64{0.5, 1, 2, 3, 5}
	maxCores := 16

	measure := func(qUs float64, cores int, shinjuku bool) (avg float64, n int) {
		cfg := cluster.RunConfig{
			Workload: w,
			Rate:     0.6 * w.MaxLoad(cores),
			Duration: sc.Duration,
			Warmup:   sc.Warmup,
			Seed:     sc.Seed,
		}
		var achieved *stats.Sample
		if shinjuku {
			p := cluster.NewShinjukuParams(sim.Micros(qUs))
			p.Workers = cores
			_, achieved = cluster.NewShinjuku(p).RunMeasured(cfg)
		} else {
			p := cluster.NewTQParams()
			p.Quantum = sim.Micros(qUs)
			p.Workers = cores
			_, achieved = cluster.NewTQ(p).RunMeasured(cfg)
		}
		return achieved.Mean(), achieved.Len()
	}

	series := func(label string, shinjuku bool) stats.Series {
		s := stats.Series{Label: label}
		for _, qUs := range quanta {
			target := float64(sim.Micros(qUs))
			best := 0
			for cores := 1; cores <= maxCores; cores++ {
				avg, n := measure(qUs, cores, shinjuku)
				if n == 0 || avg > 1.1*target {
					break
				}
				best = cores
			}
			s.Append(qUs, float64(best))
		}
		return s
	}
	return []stats.Series{series("Shinjuku", true), series("TQ", false)}
}

// DispatcherThroughput reproduces the §6 observation: the TQ
// dispatcher, doing only load balancing, sustains far more requests
// per second than a centralized scheduling core. It offers tiny jobs
// at the given rate to many workers and reports completions/second.
func DispatcherThroughput(sc Scale, rate float64) map[string]float64 {
	w := workload.Fixed("tiny", 100*sim.Nanosecond)
	cfg := cluster.RunConfig{
		Workload: w,
		Rate:     rate,
		Duration: sc.Duration,
		Warmup:   sc.Warmup,
		Seed:     sc.Seed,
	}
	tp := cluster.NewTQParams()
	tp.Workers = 64 // ample workers: isolate the dispatcher
	tp.Coroutines = 16
	sp := cluster.NewShinjukuParams(sim.Micros(5))
	sp.Workers = 64
	return map[string]float64{
		"TQ":       cluster.NewTQ(tp).Run(cfg).Throughput,
		"Shinjuku": cluster.NewShinjuku(sp).Run(cfg).Throughput,
	}
}

// Table3 runs the instrumentation comparison (see internal/instrument).
func Table3(sc Scale) []instrument.Table3Row {
	return instrument.Table3(sc.SuiteScale, sc.Seed)
}

// ExtensionComparison evaluates the discussion-section extensions and
// related-work baselines on Extreme Bimodal: TQ's default PS workers,
// LAS workers (§3.1's dynamic-quantum use case), Concord-style
// cache-line preemption, and LibPreemptible-style user interrupts
// (§7). It returns one short-job p99.9 sojourn curve per system.
func ExtensionComparison(sc Scale) []stats.Series {
	w := workload.ExtremeBimodal()
	rates := cluster.RatesUpTo(0.95*w.MaxLoad(16), sc.Points)
	var out []stats.Series
	for _, name := range []string{"tq", "tq-las", "concord", "libpreemptible"} {
		mf := cluster.MustLookup(name).New
		results := sc.sweep(mf, w, rates)
		out = append(out, cluster.SojournSeries(mf().Name(), "Short", results))
	}
	return out
}

// MultiDispatcherScaling measures sustained throughput on tiny jobs
// with 1, 2 and 4 dispatcher cores at the given offered load — the §6
// scale-out discussion made concrete.
func MultiDispatcherScaling(sc Scale, offered float64) []float64 {
	w := workload.Fixed("tiny", 100*sim.Nanosecond)
	var out []float64
	for _, d := range []int{1, 2, 4} {
		p := cluster.NewTQParams()
		p.Workers = 64
		p.Coroutines = 16
		p.Dispatchers = d
		res := cluster.NewTQ(p).Run(cluster.RunConfig{
			Workload: w,
			Rate:     offered,
			Duration: sc.Duration,
			Warmup:   sc.Warmup,
			Seed:     sc.Seed,
		})
		out = append(out, res.Throughput)
	}
	return out
}

// CoroutineCountAblation sweeps the number of task coroutines per
// worker (§5.1: "similar performance with more than four task
// coroutines; we use eight") and returns, per count, the maximum rate
// at which RocksDB-mix GETs stay under a 50µs p99.9 sojourn.
func CoroutineCountAblation(sc Scale, counts []int) []float64 {
	w := workload.RocksDB(0.005)
	rates := cluster.RatesUpTo(0.95*w.MaxLoad(16), sc.Points)
	out := make([]float64, 0, len(counts))
	for _, coros := range counts {
		best := sc.maxRateUnder(func() cluster.Machine {
			p := cluster.NewTQParams()
			p.Coroutines = coros
			return cluster.NewTQ(p)
		}, w, rates, func(r *cluster.Result) bool { return r.P999SojournUs("GET") <= 50 })
		out = append(out, best)
	}
	return out
}
