package experiments

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tiny is an even cheaper scale than Quick for per-driver smoke tests;
// shape assertions use Quick where they need resolution.
var tiny = Scale{
	Duration:   25 * sim.Millisecond,
	Warmup:     3 * sim.Millisecond,
	Points:     5,
	SuiteScale: 0.05,
	Seed:       1,
}

func TestFig1SmallerQuantaLowerSlowdown(t *testing.T) {
	series := Fig1(Quick)
	if len(series) != 5 {
		t.Fatalf("Fig1 returned %d curves, want 5", len(series))
	}
	// At the highest common load point, 0.5µs quanta must beat 10µs.
	small := series[0] // q=0.5
	large := series[4] // q=10
	last := len(small.Y) - 1
	if small.Y[last] >= large.Y[last] {
		t.Fatalf("at max load, q=0.5µs slowdown %v not below q=10µs %v",
			small.Y[last], large.Y[last])
	}
}

func TestFig2OverheadShapesCapacity(t *testing.T) {
	series := Fig2(Quick)
	if len(series) != 3 {
		t.Fatalf("Fig2 returned %d curves, want 3", len(series))
	}
	free, heavy := series[0], series[2] // 0 and 1µs overhead
	// With zero overhead, the smallest quantum must sustain at least
	// as much load as the largest.
	if free.Y[0] < free.Y[len(free.Y)-1]*0.95 {
		t.Errorf("zero overhead: 0.5µs quanta capacity %v below 10µs %v",
			free.Y[0], free.Y[len(free.Y)-1])
	}
	// With 1µs overhead, sub-µs quanta must collapse relative to the
	// zero-overhead case.
	if heavy.Y[0] >= free.Y[0]*0.7 {
		t.Errorf("1µs overhead did not collapse 0.5µs-quanta capacity: %v vs %v",
			heavy.Y[0], free.Y[0])
	}
}

func TestFig4MSQNotWorseThanRandomTieBreak(t *testing.T) {
	// The long-job p99.9 gap between MSQ and random tie-breaking is
	// smaller than single-realization noise at Quick scale: across root
	// seeds the sign of the per-seed difference flips. (The old
	// single-seed form of this test passed only because the shared-seed
	// sweep happened to favor MSQ at seed 1.) Average the top-half-of-
	// sweep sums over three root seeds and require MSQ to stay within
	// 10% of random — a broken MSQ policy blows well past that, while
	// the true (small) MSQ advantage keeps the ratio near or below 1.
	var msqSum, rndSum float64
	for _, seed := range []uint64{1, 2, 3} {
		sc := Quick
		sc.Seed = seed
		series := Fig4(sc)
		if len(series) != 3 {
			t.Fatalf("Fig4 returned %d curves, want 3", len(series))
		}
		msq, rnd := series[1], series[2]
		for i := len(msq.Y) / 2; i < len(msq.Y); i++ {
			msqSum += msq.Y[i]
			rndSum += rnd.Y[i]
		}
	}
	if msqSum >= rndSum*1.1 {
		t.Fatalf("MSQ tie-breaking (%v) materially worse than random (%v) for long jobs",
			msqSum, rndSum)
	}
}

func TestFig5SmallQuantaHelpShortJobs(t *testing.T) {
	series := Fig5(Quick)
	if len(series) != 5 {
		t.Fatalf("Fig5 returned %d curves", len(series))
	}
	// At a high-load point, 1µs quanta give shorter short-job tails
	// than 10µs quanta.
	q1, q10 := series[1], series[4]
	i := len(q1.Y) - 2
	if q1.Y[i] >= q10.Y[i] {
		t.Fatalf("short jobs: q=1µs p999 %v not below q=10µs %v at high load", q1.Y[i], q10.Y[i])
	}
}

func TestFig7TQSustainsHighestLoadUnderSLO(t *testing.T) {
	cmps := Fig7(Quick)
	if len(cmps) != 2 {
		t.Fatalf("Fig7 returned %d workloads", len(cmps))
	}
	for _, cmp := range cmps {
		curves := cmp.PerClass["Short"]
		tq := maxUnderSLOXY(curves[0].X, curves[0].Y, 50)
		sj := maxUnderSLOXY(curves[1].X, curves[1].Y, 50)
		cal := maxUnderSLOXY(curves[2].X, curves[2].Y, 50)
		if tq <= sj || tq <= cal {
			t.Errorf("%s: TQ max rate %v under 50µs SLO not above Shinjuku %v / Caladan %v",
				cmp.Workload, tq, sj, cal)
		}
	}
}

func TestFig11ICVariantLosesThroughput(t *testing.T) {
	series := Fig11(Quick)
	if len(series) != 4 {
		t.Fatalf("Fig11 returned %d curves", len(series))
	}
	tq, ic := series[0], series[1]
	tqMax := maxUnderSLOXY(tq.X, tq.Y, 50)
	icMax := maxUnderSLOXY(ic.X, ic.Y, 50)
	if icMax >= tqMax {
		t.Fatalf("TQ-IC sustained %v under 50µs GET SLO, TQ only %v", icMax, tqMax)
	}
}

func TestFig12FCFSVariantLosesThroughput(t *testing.T) {
	series := Fig12(Quick)
	tq, fcfs := series[0], series[3]
	tqMax := maxUnderSLOXY(tq.X, tq.Y, 50)
	fcfsMax := maxUnderSLOXY(fcfs.X, fcfs.Y, 50)
	if fcfsMax >= tqMax {
		t.Fatalf("TQ-FCFS sustained %v under 50µs GET SLO, TQ only %v", fcfsMax, tqMax)
	}
}

func TestSeedSensitivityPreservesWinnerOrdering(t *testing.T) {
	// The paper's qualitative claims must not hinge on one lucky seed:
	// with per-point seed derivation, changing the root seed perturbs
	// every point's noise independently, but at high load TQ must still
	// sustain more load under the short-job SLO than both baselines.
	sc := Quick
	sc.Points = 6
	for _, seed := range []uint64{1, 99} {
		sc.Seed = seed
		cmp := compareSystems(sc, workload.ExtremeBimodal(), sim.Micros(5), []string{"Short"}, false)
		curves := cmp.PerClass["Short"]
		tq := maxUnderSLOXY(curves[0].X, curves[0].Y, 50)
		sj := maxUnderSLOXY(curves[1].X, curves[1].Y, 50)
		cal := maxUnderSLOXY(curves[2].X, curves[2].Y, 50)
		if tq <= sj || tq <= cal {
			t.Errorf("seed %d: TQ max rate %v under 50µs SLO not above Shinjuku %v / Caladan %v",
				seed, tq, sj, cal)
		}
	}
}

func TestScaleWorkersSequentialAndParallelAgree(t *testing.T) {
	// A figure driver must return identical curves whether its sweeps run
	// on one worker or several.
	seq, par := tiny, tiny
	seq.Workers = 1
	par.Workers = 4
	a, b := Fig1(seq), Fig1(par)
	if len(a) != len(b) {
		t.Fatalf("curve counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("curve %d differs between workers=1 and workers=4:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestCompareSystemsOverloadSeries(t *testing.T) {
	// Every cross-system comparison now carries goodput and drop-rate
	// curves alongside the latency curves, one per system, with sane
	// ranges. Setting Scale.SLOs must lower goodput (Long jobs take
	// ~100µs of service, so a 20µs target is unmeetable for them) while
	// leaving every latency curve byte-identical: the SLO wrapper only
	// classifies completions, it never changes the simulation.
	sc := tiny
	w := workload.ExtremeBimodal()
	plain := compareSystems(sc, w, sim.Micros(5), []string{"Short", "Long"}, false)
	if len(plain.Goodput) != 3 || len(plain.DropRate) != 3 {
		t.Fatalf("got %d goodput / %d drop-rate curves, want 3 each",
			len(plain.Goodput), len(plain.DropRate))
	}
	for i := range plain.Goodput {
		if len(plain.Goodput[i].Y) != sc.Points {
			t.Fatalf("%s goodput curve has %d points, want %d",
				plain.Goodput[i].Label, len(plain.Goodput[i].Y), sc.Points)
		}
		for _, v := range plain.DropRate[i].Y {
			if v < 0 || v > 1 {
				t.Fatalf("%s drop rate %v outside [0,1]", plain.DropRate[i].Label, v)
			}
		}
	}

	strict := sc
	strict.SLOs = map[string]sim.Time{"*": sim.Micros(20)}
	slod := compareSystems(strict, w, sim.Micros(5), []string{"Short", "Long"}, false)
	last := sc.Points - 1
	if slod.Goodput[0].Y[last] >= plain.Goodput[0].Y[last] {
		t.Fatalf("20µs SLO did not lower TQ goodput: %v vs %v",
			slod.Goodput[0].Y[last], plain.Goodput[0].Y[last])
	}
	if !reflect.DeepEqual(slod.PerClass, plain.PerClass) {
		t.Fatal("setting SLOs changed the latency curves")
	}
}

func maxUnderSLOXY(x, y []float64, slo float64) float64 {
	best := 0.0
	for i := range x {
		if y[i] > slo || y[i] == 0 {
			break
		}
		best = x[i]
	}
	return best
}

func TestFig13Shapes(t *testing.T) {
	series := Fig13(120_000)
	if len(series) != 3 {
		t.Fatalf("Fig13 returned %d curves", len(series))
	}
	// Latency grows with array size for every quantum.
	for _, s := range series {
		if s.Y[0] >= s.Y[len(s.Y)-1] {
			t.Errorf("%s: latency did not grow with array size (%v .. %v)",
				s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig14CTAboveTLS(t *testing.T) {
	series := Fig14(120_000)
	tls, ct := series[0], series[1]
	// Across mid-size arrays, CT must be at or above TLS.
	var tlsSum, ctSum float64
	for i := 3; i <= 8; i++ { // 8KB..256KB
		tlsSum += tls.Y[i]
		ctSum += ct.Y[i]
	}
	if ctSum <= tlsSum {
		t.Fatalf("CT mid-size latency (%v) not above TLS (%v)", ctSum, tlsSum)
	}
}

func TestFig15MostReuseDistancesSmall(t *testing.T) {
	res := Fig15(3000, 1500, 40, 1)
	if res.GET.Total() == 0 || res.SCAN.Total() == 0 {
		t.Fatal("no reuse distances recorded")
	}
	// The paper: only a few percent of accesses have reuse distances
	// above 8KB (3.7% GET, 4.5% SCAN). Our substitute store should
	// land in the same regime.
	if res.GETAbove8KB > 0.15 {
		t.Errorf("GET accesses above 8KB reuse distance: %v", res.GETAbove8KB)
	}
	if res.SCANAbove8KB > 0.15 {
		t.Errorf("SCAN accesses above 8KB reuse distance: %v", res.SCANAbove8KB)
	}
}

func TestFig16TQScalesShinjukuDoesNot(t *testing.T) {
	series := Fig16(tiny)
	sj, tq := series[0], series[1]
	// TQ holds 16 cores at every quantum.
	for i, y := range tq.Y {
		if y != 16 {
			t.Fatalf("TQ supported %v cores at q=%vµs, want 16", y, tq.X[i])
		}
	}
	// Shinjuku supports 16 at 5µs but collapses at 0.5µs.
	last := len(sj.Y) - 1
	if sj.Y[last] < 14 {
		t.Errorf("Shinjuku at 5µs supports only %v cores", sj.Y[last])
	}
	if sj.Y[0] > 8 {
		t.Errorf("Shinjuku at 0.5µs supports %v cores, expected a collapse", sj.Y[0])
	}
	if sj.Y[0] >= sj.Y[last] {
		t.Errorf("Shinjuku curve not increasing with quantum: %v", sj.Y)
	}
}

func TestDispatcherThroughputGap(t *testing.T) {
	// Offer 8Mrps of tiny jobs: TQ's dispatcher keeps up better than
	// the centralized one (§6: 14Mrps vs ~5Mrps).
	out := DispatcherThroughput(tiny, 8e6)
	if out["TQ"] <= out["Shinjuku"]*1.5 {
		t.Fatalf("TQ dispatcher throughput %v not well above Shinjuku %v",
			out["TQ"], out["Shinjuku"])
	}
}

func TestExtensionComparisonShapes(t *testing.T) {
	series := ExtensionComparison(tiny)
	if len(series) != 4 {
		t.Fatalf("ExtensionComparison returned %d curves", len(series))
	}
	labels := map[string]bool{}
	for _, s := range series {
		labels[s.Label] = true
		if len(s.Y) == 0 {
			t.Fatalf("curve %s empty", s.Label)
		}
	}
	for _, want := range []string{"TQ", "TQ-LAS", "Concord", "LibPreemptible"} {
		if !labels[want] {
			t.Fatalf("missing curve %q (have %v)", want, labels)
		}
	}
	// LibPreemptible's 1µs-scale preemption cost must cap it below TQ
	// under a tight short-job SLO.
	tq := maxUnderSLOXY(series[0].X, series[0].Y, 50)
	lp := maxUnderSLOXY(series[3].X, series[3].Y, 50)
	if lp >= tq {
		t.Fatalf("LibPreemptible sustained %v, TQ %v under 50µs SLO", lp, tq)
	}
}

func TestMultiDispatcherScalingMonotone(t *testing.T) {
	out := MultiDispatcherScaling(tiny, 40e6)
	if len(out) != 3 {
		t.Fatalf("got %d points", len(out))
	}
	if !(out[1] > 1.5*out[0]) {
		t.Fatalf("2 dispatchers (%v) not >1.5x one (%v)", out[1], out[0])
	}
	if !(out[2] > out[1]) {
		t.Fatalf("4 dispatchers (%v) not above 2 (%v)", out[2], out[1])
	}
}

func TestTable3Smoke(t *testing.T) {
	rows := Table3(tiny)
	if len(rows) != 27 {
		t.Fatalf("Table3 returned %d rows", len(rows))
	}
	means := instrument.Means(rows)
	if means[instrument.TechTQ].OverheadPct >= means[instrument.TechCI].OverheadPct {
		t.Fatal("TQ mean overhead not below CI")
	}
}

// TestOptimalityGapAllRegistryFinite is the acceptance check for the
// UPS-style baseline: every registry entry produces a finite, positive
// optimality gap against oracle-srpt at both operating points, and the
// oracle's own row — identical sweeps divided by themselves — is
// exactly 1 at both.
func TestOptimalityGapAllRegistryFinite(t *testing.T) {
	sc := tiny
	sc.Duration = 10 * sim.Millisecond
	sc.Warmup = sim.Millisecond
	rows := OptimalityGapTable(sc, workload.HighBimodal(), "Short", cluster.Names()...)
	if len(rows) != len(cluster.Names()) {
		t.Fatalf("got %d rows, want one per registry entry (%d)", len(rows), len(cluster.Names()))
	}
	for _, r := range rows {
		for _, g := range []float64{r.Mid, r.Over} {
			if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
				t.Errorf("%s (%s): non-finite or non-positive gap %v", r.Name, r.Display, g)
			}
		}
		if r.Name == "oracle-srpt" && (r.Mid != 1 || r.Over != 1) {
			t.Errorf("oracle's own gap is %v/%v, want exactly 1/1 (determinism broke)", r.Mid, r.Over)
		}
	}
}

// TestCompareMachinesGapCurves checks that CompareMachines fills
// OptimalityGap (one curve per machine per class, one point per rate)
// and that CompareMachinesD routes construction through Entry.NewD.
func TestCompareMachinesGapCurves(t *testing.T) {
	sc := tiny
	sc.Duration = 10 * sim.Millisecond
	sc.Warmup = sim.Millisecond
	sc.Points = 3
	w := workload.HighBimodal()

	cmp := CompareMachinesD(sc, w, nil, "srpt", "tq", "d-fcfs")
	for _, class := range []string{"Short", "Long"} {
		curves := cmp.OptimalityGap[class]
		if len(curves) != 2 {
			t.Fatalf("class %s: %d gap curves, want 2", class, len(curves))
		}
		for _, s := range curves {
			if len(s.Y) != sc.Points {
				t.Fatalf("%s/%s: %d gap points, want %d", class, s.Label, len(s.Y), sc.Points)
			}
			for _, g := range s.Y {
				if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
					t.Errorf("%s/%s: non-finite gap %v", class, s.Label, g)
				}
			}
		}
	}
	// Labels must carry the discipline suffix NewD applies.
	if got := cmp.OptimalityGap["Short"][0].Label; got == cluster.MustLookup("tq").New().Name() {
		t.Errorf("disciplined label %q does not reflect the srpt rewiring", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("CompareMachinesD on a machine without NewD did not panic")
		}
	}()
	CompareMachinesD(sc, w, nil, "srpt", "shinjuku")
}
