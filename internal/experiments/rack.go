package experiments

import (
	"repro/internal/cluster"
	"repro/internal/rack"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RackComparison holds one rack routing figure: routing policies swept
// side by side over an N-machine fleet of one registry machine, with
// per-class p99 and p99.9 sojourn curves plus the fleet goodput and
// drop-rate companions (one series per policy throughout).
type RackComparison struct {
	// Workload and Machine name the workload and the per-node registry
	// machine; N is the fleet size.
	Workload string
	Machine  string
	N        int
	// P99 and P999 map class name to per-policy sojourn curves (µs).
	// Routing quality shows earlier in the p99 tail — one bad placement
	// per hundred requests — so both resolutions are reported.
	P99  map[string][]stats.Series
	P999 map[string][]stats.Series
	// Goodput and DropRate are the overload companions: survivor-only
	// percentiles flatten exactly where per-machine admission starts
	// shedding, and under overload the routing policy decides how much
	// of the fleet's aggregate capacity survives.
	Goodput  []stats.Series
	DropRate []stats.Series
}

// rackOverloadFactor extends the rack rate grid past fleet saturation:
// routing policies only separate once queues form, so the sweep tops
// out at 125% of the fleet's aggregate capacity.
const rackOverloadFactor = 1.25

// CompareRack sweeps routing policies side by side over an N-machine
// fleet of one registry machine — the driver behind tqsim -rack. Each
// (policy, rate) point is an independent fleet simulation through the
// scale's parallel sweep, so curves are identical for any worker
// count. The grid runs to rackOverloadFactor× the fleet's aggregate
// 16-worker saturation so the overload regime — where routing decides
// tail latency and goodput — is on every curve.
func CompareRack(sc Scale, w *workload.Workload, n int, machine string, policies []string) RackComparison {
	cmp := RackComparison{
		Workload: w.Name,
		Machine:  machine,
		N:        n,
		P99:      map[string][]stats.Series{},
		P999:     map[string][]stats.Series{},
	}
	rates := cluster.RatesUpTo(rackOverloadFactor*w.MaxLoad(16*n), sc.Points)
	for _, v := range rack.Variants(policies, []string{machine}, []int{n}) {
		fleet := v.Fleet()
		results := sc.sweep(func() cluster.Machine { return fleet }, w, rates)
		for _, c := range w.Classes {
			cmp.P99[c.Name] = append(cmp.P99[c.Name], cluster.P99SojournSeries(v.Policy, c.Name, results))
			cmp.P999[c.Name] = append(cmp.P999[c.Name], cluster.SojournSeries(v.Policy, c.Name, results))
		}
		cmp.Goodput = append(cmp.Goodput, cluster.GoodputSeries(v.Policy, results))
		cmp.DropRate = append(cmp.DropRate, cluster.DropRateSeries(v.Policy, results))
	}
	return cmp
}
