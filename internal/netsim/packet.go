package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The wire format is a minimal fixed-header UDP payload, modelled on
// the open-loop load generator the paper adapts from Caladan (§5.1):
// clients stamp an ID and send time; servers echo them so clients can
// compute end-to-end latency.

// HeaderSize is the encoded size of a request/response header in bytes.
const HeaderSize = 28

// Magic guards against parsing stray datagrams.
const Magic uint32 = 0x7159_0001 // "tq" v1

// Request is a client request header.
type Request struct {
	ID      uint64 // client-assigned, echoed in the response
	SentNs  int64  // client monotonic send time, echoed
	Kind    uint16 // workload-specific operation code
	Payload []byte // operation payload (e.g. key bytes)
}

// Response is a server reply header.
type Response struct {
	ID       uint64
	SentNs   int64 // echoed from the request
	ServerNs int64 // server-side sojourn in ns
	Kind     uint16
}

// ErrShortPacket is returned when a datagram is shorter than a header.
var ErrShortPacket = errors.New("netsim: short packet")

// ErrBadMagic is returned when a datagram does not carry the magic.
var ErrBadMagic = errors.New("netsim: bad magic")

// EncodeRequest appends the encoded request to buf and returns it.
func EncodeRequest(buf []byte, r *Request) []byte {
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], Magic)
	binary.LittleEndian.PutUint64(h[4:], r.ID)
	binary.LittleEndian.PutUint64(h[12:], uint64(r.SentNs))
	binary.LittleEndian.PutUint16(h[20:], r.Kind)
	binary.LittleEndian.PutUint32(h[22:], uint32(len(r.Payload)))
	// h[26:28] reserved.
	buf = append(buf, h[:]...)
	return append(buf, r.Payload...)
}

// DecodeRequest parses a request from pkt. The returned payload aliases
// pkt.
func DecodeRequest(pkt []byte) (Request, error) {
	if len(pkt) < HeaderSize {
		return Request{}, ErrShortPacket
	}
	if binary.LittleEndian.Uint32(pkt[0:]) != Magic {
		return Request{}, ErrBadMagic
	}
	r := Request{
		ID:     binary.LittleEndian.Uint64(pkt[4:]),
		SentNs: int64(binary.LittleEndian.Uint64(pkt[12:])),
		Kind:   binary.LittleEndian.Uint16(pkt[20:]),
	}
	n := int(binary.LittleEndian.Uint32(pkt[22:]))
	if len(pkt)-HeaderSize < n {
		return Request{}, fmt.Errorf("netsim: payload length %d exceeds packet (%w)", n, ErrShortPacket)
	}
	r.Payload = pkt[HeaderSize : HeaderSize+n]
	return r, nil
}

// EncodeResponse appends the encoded response to buf and returns it.
func EncodeResponse(buf []byte, r *Response) []byte {
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], Magic)
	binary.LittleEndian.PutUint64(h[4:], r.ID)
	binary.LittleEndian.PutUint64(h[12:], uint64(r.SentNs))
	binary.LittleEndian.PutUint16(h[20:], r.Kind)
	binary.LittleEndian.PutUint32(h[22:], uint32(uint64(r.ServerNs)&0xffffffff))
	return append(buf, h[:]...)
}

// DecodeResponse parses a response from pkt.
func DecodeResponse(pkt []byte) (Response, error) {
	if len(pkt) < HeaderSize {
		return Response{}, ErrShortPacket
	}
	if binary.LittleEndian.Uint32(pkt[0:]) != Magic {
		return Response{}, ErrBadMagic
	}
	return Response{
		ID:       binary.LittleEndian.Uint64(pkt[4:]),
		SentNs:   int64(binary.LittleEndian.Uint64(pkt[12:])),
		Kind:     binary.LittleEndian.Uint16(pkt[20:]),
		ServerNs: int64(binary.LittleEndian.Uint32(pkt[22:])),
	}, nil
}

// BufferPool recycles packet buffers between the dispatcher (single
// consumer, allocating for RX) and worker cores (multiple producers,
// releasing parsed buffers) — §4's multi-producer single-consumer
// memory pool.
type BufferPool struct {
	ring *MPSC[[]byte]
	size int
}

// NewBufferPool returns a pool of count pre-allocated size-byte
// buffers. count must be a power of two.
func NewBufferPool(count, size int) *BufferPool {
	p := &BufferPool{ring: NewMPSC[[]byte](count), size: size}
	for i := 0; i < count-1; i++ {
		// One slot is kept free: a Vyukov ring of capacity n holds at
		// most n elements, and we want Release after full drain to
		// always succeed, so leave headroom of one.
		p.ring.Push(make([]byte, size))
	}
	return p
}

// Get returns a buffer, allocating if the pool is transiently empty
// (dispatcher-side, single consumer).
func (p *BufferPool) Get() []byte {
	if b, ok := p.ring.Pop(); ok {
		return b[:p.size]
	}
	return make([]byte, p.size)
}

// Release returns a buffer to the pool (worker-side, multi-producer).
// Buffers are dropped if the pool is full; the GC reclaims them.
func (p *BufferPool) Release(b []byte) {
	if cap(b) < p.size {
		return
	}
	p.ring.Push(b[:p.size])
}
