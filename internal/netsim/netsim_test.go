package netsim

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCOrder(t *testing.T) {
	r := NewSPSC[int](8)
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestSPSCWraparound(t *testing.T) {
	r := NewSPSC[int](4)
	for lap := 0; lap < 100; lap++ {
		for i := 0; i < 3; i++ {
			if !r.Push(lap*3 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != lap*3+i {
				t.Fatalf("lap %d: got (%d,%v)", lap, v, ok)
			}
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	r := NewSPSC[uint64](64)
	const n = 1 << 13
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched() // single-core friendly
			}
		}
	}()
	var sum, want uint64
	for i := uint64(0); i < n; {
		if v, ok := r.Pop(); ok {
			if v != i {
				t.Errorf("out of order: got %d want %d", v, i)
				break
			}
			sum += v
			i++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	for i := uint64(0); i < n; i++ {
		want += i
	}
	if sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}

func TestSPSCBadCapacityPanics(t *testing.T) {
	for _, c := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d did not panic", c)
				}
			}()
			NewSPSC[int](c)
		}()
	}
}

func TestMPSCSingleThreaded(t *testing.T) {
	r := NewMPSC[int](8)
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestMPSCConcurrentProducers(t *testing.T) {
	r := NewMPSC[uint64](256)
	const producers = 4
	const perProducer = 1 << 11
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := uint64(p)<<32 | uint64(i)
				for !r.Push(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	seen := make([]uint32, producers) // next expected per producer
	var count int
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		v, ok := r.Pop()
		if ok {
			p := int(v >> 32)
			i := uint32(v)
			if i != seen[p] {
				t.Errorf("producer %d out of order: got %d want %d", p, i, seen[p])
				return
			}
			seen[p]++
			count++
			if count == producers*perProducer {
				break
			}
			continue
		}
		select {
		case <-done:
			// Producers finished; drain whatever remains.
			if v, ok := r.Pop(); ok {
				p := int(v >> 32)
				seen[p]++
				count++
				continue
			}
			if count != producers*perProducer {
				t.Fatalf("consumed %d, want %d", count, producers*perProducer)
			}
			return
		default:
			runtime.Gosched()
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := Request{ID: 42, SentNs: 123456789, Kind: 7, Payload: []byte("key-001")}
	pkt := EncodeRequest(nil, &req)
	got, err := DecodeRequest(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || got.SentNs != req.SentNs || got.Kind != req.Kind {
		t.Fatalf("header mismatch: %+v vs %+v", got, req)
	}
	if !bytes.Equal(got.Payload, req.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{ID: 9, SentNs: 55, ServerNs: 777, Kind: 3}
	pkt := EncodeResponse(nil, &resp)
	got, err := DecodeResponse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Fatalf("got %+v, want %+v", got, resp)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("short request err = %v", err)
	}
	bad := make([]byte, HeaderSize)
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v", err)
	}
	// Payload length larger than the packet.
	req := Request{ID: 1, Payload: []byte("abcd")}
	pkt := EncodeRequest(nil, &req)
	if _, err := DecodeRequest(pkt[:len(pkt)-2]); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("truncated payload err = %v", err)
	}
	if _, err := DecodeResponse([]byte{}); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("short response err = %v", err)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint64, sent int64, kind uint16, payload []byte) bool {
		req := Request{ID: id, SentNs: sent, Kind: kind, Payload: payload}
		got, err := DecodeRequest(EncodeRequest(nil, &req))
		return err == nil && got.ID == id && got.SentNs == sent &&
			got.Kind == kind && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	p := NewBufferPool(8, 64)
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("Get returned %d bytes, want 64", len(b))
	}
	b[0] = 0xAB
	p.Release(b)
	// Pool is LIFO-ish through the ring; eventually we get a 64-byte
	// buffer back.
	b2 := p.Get()
	if len(b2) != 64 {
		t.Fatalf("recycled buffer wrong size %d", len(b2))
	}
}

func TestBufferPoolConcurrentRelease(t *testing.T) {
	p := NewBufferPool(64, 32)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Release(make([]byte, 32))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	count := 0
	for {
		select {
		case <-done:
			for i := 0; i < 100; i++ {
				if b := p.Get(); len(b) != 32 {
					t.Fatalf("Get returned %d bytes", len(b))
				}
				count++
			}
			return
		default:
			if b := p.Get(); len(b) != 32 {
				t.Fatalf("Get returned %d bytes", len(b))
			}
			count++
		}
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	r := NewSPSC[uint64](1024)
	b.RunParallel(func(pb *testing.PB) {
		// Single producer/consumer pattern approximated by alternating.
		for pb.Next() {
			if !r.Push(1) {
				r.Pop()
			}
		}
	})
}

func BenchmarkMPSCPush(b *testing.B) {
	r := NewMPSC[uint64](1 << 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single consumer drains continuously
		defer wg.Done()
		for {
			if _, ok := r.Pop(); !ok {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for !r.Push(1) {
				runtime.Gosched()
			}
		}
	})
	close(stop)
	wg.Wait()
}
