package netsim

import (
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Client is an open-loop UDP load generator in the style of the
// paper's adapted Caladan client (§5.1): requests leave under a
// Poisson process regardless of completions, and end-to-end latency is
// measured from send to response receipt.
type ClientConfig struct {
	// Addr is the server address.
	Addr *net.UDPAddr
	// Rate is the offered load in requests/second.
	Rate float64
	// Duration is how long to generate load.
	Duration time.Duration
	// Drain is how long to wait for in-flight responses afterwards.
	Drain time.Duration
	// Seed drives arrival gaps and request selection.
	Seed uint64
	// Next produces each request's kind and payload. The payload is
	// copied before sending, so it may be reused.
	Next func(r *rng.Rand) (kind uint16, payload []byte)
	// Timeout, when positive, enables client-side retries — the
	// behaviour real benchmark clients have: a request with no
	// response within Timeout is resubmitted, waiting Timeout before
	// the first resend and doubling the wait for each one after
	// (capped at BackoffCap), until Retries resubmissions have been
	// spent and the request is abandoned. Latency is always measured
	// from the first send, and duplicate responses are discarded.
	// Zero — the default — disables all of this: the client is purely
	// open-loop and every response counts, exactly as before.
	Timeout time.Duration
	// Retries caps resubmissions per request; <= 0 means 3 when
	// Timeout is set.
	Retries int
	// BackoffCap bounds the resend wait; <= 0 means 8x Timeout.
	BackoffCap time.Duration
	// Obs, when non-nil, records the client-side view of every request
	// in the unified event vocabulary: arrive at first send, finish at
	// response receipt, drop when a send fails or the retry budget is
	// exhausted — all on the loadgen track, since the client cannot see
	// inside the server. Timestamps are ns since the client started.
	// Emissions happen under the client's internal lock, so a plain
	// obs.Ring is safe here.
	Obs obs.Recorder
}

// KindStats aggregates one request kind's outcomes.
type KindStats struct {
	Sent, Received uint64
	// Retried counts resubmissions of timed-out requests; Abandoned
	// counts requests given up on after the retry budget. Both stay
	// zero unless ClientConfig.Timeout enables retries.
	Retried, Abandoned uint64
	// Latencies holds end-to-end durations in receive order, measured
	// from each request's first send.
	Latencies []time.Duration
}

// Quantile returns the q-quantile latency (nearest rank); zero if no
// responses arrived.
func (k *KindStats) Quantile(q float64) time.Duration {
	if len(k.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), k.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Report is the outcome of one client run.
type Report struct {
	PerKind map[uint16]*KindStats
}

// Kind returns (allocating if needed) the stats bucket for a kind.
func (r *Report) Kind(k uint16) *KindStats {
	s := r.PerKind[k]
	if s == nil {
		s = &KindStats{}
		r.PerKind[k] = s
	}
	return s
}

// pendingReq tracks one outstanding request while retries are enabled.
type pendingReq struct {
	kind     uint16
	payload  []byte
	firstNs  int64
	attempts int
	deadline time.Time
	backoff  time.Duration
}

// RunClient generates load against cfg.Addr and returns the report.
func RunClient(cfg ClientConfig) (*Report, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.Next == nil {
		panic("netsim: invalid client configuration")
	}
	conn, err := net.DialUDP("udp", nil, cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	report := &Report{PerKind: map[uint16]*KindStats{}}
	var mu sync.Mutex
	baseNs := time.Now().UnixNano()
	// emit records a client-view event; callers hold mu.
	emit := func(nowNs int64, k obs.Kind, id uint64, kind uint16, core int32) {
		if cfg.Obs != nil {
			cfg.Obs.Emit(obs.Event{T: nowNs - baseNs, Task: id, Core: core, Class: int16(kind), Kind: k})
		}
	}

	retry := cfg.Timeout > 0
	maxRetries := cfg.Retries
	if maxRetries <= 0 {
		maxRetries = 3
	}
	backoffCap := cfg.BackoffCap
	if backoffCap <= 0 {
		backoffCap = 8 * cfg.Timeout
	}
	pending := map[uint64]*pendingReq{}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		for {
			select {
			case <-done:
				return
			default:
			}
			conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue
			}
			resp, err := DecodeResponse(buf[:n])
			if err != nil {
				continue
			}
			nowNs := time.Now().UnixNano()
			mu.Lock()
			sentNs := resp.SentNs
			if retry {
				p, outstanding := pending[resp.ID]
				if !outstanding {
					// Duplicate of an answered request, or a straggler
					// for an abandoned one: real clients discard both.
					mu.Unlock()
					continue
				}
				delete(pending, resp.ID)
				sentNs = p.firstNs
			}
			ks := report.Kind(resp.Kind)
			ks.Received++
			ks.Latencies = append(ks.Latencies, time.Duration(nowNs-sentNs))
			emit(nowNs, obs.Finish, resp.ID, resp.Kind, obs.CoreLoadgen)
			mu.Unlock()
		}
	}()

	// The retry scanner resubmits timed-out requests. It keeps running
	// through the drain so late responses still cancel resends.
	if retry {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := cfg.Timeout / 2
			if tick < time.Millisecond {
				tick = time.Millisecond
			}
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			var pkt []byte
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
				}
				now := time.Now()
				// Decide under the lock, resend outside it.
				var out []Request
				mu.Lock()
				for id, p := range pending {
					if now.Before(p.deadline) {
						continue
					}
					if p.attempts >= maxRetries {
						delete(pending, id)
						report.Kind(p.kind).Abandoned++
						emit(now.UnixNano(), obs.Drop, id, p.kind, obs.CoreLoadgen)
						continue
					}
					p.attempts++
					p.deadline = now.Add(p.backoff)
					p.backoff = min(2*p.backoff, backoffCap)
					report.Kind(p.kind).Retried++
					out = append(out, Request{ID: id, SentNs: p.firstNs, Kind: p.kind, Payload: p.payload})
				}
				mu.Unlock()
				// pending is a map, so the collect loop above sees it in
				// randomized order; sort by id so each tick's retransmissions
				// leave in a deterministic, reproducible order.
				sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
				for i := range out {
					pkt = EncodeRequest(pkt[:0], &out[i])
					conn.Write(pkt)
				}
			}
		}()
	}

	r := rng.New(cfg.Seed)
	meanGap := float64(time.Second) / cfg.Rate
	deadline := time.Now().Add(cfg.Duration)
	next := time.Now()
	var id uint64
	var pkt []byte
	for time.Now().Before(deadline) {
		next = next.Add(time.Duration(r.Exp(meanGap)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		kind, payload := cfg.Next(r)
		id++
		req := Request{ID: id, SentNs: time.Now().UnixNano(), Kind: kind, Payload: payload}
		pkt = EncodeRequest(pkt[:0], &req)
		// Record the arrival (and register the retry state) before the
		// send, so a response processed on the reader goroutine can never
		// beat its own request into the timeline.
		mu.Lock()
		emit(req.SentNs, obs.Arrive, id, kind, obs.CoreLoadgen)
		if retry {
			pending[id] = &pendingReq{
				kind:     kind,
				payload:  append([]byte(nil), payload...),
				firstNs:  req.SentNs,
				deadline: time.Now().Add(cfg.Timeout),
				backoff:  min(2*cfg.Timeout, backoffCap),
			}
		}
		mu.Unlock()
		if _, err := conn.Write(pkt); err != nil {
			mu.Lock()
			emit(time.Now().UnixNano(), obs.Drop, id, kind, obs.CoreLoadgen)
			if retry {
				delete(pending, id)
			}
			mu.Unlock()
			continue
		}
		mu.Lock()
		report.Kind(kind).Sent++
		mu.Unlock()
	}
	if cfg.Drain > 0 {
		time.Sleep(cfg.Drain)
	}
	close(done)
	wg.Wait()
	return report, nil
}
