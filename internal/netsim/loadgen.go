package netsim

import (
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// Client is an open-loop UDP load generator in the style of the
// paper's adapted Caladan client (§5.1): requests leave under a
// Poisson process regardless of completions, and end-to-end latency is
// measured from send to response receipt.
type ClientConfig struct {
	// Addr is the server address.
	Addr *net.UDPAddr
	// Rate is the offered load in requests/second.
	Rate float64
	// Duration is how long to generate load.
	Duration time.Duration
	// Drain is how long to wait for in-flight responses afterwards.
	Drain time.Duration
	// Seed drives arrival gaps and request selection.
	Seed uint64
	// Next produces each request's kind and payload. The payload is
	// copied before sending, so it may be reused.
	Next func(r *rng.Rand) (kind uint16, payload []byte)
}

// KindStats aggregates one request kind's outcomes.
type KindStats struct {
	Sent, Received uint64
	// Latencies holds end-to-end durations in receive order.
	Latencies []time.Duration
}

// Quantile returns the q-quantile latency (nearest rank); zero if no
// responses arrived.
func (k *KindStats) Quantile(q float64) time.Duration {
	if len(k.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), k.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Report is the outcome of one client run.
type Report struct {
	PerKind map[uint16]*KindStats
}

// Kind returns (allocating if needed) the stats bucket for a kind.
func (r *Report) Kind(k uint16) *KindStats {
	s := r.PerKind[k]
	if s == nil {
		s = &KindStats{}
		r.PerKind[k] = s
	}
	return s
}

// RunClient generates load against cfg.Addr and returns the report.
func RunClient(cfg ClientConfig) (*Report, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.Next == nil {
		panic("netsim: invalid client configuration")
	}
	conn, err := net.DialUDP("udp", nil, cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	report := &Report{PerKind: map[uint16]*KindStats{}}
	var mu sync.Mutex

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		for {
			select {
			case <-done:
				return
			default:
			}
			conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue
			}
			resp, err := DecodeResponse(buf[:n])
			if err != nil {
				continue
			}
			e2e := time.Duration(time.Now().UnixNano() - resp.SentNs)
			mu.Lock()
			ks := report.Kind(resp.Kind)
			ks.Received++
			ks.Latencies = append(ks.Latencies, e2e)
			mu.Unlock()
		}
	}()

	r := rng.New(cfg.Seed)
	meanGap := float64(time.Second) / cfg.Rate
	deadline := time.Now().Add(cfg.Duration)
	next := time.Now()
	var id uint64
	var pkt []byte
	for time.Now().Before(deadline) {
		next = next.Add(time.Duration(r.Exp(meanGap)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		kind, payload := cfg.Next(r)
		id++
		req := Request{ID: id, SentNs: time.Now().UnixNano(), Kind: kind, Payload: payload}
		pkt = EncodeRequest(pkt[:0], &req)
		if _, err := conn.Write(pkt); err != nil {
			continue
		}
		mu.Lock()
		report.Kind(kind).Sent++
		mu.Unlock()
	}
	if cfg.Drain > 0 {
		time.Sleep(cfg.Drain)
	}
	close(done)
	wg.Wait()
	return report, nil
}
