// Package netsim provides the networking substrate of the TQ
// implementation (§4): request/response framing and the lock-free ring
// buffers that connect the dispatcher to worker cores.
//
// The rings are real concurrent data structures (used by the live
// goroutine runtime in internal/tqrt), not simulation stand-ins: SPSC
// rings carry dispatcher→worker job handoffs, and an MPSC pool returns
// RX buffers from worker cores back to the dispatcher's allocator, the
// "multi-producer, single-consumer memory pool" of §4.
package netsim

import (
	"fmt"
	"sync/atomic"
)

// cacheLinePad separates hot atomics to avoid false sharing between the
// producer and consumer cores.
type cacheLinePad [64]byte

// SPSC is a bounded single-producer single-consumer ring. One goroutine
// may call Push, one may call Pop; both are wait-free. This is the
// "lockless ring buffer" the TQ dispatcher uses to forward requests to
// the least-loaded worker (§4).
type SPSC[T any] struct {
	mask uint64
	buf  []slot[T]
	_    cacheLinePad
	head atomic.Uint64 // next index to pop (consumer-owned)
	_    cacheLinePad
	tail atomic.Uint64 // next index to push (producer-owned)
}

type slot[T any] struct {
	// full is 1 when the slot holds a value. Separating the flag from
	// head/tail lets each side publish with a single release store.
	full atomic.Uint32
	v    T
}

// NewSPSC returns a ring with the given capacity, which must be a
// power of two and at least 2.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("netsim: SPSC capacity %d is not a power of two >= 2", capacity))
	}
	return &SPSC[T]{mask: uint64(capacity - 1), buf: make([]slot[T], capacity)}
}

// Push appends v; it reports false if the ring is full.
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	s := &r.buf[t&r.mask]
	if s.full.Load() != 0 {
		return false
	}
	s.v = v
	s.full.Store(1)
	r.tail.Store(t + 1)
	return true
}

// Pop removes the oldest element; it reports false if the ring is
// empty.
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	s := &r.buf[h&r.mask]
	if s.full.Load() == 0 {
		return zero, false
	}
	v := s.v
	s.v = zero
	s.full.Store(0)
	r.head.Store(h + 1)
	return v, true
}

// Len approximates the number of queued elements; exact only when
// producer and consumer are quiescent.
func (r *SPSC[T]) Len() int {
	d := int64(r.tail.Load()) - int64(r.head.Load())
	if d < 0 {
		return 0
	}
	return int(d)
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// MPSC is a bounded multi-producer single-consumer ring: any number of
// goroutines may Push concurrently; a single goroutine Pops. It backs
// the shared RX-buffer pool that worker cores release parsed buffers
// into (§4).
type MPSC[T any] struct {
	mask uint64
	buf  []mpscSlot[T]
	_    cacheLinePad
	head uint64 // consumer-owned, no concurrent access
	_    cacheLinePad
	tail atomic.Uint64
}

type mpscSlot[T any] struct {
	// seq implements the Vyukov bounded-queue protocol: a slot is
	// writable when seq == index, readable when seq == index+1.
	seq atomic.Uint64
	v   T
}

// NewMPSC returns a ring with the given capacity, which must be a
// power of two and at least 2.
func NewMPSC[T any](capacity int) *MPSC[T] {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("netsim: MPSC capacity %d is not a power of two >= 2", capacity))
	}
	r := &MPSC[T]{mask: uint64(capacity - 1), buf: make([]mpscSlot[T], capacity)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// Push appends v; it reports false if the ring is full.
func (r *MPSC[T]) Push(v T) bool {
	for {
		t := r.tail.Load()
		s := &r.buf[t&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == t:
			if r.tail.CompareAndSwap(t, t+1) {
				s.v = v
				s.seq.Store(t + 1)
				return true
			}
		case seq < t:
			return false // slot still unread from a full lap ago: full
		}
		// Otherwise another producer claimed the slot; retry.
	}
}

// Pop removes the oldest element; it reports false if the ring is
// empty. Only the single consumer may call Pop.
func (r *MPSC[T]) Pop() (T, bool) {
	var zero T
	s := &r.buf[r.head&r.mask]
	if s.seq.Load() != r.head+1 {
		return zero, false
	}
	v := s.v
	s.v = zero
	s.seq.Store(r.head + uint64(len(r.buf)))
	r.head++
	return v, true
}

// Cap returns the ring capacity.
func (r *MPSC[T]) Cap() int { return len(r.buf) }
