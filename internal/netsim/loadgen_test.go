package netsim

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// echoServer replies to every request with a matching response.
func echoServer(t *testing.T) (*net.UDPAddr, func()) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		var out []byte
		for {
			n, client, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := DecodeRequest(buf[:n])
			if err != nil {
				continue
			}
			resp := Response{ID: req.ID, SentNs: req.SentNs, Kind: req.Kind, ServerNs: 1}
			out = EncodeResponse(out[:0], &resp)
			conn.WriteToUDP(out, client)
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr), func() {
		conn.Close()
		wg.Wait()
	}
}

func TestRunClientAgainstEcho(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	report, err := RunClient(ClientConfig{
		Addr:     addr,
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Drain:    100 * time.Millisecond,
		Seed:     1,
		Next: func(r *rng.Rand) (uint16, []byte) {
			if r.Float64() < 0.2 {
				return 2, []byte("scan")
			}
			return 1, []byte("get0")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	get, scan := report.Kind(1), report.Kind(2)
	if get.Sent == 0 || scan.Sent == 0 {
		t.Fatalf("sent: get=%d scan=%d", get.Sent, scan.Sent)
	}
	// Loopback echo should return nearly everything.
	total := get.Sent + scan.Sent
	recvd := get.Received + scan.Received
	if recvd < total*8/10 {
		t.Fatalf("received %d of %d", recvd, total)
	}
	if get.Quantile(0.5) <= 0 {
		t.Fatal("no latency recorded")
	}
	if get.Quantile(0.99) < get.Quantile(0.5) {
		t.Fatal("p99 below p50")
	}
}

// lossyEchoServer swallows the first attempt of every third request
// (by ID), so only clients that retransmit ever get those responses.
func lossyEchoServer(t *testing.T) (*net.UDPAddr, func()) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		var out []byte
		seen := map[uint64]bool{}
		for {
			n, client, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := DecodeRequest(buf[:n])
			if err != nil {
				continue
			}
			if req.ID%3 == 0 && !seen[req.ID] {
				seen[req.ID] = true
				continue
			}
			resp := Response{ID: req.ID, SentNs: req.SentNs, Kind: req.Kind, ServerNs: 1}
			out = EncodeResponse(out[:0], &resp)
			conn.WriteToUDP(out, client)
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr), func() {
		conn.Close()
		wg.Wait()
	}
}

func TestRunClientRetriesRecoverLosses(t *testing.T) {
	addr, stop := lossyEchoServer(t)
	defer stop()
	report, err := RunClient(ClientConfig{
		Addr:     addr,
		Rate:     500,
		Duration: 300 * time.Millisecond,
		Drain:    400 * time.Millisecond,
		Seed:     1,
		Timeout:  30 * time.Millisecond,
		Next: func(r *rng.Rand) (uint16, []byte) {
			return 1, []byte("key0")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ks := report.Kind(1)
	if ks.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if ks.Retried == 0 {
		t.Fatal("server dropped a third of first attempts but the client never retried")
	}
	// Retries must recover nearly everything the server swallowed.
	if ks.Received < ks.Sent*9/10 {
		t.Fatalf("received %d of %d despite retries", ks.Received, ks.Sent)
	}
	if ks.Quantile(0.5) <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestRunClientRetriesOffByDefault(t *testing.T) {
	addr, stop := lossyEchoServer(t)
	defer stop()
	report, err := RunClient(ClientConfig{
		Addr:     addr,
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Drain:    100 * time.Millisecond,
		Seed:     2,
		Next: func(r *rng.Rand) (uint16, []byte) {
			return 1, []byte("key0")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ks := report.Kind(1)
	if ks.Retried != 0 || ks.Abandoned != 0 {
		t.Fatalf("retry counters moved without a timeout: retried=%d abandoned=%d",
			ks.Retried, ks.Abandoned)
	}
	// A third of the requests never get a response; without retries the
	// losses must be visible, not silently recovered.
	if ks.Received >= ks.Sent {
		t.Fatalf("received %d of %d from a lossy server without retries", ks.Received, ks.Sent)
	}
}

func TestKindStatsQuantileEmpty(t *testing.T) {
	var ks KindStats
	if ks.Quantile(0.99) != 0 {
		t.Fatal("empty stats quantile not zero")
	}
}

func TestRunClientInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	RunClient(ClientConfig{Rate: 0})
}

// deafServer answers everything except requests whose ID is divisible
// by three — those are swallowed on every attempt, forcing the client
// to abandon them.
func deafServer(t *testing.T) (*net.UDPAddr, func()) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		var out []byte
		for {
			n, client, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := DecodeRequest(buf[:n])
			if err != nil || req.ID%3 == 0 {
				continue
			}
			resp := Response{ID: req.ID, SentNs: req.SentNs, Kind: req.Kind, ServerNs: 1}
			out = EncodeResponse(out[:0], &resp)
			conn.WriteToUDP(out, client)
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr), func() {
		conn.Close()
		wg.Wait()
	}
}

// TestRunClientRecordsClientViewTimeline checks the loadgen's obs
// stream: arrive/finish pairs on the loadgen track that validate under
// the shared grammar, with drops for abandoned requests so the traced
// timeline stays conserved even when the server goes deaf.
func TestRunClientRecordsClientViewTimeline(t *testing.T) {
	addr, stop := deafServer(t)
	defer stop()
	rec := obs.NewRing(1 << 16)
	report, err := RunClient(ClientConfig{
		Addr:     addr,
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Drain:    500 * time.Millisecond,
		Seed:     3,
		Timeout:  20 * time.Millisecond,
		Retries:  1,
		Obs:      rec,
		Next: func(r *rng.Rand) (uint16, []byte) {
			return 1, []byte("key0")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated() {
		t.Fatal("recording truncated; grow the test ring")
	}
	events := rec.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("invalid client timeline: %v", err)
	}
	s := obs.Summarize("client", events)
	ks := report.Kind(1)
	if s.Tasks != ks.Sent {
		t.Fatalf("timeline has %d arrivals, report sent %d", s.Tasks, ks.Sent)
	}
	if s.Finished != ks.Received {
		t.Fatalf("timeline has %d finishes, report received %d", s.Finished, ks.Received)
	}
	if ks.Abandoned == 0 {
		t.Fatal("deaf server but nothing abandoned; test needs a longer drain")
	}
	if s.Dropped != ks.Abandoned {
		t.Fatalf("timeline has %d drops, report abandoned %d", s.Dropped, ks.Abandoned)
	}
	if err := obs.Conserved(events); err != nil {
		t.Fatalf("client timeline not conserved: %v", err)
	}
	for _, e := range events {
		if e.Core != obs.CoreLoadgen {
			t.Fatalf("client-view event on core %d; everything belongs on the loadgen track", e.Core)
		}
	}
}
