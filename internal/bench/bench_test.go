package bench

import "testing"

// goodReport builds a minimal structurally valid report covering the
// whole matrix.
func goodReport() *Report {
	r := &Report{Schema: Schema, GoVersion: "go0.0", Gomaxprocs: 1}
	for _, b := range matrix {
		r.Benches = append(r.Benches, Result{
			Name: b.name, N: 1000, WallNs: 1000_000, NsPerOp: 1000,
			EventsPerSec: 1e6, AllocsPerOp: 0.1, AllocsInt: 0,
		})
	}
	return r
}

func TestValidateAcceptsGoodReport(t *testing.T) {
	if err := Validate(goodReport()); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "tqbench/v0" }},
		{"missing bench", func(r *Report) { r.Benches = r.Benches[:len(r.Benches)-1] }},
		{"out of order", func(r *Report) { r.Benches[0], r.Benches[1] = r.Benches[1], r.Benches[0] }},
		{"zero n", func(r *Report) { r.Benches[0].N = 0 }},
		{"negative allocs", func(r *Report) { r.Benches[0].AllocsPerOp = -1 }},
		{"pump allocates", func(r *Report) {
			for i := range r.Benches {
				if r.Benches[i].Name == "kernel/arrival-pump" {
					r.Benches[i].AllocsInt = 2
				}
			}
		}},
	}
	for _, c := range cases {
		r := goodReport()
		c.break_(r)
		if err := Validate(r); err == nil {
			t.Errorf("%s: report accepted, want error", c.name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := goodReport()
	r.PR = 6
	r.Quick = true
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.PR != 6 || !back.Quick || back.Schema != Schema || len(back.Benches) != len(r.Benches) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Benches[0] != r.Benches[0] {
		t.Fatalf("round trip changed bench 0: %+v vs %+v", back.Benches[0], r.Benches[0])
	}
}

func TestSpeedup(t *testing.T) {
	r := goodReport()
	for i := range r.Benches {
		switch r.Benches[i].Name {
		case "engine/wheel-churn":
			r.Benches[i].EventsPerSec = 3e6
		case "engine/heap-churn":
			r.Benches[i].EventsPerSec = 1e6
		}
	}
	if s := r.Speedup(); s < 2.99 || s > 3.01 {
		t.Fatalf("speedup %f, want 3", s)
	}
	if (&Report{}).Speedup() != 0 {
		t.Fatal("empty report should report zero speedup")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
