// Package bench pins the repository's performance-tracking workload
// matrix: a fixed set of named benchmarks — engine microbenchmarks,
// the kernel arrival pump, full machine runs, a parallel sweep grid —
// whose results are written as one JSON report (BENCH_<pr>.json at each
// PR, artifacts/bench-quick.json in CI). Fixing the matrix in code,
// rather than in ad-hoc `go test -bench` invocations, makes reports
// from different PRs directly comparable: same workloads, same seeds,
// same units. cmd/tqbench is the command-line driver; EXPERIMENTS.md
// ("Benchmark trajectory") documents how to read a report and what to
// do when a number regresses.
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/rack"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Schema identifies the report format; bump it when Result fields
// change incompatibly.
const Schema = "tqbench/v1"

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the benchmark within the fixed matrix, as
	// "<area>/<bench>" (e.g. "engine/wheel-churn").
	Name string `json:"name"`
	// N is the operation count the averages divide by: simulation events
	// for engine and machine benches, arrivals for the pump, sweep
	// points' pooled events for the grid.
	N int64 `json:"n"`
	// WallNs is the measured wall-clock time in nanoseconds.
	WallNs int64 `json:"wallNs"`
	// NsPerOp is WallNs / N.
	NsPerOp float64 `json:"nsPerOp"`
	// EventsPerSec is N / wall seconds — the headline throughput.
	EventsPerSec float64 `json:"eventsPerSec"`
	// AllocsPerOp is exact heap allocations per operation; AllocsInt is
	// the same truncated toward zero (the testing.B convention), the
	// number guards compare against.
	AllocsPerOp float64 `json:"allocsPerOp"`
	AllocsInt   int64   `json:"allocsPerOpInt"`
	// Note carries bench-specific context (workload, config).
	Note string `json:"note,omitempty"`
}

// Report is one full run of the matrix.
type Report struct {
	// Schema is always the package's Schema constant.
	Schema string `json:"schema"`
	// PR is the pull-request number the report was recorded for; 0 when
	// unattributed (CI smoke runs).
	PR int `json:"pr,omitempty"`
	// GoVersion and Gomaxprocs describe the measuring host.
	GoVersion  string `json:"goVersion"`
	Gomaxprocs int    `json:"gomaxprocs"`
	// Quick marks reduced-size CI smoke runs, which are only good for
	// "did it run and hold its invariants", not for cross-PR comparison.
	Quick bool `json:"quick"`
	// Benches holds the matrix results in fixed matrix order.
	Benches []Result `json:"benches"`
}

// Options configures one matrix run.
type Options struct {
	// Quick shrinks every benchmark to smoke-test size (seconds, not
	// minutes). CI uses it; checked-in BENCH_<pr>.json reports must not.
	Quick bool
	// PR stamps the report with the pull-request number.
	PR int
	// Progress, when non-nil, receives one line per completed benchmark.
	Progress func(string)
}

// Run executes the full benchmark matrix and returns its report.
func Run(opt Options) *Report {
	r := &Report{
		Schema:     Schema,
		PR:         opt.PR,
		GoVersion:  runtime.Version(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Quick:      opt.Quick,
	}
	for _, b := range matrix {
		n := b.full
		if opt.Quick {
			n = b.quick
		}
		res := b.run(n)
		res.Name = b.name
		r.Benches = append(r.Benches, res)
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%-22s %12.0f events/sec  %8.1f ns/op  %6.3f allocs/op",
				res.Name, res.EventsPerSec, res.NsPerOp, res.AllocsPerOp))
		}
	}
	return r
}

// Validate checks a report's structural and semantic invariants: the
// schema tag, a complete matrix in order, positive measurements, and
// the kernel arrival pump's zero-allocation guarantee. CI's bench smoke
// step runs it against the quick report.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Benches) != len(matrix) {
		return fmt.Errorf("%d benches, want %d", len(r.Benches), len(matrix))
	}
	for i, b := range r.Benches {
		if b.Name != matrix[i].name {
			return fmt.Errorf("bench %d is %q, want %q", i, b.Name, matrix[i].name)
		}
		if b.N <= 0 || b.WallNs <= 0 || b.NsPerOp <= 0 || b.EventsPerSec <= 0 {
			return fmt.Errorf("%s: non-positive measurement: %+v", b.Name, b)
		}
		if b.AllocsPerOp < 0 {
			return fmt.Errorf("%s: negative allocs/op %f", b.Name, b.AllocsPerOp)
		}
	}
	if pump := find(r, "kernel/arrival-pump"); pump.AllocsInt != 0 {
		return fmt.Errorf("kernel/arrival-pump allocates: %d allocs/op (exact %f), want 0",
			pump.AllocsInt, pump.AllocsPerOp)
	}
	if s := find(r, "workload/arrival-stream"); s.AllocsInt != 0 {
		return fmt.Errorf("workload/arrival-stream allocates: %d allocs/op (exact %f), want 0",
			s.AllocsInt, s.AllocsPerOp)
	}
	return nil
}

// Decode parses a report from its JSON encoding.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	return &r, nil
}

// Encode renders the report as indented JSON with a trailing newline,
// the format BENCH_<pr>.json files are checked in as.
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Speedup returns the wheel-over-heap engine speedup the report
// records (events/sec ratio), or 0 if either bench is missing.
func (r *Report) Speedup() float64 {
	heap := find(r, "engine/heap-churn")
	wheel := find(r, "engine/wheel-churn")
	if heap.EventsPerSec == 0 {
		return 0
	}
	return wheel.EventsPerSec / heap.EventsPerSec
}

func find(r *Report, name string) Result {
	for _, b := range r.Benches {
		if b.Name == name {
			return b
		}
	}
	return Result{}
}

// matrixBench is one fixed matrix entry: a name and a measurement
// function taking the size knob (full vs quick).
type matrixBench struct {
	name        string
	full, quick int
	run         func(n int) Result
}

// The matrix. Order is fixed; Validate pins it.
var matrix = []matrixBench{
	{"engine/wheel-churn", 2_000_000, 200_000, benchWheelChurn},
	{"engine/heap-churn", 2_000_000, 200_000, benchHeapChurn},
	{"pifo/push-pop", 2_000_000, 200_000, benchPifoChurn},
	{"kernel/arrival-pump", 1_000_000, 100_000, benchArrivalPump},
	{"workload/arrival-stream", 2_000_000, 200_000, benchArrivalStream},
	{"machine/tq-run", 20, 5, benchTQRun},
	{"machine/shinjuku-run", 20, 5, benchShinjukuRun},
	{"obs/tq-run-traced", 20, 5, benchTQRunTraced},
	{"sweep/parallel-grid", 8, 4, benchParallelGrid},
	{"rack/fleet-run", 20, 5, benchRackRun},
}

// churnDepth is the standing event count for the engine churn
// microbenchmarks — the regime a mid-load 16-core machine run keeps
// the queue in.
const churnDepth = 1024

// measure wraps a benchmark body with the common wall-clock and
// allocation accounting. n is the op count the body performs. The
// explicit collection first drains the GC debt accumulated by earlier
// matrix entries — as testing.B does between benchmarks — so no bench
// is billed for its predecessors' garbage.
func measure(n int64, note string, body func()) Result {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	body()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(n)
	return Result{
		N:            n,
		WallNs:       wall.Nanoseconds(),
		NsPerOp:      float64(wall.Nanoseconds()) / float64(n),
		EventsPerSec: float64(n) / wall.Seconds(),
		AllocsPerOp:  allocs,
		AllocsInt:    int64(allocs),
		Note:         note,
	}
}

func benchWheelChurn(n int) Result {
	sim.EngineChurn(churnDepth, n/10, 61) // warm the wheel's slot storage
	return measure(int64(n), "1024-deep self-renewing churn, timing wheel engine", func() {
		sim.EngineChurn(churnDepth, n, 61)
	})
}

func benchHeapChurn(n int) Result {
	sim.HeapChurn(churnDepth, n/10, 61)
	return measure(int64(n), "1024-deep self-renewing churn, retired 4-ary heap baseline", func() {
		sim.HeapChurn(churnDepth, n, 61)
	})
}

func benchPifoChurn(n int) Result {
	pifo.Churn(churnDepth, n/10, 61) // warm the queue's item storage
	return measure(int64(n), "1024-deep push/pop churn, rank-programmable PIFO queue", func() {
		pifo.Churn(churnDepth, n, 61)
	})
}

// benchArrivalStream measures the composed workload stream alone — the
// arrival-process × service-sampler × tenant-pick path, no engine — on
// the TPC-C mix under MMPP bursts with a two-tenant table, the
// costliest composition the plane offers. Steady state must stay
// allocation-free (Validate pins allocsPerOpInt == 0), matching the
// pump's guarantee one layer down.
func benchArrivalStream(n int) Result {
	w := workload.TPCC()
	spec := workload.Spec{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Arrivals: "mmpp:burst=10,duty=0.1,cycle=1ms",
		Tenants: []workload.Tenant{
			{Name: "big", Ratio: 0.9, Share: 0.5},
			{Name: "small", Ratio: 0.1, Share: 0.25},
		},
	}
	s := spec.Stream(rng.New(61))
	workload.StreamChurn(s, n/10) // warm the stream into steady state
	return measure(int64(n), "composed TPCC stream: mmpp bursts, two tenants; allocsPerOpInt must be 0", func() {
		workload.StreamChurn(s, n)
	})
}

func benchArrivalPump(n int) Result {
	m := cluster.MeasureArrivalPump(n)
	wallNs := m.NsPerOp * float64(n)
	return Result{
		N:            int64(n),
		WallNs:       int64(wallNs),
		NsPerOp:      m.NsPerOp,
		EventsPerSec: 1e9 / m.NsPerOp,
		AllocsPerOp:  m.AllocsPerOp,
		AllocsInt:    int64(m.AllocsPerOp),
		Note:         "kernel arrival path on the sink machine; allocsPerOpInt must be 0",
	}
}

// machineConfig is the standard mid-load sweep point shared by the full
// machine benches: Extreme Bimodal at 60% of 16-core saturation — the
// same regime the obs guard benchmarks use.
func machineConfig(ms int) cluster.RunConfig {
	w := workload.ExtremeBimodal()
	return cluster.RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16),
		Duration: sim.Time(ms) * sim.Millisecond,
		Warmup:   sim.Time(ms) / 10 * sim.Millisecond,
		Seed:     1,
	}
}

func benchMachine(mk func() cluster.Machine, cfg cluster.RunConfig, note string) Result {
	mk().Run(cfg) // warm caches and the allocator
	var events int64
	res := measure(1, note, func() {
		events = int64(mk().Run(cfg).Events)
	})
	res.N = events
	res.NsPerOp = float64(res.WallNs) / float64(events)
	res.EventsPerSec = float64(events) / (float64(res.WallNs) / 1e9)
	res.AllocsPerOp /= float64(events)
	res.AllocsInt = int64(res.AllocsPerOp)
	return res
}

func benchTQRun(ms int) Result {
	return benchMachine(func() cluster.Machine { return cluster.NewTQ(cluster.NewTQParams()) },
		machineConfig(ms), fmt.Sprintf("full TQ run, ExtremeBimodal @60%%, %dms", ms))
}

func benchShinjukuRun(ms int) Result {
	return benchMachine(func() cluster.Machine { return cluster.NewShinjuku(cluster.NewShinjukuParams(5 * sim.Microsecond)) },
		machineConfig(ms), fmt.Sprintf("full Shinjuku run (5µs quantum), ExtremeBimodal @60%%, %dms", ms))
}

func benchTQRunTraced(ms int) Result {
	cfg := machineConfig(ms)
	rec := obs.NewRing(1 << 22)
	cfg.Obs = rec
	// Reset the ring per constructed machine so every run records from
	// empty and stays in the fast append path (a Reset is O(1)).
	return benchMachine(func() cluster.Machine { rec.Reset(); return cluster.NewTQ(cluster.NewTQParams()) },
		cfg, fmt.Sprintf("full TQ run with obs ring attached, %dms", ms))
}

// benchRackRun measures the rack routing plane end to end: a 4-machine
// TQ fleet behind shortest-expected-wait routing — one shared engine,
// the fleet arrival pump, per-request routing with backlog probes and
// completion feedback, and per-machine admission all on the hot path.
func benchRackRun(ms int) Result {
	const fleetSize = 4
	w := workload.HighBimodal()
	cfg := cluster.RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(16*fleetSize),
		Duration: sim.Time(ms) * sim.Millisecond,
		Warmup:   sim.Time(ms) / 10 * sim.Millisecond,
		Seed:     1,
	}
	return benchMachine(func() cluster.Machine {
		return rack.Fleet{N: fleetSize, Machine: "tq", Policy: "sew"}
	}, cfg, fmt.Sprintf("4x tq fleet behind sew routing, HighBimodal @60%%, %dms", ms))
}

func benchParallelGrid(points int) Result {
	w := workload.ExtremeBimodal()
	max := w.MaxLoad(16)
	rates := make([]float64, points)
	for i := range rates {
		rates[i] = max * (0.1 + 0.8*float64(i)/float64(points-1))
	}
	mf := func() cluster.Machine { return cluster.NewTQ(cluster.NewTQParams()) }
	dur, warm := 10*sim.Millisecond, sim.Millisecond
	var events int64
	res := measure(1, fmt.Sprintf("ParallelSweep, TQ, %d rates 10%%-90%% of saturation, 10ms points", points), func() {
		for _, r := range cluster.ParallelSweep(mf, w, rates, dur, warm, 61, cluster.SweepOptions{}) {
			events += int64(r.Events)
		}
	})
	res.N = events
	res.NsPerOp = float64(res.WallNs) / float64(events)
	res.EventsPerSec = float64(events) / (float64(res.WallNs) / 1e9)
	res.AllocsPerOp /= float64(events)
	res.AllocsInt = int64(res.AllocsPerOp)
	return res
}
