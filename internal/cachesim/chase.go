package cachesim

import "repro/internal/rng"

// The §5.5.1 pointer-chasing workload: per job, an array of
// configurable size is visited in a fixed random cyclic order (random
// pointer chasing defeats prefetching and exposes every miss). A core
// runs one job for X accesses (one quantum's worth), saves its
// progress, and switches to the next array. TLS cores cycle among their
// own JobsPerCore arrays; CT cores see every array in the machine on a
// rotating basis.

// ChaseConfig parameterizes one experiment point.
type ChaseConfig struct {
	Framework   Framework
	QuantumNs   float64
	ArrayBytes  int
	JobsPerCore int // paper: 4
	Cores       int // paper: 16; under CT the core sees Cores*JobsPerCore arrays
	// WarmupAccesses and MeasuredAccesses control run length.
	WarmupAccesses   int
	MeasuredAccesses int
	Seed             uint64
}

// DefaultChaseConfig mirrors the paper's setup for the given framework,
// quantum and array size.
func DefaultChaseConfig(f Framework, quantumNs float64, arrayBytes int) ChaseConfig {
	return ChaseConfig{
		Framework:        f,
		QuantumNs:        quantumNs,
		ArrayBytes:       arrayBytes,
		JobsPerCore:      4,
		Cores:            16,
		WarmupAccesses:   400_000,
		MeasuredAccesses: 1_200_000,
		Seed:             1,
	}
}

// ChaseResult is the measured outcome for one configuration.
type ChaseResult struct {
	Config ChaseConfig
	// AvgLatencyNs is the paper's y-axis: average pointer-access
	// latency.
	AvgLatencyNs float64
	// Level hit rates for interpretation.
	L1HitRate, L2HitRate float64
}

// chaseArray is one job's array: a random cyclic permutation over
// cache-line-spaced elements, plus the saved progress position.
type chaseArray struct {
	base uint64
	next []uint32 // permutation: element -> successor element
	pos  uint32
}

func newChaseArray(base uint64, lines int, r *rng.Rand) *chaseArray {
	// Build a random cyclic permutation with Sattolo's algorithm, so a
	// single cycle covers every element (a fixed random iteration
	// order, as in §5.5.1).
	perm := make([]int, lines)
	for i := range perm {
		perm[i] = i
	}
	for i := lines - 1; i > 0; i-- {
		j := r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]uint32, lines)
	for i := 0; i < lines-1; i++ {
		next[perm[i]] = uint32(perm[i+1])
	}
	next[perm[lines-1]] = uint32(perm[0])
	return &chaseArray{base: base, next: next}
}

func (a *chaseArray) access(h *Hierarchy) float64 {
	lat := h.Access(a.base + uint64(a.pos)*64)
	a.pos = a.next[a.pos]
	return lat
}

// RunChase simulates one core's private cache hierarchy under the
// configured scheduling emulation and returns the average access
// latency.
func RunChase(cfg ChaseConfig) ChaseResult {
	if cfg.ArrayBytes < 64 {
		panic("cachesim: array must hold at least one line")
	}
	if cfg.JobsPerCore < 1 || cfg.Cores < 1 || cfg.QuantumNs <= 0 {
		panic("cachesim: invalid chase configuration")
	}
	r := rng.New(cfg.Seed)
	lines := cfg.ArrayBytes / 64

	nArrays := cfg.JobsPerCore
	if cfg.Framework == CT {
		nArrays = cfg.JobsPerCore * cfg.Cores
	}
	arrays := make([]*chaseArray, nArrays)
	// Arrays are laid out contiguously with a 65-line guard gap, the
	// way a real allocator packs them. A power-of-two stride would
	// alias every array onto the same cache sets and manufacture
	// conflict misses that no real heap layout produces.
	stride := uint64(cfg.ArrayBytes) + 65*64
	for i := range arrays {
		arrays[i] = newChaseArray(uint64(i)*stride, lines, r)
	}

	h := NewXeonHierarchy()
	// X, the accesses per quantum, tracks the running average latency
	// so a quantum of virtual time maps to the right amount of work —
	// the paper sets X to match the target quantum size.
	avg := h.LatL2 // neutral starting estimate
	cur := 0
	done := 0
	total := cfg.WarmupAccesses + cfg.MeasuredAccesses
	warmed := false
	for done < total {
		x := int(cfg.QuantumNs / avg)
		if x < 1 {
			x = 1
		}
		a := arrays[cur]
		var qTotal float64
		for i := 0; i < x && done < total; i++ {
			qTotal += a.access(h)
			done++
			if !warmed && done >= cfg.WarmupAccesses {
				warmed = true
				h.ResetStats()
			}
		}
		if x > 0 {
			// EWMA of per-access latency steers the quantum size.
			avg = 0.9*avg + 0.1*(qTotal/float64(x))
			if avg < h.LatL1 {
				avg = h.LatL1
			}
		}
		cur = (cur + 1) % nArrays
	}
	st := h.Stats()
	return ChaseResult{
		Config:       cfg,
		AvgLatencyNs: st.AvgLatencyNs,
		L1HitRate:    st.L1HitRate,
		L2HitRate:    st.L2HitRate,
	}
}

// ArraySizes returns the paper's sweep: 1KB to 1MB in powers of two.
func ArraySizes() []int {
	var out []int
	for s := 1 << 10; s <= 1<<20; s <<= 1 {
		out = append(out, s)
	}
	return out
}
