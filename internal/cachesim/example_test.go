package cachesim_test

import (
	"fmt"

	"repro/internal/cachesim"
)

// ExampleReuseTracker computes reuse distances over a tiny trace.
func ExampleReuseTracker() {
	tr := cachesim.NewReuseTracker()
	for _, addr := range []uint64{0, 64, 128, 0} {
		fmt.Println(tr.Access(addr))
	}
	// Output:
	// -1
	// -1
	// -1
	// 2
}

// ExampleAnalyticReuse reproduces a Table 2 cell: under centralized
// scheduling, a quantum-first access sees every concurrent job's array.
func ExampleAnalyticReuse() {
	const cores, jobs, arrayBytes = 16, 4, 32 << 10
	d := cachesim.AnalyticReuse(cachesim.CT, true, cores, jobs, arrayBytes)
	fmt.Printf("%d KB\n", d>>10)
	// Output:
	// 2048 KB
}
