package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCacheHitsAfterInstall(t *testing.T) {
	c := NewCache(1<<10, 2) // 8 sets x 2 ways
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1<<10, 2) // 8 sets, 2 ways; lines mapping to set 0: 0, 8*64=512, 1024...
	c.Access(0)
	c.Access(512)
	c.Access(0)    // 0 is now MRU, 512 LRU
	c.Access(1024) // evicts 512
	if !c.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(512) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	// A working set that fits must converge to 100% hits; one that
	// exceeds capacity with LRU + cyclic access pattern keeps missing.
	c := NewCache(8<<10, 8) // 8KB
	fits := 100             // 100 lines = 6.4KB < 8KB
	for pass := 0; pass < 3; pass++ {
		c.ResetStats()
		for i := 0; i < fits; i++ {
			c.Access(uint64(i) * 64)
		}
	}
	if hits, misses := c.Stats(); misses != 0 || hits != uint64(fits) {
		t.Fatalf("fitting set: hits=%d misses=%d", hits, misses)
	}
}

func TestCacheBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	NewCache(3<<10, 2)
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewXeonHierarchy()
	first := h.Access(0) // cold: memory
	if first != h.LatMem {
		t.Fatalf("cold access latency %v, want %v", first, h.LatMem)
	}
	second := h.Access(0) // now in L1
	if second != h.LatL1 {
		t.Fatalf("warm access latency %v, want %v", second, h.LatL1)
	}
}

func TestHierarchyStatsAggregate(t *testing.T) {
	h := NewXeonHierarchy()
	for i := 0; i < 100; i++ {
		h.Access(uint64(i) * 64)
	}
	for i := 0; i < 100; i++ {
		h.Access(uint64(i) * 64)
	}
	st := h.Stats()
	if st.Accesses != 200 {
		t.Fatalf("Accesses = %d", st.Accesses)
	}
	if st.HitsL1 != 100 || st.MemAccesses != 100 {
		t.Fatalf("hits=%d mem=%d, want 100/100", st.HitsL1, st.MemAccesses)
	}
	wantAvg := (h.LatL1 + h.LatMem) / 2
	if diff := st.AvgLatencyNs - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("avg latency %v, want %v", st.AvgLatencyNs, wantAvg)
	}
}

func TestReuseTrackerBasic(t *testing.T) {
	r := NewReuseTracker()
	// A, B, C, A: A's reuse distance is 2 (B and C intervened).
	if d := r.Access(0); d != -1 {
		t.Fatalf("first access dist %d, want -1", d)
	}
	r.Access(64)
	r.Access(128)
	if d := r.Access(0); d != 2 {
		t.Fatalf("reuse distance %d, want 2", d)
	}
	// Immediate re-access: distance 0.
	if d := r.Access(0); d != 0 {
		t.Fatalf("immediate reuse distance %d, want 0", d)
	}
}

func TestReuseTrackerCountsDistinctLines(t *testing.T) {
	r := NewReuseTracker()
	r.Access(0)
	// Touch line 1 five times: only one distinct line intervenes.
	for i := 0; i < 5; i++ {
		r.Access(64)
	}
	if d := r.Access(0); d != 1 {
		t.Fatalf("distance %d, want 1 (distinct lines, not accesses)", d)
	}
	if r.Lines() != 2 {
		t.Fatalf("Lines = %d, want 2", r.Lines())
	}
}

func TestReuseTrackerCyclicArray(t *testing.T) {
	// Iterating over N lines repeatedly: from the second pass, every
	// access has reuse distance N-1.
	r := NewReuseTracker()
	const n = 100
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			d := r.Access(uint64(i) * 64)
			if pass == 0 {
				if d != -1 {
					t.Fatalf("first pass dist %d", d)
				}
			} else if d != n-1 {
				t.Fatalf("pass %d line %d: dist %d, want %d", pass, i, d, n-1)
			}
		}
	}
}

func TestReuseTrackerMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		fast := NewReuseTracker()
		var trace []uint64
		for i := 0; i < 400; i++ {
			addr := uint64(r.Intn(40)) * 64
			trace = append(trace, addr)
			got := fast.Access(addr)
			want := naiveReuse(trace)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// naiveReuse computes the reuse distance of the last access by direct
// scan.
func naiveReuse(trace []uint64) int {
	last := trace[len(trace)-1] >> 6
	seen := map[uint64]bool{}
	for i := len(trace) - 2; i >= 0; i-- {
		l := trace[i] >> 6
		if l == last {
			return len(seen)
		}
		seen[l] = true
	}
	return -1
}

func TestAnalyticReuseTable2(t *testing.T) {
	const C, J, A = 16, 4, 32 << 10
	if got := AnalyticReuse(CT, true, C, J, A); got != C*J*A {
		t.Fatalf("CT first = %d, want %d", got, C*J*A)
	}
	if got := AnalyticReuse(TLS, true, C, J, A); got != J*A {
		t.Fatalf("TLS first = %d, want %d", got, J*A)
	}
	if got := AnalyticReuse(CT, false, C, J, A); got != A {
		t.Fatalf("CT non-first = %d, want %d", got, A)
	}
	if got := AnalyticReuse(TLS, false, C, J, A); got != A {
		t.Fatalf("TLS non-first = %d, want %d", got, A)
	}
}

// Scaled-down chase config for fast tests.
func testChase(f Framework, quantumNs float64, arrayBytes int) ChaseConfig {
	cfg := DefaultChaseConfig(f, quantumNs, arrayBytes)
	cfg.WarmupAccesses = 60_000
	cfg.MeasuredAccesses = 150_000
	return cfg
}

func TestChaseTinyArrayAllL1(t *testing.T) {
	// 1KB arrays x 4 jobs = 4KB working set: everything fits in L1, so
	// the average latency must be at (or a hair above) the L1 latency
	// for every quantum.
	res := RunChase(testChase(TLS, 2000, 1<<10))
	if res.AvgLatencyNs > 2.1 {
		t.Fatalf("1KB TLS avg latency %v, want ≈1.9 (L1)", res.AvgLatencyNs)
	}
}

func TestChaseSmallQuantaHurtMidSizeArrays(t *testing.T) {
	// Figure 13's finding: for 8-32KB arrays, 2µs quanta cause more L1
	// misses than 16µs quanta; for 1KB arrays they do not.
	small := RunChase(testChase(TLS, 2000, 16<<10))
	large := RunChase(testChase(TLS, 16000, 16<<10))
	if small.AvgLatencyNs <= large.AvgLatencyNs*1.05 {
		t.Fatalf("16KB arrays: 2µs latency %v not clearly above 16µs latency %v",
			small.AvgLatencyNs, large.AvgLatencyNs)
	}
	tiny2 := RunChase(testChase(TLS, 2000, 1<<10))
	tiny16 := RunChase(testChase(TLS, 16000, 1<<10))
	if diff := tiny2.AvgLatencyNs - tiny16.AvgLatencyNs; diff > 0.5 {
		t.Fatalf("1KB arrays: quantum size changed latency by %vns", diff)
	}
}

func TestChaseTinyQuantaNoWorseThanSmallQuanta(t *testing.T) {
	// Figure 13's second finding: once quanta are small enough, going
	// smaller changes little (0.5µs ≈ 2µs).
	a := RunChase(testChase(TLS, 500, 8<<10))
	b := RunChase(testChase(TLS, 2000, 8<<10))
	ratio := a.AvgLatencyNs / b.AvgLatencyNs
	if ratio > 1.35 || ratio < 0.65 {
		t.Fatalf("0.5µs vs 2µs latency ratio %v, want near 1", ratio)
	}
}

func TestChaseCTWorseThanTLS(t *testing.T) {
	// Figure 14: at 2µs quanta, CT's 64-array rotation amplifies reuse
	// distances 64x vs TLS's 4x, causing more misses for mid-size
	// arrays.
	arr := 64 << 10
	tls := RunChase(testChase(TLS, 2000, arr))
	ct := RunChase(testChase(CT, 2000, arr))
	if ct.AvgLatencyNs <= tls.AvgLatencyNs {
		t.Fatalf("CT latency %v not above TLS %v at 64KB", ct.AvgLatencyNs, tls.AvgLatencyNs)
	}
}

func TestChaseDeterministic(t *testing.T) {
	a := RunChase(testChase(TLS, 2000, 8<<10))
	b := RunChase(testChase(TLS, 2000, 8<<10))
	if a.AvgLatencyNs != b.AvgLatencyNs {
		t.Fatalf("same seed diverged: %v vs %v", a.AvgLatencyNs, b.AvgLatencyNs)
	}
}

func TestArraySizes(t *testing.T) {
	sizes := ArraySizes()
	if len(sizes) != 11 || sizes[0] != 1<<10 || sizes[10] != 1<<20 {
		t.Fatalf("ArraySizes = %v", sizes)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewXeonHierarchy()
	r := rng.New(1)
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1<<16)) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i&8191])
	}
}

func BenchmarkReuseTracker(b *testing.B) {
	r := NewReuseTracker()
	gen := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Access(uint64(gen.Intn(1<<14)) * 64)
	}
}
