// Package cachesim reproduces the paper's µs-scale cache study (§5.5):
// a set-associative LRU cache hierarchy, the pointer-chasing workload
// that emulates two-level vs centralized scheduling (Figures 13 and
// 14), the reuse-distance analysis of Table 2, and an exact
// reuse-distance tracker for real address traces (Figure 15).
package cachesim

// Cache is one set-associative level with LRU replacement.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	// tags[set*ways+way] holds the line tag; order[set*ways+way] holds
	// recency (higher = more recent).
	tags  []uint64
	valid []bool
	order []uint64
	tick  uint64

	hits, misses uint64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// 64-byte lines. sizeBytes must be a multiple of ways*64 with a
// power-of-two set count.
func NewCache(sizeBytes, ways int) *Cache {
	const line = 64
	sets := sizeBytes / (line * ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cachesim: set count must be a positive power of two")
	}
	return &Cache{
		lineShift: 6,
		setMask:   uint64(sets - 1),
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		order:     make([]uint64, sets*ways),
	}
}

// Access looks up the line containing addr, updating LRU state, and
// reports whether it hit. On miss the line is installed, evicting the
// least recently used way.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways
	c.tick++
	victim := base
	var victimOrder uint64 = ^uint64(0)
	for w := base; w < base+c.ways; w++ {
		if c.valid[w] && c.tags[w] == line {
			c.order[w] = c.tick
			c.hits++
			return true
		}
		if !c.valid[w] {
			victim = w
			victimOrder = 0
		} else if c.order[w] < victimOrder {
			victim = w
			victimOrder = c.order[w]
		}
	}
	c.misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.order[victim] = c.tick
	return false
}

// Stats returns accumulated hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats clears counters without touching contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Hierarchy models the private L1/L2 of a Xeon 8176 core, the shared
// L3, and memory, with per-level access latencies in nanoseconds.
type Hierarchy struct {
	L1, L2, L3 *Cache
	// Latencies in ns for a hit at each level and for memory.
	LatL1, LatL2, LatL3, LatMem float64

	accesses uint64
	totalNs  float64
	hitsL1   uint64
	hitsL2   uint64
	hitsL3   uint64
	misses   uint64
}

// NewXeonHierarchy returns the testbed's cache shape: 32KB/8-way L1,
// 1MB/16-way private L2, 38.5MB(≈38MB simulated)/11-way shared L3.
func NewXeonHierarchy() *Hierarchy {
	return &Hierarchy{
		L1: NewCache(32<<10, 8),
		// 38.5MB isn't a power-of-two set count at 11 ways; model the
		// share of L3 one core competes for with 32MB/16-way.
		L2:     NewCache(1<<20, 16),
		L3:     NewCache(32<<20, 16),
		LatL1:  1.9,
		LatL2:  6.7,
		LatL3:  19,
		LatMem: 95,
	}
}

// Access walks the hierarchy (inclusive fill) and returns the access
// latency in ns.
func (h *Hierarchy) Access(addr uint64) float64 {
	h.accesses++
	var lat float64
	switch {
	case h.L1.Access(addr):
		lat = h.LatL1
		h.hitsL1++
	case h.L2.Access(addr):
		lat = h.LatL2
		h.hitsL2++
	case h.L3.Access(addr):
		lat = h.LatL3
		h.hitsL3++
	default:
		lat = h.LatMem
		h.misses++
	}
	h.totalNs += lat
	return lat
}

// HierarchyStats summarizes accesses since the last reset.
type HierarchyStats struct {
	Accesses               uint64
	HitsL1, HitsL2, HitsL3 uint64
	MemAccesses            uint64
	AvgLatencyNs           float64
	L1HitRate, L2HitRate   float64
}

// Stats returns the aggregate view.
func (h *Hierarchy) Stats() HierarchyStats {
	s := HierarchyStats{
		Accesses:    h.accesses,
		HitsL1:      h.hitsL1,
		HitsL2:      h.hitsL2,
		HitsL3:      h.hitsL3,
		MemAccesses: h.misses,
	}
	if h.accesses > 0 {
		s.AvgLatencyNs = h.totalNs / float64(h.accesses)
		s.L1HitRate = float64(h.hitsL1) / float64(h.accesses)
		s.L2HitRate = float64(h.hitsL1+h.hitsL2) / float64(h.accesses)
	}
	return s
}

// ResetStats clears counters (cache contents stay warm).
func (h *Hierarchy) ResetStats() {
	h.accesses, h.totalNs = 0, 0
	h.hitsL1, h.hitsL2, h.hitsL3, h.misses = 0, 0, 0, 0
	h.L1.ResetStats()
	h.L2.ResetStats()
	h.L3.ResetStats()
}
