package cachesim

// ReuseTracker computes exact reuse distances over an address stream at
// cache-line granularity: the reuse distance of an access is the number
// of distinct lines touched since the previous access to the same line
// (§5.5.2). Cold (first-ever) accesses report distance -1.
//
// It uses the classic Bennett-Kruskal algorithm: a Fenwick tree over
// access timestamps counts, for each access, how many lines were last
// touched inside the window since this line's previous access —
// O(log n) per access.
type ReuseTracker struct {
	last map[uint64]int // line -> timestamp of last access
	vals []int8         // marker per timestamp (1 = most recent access of some line)
	bit  []int          // Fenwick tree over vals, 1-based
	t    int
}

// NewReuseTracker returns an empty tracker.
func NewReuseTracker() *ReuseTracker {
	return &ReuseTracker{last: map[uint64]int{}, vals: make([]int8, 16), bit: make([]int, 16)}
}

// Access records a touch of addr and returns its reuse distance in
// distinct cache lines, or -1 for the first access to the line.
func (r *ReuseTracker) Access(addr uint64) int {
	line := addr >> 6
	r.t++
	r.ensure(r.t)
	dist := -1
	if t0, ok := r.last[line]; ok {
		// Distinct lines last-touched in (t0, t): each line has exactly
		// one marker, at its most recent access time.
		dist = r.rangeSum(t0+1, r.t-1)
		r.add(t0, -1)
	}
	r.add(r.t, 1)
	r.last[line] = r.t
	return dist
}

// Lines reports the number of distinct lines seen.
func (r *ReuseTracker) Lines() int { return len(r.last) }

// ensure grows the tree to cover timestamp n, rebuilding from the raw
// marker array (a Fenwick tree cannot be extended in place because the
// new high-index nodes summarize old ranges).
func (r *ReuseTracker) ensure(n int) {
	if n < len(r.bit) {
		return
	}
	size := len(r.bit)
	for size <= n {
		size *= 2
	}
	nv := make([]int8, size)
	copy(nv, r.vals)
	r.vals = nv
	r.bit = make([]int, size)
	for i := 1; i < size; i++ {
		r.bit[i] += int(r.vals[i])
		if p := i + (i & -i); p < size {
			r.bit[p] += r.bit[i]
		}
	}
}

func (r *ReuseTracker) add(i, delta int) {
	r.vals[i] += int8(delta)
	for ; i < len(r.bit); i += i & (-i) {
		r.bit[i] += delta
	}
}

func (r *ReuseTracker) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += r.bit[i]
	}
	return s
}

func (r *ReuseTracker) rangeSum(a, b int) int {
	if a > b {
		return 0
	}
	return r.prefix(b) - r.prefix(a-1)
}

// Framework identifies the scheduling emulation mode of §5.5.1.
type Framework int

// Scheduling frameworks under study.
const (
	// TLS is two-level scheduling: each core cycles among its own J
	// arrays.
	TLS Framework = iota
	// CT is centralized scheduling: all C*J arrays rotate across all
	// cores, so each core's cache sees every array.
	CT
)

func (f Framework) String() string {
	if f == TLS {
		return "TLS"
	}
	return "CT"
}

// AnalyticReuse reproduces Table 2: the reuse distance (in bytes of
// distinct data) of an access during array iteration under preemptive
// sharing. first says whether this is the element's first access within
// the current quantum; C is the number of worker cores, J jobs per
// core, A the array size in bytes.
func AnalyticReuse(f Framework, first bool, C, J int, A int) int {
	if !first {
		// Re-access within the same quantum: only this array's data
		// intervenes.
		return A
	}
	switch f {
	case TLS:
		// The previous access was a quantum (J switches) ago: all J of
		// the core's arrays intervened.
		return J * A
	default:
		// Centralized: every concurrent job's array may have run on
		// this core since.
		return C * J * A
	}
}
