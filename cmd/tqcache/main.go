// Command tqcache regenerates the µs-scale cache study of §5.5: the
// pointer-chase latency curves for two-level scheduling at several
// quanta (Figure 13), the TLS-vs-centralized comparison (Figure 14),
// the reuse-distance histograms of the KV store's GET and SCAN
// operations (Figure 15), and the analytic reuse-distance table
// (Table 2).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "what to regenerate: 13, 14, 15, table2, all")
	accesses := flag.Int("accesses", 1_200_000, "measured accesses per configuration")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	switch *fig {
	case "13":
		fig13(*accesses)
	case "14":
		fig14(*accesses)
	case "15":
		fig15(*seed)
	case "table2":
		table2()
	case "all":
		fig13(*accesses)
		fig14(*accesses)
		fig15(*seed)
		table2()
	default:
		fmt.Fprintf(os.Stderr, "tqcache: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig13(accesses int) {
	fmt.Println("# Figure 13: TLS avg access latency (ns) vs array size (bytes), by quantum")
	printSeries(experiments.Fig13(accesses))
}

func fig14(accesses int) {
	fmt.Println("# Figure 14: TLS vs CT avg access latency (ns) at 2µs quanta")
	printSeries(experiments.Fig14(accesses))
}

func fig15(seed uint64) {
	fmt.Println("# Figure 15: reuse-distance histograms (bytes), KV-store GET and SCAN")
	res := experiments.Fig15(40_000, 20_000, 300, seed)
	printHist := func(name string, h *stats.Histogram, above float64) {
		fmt.Printf("## %s (%.2f%% of accesses above 8KB)\n", name, 100*above)
		counts := h.Buckets()
		for b, c := range counts {
			if c == 0 {
				continue
			}
			fmt.Printf("%s\t<%g\t%d\n", name, h.BucketUpper(b), c)
		}
	}
	printHist("GET", res.GET, res.GETAbove8KB)
	printHist("SCAN", res.SCAN, res.SCANAbove8KB)
}

func table2() {
	fmt.Println("# Table 2: reuse distance of array-iteration accesses (C=16 cores, J=4 jobs/core)")
	fmt.Println("framework\tfirst-access-in-quantum\treuse-distance")
	const C, J = 16, 4
	const A = 1 // in units of the array size
	rows := []struct {
		f     cachesim.Framework
		first bool
	}{
		{cachesim.CT, true}, {cachesim.CT, false},
		{cachesim.TLS, true}, {cachesim.TLS, false},
	}
	for _, r := range rows {
		d := cachesim.AnalyticReuse(r.f, r.first, C, J, A)
		label := map[int]string{C * J: "C*J*A", J: "J*A", 1: "A"}[d]
		fmt.Printf("%s\t%v\t%s\n", r.f, r.first, label)
	}
}

func printSeries(series []stats.Series) {
	for _, s := range series {
		fmt.Print(s.String())
		fmt.Println()
	}
}
