// Command tqsim regenerates the scheduling figures of the Tiny Quanta
// paper from the discrete-event machine models: the §2 motivation
// simulations (Figures 1-2), the policy comparison (Figure 4), TQ's
// quantum sweep (Figures 5-6), the cross-system comparisons (Figures
// 7-10), the ablation breakdowns (Figures 11-12), the dispatcher
// scalability study (Figure 16), and the §6 dispatcher-throughput
// microbenchmark.
//
// Output is tab-separated: label, x, y — one block per curve —
// suitable for plotting or diffing against EXPERIMENTS.md.
//
// Usage:
//
//	tqsim -fig 7                 # one figure at full scale
//	tqsim -fig all -quick        # everything, reduced duration
//	tqsim -fig dispatcher        # §6 microbenchmark
//	tqsim -rack 10 -route random,sew  # routing policies over a 10-machine fleet
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/rack"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1,2,4,5,6,7,8,9,10,11,12,16,table1,dispatcher,all")
	quick := flag.Bool("quick", false, "run at reduced simulated duration")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "sweep worker pool size: 0 = GOMAXPROCS, 1 = sequential")
	progress := flag.Bool("progress", false, "print per-point sweep progress to stderr")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable TQ-vs-Shinjuku comparison timeline to this file and exit")
	metricsOut := flag.String("metrics", "", "write a windowed scheduling time series (TSV) of a short TQ run to this file and exit")
	slo := flag.String("slo", "", `per-class sojourn SLOs for goodput, e.g. "GET=50us,SCAN=1ms" or a bare "100us" for all classes`)
	machines := flag.String("machines", "", `comma-separated registry machines to sweep side by side, e.g. "tq,shinjuku,caladan-ws,ct-ps"; "list" prints the catalogue`)
	discipline := flag.String("discipline", "", `queue discipline for -machines (machines with a discipline knob only); "list" prints the catalogue`)
	gap := flag.Bool("gap", false, "print the optimality-gap table (p99 sojourn vs the clairvoyant oracle-srpt) for the -machines list (default: every registry machine) on -workload")
	workloadName := flag.String("workload", "HighBimodal", "workload for -machines and -rack (names as in -fig table1)")
	arrivals := flag.String("arrivals", "", `arrival process for every sweep, e.g. "mmpp:burst=10,duty=0.1,cycle=1ms"; empty = the paper's Poisson; "list" prints the catalogue`)
	svc := flag.String("svc", "", `single-class service law overriding -workload for -machines/-gap/-rack, e.g. "pareto:mean=10us,alpha=1.4"; "list" prints the catalogue`)
	tenants := flag.String("tenants", "", `tenant split "name=ratio[@share],..." e.g. "big=0.9@0.5,small=0.1@0.25"; adds per-tenant ledgers to every run`)
	rackN := flag.Int("rack", 0, "fleet size: sweep -route routing policies over N-machine fleets of each -machines machine (default fleet machine: tq)")
	route := flag.String("route", "random,p2c,least,sew", `comma-separated routing policies for -rack; "list" prints the catalogue`)
	flag.Parse()
	if *route == "list" {
		for _, n := range rack.RouterNames() {
			fmt.Println(n)
		}
		return
	}
	if *machines == "list" {
		for _, n := range cluster.Names() {
			e, _ := cluster.Lookup(n)
			knob := " "
			if e.NewD != nil {
				knob = "D" // takes -discipline
			}
			fmt.Printf("%-20s %s %s\n", n, knob, e.Summary)
		}
		return
	}
	if *discipline == "list" {
		for _, n := range pifo.Names() {
			fmt.Println(n)
		}
		return
	}
	if *arrivals == "list" {
		for _, n := range workload.ArrivalNames() {
			fmt.Println(n)
		}
		return
	}
	if *svc == "list" {
		for _, n := range workload.ServiceNames() {
			fmt.Println(n)
		}
		return
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote TQ-vs-Shinjuku timeline to %s (open in https://ui.perfetto.dev, or run: tqtrace summarize %s)\n",
			*traceOut, *traceOut)
		return
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote windowed scheduling metrics to %s\n", *metricsOut)
		return
	}
	if *fig == "" && *machines == "" && *rackN <= 0 && !*gap {
		flag.Usage()
		os.Exit(2)
	}
	sc := experiments.Full
	if *quick {
		sc = experiments.Quick
	}
	sc.Seed = *seed
	sc.Workers = *parallel
	if *slo != "" {
		slos, err := parseSLOs(*slo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		sc.SLOs = slos
		showGoodput = true
	}
	if *arrivals != "" {
		// Validate the spec up front (any positive rate does) so typos
		// fail here with the parser's message, not mid-sweep as a panic.
		if _, err := workload.ParseArrivals(*arrivals, 1e6); err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		sc.Arrivals = *arrivals
	}
	if *tenants != "" {
		ts, err := workload.ParseTenants(*tenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		sc.Tenants = ts
	}
	if *svc != "" {
		w, err := workload.FromLaw(*svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		svcWorkload = w
	}
	if *progress {
		sc.Progress = func(p cluster.SweepPoint) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s rate=%.3gMrps wall=%s %.2gM events/s\n",
				p.Done, p.Total, p.Result.System, p.Rate/1e6,
				p.Wall.Round(time.Millisecond), p.EventsPerSec()/1e6)
		}
	}

	if *rackN > 0 {
		if err := runRack(sc, *rackN, *route, *machines, *workloadName); err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		return
	}
	if *gap {
		if err := runGap(sc, *machines, *workloadName); err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		return
	}
	if *machines != "" {
		if err := runMachines(sc, *machines, *workloadName, *discipline); err != nil {
			fmt.Fprintln(os.Stderr, "tqsim:", err)
			os.Exit(2)
		}
		return
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"1", "2", "4", "5", "6", "7", "8", "9", "10", "11", "12", "16", "dispatcher"}
	}
	for _, f := range figs {
		start := time.Now()
		run(f, sc)
		if *progress {
			fmt.Fprintf(os.Stderr, "# figure %s done in %s\n", f, time.Since(start).Round(time.Millisecond))
		}
	}
}

func run(fig string, sc experiments.Scale) {
	switch fig {
	case "1":
		header("Figure 1: p99.9 slowdown vs load (centralized PS, zero overhead), x=rate(rps)")
		printSeries(experiments.Fig1(sc))
	case "2":
		header("Figure 2: max rate with p99.9 slowdown<=10 vs quantum(µs)")
		printSeries(experiments.Fig2(sc))
	case "4":
		header("Figure 4: long-job p99.9 slowdown, CT vs TLS tie-breaking, x=rate(rps)")
		printSeries(experiments.Fig4(sc))
	case "5":
		header("Figure 5: TQ quantum sweep, short-job p99.9 sojourn(µs) vs rate(rps)")
		printSeries(experiments.Fig5(sc))
	case "6":
		header("Figure 6: TQ quantum sweep, long-job p99.9 sojourn(µs) vs rate(rps)")
		printSeries(experiments.Fig6(sc))
	case "7":
		header("Figure 7: TQ vs Shinjuku vs Caladan, p99.9 end-to-end(µs) vs rate(rps)")
		for _, cmp := range experiments.Fig7(sc) {
			printComparison(cmp)
		}
	case "8":
		header("Figure 8: TPC-C, p99.9 end-to-end(µs) and overall slowdown vs rate(rps)")
		printComparison(experiments.Fig8(sc))
	case "9":
		header("Figure 9: Exp(1), p99.9 end-to-end(µs) vs rate(rps)")
		printComparison(experiments.Fig9(sc))
	case "10":
		header("Figure 10: RocksDB mixes, p99.9 end-to-end(µs) vs rate(rps)")
		for _, cmp := range experiments.Fig10(sc) {
			printComparison(cmp)
		}
	case "11":
		header("Figure 11: forced-multitasking ablations, GET p99.9 sojourn(µs) vs rate(rps)")
		printSeries(experiments.Fig11(sc))
	case "12":
		header("Figure 12: two-level-scheduling ablations, GET p99.9 sojourn(µs) vs rate(rps)")
		printSeries(experiments.Fig12(sc))
	case "16":
		header("Figure 16: max cores within 10% of target quantum, x=quantum(µs)")
		printSeries(experiments.Fig16(sc))
	case "table1":
		header("Table 1: evaluated workloads")
		fmt.Printf("%-18s %-12s %10s %8s\n", "workload", "request", "runtime(µs)", "ratio")
		for _, w := range workload.All() {
			for _, c := range w.Classes {
				fmt.Printf("%-18s %-12s %10.1f %7.1f%%\n", w.Name, c.Name, c.Service.Micros(), c.Ratio*100)
			}
			fmt.Printf("%-18s %-12s %10.2f  (mean)  dispersion %.0fx\n",
				"", "overall", w.MeanService().Micros(), w.DispersionRatio())
		}
	case "dispatcher":
		header("§6: dispatcher throughput on tiny jobs (offered 16Mrps)")
		out := experiments.DispatcherThroughput(sc, 16e6)
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s\t%.3g rps\n", k, out[k])
		}
	default:
		fmt.Fprintf(os.Stderr, "tqsim: unknown figure %q\n", fig)
		os.Exit(2)
	}
}

// parseMachineList resolves a comma-separated -machines value against
// the registry.
func parseMachineList(list string) ([]string, error) {
	var names []string
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := cluster.Lookup(n); !ok {
			return nil, fmt.Errorf("unknown machine %q (run -machines list for the catalogue)", n)
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty -machines value")
	}
	return names, nil
}

// runMachines sweeps the named registry machines side by side over one
// workload — any registered machine, default parameters, selected by
// name (the registry is the front door; see cluster.Names). A
// -discipline rebuilds every named machine with that queue discipline
// through its Entry.NewD constructor.
func runMachines(sc experiments.Scale, list, workloadName, discipline string) error {
	w, err := findWorkload(workloadName)
	if err != nil {
		return err
	}
	names, err := parseMachineList(list)
	if err != nil {
		return err
	}
	if discipline != "" {
		if _, err := pifo.Parse(discipline); err != nil {
			return fmt.Errorf("%v (run -discipline list for the catalogue)", err)
		}
		for _, n := range names {
			if e, _ := cluster.Lookup(n); e.NewD == nil {
				return fmt.Errorf("machine %q has no discipline knob; drop it from -machines or drop -discipline", n)
			}
		}
	}
	header(fmt.Sprintf("Machine comparison on %s: p99.9 end-to-end(µs) vs rate(rps)", w.Name))
	printComparison(experiments.CompareMachinesD(sc, w, nil, discipline, names...))
	return nil
}

// runGap prints the optimality-gap table: every named machine's p99
// sojourn for the workload's first class, divided by the clairvoyant
// oracle-srpt's at the same rate, at mid-load (55% of saturation) and
// the overload knee (90%). Empty -machines means the whole catalogue.
func runGap(sc experiments.Scale, list, workloadName string) error {
	w, err := findWorkload(workloadName)
	if err != nil {
		return err
	}
	names := cluster.Names()
	if list != "" {
		if names, err = parseMachineList(list); err != nil {
			return err
		}
	}
	class := w.Classes[0].Name
	header(fmt.Sprintf("Optimality gap on %s, class %s: p99 sojourn ÷ oracle-srpt (1.00 = clairvoyant SRPT)", w.Name, class))
	fmt.Printf("%-20s %-24s %10s %10s\n", "machine", "display", "mid 55%", "knee 90%")
	for _, r := range experiments.OptimalityGapTable(sc, w, class, names...) {
		fmt.Printf("%-20s %-24s %10.2f %10.2f\n", r.Name, r.Display, r.Mid, r.Over)
	}
	return nil
}

// runRack sweeps routing policies side by side over N-machine fleets —
// the rack routing plane behind -rack N. The -machines list names the
// per-node machine(s), defaulting to tq; -route names the policies.
func runRack(sc experiments.Scale, n int, routeList, machineList, workloadName string) error {
	w, err := findWorkload(workloadName)
	if err != nil {
		return err
	}
	known := map[string]bool{}
	for _, p := range rack.RouterNames() {
		known[p] = true
	}
	var policies []string
	for _, p := range strings.Split(routeList, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !known[p] {
			return fmt.Errorf("unknown routing policy %q (known: %s)", p, strings.Join(rack.RouterNames(), ", "))
		}
		policies = append(policies, p)
	}
	if len(policies) == 0 {
		return fmt.Errorf("empty -route value")
	}
	if machineList == "" {
		machineList = "tq"
	}
	var names []string
	for _, m := range strings.Split(machineList, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		e, ok := cluster.Lookup(m)
		if !ok {
			return fmt.Errorf("unknown machine %q (run -machines list for the catalogue)", m)
		}
		if !e.CanNode() {
			return fmt.Errorf("machine %q has no node form and cannot join a fleet", m)
		}
		names = append(names, m)
	}
	if len(names) == 0 {
		return fmt.Errorf("empty -machines value")
	}
	for _, m := range names {
		header(fmt.Sprintf("Rack: %d× %s on %s, routing policies side by side, x=rate(rps)", n, m, w.Name))
		printRack(experiments.CompareRack(sc, w, n, m, policies))
	}
	return nil
}

// svcWorkload, when non-nil, is the single-class workload built from
// the -svc service-law spec; it overrides -workload wherever a
// workload is resolved by name.
var svcWorkload *workload.Workload

// findWorkload resolves a workload by its Table 1 name, unless a -svc
// law already built one.
func findWorkload(name string) (*workload.Workload, error) {
	if svcWorkload != nil {
		return svcWorkload, nil
	}
	var known []string
	for _, w := range workload.All() {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
		known = append(known, w.Name)
	}
	return nil, fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(known, ", "))
}

// traceConfig is the canned short run behind -trace and -metrics: the
// Extreme Bimodal workload at 60% load on two cores, where forced
// multitasking visibly interleaves 0.5µs and 500µs jobs.
func traceConfig(seed uint64, workers int) cluster.RunConfig {
	w := workload.ExtremeBimodal()
	return cluster.RunConfig{
		Workload: w,
		Rate:     0.6 * w.MaxLoad(workers),
		Duration: 2 * sim.Millisecond,
		Warmup:   0,
		Seed:     seed,
	}
}

// writeTrace records the same short Extreme Bimodal run under TQ and
// Shinjuku and dumps both timelines into one Perfetto-loadable file:
// watch probe-yields interleave long jobs' quanta on TQ's lanes while
// Shinjuku preempts by interrupt and re-dispatches.
func writeTrace(path string, seed uint64) error {
	const workers = 2
	tq := cluster.NewTQParams()
	tq.Workers = workers
	sj := cluster.NewShinjukuParams(5 * sim.Microsecond)
	sj.Workers = workers
	procs, err := cluster.TraceComparison(traceConfig(seed, workers), 0,
		cluster.NewTQ(tq), cluster.NewShinjuku(sj))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteChrome(f, procs...)
}

// writeMetrics records the canned TQ run and renders it as a windowed
// time series: utilization, occupancy, preemption and drop rates, and
// sliding sojourn quantiles per 100µs window.
func writeMetrics(path string, seed uint64) error {
	const workers = 2
	tq := cluster.NewTQParams()
	tq.Workers = workers
	procs, err := cluster.TraceComparison(traceConfig(seed, workers), 0, cluster.NewTQ(tq))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	wins := obs.Windows(procs[0].Events, int64(100*sim.Microsecond))
	return obs.WriteWindowsTSV(f, wins)
}

// showGoodput enables the goodput blocks in printComparison; set when
// -slo provides targets (without targets goodput just repeats
// throughput, so the default output stays as before).
var showGoodput bool

// parseSLOs parses "-slo" syntax: comma-separated Class=duration pairs
// ("GET=50us,SCAN=1ms"), where a bare duration ("100us") or a "*" key
// applies to every class.
func parseSLOs(s string) (map[string]sim.Time, error) {
	out := map[string]sim.Time{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		class, val := "*", part
		if i := strings.IndexByte(part, '='); i >= 0 {
			class, val = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad SLO %q: want Class=duration or a bare duration", part)
		}
		out[class] = sim.Time(d.Nanoseconds())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -slo value")
	}
	return out, nil
}

func header(s string) { fmt.Printf("# %s\n", s) }

func printSeries(series []stats.Series) {
	for _, s := range series {
		fmt.Print(s.String())
		fmt.Println()
	}
}

func printComparison(cmp experiments.SystemComparison) {
	classes := make([]string, 0, len(cmp.PerClass))
	for c := range cmp.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("## %s / %s\n", cmp.Workload, class)
		printSeries(cmp.PerClass[class])
	}
	if len(cmp.OverallSlowdown) > 0 {
		fmt.Printf("## %s / overall p99.9 slowdown\n", cmp.Workload)
		printSeries(cmp.OverallSlowdown)
	}
	if showGoodput && len(cmp.Goodput) > 0 {
		fmt.Printf("## %s / goodput (rps meeting SLO)\n", cmp.Workload)
		printSeries(cmp.Goodput)
	}
	// Drop-rate curves appear only once something actually dropped:
	// survivor-only latency curves flatten right where these rise.
	if anyNonZero(cmp.DropRate) {
		fmt.Printf("## %s / drop rate\n", cmp.Workload)
		printSeries(cmp.DropRate)
	}
	if cmp.PerTenant != nil {
		tenantNames := make([]string, 0, len(cmp.PerTenant))
		for tn := range cmp.PerTenant {
			tenantNames = append(tenantNames, tn)
		}
		sort.Strings(tenantNames)
		for _, tn := range tenantNames {
			fmt.Printf("## %s / tenant %s p99.9 sojourn(µs)\n", cmp.Workload, tn)
			printSeries(cmp.PerTenant[tn])
		}
	}
	if cmp.OptimalityGap != nil {
		gapClasses := make([]string, 0, len(cmp.OptimalityGap))
		for c := range cmp.OptimalityGap {
			gapClasses = append(gapClasses, c)
		}
		sort.Strings(gapClasses)
		for _, class := range gapClasses {
			fmt.Printf("## %s / %s optimality gap (p99 sojourn ÷ oracle-srpt)\n", cmp.Workload, class)
			printSeries(cmp.OptimalityGap[class])
		}
	}
}

func printRack(cmp experiments.RackComparison) {
	classes := make([]string, 0, len(cmp.P999))
	for c := range cmp.P999 {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("## %s / %s p99 sojourn(µs)\n", cmp.Workload, class)
		printSeries(cmp.P99[class])
		fmt.Printf("## %s / %s p99.9 sojourn(µs)\n", cmp.Workload, class)
		printSeries(cmp.P999[class])
	}
	fmt.Printf("## %s / goodput (rps)\n", cmp.Workload)
	printSeries(cmp.Goodput)
	if anyNonZero(cmp.DropRate) {
		fmt.Printf("## %s / drop rate\n", cmp.Workload)
		printSeries(cmp.DropRate)
	}
}

func anyNonZero(series []stats.Series) bool {
	for _, s := range series {
		for _, y := range s.Y {
			if y > 0 {
				return true
			}
		}
	}
	return false
}
