// Tqvet runs the tqvet analyzer (internal/analysis/tqvet) over Go
// source directories: it flags tqrt task bodies that can overrun their
// quantum (loops with probe-free iteration paths), block their worker
// (channel ops, selects without default, sleeps, lock/wait calls), or
// carry unreachable probes.
//
// Usage:
//
//	go run ./cmd/tqvet ./examples/... ./cmd/...
//
// Arguments are directories; a trailing /... recurses. With no
// arguments it checks ./... . Findings print as
// file:line:col: category: message and make the exit status 1; a
// `//tqvet:ignore <why>` comment on the offending line or the line
// above suppresses a finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/tqvet"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expandDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqvet:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	findings := 0
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqvet:", err)
			os.Exit(2)
		}
		if len(files) == 0 {
			continue
		}
		pass := &tqvet.Pass{
			Fset:  fset,
			Files: files,
			Report: func(d tqvet.Diagnostic) {
				pos := fset.Position(d.Pos)
				fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Category, d.Message)
				findings++
			},
		}
		if err := tqvet.Checker.Run(pass); err != nil {
			fmt.Fprintln(os.Stderr, "tqvet:", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tqvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// expandDirs resolves the argument patterns into a sorted, de-duplicated
// directory list; "dir/..." recurses.
func expandDirs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recurse := strings.CutSuffix(arg, "/...")
		if root == "" || root == "." {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", root)
		}
		if !recurse {
			add(filepath.Clean(root))
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(filepath.Clean(path))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses every .go file directly inside dir (comments
// included — suppression markers live there).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
