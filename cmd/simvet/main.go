// Simvet runs the simulator-invariant analyzers
// (internal/analysis/simvet) over Go source directories: nondeterm
// (wall-clock and math/rand in simulator packages), maporder
// (order-sensitive work inside range-over-map loops), hotalloc
// (allocation sources in //simvet:hotpath functions), and conserve
// (Result counter mutation outside //simvet:accounting helpers).
//
// Usage:
//
//	go run ./cmd/simvet ./...
//	go run ./cmd/simvet -json ./internal/rack
//
// Arguments are directories; a trailing /... recurses. With no
// arguments it checks ./... . Findings print as
// file:line:col: analyzer: category: message, followed by an indented
// "suggest:" line when the analyzer has a cheap suggested edit; -json
// emits one JSON object per finding instead. Exit status is 1 when
// findings exist, 2 on usage or parse errors.
//
// A `//simvet:ignore <why>` comment on the offending line or the line
// above suppresses a finding; ignores that suppress nothing are
// reported as stale. Test files are excluded: they assert on simulator
// state rather than implement it, and host-side timing is legitimate
// there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/simvet"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Category   string `json:"category"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expandDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simvet:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simvet:", err)
			os.Exit(2)
		}
		if len(files) == 0 {
			continue
		}
		pass := &simvet.Pass{
			Fset:  fset,
			Path:  filepath.ToSlash(dir),
			Files: files,
			Report: func(d simvet.Diagnostic) {
				pos := fset.Position(d.Pos)
				findings++
				if *jsonOut {
					enc.Encode(jsonFinding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: d.Analyzer, Category: d.Category,
						Message: d.Message, Suggestion: d.Suggestion,
					})
					return
				}
				fmt.Printf("%s:%d:%d: %s: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Category, d.Message)
				if d.Suggestion != "" {
					fmt.Printf("\tsuggest: %s\n", d.Suggestion)
				}
			},
		}
		if err := simvet.Analyze(pass); err != nil {
			fmt.Fprintln(os.Stderr, "simvet:", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "simvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// expandDirs resolves the argument patterns into a sorted,
// de-duplicated directory list; "dir/..." recurses, skipping hidden,
// underscore, testdata, and vendor directories.
func expandDirs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		root, recurse := strings.CutSuffix(arg, "/...")
		if root == "" || root == "." {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", root)
		}
		if !recurse {
			add(filepath.Clean(root))
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(filepath.Clean(path))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses every non-test .go file directly inside dir
// (comments included — suppression markers live there).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
