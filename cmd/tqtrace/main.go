// Command tqtrace works with scheduling timelines in the unified obs
// vocabulary: it generates comparison traces from the machine models,
// summarizes trace files into scheduling metrics, and diffs two
// schedulers' behaviour on the same workload.
//
// Usage:
//
//	tqtrace export -o trace.json        # TQ vs Shinjuku comparison trace
//	tqtrace summarize trace.json        # per-scheduler metrics report
//	tqtrace diff a.json b.json          # side-by-side scheduler diff
//
// Export writes Chrome trace-event JSON: open it at https://ui.perfetto.dev
// (or chrome://tracing) to see one process per scheduler, with a
// loadgen track, a dispatcher track, and one track per worker core.
// Summarize and diff read the same files back losslessly, so anything
// exported here — or by tqsim -trace, or a live tqrt run — can be
// inspected without Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "export":
		err = export(os.Args[2:])
	case "summarize":
		err = summarize(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tqtrace export [-o file] [-seed n] [-workers n] [-duration d] [-load f] [-machines a,b]
  tqtrace summarize file.json [-window d]
  tqtrace diff a.json b.json`)
}

// export runs a comparison at identical arrivals — by default TQ and
// Shinjuku on the Extreme Bimodal workload, or any set of registered
// machines via -machines — and writes the multi-process Chrome trace.
func export(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	out := fs.String("o", "trace.json", "output file")
	seed := fs.Uint64("seed", 1, "random seed (shared by all machines)")
	workers := fs.Int("workers", 2, "worker cores per machine (canned TQ-vs-Shinjuku pair only)")
	duration := fs.Duration("duration", 2*time.Millisecond, "simulated duration")
	load := fs.Float64("load", 0.6, "offered load as a fraction of capacity")
	machines := fs.String("machines", "", `comma-separated registry machines at default parameters (e.g. "tq,d-fcfs"); empty runs the canned 2-worker TQ-vs-Shinjuku pair`)
	fs.Parse(args)

	w := workload.ExtremeBimodal()
	cfg := cluster.RunConfig{
		Workload: w,
		Rate:     *load * w.MaxLoad(*workers),
		Duration: sim.Time((*duration).Nanoseconds()),
		Warmup:   0,
		Seed:     *seed,
	}
	var procs []obs.Process
	var err error
	if *machines != "" {
		var names []string
		for _, n := range strings.Split(*machines, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		// Registry machines keep their default worker counts; scale the
		// offered load to the catalogue's 16-worker configurations.
		cfg.Rate = *load * w.MaxLoad(16)
		procs, err = cluster.TraceComparisonNamed(cfg, 0, names...)
	} else {
		tq := cluster.NewTQParams()
		tq.Workers = *workers
		sj := cluster.NewShinjukuParams(5 * sim.Microsecond)
		sj.Workers = *workers
		procs, err = cluster.TraceComparison(cfg, 0, cluster.NewTQ(tq), cluster.NewShinjuku(sj))
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteChrome(f, procs...); err != nil {
		return err
	}
	fmt.Printf("wrote %s: ", *out)
	for i, p := range procs {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s (%d events)", p.Name, len(p.Events))
	}
	fmt.Println("\nopen in https://ui.perfetto.dev or summarize with: tqtrace summarize", *out)
	return nil
}

// summarize reads a trace file and prints each scheduler's metrics,
// plus a windowed time series when -window is set.
func summarize(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("summarize needs a trace file")
	}
	path := args[0]
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	window := fs.Duration("window", 0, "also print a windowed time series at this width")
	fs.Parse(args[1:])

	procs, err := readTrace(path)
	if err != nil {
		return err
	}
	for _, p := range procs {
		s := obs.Summarize(p.Name, p.Events)
		s.Format(os.Stdout)
		if *window > 0 {
			wins := obs.Windows(p.Events, (*window).Nanoseconds())
			if err := obs.WriteWindowsTSV(os.Stdout, wins); err != nil {
				return err
			}
		}
	}
	return nil
}

// diff compares two schedulers: the first process of each named file,
// or — given a single file holding several processes — its first two.
func diff(args []string) error {
	var a, b obs.Process
	switch len(args) {
	case 1:
		procs, err := readTrace(args[0])
		if err != nil {
			return err
		}
		if len(procs) < 2 {
			return fmt.Errorf("%s holds %d process(es); diffing one file needs two", args[0], len(procs))
		}
		a, b = procs[0], procs[1]
	case 2:
		pa, err := readTrace(args[0])
		if err != nil {
			return err
		}
		pb, err := readTrace(args[1])
		if err != nil {
			return err
		}
		if len(pa) == 0 || len(pb) == 0 {
			return fmt.Errorf("empty trace file")
		}
		a, b = pa[0], pb[0]
	default:
		return fmt.Errorf("diff takes one or two trace files")
	}
	obs.Diff(os.Stdout, obs.Summarize(a.Name, a.Events), obs.Summarize(b.Name, b.Events))
	return nil
}

func readTrace(path string) ([]obs.Process, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	procs, err := obs.ReadChrome(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return procs, nil
}
