package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeFixture lays out a package directory with undocumented exported
// identifiers spread across several files, so violations exercise the
// package-map and file-map iteration paths.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"a.go": "package p\n\nfunc AlphaUndocumented() {}\n",
		"b.go": "package p\n\nvar BetaUndocumented int\n",
		"c.go": "package p\n\ntype GammaUndocumented struct{}\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestDirViolationsDeterministic is the run-twice regression test for
// the map-order bug simvet's maporder analyzer flagged here:
// parser.ParseDir returns maps, and iterating them directly printed
// diagnostics in a different order on every run.
func TestDirViolationsDeterministic(t *testing.T) {
	dir := writeFixture(t)
	first, err := dirViolations(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := dirViolations(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d: violation order changed:\nfirst: %v\nagain: %v", i, first, again)
		}
	}
}

// TestDirViolationsSortedByFile pins the order contract itself: one
// violation per file plus the missing package comment anchored to the
// alphabetically first file, in file order.
func TestDirViolationsSortedByFile(t *testing.T) {
	dir := writeFixture(t)
	viols, err := dirViolations(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, v := range viols {
		got = append(got, filepath.Base(v.File)+": "+v.What)
	}
	want := []string{
		"a.go: exported function AlphaUndocumented is undocumented",
		"b.go: exported var BetaUndocumented is undocumented",
		"c.go: exported type GammaUndocumented is undocumented",
		"a.go: package p has no package comment",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}
