// Command docgate enforces the documented-surface contract on the
// packages whose godoc is part of the repository's public story:
// every exported identifier in the named package directories must
// carry a doc comment, and every package must have a package comment.
//
// Usage:
//
//	docgate ./internal/obs ./internal/cluster ./internal/verify ./internal/analysis/tqvet
//
// One line per violation ("file:line: exported X is undocumented"),
// exit status 1 if any are found. CI runs it next to go vet and
// gofmt so the documented packages cannot silently grow an
// undocumented surface.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docgate <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docgate:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docgate: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded — their
// exported helpers are not godoc surface) and prints each exported
// declaration that lacks a doc comment.
func checkDir(dir string) (bad int, err error) {
	viols, err := dirViolations(dir)
	if err != nil {
		return 0, err
	}
	for _, v := range viols {
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(v.File), v.Line, v.What)
	}
	return len(viols), nil
}

// violation is one undocumented exported identifier.
type violation struct {
	File string
	Line int
	What string
}

// dirViolations collects the violations of one package directory in
// deterministic order: parser.ParseDir returns maps (package name →
// package, file name → file), so both levels are iterated through
// sorted key slices — otherwise two identical runs print diagnostics
// in different orders.
func dirViolations(dir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []violation
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, violation{File: p.Filename, Line: p.Line, What: what})
	}
	pkgNames := make([]string, 0, len(pkgs))
	for name := range pkgs {
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)
	for _, pkgName := range pkgNames {
		pkg := pkgs[pkgName]
		fileNames := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			fileNames = append(fileNames, name)
		}
		sort.Strings(fileNames)
		hasPkgDoc := false
		for _, fname := range fileNames {
			f := pkg.Files[fname]
			if f.Doc != nil {
				hasPkgDoc = true
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && !isExportedMethodOfUnexported(d) {
						report(d.Pos(), "exported "+funcLabel(d)+" is undocumented")
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
		if !hasPkgDoc {
			// Anchor the complaint to the first file of the package.
			report(pkg.Files[fileNames[0]].Package, "package "+pkgName+" has no package comment")
		}
	}
	return out, nil
}

// isExportedMethodOfUnexported reports whether d is a method on an
// unexported receiver type: its godoc is invisible, so the gate does
// not require a comment (though interface-satisfying methods often
// still carry one).
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}

func funcLabel(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method " + d.Name.Name
	}
	return "function " + d.Name.Name
}

// checkGenDecl walks a const/var/type declaration. A doc comment on
// the grouped declaration covers the whole group (the standard godoc
// convention for const blocks); otherwise each exported spec needs its
// own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type "+s.Name.Name+" is undocumented")
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "exported "+kindWord(d.Tok)+" "+name.Name+" is undocumented")
				}
			}
		}
	}
}

func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
