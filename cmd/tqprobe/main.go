// Command tqprobe regenerates Table 3: the comparison between TQ's
// physical-clock probe-insertion pass and the instruction-counter
// baselines (CI and CI-Cycles) across the 27-program benchmark suite —
// probing overhead, yield-timing mean absolute error, and static probe
// counts, at a 2µs target quantum on a single core (§5.6).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/instrument"
	"repro/internal/ir"
)

func main() {
	scale := flag.Float64("scale", 1, "suite trip-count scale (use <1 for quick runs)")
	seed := flag.Uint64("seed", 1, "random seed")
	program := flag.String("program", "", "run a single named program instead of the suite")
	bound := flag.Int64("bound", instrument.DefaultBound, "TQ pass max uninstrumented path length")
	verifyFlag := flag.Bool("verify", false, "also print the static probe-gap verification verdicts")
	flag.Parse()

	if *program != "" {
		f := instrument.Program(*program)
		model := ir.DefaultCosts()
		for _, m := range []instrument.Measurement{
			instrument.MeasureCI(f, instrument.DefaultQuantumNs, model, *seed),
			instrument.MeasureCICycles(f, instrument.DefaultQuantumNs, model, *seed),
			instrument.MeasureTQ(f, *bound, instrument.DefaultQuantumNs, model, *seed),
		} {
			fmt.Printf("%-10s overhead=%6.2f%%  MAE=%7.0fns  probes=%4d (dynamic %d)  yields=%d\n",
				m.Technique, m.OverheadPct, m.MAEns, m.StaticProbes, m.DynamicProbes, m.Yields)
			if *verifyFlag {
				verdict := "REFUTED"
				if m.Verified && (m.GapGuarantee == 0 || m.StaticGap <= m.GapGuarantee) {
					verdict = "PROVED"
				}
				fmt.Printf("%-10s verify: %s, worst static probe gap %d weighted instructions",
					"", verdict, m.StaticGap)
				if m.GapGuarantee > 0 {
					fmt.Printf(" (guarantee %d)", m.GapGuarantee)
				}
				fmt.Println()
			}
		}
		return
	}

	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "tqprobe: scale must be positive")
		os.Exit(2)
	}
	rows := instrument.Table3(*scale, *seed)
	fmt.Println("# Table 3: probing overhead and yield-timing MAE, 2µs quantum")
	fmt.Print(instrument.Format(rows))
	if *verifyFlag {
		fmt.Println()
		fmt.Println("# Static verification: worst probe gap over ALL paths (weighted instructions)")
		fmt.Print(instrument.FormatVerify(rows))
	}
}
