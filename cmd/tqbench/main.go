// Command tqbench runs the repository's pinned benchmark matrix
// (internal/bench) and writes the results as one JSON report. Each PR
// checks in a full report as BENCH_<pr>.json; CI runs the quick matrix
// as a smoke test and validates the report's invariants (schema,
// complete matrix, zero-allocation arrival pump).
//
// Usage:
//
//	tqbench -pr 6 -o BENCH_6.json        # full matrix, attributed
//	tqbench -quick -o bench-quick.json   # CI smoke run
//	tqbench -check bench-quick.json      # validate an existing report
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced smoke matrix (seconds, not minutes)")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	pr := flag.Int("pr", 0, "pull-request number to stamp into the report")
	check := flag.String("check", "", "validate an existing report file and exit")
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		r, err := bench.Decode(data)
		if err != nil {
			fatal(err)
		}
		if err := bench.Validate(r); err != nil {
			fatal(fmt.Errorf("%s: %w", *check, err))
		}
		fmt.Printf("%s: ok (%d benches, engine speedup %.2fx, pump %.4f allocs/op)\n",
			*check, len(r.Benches), r.Speedup(), pumpAllocs(r))
		return
	}

	r := bench.Run(bench.Options{
		Quick:    *quick,
		PR:       *pr,
		Progress: func(line string) { fmt.Fprintln(os.Stderr, line) },
	})
	if err := bench.Validate(r); err != nil {
		fatal(fmt.Errorf("fresh report failed validation: %w", err))
	}
	data, err := r.Encode()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (engine speedup %.2fx over heap baseline)\n", *out, r.Speedup())
}

func pumpAllocs(r *bench.Report) float64 {
	for _, b := range r.Benches {
		if b.Name == "kernel/arrival-pump" {
			return b.AllocsPerOp
		}
	}
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tqbench:", err)
	os.Exit(1)
}
