// Command tqkv demonstrates the live TQ runtime end to end: it loads
// the in-memory KV store (the RocksDB stand-in), then serves an
// open-loop GET/SCAN mix — the Table 1 RocksDB workload shape — on
// real goroutine workers, once with TQ's processor-sharing quanta and
// once in FCFS mode, and prints the per-class latency tails.
//
// The point it demonstrates is the paper's headline: with blind PS
// scheduling and cheap cooperative preemption, GET tail latency stays
// low even when SCANs occupy the workers, while FCFS lets GETs queue
// behind SCANs.
package main

import (
	"flag"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/kvstore"
	"repro/internal/rng"
	"repro/internal/tqrt"
)

func main() {
	workers := flag.Int("workers", 4, "worker goroutines")
	keys := flag.Int("keys", 200_000, "keys to load")
	rate := flag.Float64("rate", 20_000, "offered requests/second")
	duration := flag.Duration("duration", 2*time.Second, "measurement length")
	scanFrac := flag.Float64("scan", 0.005, "fraction of SCAN requests")
	scanLen := flag.Int("scanlen", 4000, "entries per SCAN")
	quantum := flag.Duration("quantum", 20*time.Microsecond, "PS quantum (0 = FCFS)")
	flag.Parse()

	store := kvstore.New(kvstore.Config{Seed: 1})
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }
	for i := 0; i < *keys; i++ {
		store.Put(keyOf(i), []byte(fmt.Sprintf("profile-%012d-%032x", i, i)))
	}
	store.Flush()
	fmt.Printf("loaded %d keys (%+v)\n", *keys, store.Stats())

	for _, mode := range []struct {
		name    string
		quantum time.Duration
	}{
		{"TQ-PS", *quantum},
		{"FCFS", 0},
	} {
		fmt.Printf("\n=== %s (quantum=%v, %d workers, %.0f rps, %.1f%% SCAN) ===\n",
			mode.name, mode.quantum, *workers, *rate, *scanFrac*100)
		run(store, keyOf, *keys, *workers, *rate, *duration, *scanFrac, *scanLen, mode.quantum)
	}
}

func run(store *kvstore.Store, keyOf func(int) []byte, keys, workers int,
	rate float64, duration time.Duration, scanFrac float64, scanLen int,
	quantum time.Duration) {

	rt := tqrt.New(tqrt.Config{
		Workers:    workers,
		Coroutines: 8,
		Quantum:    quantum,
		QueueCap:   1 << 14,
	})
	rt.Start()
	defer rt.Stop()

	var mu sync.Mutex
	lat := map[string][]time.Duration{}
	record := func(class string, d time.Duration) {
		mu.Lock()
		lat[class] = append(lat[class], d)
		mu.Unlock()
	}

	r := rng.New(7)
	deadline := time.Now().Add(duration)
	meanGap := time.Duration(float64(time.Second) / rate)
	next := time.Now()
	for time.Now().Before(deadline) {
		// Open-loop Poisson arrivals: sleep to the next arrival time
		// regardless of completions.
		next = next.Add(time.Duration(r.Exp(float64(meanGap))))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		arrive := time.Now()
		if r.Float64() < scanFrac {
			start := keyOf(r.Intn(keys))
			rt.Submit(func(y *tqrt.Yield) {
				n := 0
				store.Scan(start, scanLen, func(_, _ []byte) bool {
					n++
					if n%64 == 0 {
						y.Probe() // probe points between entry batches
					}
					return true
				})
				record("SCAN", time.Since(arrive))
			})
		} else {
			k := keyOf(r.Intn(keys))
			rt.Submit(func(y *tqrt.Yield) {
				store.Get(k)
				y.Probe()
				record("GET", time.Since(arrive))
			})
		}
	}
	rt.Wait()

	mu.Lock()
	defer mu.Unlock()
	classes := make([]string, 0, len(lat))
	for c := range lat {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		ds := lat[c]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(ds)-1))
			return ds[i]
		}
		fmt.Printf("%-5s n=%-7d p50=%-10v p99=%-10v p99.9=%v\n",
			c, len(ds), q(0.50), q(0.99), q(0.999))
	}
}
